(* The observability layer end to end, on one short attack.

   Attach a metrics registry, run a 20-second single-attacker chain
   scenario with an on-off attacker (so filters install, expire and
   re-install), then read everything back three ways:

   - the final snapshot, rendered as a table;
   - a handful of sampled series resampled onto a coarse grid — a
     text-mode dashboard of the attack as it unfolded;
   - the time-to-filter histogram at the attacker's gateway.

   Run with:

     dune exec examples/metrics_dashboard.exe

   The same data is available machine-readable: see docs/OBSERVABILITY.md
   and `aitf_sim run --metrics out.json`. *)

module Table = Aitf_stats.Table
module Series = Aitf_stats.Series
module Metrics = Aitf_obs.Metrics
module Sampler = Aitf_obs.Sampler
module Config = Aitf_core.Config
module Policy = Aitf_core.Policy
module Scenarios = Aitf_workload.Scenarios

let duration = 20.

let params =
  {
    Scenarios.default_chain with
    Scenarios.config =
      { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 };
    duration;
    attack_rate = 1e6;
    legit_rate = 2e5;
    attacker_strategy = Policy.On_off { off_time = 1.0 };
    sample_period = 0.25;
  }

let () =
  (* One fresh registry per run, attached before the scenario builds its
     topology so every component self-registers at creation. *)
  let reg = Metrics.create () in
  Metrics.attach reg;
  let r = Scenarios.run_chain params in
  Metrics.detach ();

  Printf.printf
    "=== Metrics dashboard: on-off attacker vs the chain topology ===\n\n";

  (* 1. A text dashboard: key series resampled onto a 2-second grid. *)
  (match r.Scenarios.sampler with
  | None -> ()
  | Some sampler ->
    let col name =
      match Sampler.find_series sampler name with
      | Some s -> Series.resample s ~step:2. ~until:duration
      | None -> []
    in
    let attack = col "victim.G_host.attack_rate_bps" in
    let filters = col "gateway.B_gw1.filters.occupancy" in
    let shadow = col "gateway.G_gw1.shadow.occupancy" in
    let blocked = col "gateway.B_gw1.filters.blocked_packets" in
    let at points t =
      match List.assoc_opt t points with Some v -> v | None -> 0.
    in
    let dash =
      Table.create ~title:"attack timeline (sampled every 0.25 s, shown every 2 s)"
        ~columns:
          [ "t (s)"; "attack at victim (Mbit/s)"; "B_gw1 filters";
            "G_gw1 shadow"; "B_gw1 blocked pkts" ]
    in
    List.iter
      (fun (t, v) ->
        Table.add_row dash
          [
            Printf.sprintf "%.0f" t;
            Printf.sprintf "%.2f" (v /. 1e6);
            Printf.sprintf "%.0f" (at filters t);
            Printf.sprintf "%.0f" (at shadow t);
            Printf.sprintf "%.0f" (at blocked t);
          ])
      attack;
    Table.print dash);

  (* 2. The time-to-filter histogram at the attacker-side gateway. *)
  (match Metrics.value reg "gateway.B_gw1.time_to_filter" with
  | Some (Metrics.Histogram { count; sum; buckets }) when count > 0 ->
    Printf.printf
      "time to filter at B_gw1: %d installs, mean %.3f s\n" count
      (sum /. float_of_int count);
    List.iter
      (fun (le, n) ->
        if n > 0 then
          if le = infinity then Printf.printf "  <= inf   : %d\n" n
          else Printf.printf "  <= %-6.3g: %d\n" le n)
      buckets;
    print_newline ()
  | _ -> ());

  (* 3. The full final snapshot, filtered to the non-zero entries so the
     table stays readable (the JSON report keeps everything). *)
  let interesting (name, v) =
    match v with
    | Metrics.Counter x | Metrics.Gauge x ->
      x <> 0.
      && (not (String.length name > 5 && String.sub name 0 5 = "link."))
      && not (String.length name > 5 && String.sub name 0 5 = "node.")
    | Metrics.Histogram { count; _ } -> count > 0
  in
  let snapshot =
    Table.create ~title:"final snapshot (non-zero, gateways and hosts)"
      ~columns:[ "metric"; "value" ]
  in
  List.iter
    (fun ((name, v) as entry) ->
      if interesting entry then
        let value =
          match v with
          | Metrics.Counter x | Metrics.Gauge x -> Printf.sprintf "%.6g" x
          | Metrics.Histogram { count; sum; _ } ->
            Printf.sprintf "%d samples, mean %.4g" count
              (sum /. float_of_int count)
        in
        Table.add_row snapshot [ name; value ])
    (Metrics.snapshot reg);
  Table.print snapshot;

  Printf.printf
    "r (received/offered attack bytes) = %.4f; %d requests, %d escalations\n"
    r.Scenarios.r_measured r.Scenarios.requests_sent r.Scenarios.escalations
