(* The 3-way handshake vs forged filtering requests (Sections II-E, III-B).

   A compromised host M forges a filtering request asking B_host's gateway
   to block the legitimate flow B_host -> G_host. With the handshake
   enabled, the gateway first asks G_host "do you really not want this
   flow?" — and G_host, who never complained, stays silent, so the request
   dies. With the handshake disabled the forged request kills the flow.
   Run with:

     dune exec examples/spoofing_defense.exe
*)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Counter = Aitf_stats.Counter
open Aitf_net
open Aitf_filter
open Aitf_core
open Aitf_topo
module Traffic = Aitf_workload.Traffic

let run ~handshake =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let topo = Chain.build sim Chain.default_spec in
  (* M lives inside B_net too, one hop from the gateway it tries to abuse. *)
  let m =
    Network.add_node topo.Chain.net ~name:"M" ~addr:(Addr.of_octets 20 0 0 99)
      ~as_id:101 Node.Host
  in
  ignore
    (Network.connect topo.Chain.net (List.hd topo.Chain.attacker_gws) m
       ~bandwidth:1e7 ~delay:0.01);
  Network.compute_routes topo.Chain.net;
  let config =
    { (Config.with_timescale Config.default 0.1) with Config.handshake }
  in
  let d = Chain.deploy ~attacker_strategy:Policy.Complies ~config ~rng topo in
  (* The legitimate flow under attack-by-forgery. *)
  let (_ : Traffic.t) =
    Traffic.cbr ~start:0. ~flow_id:1 ~rate:1e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  (* M forges the request at t = 2 s, and again every second (it is
     persistent). *)
  let b_gw1_node = List.hd topo.Chain.attacker_gws in
  let flow =
    Flow_label.host_pair topo.Chain.attacker.Node.addr
      topo.Chain.victim.Node.addr
  in
  let forged =
    {
      Message.flow;
      target = Message.To_attacker_gateway;
      duration = config.Config.t_filter;
      path = [ b_gw1_node.Node.addr ];
      hops = 0;
      requestor = m.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  for i = 0 to 7 do
    ignore
      (Sim.at sim
         (2.0 +. float_of_int i)
         (fun () ->
           Network.originate topo.Chain.net m
             (Message.packet ~src:m.Node.addr ~dst:b_gw1_node.Node.addr
                (Message.Filtering_request forged))))
  done;
  Sim.run ~until:12.0 sim;
  let b_gw1 = List.hd d.Chain.attacker_gateways in
  let received = Host_agent.Victim.good_bytes d.Chain.victim_agent in
  let offered = 1e6 *. 12.0 /. 8. in
  (received, offered, Counter.get (Gateway.counters b_gw1) "handshake-fail",
   Filter_table.occupancy (Gateway.filters b_gw1))

let () =
  print_endline "=== forged filtering requests vs the 3-way handshake ===\n";
  let on, offered, fails_on, filters_on = run ~handshake:true in
  let off, _, _, filters_off = run ~handshake:false in
  Printf.printf "handshake ON : legit flow delivered %7.0f / %.0f bytes (%.0f%%)\n"
    on offered (100. *. on /. offered);
  Printf.printf "               forged requests rejected by verification: %d\n"
    fails_on;
  Printf.printf "               filters wrongly installed: %d\n\n" filters_on;
  Printf.printf "handshake OFF: legit flow delivered %7.0f / %.0f bytes (%.0f%%)\n"
    off offered (100. *. off /. offered);
  Printf.printf "               filters wrongly installed: %d\n\n" filters_off;
  print_endline
    "An off-path forger never sees the nonce the gateway sends to the\n\
     flow's destination, so with the handshake on it cannot get a filter\n\
     installed — exactly the argument of Section III-B."
