(* A distributed attack against a web server, with and without AITF.

   Twelve zombies scattered over two ISPs flood a server's 10 Mbit/s tail
   circuit while legitimate clients keep using it. The example runs the
   same scenario twice — AITF disabled, then enabled — and prints the
   legitimate goodput and where the filtering ended up, followed by a
   sampled timeline of the AITF run (the "watching an attack in real
   time" walk-through of docs/OBSERVABILITY.md). Run with:

     dune exec examples/ddos_mitigation.exe
*)

module Table = Aitf_stats.Table
module Series = Aitf_stats.Series
module Metrics = Aitf_obs.Metrics
module Sampler = Aitf_obs.Sampler
module Scenarios = Aitf_workload.Scenarios

let params =
  {
    Scenarios.default_flood with
    Scenarios.zombies = 12;
    zombie_rate = 2e6;
    legit_clients = 4;
    legit_rate = 2e5;
    flood_duration = 20.;
    attack_start = 2.;
  }

let () =
  Printf.printf
    "=== DDoS mitigation: %d zombies x %.0f Mbit/s vs a 10 Mbit/s tail ===\n\n"
    params.Scenarios.zombies
    (params.Scenarios.zombie_rate /. 1e6);
  let off = Scenarios.run_flood { params with Scenarios.with_aitf = false } in
  (* One fresh registry per run: attach it around the AITF run only, so
     every gateway and agent self-registers as the topology deploys. *)
  let reg = Metrics.create () in
  Metrics.attach reg;
  let on = Scenarios.run_flood params in
  Metrics.detach ();
  let table =
    Table.create ~title:"with vs without AITF"
      ~columns:
        [ "setup"; "legit goodput"; "attack delivered";
          "leaf filter installs"; "ISP filters" ]
  in
  let row label (o : Scenarios.flood_result) =
    Table.add_row table
      [
        label;
        Printf.sprintf "%.0f kB (%.0f%% of offered)"
          (o.Scenarios.legit_received_bytes /. 1e3)
          (100. *. o.Scenarios.legit_received_bytes
          /. Float.max 1. o.Scenarios.legit_offered_bytes);
        Printf.sprintf "%.0f kB" (o.Scenarios.flood_attack_received_bytes /. 1e3);
        string_of_int o.Scenarios.leaf_filters;
        string_of_int o.Scenarios.isp_filters;
      ]
  in
  row "no AITF" off;
  row "AITF" on;
  Table.print table;
  (* Watching the attack in real time: replay the sampled series from the
     AITF run as a timeline. Every column is pulled from the registry the
     scenario sampled on the virtual clock. *)
  (match on.Scenarios.flood_sampler with
  | None -> ()
  | Some sampler ->
    let duration = params.Scenarios.flood_duration in
    let grid s = Series.resample s ~step:1. ~until:duration in
    let value_at points t =
      match List.assoc_opt t points with Some v -> v | None -> 0.
    in
    let attack_rate =
      Option.map grid (Sampler.find_series sampler "victim.h0_0_0.attack_rate_bps")
      |> Option.value ~default:[]
    in
    (* Long-filter installs summed over every gateway in the hierarchy. *)
    let installs =
      Sampler.series sampler
      |> List.filter_map (fun (name, s) ->
             let suffix = ".filters_long_installed" in
             if
               String.length name > String.length suffix
               && String.sub name
                    (String.length name - String.length suffix)
                    (String.length suffix)
                  = suffix
             then Some (grid s)
             else None)
    in
    let timeline =
      Table.create ~title:"AITF run timeline (sampled metrics)"
        ~columns:[ "t (s)"; "attack at victim (Mbit/s)"; "long filters installed" ]
    in
    List.iter
      (fun (t, rate) ->
        let total_installs =
          List.fold_left (fun acc pts -> acc +. value_at pts t) 0. installs
        in
        Table.add_row timeline
          [
            Printf.sprintf "%.0f" t;
            Printf.sprintf "%.2f" (rate /. 1e6);
            Printf.sprintf "%.0f" total_installs;
          ])
      attack_rate;
    Table.print timeline);
  print_endline
    "Every zombie is blocked by its own enterprise gateway, once per T\n\
     cycle while it keeps attacking; nothing accumulates in the ISPs or\n\
     the core — the scaling argument of Section III-C."
