(* Request anatomy: the causal span tree of one filtering request.

   The two-gateway chain (depth 1: G_host - G_gw1 = B_gw1 - B_host) is run
   with the span collector attached, then the resulting span forest is
   printed as an annotated tree: every stage of the request — detection at
   the victim, the request's flight to G_gw1, the temporary filter, the
   handshake-backed verification at B_gw1, the counter-request to the
   attacker and the long filter — with its duration and the point events
   (retransmissions, policing, evictions) that landed inside it. Run with:

     dune exec examples/request_anatomy.exe

   The same tree is what `aitf_sim run --spans FILE` exports as Chrome
   trace-event JSON; see docs/OBSERVABILITY.md, section "Causal tracing".
*)

module Span = Aitf_obs.Span
module Scenarios = Aitf_workload.Scenarios
module Chain = Aitf_topo.Chain
open Aitf_core

let print_events indent events =
  List.iter
    (fun (e : Span.event) ->
      Printf.printf "%s* %-22s @ %8.4f s\n" indent e.Span.label e.Span.at)
    events

let print_root (r : Span.root) =
  Printf.printf "request #%d  flow %s  (minted at %s)\n" r.Span.corr
    r.Span.flow r.Span.victim;
  (match r.Span.completed_at with
  | Some t ->
    Printf.printf "|  completed at %.4f s — %.4f s from first attack packet\n"
      t (t -. r.Span.opened_at)
  | None -> print_endline "|  never completed");
  print_events "|  " (List.rev r.Span.root_events);
  let spans = Span.spans_of r in
  let n = List.length spans in
  List.iteri
    (fun i (s : Span.span) ->
      let branch = if i = n - 1 then "`--" else "|--" in
      let dur =
        match Span.duration s with
        | Some d -> Printf.sprintf "%8.4f s" d
        | None -> "   (open)"
      in
      Printf.printf "%s %-17s %-8s %8.4f -> %s  %s\n" branch
        (Span.stage_name s.Span.stage)
        ("[" ^ s.Span.node ^ "]")
        s.Span.started_at
        (match s.Span.finished_at with
        | Some t -> Printf.sprintf "%8.4f" t
        | None -> "    ... ")
        dur;
      let indent = if i = n - 1 then "       " else "|      " in
      print_events indent (Span.events_of s))
    spans;
  print_newline ()

let () =
  let collector = Span.create () in
  Span.attach collector;
  let params =
    {
      Scenarios.default_chain with
      Scenarios.spec = { Chain.default_spec with Chain.depth = 1 };
      config = Config.with_timescale Config.default 0.1;
      duration = 12.;
      attacker_strategy = Policy.Complies;
    }
  in
  let r = Scenarios.run_chain params in
  Span.detach ();
  print_endline "=== anatomy of a filtering request (two-gateway chain) ===";
  Printf.printf
    "attack suppressed: %.0f of %.0f offered bytes reached the victim\n\n"
    r.Scenarios.attack_received_bytes r.Scenarios.attack_offered_bytes;
  List.iter print_root (Span.roots collector);
  print_string (Span.summary collector);
  print_endline
    "\nReading the tree: detect is the victim noticing the flow (Td);\n\
     request is the flight to its gateway; temp-filter covers the Ttmp\n\
     window that protects the victim while verification (the 3-way\n\
     handshake at the attacker's gateway) runs; counter-request is the\n\
     gateway giving its attacker host the chance to stop; and\n\
     permanent-filter is the long (T) block, installed one hop from the\n\
     source. Verification's duration is exactly the time-to-filter the\n\
     metrics registry reports as a histogram."
