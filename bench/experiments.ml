(* Reproduction harness: one function per table/figure of the paper.

   Every experiment prints a table with the paper's (analytic) value next to
   the simulator's measurement. Absolute protocol latencies differ from the
   authors' assumptions, so the claims under test are the *shapes*: who ends
   up filtering, how resources scale with R1/R2/T, where the crossovers are.

   Experiment ids follow DESIGN.md: F1, E1..E9, A1, A2. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Trace = Aitf_engine.Trace
module Counter = Aitf_stats.Counter
module Table = Aitf_stats.Table
module Rate_meter = Aitf_stats.Rate_meter
open Aitf_net
open Aitf_filter
open Aitf_core
open Aitf_topo
module Traffic = Aitf_workload.Traffic
module Request_driver = Aitf_workload.Request_driver
module Scenarios = Aitf_workload.Scenarios
module Formulas = Aitf_model.Formulas
module Pushback = Aitf_pushback.Pushback

let pct a b = if b = 0. then 0. else 100. *. a /. b

(* Optional CSV mirroring of every printed table (enabled by --csv-dir). *)
let csv_dir : string option ref = ref None

(* Optional machine-readable collection of every printed table (enabled by
   --json; main.ml serialises the accumulated list at exit). *)
let collect_json : bool ref = ref false
let json_tables : Table.t list ref = ref []

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* squeeze runs of '-' and trim *)
  let b = Buffer.create (String.length s) in
  let prev_dash = ref true in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !prev_dash then Buffer.add_char b '-';
        prev_dash := true
      end
      else begin
        Buffer.add_char b c;
        prev_dash := false
      end)
    s;
  let out = Buffer.contents b in
  let n = String.length out in
  if n > 0 && out.[n - 1] = '-' then String.sub out 0 (n - 1) else out

let emit table =
  Table.print table;
  if !collect_json then json_tables := table :: !json_tables;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let file = Filename.concat dir (slug (Table.title table) ^ ".csv") in
    let oc = open_out file in
    output_string oc (Table.to_csv table);
    close_out oc

(* Default experiment timescale: T = 6 s so that multi-cycle runs finish
   quickly; resource experiments state their own rates against this T. *)
let cfg =
  { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 }

let chain_params =
  {
    Scenarios.default_chain with
    Scenarios.config = cfg;
    duration = 60.;
    td = 0.1;
    seed = 42;
  }

(* ------------------------------------------------------------------ F1 -- *)

(* Figure 1 + Section II-D: the example attack path walk-through. The
   "figure" here is the protocol timeline; we reproduce it as the ordered
   list of protocol events and check the round-1 outcome: blocked at
   B_gw1. *)
let f1 () =
  let sink, events = Trace.collecting_sink () in
  Trace.add_sink sink;
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let topo = Chain.build sim Chain.default_spec in
  let d = Chain.deploy ~attacker_strategy:Policy.Complies ~config:cfg ~rng topo in
  let (_ : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:1.0 ~attack:true ~flow_id:1 ~rate:2e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  Sim.run ~until:6.0 sim;
  Trace.clear_sinks ();
  let table =
    Table.create ~title:"F1  Figure-1 walk-through (protocol timeline)"
      ~columns:[ "t (s)"; "node"; "event" ]
  in
  List.iter
    (fun (e : Trace.event) ->
      Table.add_row table
        [ Printf.sprintf "%.3f" e.Trace.time; e.Trace.category; e.Trace.message ])
    (events ());
  emit table;
  let b_gw1 = List.hd d.Chain.attacker_gateways in
  let verdict =
    Table.create ~title:"F1  round-1 outcome"
      ~columns:[ "check (paper, Section II-D)"; "expected"; "measured" ]
  in
  Table.add_row verdict
    [
      "flow blocked at B_gw1 (closest AITF node)";
      "yes";
      Table.cell_bool (Counter.get (Gateway.counters b_gw1) "filter-long" >= 1);
    ];
  Table.add_row verdict
    [
      "attacker stopped at the source";
      "yes";
      Table.cell_bool (Host_agent.Attacker.flows_stopped d.Chain.attacker_agent >= 1);
    ];
  Table.add_row verdict
    [
      "victim gateway's filter was temporary";
      "yes";
      Table.cell_bool
        (Filter_table.occupancy
           (Gateway.filters (List.hd d.Chain.victim_gateways))
        = 0);
    ];
  Table.add_row verdict
    [
      "escalation needed";
      "no";
      Table.cell_bool
        (not (Scenarios.counter_total d.Chain.victim_gateways "escalated" = 0));
    ];
  emit verdict

(* ------------------------------------------------------------------ E1 -- *)

(* Section IV-A.1: effective bandwidth of an undesired flow,
   r ~= n (Td + Tr) / T. Two sweeps: T at n = 1, and n with an on-off
   attacker behind non-cooperating gateways. *)
let e1 () =
  let tr = Chain.default_spec.Chain.access_delay in
  let td = chain_params.Scenarios.td in
  let table =
    Table.create
      ~title:
        "E1  effective bandwidth ratio r vs T   (n = 1: attacker ignores, \
         gateways cooperate)"
      ~columns:
        [ "T (s)"; "r paper = (Td+Tr)/T"; "r measured"; "requests"; "escalations" ]
  in
  List.iter
    (fun t_filter ->
      let config = { cfg with Config.t_filter } in
      let r =
        Scenarios.run_chain
          { chain_params with Scenarios.config; duration = 10. *. t_filter }
      in
      Table.add_row table
        [
          Table.cell_float t_filter;
          Table.cell_float ~digits:3
            (Formulas.effective_bandwidth_ratio ~n:1 ~td ~tr ~t_filter);
          Table.cell_float ~digits:3 r.Scenarios.r_measured;
          Table.cell_int r.Scenarios.requests_sent;
          Table.cell_int r.Scenarios.escalations;
        ])
    [ 3.; 6.; 15.; 30.; 60. ];
  emit table;
  (* The paper's worked example at full scale: Tr = 50 ms, T = 60 s. *)
  let example =
    Table.create ~title:"E1  paper worked example (T = 60 s, Tr = 50 ms)"
      ~columns:[ "quantity"; "paper"; "measured" ]
  in
  let config = { cfg with Config.t_filter = 60. } in
  let r =
    Scenarios.run_chain
      { chain_params with Scenarios.config; duration = 600.; td = 0.01 }
  in
  Table.add_row example
    [
      "r (steady state, Td ~= 0)";
      Table.cell_float ~digits:2
        (Formulas.effective_bandwidth_ratio ~n:1 ~td:0. ~tr ~t_filter:60.);
      Table.cell_float ~digits:2 r.Scenarios.r_measured;
    ];
  emit example;
  let sweep_n =
    Table.create
      ~title:
        "E1  r vs n   (on-off attacker, n-1 unresponsive gateways; T = 6 s)"
      ~columns:
        [
          "n (non-cooperating)";
          "r paper bound = n(Td+Tr)/T";
          "r measured";
          "escalations / cycle";
        ]
  in
  List.iter
    (fun n ->
      let r =
        Scenarios.run_chain
          {
            chain_params with
            Scenarios.n_non_coop_gws = n - 1;
            attacker_strategy =
              (if n = 1 then Policy.Ignores
               else Policy.On_off { off_time = cfg.Config.t_tmp +. 0.2 });
          }
      in
      let cycles =
        chain_params.Scenarios.duration /. cfg.Config.t_filter
      in
      Table.add_row sweep_n
        [
          Table.cell_int n;
          Table.cell_float ~digits:3
            (Formulas.effective_bandwidth_ratio ~n ~td ~tr
               ~t_filter:cfg.Config.t_filter);
          Table.cell_float ~digits:3 r.Scenarios.r_measured;
          Table.cell_float ~digits:2
            (float_of_int r.Scenarios.escalations /. cycles);
        ])
    [ 1; 2; 3 ];
  emit sweep_n;
  print_endline
    "Note: the simulator's gateways escalate off the shadow cache the moment\n\
     a flow reappears, so measured r sits below the paper's per-level\n\
     (Td+Tr) bound while keeping its 1/T shape; the n-dependence shows up\n\
     in escalations per cycle, one per non-cooperating level.\n"

(* ------------------------------------------------------------------ E2 -- *)

(* Section IV-A.2: a client with contract rate R1 is protected against
   Nv = R1 * T simultaneous undesired flows. *)
let e2 () =
  let r1 = 5.0 in
  let t_filter = cfg.Config.t_filter in
  let nv = Formulas.protected_flows ~r1 ~t_filter in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E2  flows blocked within one T   (R1 = %.0f/s, T = %.0f s => Nv = %d)"
           r1 t_filter nv)
      ~columns:
        [
          "simultaneous flows M";
          "paper: min(M, Nv)";
          "blocked (measured)";
          "requests admitted";
        ]
  in
  List.iter
    (fun m ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed:7 in
      let topo = Chain.build sim Chain.default_spec in
      let config = { cfg with Config.r1; r1_burst = r1 } in
      let d = Chain.deploy ~victim_td:0.05 ~config ~rng topo in
      for i = 0 to m - 1 do
        ignore
          (Traffic.cbr
             ~spoof:(fun () -> Some (Addr.add (Addr.of_octets 20 0 1 0) i))
             ~start:0.5 ~attack:true ~flow_id:(100 + i)
             ~rate:(2e6 /. float_of_int m)
             ~dst:topo.Chain.victim.Node.addr topo.Chain.net
             topo.Chain.attacker)
      done;
      Sim.run ~until:(0.5 +. t_filter) sim;
      let blocked =
        Filter_table.occupancy
          (Gateway.filters (List.hd d.Chain.attacker_gateways))
      in
      Table.add_row table
        [
          Table.cell_int m;
          Table.cell_int (Int.min m nv);
          Table.cell_int blocked;
          Table.cell_int (Host_agent.Victim.requests_sent d.Chain.victim_agent);
        ])
    [ nv / 2; nv; 2 * nv ];
  emit table

(* ------------------------------------------------------------------ E3 -- *)

(* Section IV-B: the victim's gateway needs nv = R1*Ttmp filters and
   mv = R1*T shadow entries to honor a contract of R1 requests/s. *)
let e3 () =
  let r1 = 40.0 in
  let t_tmp = cfg.Config.t_tmp in
  let t_filter = cfg.Config.t_filter in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  let topo = Chain.build sim Chain.default_spec in
  let config = { cfg with Config.r1; r1_burst = 2. } in
  let d = Chain.deploy ~config ~rng topo in
  let victim = topo.Chain.victim in
  let b_gw1_addr = (List.hd topo.Chain.attacker_gws).Node.addr in
  let mk i =
    {
      Message.flow =
        Flow_label.host_pair (Addr.add (Addr.of_octets 30 0 0 0) i)
          victim.Node.addr;
      target = Message.To_victim_gateway;
      duration = t_filter;
      path = [ b_gw1_addr ];
      hops = 0;
      requestor = victim.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  let (_ : Request_driver.t) =
    Request_driver.create ~rate:r1 ~dst:(List.hd topo.Chain.victim_gws).Node.addr
      ~make_request:mk topo.Chain.net victim
  in
  Sim.run ~until:(2.5 *. t_filter) sim;
  let vgw = List.hd d.Chain.victim_gateways in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E3  victim's gateway resources   (R1 = %.0f/s, Ttmp = %.1f s, T = %.0f s)"
           r1 t_tmp t_filter)
      ~columns:[ "resource"; "paper"; "measured peak" ]
  in
  Table.add_row table
    [
      "wire-speed filters nv = R1*Ttmp";
      Table.cell_int (Formulas.victim_gateway_filters ~r1 ~t_tmp);
      Table.cell_int (Filter_table.peak_occupancy (Gateway.filters vgw));
    ];
  Table.add_row table
    [
      "shadow entries mv = R1*T";
      Table.cell_int (Formulas.victim_gateway_shadow ~r1 ~t_filter);
      Table.cell_int (Gateway.shadow_peak vgw);
    ];
  Table.add_row table
    [
      "paper example: R1=100/s, Ttmp=0.6s, T=60s -> nv";
      Table.cell_int (Formulas.victim_gateway_filters ~r1:100. ~t_tmp:0.6);
      "(formula)";
    ];
  Table.add_row table
    [
      "paper example: mv";
      Table.cell_int (Formulas.victim_gateway_shadow ~r1:100. ~t_filter:60.);
      "(formula)";
    ];
  emit table

(* ------------------------------------------------------------------ E4 -- *)

(* Section IV-C: the attacker's gateway needs na = R2*T filters for a
   client contract of R2 requests/s. *)
let e4 () =
  let r2 = 5.0 in
  let t_filter = cfg.Config.t_filter in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:13 in
  let topo = Chain.build sim Chain.default_spec in
  let d = Chain.deploy ~config:cfg ~rng topo in
  let driver_node = topo.Chain.victim in
  let b_gw1 = List.hd d.Chain.attacker_gateways in
  let b_gw1_node = List.hd topo.Chain.attacker_gws in
  (* The contract between the requesting side and this gateway: R2. *)
  Gateway.set_contract b_gw1 ~peer:driver_node.Node.addr ~rate:r2 ~burst:1.;
  let mk i =
    {
      Message.flow =
        Flow_label.host_pair (Addr.add (Addr.of_octets 20 0 0 100) i)
          driver_node.Node.addr;
      target = Message.To_attacker_gateway;
      duration = t_filter;
      path = [ b_gw1_node.Node.addr ];
      hops = 0;
      requestor = driver_node.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  let (_ : Request_driver.t) =
    Request_driver.create ~rate:(3. *. r2) (* offered above contract *)
      ~dst:b_gw1_node.Node.addr ~make_request:mk topo.Chain.net driver_node
  in
  Sim.run ~until:(2.5 *. t_filter) sim;
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E4  attacker's gateway resources   (R2 = %.0f/s, T = %.0f s; offered 3x R2)"
           r2 t_filter)
      ~columns:[ "quantity"; "paper"; "measured" ]
  in
  Table.add_row table
    [
      "filters na = R2*T (peak)";
      Table.cell_int (Formulas.attacker_gateway_filters ~r2 ~t_filter);
      Table.cell_int (Filter_table.peak_occupancy (Gateway.filters b_gw1));
    ];
  let policed = Counter.get (Gateway.counters b_gw1) "req-policed" in
  let offered = float_of_int (policed) +. float_of_int
    (Counter.get (Gateway.counters b_gw1) "req-attacker-role" - policed) in
  ignore offered;
  let total = Counter.get (Gateway.counters b_gw1) "req-attacker-role" in
  Table.add_row table
    [
      "requests policed away";
      "~2/3 of offered";
      Printf.sprintf "%d of %d (%.0f%%)" policed total
        (100. *. float_of_int policed /. float_of_int (Int.max 1 total));
    ];
  Table.add_row table
    [
      "paper example: R2=1/s, T=60s -> na";
      Table.cell_int (Formulas.attacker_gateway_filters ~r2:1. ~t_filter:60.);
      "(formula)";
    ];
  emit table

(* ------------------------------------------------------------------ E5 -- *)

(* Section IV-D: the compliant attacker host itself needs na = R2*T
   outbound filters. *)
let e5 () =
  let r2 = 5.0 in
  let t_filter = cfg.Config.t_filter in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:17 in
  let topo = Chain.build sim Chain.default_spec in
  let d = Chain.deploy ~attacker_strategy:Policy.Complies ~config:cfg ~rng topo in
  let attacker = topo.Chain.attacker in
  let gw_node = List.hd topo.Chain.attacker_gws in
  let mk i =
    {
      Message.flow =
        Flow_label.host_pair attacker.Node.addr
          (Addr.add (Addr.of_octets 10 0 0 100) i);
      target = Message.To_attacker;
      duration = t_filter;
      path = [];
      hops = 0;
      requestor = gw_node.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  let (_ : Request_driver.t) =
    Request_driver.create ~rate:r2 ~dst:attacker.Node.addr ~make_request:mk
      topo.Chain.net gw_node
  in
  Sim.run ~until:(2.5 *. t_filter) sim;
  let agent = d.Chain.attacker_agent in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E5  compliant attacker's own resources   (R2 = %.0f/s, T = %.0f s)" r2
           t_filter)
      ~columns:[ "quantity"; "paper"; "measured" ]
  in
  Table.add_row table
    [
      "outbound filters na = R2*T (peak)";
      Table.cell_int (Formulas.attacker_gateway_filters ~r2 ~t_filter);
      Table.cell_int
        (Filter_table.peak_occupancy (Host_agent.Attacker.filters agent));
    ];
  Table.add_row table
    [
      "requests honored";
      "all";
      Printf.sprintf "%d / %d"
        (Host_agent.Attacker.flows_stopped agent)
        (Host_agent.Attacker.requests_received agent);
    ];
  emit table

(* ------------------------------------------------------------------ E6 -- *)

(* Sections II-B/II-D: escalation pushes filtering to the (k+1)-th AITF
   node when k gateways refuse; time to relief grows with k but stays
   bounded. *)
let e6 () =
  let table =
    Table.create
      ~title:"E6  escalation vs non-cooperating gateways   (on-off attacker)"
      ~columns:
        [
          "unresponsive gws k";
          "paper: blocked at";
          "blocked at (measured)";
          "rounds used";
          "time to first relief (s)";
          "r measured";
        ]
  in
  List.iter
    (fun k ->
      let r =
        Scenarios.run_chain
          {
            chain_params with
            Scenarios.n_non_coop_gws = k;
            attacker_strategy =
              (if k = 0 then Policy.Ignores
               else Policy.On_off { off_time = cfg.Config.t_tmp +. 0.2 });
            duration = 30.;
          }
      in
      let d = r.Scenarios.deployed in
      let blocked_at =
        let attacker_side =
          List.mapi
            (fun i gw -> (Printf.sprintf "B_gw%d" (i + 1), gw))
            d.Chain.attacker_gateways
        in
        let victim_side =
          List.mapi
            (fun i gw -> (Printf.sprintf "G_gw%d" (i + 1), gw))
            d.Chain.victim_gateways
        in
        match
          List.find_opt
            (fun (_, gw) ->
              Counter.get (Gateway.counters gw) "filter-long" > 0
              || Counter.get (Gateway.counters gw) "filter-long-self" > 0)
            (attacker_side @ List.rev victim_side)
        with
        | Some (name, _) -> name
        | None -> "nowhere"
      in
      let expected =
        if k < 3 then Printf.sprintf "B_gw%d" (k + 1) else "G_gw3 (terminal)"
      in
      let tts =
        match Scenarios.time_to_suppress r ~threshold:0.05 with
        | Some t -> Printf.sprintf "%.2f" (t -. chain_params.Scenarios.attack_start)
        | None -> "never"
      in
      let cycles = 30. /. cfg.Config.t_filter in
      let rounds =
        1
        + int_of_float
            (Float.round (float_of_int r.Scenarios.escalations /. cycles))
      in
      Table.add_row table
        [
          Table.cell_int k;
          expected;
          blocked_at;
          Table.cell_int rounds;
          tts;
          Table.cell_float ~digits:3 r.Scenarios.r_measured;
        ])
    [ 0; 1; 2; 3 ];
  emit table

(* ------------------------------------------------------------------ E7 -- *)

(* Sections II-E/III-B: forged requests cannot interrupt a legitimate flow
   when the 3-way handshake is on. *)
let e7 () =
  let run ~handshake =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:7 in
    let topo = Chain.build sim Chain.default_spec in
    let m =
      Network.add_node topo.Chain.net ~name:"M" ~addr:(Addr.of_octets 20 0 0 99)
        ~as_id:101 Node.Host
    in
    ignore
      (Network.connect topo.Chain.net (List.hd topo.Chain.attacker_gws) m
         ~bandwidth:1e7 ~delay:0.01);
    Network.compute_routes topo.Chain.net;
    let config = { cfg with Config.handshake } in
    let d = Chain.deploy ~attacker_strategy:Policy.Complies ~config ~rng topo in
    let (_ : Traffic.t) =
      Traffic.cbr ~start:0. ~flow_id:1 ~rate:1e6
        ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
    in
    let b_gw1_node = List.hd topo.Chain.attacker_gws in
    let forged =
      {
        Message.flow =
          Flow_label.host_pair topo.Chain.attacker.Node.addr
            topo.Chain.victim.Node.addr;
        target = Message.To_attacker_gateway;
        duration = config.Config.t_filter;
        path = [ b_gw1_node.Node.addr ];
        hops = 0;
        requestor = m.Node.addr;
        corr = 0;
        auth = 0L;
      }
    in
    for i = 0 to 7 do
      ignore
        (Sim.at sim
           (2.0 +. float_of_int i)
           (fun () ->
             Network.originate topo.Chain.net m
               (Message.packet ~src:m.Node.addr ~dst:b_gw1_node.Node.addr
                  (Message.Filtering_request forged))))
    done;
    Sim.run ~until:12.0 sim;
    let b_gw1 = List.hd d.Chain.attacker_gateways in
    ( Host_agent.Victim.good_bytes d.Chain.victim_agent,
      1e6 *. 12.0 /. 8.,
      Counter.get (Gateway.counters b_gw1) "handshake-fail",
      Counter.get (Gateway.counters b_gw1) "filter-long" )
  in
  let on, offered, fails, filt_on = run ~handshake:true in
  let off, _, _, filt_off = run ~handshake:false in
  let table =
    Table.create
      ~title:"E7  forged filtering requests   (off-path forger M inside B_net)"
      ~columns:
        [
          "handshake";
          "legit flow delivered";
          "forged filters installed";
          "forgeries rejected";
          "paper expectation";
        ]
  in
  Table.add_row table
    [
      "on";
      Printf.sprintf "%.0f%%" (pct on offered);
      Table.cell_int filt_on;
      Table.cell_int fails;
      "flow unharmed";
    ];
  Table.add_row table
    [
      "off";
      Printf.sprintf "%.0f%%" (pct off offered);
      Table.cell_int filt_off;
      "0";
      "flow killed (why the handshake exists)";
    ];
  emit table

(* ------------------------------------------------------------------ E8 -- *)

(* Section V: AITF vs Pushback — nodes involved, filter placement, victim
   goodput, collateral damage to traffic sharing the aggregate. *)
let e8 () =
  let duration = 30.0 in
  let legit_rate = 3e5 in
  let spec =
    { Chain.default_spec with Chain.tail_bw = 1e6; attacker_tail_bw = 1e7 }
  in
  let measure sim topo =
    let legit = ref 0. and attack = ref 0. in
    let victim = topo.Chain.victim in
    let prev = victim.Node.local_deliver in
    victim.Node.local_deliver <-
      (fun node (pkt : Packet.t) ->
        (match pkt.Packet.payload with
        | Packet.Data { attack = true; _ } ->
          attack := !attack +. float_of_int pkt.Packet.size
        | Packet.Data _ -> legit := !legit +. float_of_int pkt.Packet.size
        | _ -> ());
        prev node pkt);
    ignore sim;
    (legit, attack)
  in
  let traffic ?gate topo =
    ignore
      (Traffic.cbr ~start:0. ~flow_id:2 ~rate:legit_rate
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.bystander);
    ignore
      (Traffic.cbr ?gate ~start:1. ~attack:true ~flow_id:1 ~rate:5e6
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker)
  in
  (* none *)
  let sim = Sim.create () in
  let topo = Chain.build sim spec in
  let legit0, attack0 = measure sim topo in
  traffic topo;
  Sim.run ~until:duration sim;
  let base = (!legit0, !attack0, 0, 0, 0) in
  (* aitf — the victim agent already meters good/attack bytes, and its
     delivery handler shadows any wrapper installed before deployment. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let topo = Chain.build sim spec in
  let d = Chain.deploy ~victim_td:0.1 ~config:cfg ~rng topo in
  traffic ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent) topo;
  Sim.run ~until:duration sim;
  let aitf_nodes =
    List.length
      (List.filter
         (fun gw -> Filter_table.installs (Gateway.filters gw) > 0)
         (d.Chain.victim_gateways @ d.Chain.attacker_gateways))
  in
  let aitf_msgs =
    Scenarios.counter_total d.Chain.victim_gateways "req-propagated"
    + Host_agent.Victim.requests_sent d.Chain.victim_agent
  in
  let aitf =
    ( Host_agent.Victim.good_bytes d.Chain.victim_agent,
      Host_agent.Victim.attack_bytes d.Chain.victim_agent,
      aitf_nodes,
      aitf_msgs,
      0 )
  in
  (* pushback *)
  let sim = Sim.create () in
  let topo = Chain.build sim spec in
  let legit2, attack2 = measure sim topo in
  let pb =
    Pushback.deploy topo.Chain.net (topo.Chain.victim_gws @ topo.Chain.attacker_gws)
  in
  traffic topo;
  Sim.run ~until:duration sim;
  let push =
    ( !legit2,
      !attack2,
      Pushback.routers_limiting pb,
      Pushback.messages_sent pb,
      Pushback.limiters_installed pb )
  in
  let offered_legit = legit_rate *. duration /. 8. in
  let table =
    Table.create
      ~title:
        "E8  AITF vs Pushback   (5 Mbit/s flood into a 1 Mbit/s tail; legit \
         flow shares the aggregate)"
      ~columns:
        [
          "defense";
          "legit goodput";
          "attack delivered (kB)";
          "nodes involved";
          "control msgs";
          "filters/limiters";
        ]
  in
  let row name (legit, attack, nodes, msgs, limiters) extra =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.0f%%" (pct legit offered_legit);
        Printf.sprintf "%.0f" (attack /. 1e3);
        Table.cell_int nodes;
        Table.cell_int msgs;
        (match extra with Some s -> s | None -> Table.cell_int limiters);
      ]
  in
  row "none" base (Some "0");
  row "AITF" aitf (Some "2 (1 temp + 1 at B_gw1)");
  row "Pushback" push None;
  emit table;
  print_endline
    "Pushback rate-limits the whole victim-bound aggregate hop by hop, so\n\
     the innocent flow inside the aggregate is squeezed too and every\n\
     router on the path holds state; AITF blocks the exact flow at the\n\
     attacker's gateway — the Section V contrast.\n"

(* ------------------------------------------------------------------ E9 -- *)

(* Section III-C: scaling — a provider's filtering work tracks its own
   (misbehaving) clients, not Internet size; nothing accumulates at the
   core. *)
let e9 () =
  let zombies_per_net = 2 in
  let table =
    Table.create
      ~title:
        "E9  scaling with Internet size   (fixed 2 zombies per enterprise; \
         growing #ISPs)"
      ~columns:
        [
          "ISPs";
          "zombies";
          "filters per zombie gw (max)";
          "filters at ISP gws";
          "filters at core";
          "victim goodput";
        ]
  in
  List.iter
    (fun isps ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed:23 in
      let spec =
        {
          Hierarchy.default_spec with
          Hierarchy.isps;
          nets_per_isp = 2;
          hosts_per_net = 3;
        }
      in
      let t = Hierarchy.build sim spec in
      let d = Hierarchy.deploy ~config:cfg ~rng t in
      let victim_node = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
      let (_ : Host_agent.Victim.t) =
        Hierarchy.attach_victim ~td:0.05 d ~config:cfg ~isp:0 ~net:0 ~host:0
      in
      let legit = ref 0. in
      let prev = victim_node.Node.local_deliver in
      victim_node.Node.local_deliver <-
        (fun node (pkt : Packet.t) ->
          (match pkt.Packet.payload with
          | Packet.Data { attack = false; _ } ->
            legit := !legit +. float_of_int pkt.Packet.size
          | _ -> ());
          prev node pkt);
      (* Legit flow from the same enterprise. *)
      ignore
        (Traffic.cbr ~start:0. ~flow_id:1 ~rate:2e5 ~dst:victim_node.Node.addr
           t.Hierarchy.net
           (Hierarchy.host t ~isp:0 ~net:0 ~host:1));
      (* Zombies: every ISP except the victim's contributes. *)
      let zombie_count = ref 0 in
      for isp = 1 to isps - 1 do
        for net = 0 to 1 do
          for host = 0 to zombies_per_net - 1 do
            incr zombie_count;
            let agent =
              Hierarchy.attach_attacker ~strategy:Policy.Ignores d ~config:cfg
                ~isp ~net ~host
            in
            ignore
              (Traffic.cbr
                 ~gate:(Host_agent.Attacker.gate agent)
                 ~start:0.5 ~attack:true
                 ~flow_id:(1000 + !zombie_count)
                 ~rate:4e5 ~dst:victim_node.Node.addr t.Hierarchy.net
                 (Hierarchy.host t ~isp ~net ~host))
          done
        done
      done;
      Sim.run ~until:6.0 sim;
      let max_leaf =
        Array.fold_left
          (fun acc row ->
            Array.fold_left
              (fun acc gw ->
                Int.max acc (Filter_table.peak_occupancy (Gateway.filters gw)))
              acc row)
          0 d.Hierarchy.net_gateways
      in
      let isp_filters =
        Array.fold_left
          (fun acc gw -> acc + Counter.get (Gateway.counters gw) "filter-long")
          0 d.Hierarchy.isp_gateways
      in
      let offered = 2e5 *. 6.0 /. 8. in
      Table.add_row table
        [
          Table.cell_int isps;
          Table.cell_int !zombie_count;
          Table.cell_int max_leaf;
          Table.cell_int isp_filters;
          "0 (core runs no AITF)";
          Printf.sprintf "%.0f%%" (pct !legit offered);
        ])
    [ 2; 4; 8 ];
  emit table;
  print_endline
    "Per-gateway filter load stays pinned at its own zombie count while the\n\
     Internet (and the total attack volume) grows — filtering capacity\n\
     follows the provider's client base, Section III-C.\n"

(* ------------------------------------------------------------------ A1 -- *)

(* Ablation: traceback mechanisms. The paper assumes traceback ([CG00]
   route record makes it free; [SWKA00]/[SPS+01] cost time that Ttmp must
   cover). *)
let a1 () =
  let table =
    Table.create
      ~title:"A1  traceback ablation   (single attacker; time until the \
              attacker-side filter lands)"
      ~columns:
        [
          "mechanism";
          "paper cost model";
          "time to attacker-gw filter (s)";
          "leaked bytes";
          "extra cost";
        ]
  in
  let run ~label ~paper_cost ~make =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:29 in
    let topo = Chain.build sim Chain.default_spec in
    let config, path_source, extra = make sim topo in
    let d =
      Chain.deploy ~victim_td:0.1 ~path_source ~config ~rng topo
    in
    let (_ : Traffic.t) =
      Traffic.cbr
        ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
        ~start:1.0 ~attack:true ~flow_id:1 ~rate:1e6
        ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
    in
    (* Poll for the filter at B_gw1. *)
    let b_gw1 = List.hd d.Chain.attacker_gateways in
    let landed = ref None in
    let rec poll t =
      if t < 10. then
        ignore
          (Sim.at sim t (fun () ->
               if
                 !landed = None
                 && Counter.get (Gateway.counters b_gw1) "filter-long" > 0
               then landed := Some t;
               poll (t +. 0.01)))
    in
    poll 1.0;
    Sim.run ~until:10.0 sim;
    Table.add_row table
      [
        label;
        paper_cost;
        (match !landed with
        | Some t -> Printf.sprintf "%.2f" (t -. 1.0)
        | None -> "never");
        Printf.sprintf "%.0f"
          (Host_agent.Victim.attack_bytes d.Chain.victim_agent);
        extra ();
      ]
  in
  run ~label:"route record [CG00]" ~paper_cost:"0 (in-packet)" ~make:(fun _ _ ->
      (cfg, Host_agent.From_route_record, fun () -> "16 B header space"));
  run ~label:"SPIE digests [SPS+01]" ~paper_cost:"query round trips"
    ~make:(fun _ topo ->
      let spie = Aitf_traceback.Spie.deploy topo.Chain.net in
      ( { cfg with Config.traceback = Config.Spie_query spie },
        Host_agent.Gateway_traceback,
        fun () ->
          Printf.sprintf "%d digest queries" (Aitf_traceback.Spie.queries spie) ));
  run ~label:"PPM marking [SWKA00]" ~paper_cost:"sample convergence"
    ~make:(fun _ topo ->
      let mark_rng = Rng.create ~seed:31 in
      List.iter
        (fun gw -> Aitf_traceback.Ppm.install ~p:0.2 ~rng:mark_rng gw)
        (topo.Chain.victim_gws @ topo.Chain.attacker_gws);
      let collector = Aitf_traceback.Ppm.Collector.create () in
      ( cfg,
        Host_agent.From_ppm collector,
        fun () ->
          Printf.sprintf "%d marked packets"
            (Aitf_traceback.Ppm.Collector.samples collector) ));
  emit table;
  print_endline
    "Ttmp must cover the traceback latency (Section IV-B): the route record\n\
     is effectively free, SPIE costs query round trips at the gateway, and\n\
     PPM delays the victim's first request until enough marks arrive.\n"

(* ------------------------------------------------------------------ A2 -- *)

(* Ablation: the DRAM shadow cache (keeping requests for T while filtering
   only for Ttmp). *)
let a2 () =
  let run shadow_t =
    let config = { cfg with Config.t_filter = shadow_t } in
    Scenarios.run_chain
      {
        chain_params with
        Scenarios.config;
        duration = 60.;
        n_non_coop_gws = 1;
        attacker_strategy = Policy.On_off { off_time = cfg.Config.t_tmp +. 0.2 };
      }
  in
  let full = run cfg.Config.t_filter in
  let short = run (2.5 *. cfg.Config.t_tmp) in
  let table =
    Table.create
      ~title:
        "A2  shadow-cache ablation   (on-off attacker behind an unresponsive \
         gateway)"
      ~columns:
        [ "shadow horizon"; "r measured"; "escalations"; "victim requests" ]
  in
  let row label (r : Scenarios.chain_result) =
    Table.add_row table
      [
        label;
        Table.cell_float ~digits:3 r.Scenarios.r_measured;
        Table.cell_int r.Scenarios.escalations;
        Table.cell_int r.Scenarios.requests_sent;
      ]
  in
  row "full T (paper design)" full;
  row "barely past Ttmp" short;
  emit table;
  print_endline
    "Without a long shadow the gateway forgets the request as soon as its\n\
     temporary filter dies, so the on-off game works: more leakage, no\n\
     escalation past the complicit gateway, and the victim burns its R1\n\
     budget re-requesting.\n"

(* ----------------------------------------------------------------- E10 -- *)

(* Section III-A: the economic incentive for ingress/egress filtering — a
   provider that stops spoofed flows from exiting its network reduces the
   filtering requests it will later have to satisfy. *)
let e10 () =
  let spoof_pool = 20 in
  let run ~egress =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:37 in
    let topo = Chain.build sim Chain.default_spec in
    let d = Chain.deploy ~victim_td:0.05 ~config:cfg ~rng topo in
    let b_gw1_node = List.hd topo.Chain.attacker_gws in
    let guard =
      if egress then
        Some
          (Ingress.install ~ingress:false topo.Chain.net b_gw1_node
             ~cone:[ Addr.prefix (Addr.of_octets 20 0 0 0) 24 ])
      else None
    in
    (* A spoofed flood rotating through a pool of outside source addresses,
       plus one genuine-source attack flow. *)
    let k = ref 0 in
    ignore
      (Traffic.cbr
         ~spoof:(fun () ->
           incr k;
           Some (Addr.add (Addr.of_octets 77 0 0 1) (!k mod spoof_pool)))
         ~start:0.5 ~attack:true ~flow_id:1 ~rate:2e6
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker);
    ignore
      (Traffic.cbr
         ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
         ~start:0.5 ~attack:true ~flow_id:2 ~rate:5e5
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker);
    Sim.run ~until:8.0 sim;
    let b_gw1 = List.hd d.Chain.attacker_gateways in
    ( Host_agent.Victim.attack_bytes d.Chain.victim_agent,
      Host_agent.Victim.requests_sent d.Chain.victim_agent,
      Counter.get (Gateway.counters b_gw1) "req-attacker-role",
      Counter.get (Gateway.counters b_gw1) "filter-long",
      match guard with Some g -> Ingress.egress_drops g | None -> 0 )
  in
  let d_off, req_off, srv_off, filt_off, _ = run ~egress:false in
  let d_on, req_on, srv_on, filt_on, dropped_on = run ~egress:true in
  let table =
    Table.create
      ~title:
        "E10  ingress/egress filtering economics   (rotating-spoof flood + 1 \
         genuine flow)"
      ~columns:
        [
          "egress filtering at B_gw1";
          "attack delivered (kB)";
          "victim requests";
          "requests served by provider";
          "filters provider installs";
          "spoofed exits stopped";
        ]
  in
  Table.add_row table
    [
      "off";
      Printf.sprintf "%.0f" (d_off /. 1e3);
      Table.cell_int req_off;
      Table.cell_int srv_off;
      Table.cell_int filt_off;
      "0";
    ];
  Table.add_row table
    [
      "on (BCP 38)";
      Printf.sprintf "%.0f" (d_on /. 1e3);
      Table.cell_int req_on;
      Table.cell_int srv_on;
      Table.cell_int filt_on;
      Table.cell_int dropped_on;
    ];
  emit table;
  print_endline
    "With egress filtering the provider stops the spoofed flood at the\n\
     source network, so the filtering requests it must later satisfy drop\n\
     to the one genuine flow — the Section III-A incentive, measured.\n"

(* ----------------------------------------------------------------- E11 -- *)

(* Section V vs [PL01]: DPF is proactive (spoofed flows die en route), AITF
   is reactive (any undesired flow is blocked after detection); they
   compose. *)
let e11 () =
  let duration = 8.0 in
  let run ~dpf ~aitf =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:41 in
    let topo = Chain.build sim Chain.default_spec in
    let d =
      if aitf then Some (Chain.deploy ~victim_td:0.05 ~config:cfg ~rng topo)
      else None
    in
    let dpf_state =
      if dpf then
        Aitf_dpf.Dpf.deploy topo.Chain.net
          (topo.Chain.victim_gws @ topo.Chain.attacker_gws)
      else []
    in
    (* Count at the victim directly so the no-AITF runs measure too. *)
    let spoofed = ref 0. and genuine = ref 0. in
    let victim = topo.Chain.victim in
    let prev = victim.Node.local_deliver in
    victim.Node.local_deliver <-
      (fun node (pkt : Packet.t) ->
        (match pkt.Packet.payload with
        | Packet.Data { flow_id = 1; _ } ->
          spoofed := !spoofed +. float_of_int pkt.Packet.size
        | Packet.Data { flow_id = 2; _ } ->
          genuine := !genuine +. float_of_int pkt.Packet.size
        | _ -> ());
        prev node pkt);
    (* Spoofed flood claiming to be the bystander (a real, routable host in
       the same enterprise — loose RPF would pass it). *)
    ignore
      (Traffic.cbr
         ~spoof:(fun () -> Some topo.Chain.bystander.Node.addr)
         ~start:0.5 ~attack:true ~flow_id:1 ~rate:2e6
         ~dst:victim.Node.addr topo.Chain.net topo.Chain.attacker);
    let gate =
      match d with
      | Some d -> Host_agent.Attacker.gate d.Chain.attacker_agent
      | None -> fun _ -> true
    in
    ignore
      (Traffic.cbr ~gate ~start:0.5 ~attack:true ~flow_id:2 ~rate:2e6
         ~dst:victim.Node.addr topo.Chain.net topo.Chain.attacker);
    Sim.run ~until:duration sim;
    let dpf_drops =
      List.fold_left (fun acc s -> acc + Aitf_dpf.Dpf.dropped s) 0 dpf_state
    in
    (!spoofed /. 1e3, !genuine /. 1e3, dpf_drops)
  in
  let table =
    Table.create
      ~title:
        "E11  DPF [PL01] vs AITF   (one spoofed-source flood + one \
         genuine-source flood)"
      ~columns:
        [
          "defense";
          "spoofed delivered (kB)";
          "genuine delivered (kB)";
          "dropped proactively";
          "paper expectation";
        ]
  in
  let row name (s, g, drops) expect =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.0f" s;
        Printf.sprintf "%.0f" g;
        Table.cell_int drops;
        expect;
      ]
  in
  row "none" (run ~dpf:false ~aitf:false) "both land";
  row "DPF only" (run ~dpf:true ~aitf:false) "spoofed dies, genuine lands";
  row "AITF only" (run ~dpf:false ~aitf:true) "both blocked reactively";
  row "DPF + AITF" (run ~dpf:true ~aitf:true)
    "spoofed never leaves; genuine blocked reactively";
  emit table;
  print_endline
    "DPF kills infeasible (spoofed) packets in flight but is blind to a\n\
     genuine-source flood; AITF blocks anything but only after Td + a\n\
     round trip. The combination is strictly better — the complementarity\n\
     claimed in Section V.\n"

(* ----------------------------------------------------------------- E12 -- *)

(* Robustness: the structural claims should not depend on the regular
   chain/tree shape. Random multi-homed two-tier internets, several seeds. *)
let e12 () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let zombies_per_run = 6 in
  let run ~rogue_stub_fraction seed =
    let sim = Sim.create () in
    let rng = Rng.create ~seed in
    let topo = Random_net.build sim rng Random_net.default_spec in
    let n_stubs = Array.length topo.Random_net.stub_gws in
    let policy_rng = Rng.split rng in
    let rogue = Array.init n_stubs (fun _ ->
        Rng.bernoulli policy_rng ~p:rogue_stub_fraction)
    in
    rogue.(0) <- false (* the victim's own stub cooperates *);
    let d =
      Random_net.deploy
        ~policies:(fun ~stub ->
          if rogue.(stub) then Policy.Unresponsive else Policy.Cooperative)
        ~config:cfg ~rng topo
    in
    let victim_node = Random_net.host topo ~stub:0 ~host:0 in
    let (_ : Host_agent.Victim.t) =
      Random_net.attach_victim ~td:0.05 d ~config:cfg ~stub:0 ~host:0
    in
    (* Zombies in distinct random non-victim stubs. *)
    let stubs = Array.init (n_stubs - 1) (fun i -> i + 1) in
    Rng.shuffle rng stubs;
    let offered = ref 0. in
    for z = 0 to zombies_per_run - 1 do
      let stub = stubs.(z mod Array.length stubs) in
      let agent =
        Random_net.attach_attacker ~strategy:Policy.Ignores d ~config:cfg
          ~stub ~host:(z mod 2)
      in
      offered := !offered +. (4e5 *. 7.5 /. 8.);
      ignore
        (Traffic.cbr
           ~gate:(Host_agent.Attacker.gate agent)
           ~start:0.5 ~attack:true ~flow_id:(500 + z) ~rate:4e5
           ~dst:victim_node.Node.addr topo.Random_net.net
           (Random_net.host topo ~stub ~host:(z mod 2)))
    done;
    Sim.run ~until:8.0 sim;
    let count_filters gws =
      Array.fold_left
        (fun acc gw ->
          acc
          + Counter.get (Gateway.counters gw) "filter-long"
          + Counter.get (Gateway.counters gw) "filter-long-self")
        0 gws
    in
    let at_stubs = count_filters d.Random_net.stub_gateways in
    let at_transits = count_filters d.Random_net.transit_gateways in
    let victim_agent_bytes =
      (* victim agent was shadowed by attach; count received via node stats *)
      float_of_int victim_node.Node.rx_bytes
    in
    ignore victim_agent_bytes;
    (at_stubs, at_transits)
  in
  let table =
    Table.create
      ~title:
        "E12  random multi-homed topologies   (8 seeds, 6 zombies each; \
         where does filtering land?)"
      ~columns:
        [
          "stub cooperation";
          "filters at stub edges";
          "filters at transits";
          "expectation";
        ]
  in
  let total f =
    List.fold_left
      (fun (a, b) seed ->
        let x, y = f seed in
        (a + x, b + y))
      (0, 0) seeds
  in
  let coop_stubs, coop_transits = total (run ~rogue_stub_fraction:0.) in
  let rogue_stubs, rogue_transits = total (run ~rogue_stub_fraction:0.4) in
  Table.add_row table
    [
      "all cooperative";
      Table.cell_int coop_stubs;
      Table.cell_int coop_transits;
      "all filtering at the edge";
    ];
  Table.add_row table
    [
      "40% of stubs rogue";
      Table.cell_int rogue_stubs;
      Table.cell_int rogue_transits;
      "escalation moves rogue stubs' share to transits";
    ];
  emit table;
  print_endline
    "Across randomised internets the leaf-first placement and the\n\
     escalation fallback hold independent of topology regularity.\n"

(* ------------------------------------------------------------------ A3 -- *)

(* Ablation: wildcard aggregation when the victim gateway runs out of
   hardware filters. *)
let a3 () =
  let flows = 20 in
  let capacity = 4 in
  let run ~aggregate =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:43 in
    let topo = Chain.build sim Chain.default_spec in
    let config =
      { cfg with Config.aggregate_on_pressure = aggregate; r1 = 1000.; r1_burst = 1000. }
    in
    let d =
      Chain.deploy ~victim_td:0.05 ~victim_filter_capacity:capacity ~config
        ~rng topo
    in
    for i = 0 to flows - 1 do
      ignore
        (Traffic.cbr
           ~spoof:(fun () -> Some (Addr.add (Addr.of_octets 20 0 2 0) i))
           ~start:0.5 ~attack:true ~flow_id:(300 + i) ~rate:2e5
           ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker)
    done;
    (* A legitimate flow towards the same victim: collateral probe. *)
    ignore
      (Traffic.cbr ~start:0. ~flow_id:9 ~rate:2e5
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.bystander);
    Sim.run ~until:6.0 sim;
    let vgw = List.hd d.Chain.victim_gateways in
    ( Host_agent.Victim.attack_bytes d.Chain.victim_agent,
      Host_agent.Victim.good_bytes d.Chain.victim_agent,
      Counter.get (Gateway.counters vgw) "filter-full",
      Counter.get (Gateway.counters vgw) "filter-aggregated" )
  in
  let atk_off, good_off, full_off, _ = run ~aggregate:false in
  let atk_on, good_on, _, agg_on = run ~aggregate:true in
  let good_offered = 2e5 *. 6.0 /. 8. in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "A3  wildcard aggregation under filter pressure   (%d flows, %d \
            hardware slots)"
           flows capacity)
      ~columns:
        [
          "aggregation";
          "attack delivered (kB)";
          "legit delivered";
          "capacity misses";
          "aggregates installed";
        ]
  in
  Table.add_row table
    [
      "off";
      Printf.sprintf "%.0f" (atk_off /. 1e3);
      Printf.sprintf "%.0f%%" (pct good_off good_offered);
      Table.cell_int full_off;
      "0";
    ];
  Table.add_row table
    [
      "on";
      Printf.sprintf "%.0f" (atk_on /. 1e3);
      Printf.sprintf "%.0f%%" (pct good_on good_offered);
      "-";
      Table.cell_int agg_on;
    ];
  emit table;
  print_endline
    "The wildcard (any source -> victim) keeps the tail circuit alive when\n\
     exact filters run out, at the price of briefly blocking legitimate\n\
     traffic to the same victim — the classic precision/coverage trade the\n\
     paper's wildcarded flow labels enable.\n"

(* ----------------------------------------------------------------- E13 -- *)

(* Service quality under attack: the transaction-level view of the tail
   circuit. Raw goodput understates the damage — transactions need all
   their packets — so this is the "severely disrupted, if not fail
   completely" of the paper's introduction, quantified. *)
let e13 () =
  let duration = 30.0 in
  let run ~with_aitf =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:47 in
    let spec =
      { Chain.default_spec with Chain.tail_bw = 1e6; attacker_tail_bw = 1e7 }
    in
    let topo = Chain.build sim spec in
    (* The server application must see requests before the AITF victim
       agent takes over delivery, so attach it first; both chain to the
       previous handler for payloads they do not own. *)
    let (_ : Aitf_workload.App.Server.t) =
      Aitf_workload.App.Server.create ~reply_packets:4 topo.Chain.net
        topo.Chain.victim
    in
    let d =
      if with_aitf then Some (Chain.deploy ~victim_td:0.1 ~config:cfg ~rng topo)
      else None
    in
    let client =
      Aitf_workload.App.Client.create ~period:0.25 ~timeout:1.0 ~retries:1
        ~stop:(duration -. 2.) ~server:topo.Chain.victim.Node.addr
        topo.Chain.net topo.Chain.bystander
    in
    let gate =
      match d with
      | Some d -> Host_agent.Attacker.gate d.Chain.attacker_agent
      | None -> fun _ -> true
    in
    ignore
      (Traffic.cbr ~gate ~start:2. ~attack:true ~flow_id:1 ~rate:5e6
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker);
    Sim.run ~until:duration sim;
    client
  in
  let table =
    Table.create
      ~title:
        "E13  transaction service quality   (request/4-packet-response app \
         on a 1 Mbit/s tail under a 5 Mbit/s flood)"
      ~columns:
        [
          "defense";
          "transactions ok";
          "failed";
          "completion rate";
          "latency p50 (ms)";
          "latency p99 (ms)";
        ]
  in
  let row name client =
    let lat =
      Aitf_stats.Summary.of_list (Aitf_workload.App.Client.latencies client)
    in
    Table.add_row table
      [
        name;
        Table.cell_int (Aitf_workload.App.Client.completed client);
        Table.cell_int (Aitf_workload.App.Client.failed client);
        Printf.sprintf "%.0f%%"
          (100. *. Aitf_workload.App.Client.completion_rate client);
        Printf.sprintf "%.1f" (1e3 *. lat.Aitf_stats.Summary.p50);
        Printf.sprintf "%.1f" (1e3 *. lat.Aitf_stats.Summary.p99);
      ]
  in
  let none_client = run ~with_aitf:false in
  let aitf_client = run ~with_aitf:true in
  row "none" none_client;
  row "AITF" aitf_client;
  emit table;
  let histogram name client =
    let h =
      Aitf_stats.Histogram.create
        ~bounds:(Aitf_stats.Histogram.log_bounds ~lo:0.1 ~hi:4.0 ~per_decade:4)
    in
    List.iter (Aitf_stats.Histogram.add h)
      (Aitf_workload.App.Client.latencies client);
    Printf.printf "latency distribution, %s (s):\n%s\n" name
      (Aitf_stats.Histogram.render ~width:30 h)
  in
  histogram "no defense" none_client;
  histogram "AITF" aitf_client;
  print_endline
    "Packet goodput alone hides half the story: under the flood, surviving\n\
     transactions also queue behind the attack (latency blows up) and most\n\
     fail outright. AITF restores both completion rate and latency.\n"

(* ------------------------------------------------------------------ A4 -- *)

(* Ablation: the victim tail's queue discipline. Orthogonal to AITF, but
   part of any real deployment conversation: does smarter queueing change
   what the victim experiences before/without filtering? *)
let a4 () =
  let duration = 20.0 in
  let run discipline =
    let sim = Sim.create () in
    let spec =
      {
        Chain.default_spec with
        Chain.tail_bw = 1e6;
        attacker_tail_bw = 1e7;
        tail_discipline = discipline;
      }
    in
    let topo = Chain.build sim spec in
    let (_ : Aitf_workload.App.Server.t) =
      Aitf_workload.App.Server.create ~reply_packets:4 topo.Chain.net
        topo.Chain.victim
    in
    let client =
      Aitf_workload.App.Client.create ~period:0.25 ~timeout:1.0 ~retries:1
        ~stop:(duration -. 2.) ~server:topo.Chain.victim.Node.addr
        topo.Chain.net topo.Chain.bystander
    in
    ignore
      (Traffic.cbr ~start:1. ~attack:true ~flow_id:1 ~rate:3e6
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker);
    Sim.run ~until:duration sim;
    (client, Link.early_drops topo.Chain.victim_tail)
  in
  let table =
    Table.create
      ~title:
        "A4  victim-tail queue discipline under flood (no AITF)   (3 Mbit/s \
         flood into 1 Mbit/s)"
      ~columns:
        [
          "discipline";
          "transactions ok";
          "completion rate";
          "latency p50 (ms)";
          "early drops";
        ]
  in
  let row name (client, early) =
    let lat =
      Aitf_stats.Summary.of_list (Aitf_workload.App.Client.latencies client)
    in
    Table.add_row table
      [
        name;
        Table.cell_int (Aitf_workload.App.Client.completed client);
        Printf.sprintf "%.0f%%"
          (100. *. Aitf_workload.App.Client.completion_rate client);
        Printf.sprintf "%.1f" (1e3 *. lat.Aitf_stats.Summary.p50);
        Table.cell_int early;
      ]
  in
  row "drop-tail" (run Link.Drop_tail);
  row "RED"
    (run (Link.Red { min_th = 8000; max_th = 32000; max_p = 0.3 }));
  emit table;
  print_endline
    "RED keeps the standing queue (and so the latency) down, but with a\n\
     non-adaptive flood its random early drops hit the innocent flow just\n\
     as blindly — completion actually falls. No queue discipline recovers\n\
     capacity taken by a flood; filtering (AITF, E13) remains the fix.\n"

(* ------------------------------------------------------------------ A5 -- *)

(* Ablation: blocking vs rate-limiting filters (footnote 10). The paper
   argues DoS traffic should be blocked outright, not rate-limited the way
   pushback treats flash crowds. *)
let a5 () =
  let run action =
    let config = { cfg with Config.filter_action = action } in
    Scenarios.run_chain
      { chain_params with Scenarios.config; duration = 30. }
  in
  let blocked = run Config.Block in
  let limited = run (Config.Rate_limit 12_500.) (* 100 kbit/s *) in
  let table =
    Table.create
      ~title:
        "A5  block vs rate-limit at the attacker's gateway   (1 Mbit/s \
         undesired flow; limit = 100 kbit/s)"
      ~columns:
        [ "filter action"; "attack delivered (kB)"; "r measured";
          "escalations"; "victim requests" ]
  in
  let row name (r : Scenarios.chain_result) =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.0f" (r.Scenarios.attack_received_bytes /. 1e3);
        Table.cell_float ~digits:3 r.Scenarios.r_measured;
        Table.cell_int r.Scenarios.escalations;
        Table.cell_int r.Scenarios.requests_sent;
      ]
  in
  row "block" blocked;
  row "rate-limit" limited;
  Table.print table;
  print_endline
    "Rate-limiting destabilises the protocol: the residual trickle keeps\n\
     hitting the victim gateway's shadow cache, which (correctly) reads\n\
     traffic-after-handoff as non-cooperation and escalates round after\n\
     round, burning requests and filters on every gateway up the path.\n\
     Blocking converges in one quiet round per T. Footnote 10's \"it makes\n\
     sense to block it\" is not just about leak volume — a zero-traffic\n\
     handoff signal is what lets the victim's gateway tell cooperation\n\
     from defection at all.\n"

(* ----------------------------------------------------------------- E14 -- *)

(* The introduction's motivating claim: "manual filter propagation becomes
   unacceptably slow or even infeasible" against an attack that changes
   shape faster than a human responds. A shape-shifting flood (new spoofed
   identity every 2 s) against three defenses: none, a human operator, and
   AITF. *)
let e14 () =
  let duration = 60.0 in
  let shift_period = 2.0 in
  let rate = 1e6 in
  let run ~pool ~defense =
    let sim = Sim.create () in
    let rng = Rng.create ~seed:53 in
    let topo = Chain.build sim Chain.default_spec in
    let d =
      match defense with
      | `Aitf -> Some (Chain.deploy ~victim_td:0.1 ~config:cfg ~rng topo)
      | `None | `Manual _ -> None
    in
    let manual =
      match defense with
      | `Manual response_time ->
        Some
          (Aitf_workload.Manual_defense.deploy ~response_time
             ~gateway:(List.hd topo.Chain.victim_gws) ~victim:topo.Chain.victim
             topo.Chain.net)
      | `None | `Aitf -> None
    in
    (* Count attack bytes at the victim node (below any agent). *)
    let received = ref 0. in
    let prev = topo.Chain.victim.Node.local_deliver in
    topo.Chain.victim.Node.local_deliver <-
      (fun node (pkt : Packet.t) ->
        (match pkt.Packet.payload with
        | Packet.Data { attack = true; _ } ->
          received := !received +. float_of_int pkt.Packet.size
        | _ -> ());
        prev node pkt);
    let shifter =
      Aitf_workload.Shape_shifter.create ~pool ~shift_period ~start:1.
        ?gate:
          (Option.map
             (fun d -> Host_agent.Attacker.gate d.Chain.attacker_agent)
             d)
        ~flow_id:1 ~rate ~dst:topo.Chain.victim.Node.addr
        ~spoof_base:(Addr.of_octets 20 0 5 0) topo.Chain.net
        topo.Chain.attacker
    in
    Sim.run ~until:duration sim;
    let offered = rate *. (duration -. 1.) /. 8. in
    let filters =
      match (d, manual) with
      | Some d, _ ->
        Scenarios.counter_total d.Chain.attacker_gateways "filter-long"
      | _, Some m -> Aitf_workload.Manual_defense.filters_installed m
      | _ -> 0
    in
    ( 100. *. !received /. offered,
      Aitf_workload.Shape_shifter.shapes_used shifter,
      filters )
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E14  shape-shifting attack vs response speed   (new identity \
            every %.0f s for %.0f s)"
           shift_period duration)
      ~columns:
        [
          "defense";
          "spoof pool";
          "attack delivered";
          "shapes seen";
          "filters installed";
        ]
  in
  let row name ~pool ~defense =
    let pct_v, shapes, filters = run ~pool ~defense in
    Table.add_row table
      [
        name;
        Table.cell_int pool;
        Printf.sprintf "%.0f%%" pct_v;
        Table.cell_int shapes;
        Table.cell_int filters;
      ]
  in
  row "none" ~pool:1000 ~defense:`None;
  row "manual operator (30 s/filter)" ~pool:1000 ~defense:(`Manual 30.);
  row "manual operator (30 s/filter)" ~pool:8 ~defense:(`Manual 30.);
  row "manual operator (5 s/filter)" ~pool:1000 ~defense:(`Manual 5.);
  row "AITF" ~pool:1000 ~defense:`Aitf;
  Table.print table;
  print_endline
    "Against fresh identities every 2 s the human never catches up — every\n\
     filter lands after its flow is gone (with a small recycling pool the\n\
     operator eventually covers it, at one filter per identity). AITF\n\
     answers at protocol speed: each shape leaks only its detection window.\n\
     This is the introduction's case for automating filter propagation.\n"

(* ----------------------------------------------------------------- E15 -- *)

(* Control-plane reliability under loss. AITF's filtering requests and
   handshake messages cross the very tail circuit the flood congests, so
   the protocol must survive losing them (Section III's robustness
   discussion). Sweep i.i.d. control-packet loss on the victim's tail from
   0 to 30% and compare time-to-suppression with the classic single-shot
   control plane against the retransmitting one (4 retries, 300 ms initial
   RTO, exponential backoff). Single-shot recovery leans on detection
   re-firing after min_report_gap; retransmission reacts at RTO speed and
   should keep the time-to-filter near its lossless value. *)
let e15 () =
  let losses = [ 0.0; 0.05; 0.1; 0.2; 0.3 ] in
  let run ~loss ~retries =
    let r =
      Scenarios.run_chain
        {
          chain_params with
          Scenarios.duration = 60.;
          attack_rate = 1e6;
          config = { cfg with Config.ctrl_retries = retries; ctrl_rto = 0.3 };
          ctrl_faults =
            (if loss > 0. then [ Aitf_fault.Fault.Loss loss ] else []);
        }
    in
    (Scenarios.time_to_suppress r ~threshold:0.05, r)
  in
  let table =
    Table.create
      ~title:
        "E15  time-to-filter vs control-plane loss   (i.i.d. loss on the \
         victim tail, single-shot vs 4 retries @ 300 ms RTO)"
      ~columns:
        [
          "ctrl loss";
          "drops injected";
          "single-shot: suppressed (s)";
          "retrans: suppressed (s)";
          "retransmissions";
        ]
  in
  let cell_ttf = function
    | Some t -> Printf.sprintf "%.2f" t
    | None -> "never"
  in
  List.iter
    (fun loss ->
      let ttf0, _ = run ~loss ~retries:0 in
      let ttf4, r4 = run ~loss ~retries:4 in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100. *. loss);
          Table.cell_int r4.Scenarios.faults_injected;
          cell_ttf ttf0;
          cell_ttf ttf4;
          Table.cell_int
            (r4.Scenarios.requests_retransmitted
            + r4.Scenarios.ctrl_retransmits);
        ])
    losses;
  emit table;
  print_endline
    "Retransmission holds the time-to-filter near its lossless value across\n\
     the sweep; the single-shot control plane recovers only at detection\n\
     re-report speed (min_report_gap), and its tail latency grows with the\n\
     loss rate. Either way the protocol converges: a lost request delays\n\
     filtering, it does not defeat it.\n"

(* ----------------------------------------------------------------- E16 -- *)

(* Surviving an attack on AITF itself: a botnet rotates spoofed sources to
   exhaust the victim gateway's nv = R1*Ttmp filter slots (Section III).
   With the table 32 slots deep and only two gateways on the path, a pool
   of 4x capacity overwhelms every exact-filter budget in the network; the
   sweep compares the overload manager's watermark-driven prefix
   aggregation + priority eviction against the plain refuse-installs
   baseline, and prices the aggregates' collateral damage. *)
let e16 () =
  let capacity = 32 in
  let run ~sources ~manager =
    Scenarios.run_chain
      {
        chain_params with
        Scenarios.spec =
          { Chain.default_spec with Chain.depth = 1 };
        config =
          {
            cfg with
            Config.t_tmp = 0.5;
            filter_capacity = capacity;
            overload_manager = manager;
            overload_low = 0.5;
          };
        duration = 30.;
        attack_rate = 2e7;
        legit_rate = 6e6;
        in_pool_legit_rate = 5e5;
        adversaries =
          [ Aitf_adversary.Adversary.Slot_exhaustion { sources; rate = 2e7 } ];
      }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E16  filter-slot exhaustion vs the overload manager   (capacity \
            %d, 20 Mbit/s rotating-spoof attack, 10 Mbit/s victim tail)"
           capacity)
      ~columns:
        [
          "spoofed sources";
          "x capacity";
          "off: goodput";
          "off: attack leaked";
          "on: goodput";
          "on: attack leaked";
          "aggregations";
          "evictions";
          "collateral (pkts)";
        ]
  in
  List.iter
    (fun sources ->
      let off = run ~sources ~manager:false in
      let on = run ~sources ~manager:true in
      let goodput r =
        Printf.sprintf "%.1f%%"
          (pct r.Scenarios.good_received_bytes r.Scenarios.good_offered_bytes)
      in
      let leaked r =
        Printf.sprintf "%.1f%%"
          (pct r.Scenarios.attack_received_bytes
             r.Scenarios.attack_offered_bytes)
      in
      Table.add_row table
        [
          Table.cell_int sources;
          Printf.sprintf "%.0fx" (float_of_int sources /. float_of_int capacity);
          goodput off;
          leaked off;
          goodput on;
          leaked on;
          Table.cell_int on.Scenarios.overload_aggregations;
          Table.cell_int on.Scenarios.overload_evictions;
          Table.cell_int on.Scenarios.collateral_packets;
        ])
    [ 32; 64; 128; 256 ];
  emit table;
  print_endline
    "At 1-2x capacity the exact-filter budget still stretches across the\n\
     path, so the manager's aggregates only add collateral and it slightly\n\
     trails the baseline -- degraded mode is not free, which is why the\n\
     watermarks keep it off until the table actually fills. From 4x on the\n\
     baseline leaks double-digit shares of the attack through its full\n\
     tables while the manager folds the spoof pool into a handful of prefix\n\
     aggregates and keeps victim goodput strictly above the baseline; the\n\
     price is the collateral column -- a legitimate host unlucky enough to\n\
     live inside the spoofed prefix loses its traffic to the aggregate.\n"

(* ----------------------------------------------------------------- E17 -- *)

(* Hybrid fluid/packet engine (lib/flowsim). Two claims:

   (a) on the flooding chain scenarios the hybrid engine agrees with the
       packet engine — time-to-filter and victim goodput within 10% —
       while processing far fewer discrete events;
   (b) the fluid plane scales the attacker population to 10^5..10^6
       sources in seconds of wall-clock, a regime the packet engine cannot
       represent at all.

   The sweep's largest population is capped by E17_MAX_SOURCES (CI runs
   the smaller configs; the default reaches 10^6). *)

let e17_max_sources () =
  match Sys.getenv_opt "E17_MAX_SOURCES" with
  | Some s -> ( try max 1000 (int_of_string s) with Failure _ -> 1_000_000)
  | None -> 1_000_000

let e17 () =
  let tolerance = 0.10 in
  let agree =
    Table.create
      ~title:
        "E17  engine agreement   (20 Mbit/s flood vs 10 Mbit/s tail, 1 \
         Mbit/s legit, 30 s)"
      ~columns:
        [ "scenario"; "metric"; "packet"; "hybrid"; "diff %"; "verdict" ]
  in
  let compare_engines (name, strategy) =
    let base =
      {
        chain_params with
        Scenarios.attacker_strategy = strategy;
        attack_rate = 20e6;
        legit_rate = 1e6;
        duration = 30.;
      }
    in
    let packet = Scenarios.run_chain base in
    let hybrid =
      Scenarios.run_chain
        {
          base with
          Scenarios.config =
            { base.Scenarios.config with Config.engine = Config.Hybrid };
        }
    in
    let row metric pv hv fmt =
      let diff =
        if pv = 0. then if hv = 0. then 0. else infinity
        else abs_float (hv -. pv) /. pv
      in
      Table.add_row agree
        [
          name;
          metric;
          fmt pv;
          fmt hv;
          Printf.sprintf "%.1f" (100. *. diff);
          (if diff <= tolerance then "AGREE" else "DISAGREE");
        ]
    in
    let tts r =
      match Scenarios.time_to_suppress r ~threshold:0.05 with
      | Some t -> t -. base.Scenarios.attack_start
      | None -> base.Scenarios.duration
    in
    row "time-to-filter (s)" (tts packet) (tts hybrid) (fun v ->
        Printf.sprintf "%.2f" v);
    row "victim goodput (MB)"
      (packet.Scenarios.good_received_bytes /. 1e6)
      (hybrid.Scenarios.good_received_bytes /. 1e6)
      (fun v -> Printf.sprintf "%.2f" v);
    Table.add_row agree
      [
        name;
        "events processed";
        string_of_int packet.Scenarios.events_processed;
        string_of_int hybrid.Scenarios.events_processed;
        "";
        "";
      ]
  in
  List.iter compare_engines
    [
      ("complying attacker", Policy.Complies);
      ("ignoring attacker", Policy.Ignores);
    ];
  emit agree;
  (* (b) population scaling under the fluid plane. *)
  let sweep =
    Table.create
      ~title:
        "E17  hybrid scaling   (20 Mbit/s total over N spoofed sources, 8 \
         pools, 30 s simulated)"
      ~columns:
        [
          "sources";
          "wall-clock (s)";
          "peak heap (MB)";
          "events";
          "events/sim-s";
          "filters";
          "requests";
          "tts (s)";
          "good recv (MB)";
        ]
  in
  (* The swarm spoofs from /12 pools, so per-source filters can never cover
     the population — exactly the regime the overload manager's prefix
     aggregation exists for. Enable it so the sweep shows AITF actually
     suppressing the flood at scale. *)
  let hybrid_cfg =
    {
      cfg with
      Config.engine = Config.Hybrid;
      overload_manager = true;
      aggregate_on_pressure = true;
      (* Small enough that the population drives the tables into degraded
         mode, so prefix aggregation — not per-source filters, which R1*T
         caps at ~600 — is what suppresses the flood. *)
      filter_capacity = 128;
    }
  in
  let cap = e17_max_sources () in
  List.iter
    (fun n ->
      if n <= cap then begin
        let t0 = Unix.gettimeofday () in
        let r =
          Scenarios.run_swarm
            {
              Scenarios.default_swarm with
              Scenarios.swarm_config = hybrid_cfg;
              swarm_sources = n;
              swarm_pools = 8;
              swarm_attack_rate = 20e6;
              swarm_legit_rate = 1e6;
              swarm_duration = 30.;
            }
        in
        let wall = Unix.gettimeofday () -. t0 in
        let heap_mb =
          float_of_int (Gc.quick_stat ()).Gc.top_heap_words
          *. float_of_int (Sys.word_size / 8)
          /. 1e6
        in
        let tts =
          let limit = 0.05 *. 20e6 in
          let start = r.Scenarios.swarm_params.Scenarios.swarm_attack_start in
          let points =
            List.filter
              (fun (t, _) -> t >= start)
              (Aitf_stats.Series.points r.Scenarios.swarm_victim_rate)
          in
          let rec drop_until_seen = function
            | (_, v) :: rest when v < limit -> drop_until_seen rest
            | pts -> pts
          in
          match
            List.find_opt (fun (_, v) -> v < limit) (drop_until_seen points)
          with
          | Some (t, _) -> Printf.sprintf "%.2f" (t -. start)
          | None -> "never"
        in
        Table.add_row sweep
          [
            string_of_int n;
            Printf.sprintf "%.2f" wall;
            Printf.sprintf "%.1f" heap_mb;
            string_of_int r.Scenarios.swarm_events;
            Printf.sprintf "%.0f"
              (float_of_int r.Scenarios.swarm_events /. 30.);
            string_of_int r.Scenarios.swarm_filters;
            string_of_int r.Scenarios.swarm_requests_sent;
            tts;
            Printf.sprintf "%.2f"
              (r.Scenarios.swarm_good_received_bytes /. 1e6);
          ]
      end)
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  emit sweep

(* ----------------------------------------------------------------- E18 -- *)

(* Filter placement at Internet scale (lib/topo + the Placement seam,
   docs/TOPOLOGY.md and docs/PLACEMENT.md). One seeded 1000-domain AS-level
   Internet — power-law degree, valley-free routing — with the victim in a
   stub domain and the attack population spread as fluid pools over 40
   domains, re-run under each of the three placement policies. Scored on
   the three axes the placement papers compare on: collateral damage
   (legitimate traffic lost), filter-slot usage (peak occupancy summed
   over every gateway) and time-to-filter (victim relief).

   Expected shape: vanilla AITF cannot cover a spoofed million-source
   population with per-flow filters, so it never suppresses the flood and
   the victim tail stays saturated (the 'collateral' is queue loss, not
   filtering); Optimal covers the attack /17s at the source gateways for
   ~1 slot per attack domain and near-zero collateral; Adaptive starts
   from a coarse victim-side wildcard (instant relief, real collateral)
   and walks it out to the sources, landing between the two.

   The largest population is capped by E18_MAX_SOURCES (CI runs 10^5; the
   default reaches the paper-scale 10^6). *)

let e18_max_sources () =
  match Sys.getenv_opt "E18_MAX_SOURCES" with
  | Some s -> ( try max 10_000 (int_of_string s) with Failure _ -> 1_000_000)
  | None -> 1_000_000

let e18 () =
  let module As_scenario = Aitf_workload.As_scenario in
  let table =
    Table.create
      ~title:
        "E18  filter placement at Internet scale   (1000 domains, 40 attack \
         domains, 200 Mbit/s attack vs 100 Mbit/s victim tail, 30 s)"
      ~columns:
        [
          "sources";
          "policy";
          "tts (s)";
          "collateral %";
          "slots peak";
          "installs";
          "reports";
          "events";
          "wall (s)";
        ]
  in
  let cap = e18_max_sources () in
  List.iter
    (fun n ->
      if n <= cap then
        List.iter
          (fun policy ->
            let t0 = Unix.gettimeofday () in
            let r =
              As_scenario.run
                {
                  As_scenario.default with
                  As_scenario.as_config =
                    {
                      Config.default with
                      Config.engine = Config.Hybrid;
                      placement = policy;
                    };
                  as_sources = n;
                }
            in
            let wall = Unix.gettimeofday () -. t0 in
            Table.add_row table
              [
                string_of_int n;
                Placement.policy_to_string policy;
                (match r.As_scenario.r_time_to_filter with
                | Some t -> Printf.sprintf "%.2f" t
                | None -> "never");
                Printf.sprintf "%.1f"
                  (100. *. r.As_scenario.r_collateral_fraction);
                string_of_int r.As_scenario.r_slots_peak;
                string_of_int r.As_scenario.r_filters_installed;
                string_of_int r.As_scenario.r_reports;
                string_of_int r.As_scenario.r_events;
                Printf.sprintf "%.2f" wall;
              ])
          Placement.all_policies)
    [ 100_000; 1_000_000 ];
  emit table

(* The golden-trace differential matrix as a perf trajectory
   (lib/workload/matrix.ml, docs/GOLDENS.md). Every cell of the
   topology x engine x fault x adversary x placement matrix runs
   instrumented — wall-clock, GC-allocated bytes, peak event-queue
   depth, events executed — and the per-cell trajectory lands in
   BENCH_E19.json (schema aitf.matrix-bench/1), the artifact CI uploads
   per commit and diffs against the previous run for >20% wall-clock
   regressions. Golden status is reported per cell (drift details via
   `aitf_sim matrix`, intentional changes via `--bless`); the agreement
   rows extend E17's 10% packet-vs-hybrid gate across every pristine
   engine pair in the matrix.

   E19_SMOKE=1 restricts to the reduced CI cell set; E19_GOLDENS
   overrides the goldens directory (default test/goldens, resolved
   against the working directory — run from the repo root). *)

let e19 () =
  let module Matrix = Aitf_workload.Matrix in
  let smoke = Sys.getenv_opt "E19_SMOKE" <> None in
  let goldens_dir =
    match Sys.getenv_opt "E19_GOLDENS" with
    | Some d -> d
    | None -> "test/goldens"
  in
  let s = Matrix.run ~clock:Unix.gettimeofday ~smoke ~goldens_dir () in
  let table =
    Table.create
      ~title:"E19  golden-trace matrix: perf trajectory per cell"
      ~columns:
        [ "cell"; "golden"; "wall (s)"; "alloc MB"; "peak queue"; "events" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.Matrix.cr_cell.Matrix.id;
          (match r.Matrix.cr_status with
          | Matrix.Match -> "match"
          | Matrix.Drift -> "DRIFT"
          | Matrix.Missing -> "missing"
          | Matrix.Blessed -> "blessed");
          Printf.sprintf "%.3f" r.Matrix.cr_perf.Matrix.wall;
          Printf.sprintf "%.1f" (r.Matrix.cr_perf.Matrix.alloc_bytes /. 1e6);
          string_of_int r.Matrix.cr_perf.Matrix.peak_queue;
          string_of_int r.Matrix.cr_perf.Matrix.engine_events;
        ])
    s.Matrix.s_results;
  emit table;
  let agree =
    Table.create
      ~title:"E19  matrix-wide engine agreement   (E17 gate, 10% on goodput)"
      ~columns:[ "pair"; "metric"; "packet"; "hybrid"; "diff %"; "verdict" ]
  in
  List.iter
    (fun p ->
      Table.add_row agree
        [
          p.Matrix.pr_base;
          p.Matrix.pr_metric;
          Printf.sprintf "%.0f" p.Matrix.pr_packet;
          Printf.sprintf "%.0f" p.Matrix.pr_hybrid;
          Printf.sprintf "%.1f" (100. *. p.Matrix.pr_diff);
          (if not p.Matrix.pr_gated then "info"
           else if p.Matrix.pr_ok then "AGREE"
           else "DISAGREE");
        ])
    s.Matrix.s_pairs;
  emit agree;
  Aitf_obs.Report.write_json "BENCH_E19.json" (Matrix.bench_json s);
  Printf.printf "wrote BENCH_E19.json  (%d cells, %d drifted, %d gated disagreements)\n"
    (List.length s.Matrix.s_results)
    s.Matrix.s_drifted s.Matrix.s_disagreements

(* ----------------------------------------------------------------- E20 -- *)

(* Verifiable filtering contracts under Byzantine gateways
   (lib/contract, docs/CONTRACTS.md). The validated verification regime —
   a 60-domain Internet whose victim gateway is capacity-constrained so
   a lying first-hop gateway's traffic is visible at the victim, with the
   fast audit clock (deadline 0.75 s, grace 0.35 s) — re-run with 0%,
   10%, 20% and 30% of the attack-side gateways forging install receipts
   (the affirmative-evidence lying mode: every engaged liar must be
   convicted by signature checks alone, independent of escalation
   timing).

   Three gates, asserted by CI over BENCH_E20.json (schema
   aitf.contract-bench/1):
   - detection: every corrupted gateway flagged, zero honest gateways
     flagged (missed = false_positives = 0 at every fraction);
   - recovery: the victim reaches time-to-filter at every fraction
     (failover routes around the liars instead of stalling);
   - goodput: legitimate bytes delivered stay within 10% of the
     all-honest baseline (ratio >= 0.9). *)

let e20 () =
  let module As_scenario = Aitf_workload.As_scenario in
  let module As_graph = Aitf_topo.As_graph in
  let module Auditor = Aitf_contract.Auditor in
  let module Adversary = Aitf_adversary.Adversary in
  let module Json = Aitf_obs.Json in
  let table =
    Table.create
      ~title:
        "E20  verifiable contracts vs Byzantine gateways   (60 domains, 8 \
         attack domains, forge mode, audit 0.75/0.35 s)"
      ~columns:
        [
          "byz %";
          "corrupted";
          "flagged";
          "missed";
          "false pos";
          "failovers";
          "tts (s)";
          "goodput MB";
          "ratio";
          "wall (s)";
        ]
  in
  let run_fraction f =
    let t0 = Unix.gettimeofday () in
    let r =
      As_scenario.run
        {
          As_scenario.default with
          As_scenario.as_spec =
            { As_graph.default_spec with As_graph.domains = 60 };
          as_config =
            {
              Config.default with
              Config.engine = Config.Hybrid;
              filter_capacity = 150;
            };
          as_seed = 42;
          as_duration = 15.;
          as_sources = 400;
          as_attack_domains = 8;
          as_legit_domains = 4;
          as_contracts = true;
          as_byzantine_fraction = f;
          as_lying_mode = Adversary.Forge;
          as_audit =
            { Auditor.default_config with deadline = 0.75; grace = 0.35 };
        }
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let fractions = [ 0.; 0.1; 0.2; 0.3 ] in
  let runs = List.map (fun f -> (f, run_fraction f)) fractions in
  let baseline_goodput =
    match runs with
    | (_, (r0, _)) :: _ -> r0.As_scenario.r_good_received_bytes
    | [] -> 0.
  in
  let rows =
    List.map
      (fun (f, (r, wall)) ->
        let byz = List.map snd r.As_scenario.r_byzantine in
        let flagged =
          match r.As_scenario.r_auditor with
          | Some a -> Auditor.flagged a
          | None -> []
        in
        let missed =
          List.filter (fun b -> not (List.mem b flagged)) byz
        in
        let false_pos =
          List.filter (fun g -> not (List.mem g byz)) flagged
        in
        let goodput = r.As_scenario.r_good_received_bytes in
        let ratio =
          if baseline_goodput <= 0. then 0. else goodput /. baseline_goodput
        in
        Table.add_row table
          [
            Printf.sprintf "%.0f" (100. *. f);
            string_of_int (List.length byz);
            string_of_int (List.length flagged);
            string_of_int (List.length missed);
            string_of_int (List.length false_pos);
            string_of_int r.As_scenario.r_failovers;
            (match r.As_scenario.r_time_to_filter with
            | Some t -> Printf.sprintf "%.2f" t
            | None -> "never");
            Printf.sprintf "%.2f" (goodput /. 1e6);
            Printf.sprintf "%.3f" ratio;
            Printf.sprintf "%.2f" wall;
          ];
        Json.Obj
          [
            ("byzantine_fraction", Json.Float f);
            ("corrupted", Json.Int (List.length byz));
            ("flagged", Json.Int (List.length flagged));
            ("missed", Json.Int (List.length missed));
            ("false_positives", Json.Int (List.length false_pos));
            ("failovers", Json.Int r.As_scenario.r_failovers);
            ( "time_to_filter",
              match r.As_scenario.r_time_to_filter with
              | Some t -> Json.Float t
              | None -> Json.Null );
            ("good_received_bytes", Json.Float goodput);
            ("goodput_ratio", Json.Float ratio);
            ( "receipts_verified",
              Json.Int
                (match r.As_scenario.r_auditor with
                | Some a -> Auditor.receipts_verified a
                | None -> 0) );
            ( "receipts_rejected",
              Json.Int
                (match r.As_scenario.r_auditor with
                | Some a -> Auditor.receipts_rejected a
                | None -> 0) );
            ("wall_seconds", Json.Float wall);
          ])
      runs
  in
  emit table;
  Aitf_obs.Report.write_json "BENCH_E20.json"
    (Json.Obj
       [
         ("schema", Json.String "aitf.contract-bench/1");
         ("sweep", Json.List rows);
       ]);
  Printf.printf "wrote BENCH_E20.json  (%d fractions)\n" (List.length rows)

(* ----------------------------------------------------------------- E21 -- *)

(* Multicore parallel engine: shard sweep on the Internet-scale scenario
   (lib/engine/parallel, docs/PARALLEL.md). The 1000-domain AS graph is
   partitioned over 1/2/4/8 event-queue shards synchronized by
   conservative lookahead windows (the inter-domain hop delay); each
   population runs every shard count and reports wall-clock, speedup
   against its own 1-shard run, the barrier-stall fraction and the
   cross-shard message volume. The agreement columns hold the E17-style
   10% tolerance on victim goodput versus the 1-shard run.

   Speedup is hardware-bound: on fewer cores than shards the sweep still
   checks determinism and agreement, but the wall-clock gate does not
   apply — BENCH_E21.json records [cores] and a per-row
   [gate_applicable] so CI can condition the >= 1.5x (4 shards) and
   >= 3x (8 shards) gates on the machine actually having the cores.

   E21_MAX_SOURCES caps the population sweep (CI runs 10^5; the 10^6
   point is the scoreboard run). E21_SHARDS overrides the shard list
   (comma-separated). *)

let e21 () =
  let module As_scenario = Aitf_workload.As_scenario in
  let module Sched = Aitf_parallel.Sched in
  let module Json = Aitf_obs.Json in
  Sched.set_default_clock Unix.gettimeofday;
  let cap =
    match Sys.getenv_opt "E21_MAX_SOURCES" with
    | Some s -> (try int_of_string s with _ -> 1_000_000)
    | None -> 1_000_000
  in
  let shard_counts =
    match Sys.getenv_opt "E21_SHARDS" with
    | Some s ->
      List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1; 2; 4; 8 ]
  in
  let cores = Domain.recommended_domain_count () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E21  parallel engine shard sweep   (1000 domains, conservative \
            lookahead; %d core(s))"
           cores)
      ~columns:
        [
          "sources";
          "shards";
          "wall (s)";
          "speedup";
          "stall %";
          "windows";
          "messages";
          "goodput MB";
          "agree";
          "events";
        ]
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      if n <= cap then begin
        let base_wall = ref 0. and base_good = ref 0. in
        List.iter
          (fun shards ->
            let t0 = Unix.gettimeofday () in
            let r =
              As_scenario.run
                {
                  As_scenario.default with
                  As_scenario.as_config =
                    { Config.default with Config.engine = Config.Hybrid };
                  as_sources = n;
                  as_shards = shards;
                }
            in
            let wall = Unix.gettimeofday () -. t0 in
            let good = r.As_scenario.r_good_received_bytes in
            if shards = 1 then begin
              base_wall := wall;
              base_good := good
            end;
            let speedup = if wall > 0. then !base_wall /. wall else 0. in
            let st = r.As_scenario.r_sched_stats in
            let stall_frac =
              if wall > 0. then st.Sched.stall_seconds /. wall else 0.
            in
            let agree =
              !base_good = 0.
              || Float.abs ((good -. !base_good) /. !base_good) <= 0.10
            in
            Table.add_row table
              [
                string_of_int n;
                string_of_int shards;
                Printf.sprintf "%.2f" wall;
                Printf.sprintf "%.2f" speedup;
                Printf.sprintf "%.1f" (100. *. stall_frac);
                string_of_int st.Sched.windows;
                string_of_int st.Sched.messages;
                Printf.sprintf "%.2f" (good /. 1e6);
                (if agree then "AGREE" else "DISAGREE");
                string_of_int r.As_scenario.r_events;
              ];
            rows :=
              Json.Obj
                [
                  ("sources", Json.Int n);
                  ("shards", Json.Int shards);
                  ("wall_seconds", Json.Float wall);
                  ("speedup_vs_1shard", Json.Float speedup);
                  ("stall_fraction", Json.Float stall_frac);
                  ("windows", Json.Int st.Sched.windows);
                  ("global_batches", Json.Int st.Sched.global_batches);
                  ("messages", Json.Int st.Sched.messages);
                  ("deferred", Json.Int st.Sched.deferred);
                  ("good_received_bytes", Json.Float good);
                  ("goodput_agrees_10pct", Json.Bool agree);
                  ("events", Json.Int r.As_scenario.r_events);
                  ("gate_applicable", Json.Bool (cores >= shards));
                ]
              :: !rows)
          shard_counts
      end)
    [ 100_000; 1_000_000 ];
  emit table;
  Aitf_obs.Report.write_json "BENCH_E21.json"
    (Json.Obj
       [
         ("schema", Json.String "aitf.parallel-bench/1");
         ("cores", Json.Int cores);
         ("sweep", Json.List (List.rev !rows));
       ]);
  Printf.printf "wrote BENCH_E21.json  (%d rows, %d cores)\n"
    (List.length !rows) cores

(* ----------------------------------------------------------------- E22 -- *)

(* Sharded-tracing overhead and invariance: the same Internet-scale run,
   untraced and with the causal span collector attached, at each shard
   count. Tracing must be (a) cheap — the traced run's wall-clock is
   gated at <= 1.25x the untraced run — and (b) inert and canonical: the
   traced run's outcome is bit-identical to the untraced one, and the
   merged span-forest digest is the same at every shard count (workers
   record into per-shard collectors merged canonically after the run;
   docs/OBSERVABILITY.md).

   Digest invariance is asserted across the sharded counts (> 1): their
   barrier grid is identical, so the merged trace must be byte-equal
   whatever the layout. The 1-shard digest is reported as
   [digest_matches_sequential] but not gated: at this population the
   barrier-deferred fluid mirror legitimately shifts marginal detection
   times versus the immediate sequential application (the documented
   docs/PARALLEL.md relaxation), and the trace faithfully records that.

   The overhead gate only applies when the machine has the cores for the
   shard count (otherwise barrier scheduling noise dominates), mirrored
   per-row in [gate_applicable]. E22_MAX_SOURCES caps the population
   (default 10^5); E22_SHARDS overrides the shard list. *)

let e22 () =
  let module As_scenario = Aitf_workload.As_scenario in
  let module Span = Aitf_obs.Span in
  let module Json = Aitf_obs.Json in
  Aitf_parallel.Sched.set_default_clock Unix.gettimeofday;
  let sources =
    match Sys.getenv_opt "E22_MAX_SOURCES" with
    | Some s -> (try min 100_000 (int_of_string s) with _ -> 100_000)
    | None -> 100_000
  in
  let shard_counts =
    match Sys.getenv_opt "E22_SHARDS" with
    | Some s ->
      List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1; 4 ]
  in
  let cores = Domain.recommended_domain_count () in
  let params shards =
    {
      As_scenario.default with
      As_scenario.as_config =
        { Config.default with Config.engine = Config.Hybrid };
      as_sources = sources;
      as_shards = shards;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E22  sharded tracing overhead   (%d sources; %d core(s))"
           sources cores)
      ~columns:
        [
          "shards";
          "untraced (s)";
          "traced (s)";
          "overhead x";
          "identical";
          "roots";
          "digest";
        ]
  in
  let rows = ref [] in
  let digests = ref [] in
  List.iter
    (fun shards ->
      let t0 = Unix.gettimeofday () in
      let plain = As_scenario.run (params shards) in
      let wall_plain = Unix.gettimeofday () -. t0 in
      Span.reset_mint ();
      let sp = Span.create () in
      Span.attach sp;
      let t1 = Unix.gettimeofday () in
      let traced =
        Fun.protect ~finally:Span.detach (fun () ->
            As_scenario.run (params shards))
      in
      let wall_traced = Unix.gettimeofday () -. t1 in
      let digest = Span.digest sp in
      let roots = List.length (Span.roots sp) in
      let identical =
        plain.As_scenario.r_good_received_bytes
        = traced.As_scenario.r_good_received_bytes
        && plain.As_scenario.r_attack_received_bytes
           = traced.As_scenario.r_attack_received_bytes
        && plain.As_scenario.r_events = traced.As_scenario.r_events
      in
      let overhead =
        if wall_plain > 0. then wall_traced /. wall_plain else 0.
      in
      digests := (shards, digest) :: !digests;
      Table.add_row table
        [
          string_of_int shards;
          Printf.sprintf "%.2f" wall_plain;
          Printf.sprintf "%.2f" wall_traced;
          Printf.sprintf "%.2f" overhead;
          (if identical then "YES" else "NO");
          string_of_int roots;
          String.sub digest 0 12;
        ];
      rows :=
        Json.Obj
          [
            ("shards", Json.Int shards);
            ("untraced_wall_seconds", Json.Float wall_plain);
            ("traced_wall_seconds", Json.Float wall_traced);
            ("tracing_overhead", Json.Float overhead);
            ("traced_identical_to_untraced", Json.Bool identical);
            ("span_roots", Json.Int roots);
            ("span_digest", Json.String digest);
            ("gate_applicable", Json.Bool (cores >= shards));
          ]
        :: !rows)
    shard_counts;
  let digest_invariant =
    match List.filter (fun (s, _) -> s > 1) !digests with
    | [] -> true
    | (_, d) :: rest -> List.for_all (fun (_, d') -> String.equal d' d) rest
  in
  let matches_sequential =
    match
      (List.assoc_opt 1 !digests, List.filter (fun (s, _) -> s > 1) !digests)
    with
    | Some d1, (_, dn) :: _ -> Some (String.equal d1 dn)
    | _ -> None
  in
  emit table;
  Printf.printf "span digest invariant across sharded layouts: %s%s\n"
    (if digest_invariant then "YES" else "NO")
    (match matches_sequential with
    | Some true -> "  (and equal to the sequential trace)"
    | Some false -> "  (sequential trace differs: deferred-mirror drift)"
    | None -> "");
  Aitf_obs.Report.write_json "BENCH_E22.json"
    (Json.Obj
       ([
          ("schema", Json.String "aitf.tracing-bench/1");
          ("cores", Json.Int cores);
          ("sources", Json.Int sources);
          ("digest_invariant", Json.Bool digest_invariant);
        ]
       @ (match matches_sequential with
         | Some b -> [ ("digest_matches_sequential", Json.Bool b) ]
         | None -> [])
       @ [ ("sweep", Json.List (List.rev !rows)) ]));
  Printf.printf "wrote BENCH_E22.json  (%d rows, %d cores)\n"
    (List.length !rows) cores
