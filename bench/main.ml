(* Benchmark & reproduction driver.

     dune exec bench/main.exe            # every experiment + microbenches
     dune exec bench/main.exe -- e1 e8   # a subset
     dune exec bench/main.exe -- list    # what exists

   Experiment tables live in Experiments (one per paper table/figure, see
   DESIGN.md); the `micro` target runs Bechamel microbenchmarks of the hot
   data structures — one Test.make per structure under test. *)

module Sim = Aitf_engine.Sim
module Heap = Aitf_engine.Heap
open Aitf_net
open Aitf_filter

(* --- Bechamel microbenchmarks -------------------------------------------- *)

let addr_a = Addr.of_octets 10 1 2 3
let addr_b = Addr.of_octets 20 4 5 6

let probe_packet =
  Packet.make ~src:addr_a ~dst:addr_b ~size:1000
    (Packet.Data { flow_id = 0; attack = true })

let miss_packet =
  Packet.make ~src:(Addr.of_octets 10 9 9 9) ~dst:(Addr.of_octets 20 9 9 9)
    ~size:1000
    (Packet.Data { flow_id = 0; attack = false })

(* A filter table holding 1000 exact filters — the paper's "several
   thousand wire-speed filters" regime. *)
let loaded_filter_table () =
  let sim = Sim.create () in
  let t = Filter_table.create sim ~capacity:2048 in
  for i = 0 to 999 do
    ignore
      (Filter_table.install t
         (Flow_label.host_pair (Addr.add addr_a i) addr_b)
         ~duration:1e9)
  done;
  ignore (Filter_table.install t (Flow_label.host_pair addr_a addr_b) ~duration:1e9);
  t

let loaded_lpm () =
  let t = Lpm.create () in
  for i = 0 to 999 do
    Lpm.insert t (Addr.prefix (Addr.add (Addr.of_octets 10 0 0 0) (i * 256)) 24) i
  done;
  Lpm.insert t (Addr.prefix (Addr.of_octets 20 0 0 0) 8) (-1);
  t

let loaded_bloom () =
  let b = Aitf_traceback.Bloom.create ~bits:(1 lsl 17) ~hashes:4 in
  for i = 0 to 9_999 do
    Aitf_traceback.Bloom.add b (string_of_int i)
  done;
  b

let micro_tests () =
  let open Bechamel in
  let filter_hit =
    let t = loaded_filter_table () in
    Test.make ~name:"filter_table.match/hit (1k filters)"
      (Staged.stage (fun () -> ignore (Filter_table.would_block t probe_packet)))
  in
  let filter_miss =
    let t = loaded_filter_table () in
    Test.make ~name:"filter_table.match/miss (1k filters)"
      (Staged.stage (fun () -> ignore (Filter_table.would_block t miss_packet)))
  in
  let lpm_lookup =
    let t = loaded_lpm () in
    Test.make ~name:"lpm.lookup (1k prefixes)"
      (Staged.stage (fun () -> ignore (Lpm.lookup t addr_b)))
  in
  let heap_cycle =
    let h = Heap.create ~cmp:Float.compare in
    for i = 0 to 1023 do
      Heap.push h (float_of_int (i * 7919 mod 1024))
    done;
    Test.make ~name:"heap.push+pop (1k entries)"
      (Staged.stage (fun () ->
           Heap.push h 512.5;
           ignore (Heap.pop h)))
  in
  let bloom_query =
    let b = loaded_bloom () in
    Test.make ~name:"bloom.mem (10k inserted)"
      (Staged.stage (fun () -> ignore (Aitf_traceback.Bloom.mem b "4242")))
  in
  let bucket =
    let b = Token_bucket.create ~rate:100. ~burst:100. in
    let now = ref 0. in
    Test.make ~name:"token_bucket.allow"
      (Staged.stage (fun () ->
           now := !now +. 0.01;
           ignore (Token_bucket.allow b ~now:!now)))
  in
  let schedule =
    let sim = Sim.create () in
    Test.make ~name:"sim.schedule+run one event"
      (Staged.stage (fun () ->
           ignore (Sim.after sim 0.001 (fun () -> ()));
           ignore (Sim.step sim)))
  in
  [ filter_hit; filter_miss; lpm_lookup; heap_cycle; bloom_query; bucket; schedule ]

(* ns/op estimates of the last `micro` run, for the --json report. *)
let micro_results : (string * float) list ref = ref []

let run_micro () =
  let open Bechamel in
  print_endline "== M1  microbenchmarks of the hot data structures ==";
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] ->
          micro_results := (name, est) :: !micro_results;
          Printf.printf "  %-42s %10.1f ns/op\n" name est
        | _ -> Printf.printf "  %-42s (no estimate)\n" name)
      results
  in
  micro_results := [];
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"" [ t ])) (micro_tests ());
  print_newline ()

(* --- Dispatch -------------------------------------------------------------- *)

let experiments =
  [
    ("f1", "Figure 1 / §II-D walk-through", Experiments.f1);
    ("e1", "§IV-A.1 effective bandwidth ratio r", Experiments.e1);
    ("e2", "§IV-A.2 Nv = R1*T protected flows", Experiments.e2);
    ("e3", "§IV-B victim-gateway resources nv, mv", Experiments.e3);
    ("e4", "§IV-C attacker-gateway resources na", Experiments.e4);
    ("e5", "§IV-D attacker-host resources na", Experiments.e5);
    ("e6", "§II-B/D escalation rounds", Experiments.e6);
    ("e7", "§II-E/III-B forged requests vs handshake", Experiments.e7);
    ("e8", "§V AITF vs Pushback", Experiments.e8);
    ("e9", "§III-C scaling with Internet size", Experiments.e9);
    ("e10", "§III-A ingress-filtering economics", Experiments.e10);
    ("e11", "DPF [PL01] vs AITF (proactive vs reactive)", Experiments.e11);
    ("e12", "random-topology robustness", Experiments.e12);
    ("e13", "transaction-level service quality", Experiments.e13);
    ("e14", "shape-shifting attack vs manual response", Experiments.e14);
    ("e15", "time-to-filter vs control-plane loss", Experiments.e15);
    ("e16", "filter-slot exhaustion vs the overload manager", Experiments.e16);
    ("e17", "hybrid fluid/packet engine: agreement + population scaling", Experiments.e17);
    ("e18", "filter placement at Internet scale: vanilla vs optimal vs adaptive", Experiments.e18);
    ("e19", "golden-trace matrix: perf trajectory + engine agreement", Experiments.e19);
    ("e20", "verifiable contracts vs Byzantine gateways", Experiments.e20);
    ("e21", "parallel engine: shard sweep, speedup + agreement", Experiments.e21);
    ("e22", "sharded tracing: overhead gate + digest invariance", Experiments.e22);
    ("a1", "ablation: traceback mechanisms", Experiments.a1);
    ("a2", "ablation: shadow cache", Experiments.a2);
    ("a3", "ablation: wildcard aggregation", Experiments.a3);
    ("a4", "ablation: victim-tail queue discipline", Experiments.a4);
    ("a5", "ablation: block vs rate-limit filters", Experiments.a5);
  ]

let list_targets () =
  print_endline "available targets:";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-6s %s\n" id desc) experiments;
  Printf.printf "  %-6s %s\n" "micro" "Bechamel microbenchmarks";
  Printf.printf "  %-6s %s\n" "all" "everything (default)"

(* Per-target cost accounting for the --json report: wall-clock seconds,
   plus the engine profiler's event count and peak queue depth for the
   experiments (micro is left unprofiled — the probe's per-event cost would
   leak into the ns/op estimates it exists to measure). *)
let target_costs : (string * (float * (int * int) option)) list ref = ref []

let dispatch id =
  match List.find_opt (fun (k, _, _) -> k = id) experiments with
  | Some (_, desc, f) ->
    Printf.printf "\n#### %s — %s\n\n%!" (String.uppercase_ascii id) desc;
    f ()
  | None when id = "micro" -> run_micro ()
  | None ->
    Printf.eprintf "unknown target %S\n" id;
    list_targets ();
    exit 1

let run_one id =
  if not !Experiments.collect_json then dispatch id
  else begin
    let profiler =
      if id = "micro" then None
      else begin
        let p = Aitf_obs.Profile.create () in
        Aitf_obs.Profile.attach p;
        Some p
      end
    in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let wall = Unix.gettimeofday () -. t0 in
        let engine =
          Option.map
            (fun p ->
              Aitf_obs.Profile.detach ();
              (Aitf_obs.Profile.events p, Aitf_obs.Profile.peak_pending p))
            profiler
        in
        target_costs := (id, (wall, engine)) :: !target_costs)
      (fun () -> dispatch id)
  end

(* --json FILE: everything the run printed, machine-readable — the emitted
   experiment tables plus the micro estimates (schema aitf.bench-report/1). *)
let write_json_report file targets =
  let module Json = Aitf_obs.Json in
  let module Table = Aitf_stats.Table in
  let table_json t =
    Json.Obj
      [
        ("title", Json.String (Table.title t));
        ("columns", Json.List (List.map (fun c -> Json.String c) (Table.columns t)));
        ( "rows",
          Json.List
            (List.map
               (fun row -> Json.List (List.map (fun c -> Json.String c) row))
               (Table.rows t)) );
      ]
  in
  let micro_json (name, est) =
    Json.Obj [ ("name", Json.String name); ("ns_per_op", Json.Float est) ]
  in
  let cost_json (id, (wall, engine)) =
    Json.Obj
      (("name", Json.String id)
       :: ("wall_seconds", Json.Float wall)
       ::
       (match engine with
       | Some (events, peak) ->
         [
           ("engine_events", Json.Int events);
           ("peak_queue_depth", Json.Int peak);
         ]
       | None -> []))
  in
  let report =
    Json.Obj
      [
        ("schema", Json.String "aitf.bench-report/1");
        ("targets", Json.List (List.map (fun t -> Json.String t) targets));
        ( "experiments",
          Json.List (List.rev_map cost_json !target_costs) );
        ("tables", Json.List (List.rev_map table_json !Experiments.json_tables));
        ( "micro",
          Json.List
            (List.map micro_json
               (List.sort compare !micro_results)) );
      ]
  in
  Aitf_obs.Report.write_json file report;
  Printf.printf "wrote %s\n" file

let () =
  (* --csv-dir DIR mirrors every table as CSV into DIR;
     --json FILE writes a machine-readable report of the whole run. *)
  let json_file = ref None in
  let rec strip_opts = function
    | "--csv-dir" :: dir :: rest ->
      (try if not (Sys.is_directory dir) then Unix.mkdir dir 0o755
       with Sys_error _ -> Unix.mkdir dir 0o755);
      Experiments.csv_dir := Some dir;
      strip_opts rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      Experiments.collect_json := true;
      strip_opts rest
    | rest -> rest
  in
  let args =
    match Array.to_list Sys.argv with
    | prog :: rest -> prog :: strip_opts rest
    | [] -> []
  in
  let targets =
    match args with
    | _ :: ("list" | "--list") :: _ ->
      list_targets ();
      []
    | [ _ ] | [ _; "all" ] ->
      List.iter (fun (id, _, _) -> run_one id) experiments;
      run_micro ();
      List.map (fun (id, _, _) -> id) experiments @ [ "micro" ]
    | _ :: targets ->
      List.iter run_one targets;
      targets
    | [] -> []
  in
  match (!json_file, targets) with
  | Some file, _ :: _ -> write_json_report file targets
  | _ -> ()
