type stage =
  | Detect
  | Request
  | Temp_filter
  | Verification
  | Counter_request
  | Permanent_filter

let stage_name = function
  | Detect -> "detect"
  | Request -> "request"
  | Temp_filter -> "temp-filter"
  | Verification -> "verification"
  | Counter_request -> "counter-request"
  | Permanent_filter -> "permanent-filter"

let stage_index = function
  | Detect -> 0
  | Request -> 1
  | Temp_filter -> 2
  | Verification -> 3
  | Counter_request -> 4
  | Permanent_filter -> 5

let all_stages =
  [ Detect; Request; Temp_filter; Verification; Counter_request; Permanent_filter ]

type event = { at : float; label : string }

type span = {
  span_corr : int;
  stage : stage;
  node : string;
  started_at : float;
  mutable finished_at : float option;
  mutable span_events : event list;
}

type root = {
  corr : int;
  mutable flow : string;
  mutable victim : string;
  mutable opened_at : float;
  mutable completed_at : float option;
  mutable spans : span list;
  mutable root_events : event list;
  mutable orphan : bool;
}

type t = {
  tbl : (int, root) Hashtbl.t;
  open_spans : (int * stage, span list ref) Hashtbl.t;
      (* stack of still-open spans per (corr, stage); several can be open
         at once on different nodes during escalation *)
  nonces : (int64, int) Hashtbl.t;
  mutable slo : (float * (root -> unit)) option;
  mutable allow_orphans : bool;
}

let create () =
  {
    tbl = Hashtbl.create 64;
    open_spans = Hashtbl.create 64;
    nonces = Hashtbl.create 32;
    slo = None;
    allow_orphans = false;
  }

let set_allow_orphans t v = t.allow_orphans <- v

(* Correlation ids are minted unconditionally (protocol messages carry one
   whether or not a collector is attached), off a plain counter — no
   randomness, so traced and untraced runs see identical protocol state.
   Worker domains of the parallel engine each mint from their own stride
   ([bind_domain]): ids stay unique and deterministic without a shared
   atomic, at the price of being shard-dependent — which is why every
   cross-shard-count comparison goes through the canonical re-keying of
   [merge_into]/[digest] rather than raw ids. *)
let minter = ref 0

(* Per-domain override installed by parallel-engine workers: collector and
   mint stride for the calling domain. The main domain keeps the plain
   globals, so sequential runs are bit-identical to the historical code. *)
type domain_binding = {
  mutable b_collector : t option;
  mutable b_active : bool;
  mutable b_base : int;
  mutable b_count : int;
}

let binding_key : domain_binding Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { b_collector = None; b_active = false; b_base = 0; b_count = 0 })

let bind_domain ?collector ~mint_base () =
  let b = Domain.DLS.get binding_key in
  b.b_collector <- collector;
  b.b_active <- true;
  b.b_base <- mint_base;
  b.b_count <- 0

let unbind_domain () =
  let b = Domain.DLS.get binding_key in
  b.b_collector <- None;
  b.b_active <- false;
  b.b_base <- 0;
  b.b_count <- 0

let mint () =
  let b = Domain.DLS.get binding_key in
  if b.b_active then begin
    b.b_count <- b.b_count + 1;
    b.b_base + b.b_count
  end
  else begin
    incr minter;
    !minter
  end

(* Harness hook: independent scenarios run back-to-back in one process
   (the golden matrix, bench) rewind the counter so cell N's corr ids do
   not depend on cells 0..N-1. Domain strides need no rewind: worker
   domains are fresh per scheduler run. *)
let reset_mint () = minter := 0

let current : t option ref = ref None

let attach t = current := Some t
let detach () = current := None
let attached () = !current

let domain_collector () =
  let b = Domain.DLS.get binding_key in
  if b.b_active && b.b_collector <> None then b.b_collector else !current

let enabled () = Option.is_some (domain_collector ())

let with_t f = match domain_collector () with None -> () | Some t -> f t

let new_root t ~corr ~flow ~victim ~now ~orphan =
  let r =
    {
      corr;
      flow;
      victim;
      opened_at = now;
      completed_at = None;
      spans = [];
      root_events = [];
      orphan;
    }
  in
  Hashtbl.replace t.tbl corr r;
  r

(* The root for [corr], creating an orphan placeholder when permitted —
   shard collectors see spans for requests whose root opened in another
   shard's collector; [merge_into] later reunites them (and drops
   placeholders that never find a real root, e.g. forged corr 0). *)
let find_or_orphan t ~corr ~now =
  match Hashtbl.find_opt t.tbl corr with
  | Some r -> Some r
  | None ->
    if t.allow_orphans then
      Some (new_root t ~corr ~flow:"" ~victim:"" ~now ~orphan:true)
    else None

let root ~corr ~flow ~victim ~now =
  with_t (fun t ->
      match Hashtbl.find_opt t.tbl corr with
      | None -> ignore (new_root t ~corr ~flow ~victim ~now ~orphan:false)
      | Some r ->
        (* First real writer wins; an orphan placeholder gets its identity
           filled in (recording raced ahead of the root on this shard). *)
        if r.orphan then begin
          r.flow <- flow;
          r.victim <- victim;
          r.opened_at <- now;
          r.orphan <- false
        end)

let start ~corr ~stage ~node ~now =
  with_t (fun t ->
      match find_or_orphan t ~corr ~now with
      | None -> ()
      | Some r ->
        let s =
          {
            span_corr = corr;
            stage;
            node;
            started_at = now;
            finished_at = None;
            span_events = [];
          }
        in
        r.spans <- s :: r.spans;
        let stack =
          match Hashtbl.find_opt t.open_spans (corr, stage) with
          | Some st -> st
          | None ->
            let st = ref [] in
            Hashtbl.replace t.open_spans (corr, stage) st;
            st
        in
        stack := s :: !stack)

let pop_open t ?node ~corr ~stage () =
  match Hashtbl.find_opt t.open_spans (corr, stage) with
  | None -> None
  | Some stack -> (
    let matches s =
      match node with None -> true | Some n -> String.equal s.node n
    in
    match List.find_opt matches !stack with
    | None -> None
    | Some s ->
      stack := List.filter (fun x -> x != s) !stack;
      Some s)

let finish ?node ~corr ~stage ~now () =
  with_t (fun t ->
      match pop_open t ?node ~corr ~stage () with
      | None -> ()
      | Some s -> s.finished_at <- Some now)

let peek_open t ?node ~corr ~stage () =
  match Hashtbl.find_opt t.open_spans (corr, stage) with
  | None -> None
  | Some stack ->
    let matches s =
      match node with None -> true | Some n -> String.equal s.node n
    in
    List.find_opt matches !stack

(* Newest open span for this corr on any stage (on [node] when given). *)
let newest_open t ?node ~corr () =
  List.fold_left
    (fun best stage ->
      match peek_open t ?node ~corr ~stage () with
      | None -> best
      | Some s -> (
        match best with
        | Some b when b.started_at >= s.started_at -> best
        | _ -> Some s))
    None all_stages

let event ?node ~corr ~now label =
  with_t (fun t ->
      let e = { at = now; label } in
      match newest_open t ?node ~corr () with
      | Some s -> s.span_events <- e :: s.span_events
      | None -> (
        match find_or_orphan t ~corr ~now with
        | Some r -> r.root_events <- e :: r.root_events
        | None -> ()))

let root_event ~corr ~now label =
  with_t (fun t ->
      match find_or_orphan t ~corr ~now with
      | Some r -> r.root_events <- { at = now; label } :: r.root_events
      | None -> ())

let stage_event ?node ~corr ~stage ~now label =
  with_t (fun t ->
      let e = { at = now; label } in
      match peek_open t ?node ~corr ~stage () with
      | Some s -> s.span_events <- e :: s.span_events
      | None -> (
        match find_or_orphan t ~corr ~now with
        | Some r -> r.root_events <- e :: r.root_events
        | None -> ()))

let bind_nonce ~corr ~nonce =
  with_t (fun t -> Hashtbl.replace t.nonces nonce corr)

let corr_of_nonce ~nonce =
  match domain_collector () with
  | None -> None
  | Some t -> Hashtbl.find_opt t.nonces nonce

let event_by_nonce ~nonce ~now label =
  match corr_of_nonce ~nonce with
  | None -> ()
  | Some corr -> event ~corr ~now label

let complete ~corr ~now =
  with_t (fun t ->
      match find_or_orphan t ~corr ~now with
      | None -> ()
      | Some r ->
        if r.completed_at = None then begin
          r.completed_at <- Some now;
          (* SLO evaluation is meaningless on an orphan placeholder (its
             opened_at is the first local sighting, not the victim's):
             [merge_into] re-evaluates on the reunited root instead. *)
          if not r.orphan then
            match t.slo with
            | Some (slo, on_breach) when now -. r.opened_at > slo ->
              on_breach r
            | Some _ | None -> ()
        end)

let set_slo t ~seconds f = t.slo <- Some (seconds, f)

(* --- queries ---------------------------------------------------------------- *)

let roots t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl []
  |> List.sort (fun a b -> Int.compare a.corr b.corr)

let find_root t corr = Hashtbl.find_opt t.tbl corr
let spans_of r = List.rev r.spans
let events_of s = List.rev s.span_events

let duration s =
  match s.finished_at with None -> None | Some f -> Some (f -. s.started_at)

let completed_roots t =
  List.filter (fun r -> r.completed_at <> None) (roots t)

(* --- shard merge ------------------------------------------------------------ *)

(* Canonical root order: the order a sequential run would have minted in —
   chronological by opening time at the victim, ties broken by identity
   rather than by shard-dependent raw corr. *)
let canonical_root_compare a b =
  let c = Float.compare a.opened_at b.opened_at in
  if c <> 0 then c
  else
    let c = String.compare a.victim b.victim in
    if c <> 0 then c
    else
      let c = String.compare a.flow b.flow in
      if c <> 0 then c else Int.compare a.corr b.corr

let span_compare a b =
  let c = Float.compare a.started_at b.started_at in
  if c <> 0 then c
  else
    let c = Int.compare (stage_index a.stage) (stage_index b.stage) in
    if c <> 0 then c
    else
      let c = String.compare a.node b.node in
      if c <> 0 then c
      else
        Option.compare Float.compare a.finished_at b.finished_at

let event_compare (a : event) (b : event) =
  let c = Float.compare a.at b.at in
  if c <> 0 then c else String.compare a.label b.label

let merge_into master others =
  let collectors = master :: others in
  (* Real roots win the identity; orphan placeholders (shards that only
     saw spans) contribute their spans, events and completion times. *)
  let reals = Hashtbl.create 64 in
  List.iter
    (fun c ->
      Hashtbl.iter
        (fun corr r -> if not r.orphan then Hashtbl.replace reals corr r)
        c.tbl)
    collectors;
  let merged = Hashtbl.create 64 in
  List.iter
    (fun c ->
      Hashtbl.iter
        (fun corr r ->
          match Hashtbl.find_opt reals corr with
          | None -> () (* orphan with no real root anywhere: forged corr *)
          | Some real ->
            let acc =
              match Hashtbl.find_opt merged corr with
              | Some acc -> acc
              | None ->
                let acc =
                  {
                    corr;
                    flow = real.flow;
                    victim = real.victim;
                    opened_at = real.opened_at;
                    completed_at = None;
                    spans = [];
                    root_events = [];
                    orphan = false;
                  }
                in
                Hashtbl.replace merged corr acc;
                acc
            in
            acc.spans <- r.spans @ acc.spans;
            acc.root_events <- r.root_events @ acc.root_events;
            (match (r.completed_at, acc.completed_at) with
            | Some x, Some y -> acc.completed_at <- Some (Float.min x y)
            | Some x, None -> acc.completed_at <- Some x
            | None, _ -> ()))
        c.tbl)
    collectors;
  let roots = Hashtbl.fold (fun _ r acc -> r :: acc) merged [] in
  let roots = List.sort canonical_root_compare roots in
  (* Re-key to the canonical 1..N ids a sequential run would have used, and
     put spans/events into deterministic (time, stage, node) order. *)
  let rekeyed =
    List.mapi
      (fun i r ->
        let corr = i + 1 in
        let spans =
          List.sort span_compare (List.rev_map (fun s -> s) r.spans)
          |> List.map (fun s ->
                 {
                   s with
                   span_corr = corr;
                   span_events =
                     List.rev (List.sort event_compare s.span_events);
                 })
        in
        {
          r with
          corr;
          spans = List.rev spans;
          root_events = List.rev (List.sort event_compare r.root_events);
        })
      roots
  in
  (* Nonce bindings follow their root to its canonical id. *)
  let corr_map = Hashtbl.create 64 in
  List.iteri
    (fun i r -> Hashtbl.replace corr_map r.corr (i + 1))
    roots;
  let nonces = Hashtbl.create 32 in
  List.iter
    (fun c ->
      Hashtbl.iter
        (fun nonce corr ->
          match Hashtbl.find_opt corr_map corr with
          | Some corr' -> Hashtbl.replace nonces nonce corr'
          | None -> ())
        c.nonces)
    collectors;
  Hashtbl.reset master.tbl;
  Hashtbl.reset master.open_spans;
  Hashtbl.reset master.nonces;
  List.iter (fun r -> Hashtbl.replace master.tbl r.corr r) rekeyed;
  Hashtbl.iter (fun n c -> Hashtbl.replace master.nonces n c) nonces;
  (* Completions recorded in shard collectors bypassed the master's SLO
     callback mid-run; fire it now, deterministically, in canonical
     order. *)
  (match master.slo with
  | None -> ()
  | Some (slo, on_breach) ->
    List.iter
      (fun r ->
        match r.completed_at with
        | Some c when c -. r.opened_at > slo -> on_breach r
        | Some _ | None -> ())
      rekeyed)

(* --- canonical digest --------------------------------------------------------- *)

(* A fingerprint of the span forest that is independent of raw correlation
   ids (shard-dependent) and of hash-table iteration order: roots in
   canonical order re-keyed 1..N, spans and events in deterministic order,
   times printed round-trip exactly. Equal digests at different shard
   counts mean the merged trace is the same trace. *)
let digest t =
  let buf = Buffer.create 4096 in
  let fl x = Printf.sprintf "%.17g" x in
  let opt = function None -> "-" | Some x -> fl x in
  let rs = List.sort canonical_root_compare (roots t) in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "root %d %s %s %s %s\n" (i + 1) r.flow r.victim
           (fl r.opened_at) (opt r.completed_at));
      let spans = List.sort span_compare (List.rev r.spans) in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  span %s %s %s %s\n" (stage_name s.stage)
               s.node (fl s.started_at) (opt s.finished_at));
          List.iter
            (fun (e : event) ->
              Buffer.add_string buf
                (Printf.sprintf "    ev %s %s\n" (fl e.at) e.label))
            (List.sort event_compare (List.rev s.span_events)))
        spans;
      List.iter
        (fun (e : event) ->
          Buffer.add_string buf
            (Printf.sprintf "  rev %s %s\n" (fl e.at) e.label))
        (List.sort event_compare (List.rev r.root_events)))
    rs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- Chrome trace-event export ---------------------------------------------- *)

(* https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   One trace "process" per simulated node, one "thread" per flow (the
   thread id is the correlation id). Durations are complete ("X") events
   in microseconds; point annotations become instant ("i") events. *)

let us t = Json.Float (t *. 1e6)

let to_chrome_trace ~now t =
  let rs = roots t in
  (* Deterministic pid assignment: nodes sorted by name, 1-based. *)
  let node_names = Hashtbl.create 16 in
  let note_node n = if not (Hashtbl.mem node_names n) then Hashtbl.replace node_names n () in
  List.iter
    (fun r ->
      note_node r.victim;
      List.iter (fun s -> note_node s.node) r.spans)
    rs;
  let sorted_nodes =
    Hashtbl.fold (fun k () acc -> k :: acc) node_names []
    |> List.sort String.compare
  in
  let pids = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace pids n (i + 1)) sorted_nodes;
  let pid n = Json.Int (Hashtbl.find pids n) in
  let meta =
    List.concat_map
      (fun n ->
        [
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", pid n);
              ("args", Json.Obj [ ("name", Json.String n) ]);
            ];
        ])
      sorted_nodes
  in
  let thread_meta =
    (* Name the (pid, tid) lanes after the flow they trace. *)
    List.concat_map
      (fun r ->
        let nodes =
          List.sort_uniq String.compare
            (r.victim :: List.map (fun s -> s.node) r.spans)
        in
        List.map
          (fun n ->
            Json.Obj
              [
                ("name", Json.String "thread_name");
                ("ph", Json.String "M");
                ("pid", pid n);
                ("tid", Json.Int r.corr);
                ("args", Json.Obj [ ("name", Json.String r.flow) ]);
              ])
          nodes)
      rs
  in
  let complete ~name ~node ~tid ~start ~stop ~args =
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "aitf");
        ("ph", Json.String "X");
        ("ts", us start);
        ("dur", us (Float.max 0. (stop -. start)));
        ("pid", pid node);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let instant ~name ~node ~tid ~at =
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "aitf");
        ("ph", Json.String "i");
        ("ts", us at);
        ("pid", pid node);
        ("tid", Json.Int tid);
        ("s", Json.String "t");
      ]
  in
  let per_root r =
    let stop = Option.value ~default:now r.completed_at in
    let root_ev =
      complete ~name:"filtering-request" ~node:r.victim ~tid:r.corr
        ~start:r.opened_at ~stop
        ~args:
          [
            ("corr", Json.Int r.corr);
            ("flow", Json.String r.flow);
            ( "completed",
              Json.Bool (Option.is_some r.completed_at) );
          ]
    in
    let span_evs =
      List.concat_map
        (fun s ->
          let stop = Option.value ~default:now s.finished_at in
          complete ~name:(stage_name s.stage) ~node:s.node ~tid:r.corr
            ~start:s.started_at ~stop
            ~args:
              [
                ("corr", Json.Int r.corr);
                ("flow", Json.String r.flow);
                ("open", Json.Bool (s.finished_at = None));
              ]
          :: List.map
               (fun (e : event) ->
                 instant ~name:e.label ~node:s.node ~tid:r.corr ~at:e.at)
               (events_of s))
        (spans_of r)
    in
    let root_point_evs =
      List.rev_map
        (fun (e : event) ->
          instant ~name:e.label ~node:r.victim ~tid:r.corr ~at:e.at)
        r.root_events
    in
    (root_ev :: span_evs) @ root_point_evs
  in
  let events = meta @ thread_meta @ List.concat_map per_root rs in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

(* --- critical-path summary --------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.round rank) in
    sorted.(Int.min (n - 1) (Int.max 0 lo))
  end

let summary ?(percentiles = [ 50.; 90.; 99. ]) t =
  let rs = roots t in
  let completed = List.length (completed_roots t) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== span summary: %d request(s), %d completed ==\n"
       (List.length rs) completed);
  let stage_durs stage =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun s -> if s.stage = stage then duration s else None)
          r.spans)
      rs
    |> List.sort Float.compare |> Array.of_list
  in
  let cols = List.map (fun p -> Printf.sprintf "p%g" p) percentiles in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %6s %s %10s\n" "stage" "count"
       (String.concat " "
          (List.map (fun c -> Printf.sprintf "%10s" c) cols))
       "max");
  let by_stage =
    List.map (fun stage -> (stage, stage_durs stage)) all_stages
  in
  List.iter
    (fun (stage, durs) ->
      let n = Array.length durs in
      let cells =
        List.map
          (fun p ->
            if n = 0 then Printf.sprintf "%10s" "-"
            else Printf.sprintf "%10.4f" (percentile durs p))
          percentiles
      in
      let mx =
        if n = 0 then Printf.sprintf "%10s" "-"
        else Printf.sprintf "%10.4f" durs.(n - 1)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-18s %6d %s %s\n" (stage_name stage) n
           (String.concat " " cells) mx))
    by_stage;
  (* Which stage dominates time-to-filter at each percentile. *)
  List.iter
    (fun p ->
      let dominant =
        List.fold_left
          (fun best (stage, durs) ->
            if Array.length durs = 0 then best
            else
              let v = percentile durs p in
              match best with
              | Some (_, bv) when bv >= v -> best
              | _ -> Some (stage, v))
          None by_stage
      in
      match dominant with
      | None -> ()
      | Some (stage, v) ->
        Buffer.add_string buf
          (Printf.sprintf "dominant stage at p%g: %s (%.4f s)\n" p
             (stage_name stage) v))
    percentiles;
  Buffer.contents buf
