(** Run-wide metrics registry.

    The observability substrate for every layer of the simulator: named
    counters, gauges and timers, registered once per run and read back as
    deterministic snapshots. Counters and gauges are {e pull-based} — the
    registering component hands over a closure reading state it already
    keeps (a filter table's occupancy, a link's byte count), so an
    instrumented hot path costs nothing beyond the work it was already
    doing. Timers are the one push-based kind (value distributions such as
    time-to-filter have no state to read back); components hold a
    [timer option] that is [None] when no registry was attached at
    creation, so a disabled observation costs one branch — mirroring
    {!Aitf_engine.Trace}'s zero-sink design.

    {b Naming.} Dot-separated, instance-qualified:
    [<layer>.<instance>.<metric>], e.g. [gateway.B_gw1.filters.occupancy].
    Names are unique per registry; registering a duplicate raises. Use one
    fresh registry per run — component creation registers instance metrics,
    so replaying a scenario against the same registry would collide.

    {b Attachment.} Like tracing, instrumentation is off by default. A
    scenario attaches a registry ({!attach}) before building its world;
    every component created while one is attached self-registers. Detach
    when the run's report has been taken. *)

type t

type timer
(** Handle for pushing duration (or any scalar) observations. *)

(** A snapshot value. [Counter] is monotone over a run; [Gauge] is a
    level; [Histogram] carries the sample count, the sum and the
    cumulative-style buckets (upper bound, count), final bound
    [infinity]. *)
type value =
  | Counter of float
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

val create : unit -> t

val register_counter :
  t -> ?unit_:string -> ?help:string -> string -> (unit -> float) -> unit
(** [register_counter t name read] registers a monotone metric sampled by
    calling [read].
    @raise Invalid_argument if [name] is already registered. *)

val register_gauge :
  t -> ?unit_:string -> ?help:string -> string -> (unit -> float) -> unit
(** Like {!register_counter} for a level (may go down). *)

val timer :
  t -> ?unit_:string -> ?help:string -> ?bounds:float list -> string -> timer
(** Register a histogram-backed timer. Default [bounds] are logarithmic
    from 1 ms to 100 s (the protocol latency scale); see
    {!Aitf_stats.Histogram.log_bounds}.
    @raise Invalid_argument on a duplicate name or bad bounds. *)

val observe : timer -> float -> unit
(** Record one sample (seconds, for the default bounds). *)

val registered : t -> string -> bool
val size : t -> int

val names : t -> string list
(** Sorted. *)

val value : t -> string -> value option
(** Sample one metric now. *)

val snapshot : t -> (string * value) list
(** Sample every metric, sorted by name — the deterministic read used by
    samplers and reports. *)

val unit_of : t -> string -> string option
val help_of : t -> string -> string option

(** {1 Process-global attachment}

    One optional registry, consulted by component constructors. *)

val attach : t -> unit
(** Make [t] the attached registry (replacing any previous one). *)

val detach : unit -> unit

val attached : unit -> t option

val with_attached : t -> (unit -> 'a) -> 'a
(** [with_attached t f] attaches [t], runs [f] and detaches again even when
    [f] raises — the exception-safe form every scenario driver should use:
    a raise mid-build must not leave the registry attached to poison the
    next run in the same process. *)

val if_attached : (t -> unit) -> unit
(** Run the registration block iff a registry is attached. *)

val timer_if_attached :
  ?unit_:string -> ?help:string -> ?bounds:float list -> string -> timer option
(** [Some (timer reg name)] against the attached registry, else [None] —
    what a component stores for its push-side observations. *)
