(** Packet flight recorder: a bounded ring buffer of per-hop records.

    When a span tree shows {e that} a request stalled, the flight
    recorder shows {e where}: each record captures one link-level moment
    (enqueue, dequeue for transmission, or drop with its reason) together
    with the node, link, packet size and queue depth at that instant.
    The buffer holds the last N records — cheap enough to leave armed for
    a whole run — and is dumped on demand or automatically when a span
    breaches its latency SLO (see {!Span.set_slo}).

    Attachment is process-global and off by default, mirroring
    {!Metrics}: the network layer's recording sites cost one branch when
    no recorder is attached. Recording never perturbs the run. *)

type kind =
  | Enqueue  (** packet accepted into the link queue *)
  | Dequeue  (** packet starts transmission *)
  | Drop of string  (** dropped, with the link's reason *)

type record = {
  time : float;  (** virtual seconds *)
  node : string;  (** transmitting node *)
  link : string;
  kind : kind;
  size : int;  (** packet bytes *)
  queue_depth : int;  (** queued bytes after this action *)
}

type t

val create : capacity:int -> t
(** A recorder holding the last [capacity] records.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

(** {1 Attachment} *)

val attach : t -> unit
(** Process-global default recorder, as before. *)

val detach : unit -> unit

val attach_to : t -> Aitf_engine.Sim.t -> unit
(** Per-scheduler-instance recorder: records noted with [?sim] equal to
    this world land here instead of the global default, so two engines in
    one process (matrix cells, parallel shards) keep separate rings. *)

val detach_from : Aitf_engine.Sim.t -> unit

val attached : unit -> t option
val enabled : unit -> bool

(** {1 Recording} *)

val note :
  ?sim:Aitf_engine.Sim.t ->
  time:float ->
  node:string ->
  link:string ->
  kind:kind ->
  size:int ->
  queue_depth:int ->
  unit ->
  unit
(** Append a record to the recorder for [?sim] (falling back to the
    global default); one branch when none is attached. *)

(** {1 Reading back} *)

val records : t -> record list
(** Oldest first; at most [capacity] records. *)

val recorded : t -> int
(** Total records ever written (may exceed [capacity]). *)

val pp_record : Format.formatter -> record -> unit

val dump : ?out:Format.formatter -> t -> unit
(** Print every retained record, oldest first (default
    [Format.err_formatter]). *)
