(** Packet flight recorder: a bounded ring buffer of per-hop records.

    When a span tree shows {e that} a request stalled, the flight
    recorder shows {e where}: each record captures one link-level moment
    (enqueue, dequeue for transmission, or drop with its reason) together
    with the node, link, packet size and queue depth at that instant.
    The buffer holds the last N records — cheap enough to leave armed for
    a whole run — and is dumped on demand or automatically when a span
    breaches its latency SLO (see {!Span.set_slo}).

    Attachment is process-global and off by default, mirroring
    {!Metrics}: the network layer's recording sites cost one branch when
    no recorder is attached. Recording never perturbs the run. *)

type kind =
  | Enqueue  (** packet accepted into the link queue *)
  | Dequeue  (** packet starts transmission *)
  | Drop of string  (** dropped, with the link's reason *)

type record = {
  time : float;  (** virtual seconds *)
  node : string;  (** transmitting node *)
  link : string;
  kind : kind;
  size : int;  (** packet bytes *)
  queue_depth : int;  (** queued bytes after this action *)
}

type t

val create : capacity:int -> t
(** A recorder holding the last [capacity] records.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val set_shard : t -> int -> unit
(** Stamp this recorder as belonging to a parallel-engine shard: the id
    breaks ties in {!merge_into}'s ordering and suffixes the
    {!auto_dump} path. *)

val shard : t -> int option

val set_dump_path : t -> string option -> unit
(** File {!auto_dump} writes to (suffixed [".shard<i>"] for stamped
    recorders). [None] (the default) dumps to stderr. *)

val dump_path : t -> string option

(** {1 Attachment} *)

val attach : t -> unit
(** Process-global default recorder, as before. *)

val detach : unit -> unit

val attach_to : t -> Aitf_engine.Sim.t -> unit
(** Per-scheduler-instance recorder: records noted with [?sim] equal to
    this world land here instead of the global default, so two engines in
    one process (matrix cells, parallel shards) keep separate rings. *)

val detach_from : Aitf_engine.Sim.t -> unit

val attached : unit -> t option
val enabled : unit -> bool

(** {1 Recording} *)

val note :
  ?sim:Aitf_engine.Sim.t ->
  time:float ->
  node:string ->
  link:string ->
  kind:kind ->
  size:int ->
  queue_depth:int ->
  unit ->
  unit
(** Append a record to the recorder for [?sim] (falling back to the
    global default); one branch when none is attached. *)

(** {1 Reading back} *)

val records : t -> record list
(** Oldest first; at most [capacity] records. *)

val recorded : t -> int
(** Total records ever written (may exceed [capacity]). *)

val merge_into : t -> t list -> unit
(** [merge_into master rings] appends every ring's retained records into
    [master], interleaved in deterministic (time, shard, per-shard write
    order) order — the end-of-run merge for sharded runs (each shard's
    write order {e is} its virtual-time order, so the result is globally
    time-sorted with the shard id breaking ties). [recorded master]
    afterwards counts records seen across all rings. *)

val pp_record : Format.formatter -> record -> unit

val dump : ?out:Format.formatter -> t -> unit
(** Print every retained record, oldest first (default
    [Format.err_formatter]). *)

val auto_dump : t -> unit
(** The SLO-breach dump: write the retained records to {!dump_path}
    (suffixed [".shard<i>"] when {!set_shard} was called, so concurrent
    dumps from different shards never share a file), or to stderr when
    no path is set. Each call rewrites the file whole. *)
