module Sim = Aitf_engine.Sim

type bucket = { mutable n : int; mutable secs : float }

type t = {
  tbl : (string, bucket) Hashtbl.t;
  mutable events : int;
  mutable seconds : float;
  mutable peak_pending : int;
}

let create () =
  { tbl = Hashtbl.create 16; events = 0; seconds = 0.; peak_pending = 0 }

let other = "other"

let probe t label secs pending =
  let key = match label with Some l -> l | None -> other in
  let b =
    match Hashtbl.find_opt t.tbl key with
    | Some b -> b
    | None ->
      let b = { n = 0; secs = 0. } in
      Hashtbl.replace t.tbl key b;
      b
  in
  b.n <- b.n + 1;
  b.secs <- b.secs +. secs;
  t.events <- t.events + 1;
  t.seconds <- t.seconds +. secs;
  if pending > t.peak_pending then t.peak_pending <- pending

let current : t option ref = ref None

let attach t =
  current := Some t;
  Sim.set_default_profile_hook (probe t)

let detach () =
  current := None;
  Sim.clear_default_profile_hook ()

let attach_to t sim = Sim.set_profile_hook sim (probe t)
let detach_from sim = Sim.clear_profile_hook sim
let attached () = !current
let enabled () = Option.is_some !current

let merge ts =
  let m = create () in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun k b ->
          let acc =
            match Hashtbl.find_opt m.tbl k with
            | Some acc -> acc
            | None ->
              let acc = { n = 0; secs = 0. } in
              Hashtbl.replace m.tbl k acc;
              acc
          in
          acc.n <- acc.n + b.n;
          acc.secs <- acc.secs +. b.secs)
        t.tbl;
      m.events <- m.events + t.events;
      m.seconds <- m.seconds +. t.seconds;
      if t.peak_pending > m.peak_pending then m.peak_pending <- t.peak_pending)
    ts;
  m

let events t = t.events
let seconds t = t.seconds
let peak_pending t = t.peak_pending

let buckets t =
  Hashtbl.fold (fun k b acc -> (k, (b.n, b.secs)) :: acc) t.tbl []
  |> List.sort (fun (ka, (_, sa)) (kb, (_, sb)) ->
         let c = Float.compare sb sa in
         if c <> 0 then c else String.compare ka kb)

let report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "== engine profile: %d event(s), %.4f s wall, peak queue %d ==\n"
       t.events t.seconds t.peak_pending);
  Buffer.add_string buf
    (Printf.sprintf "%-20s %10s %12s %7s\n" "category" "events" "seconds" "%");
  List.iter
    (fun (label, (n, secs)) ->
      let pct = if t.seconds > 0. then 100. *. secs /. t.seconds else 0. in
      Buffer.add_string buf
        (Printf.sprintf "%-20s %10d %12.6f %6.1f%%\n" label n secs pct))
    (buckets t);
  Buffer.contents buf

let register_metrics t reg ~prefix =
  let p m = prefix ^ "." ^ m in
  Metrics.register_counter reg (p "events") ~unit_:"events"
    ~help:"Events timed by the engine profiler" (fun () ->
      float_of_int t.events);
  Metrics.register_counter reg (p "seconds") ~unit_:"s"
    ~help:"Wall-clock seconds spent executing events (nondeterministic)"
    (fun () -> t.seconds);
  Metrics.register_gauge reg (p "peak_pending") ~unit_:"events"
    ~help:"Peak live event-queue depth observed by the profiler" (fun () ->
      float_of_int t.peak_pending)
