module Sim = Aitf_engine.Sim
module Timer = Aitf_engine.Timer
module Series = Aitf_stats.Series

type t = {
  sim : Sim.t;
  registry : Metrics.t;
  interval : float;
  series : (string, Series.t) Hashtbl.t;
  mutable ticks : int;
  mutable timer : Timer.t option;
  (* wall-clock profiling state (only used with ~profile:true) *)
  mutable last_events : int;
  mutable last_cpu : float;
  mutable wall_rate : float;
}

let series_for t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
    let s = Series.create ~name () in
    Hashtbl.replace t.series name s;
    s

let tick profile t () =
  let now = Sim.now t.sim in
  t.ticks <- t.ticks + 1;
  if profile then begin
    let events = Sim.events_processed t.sim in
    let cpu = Sys.time () in
    let d_cpu = cpu -. t.last_cpu in
    t.wall_rate <-
      (if d_cpu > 0. then float_of_int (events - t.last_events) /. d_cpu
       else 0.);
    t.last_events <- events;
    t.last_cpu <- cpu
  end;
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter v | Metrics.Gauge v ->
        Series.add (series_for t name) ~time:now v
      | Metrics.Histogram { count; _ } ->
        Series.add (series_for t (name ^ ".count")) ~time:now
          (float_of_int count))
    (Metrics.snapshot t.registry)

let start ?(interval = 0.1) ?(profile = false) sim registry =
  if interval <= 0. then invalid_arg "Sampler.start: interval must be positive";
  let t =
    {
      sim;
      registry;
      interval;
      series = Hashtbl.create 64;
      ticks = 0;
      timer = None;
      last_events = Sim.events_processed sim;
      last_cpu = Sys.time ();
      wall_rate = 0.;
    }
  in
  Metrics.register_counter registry "sim.events_processed" ~unit_:"events"
    ~help:"Events executed by the simulation loop" (fun () ->
      float_of_int (Sim.events_processed sim));
  Metrics.register_gauge registry "sim.pending_events" ~unit_:"events"
    ~help:"Event-queue depth (including cancelled, uncollected entries)"
    (fun () -> float_of_int (Sim.pending sim));
  Metrics.register_gauge registry "sim.peak_pending_events" ~unit_:"events"
    ~help:"Peak live event-queue depth observed so far" (fun () ->
      float_of_int (Sim.peak_pending sim));
  Metrics.register_counter registry "sim.cancelled_events" ~unit_:"events"
    ~help:"Scheduled events cancelled before firing" (fun () ->
      float_of_int (Sim.total_cancelled sim));
  if profile then
    Metrics.register_gauge registry "sim.wall_events_per_sec" ~unit_:"events/s"
      ~help:
        "Events per CPU-second between the last two ticks (wall-clock \
         profiling; nondeterministic)" (fun () -> t.wall_rate);
  t.timer <- Some (Timer.periodic sim ~period:interval (tick profile t));
  t

let stop t =
  match t.timer with
  | Some timer ->
    Timer.cancel timer;
    t.timer <- None
  | None -> ()

let interval t = t.interval
let ticks t = t.ticks

let series t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.series []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_series t name = Hashtbl.find_opt t.series name
