(** Minimal JSON values — construction, printing, parsing.

    The run reports must be machine-readable without pulling a JSON
    dependency into the build, so this is a deliberately small, total
    implementation: a value type, a printer whose float formatting
    round-trips exactly, and a recursive-descent parser for reading
    reports back (tests, external tooling written against the library).

    Not supported: surrogate-pair [\uXXXX] escapes beyond the BMP, and
    non-finite floats (printed as [null] — JSON has no spelling for
    them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render. Default is indented (2 spaces); [~minify:true] produces one
    line. Floats print with the fewest digits that parse back to the
    identical bit pattern. *)

val float_repr : float -> string
(** The float formatting {!to_string} uses — integers as [x.0], the rest
    with the fewest digits that round-trip. Exposed so other textual
    formats (the replay-trace codec) inherit the same byte stability. *)

val pp : Format.formatter -> t -> unit
(** [to_string ~minify:true] onto a formatter. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    non-whitespace is an error). Numbers without [./e/E] become [Int],
    the rest [Float]. Errors carry a character offset. *)

val equal : t -> t -> bool
(** Structural equality; [Int n] and [Float f] compare equal when
    [float_of_int n = f], and object field order is significant. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val get_float : t -> float option
(** [Float f] or [Int n] (as float). *)

val get_string : t -> string option
val get_list : t -> t list option
