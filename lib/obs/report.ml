module Series = Aitf_stats.Series

let schema = "aitf.run-report/1"

let bucket_json (le, count) =
  Json.Obj
    [
      ("le", if le = infinity then Json.String "inf" else Json.Float le);
      ("count", Json.Int count);
    ]

let metric_json registry (name, v) =
  let common kind =
    [
      ("name", Json.String name);
      ("kind", Json.String kind);
      ("unit", Json.String (Option.value ~default:"" (Metrics.unit_of registry name)));
      ("help", Json.String (Option.value ~default:"" (Metrics.help_of registry name)));
    ]
  in
  match v with
  | Metrics.Counter v -> Json.Obj (common "counter" @ [ ("value", Json.Float v) ])
  | Metrics.Gauge v -> Json.Obj (common "gauge" @ [ ("value", Json.Float v) ])
  | Metrics.Histogram { count; sum; buckets } ->
    Json.Obj
      (common "histogram"
      @ [
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ("buckets", Json.List (List.map bucket_json buckets));
        ])

let series_json (name, s) =
  Json.Obj
    [
      ("name", Json.String name);
      ( "points",
        Json.List
          (List.map
             (fun (t, v) -> Json.List [ Json.Float t; Json.Float v ])
             (Series.points s)) );
    ]

let make ?(meta = []) ?parallel ?(series = []) ~now registry =
  Json.Obj
    ([ ("schema", Json.String schema);
       ("generated_at", Json.Float now);
       ("meta", Json.Obj meta);
     ]
    @ (match parallel with
      | None -> []
      | Some p -> [ ("parallel", p) ])
    @ [
        ( "metrics",
          Json.List
            (List.map (metric_json registry) (Metrics.snapshot registry)) );
        ("series", Json.List (List.map series_json series));
      ])

(* --- parsing back ----------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "report: missing field %S" name)

let as_float what json =
  match Json.get_float json with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "report: %s is not a number" what)

let bucket_of_json json =
  let* le = field "le" json in
  let* le =
    match le with
    | Json.String "inf" -> Ok infinity
    | j -> as_float "bucket bound" j
  in
  let* count = field "count" json in
  let* count = as_float "bucket count" count in
  Ok (le, int_of_float count)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let metric_of_json json =
  let* name = field "name" json in
  let* name =
    match Json.get_string name with
    | Some s -> Ok s
    | None -> Error "report: metric name is not a string"
  in
  let* kind = field "kind" json in
  match Json.get_string kind with
  | Some "counter" ->
    let* v = field "value" json in
    let* v = as_float name v in
    Ok (name, Metrics.Counter v)
  | Some "gauge" ->
    let* v = field "value" json in
    let* v = as_float name v in
    Ok (name, Metrics.Gauge v)
  | Some "histogram" ->
    let* count = field "count" json in
    let* count = as_float name count in
    let* sum = field "sum" json in
    let* sum = as_float name sum in
    let* buckets = field "buckets" json in
    let* buckets =
      match Json.get_list buckets with
      | Some l -> map_result bucket_of_json l
      | None -> Error "report: buckets is not a list"
    in
    Ok (name, Metrics.Histogram { count = int_of_float count; sum; buckets })
  | _ -> Error (Printf.sprintf "report: bad metric kind for %S" name)

let values_of_json json =
  let* metrics = field "metrics" json in
  match Json.get_list metrics with
  | Some l -> map_result metric_of_json l
  | None -> Error "report: metrics is not a list"

(* --- CSV -------------------------------------------------------------------- *)

(* RFC 4180 quoting for free-form fields (metric names, units): a field
   containing a comma, quote or newline is wrapped in double quotes with
   embedded quotes doubled. Plain fields pass through untouched, so the
   common case produces byte-identical output to the unquoted writer. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let series_csv series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "metric,time,value\n";
  List.iter
    (fun (name, s) ->
      List.iter
        (fun (t, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%.6g,%.8g\n" (csv_field name) t v))
        (Series.points s))
    series;
  Buffer.contents buf

let snapshot_csv registry =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "metric,kind,value,unit\n";
  let unit_of name =
    csv_field (Option.value ~default:"" (Metrics.unit_of registry name))
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter v ->
        Buffer.add_string buf
          (Printf.sprintf "%s,counter,%.8g,%s\n" (csv_field name) v
             (unit_of name))
      | Metrics.Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "%s,gauge,%.8g,%s\n" (csv_field name) v
             (unit_of name))
      | Metrics.Histogram { count; sum; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "%s,histogram,%d,%s\n" (csv_field name) count
             (unit_of name));
        if count > 0 then
          Buffer.add_string buf
            (Printf.sprintf "%s.mean,gauge,%.8g,%s\n" (csv_field name)
               (sum /. float_of_int count)
               (unit_of name)))
    (Metrics.snapshot registry);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_json path json =
  write_file path (Json.to_string json ^ "\n")
