type kind = Enqueue | Dequeue | Drop of string

type record = {
  time : float;
  node : string;
  link : string;
  kind : kind;
  size : int;
  queue_depth : int;
}

type t = {
  buf : record option array;
  mutable next : int;  (* write cursor *)
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.buf

let current : t option ref = ref None

(* Per-scheduler-instance overrides, keyed by physical sim identity. Kept
   as a tiny assoc list: a process holds at most a handful of attached
   recorders (one per shard), and [note] only scans it when non-empty. *)
let overrides : (Aitf_engine.Sim.t * t) list ref = ref []

let attach t = current := Some t
let detach () = current := None

let attach_to t sim =
  overrides := (sim, t) :: List.filter (fun (s, _) -> s != sim) !overrides

let detach_from sim =
  overrides := List.filter (fun (s, _) -> s != sim) !overrides

let attached () = !current
let enabled () = Option.is_some !current || !overrides <> []

let write t ~time ~node ~link ~kind ~size ~queue_depth =
  t.buf.(t.next) <- Some { time; node; link; kind; size; queue_depth };
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let note ?sim ~time ~node ~link ~kind ~size ~queue_depth () =
  let target =
    match sim with
    | Some s when !overrides <> [] -> (
      match List.find_opt (fun (s', _) -> s' == s) !overrides with
      | Some (_, t) -> Some t
      | None -> !current)
    | _ -> !current
  in
  match target with
  | None -> ()
  | Some t -> write t ~time ~node ~link ~kind ~size ~queue_depth

let records t =
  let n = Array.length t.buf in
  let acc = ref [] in
  (* Oldest record sits at the write cursor once the ring has wrapped. *)
  for i = n - 1 downto 0 do
    match t.buf.((t.next + i) mod n) with
    | Some r -> acc := r :: !acc
    | None -> ()
  done;
  !acc

let recorded t = t.total

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Drop reason -> "drop:" ^ reason

let pp_record fmt r =
  Format.fprintf fmt "%10.6f  %-12s %-16s %-18s %5dB q=%dB" r.time r.node
    r.link (kind_name r.kind) r.size r.queue_depth

let dump ?(out = Format.err_formatter) t =
  let rs = records t in
  Format.fprintf out "== flight recorder: last %d of %d record(s) ==@."
    (List.length rs) t.total;
  List.iter (fun r -> Format.fprintf out "%a@." pp_record r) rs
