type kind = Enqueue | Dequeue | Drop of string

type record = {
  time : float;
  node : string;
  link : string;
  kind : kind;
  size : int;
  queue_depth : int;
}

type t = {
  buf : record option array;
  mutable next : int;  (* write cursor *)
  mutable total : int;
  mutable shard : int option;  (* identity stamp for sharded runs *)
  mutable dump_path : string option;  (* auto-dump target (else stderr) *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    next = 0;
    total = 0;
    shard = None;
    dump_path = None;
  }

let capacity t = Array.length t.buf
let set_shard t i = t.shard <- Some i
let shard t = t.shard
let set_dump_path t p = t.dump_path <- p
let dump_path t = t.dump_path

let current : t option ref = ref None

(* Per-scheduler-instance overrides, keyed by physical sim identity. Kept
   as a tiny assoc list: a process holds at most a handful of attached
   recorders (one per shard), and [note] only scans it when non-empty. *)
let overrides : (Aitf_engine.Sim.t * t) list ref = ref []

let attach t = current := Some t
let detach () = current := None

let attach_to t sim =
  overrides := (sim, t) :: List.filter (fun (s, _) -> s != sim) !overrides

let detach_from sim =
  overrides := List.filter (fun (s, _) -> s != sim) !overrides

let attached () = !current
let enabled () = Option.is_some !current || !overrides <> []

let write t ~time ~node ~link ~kind ~size ~queue_depth =
  t.buf.(t.next) <- Some { time; node; link; kind; size; queue_depth };
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let note ?sim ~time ~node ~link ~kind ~size ~queue_depth () =
  let target =
    match sim with
    | Some s when !overrides <> [] -> (
      match List.find_opt (fun (s', _) -> s' == s) !overrides with
      | Some (_, t) -> Some t
      | None -> !current)
    | _ -> !current
  in
  match target with
  | None -> ()
  | Some t -> write t ~time ~node ~link ~kind ~size ~queue_depth

let records t =
  let n = Array.length t.buf in
  let acc = ref [] in
  (* Oldest record sits at the write cursor once the ring has wrapped. *)
  for i = n - 1 downto 0 do
    match t.buf.((t.next + i) mod n) with
    | Some r -> acc := r :: !acc
    | None -> ()
  done;
  !acc

let recorded t = t.total

(* [merge_into master rings] interleaves every shard ring's retained
   records into [master] in deterministic (time, shard, per-shard write
   order) order. Within a ring, write order is virtual-time order (each
   shard's sim executes monotonically), so the merged ring is globally
   time-sorted with shard id breaking ties. [master]'s total afterwards
   counts every record seen anywhere, mirroring the single-ring meaning
   of {!recorded}. *)
let merge_into master rings =
  let shard_of t i = match t.shard with Some s -> s | None -> i in
  let tagged =
    List.concat
      (List.mapi
         (fun i t ->
           List.mapi (fun j r -> (r.time, shard_of t i, j, r)) (records t))
         rings)
  in
  let tagged =
    List.stable_sort
      (fun (ta, sa, ja, _) (tb, sb, jb, _) ->
        let c = Float.compare ta tb in
        if c <> 0 then c
        else
          let c = Int.compare sa sb in
          if c <> 0 then c else Int.compare ja jb)
      tagged
  in
  let written = List.length tagged in
  List.iter
    (fun (_, _, _, r) ->
      write master ~time:r.time ~node:r.node ~link:r.link ~kind:r.kind
        ~size:r.size ~queue_depth:r.queue_depth)
    tagged;
  let seen = List.fold_left (fun acc t -> acc + t.total) 0 rings in
  master.total <- master.total - written + seen

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Drop reason -> "drop:" ^ reason

let pp_record fmt r =
  Format.fprintf fmt "%10.6f  %-12s %-16s %-18s %5dB q=%dB" r.time r.node
    r.link (kind_name r.kind) r.size r.queue_depth

let dump ?(out = Format.err_formatter) t =
  let rs = records t in
  Format.fprintf out "== flight recorder: last %d of %d record(s) ==@."
    (List.length rs) t.total;
  List.iter (fun r -> Format.fprintf out "%a@." pp_record r) rs

let auto_dump_target t =
  Option.map
    (fun p ->
      match t.shard with
      | Some i -> Printf.sprintf "%s.shard%d" p i
      | None -> p)
    t.dump_path

let auto_dump t =
  match auto_dump_target t with
  | None -> dump t
  | Some path ->
    (* One whole-file write per dump: a per-shard-suffixed path means no
       two recorders ever target the same file, so dumps cannot
       interleave or clobber each other. *)
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let out = Format.formatter_of_out_channel oc in
        dump ~out t;
        Format.pp_print_flush out ())
