(** Opt-in engine profiler: wall-clock accounting per event category.

    Installs the {!Aitf_engine.Sim.set_profile_hook} probe and buckets
    the wall-clock CPU cost of every executed event by its scheduling
    label ([Sim.at ~label] / [Sim.after ~label]; unlabelled events land
    in ["other"]), while tracking the peak live event-queue depth it
    observed. Together with the queue's own scheduled/cancelled totals
    this attributes a run's hot path: which event category burned the
    time, and how deep the queue got.

    Everything here is wall-clock and therefore {e nondeterministic}; the
    profiler only reads simulation state (one branch per event when not
    attached) and never feeds back into it, so a profiled run executes
    the same event sequence as an unprofiled one. *)

type t

val create : unit -> t

val attach : t -> unit
(** Install [t] as the default profiler probe (replacing any other):
    every [Sim.t] created while attached inherits it, which is how the
    probe reaches sims that scenarios create internally. Worlds created
    before the attach are unaffected — use {!attach_to} for those. *)

val detach : unit -> unit
(** Remove the default probe (instances keep theirs; see
    {!detach_from}). *)

val attach_to : t -> Aitf_engine.Sim.t -> unit
(** Install [t] as [sim]'s own probe, independent of the default. The
    parallel engine uses one profiler per shard sim so concurrent shards
    never interleave buckets; {!merge} recombines them for reporting. *)

val detach_from : Aitf_engine.Sim.t -> unit

val attached : unit -> t option
val enabled : unit -> bool

val merge : t list -> t
(** Sum the buckets/events/seconds of several profilers (peak queue depth
    is the max). Used to report per-shard profiles as one table. *)

(** {1 Results} *)

val events : t -> int
(** Events timed while attached. *)

val seconds : t -> float
(** Total wall-clock seconds across all buckets. *)

val peak_pending : t -> int
(** Highest live event-queue depth observed by the probe. *)

val buckets : t -> (string * (int * float)) list
(** [(label, (events, seconds))], sorted by seconds, costliest first. *)

val report : t -> string
(** Human-readable per-bucket table. *)

val register_metrics : t -> Metrics.t -> prefix:string -> unit
(** Register pull-based gauges/counters over this profiler under
    [prefix]: [<prefix>.events], [<prefix>.seconds],
    [<prefix>.peak_pending] — how `bench --json` and the run report gain
    hot-path attribution. Values are wall-clock and nondeterministic. *)
