module Histogram = Aitf_stats.Histogram

type timer = { tm_mu : Mutex.t; hist : Histogram.t; mutable sum : float }

type source =
  | Pull_counter of (unit -> float)
  | Pull_gauge of (unit -> float)
  | Push_timer of timer

type metric = { m_unit : string; m_help : string; source : source }

(* The registry is shared across domains under the parallel engine
   (shard-phase component constructors self-register, gateways push timer
   observations), so every table access and timer mutation is serialized
   on a mutex. Uncontended Mutex.lock is cheap, and registry operations
   are far off the simulation hot path. *)
type t = { mu : Mutex.t; tbl : (string, metric) Hashtbl.t }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

type value =
  | Counter of float
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

let register t name metric =
  if name = "" then invalid_arg "Metrics.register: empty name";
  locked t (fun () ->
      if Hashtbl.mem t.tbl name then
        invalid_arg
          (Printf.sprintf "Metrics.register: duplicate metric %S" name);
      Hashtbl.replace t.tbl name metric)

let register_counter t ?(unit_ = "") ?(help = "") name read =
  register t name { m_unit = unit_; m_help = help; source = Pull_counter read }

let register_gauge t ?(unit_ = "") ?(help = "") name read =
  register t name { m_unit = unit_; m_help = help; source = Pull_gauge read }

let default_bounds = Histogram.log_bounds ~lo:1e-3 ~hi:100. ~per_decade:5

let timer t ?(unit_ = "s") ?(help = "") ?(bounds = default_bounds) name =
  let tm = { tm_mu = Mutex.create (); hist = Histogram.create ~bounds; sum = 0. } in
  register t name { m_unit = unit_; m_help = help; source = Push_timer tm };
  tm

let observe tm v =
  Mutex.lock tm.tm_mu;
  Histogram.add tm.hist v;
  tm.sum <- tm.sum +. v;
  Mutex.unlock tm.tm_mu

let registered t name = locked t (fun () -> Hashtbl.mem t.tbl name)
let size t = locked t (fun () -> Hashtbl.length t.tbl)

let names t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
  |> List.sort String.compare

let sample metric =
  match metric.source with
  | Pull_counter read -> Counter (read ())
  | Pull_gauge read -> Gauge (read ())
  | Push_timer tm ->
    Mutex.lock tm.tm_mu;
    let v =
      Histogram
        {
          count = Histogram.count tm.hist;
          sum = tm.sum;
          buckets = Histogram.buckets tm.hist;
        }
    in
    Mutex.unlock tm.tm_mu;
    v

let value t name =
  Option.map sample (locked t (fun () -> Hashtbl.find_opt t.tbl name))

let snapshot t =
  List.map
    (fun name -> (name, sample (locked t (fun () -> Hashtbl.find t.tbl name))))
    (names t)

let unit_of t name =
  Option.map (fun m -> m.m_unit) (locked t (fun () -> Hashtbl.find_opt t.tbl name))

let help_of t name =
  Option.map (fun m -> m.m_help) (locked t (fun () -> Hashtbl.find_opt t.tbl name))

(* --- global attachment ------------------------------------------------------ *)

let current : t option ref = ref None

let attach t = current := Some t
let detach () = current := None
let attached () = !current

let with_attached t f =
  attach t;
  Fun.protect ~finally:detach f

let if_attached f = match !current with None -> () | Some t -> f t

let timer_if_attached ?unit_ ?help ?bounds name =
  match !current with
  | None -> None
  | Some t -> Some (timer t ?unit_ ?help ?bounds name)
