module Histogram = Aitf_stats.Histogram

type timer = { hist : Histogram.t; mutable sum : float }

type source =
  | Pull_counter of (unit -> float)
  | Pull_gauge of (unit -> float)
  | Push_timer of timer

type metric = { m_unit : string; m_help : string; source : source }

type t = { tbl : (string, metric) Hashtbl.t }

type value =
  | Counter of float
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

let create () = { tbl = Hashtbl.create 64 }

let register t name metric =
  if name = "" then invalid_arg "Metrics.register: empty name";
  if Hashtbl.mem t.tbl name then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
  Hashtbl.replace t.tbl name metric

let register_counter t ?(unit_ = "") ?(help = "") name read =
  register t name { m_unit = unit_; m_help = help; source = Pull_counter read }

let register_gauge t ?(unit_ = "") ?(help = "") name read =
  register t name { m_unit = unit_; m_help = help; source = Pull_gauge read }

let default_bounds = Histogram.log_bounds ~lo:1e-3 ~hi:100. ~per_decade:5

let timer t ?(unit_ = "s") ?(help = "") ?(bounds = default_bounds) name =
  let tm = { hist = Histogram.create ~bounds; sum = 0. } in
  register t name { m_unit = unit_; m_help = help; source = Push_timer tm };
  tm

let observe tm v =
  Histogram.add tm.hist v;
  tm.sum <- tm.sum +. v

let registered t name = Hashtbl.mem t.tbl name
let size t = Hashtbl.length t.tbl

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []
  |> List.sort String.compare

let sample metric =
  match metric.source with
  | Pull_counter read -> Counter (read ())
  | Pull_gauge read -> Gauge (read ())
  | Push_timer tm ->
    Histogram
      {
        count = Histogram.count tm.hist;
        sum = tm.sum;
        buckets = Histogram.buckets tm.hist;
      }

let value t name = Option.map sample (Hashtbl.find_opt t.tbl name)

let snapshot t =
  List.map (fun name -> (name, sample (Hashtbl.find t.tbl name))) (names t)

let unit_of t name =
  Option.map (fun m -> m.m_unit) (Hashtbl.find_opt t.tbl name)

let help_of t name =
  Option.map (fun m -> m.m_help) (Hashtbl.find_opt t.tbl name)

(* --- global attachment ------------------------------------------------------ *)

let current : t option ref = ref None

let attach t = current := Some t
let detach () = current := None
let attached () = !current

let with_attached t f =
  attach t;
  Fun.protect ~finally:detach f

let if_attached f = match !current with None -> () | Some t -> f t

let timer_if_attached ?unit_ ?help ?bounds name =
  match !current with
  | None -> None
  | Some t -> Some (timer t ?unit_ ?help ?bounds name)
