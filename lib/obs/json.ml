type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------------- *)

let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null" (* JSON has no spelling for them *)
  | _ ->
    if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape_to buf k;
          Buffer.add_string buf (if minify then ":" else ": ");
          go (indent + 2) item)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string ~minify:true v)

(* --- parsing --------------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub s !pos 4)
             with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* encode the code point as UTF-8 (BMP only) *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> (
      match c with
      | '-' | '0' .. '9' -> parse_number ()
      | c -> fail (Printf.sprintf "unexpected %C" c))
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "json: %s at offset %d" msg at)

(* --- combinators ------------------------------------------------------------ *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> a = b
  | List a, List b ->
    List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2 (fun (ka, va) (kb, vb) -> ka = kb && equal va vb) a b
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None
