(** Machine-readable run reports.

    Serialises a final registry snapshot plus the sampled time series to
    JSON (schema [aitf.run-report/1], documented with a worked example in
    docs/OBSERVABILITY.md) and CSV, and parses the metric values back —
    the contract external tooling builds against.

    Report shape:
    {v
    { "schema": "aitf.run-report/1",
      "generated_at": <virtual seconds>,
      "meta": { ... caller-supplied run parameters ... },
      -- sharded runs only --
      "parallel": { "shards": <n>, "windows": <n>, "stall_seconds": ...,
                    "per_shard": [...], "window_timeline": {...} },
      "metrics": [
        { "name": ..., "kind": "counter"|"gauge"|"histogram",
          "unit": ..., "help": ...,
          -- counter/gauge --      "value": <number>,
          -- histogram --          "count": <n>, "sum": <number>,
                                   "buckets": [ {"le": <bound|"inf">,
                                                 "count": <n>}, ... ] } ],
      "series": [ { "name": ..., "points": [[t, v], ...] }, ... ] }
    v} *)

val make :
  ?meta:(string * Json.t) list ->
  ?parallel:Json.t ->
  ?series:(string * Aitf_stats.Series.t) list ->
  now:float ->
  Metrics.t ->
  Json.t
(** Snapshot the registry and assemble the report. [now] stamps
    [generated_at] (virtual time); [series] usually comes from
    {!Sampler.series}; [?parallel] is the parallel-engine telemetry
    section emitted by sharded runs ([As_scenario.result.r_parallel]) —
    omitted entirely for sequential runs, keeping their reports
    byte-identical to previous versions. *)

val values_of_json :
  Json.t -> ((string * Metrics.value) list, string) result
(** Read the ["metrics"] section back (sorted by name) — the round-trip
    counterpart of {!make}. *)

val series_csv : (string * Aitf_stats.Series.t) list -> string
(** Long-format CSV: [metric,time,value] — one row per sample point. *)

val snapshot_csv : Metrics.t -> string
(** Final-snapshot CSV: [metric,kind,value,unit]. A histogram row carries
    its sample count as the value; its mean rides in a
    [<name>.mean] row. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val write_json : string -> Json.t -> unit
(** Indented JSON plus a trailing newline. *)
