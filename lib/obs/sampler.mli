(** Periodic metric sampling on the virtual clock.

    A sampler ticks on an {!Aitf_engine.Timer.periodic} timer and appends
    every registered scalar metric (counters and gauges; a timer
    contributes its sample count as [<name>.count]) to one
    {!Aitf_stats.Series} per metric — the time-series half of a run
    report. Metrics registered after the sampler started simply begin
    their series at the next tick.

    Starting a sampler also registers the engine-level metrics pulled
    from the simulation world itself:

    - [sim.events_processed] (counter) — events executed so far;
    - [sim.pending_events] (gauge) — event-queue depth;
    - [sim.peak_pending_events] (gauge) — peak live queue depth;
    - [sim.cancelled_events] (counter) — events cancelled before firing;
    - [sim.wall_events_per_sec] (gauge, with [~profile:true] only) —
      events executed per CPU-second between the last two ticks. This is
      a wall-clock profiling hook: it is {e not} deterministic, which is
      why it is off by default.

    A sampler re-arms itself forever; run the simulation with [~until]
    (as every packaged scenario does) or call {!stop} before draining the
    queue to completion. *)

type t

val start :
  ?interval:float -> ?profile:bool -> Aitf_engine.Sim.t -> Metrics.t -> t
(** Start ticking every [interval] seconds (default 0.1 — see
    docs/OBSERVABILITY.md for how to align the interval with the
    protocol timescales; it must resolve Ttmp, not T). First tick at
    [now + interval].
    @raise Invalid_argument if [interval <= 0] or the sim metrics are
    already registered (one sampler per registry). *)

val stop : t -> unit
(** Stop ticking; idempotent. Collected series remain readable. *)

val interval : t -> float
val ticks : t -> int

val series : t -> (string * Aitf_stats.Series.t) list
(** One series per sampled metric, sorted by name. *)

val find_series : t -> string -> Aitf_stats.Series.t option
