(** Causal span tracing for filtering requests.

    Aggregate metrics (registry histograms) answer "how long does
    time-to-filter take overall"; this module answers "why did {e this}
    request take 740 ms, and at which gateway did it stall". Every
    filtering request is keyed by a small integer correlation id minted
    at the victim ({!mint}) and carried inside {!Aitf_core.Message}'s
    request record; each protocol layer opens a child span per stage
    (detect, request, temp-filter, verification, counter-request,
    permanent-filter) and attaches point events for retransmissions,
    drops, policing rejections and overload evictions. A run yields a
    queryable forest of span trees, exportable to Chrome trace-event
    JSON (loadable in Perfetto) plus a human-readable critical-path
    summary.

    Like {!Aitf_engine.Trace} and {!Metrics}, collection is off by
    default and attached process-globally ({!attach}); every recording
    entry point is a single branch when no collector is attached.
    Recording never schedules events and never consumes randomness, and
    {!mint} runs unconditionally off a plain counter, so a traced run is
    bit-identical to an untraced one (same seed, same event sequence).

    {2 Sharded runs}

    Under the parallel engine each worker domain gets its own collector
    and mint stride via {!bind_domain} (installed by [As_scenario]
    through [Sched]'s worker-init hook), so recording needs no locks and
    traced sharded runs stay bit-identical to untraced ones. Shard
    collectors run with {!set_allow_orphans} on: spans for a correlation
    id whose root opened in another shard accumulate under an {e orphan}
    placeholder, and {!merge_into} reunites everything at end of run —
    re-keying roots into the canonical (opened_at, victim, flow) order a
    sequential run would have minted, and dropping orphan-only roots
    (forged ids), which reproduces the sequential "ignore unknown corr"
    semantics. {!digest} applies the same canonicalization, so equal
    digests across shard counts mean the same trace. *)

(** Protocol stages of one filtering request, in causal order. *)
type stage =
  | Detect  (** first attack packet at the victim → detection fires *)
  | Request  (** victim sends the request → victim's gateway receives it *)
  | Temp_filter  (** temporary (Ttmp) filter installed → expiry *)
  | Verification
      (** request receipt at the attacker-side gateway → handshake result
          (equals the registry's time-to-filter when it verifies) *)
  | Counter_request
      (** gateway's to-attacker request sent → attacker host receives it *)
  | Permanent_filter  (** long (T) filter installed → removed/expired *)

val stage_name : stage -> string
(** Kebab-case name, e.g. ["temp-filter"]. *)

type event = { at : float; label : string }
(** A point annotation inside a span or at the root. *)

type span = {
  span_corr : int;
  stage : stage;
  node : string;  (** node that opened the span *)
  started_at : float;
  mutable finished_at : float option;  (** [None] while still open *)
  mutable span_events : event list;  (** newest first *)
}

type root = {
  corr : int;
  mutable flow : string;  (** printed flow label *)
  mutable victim : string;  (** node that minted the id *)
  mutable opened_at : float;
  mutable completed_at : float option;
      (** when the long filter was installed at the attacker side — the
          "request succeeded" moment; [None] for unfinished requests *)
  mutable spans : span list;  (** newest first *)
  mutable root_events : event list;  (** newest first *)
  mutable orphan : bool;
      (** placeholder created by a shard collector for a correlation id
          whose root lives in another shard's collector; resolved (or
          dropped) by {!merge_into} *)
}

type t
(** A span collector — one per traced run (plus one per shard in sharded
    runs). *)

val create : unit -> t

val set_allow_orphans : t -> bool -> unit
(** When on, recording calls for an unknown correlation id create an
    orphan placeholder root instead of being ignored. Off by default
    (sequential semantics); turned on for shard collectors and for the
    master collector during a sharded run. *)

(** {1 Correlation ids} *)

val mint : unit -> int
(** Next correlation id (1, 2, ...). Deterministic and independent of
    attachment: protocol code mints unconditionally so that message
    contents do not depend on whether tracing is on. On a worker domain
    bound with {!bind_domain}, ids come from that domain's stride
    instead of the process-global counter. *)

val reset_mint : unit -> unit
(** Rewind the process-global correlation-id counter to 0, so the next
    {!mint} returns 1 again. The counter otherwise runs for the whole
    process, which makes a scenario's corr ids (and any serialized span
    digest) depend on how many scenarios ran before it. Harnesses that
    execute several independent scenarios in one process — the golden
    matrix, the bench driver — call this before each one; a single
    scenario never needs it. (Worker-domain strides need no rewind:
    domains are fresh per scheduler run.) *)

(** {1 Attachment} *)

val attach : t -> unit
(** Attach [t] process-globally (the main domain's collector). *)

val detach : unit -> unit
val attached : unit -> t option

val bind_domain : ?collector:t -> mint_base:int -> unit -> unit
(** Install a per-domain binding for the {e calling} domain: recording
    on this domain goes to [?collector] (falling back to the global
    attachment when omitted) and {!mint} returns [mint_base + 1],
    [mint_base + 2], ... Parallel-engine workers call this at spawn with
    a per-shard stride (e.g. [(shard + 1) lsl 24], which keeps ids
    inside the 32-bit wire encoding), whether or not tracing is on —
    minting happens unconditionally and must stay race-free. *)

val unbind_domain : unit -> unit
(** Remove the calling domain's binding (main-domain semantics again). *)

val enabled : unit -> bool
(** [true] iff the calling domain has a collector (its own binding's, or
    the global attachment). *)

(** {1 Recording (no-ops when detached)} *)

val root : corr:int -> flow:string -> victim:string -> now:float -> unit
(** Open the root span for [corr] (first {e real} writer wins; an orphan
    placeholder for [corr] gets its identity filled in). *)

val start : corr:int -> stage:stage -> node:string -> now:float -> unit
(** Open a child span. Ignored when no root for [corr] exists (e.g. a
    forged request with corr 0) — unless orphans are allowed, in which
    case a placeholder root is created. *)

val finish :
  ?node:string -> corr:int -> stage:stage -> now:float -> unit -> unit
(** Close the most recently opened still-open span for [(corr, stage)] —
    restricted to spans opened by [node] when given (a stage can be open
    on several nodes at once during escalation). No-op when none is
    open: receivers close spans openers may never have started. *)

val event : ?node:string -> corr:int -> now:float -> string -> unit
(** Attach a point event: to the newest open span of [corr] (on [node]
    when given), else to the root. *)

val stage_event :
  ?node:string -> corr:int -> stage:stage -> now:float -> string -> unit
(** Attach a point event to the newest open [(corr, stage)] span,
    falling back to the root when none is open. *)

val root_event : corr:int -> now:float -> string -> unit
(** Attach a point event directly to [corr]'s root, never to an open
    span. Use for annotations whose source is not a stage of the request
    (the fluid mirror, auditors): "newest open span" depends on which
    collector saw which opens, so root attachment is the only placement
    that is invariant across shard layouts. *)

val bind_nonce : corr:int -> nonce:int64 -> unit
(** Remember that a handshake [nonce] belongs to [corr], so layers that
    only see the query/reply (the fault injector) can annotate the right
    tree. *)

val corr_of_nonce : nonce:int64 -> int option

val event_by_nonce : nonce:int64 -> now:float -> string -> unit
(** {!event} via {!corr_of_nonce}; no-op for unknown nonces. *)

val complete : corr:int -> now:float -> unit
(** Mark the request completed (long filter installed). Fires the SLO
    breach callback ({!set_slo}) when [now - opened_at] exceeds the
    objective. First completion wins. Orphan placeholders record the
    completion but defer SLO evaluation to {!merge_into}. *)

val set_slo : t -> seconds:float -> (root -> unit) -> unit
(** Latency objective: a root completing after more than [seconds] since
    it opened invokes the callback (used to auto-dump the
    {!Flight} recorder on anomalies). *)

(** {1 Shard merge} *)

val merge_into : t -> t list -> unit
(** [merge_into master shards] folds every shard collector (and the
    master's own records) into [master]: orphan placeholders contribute
    their spans, events and completion times to the real root of the
    same correlation id (earliest completion wins, matching sequential
    first-completion-wins); orphan-only roots — ids with no real root
    anywhere, i.e. forged — are dropped. Roots are then re-keyed
    [1..N] in canonical (opened_at, victim, flow) order with spans and
    events sorted deterministically, and the master's SLO callback is
    fired for breaching completed roots in that order. Call once, after
    [Sched.run] returns. *)

val digest : t -> string
(** Hex fingerprint of the span forest, independent of raw correlation
    ids and hash-table order: roots canonically ordered and re-keyed as
    in {!merge_into}, spans/events deterministically sorted, times
    printed round-trip exactly. Equal digests at different shard counts
    mean the merged trace is the same trace. *)

(** {1 Queries} *)

val roots : t -> root list
(** All roots, sorted by correlation id. *)

val find_root : t -> int -> root option

val spans_of : root -> span list
(** Child spans in opening order. *)

val events_of : span -> event list
(** Span events in emission order. *)

val duration : span -> float option
(** [finished_at - started_at] when closed. *)

val completed_roots : t -> root list
(** Roots with [completed_at] set, sorted by correlation id. *)

(** {1 Export} *)

val to_chrome_trace : now:float -> t -> Json.t
(** Chrome trace-event JSON ([{"traceEvents": [...]}]), loadable in
    Perfetto: one "process" per node, one "thread" per flow
    (tid = correlation id). Durations are complete ("X") events in
    microseconds; span/root events become instant ("i") events; spans
    still open are closed at [now] for display. Output is sorted and
    deterministic. *)

val summary : ?percentiles:float list -> t -> string
(** Human-readable critical-path summary: per-stage duration
    percentiles across all roots (default p50/p90/p99) plus, per
    percentile, which stage dominated time-to-filter. *)
