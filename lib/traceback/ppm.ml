open Aitf_net
module Rng = Aitf_engine.Rng

(* Savage-style edge sampling. The mark triple is (start, end, distance);
   a distance of 0 with [end_ = start] denotes a half-written edge. *)
let hook ~p ~rng (node : Node.t) (pkt : Packet.t) =
  let self = node.Node.addr in
  (if Rng.bernoulli rng ~p then pkt.ppm_mark <- Some (self, self, 0)
   else
     match pkt.ppm_mark with
     | Some (start, _, 0) -> pkt.ppm_mark <- Some (start, self, 1)
     | Some (start, end_, d) -> pkt.ppm_mark <- Some (start, end_, d + 1)
     | None -> ());
  Node.Continue

let install ~p ~rng node = Node.add_hook node (hook ~p ~rng)

module Collector = struct
  type t = {
    (* distance -> (edge -> observation count) *)
    edges : (int, (Addr.t * Addr.t, int) Hashtbl.t) Hashtbl.t;
    mutable samples : int;
  }

  let create () = { edges = Hashtbl.create 16; samples = 0 }

  let observe t (pkt : Packet.t) =
    match pkt.ppm_mark with
    | None -> ()
    | Some (start, end_, d) ->
      t.samples <- t.samples + 1;
      let per_d =
        match Hashtbl.find_opt t.edges d with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 4 in
          Hashtbl.replace t.edges d h;
          h
      in
      let key = (start, end_) in
      let n = Option.value ~default:0 (Hashtbl.find_opt per_d key) in
      Hashtbl.replace per_d key (n + 1)

  let samples t = t.samples

  let best_edge t d =
    match Hashtbl.find_opt t.edges d with
    | None -> None
    | Some h ->
      Hashtbl.fold
        (fun edge count best ->
          match best with
          | Some (_, c) when c > count -> best
          | Some (be, c) when c = count && compare be edge <= 0 ->
            (* Equal counts: keep the smaller edge, not whichever hash
               bucket came first. *)
            best
          | _ -> Some (edge, count))
        h None
      |> Option.map fst

  (* Chain edges outward from the victim. A distance-0 mark is degenerate —
     the victim-adjacent router marked and nobody completed the edge, so
     start = end = that router. For d >= 1 the edge is
     (router_d -> router_{d-1}) counting routers from the victim, so
     consistency requires end(d) = start(d-1). Each accepted edge prepends
     its start; the result is attacker-first. *)
  let reconstruct t =
    match best_edge t 0 with
    | None -> None
    | Some (s0, _) ->
      let rec extend d expected_end acc =
        match best_edge t d with
        | Some (s, e) when Addr.equal e expected_end ->
          extend (d + 1) s (s :: acc)
        | Some _ | None -> acc
      in
      Some (extend 1 s0 [ s0 ])

  let expected_samples ~p ~hops =
    if p <= 0. || p >= 1. || hops <= 0 then infinity
    else
      let d = float_of_int hops in
      log d /. (p *. ((1. -. p) ** (d -. 1.)))
end
