module Sim = Aitf_engine.Sim
module Timer = Aitf_engine.Timer
module Trace = Aitf_engine.Trace
open Aitf_net

type config = {
  check_interval : float;
  drop_threshold : float;
  limit_fraction : float;
  feedback_delay : float;
  over_limit_factor : float;
  limiter_timeout : float;
  max_depth : int;
  aggregate_prefix_len : int;
  max_contributors : int;
}

let default_config =
  {
    check_interval = 0.5;
    drop_threshold = 0.1;
    limit_fraction = 0.3;
    feedback_delay = 1.0;
    over_limit_factor = 1.5;
    limiter_timeout = 30.0;
    max_depth = 6;
    aggregate_prefix_len = 24;
    max_contributors = 4;
  }

type Packet.payload +=
  | Pushback_request of { aggregate : Addr.prefix; rate : float; depth : int }

type limiter = {
  aggregate : Addr.prefix;
  mutable rate : float;  (* bytes/s *)
  mutable tokens : float;
  mutable last_refill : float;
  mutable expires_at : float;
  mutable dropped_bytes : float;
  mutable arrived_bytes : float;  (* since installation *)
  depth : int;
  mutable propagated : bool;
}

type contribution = {
  mutable total : float;
  by_hop : (Addr.t, float ref) Hashtbl.t;
}

type router = {
  rt : t;
  node : Node.t;
  limiters : (Addr.prefix, limiter) Hashtbl.t;
  (* per-interval accounting, reset by the periodic check *)
  mutable traffic : (Addr.prefix, contribution) Hashtbl.t;
  (* previous per-port (tx, drop) totals for delta computation *)
  mutable port_history : (string * (int * int)) list;
  mutable timer : Timer.t option;
}

and t = {
  net : Network.t;
  cfg : config;
  routers : (int, router) Hashtbl.t;
  mutable installed : int;
  mutable messages : int;
}

let config t = t.cfg

let aggregate_of t (dst : Addr.t) = Addr.prefix dst t.cfg.aggregate_prefix_len

let trace r fmt =
  Trace.emitf ~time:(Sim.now (Network.sim r.rt.net)) ~category:r.node.Node.name
    fmt

(* --- rate limiting ------------------------------------------------------ *)

let limiter_allow r l ~now ~(size : int) =
  (* token bucket in bytes with a one-interval burst allowance *)
  let elapsed = now -. l.last_refill in
  if elapsed > 0. then begin
    let cap = Float.max (l.rate *. r.rt.cfg.check_interval) 1500. in
    l.tokens <- Float.min cap (l.tokens +. (elapsed *. l.rate));
    l.last_refill <- now
  end;
  let need = float_of_int size in
  if l.tokens >= need then begin
    l.tokens <- l.tokens -. need;
    true
  end
  else begin
    l.dropped_bytes <- l.dropped_bytes +. need;
    false
  end

let account r (pkt : Packet.t) =
  let agg = aggregate_of r.rt pkt.dst in
  let c =
    match Hashtbl.find_opt r.traffic agg with
    | Some c -> c
    | None ->
      let c = { total = 0.; by_hop = Hashtbl.create 4 } in
      Hashtbl.replace r.traffic agg c;
      c
  in
  let size = float_of_int pkt.size in
  c.total <- c.total +. size;
  match pkt.last_hop with
  | None -> ()
  | Some hop -> (
    match Hashtbl.find_opt c.by_hop hop with
    | Some cell -> cell := !cell +. size
    | None -> Hashtbl.replace c.by_hop hop (ref size))

let hook r (_node : Node.t) (pkt : Packet.t) =
  account r pkt;
  let now = Sim.now (Network.sim r.rt.net) in
  let agg = aggregate_of r.rt pkt.dst in
  match Hashtbl.find_opt r.limiters agg with
  | None -> Node.Continue
  | Some l ->
    if now >= l.expires_at then begin
      Hashtbl.remove r.limiters agg;
      Node.Continue
    end
    else begin
      l.arrived_bytes <- l.arrived_bytes +. float_of_int pkt.size;
      if limiter_allow r l ~now ~size:pkt.size then Node.Continue
      else Node.Drop "pushback-limit"
    end

(* --- upstream propagation ----------------------------------------------- *)

let send_request r ~dst ~aggregate ~rate ~depth =
  r.rt.messages <- r.rt.messages + 1;
  let pkt =
    Packet.make ~proto:254 ~src:r.node.Node.addr ~dst ~size:64
      (Pushback_request { aggregate; rate; depth })
  in
  Network.originate r.rt.net r.node pkt

(* Ask the top upstream contributors of [l.aggregate] to limit it too,
   splitting the rate budget between them. *)
let propagate r l =
  if (not l.propagated) && l.depth > 0 then begin
    let contributors =
      match Hashtbl.find_opt r.traffic l.aggregate with
      | None -> []
      | Some c ->
        Hashtbl.fold (fun hop cell acc -> (hop, !cell) :: acc) c.by_hop []
        |> List.sort (fun (ha, a) (hb, b) ->
               (* Tie-break on the hop address: List.sort is not stable,
                  so equal contributions must not leak hash-bucket
                  order. *)
               match Float.compare b a with
               | 0 -> Addr.compare ha hb
               | c -> c)
    in
    let upstream =
      List.filter
        (fun (hop, _) ->
          match Network.node_by_addr r.rt.net hop with
          | Some n -> Hashtbl.mem r.rt.routers n.Node.id
          | None -> false)
        contributors
    in
    let chosen =
      List.filteri (fun i _ -> i < r.rt.cfg.max_contributors) upstream
    in
    if chosen <> [] then begin
      l.propagated <- true;
      let share = l.rate /. float_of_int (List.length chosen) in
      List.iter
        (fun (hop, _) ->
          trace r "pushback %s to %s at %.0f B/s"
            (Addr.prefix_to_string l.aggregate)
            (Addr.to_string hop) share;
          send_request r ~dst:hop ~aggregate:l.aggregate ~rate:share
            ~depth:(l.depth - 1))
        chosen
    end
  end

let install_limiter r ~aggregate ~rate ~depth =
  let now = Sim.now (Network.sim r.rt.net) in
  match Hashtbl.find_opt r.limiters aggregate with
  | Some l ->
    l.rate <- Float.min l.rate rate;
    l.expires_at <- now +. r.rt.cfg.limiter_timeout
  | None ->
    let l =
      {
        aggregate;
        rate;
        tokens = rate *. r.rt.cfg.check_interval;
        last_refill = now;
        expires_at = now +. r.rt.cfg.limiter_timeout;
        dropped_bytes = 0.;
        arrived_bytes = 0.;
        depth;
        propagated = false;
      }
    in
    Hashtbl.replace r.limiters aggregate l;
    r.rt.installed <- r.rt.installed + 1;
    trace r "limiting %s to %.0f B/s (depth %d)"
      (Addr.prefix_to_string aggregate) rate depth;
    (* After the feedback delay, if the aggregate still arrives well above
       the limit, recruit the upstream neighbors. *)
    ignore
      (Sim.after (Network.sim r.rt.net) r.rt.cfg.feedback_delay (fun () ->
           let arrival_rate = l.arrived_bytes /. r.rt.cfg.feedback_delay in
           if arrival_rate > r.rt.cfg.over_limit_factor *. l.rate then
             propagate r l))

(* --- congestion detection ----------------------------------------------- *)

let check_congestion r =
  let interval_traffic = r.traffic in
  let congested_port =
    let check (port : Node.port) =
      let link = port.Node.link in
      let key = Link.name link in
      let tx = Link.tx_packets link and dropped = Link.dropped_packets link in
      let prev_tx, prev_drop =
        match List.assoc_opt key r.port_history with
        | Some v -> v
        | None -> (0, 0)
      in
      r.port_history <-
        (key, (tx, dropped)) :: List.remove_assoc key r.port_history;
      let dtx = tx - prev_tx and ddrop = dropped - prev_drop in
      let total = dtx + ddrop in
      if total > 0 && float_of_int ddrop /. float_of_int total > r.rt.cfg.drop_threshold
      then Some link
      else None
    in
    List.find_map check r.node.Node.ports
  in
  (match congested_port with
  | None -> ()
  | Some link ->
    (* Highest-volume aggregate this interval is the culprit. *)
    let top =
      Hashtbl.fold
        (fun agg c best ->
          match best with
          | Some (_, t) when t >= c.total -> best
          | _ -> Some (agg, c.total))
        interval_traffic None
    in
    match top with
    | None -> ()
    | Some (aggregate, _) ->
      let rate = r.rt.cfg.limit_fraction *. Link.bandwidth link /. 8. in
      install_limiter r ~aggregate ~rate ~depth:r.rt.cfg.max_depth);
  r.traffic <- Hashtbl.create 16

(* --- deployment --------------------------------------------------------- *)

let deliver r prev (node : Node.t) (pkt : Packet.t) =
  match pkt.payload with
  | Pushback_request { aggregate; rate; depth } ->
    install_limiter r ~aggregate ~rate ~depth
  | _ -> prev node pkt

let deploy ?(config = default_config) net nodes =
  let t =
    { net; cfg = config; routers = Hashtbl.create 16; installed = 0; messages = 0 }
  in
  let sim = Network.sim net in
  let attach (node : Node.t) =
    let r =
      {
        rt = t;
        node;
        limiters = Hashtbl.create 8;
        traffic = Hashtbl.create 16;
        port_history = [];
        timer = None;
      }
    in
    Hashtbl.replace t.routers node.Node.id r;
    Node.add_hook node (hook r);
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <- deliver r prev;
    r.timer <-
      Some
        (Timer.periodic sim ~period:config.check_interval (fun () ->
             check_congestion r))
  in
  List.iter attach nodes;
  t

let limiters_installed t = t.installed

let live_limiters_of r ~now =
  Hashtbl.fold
    (fun _ l acc -> if now < l.expires_at then acc + 1 else acc)
    r.limiters 0

let active_limiters t =
  let now = Sim.now (Network.sim t.net) in
  Hashtbl.fold (fun _ r acc -> acc + live_limiters_of r ~now) t.routers 0

let routers_limiting t =
  let now = Sim.now (Network.sim t.net) in
  Hashtbl.fold
    (fun _ r acc -> if live_limiters_of r ~now > 0 then acc + 1 else acc)
    t.routers 0

let messages_sent t = t.messages

let limited_bytes t =
  Hashtbl.fold
    (fun _ r acc ->
      Hashtbl.fold (fun _ l acc -> acc +. l.dropped_bytes) r.limiters acc)
    t.routers 0.
