(** Longest-prefix-match routing table.

    A binary trie over address bits, most-significant bit first. Lookup walks
    at most 32 levels and returns the value bound to the longest prefix
    covering the address — the classic FIB structure, here used both for
    forwarding tables and for "is this address inside my network" checks. *)

type 'a t

val create : unit -> 'a t

val insert : 'a t -> Addr.prefix -> 'a -> unit
(** Bind [prefix] to a value, replacing any previous binding of the exact
    same prefix. *)

val remove : 'a t -> Addr.prefix -> unit
(** Remove the binding of exactly this prefix, if any, pruning any trie
    branch the removal leaves empty. *)

val lookup : 'a t -> Addr.t -> 'a option
(** Longest matching prefix's value, or [None]. Non-allocating on both hit
    and miss — the forwarding fast path. *)

val lookup_prefix : 'a t -> Addr.t -> (Addr.prefix * 'a) option
(** Like {!lookup} but also returns the matching prefix. *)

val exact : 'a t -> Addr.prefix -> 'a option
(** Value bound to exactly this prefix. *)

val size : 'a t -> int
(** Number of bound prefixes. *)

val node_count : 'a t -> int
(** Trie nodes currently allocated, root included — a leak detector for
    tests exercising insert/remove churn. *)

val invariant : 'a t -> bool
(** Structural health check: [size] equals the number of bound values, and
    no dead chain survives (every non-root leaf holds a value). *)

val clear : 'a t -> unit
(** Remove every binding. *)

val iter : 'a t -> (Addr.prefix -> 'a -> unit) -> unit
(** Visit all bindings (order unspecified). *)

val to_list : 'a t -> (Addr.prefix * 'a) list
