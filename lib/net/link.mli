(** Unidirectional point-to-point links.

    A link models a transmitter with finite bandwidth, a drop-tail FIFO
    queue bounded in bytes, and a fixed propagation delay. Packets are
    serialised one at a time ([size * 8 / bandwidth] seconds each), then
    delivered [delay] seconds later to the callback installed by the
    network layer. Congestion — the heart of a DoS attack — emerges from the
    queue filling and dropping the excess.

    Bidirectional connectivity is two links (see {!Network.connect}). *)

type t

type discipline =
  | Drop_tail
  | Red of { min_th : int; max_th : int; max_p : float }
      (** Random Early Detection: below [min_th] bytes of average queue,
          enqueue; above [max_th], drop; in between, drop with probability
          ramping to [max_p]. The average is an EWMA of the instantaneous
          backlog. Early, randomised drops desynchronise adaptive sources
          and keep latency down — the victim-tail ablation (A4) measures
          the difference under flood. *)

val create :
  ?discipline:discipline ->
  Aitf_engine.Sim.t ->
  name:string ->
  bandwidth:float ->
  delay:float ->
  queue_capacity:int ->
  t
(** [bandwidth] in bits/s (positive), [delay] in seconds (non-negative),
    [queue_capacity] in bytes — the waiting room, excluding the packet in
    service. Default discipline is {!Drop_tail}. RED randomness is derived
    deterministically from the link name. *)

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Install the receive callback of the downstream node. Must be set before
    the first {!send}. *)

val wrap_deliver : t -> ((Packet.t -> unit) -> Packet.t -> unit) -> unit
(** [wrap_deliver l w] replaces the installed deliver callback [d] with
    [w d] — the interposition seam fault injectors use to drop, delay or
    duplicate packets between serialisation and receipt (see
    {!Aitf_fault.Fault}). Wrappers compose; the innermost is the node's
    original receive path.
    @raise Invalid_argument if no deliver callback is installed yet. *)

val set_remote : t -> (time:float -> (unit -> unit) -> unit) -> unit
(** Cross-shard delivery seam, alongside {!wrap_deliver}/{!set_fluid}:
    when set, the link no longer schedules its delivery event on its own
    scheduler. Instead, once serialisation completes it decides the
    transmitted-vs-dropped outcome locally (counters, link-down) and posts
    the deliver callback through [post ~time] as a timestamped message —
    the parallel engine enqueues it into the destination shard's inbox,
    safe to execute once every shard's clock plus the minimum cross-shard
    latency has passed [time]. Fault wrappers installed via
    {!wrap_deliver} run inside the posted closure, i.e. on the receiving
    shard. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission; drops it (and counts the drop) if the
    queue cannot hold it. *)

val name : t -> string
val bandwidth : t -> float
val delay : t -> float

val up : t -> bool
val set_up : t -> bool -> unit
(** A downed link silently discards everything sent to it (counts as drops);
    used to model disconnection. *)

val queued_bytes : t -> int

val discipline : t -> discipline

val early_drops : t -> int
(** Packets dropped by RED before the queue was actually full. *)

(** Cumulative statistics. Every packet handed to {!send} is eventually
    counted as {e exactly one} of transmitted (delivered to the far end) or
    dropped (queue overflow, RED early drop, link down — including a link
    that went down while the packet was in flight). *)

val tx_packets : t -> int
val tx_bytes : t -> int
val dropped_packets : t -> int
val dropped_bytes : t -> int

val utilization : t -> now:float -> float
(** Fraction of capacity used so far: bits sent / (bandwidth * now). *)

(** {2 Fluid coupling (hybrid engine)}

    The fluid plane ({!Aitf_flowsim.Fluid}) publishes its per-link load
    here so that discrete packets — the AITF control plane and the probe
    samples — compete with the aggregates congesting the link: they are
    dropped with the fluid loss fraction (deterministically, from the
    link's own seeded RNG) and, when the link is saturated, delayed by a
    full queue's worth of serialisation. With no fluid load attached
    (both rates 0, the packet-only default) behaviour is bit-identical
    to before. *)

val set_fluid : t -> offered:float -> admitted:float -> unit
(** Current fluid load in bits/s: what aggregates offer to this link and
    what the link admits of it ([admitted <= offered]). *)

val fluid_offered : t -> float
val fluid_admitted : t -> float

val fluid_loss : t -> float
(** [1 - admitted/offered], or [0.] when no fluid load is attached. *)

val fluid_drops : t -> int
(** Discrete packets dropped by fluid contention. *)
