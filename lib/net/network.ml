module Sim = Aitf_engine.Sim
module Heap = Aitf_engine.Heap

type t = {
  sim : Sim.t;
  (* Sharded mode (parallel engine): maps an AS id to the scheduler shard
     world owning that domain's links and timers. [None] = everything on
     [sim], which is the sequential engine bit for bit. *)
  sim_of_as : (int -> Sim.t) option;
  mutable nodes_rev : Node.t list;
  by_id : (int, Node.t) Hashtbl.t;
  by_addr : (Addr.t, Node.t) Hashtbl.t;
  mutable links_rev : Link.t list;
  mutable next_id : int;
}

let create ?sim_of_as sim =
  {
    sim;
    sim_of_as;
    nodes_rev = [];
    by_id = Hashtbl.create 64;
    by_addr = Hashtbl.create 64;
    links_rev = [];
    next_id = 0;
  }

let sim t = t.sim

let sim_of_as t as_id =
  match t.sim_of_as with None -> t.sim | Some f -> f as_id

let sim_for t (node : Node.t) = sim_of_as t node.Node.as_id

(* Forwarding loop ------------------------------------------------------- *)

let rec run_hooks node pkt = function
  | [] -> Node.Continue
  | h :: rest -> (
    match h node pkt with
    | Node.Continue -> run_hooks node pkt rest
    | Node.Drop _ as d -> d)

let forward node (pkt : Packet.t) =
  match Lpm.lookup node.Node.fib pkt.dst with
  | None -> Node.count_drop node "no-route"
  | Some port ->
    node.Node.forwarded_packets <- node.Node.forwarded_packets + 1;
    Link.send port.Node.link pkt

let receive node (pkt : Packet.t) =
  node.Node.rx_packets <- node.Node.rx_packets + 1;
  node.Node.rx_bytes <- node.Node.rx_bytes + pkt.size;
  if Addr.equal pkt.dst node.Node.addr then begin
    node.Node.delivered_packets <- node.Node.delivered_packets + 1;
    node.Node.local_deliver node pkt
  end
  else
    match run_hooks node pkt node.Node.hooks with
    | Node.Drop reason -> Node.count_drop node reason
    | Node.Continue ->
      pkt.ttl <- pkt.ttl - 1;
      if pkt.ttl <= 0 then Node.count_drop node "ttl-expired"
      else forward node pkt

(* Topology -------------------------------------------------------------- *)

let add_node t ~name ~addr ~as_id kind =
  if Hashtbl.mem t.by_addr addr then
    invalid_arg
      (Printf.sprintf "Network.add_node: duplicate address %s"
         (Addr.to_string addr));
  let node = Node.make ~id:t.next_id ~name ~addr ~as_id kind in
  t.next_id <- t.next_id + 1;
  t.nodes_rev <- node :: t.nodes_rev;
  Hashtbl.add t.by_id node.id node;
  Hashtbl.add t.by_addr addr node;
  node

let node t id = Hashtbl.find t.by_id id
let node_by_addr t addr = Hashtbl.find_opt t.by_addr addr

let node_by_name t name =
  List.find_opt (fun n -> n.Node.name = name) (List.rev t.nodes_rev)

let nodes t = List.rev t.nodes_rev
let links t = List.rev t.links_rev

let connect ?(queue_capacity = 65536) ?discipline ?name t a b ~bandwidth
    ~delay =
  let link_name dir =
    match name with
    | Some n -> n ^ dir
    | None -> Printf.sprintf "%s->%s" a.Node.name b.Node.name
  in
  (* Each directed link lives on the scheduler of its transmitting
     endpoint's AS: its queue, RED state and timers are then only ever
     touched by that shard. *)
  let ab =
    Link.create ?discipline
      (sim_of_as t a.Node.as_id)
      ~name:(link_name "") ~bandwidth ~delay ~queue_capacity
  in
  let ba =
    Link.create ?discipline
      (sim_of_as t b.Node.as_id)
      ~name:(Printf.sprintf "%s->%s" b.Node.name a.Node.name)
      ~bandwidth ~delay ~queue_capacity
  in
  Link.set_deliver ab (fun pkt ->
      pkt.Packet.last_hop <- Some a.Node.addr;
      receive b pkt);
  Link.set_deliver ba (fun pkt ->
      pkt.Packet.last_hop <- Some b.Node.addr;
      receive a pkt);
  let inter_as = a.Node.as_id <> b.Node.as_id in
  a.Node.ports <-
    a.Node.ports @ [ { Node.link = ab; peer_id = b.Node.id; inter_as } ];
  b.Node.ports <-
    b.Node.ports @ [ { Node.link = ba; peer_id = a.Node.id; inter_as } ];
  t.links_rev <- ba :: ab :: t.links_rev;
  (ab, ba)

(* Routing --------------------------------------------------------------- *)

(* Dijkstra from [src] over propagation delays (plus a small per-hop bias so
   zero-delay topologies still prefer shorter hop counts). Returns, for every
   reachable node id, the distance and the first-hop port out of [src]. *)
let shortest_paths t (src : Node.t) =
  let n = t.next_id in
  let dist = Array.make n infinity in
  let first_port : Node.port option array = Array.make n None in
  let heap =
    Heap.create ~cmp:(fun (d1, _) (d2, _) -> Float.compare d1 d2)
  in
  dist.(src.Node.id) <- 0.;
  Heap.push heap (0., src.Node.id);
  let hop_bias = 1e-6 in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, id) ->
      if d <= dist.(id) then begin
        let node = Hashtbl.find t.by_id id in
        let relax (port : Node.port) =
          if Link.up port.Node.link then begin
            let nd = d +. Link.delay port.Node.link +. hop_bias in
            let peer = port.Node.peer_id in
            if nd < dist.(peer) then begin
              dist.(peer) <- nd;
              first_port.(peer) <-
                (if id = src.Node.id then Some port else first_port.(id));
              Heap.push heap (nd, peer)
            end
          end
        in
        List.iter relax node.Node.ports
      end;
      loop ()
  in
  loop ();
  (dist, first_port)

let compute_routes t =
  let all = nodes t in
  let advertisements =
    List.concat_map
      (fun (n : Node.t) ->
        List.map (fun (p, scope) -> (p, scope, n)) n.Node.advertised)
      all
  in
  let install (src : Node.t) =
    let dist, first_port = shortest_paths t src in
    Lpm.clear src.Node.fib;
    (* Best (nearest-owner) route per prefix. *)
    let best : (Addr.prefix, float * Node.port) Hashtbl.t =
      Hashtbl.create 64
    in
    let consider (prefix, scope, owner) =
      let visible =
        match scope with
        | Node.Global -> true
        | Node.As_local -> owner.Node.as_id = src.Node.as_id
      in
      if visible && owner.Node.id <> src.Node.id then
        match first_port.(owner.Node.id) with
        | None -> ()
        | Some port ->
          let d = dist.(owner.Node.id) in
          let better =
            match Hashtbl.find_opt best prefix with
            | None -> true
            | Some (d', _) -> d < d'
          in
          if better then Hashtbl.replace best prefix (d, port)
    in
    List.iter consider advertisements;
    Hashtbl.iter (fun prefix (_, port) -> Lpm.insert src.Node.fib prefix port)
      best
  in
  List.iter install all

(* Injection & admin ------------------------------------------------------ *)

let originate t (node : Node.t) (pkt : Packet.t) =
  if Addr.equal pkt.dst node.Node.addr then
    ignore
      (Sim.after ~label:"local-deliver" (sim_for t node) 0. (fun () ->
           node.Node.delivered_packets <- node.Node.delivered_packets + 1;
           node.Node.local_deliver node pkt))
  else forward node pkt

let disconnect_port _t (node : Node.t) ~peer_id =
  match Node.port_to node ~peer_id with
  | None -> false
  | Some port ->
    Link.set_up port.Node.link false;
    let peer_port =
      let peer_node_id = node.Node.id in
      fun (p : Node.port) -> p.Node.peer_id = peer_node_id
    in
    (match
       List.find_opt peer_port
         (Hashtbl.find_opt _t.by_id peer_id
         |> Option.map (fun n -> n.Node.ports)
         |> Option.value ~default:[])
     with
    | Some p -> Link.set_up p.Node.link false
    | None -> ());
    true

let total_drops t ~reason =
  List.fold_left (fun acc n -> acc + Node.drop_count n reason) 0 (nodes t)
