module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng

type discipline =
  | Drop_tail
  | Red of { min_th : int; max_th : int; max_p : float }

type t = {
  sim : Sim.t;
  name : string;
  tx_node : string;  (* transmitting endpoint, parsed from "A->B" names *)
  bandwidth : float;
  delay : float;
  queue_capacity : int;
  mutable deliver : (Packet.t -> unit) option;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable is_up : bool;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped_packets : int;
  mutable dropped_bytes : int;
  discipline : discipline;
  rng : Rng.t;
  mutable avg_queue : float;  (* EWMA of queued bytes, for RED *)
  mutable idle_since : float option;  (* set while the transmitter is idle *)
  mutable early_drops : int;
  (* Fluid coupling (hybrid engine): the rate plane publishes how much
     aggregate traffic is offered to / admitted by this link, and discrete
     packets crossing it then compete with that load — dropped with the
     fluid loss fraction and, under saturation, delayed by a full queue.
     Both stay 0.0 in packet-only runs, leaving behaviour untouched. *)
  mutable fluid_offered : float;  (* bits/s *)
  mutable fluid_admitted : float;  (* bits/s *)
  mutable fluid_drops : int;
  (* Cross-shard delivery seam (parallel engine): when set, delivery is
     not scheduled on [sim] — the far end lives on another scheduler — but
     posted through this callback as a timestamped message. *)
  mutable remote : (time:float -> (unit -> unit) -> unit) option;
}

let create ?(discipline = Drop_tail) sim ~name ~bandwidth ~delay
    ~queue_capacity =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  if queue_capacity < 0 then invalid_arg "Link.create: negative queue capacity";
  let tx_node =
    match String.index_opt name '-' with
    | Some i when i + 1 < String.length name && name.[i + 1] = '>' ->
      String.sub name 0 i
    | _ -> name
  in
  let t =
    {
      sim;
      name;
      tx_node;
      bandwidth;
      delay;
      queue_capacity;
      deliver = None;
      queue = Queue.create ();
      queued_bytes = 0;
      busy = false;
      is_up = true;
      tx_packets = 0;
      tx_bytes = 0;
      dropped_packets = 0;
      dropped_bytes = 0;
      discipline;
      rng = Rng.create ~seed:(Hashtbl.hash name);
      avg_queue = 0.;
      idle_since = Some 0.;
      early_drops = 0;
      fluid_offered = 0.;
      fluid_admitted = 0.;
      fluid_drops = 0;
      remote = None;
    }
  in
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric = Printf.sprintf "link.%s.%s" name metric in
      register_counter reg (p "tx_packets") ~unit_:"packets"
        ~help:"Packets delivered to the far end of the link" (fun () ->
          float_of_int t.tx_packets);
      register_counter reg (p "tx_bytes") ~unit_:"bytes"
        ~help:"Bytes delivered to the far end of the link" (fun () ->
          float_of_int t.tx_bytes);
      register_counter reg (p "dropped_packets") ~unit_:"packets"
        ~help:"Packets dropped (queue overflow, RED early drop, link down)"
        (fun () -> float_of_int t.dropped_packets);
      register_gauge reg (p "queued_bytes") ~unit_:"bytes"
        ~help:"Current queue occupancy" (fun () ->
          float_of_int t.queued_bytes);
      register_gauge reg (p "utilization") ~unit_:"ratio"
        ~help:"Cumulative bits sent over bandwidth x elapsed virtual time"
        (fun () ->
          let now = Sim.now t.sim in
          if now <= 0. then 0.
          else float_of_int (t.tx_bytes * 8) /. (t.bandwidth *. now));
      register_gauge reg (p "fluid_offered_bps") ~unit_:"bits/s"
        ~help:"Fluid-aggregate load currently offered to the link" (fun () ->
          t.fluid_offered);
      register_gauge reg (p "fluid_admitted_bps") ~unit_:"bits/s"
        ~help:"Fluid-aggregate load the link currently admits" (fun () ->
          t.fluid_admitted));
  t

let set_deliver t f = t.deliver <- Some f
let set_remote t post = t.remote <- Some post

let wrap_deliver t f =
  match t.deliver with
  | None -> invalid_arg "Link.wrap_deliver: no deliver callback installed"
  | Some d -> t.deliver <- Some (f d)

let drop t reason (pkt : Packet.t) =
  t.dropped_packets <- t.dropped_packets + 1;
  t.dropped_bytes <- t.dropped_bytes + pkt.size;
  if Aitf_obs.Flight.enabled () then
    Aitf_obs.Flight.note ~sim:t.sim ~time:(Sim.now t.sim) ~node:t.tx_node
      ~link:t.name
      ~kind:(Aitf_obs.Flight.Drop reason)
      ~size:pkt.size ~queue_depth:t.queued_bytes ()

let red_weight = 0.02

(* EWMA maintenance for RED, run on every send and on every transmission
   completion. An idle spell first decays the average as if [m] average-sized
   packets had been serviced over it (the standard RED idle correction), so a
   stale high average cannot early-drop the first packets after the link has
   drained. *)
let update_red_avg t =
  match t.discipline with
  | Drop_tail -> ()
  | Red _ ->
    (match t.idle_since with
    | Some since ->
      let idle = Sim.now t.sim -. since in
      if idle > 0. then begin
        let mean_pkt =
          if t.tx_packets > 0 then
            float_of_int t.tx_bytes /. float_of_int t.tx_packets
          else 500.
        in
        let s = mean_pkt *. 8. /. t.bandwidth in
        let m = idle /. Float.max s 1e-9 in
        t.avg_queue <- t.avg_queue *. ((1. -. red_weight) ** m)
      end
    | None -> ());
    t.avg_queue <-
      ((1. -. red_weight) *. t.avg_queue)
      +. (red_weight *. float_of_int t.queued_bytes)

(* Hoisted so the hot path does not allocate a [Some] per event. *)
let tx_label = Some "link-tx"
let delivery_label = Some "link-delivery"

let rec start_transmission t =
  match Queue.take_opt t.queue with
  | None ->
    t.busy <- false;
    t.idle_since <- Some (Sim.now t.sim)
  | Some pkt ->
    t.busy <- true;
    t.idle_since <- None;
    t.queued_bytes <- t.queued_bytes - pkt.size;
    Aitf_obs.Flight.note ~sim:t.sim ~time:(Sim.now t.sim) ~node:t.tx_node
      ~link:t.name ~kind:Aitf_obs.Flight.Dequeue ~size:pkt.size
      ~queue_depth:t.queued_bytes ();
    let serialization = float_of_int (pkt.size * 8) /. t.bandwidth in
    (* Under fluid saturation the queue is full in steady state, so a packet
       that does get through waits a full queue's worth of serialisation. *)
    let fluid_wait =
      if t.fluid_offered > t.bandwidth then
        float_of_int (t.queue_capacity * 8) /. t.bandwidth
      else 0.
    in
    ignore
      (Sim.after ?label:tx_label t.sim serialization (fun () ->
           (match t.remote with
           | None ->
             (* Whether the serialised packet counts as transmitted or
                dropped is decided once, at delivery time — never both. *)
             ignore
               (Sim.after ?label:delivery_label t.sim (t.delay +. fluid_wait)
                  (fun () ->
                    match t.deliver with
                    | Some f when t.is_up ->
                      t.tx_packets <- t.tx_packets + 1;
                      t.tx_bytes <- t.tx_bytes + pkt.size;
                      f pkt
                    | Some _ | None -> drop t "link-down" pkt))
           | Some post -> (
             (* Cross-shard link: decide transmitted-vs-dropped now, when
                serialisation completes, because the link's own state must
                not be touched from the far end's scheduler later. Only
                the deliver callback crosses the shard boundary. *)
             match t.deliver with
             | Some f when t.is_up ->
               t.tx_packets <- t.tx_packets + 1;
               t.tx_bytes <- t.tx_bytes + pkt.size;
               post
                 ~time:(Sim.now t.sim +. t.delay +. fluid_wait)
                 (fun () -> f pkt)
             | Some _ | None -> drop t "link-down" pkt));
           update_red_avg t;
           start_transmission t))

(* RED decision on enqueue: drop probabilistically between the thresholds.
   The average itself is maintained by [update_red_avg]. *)
let red_rejects t =
  match t.discipline with
  | Drop_tail -> false
  | Red { min_th; max_th; max_p } ->
    if t.avg_queue <= float_of_int min_th then false
    else if t.avg_queue >= float_of_int max_th then true
    else
      let ramp =
        (t.avg_queue -. float_of_int min_th)
        /. float_of_int (max_th - min_th)
      in
      Rng.bernoulli t.rng ~p:(max_p *. ramp)

let fluid_loss t =
  if t.fluid_offered <= 0. then 0.
  else Float.max 0. (1. -. (t.fluid_admitted /. t.fluid_offered))

let set_fluid t ~offered ~admitted =
  t.fluid_offered <- offered;
  t.fluid_admitted <- admitted

let send t pkt =
  if not t.is_up then drop t "link-down" pkt
  else if
    (* Discrete packets compete with the fluid load: a saturated link drops
       them with the same loss fraction the aggregates suffer. [bernoulli]
       consumes no randomness when p <= 0, so packet-only runs never touch
       the RNG here and stay bit-identical. *)
    Rng.bernoulli t.rng ~p:(fluid_loss t)
  then begin
    t.fluid_drops <- t.fluid_drops + 1;
    drop t "fluid-loss" pkt
  end
  else begin
    update_red_avg t;
    if t.busy && t.queued_bytes + pkt.Packet.size > t.queue_capacity then
      drop t "queue-overflow" pkt
    else if t.busy && red_rejects t then begin
      t.early_drops <- t.early_drops + 1;
      drop t "red-early-drop" pkt
    end
    else begin
      Queue.add pkt t.queue;
      t.queued_bytes <- t.queued_bytes + pkt.size;
      Aitf_obs.Flight.note ~sim:t.sim ~time:(Sim.now t.sim) ~node:t.tx_node
        ~link:t.name ~kind:Aitf_obs.Flight.Enqueue ~size:pkt.size
        ~queue_depth:t.queued_bytes ();
      if not t.busy then start_transmission t
    end
  end

let fluid_offered t = t.fluid_offered
let fluid_admitted t = t.fluid_admitted
let fluid_drops t = t.fluid_drops
let name t = t.name
let bandwidth t = t.bandwidth
let delay t = t.delay
let up t = t.is_up
let set_up t v = t.is_up <- v
let queued_bytes t = t.queued_bytes
let discipline t = t.discipline
let early_drops t = t.early_drops
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let dropped_packets t = t.dropped_packets
let dropped_bytes t = t.dropped_bytes

let utilization t ~now =
  if now <= 0. then 0.
  else float_of_int (t.tx_bytes * 8) /. (t.bandwidth *. now)
