type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable size : int }

let new_node () = { value = None; zero = None; one = None }

let create () = { root = new_node (); size = 0 }

let child node bit =
  if bit then node.one else node.zero

let ensure_child node bit =
  match child node bit with
  | Some c -> c
  | None ->
    let c = new_node () in
    if bit then node.one <- Some c else node.zero <- Some c;
    c

let find_node t (p : Addr.prefix) =
  let rec go node depth =
    if depth = p.len then Some node
    else
      match child node (Addr.bit p.base depth) with
      | None -> None
      | Some c -> go c (depth + 1)
  in
  go t.root 0

let insert t (p : Addr.prefix) v =
  let rec go node depth =
    if depth = p.len then begin
      if node.value = None then t.size <- t.size + 1;
      node.value <- Some v
    end
    else go (ensure_child node (Addr.bit p.base depth)) (depth + 1)
  in
  go t.root 0

let remove t (p : Addr.prefix) =
  (* Walk down recording the path so emptied branches can be pruned on the
     way back up: a valueless, childless node serves no lookup and would
     otherwise leak for the lifetime of the table under insert/remove churn. *)
  let path = Array.make (p.len + 1) t.root in
  let rec descend node depth =
    path.(depth) <- node;
    if depth = p.len then Some node
    else
      match child node (Addr.bit p.base depth) with
      | None -> None
      | Some c -> descend c (depth + 1)
  in
  match descend t.root 0 with
  | None -> ()
  | Some node ->
    if node.value <> None then t.size <- t.size - 1;
    node.value <- None;
    let rec prune depth =
      if depth > 0 then begin
        let n = path.(depth) in
        if n.value = None && n.zero = None && n.one = None then begin
          let parent = path.(depth - 1) in
          if Addr.bit p.base (depth - 1) then parent.one <- None
          else parent.zero <- None;
          prune (depth - 1)
        end
      end
    in
    prune p.len

let exact t p =
  match find_node t p with None -> None | Some node -> node.value

let lookup_prefix t addr =
  let rec go node depth best =
    let best =
      match node.value with
      | Some v -> Some (Addr.prefix addr depth, v)
      | None -> best
    in
    if depth = 32 then best
    else
      match child node (Addr.bit addr depth) with
      | None -> best
      | Some c -> go c (depth + 1) best
  in
  go t.root 0 None

(* The forwarding fast path: same walk as [lookup_prefix] but tracks only
   the best value, so a hit allocates nothing (no [Addr.prefix] built). *)
let lookup t addr =
  let rec go node depth best =
    let best = match node.value with Some _ as v -> v | None -> best in
    if depth = 32 then best
    else
      match child node (Addr.bit addr depth) with
      | None -> best
      | Some c -> go c (depth + 1) best
  in
  go t.root 0 None

let iter t f =
  let rec go node prefix_bits depth =
    (match node.value with
    | Some v -> f (Addr.prefix prefix_bits depth) v
    | None -> ());
    (match node.zero with
    | Some c -> go c prefix_bits (depth + 1)
    | None -> ());
    match node.one with
    | Some c ->
      let bit_val = Int32.shift_left 1l (31 - depth) in
      go c (Int32.logor prefix_bits bit_val) (depth + 1)
    | None -> ()
  in
  go t.root 0l 0

let size t = t.size

let node_count t =
  let rec go node acc =
    let acc = acc + 1 in
    let acc = match node.zero with Some c -> go c acc | None -> acc in
    match node.one with Some c -> go c acc | None -> acc
  in
  go t.root 0

let invariant t =
  let values = ref 0 in
  let ok = ref true in
  let rec go ~root node =
    (match node.value with Some _ -> incr values | None -> ());
    (* A non-root leaf without a value is a dead chain [remove] should have
       pruned. *)
    if (not root) && node.value = None && node.zero = None && node.one = None
    then ok := false;
    (match node.zero with Some c -> go ~root:false c | None -> ());
    match node.one with Some c -> go ~root:false c | None -> ()
  in
  go ~root:true t.root;
  !ok && !values = t.size

let clear t =
  t.root.value <- None;
  t.root.zero <- None;
  t.root.one <- None;
  t.size <- 0

let to_list t =
  let acc = ref [] in
  iter t (fun p v -> acc := (p, v) :: !acc);
  !acc
