module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net

type model =
  | Loss of float
  | Burst_loss of {
      p_enter : float;
      p_exit : float;
      loss_good : float;
      loss_bad : float;
    }
  | Jitter of { max_jitter : float }
  | Duplicate of float

let burst ?(loss_good = 0.) ?(loss_bad = 1.) ~p_enter ~p_exit () =
  if p_enter < 0. || p_enter > 1. || p_exit < 0. || p_exit > 1. then
    invalid_arg "Fault.burst: transition probabilities must be in [0,1]";
  Burst_loss { p_enter; p_exit; loss_good; loss_bad }

let ctrl_only = Packet.is_control

type t = {
  sim : Sim.t;
  rng : Rng.t;
  link : Link.t;
  models : model list;
  only : Packet.t -> bool;
  mutable bad_state : bool;
  mutable drops_injected : int;
  mutable dups_injected : int;
  mutable delayed : int;
}

let validate = function
  | Loss p | Duplicate p ->
    if p < 0. || p > 1. then
      invalid_arg "Fault.inject: probability must be in [0,1]"
  | Burst_loss { p_enter; p_exit; loss_good; loss_bad } ->
    if
      List.exists
        (fun p -> p < 0. || p > 1.)
        [ p_enter; p_exit; loss_good; loss_bad ]
    then invalid_arg "Fault.inject: probability must be in [0,1]"
  | Jitter { max_jitter } ->
    if max_jitter < 0. then invalid_arg "Fault.inject: negative jitter"

type verdict = Dropped | Deliver of { extra_delay : float; copies : int }

(* One verdict per packet. Every model consumes randomness in declaration
   order, and the burst channel advances exactly once per packet, so a run
   is a deterministic function of the seed. *)
let decide t =
  let rec go models extra_delay copies =
    match models with
    | [] -> Deliver { extra_delay; copies }
    | Loss p :: rest ->
      if Rng.bernoulli t.rng ~p then Dropped else go rest extra_delay copies
    | Burst_loss { p_enter; p_exit; loss_good; loss_bad } :: rest ->
      t.bad_state <-
        (if t.bad_state then not (Rng.bernoulli t.rng ~p:p_exit)
         else Rng.bernoulli t.rng ~p:p_enter);
      let p = if t.bad_state then loss_bad else loss_good in
      if Rng.bernoulli t.rng ~p then Dropped else go rest extra_delay copies
    | Jitter { max_jitter } :: rest ->
      let d = if max_jitter > 0. then Rng.float t.rng max_jitter else 0. in
      go rest (extra_delay +. d) copies
    | Duplicate p :: rest ->
      go rest extra_delay (if Rng.bernoulli t.rng ~p then copies + 1 else copies)
  in
  go t.models 0. 1

(* A dropped control message is exactly the moment a span tree goes quiet;
   annotate the right request so the trace explains the retransmission that
   follows. Requests carry their correlation id; handshake messages only
   carry the nonce, resolved through the binding the gateway registered. *)
let note_ctrl_drop t (pkt : Packet.t) =
  let module Message = Aitf_core.Message in
  let now = Sim.now t.sim in
  match pkt.Packet.payload with
  | Message.Filtering_request req when req.Message.corr <> 0 ->
    Aitf_obs.Span.event ~corr:req.Message.corr ~now "fault-dropped-request"
  | Message.Verification_query { nonce; _ } ->
    Aitf_obs.Span.event_by_nonce ~nonce ~now "fault-dropped-query"
  | Message.Verification_reply { nonce; _ } ->
    Aitf_obs.Span.event_by_nonce ~nonce ~now "fault-dropped-reply"
  | _ -> ()

let process t next pkt =
  match decide t with
  | Dropped ->
    t.drops_injected <- t.drops_injected + 1;
    if Aitf_obs.Span.enabled () then note_ctrl_drop t pkt
  | Deliver { extra_delay; copies } ->
    if copies > 1 then t.dups_injected <- t.dups_injected + (copies - 1);
    if extra_delay > 0. then begin
      t.delayed <- t.delayed + 1;
      for _ = 1 to copies do
        ignore (Sim.after t.sim extra_delay (fun () -> next pkt))
      done
    end
    else
      for _ = 1 to copies do
        next pkt
      done

let inject ?(only = fun _ -> true) ~rng sim link models =
  List.iter validate models;
  let t =
    {
      sim;
      rng;
      link;
      models;
      only;
      bad_state = false;
      drops_injected = 0;
      dups_injected = 0;
      delayed = 0;
    }
  in
  Link.wrap_deliver link (fun next pkt ->
      if t.only pkt then process t next pkt else next pkt);
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric =
        Printf.sprintf "fault.%s.%s" (Link.name link) metric
      in
      register_counter reg (p "drops_injected") ~unit_:"packets"
        ~help:"Packets discarded by the injected fault models" (fun () ->
          float_of_int t.drops_injected);
      register_counter reg (p "dups_injected") ~unit_:"packets"
        ~help:"Extra packet copies created by the duplication model" (fun () ->
          float_of_int t.dups_injected);
      register_counter reg (p "delayed") ~unit_:"packets"
        ~help:"Packets whose delivery the jitter model postponed" (fun () ->
          float_of_int t.delayed));
  t

let link t = t.link
let drops_injected t = t.drops_injected
let dups_injected t = t.dups_injected
let delayed t = t.delayed
let in_bad_state t = t.bad_state

(* --- Scheduled link flaps ------------------------------------------------- *)

type flapper = {
  f_sim : Sim.t;
  f_links : Link.t list;
  period : float;
  down_for : float;
  mutable flaps : int;
  mutable stopped : bool;
}

let rec flap_cycle f at =
  ignore
    (Sim.at f.f_sim at (fun () ->
         if not f.stopped then begin
           f.flaps <- f.flaps + 1;
           List.iter (fun l -> Link.set_up l false) f.f_links;
           ignore
             (Sim.after f.f_sim f.down_for (fun () ->
                  if not f.stopped then
                    List.iter (fun l -> Link.set_up l true) f.f_links));
           flap_cycle f (at +. f.period)
         end))

let flap ?(start = 0.) sim links ~period ~down_for =
  if period <= down_for then
    invalid_arg "Fault.flap: period must exceed down_for";
  let f =
    { f_sim = sim; f_links = links; period; down_for; flaps = 0; stopped = false }
  in
  flap_cycle f (Float.max start (Sim.now sim));
  Aitf_obs.Metrics.if_attached (fun reg ->
      match links with
      | first :: _ ->
        Aitf_obs.Metrics.register_counter reg
          (Printf.sprintf "fault.%s.flaps" (Link.name first))
          ~unit_:"flaps" ~help:"Scheduled link-down episodes begun" (fun () ->
            float_of_int f.flaps)
      | [] -> ());
  f

let stop_flapping f =
  f.stopped <- true;
  List.iter (fun l -> Link.set_up l true) f.f_links

let flaps f = f.flaps
