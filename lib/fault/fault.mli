(** Composable link fault injection.

    AITF's control messages cross the same congested, failure-prone links
    as the flood they are trying to stop (Sections II–III), so every
    robustness claim needs a way to make links misbehave {e on demand} and
    {e reproducibly}. This module wraps a {!Aitf_net.Link}'s delivery seam
    ({!Aitf_net.Link.wrap_deliver}) with a stack of fault models applied to
    each packet after serialisation and propagation, just before receipt:

    - {!Loss} — i.i.d. Bernoulli packet loss;
    - {!Burst_loss} — a two-state Gilbert–Elliott channel (good/bad states
      with per-state loss probabilities), for correlated loss bursts;
    - {!Jitter} — uniform extra delivery delay in [0, max], which can
      reorder packets;
    - {!Duplicate} — Bernoulli duplication (the copy arrives together with
      the original).

    Models are applied in list order; the first loss verdict wins. All
    randomness is drawn from the caller-supplied {!Aitf_engine.Rng}, so a
    seeded run replays bit-identically. Separately, {!flap} takes links
    down on a fixed schedule — the deterministic counterpart for outage
    testing.

    Injected drops happen {e after} the link's own accounting (the wire was
    genuinely occupied), and are counted by the injector, not the link. *)

open Aitf_net

type model =
  | Loss of float  (** i.i.d. drop probability *)
  | Burst_loss of {
      p_enter : float;  (** good → bad transition probability per packet *)
      p_exit : float;  (** bad → good transition probability per packet *)
      loss_good : float;  (** drop probability in the good state *)
      loss_bad : float;  (** drop probability in the bad state *)
    }
  | Jitter of { max_jitter : float }
      (** uniform extra delay in [0, max_jitter] seconds *)
  | Duplicate of float  (** probability of delivering one extra copy *)

val burst :
  ?loss_good:float -> ?loss_bad:float -> p_enter:float -> p_exit:float ->
  unit -> model
(** Gilbert–Elliott convenience constructor; defaults [loss_good = 0.],
    [loss_bad = 1.] (the classic on/off burst channel). The stationary loss
    rate is [p_enter / (p_enter + p_exit) * loss_bad] (plus the good-state
    term). *)

val ctrl_only : Packet.t -> bool
(** Predicate selecting control-plane packets (anything that is not plain
    data) — the usual [?only] argument when attacking the protocol rather
    than the traffic. *)

type t
(** One injector, bound to one link. *)

val inject :
  ?only:(Packet.t -> bool) ->
  rng:Aitf_engine.Rng.t ->
  Aitf_engine.Sim.t ->
  Link.t ->
  model list ->
  t
(** Interpose [models] on the link's delivery path. Packets failing [only]
    (default: all pass) bypass the models entirely. Registers
    [fault.<link>.drops_injected / dups_injected / delayed] counters when a
    metrics registry is attached.
    @raise Invalid_argument on a probability outside [0,1], negative
    jitter, or a link with no deliver callback installed yet. *)

val link : t -> Link.t
val drops_injected : t -> int
val dups_injected : t -> int
val delayed : t -> int

val in_bad_state : t -> bool
(** Current Gilbert–Elliott channel state (meaningful only with a
    {!Burst_loss} model present). *)

(** {1 Scheduled link flaps} *)

type flapper

val flap :
  ?start:float ->
  Aitf_engine.Sim.t ->
  Link.t list ->
  period:float ->
  down_for:float ->
  flapper
(** Every [period] seconds starting at [start], take all [links] down for
    [down_for] seconds (e.g. both directions of a circuit). Registers a
    [fault.<link>.flaps] counter when a registry is attached.
    @raise Invalid_argument unless [period > down_for]. *)

val stop_flapping : flapper -> unit
(** Cancel the schedule and restore the links up. *)

val flaps : flapper -> int
(** Down episodes begun so far. *)
