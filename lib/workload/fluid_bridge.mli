(** Glue between the fluid plane and the packet-level AITF agents.

    Lives in the workload layer because [Aitf_flowsim] cannot depend on the
    protocol messages in [Aitf_core]. *)

open Aitf_net
open Aitf_core
module Fluid = Aitf_flowsim.Fluid

val attach_attacker_strategy :
  Fluid.t -> Fluid.agg -> Host_agent.Attacker.t -> unit
(** Mirror the attacker host's response strategy ([Complies] / [Ignores] /
    [On_off]) onto the aggregate's stage 0 — the source's own gate. *)

val absorb_pool_requests : Node.t -> int ref
(** Hook a spoofed-source pool node so To_attacker filtering requests
    routed into its advertised range are absorbed (returned counter) rather
    than dropped on a missing route. *)

type victim_meter

val victim_meter : Fluid.t -> victim_meter

val victim_attack_rate : victim_meter -> now:float -> float
(** Attack rate (bits/s) reaching destinations, smoothed through the same
    1-second window as the packet engine's victim meter — sample this into
    the victim-rate series so [time_to_suppress] behaves identically under
    both engines. *)
