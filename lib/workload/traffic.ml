module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_filter

type arrival = Constant of float | Exponential of (Rng.t * float)
(* Exponential carries the per-packet rate (packets/s). *)

type t = {
  net : Network.t;
  node : Node.t;
  dst : Addr.t;
  flow_id : int;
  pkt_size : int;
  attack : bool;
  gate : Packet.t -> bool;
  spoof : unit -> Addr.t option;
  arrival : arrival;
  stop : float;
  mutable halted : bool;
  mutable pending : Sim.handle option;
  mutable sent_packets : int;
  mutable sent_bytes : int;
  mutable gated : int;
}

let next_gap t =
  match t.arrival with
  | Constant gap -> gap
  | Exponential (rng, rate) -> Rng.exponential rng ~rate

let emit t =
  let pkt =
    Packet.make ?spoofed_src:(t.spoof ()) ~src:t.node.Node.addr ~dst:t.dst
      ~size:t.pkt_size
      (Packet.Data { flow_id = t.flow_id; attack = t.attack })
  in
  if t.gate pkt then begin
    t.sent_packets <- t.sent_packets + 1;
    t.sent_bytes <- t.sent_bytes + t.pkt_size;
    Network.originate t.net t.node pkt
  end
  else t.gated <- t.gated + 1

(* Hoisted: one [Some] shared by every scheduled packet. *)
let traffic_label = Some "traffic"

let rec schedule t delay =
  let sim = Network.sim t.net in
  t.pending <-
    Some
      (Sim.after ?label:traffic_label sim delay (fun () ->
           t.pending <- None;
           if (not t.halted) && Sim.now sim < t.stop then begin
             emit t;
             schedule t (next_gap t)
           end))

let launch ?(gate = fun _ -> true) ?(spoof = fun () -> None) ~start
    ?(stop = infinity) ?(pkt_size = 1000) ?(attack = false) ~flow_id ~arrival
    ~dst net node =
  let t =
    {
      net;
      node;
      dst;
      flow_id;
      pkt_size;
      attack;
      gate;
      spoof;
      arrival;
      stop;
      halted = false;
      pending = None;
      sent_packets = 0;
      sent_bytes = 0;
      gated = 0;
    }
  in
  let now = Sim.now (Network.sim net) in
  schedule t (Float.max 0. (start -. now));
  t

let cbr ?gate ?spoof ?(start = 0.) ?stop ?pkt_size ?attack ~flow_id ~rate ~dst
    net node =
  if rate <= 0. then invalid_arg "Traffic.cbr: rate must be positive";
  let size = Option.value ~default:1000 pkt_size in
  let gap = float_of_int (size * 8) /. rate in
  launch ?gate ?spoof ~start ?stop ?pkt_size ?attack ~flow_id
    ~arrival:(Constant gap) ~dst net node

let poisson ?gate ?spoof ?(start = 0.) ?stop ?pkt_size ?attack ~rng ~flow_id
    ~rate ~dst net node =
  if rate <= 0. then invalid_arg "Traffic.poisson: rate must be positive";
  let size = Option.value ~default:1000 pkt_size in
  let pkt_rate = rate /. float_of_int (size * 8) in
  launch ?gate ?spoof ~start ?stop ?pkt_size ?attack ~flow_id
    ~arrival:(Exponential (rng, pkt_rate)) ~dst net node

let halt t =
  t.halted <- true;
  (* Also cancel the scheduled emission so halted sources don't leave a dead
     closure per source in the event queue — at fleet scale that is millions
     of events the heap would otherwise drag to their fire times. *)
  match t.pending with
  | Some h ->
    Sim.cancel h;
    t.pending <- None
  | None -> ()
let flow_id t = t.flow_id
let sent_packets t = t.sent_packets
let sent_bytes t = t.sent_bytes
let gated_packets t = t.gated

let label t ~src = Flow_label.host_pair src t.dst
