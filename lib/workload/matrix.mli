(** The golden-trace differential matrix.

    One cell per supported topology x engine x fault x adversary x
    placement combination, each a small, fast, fully deterministic
    scenario. Running a cell produces a canonical JSON document (schema
    [aitf.matrix-cell/1], serialized with the byte-stable
    {!Aitf_obs.Json} codec): the cell's dimensions, its outcome scalars,
    the victim-rate series, and a causal-span digest. Documents are
    byte-compared against checked-in goldens under [test/goldens/] — any
    behaviour change anywhere in the stack shows up as a drift diff, and
    intentional changes are re-blessed with [aitf_sim matrix --bless].

    Cells that differ only in engine are also paired and their received
    byte counts compared, extending E17's 10% packet-vs-hybrid agreement
    gate from two chain scenarios to the whole matrix. As in E17, the
    gate counts victim goodput; attack bytes — a few-packet transient
    before filters install, intrinsically engine-sensitive — are
    reported but informational. Pairs whose cell injects faults or
    adversaries are not gated either: the fault realizations ride
    engine-specific packet streams, so the two engines see different
    (equally valid) draws.

    See docs/GOLDENS.md for the cell list and the blessing procedure. *)

type cell = {
  id : string;
      (** [<topo>-<engine>-<fault>-<adversary>-<placement>], with a
          [-shard<N>] suffix when the cell pins a shard count > 1 *)
  topo : string;
      (** [chain], [flood], [swarm], [internet], or [replay-<shape>] *)
  engine : string;  (** [packet] or [hybrid] *)
  fault : string;  (** [pristine], [loss] or [burst] *)
  adversary : string;
      (** [calm], [slotx], or — internet only — [contract] (verifiable
          contracts on, all gateways honest) / [lying] (contracts on, a
          quarter of attack-side gateways forging receipts) *)
  placement : string;  (** [vanilla], [optimal] or [adaptive] *)
  shards : int;
      (** event-queue shards the cell pins (internet only); 1-shard cells
          follow the runner's [?shards] instead *)
  smoke : bool;  (** in the reduced CI set *)
}

val cells : cell list
(** Every cell, in canonical (execution) order. *)

val agreement_threshold : float
(** Relative packet-vs-hybrid difference gated on — 0.10, as in E17. *)

type perf = {
  wall : float;  (** seconds, by the caller's clock *)
  alloc_bytes : float;  (** GC-allocated bytes during the cell *)
  peak_queue : int;  (** peak event-queue depth (engine profiler) *)
  engine_events : int;  (** discrete events executed *)
}

type status =
  | Match  (** document byte-identical to the checked-in golden *)
  | Drift  (** document differs from the golden *)
  | Missing  (** no golden on disk (and not blessing) *)
  | Blessed  (** golden (re)written by this run *)

type cell_result = {
  cr_cell : cell;
  cr_doc : string;  (** the serialized cell document *)
  cr_outcome : (string * Aitf_obs.Json.t) list;
  cr_perf : perf;
  cr_digest : string;
      (** canonical span-forest digest ({!Aitf_obs.Span.digest}) —
          invariant across shard counts for a fixed cell body, which the
          CI traced-shard job asserts *)
  cr_status : status;
}

type pair = {
  pr_base : string;  (** cell id with the engine dimension elided *)
  pr_metric : string;  (** outcome key compared *)
  pr_packet : float;
  pr_hybrid : float;
  pr_diff : float;  (** relative difference *)
  pr_gated : bool;
      (** counts against the gate (goodput on pristine + calm pairs) *)
  pr_ok : bool;  (** within {!agreement_threshold}, or ungated *)
}

type summary = {
  s_results : cell_result list;
  s_pairs : pair list;
  s_drifted : int;  (** cells with [Drift] or [Missing] status *)
  s_disagreements : int;  (** gated pairs over the threshold *)
}

val run :
  ?clock:(unit -> float) ->
  ?only:string list ->
  ?smoke:bool ->
  ?bless:bool ->
  ?shards:int ->
  goldens_dir:string ->
  unit ->
  summary
(** Execute the matrix (all cells, the [?smoke] subset, or just [?only]
    ids) and byte-compare each document against
    [goldens_dir/<id>.json]. [?bless] writes the documents instead of
    comparing (creating the directory if needed). [?clock] supplies
    wall-clock readings for {!perf} (default {!Sys.time}; the CLI passes
    a real-time clock). Correlation-id minting is reset before every
    cell, so each document is independent of execution order.

    [?shards > 1] runs every unpinned internet cell (contract cells
    included — the auditor replays through the scheduler's defer seam) on
    the parallel engine with that many shards; cells that pin their own
    shard count (the [-shard<N>] cells) keep it. Span tracing stays on at
    any shard count: workers record into per-shard collectors merged
    canonically after the run, so {!cell_result.cr_digest} is comparable
    across shard counts. Sharded documents still legitimately differ
    from the 1-shard goldens in outcome scalars (event interleaving), so
    pair [?shards > 1] with [?bless] into a scratch directory and
    compare across repeated runs — the determinism regime the CI stress
    job enforces. *)

val print_summary : summary -> unit
(** Human-readable cell table, agreement table and verdict on stdout. *)

val bench_json : summary -> Aitf_obs.Json.t
(** Per-cell perf trajectory (schema [aitf.matrix-bench/1]) — what CI
    uploads as [BENCH_E19.json]. *)
