module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_core
open Aitf_filter
module Fluid = Aitf_flowsim.Fluid

(* One attack aggregate's walking filter: [pos] indexes the gateway chain
   (0 = source-domain gateway), [placed] is where our filter currently
   sits. *)
type frontier = {
  mutable pos : int;
  mutable idle : int;  (* consecutive epochs with no suspect traffic *)
  mutable placed : (Gateway.t * Flow_label.t) option;
}

type t = {
  policy : Placement.policy;
  fluid : Fluid.t;
  sim : Sim.t;
  config : Config.t;
  suspect_rate : float;
  handle : Placement.t;
  by_node : (int, Gateway.t) Hashtbl.t;
  by_addr : (Addr.t, Gateway.t) Hashtbl.t;
  victims : (Addr.t, unit) Hashtbl.t;
  owned : (int * Flow_label.t, unit) Hashtbl.t;
      (* (node id, label) of every filter we currently intend to keep *)
  frontiers : (Addr.t * Addr.t, frontier) Hashtbl.t;  (* (src_base, victim) *)
  roots : (Addr.t, Gateway.t) Hashtbl.t;  (* victim -> reporting gateway *)
  flagged : (Addr.t, unit) Hashtbl.t;
      (* gateways convicted by a contract auditor: zero capacity to us *)
  mutable removing : bool;  (* our own removal in flight (subscribe feed) *)
  mutable installs : int;
  mutable reclaims : int;
  mutable pushes : int;
  mutable evictions_observed : int;
}

let handle t = t.handle
let evidence t = Placement.reports t.handle
let installs t = t.installs
let reclaims t = t.reclaims
let pushes t = t.pushes
let evictions_observed t = t.evictions_observed

let duration t = 2.0 *. t.config.Config.placement_epoch
let root_label v = Flow_label.v Flow_label.Any (Flow_label.Host v)

(* Hashtbl.fold enumerates bindings in hash-bucket order, which depends on
   the OCaml version and hash seed. Every traversal that drives filter
   installs/removes must pass through here so a controller's placements
   are a pure function of the scenario, never of the bucket layout. *)
let sorted_bindings ~cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort cmp

(* The canonical order on (node id, flow label) candidate keys — also the
   greedy knapsack's tie-break. *)
let key_compare (n1, l1) (n2, l2) =
  if n1 <> n2 then compare (n1 : int) n2 else Flow_label.compare l1 l2

(* Smallest prefix covering the aggregate's contiguous source range. *)
let cover agg =
  let base = Fluid.src_base agg in
  let last = Addr.add base (Fluid.n_sources agg - 1) in
  let len = ref 32 in
  while !len > 0 && not (Addr.prefix_mem (Addr.prefix base !len) last) do
    decr len
  done;
  Addr.prefix base !len

let usable t gw = not (Hashtbl.mem t.flagged (Gateway.addr gw))

(* The aggregate's path restricted to registered gateways, source side
   first. Stage 0 (the pool node) carries no gateway, so element 0 is the
   source domain's gateway and the last element the victim's. Flagged
   (Byzantine) gateways are invisible — zero capacity to the planner. *)
let chain_of t agg =
  Array.of_list
    (List.filter_map
       (fun nd ->
         match Hashtbl.find_opt t.by_node nd.Node.id with
         | Some gw when usable t gw -> Some gw
         | Some _ | None -> None)
       (Fluid.stage_nodes agg))

let install_at t gw label =
  let tbl = Gateway.filters gw in
  match Filter_table.install tbl label ~duration:(duration t) with
  | Ok _ ->
    t.installs <- t.installs + 1;
    Hashtbl.replace t.owned ((Gateway.node gw).Node.id, label) ();
    true
  | Error `Table_full -> false

let remove_at t gw label =
  let key = ((Gateway.node gw).Node.id, label) in
  (match Filter_table.find (Gateway.filters gw) label with
  | Some h ->
    t.removing <- true;
    Filter_table.remove (Gateway.filters gw) h;
    t.removing <- false;
    t.reclaims <- t.reclaims + 1
  | None -> ());
  Hashtbl.remove t.owned key

(* The first gateway an aggregate's traffic crosses — Optimal's placement
   point (blocking at the source domain costs one slot and zero transit). *)
let source_gateway t agg =
  let rec first = function
    | [] -> None
    | nd :: rest -> (
      match Hashtbl.find_opt t.by_node nd.Node.id with
      | Some gw when usable t gw -> Some gw
      | Some _ | None -> first rest)
  in
  first (Fluid.stage_nodes agg)

(* --- Optimal: per-epoch re-solve from the oracle attack-source set ------ *)

let epoch_optimal t =
  if Hashtbl.length t.victims > 0 then begin
    (* Candidate set: one covering-prefix filter per active attack
       aggregate towards a known victim, at its source gateway. *)
    let desired = Hashtbl.create 64 in
    Fluid.iter_aggregates t.fluid (fun agg ->
        if
          Fluid.attack agg && Fluid.active agg
          && Hashtbl.mem t.victims (Fluid.dst agg)
        then
          match source_gateway t agg with
          | None -> ()
          | Some gw ->
            let label = Flow_label.from_net (cover agg) (Fluid.dst agg) in
            let key = ((Gateway.node gw).Node.id, label) in
            (match Hashtbl.find_opt desired key with
            | Some (_, r) -> r := !r +. Fluid.total_rate agg
            | None -> Hashtbl.replace desired key (gw, ref (Fluid.total_rate agg))));
    (* Retire filters the new solution no longer wants. *)
    sorted_bindings ~cmp:(fun (k1, ()) (k2, ()) -> key_compare k1 k2) t.owned
    |> List.iter (fun (((nid, label) as key), ()) ->
           if not (Hashtbl.mem desired key) then
             match Hashtbl.find_opt t.by_node nid with
             | Some gw -> remove_at t gw label
             | None -> Hashtbl.remove t.owned key);
    (* Greedy knapsack: highest blocked rate first, until each gateway's
       slot budget runs out ([`Table_full] skips the candidate). *)
    sorted_bindings
      ~cmp:(fun (k1, (_, r1)) (k2, (_, r2)) ->
        if !r1 <> !r2 then compare !r2 !r1 else key_compare k1 k2)
      desired
    |> List.iter (fun ((_, label), (gw, _)) -> ignore (install_at t gw label))
  end

(* --- Adaptive: feedback-driven frontier walk ---------------------------- *)

let epoch_adaptive t =
  if Hashtbl.length t.victims > 0 then begin
    let needed = Hashtbl.create 8 in
    Fluid.iter_aggregates t.fluid (fun agg ->
        let v = Fluid.dst agg in
        if Hashtbl.mem t.victims v then begin
          let key = (Fluid.src_base agg, v) in
          (* No oracle: an aggregate is suspect when the traffic the
             gateways observe from its range towards the victim exceeds
             the rate threshold — the fluid rates stand in for per-prefix
             rate measurement at the routers. *)
          let suspect =
            Fluid.active agg && Fluid.total_rate agg >= t.suspect_rate
          in
          match (Hashtbl.find_opt t.frontiers key, suspect) with
          | None, false -> ()
          | fr_opt, true ->
            let fr =
              match fr_opt with
              | Some fr -> fr
              | None ->
                let fr = { pos = max_int; idle = 0; placed = None } in
                Hashtbl.replace t.frontiers key fr;
                fr
            in
            fr.idle <- 0;
            let chain = chain_of t agg in
            let len = Array.length chain in
            if len > 0 then begin
              let label = Flow_label.from_net (cover agg) v in
              let target = Int.max 0 (Int.min fr.pos len - 1) in
              if install_at t chain.(target) label then begin
                (match fr.placed with
                | Some (g, l)
                  when not (g == chain.(target) && Flow_label.equal l label)
                  ->
                  remove_at t g l;
                  t.pushes <- t.pushes + 1
                | Some _ | None -> ());
                fr.placed <- Some (chain.(target), label);
                fr.pos <- target
              end
              else begin
                (* No slot closer in: keep renewing where we stand. *)
                match fr.placed with
                | Some (g, l) -> ignore (install_at t g l)
                | None -> ()
              end;
              if fr.pos > 0 then Hashtbl.replace needed v ()
            end
          | Some fr, false ->
            fr.idle <- fr.idle + 1;
            if fr.idle >= 2 then begin
              (match fr.placed with
              | Some (g, l) -> remove_at t g l
              | None -> ());
              Hashtbl.remove t.frontiers key
            end
        end);
    (* The coarse root wildcard protects the victim only while some
       frontier is still short of its source gateway. *)
    sorted_bindings ~cmp:(fun (a, _) (b, _) -> Addr.compare a b) t.roots
    |> List.iter (fun (v, gw) ->
           if Hashtbl.mem needed v then
             ignore (install_at t gw (root_label v))
           else begin
             remove_at t gw (root_label v);
             Hashtbl.remove t.roots v
           end)
  end

(* A contract auditor convicted this gateway: forget every filter we
   placed there (it was not honouring them anyway) and never plan through
   it again. The next epoch re-solves around the hole — Optimal re-scores
   with the liar's candidates gone, Adaptive's frontier walks re-derive
   their chains without it. *)
let flag_gateway t addr =
  if not (Hashtbl.mem t.flagged addr) then begin
    Hashtbl.replace t.flagged addr ();
    match Hashtbl.find_opt t.by_addr addr with
    | None -> ()
    | Some gw ->
      let nid = (Gateway.node gw).Node.id in
      sorted_bindings ~cmp:(fun (k1, ()) (k2, ()) -> key_compare k1 k2) t.owned
      |> List.iter (fun ((n, label), ()) -> if n = nid then remove_at t gw label)
  end

let flagged_gateway t addr = Hashtbl.mem t.flagged addr

let epoch t =
  match t.policy with
  | Placement.Optimal -> epoch_optimal t
  | Placement.Adaptive -> epoch_adaptive t
  | Placement.Vanilla -> ()

let on_evidence t (e : Placement.evidence) =
  match e.Placement.flow.Flow_label.dst with
  | Flow_label.Host v -> (
    let fresh = not (Hashtbl.mem t.victims v) in
    if fresh then Hashtbl.replace t.victims v ();
    match t.policy with
    | Placement.Adaptive ->
      (* Immediate relief: plant the coarse wildcard at the reporting
         gateway; the epochs then walk it towards the sources. *)
      if not (Hashtbl.mem t.roots v) then (
        match Hashtbl.find_opt t.by_addr e.Placement.reporter with
        | Some gw when usable t gw ->
          if install_at t gw (root_label v) then
            Hashtbl.replace t.roots v gw
        | Some _ | None -> ())
    | Placement.Optimal ->
      (* Don't wait an epoch to cover a new victim. *)
      if fresh then epoch_optimal t
    | Placement.Vanilla -> ())
  | Flow_label.Net _ | Flow_label.Any -> ()

let create ?(defer = fun f -> f ()) ?(suspect_rate = 10e6) ~policy ~fluid
    config =
  (match policy with
  | Placement.Vanilla ->
    invalid_arg "Placement_ctl.create: Vanilla is unmanaged"
  | Placement.Optimal | Placement.Adaptive -> ());
  let sim = Network.sim (Fluid.network fluid) in
  let report_ref = ref (fun (_ : Placement.evidence) -> ()) in
  let t =
    {
      policy;
      fluid;
      sim;
      config;
      suspect_rate;
      (* Evidence arrives from gateways — shard-phase code in parallel
         runs — so the report crosses into controller state through
         [defer] (immediate by default). *)
      handle =
        Placement.create ~policy ~report:(fun e ->
            defer (fun () -> !report_ref e));
      by_node = Hashtbl.create 64;
      by_addr = Hashtbl.create 64;
      victims = Hashtbl.create 8;
      owned = Hashtbl.create 64;
      frontiers = Hashtbl.create 64;
      roots = Hashtbl.create 8;
      flagged = Hashtbl.create 4;
      removing = false;
      installs = 0;
      reclaims = 0;
      pushes = 0;
      evictions_observed = 0;
    }
  in
  report_ref := on_evidence t;
  let rec tick () =
    epoch t;
    ignore (Sim.after t.sim t.config.Config.placement_epoch tick)
  in
  ignore (Sim.after sim config.Config.placement_epoch tick);
  t

let register_gateways ?(defer = fun f -> f ()) t gws =
  Array.iter
    (fun gw ->
      let nid = (Gateway.node gw).Node.id in
      if not (Hashtbl.mem t.by_node nid) then begin
        Hashtbl.replace t.by_node nid gw;
        Hashtbl.replace t.by_addr (Gateway.addr gw) gw;
        Filter_table.subscribe (Gateway.filters gw) (fun ch ->
            match ch with
            | Filter_table.Removed h ->
              defer (fun () ->
                  let key = (nid, Filter_table.label h) in
                  if (not t.removing) && Hashtbl.mem t.owned key then begin
                    t.evictions_observed <- t.evictions_observed + 1;
                    Hashtbl.remove t.owned key
                  end)
            | Filter_table.Installed _ -> ())
      end)
    gws
