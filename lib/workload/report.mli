(** Inspection reports over a simulated network.

    Renders per-node and per-link statistics, gateway counters and filter
    occupancy as {!Aitf_stats.Table}s — what the CLI prints under
    [--stats] and what post-mortem debugging reaches for first. *)

open Aitf_net

val node_table : Network.t -> Aitf_stats.Table.t
(** One row per node: received/forwarded/delivered packets and the drop
    counters (reason=count, sorted). *)

val link_table : ?busy_only:bool -> Network.t -> Aitf_stats.Table.t
(** One row per directed link: transmitted and dropped traffic plus
    utilisation over the elapsed simulation time. [busy_only] (default
    true) hides links that never carried a packet. *)

val gateway_table : Aitf_core.Gateway.t list -> Aitf_stats.Table.t
(** One row per gateway: filter occupancy/peak, shadow peak, requests
    received and the non-zero decision counters. *)

val metrics_table : Aitf_obs.Metrics.t -> Aitf_stats.Table.t
(** One row per registered metric (sorted by name) from a live snapshot:
    name, kind, value (a histogram shows sample count and mean), unit. *)
