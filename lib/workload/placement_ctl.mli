(** Managed filter-placement controllers: Optimal and Adaptive.

    The counterpart of the {!Aitf_core.Placement} seam. A controller owns
    long-filter placement for every gateway holding its handle: gateways
    report attack evidence instead of propagating requests, and the
    controller installs/reclaims prefix filters directly in the gateways'
    tables each decision epoch ([config.placement_epoch]). Installed
    filters reach the rate domain through the fluid engine's table
    mirroring, exactly like protocol-installed ones.

    {b Optimal} (El Defrawy/Markopoulou/Argyraki, "Optimal Filtering of
    Source Address Prefixes", PAPERS.md): each epoch, re-solve the filter
    selection from the oracle view of the attack-source set — every active
    attack aggregate towards a reported victim becomes a candidate prefix
    filter at its source-domain gateway, scored by attack rate blocked
    minus legitimate rate caught (the collateral), and installed greedily
    under the per-gateway slot budget.

    {b Adaptive} (Li et al., "Adaptive Distributed Filtering", PAPERS.md):
    no oracle. Evidence plants a coarse wildcard at the reporting gateway;
    each epoch the controller walks its filter frontier one hop towards
    the sources along the aggregate paths that actually cross it,
    narrowing the label to the attack range as it goes, and stops renewing
    filters whose traffic has vanished (slot reclamation). Feedback comes
    from the fluid aggregates' live rates, the filter tables'
    {!Aitf_filter.Filter_table.subscribe} change feed (external evictions
    re-enter the frontier) and hit counters.

    All decisions iterate aggregates in insertion order and gateways in
    array order — same seed and policy, same placements, bit for bit. *)

open Aitf_core
module Fluid = Aitf_flowsim.Fluid

type t

val create :
  ?defer:((unit -> unit) -> unit) ->
  ?suspect_rate:float ->
  policy:Placement.policy ->
  fluid:Fluid.t ->
  Config.t ->
  t
(** Build a controller and start its decision loop on the fluid engine's
    simulator (epoch = [config.placement_epoch]; the loop reschedules
    itself forever, so bound runs with [Sim.run ~until]). [policy] must be
    [Optimal] or [Adaptive]. [suspect_rate] (default 10 Mb/s) is the
    Adaptive policy's observed-rate threshold above which a source range
    is treated as attacking. [?defer] wraps gateway evidence reports
    before they touch controller state (default: immediate); the parallel
    engine passes [Sched.defer] to move them to barriers.
    @raise Invalid_argument on [Vanilla] (there is nothing to control). *)

val handle : t -> Placement.t
(** The seam handle to pass to {!Aitf_core.Gateway.create} (and to
    {!Aitf_topo.As_graph.deploy}). *)

val register_gateways :
  ?defer:((unit -> unit) -> unit) -> t -> Gateway.t array -> unit
(** Tell the controller which gateways it may place filters in (typically
    every deployed gateway). Must be called before the first evidence
    arrives; also subscribes the Adaptive feedback to each table.
    [?defer] wraps the eviction-feedback callback (default: immediate);
    the parallel engine passes [Sched.defer] so shard-phase evictions
    touch controller state only at barriers. *)

val flag_gateway : t -> Aitf_net.Addr.t -> unit
(** A contract auditor convicted this gateway of lying about its filters
    (docs/CONTRACTS.md): reclaim every controller-owned filter placed
    there and treat it as zero-capacity from now on — candidate chains
    skip it, so the next epoch re-solves the placement around the hole.
    Idempotent. *)

val flagged_gateway : t -> Aitf_net.Addr.t -> bool

val sorted_bindings :
  cmp:('k * 'v -> 'k * 'v -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** [Hashtbl.fold] enumerates bindings in hash-bucket order — a function
    of the OCaml version and hash seed, not of the scenario. Every
    controller traversal that drives installs or removes goes through
    this instead: fold, then sort by [cmp]. Exposed so the tier-1 suite
    can pin the property (sorted output, insertion-order independence)
    directly on the helper all decision paths share. *)

(* Statistics *)

val evidence : t -> int  (** evidence reports received *)

val installs : t -> int  (** filter installs + refreshes issued *)

val reclaims : t -> int
(** filters actively removed (Adaptive pushes and idle reclamation) *)

val pushes : t -> int
(** Adaptive frontier moves towards the sources (0 for Optimal) *)

val evictions_observed : t -> int
(** controller-owned filters removed by someone else (expiry/eviction),
    seen through the subscribe feed *)
