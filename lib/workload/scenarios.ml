module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Sched = Aitf_parallel.Sched
module Series = Aitf_stats.Series
module Rate_meter = Aitf_stats.Rate_meter
module Counter = Aitf_stats.Counter
module Fluid = Aitf_flowsim.Fluid
module Sampler = Aitf_flowsim.Sampler
open Aitf_net
open Aitf_core
open Aitf_topo

type chain_params = {
  spec : Chain.spec;
  config : Config.t;
  seed : int;
  duration : float;
  attack_rate : float;
  attack_start : float;
  legit_rate : float;
  n_non_coop_gws : int;
  attacker_strategy : Policy.attacker_response;
  td : float;
  path_source : Host_agent.path_source;
  traceback : [ `Path_in_request | `Spie | `Ppm ];
  sample_period : float;
  ctrl_faults : Aitf_fault.Fault.model list;
  tail_flap : (float * float) option;
  adversaries : Aitf_adversary.Adversary.playbook list;
  adversary_start : float;
  in_pool_legit_rate : float;
}

let default_chain =
  {
    spec = Chain.default_spec;
    config = Config.default;
    seed = 42;
    duration = 300.;
    attack_rate = 1e6;
    attack_start = 1.;
    legit_rate = 0.;
    n_non_coop_gws = 0;
    attacker_strategy = Policy.Ignores;
    td = 0.1;
    path_source = Host_agent.From_route_record;
    traceback = `Path_in_request;
    sample_period = 0.1;
    ctrl_faults = [];
    tail_flap = None;
    adversaries = [];
    adversary_start = 1.;
    in_pool_legit_rate = 0.;
  }

type chain_result = {
  params : chain_params;
  deployed : Chain.deployed;
  attack_offered_bytes : float;
  attack_received_bytes : float;
  r_measured : float;
  good_offered_bytes : float;
  good_received_bytes : float;
  victim_rate : Series.t;
  escalations : int;
  requests_sent : int;
  requests_retransmitted : int;
  ctrl_retransmits : int;
  ctrl_gave_up : int;
  faults_injected : int;
  adversary_handles : Aitf_adversary.Adversary.t list;
  overload_aggregations : int;
  overload_evictions : int;
  collateral_packets : int;
  collateral_bytes : int;
  sampler : Aitf_obs.Sampler.t option;
  fluid : Fluid.t option;
  events_processed : int;
}

let counter_total gws name =
  List.fold_left (fun acc gw -> acc + Counter.get (Gateway.counters gw) name) 0
    gws

(* These fixed small topologies are never sharded: with [?sched] they run
   entirely on the scheduler's global sim. The seam exists so tests can
   check that a 1-shard [Sched] replays the sequential engine bit for
   bit. *)
let sim_of_sched = function
  | Some s -> Sched.global s
  | None -> Sim.create ()

let run_sched ?sched ~until sim =
  match sched with
  | Some s -> Sched.run ~until s
  | None -> Sim.run ~until sim

let run_chain ?sched params =
  let sim = sim_of_sched sched in
  let rng = Rng.create ~seed:params.seed in
  let topo = Chain.build sim params.spec in
  let config, path_source =
    match params.traceback with
    | `Path_in_request -> (params.config, params.path_source)
    | `Spie ->
      let spie = Aitf_traceback.Spie.deploy topo.Chain.net in
      ( { params.config with Config.traceback = Config.Spie_query spie },
        Host_agent.Gateway_traceback )
    | `Ppm ->
      let mark_rng = Rng.split rng in
      List.iter
        (fun gw -> Aitf_traceback.Ppm.install ~p:0.2 ~rng:mark_rng gw)
        (topo.Chain.victim_gws @ topo.Chain.attacker_gws);
      ( params.config,
        Host_agent.From_ppm (Aitf_traceback.Ppm.Collector.create ()) )
  in
  let deployed =
    Chain.deploy ~attacker_strategy:params.attacker_strategy
      ~attacker_gw_policies:(Chain.non_cooperating params.n_non_coop_gws)
      ~victim_td:params.td ~path_source ~config ~rng topo
  in
  (* Fault injection on the victim's tail circuit, the congested link every
     control message must cross: [ctrl_faults] hits control packets in both
     directions; [tail_flap] takes the whole circuit down on schedule. Only
     touch the RNG when faults are requested, so fault-free runs replay the
     exact pre-fault event sequence. *)
  let injectors =
    if params.ctrl_faults = [] then []
    else
      let fault_rng = Rng.split rng in
      List.map
        (fun link ->
          Aitf_fault.Fault.inject ~only:Aitf_fault.Fault.ctrl_only
            ~rng:fault_rng sim link params.ctrl_faults)
        [ topo.Chain.victim_tail_up; topo.Chain.victim_tail ]
  in
  (match params.tail_flap with
  | Some (period, down_for) ->
    ignore
      (Aitf_fault.Fault.flap sim
         [ topo.Chain.victim_tail; topo.Chain.victim_tail_up ]
         ~period ~down_for)
  | None -> ());
  (* Protocol-level adversaries. Everything here — the extra nodes, the
     RNG split, the playbooks themselves — happens only when playbooks were
     requested, so adversary-free runs replay the exact pre-adversary event
     sequence. *)
  let spoof_base = Addr.of_octets 20 66 0 0 in
  let adversary_handles, in_pool_client =
    if params.adversaries = [] then ([], None)
    else begin
      let adv_rng = Rng.split rng in
      let net = topo.Chain.net in
      let spec = params.spec in
      let attach gw name addr as_id =
        let n = Network.add_node net ~name ~addr ~as_id Node.Host in
        ignore
          (Network.connect net gw n ~bandwidth:spec.Chain.attacker_tail_bw
             ~delay:spec.Chain.access_delay
             ~queue_capacity:spec.Chain.queue_capacity);
        n
      in
      let g_gw1 = List.hd topo.Chain.victim_gws in
      let b_gw1 = List.hd topo.Chain.attacker_gws in
      (* A compromised client inside the victim's /24 cone, for the
         request-flood playbooks. *)
      let insider = attach g_gw1 "G_insider" (Addr.of_octets 10 0 0 99) 1 in
      (* A legitimate host whose address falls inside the spoofed-source
         pool: the bystander that prefix aggregation can hit — its lost
         traffic is what the collateral-damage estimate measures. *)
      let in_pool =
        if params.in_pool_legit_rate > 0. then
          Some (attach b_gw1 "B_inpool" (Addr.add spoof_base 77) 101)
        else None
      in
      Network.compute_routes net;
      let tap =
        List.nth topo.Chain.attacker_gws
          (min 1 (List.length topo.Chain.attacker_gws - 1))
      in
      let env =
        {
          Aitf_adversary.Adversary.net;
          attacker = topo.Chain.attacker;
          insider;
          tap;
          victim = topo.Chain.victim.Node.addr;
          victim_gw = g_gw1.Node.addr;
          spoof_base;
        }
      in
      ( List.map
          (fun pb ->
            Aitf_adversary.Adversary.launch ~start:params.adversary_start
              ~rng:(Rng.split adv_rng) env pb)
          params.adversaries,
        in_pool )
    end
  in
  let attacker_agent = deployed.Chain.attacker_agent in
  let victim_addr = topo.Chain.victim.Node.addr in
  (* Engine selection. Under [Hybrid], the data plane is fluid: each source
     becomes a one-source aggregate, gateways' filter tables are mirrored
     into the rate domain, and a deterministic sampler materialises probe
     packets so the (unchanged, packet-level) control plane keeps seeing
     traffic. The RNG is only split in hybrid mode, so packet runs replay
     the exact pre-hybrid event sequence. *)
  let fluid_ctx =
    if params.config.Config.engine = Config.Hybrid then begin
      let eng =
        Fluid.create ~epoch:params.config.Config.hybrid_epoch topo.Chain.net
      in
      List.iter
        (fun gw ->
          Fluid.attach_table eng ~node:(Gateway.node gw) (Gateway.filters gw))
        (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways);
      Some (eng, Rng.split rng)
    end
    else None
  in
  let probe_rate =
    let r = params.config.Config.hybrid_probe_rate in
    if r > 0. then Some r else None
  in
  let fluid_agg ?flow_id eng node rate ~attack ~start =
    Fluid.add_aggregate ?flow_id eng ~origin:node ~src_base:node.Node.addr
      ~n:1 ~rate ~dst:victim_addr ~attack ~start
  in
  let (_in_pool_source : Traffic.t option) =
    match fluid_ctx with
    | None ->
      Option.map
        (fun node ->
          Traffic.cbr ~start:0. ~flow_id:3 ~rate:params.in_pool_legit_rate
            ~dst:victim_addr topo.Chain.net node)
        in_pool_client
    | Some (eng, _) ->
      Option.iter
        (fun node ->
          ignore
            (fluid_agg ~flow_id:3 eng node params.in_pool_legit_rate
               ~attack:false ~start:0.))
        in_pool_client;
      None
  in
  let (_attack_source : Traffic.t option) =
    match fluid_ctx with
    | None ->
      Some
        (Traffic.cbr
           ~gate:(Host_agent.Attacker.gate attacker_agent)
           ~start:params.attack_start ~attack:true ~flow_id:1
           ~rate:params.attack_rate ~dst:victim_addr topo.Chain.net
           topo.Chain.attacker)
    | Some (eng, frng) ->
      let agg =
        fluid_agg ~flow_id:1 eng topo.Chain.attacker params.attack_rate
          ~attack:true ~start:params.attack_start
      in
      Fluid_bridge.attach_attacker_strategy eng agg attacker_agent;
      ignore (Sampler.attach ?rate:probe_rate ~rng:(Rng.split frng) eng agg);
      None
  in
  let legit_on = params.legit_rate > 0. in
  let (_legit_source : Traffic.t option) =
    if not legit_on then None
    else
      match fluid_ctx with
      | None ->
        Some
          (Traffic.cbr ~start:0. ~flow_id:2 ~rate:params.legit_rate
             ~dst:victim_addr topo.Chain.net topo.Chain.bystander)
      | Some (eng, _) ->
        ignore
          (fluid_agg ~flow_id:2 eng topo.Chain.bystander params.legit_rate
             ~attack:false ~start:0.);
        None
  in
  (* Sample the attack bandwidth the victim experiences. In hybrid runs the
     fluid delivery is pushed through the same 1-second window as the packet
     engine's victim meter, so [time_to_suppress] sees identical smoothing
     lag under both engines. *)
  let victim_rate = Series.create ~name:"victim-attack-rate" () in
  let meter = Host_agent.Victim.attack_meter deployed.Chain.victim_agent in
  let vmeter =
    Option.map (fun (eng, _) -> Fluid_bridge.victim_meter eng) fluid_ctx
  in
  let rec sample t =
    if t <= params.duration then
      ignore
        (Sim.at sim t (fun () ->
             let v =
               match vmeter with
               | Some m -> Fluid_bridge.victim_attack_rate m ~now:t
               | None -> 8. *. Rate_meter.rate meter ~now:t
             in
             Series.add victim_rate ~time:t v;
             sample (t +. params.sample_period)))
  in
  sample params.sample_period;
  (* When a metrics registry is attached, every component above has already
     self-registered; the sampler adds the sim-level metrics and the
     time-series half of the run report. *)
  let sampler =
    Option.map
      (fun reg -> Aitf_obs.Sampler.start ~interval:params.sample_period sim reg)
      (Aitf_obs.Metrics.attached ())
  in
  run_sched ?sched ~until:params.duration sim;
  let attack_offered_bytes =
    params.attack_rate *. (params.duration -. params.attack_start) /. 8.
  in
  let attack_received_bytes =
    match fluid_ctx with
    | Some (eng, _) -> Fluid.delivered_bits eng ~attack:true /. 8.
    | None -> Host_agent.Victim.attack_bytes deployed.Chain.victim_agent
  in
  let good_received_bytes =
    match fluid_ctx with
    | Some (eng, _) -> Fluid.delivered_bits eng ~attack:false /. 8.
    | None -> Host_agent.Victim.good_bytes deployed.Chain.victim_agent
  in
  let good_offered_bytes =
    (if legit_on then params.legit_rate *. params.duration /. 8. else 0.)
    +.
    match in_pool_client with
    | Some _ -> params.in_pool_legit_rate *. params.duration /. 8.
    | None -> 0.
  in
  let all_gateways =
    deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways
  in
  let overload_total f =
    List.fold_left
      (fun acc gw ->
        match Gateway.overload gw with
        | Some mgr -> acc + f mgr
        | None -> acc)
      0 all_gateways
  in
  {
    params;
    deployed;
    attack_offered_bytes;
    attack_received_bytes;
    r_measured =
      (if attack_offered_bytes > 0. then
         attack_received_bytes /. attack_offered_bytes
       else 0.);
    good_offered_bytes;
    good_received_bytes;
    victim_rate;
    escalations = counter_total deployed.Chain.victim_gateways "escalated";
    requests_sent =
      Host_agent.Victim.requests_sent deployed.Chain.victim_agent;
    requests_retransmitted =
      Host_agent.Victim.requests_retransmitted deployed.Chain.victim_agent;
    ctrl_retransmits =
      counter_total
        (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways)
        "ctrl-retransmit";
    ctrl_gave_up =
      counter_total
        (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways)
        "ctrl-gave-up";
    faults_injected =
      List.fold_left
        (fun acc i -> acc + Aitf_fault.Fault.drops_injected i)
        0 injectors;
    adversary_handles;
    overload_aggregations = overload_total Aitf_filter.Overload.aggregations;
    overload_evictions = overload_total Aitf_filter.Overload.evictions;
    collateral_packets = overload_total Aitf_filter.Overload.collateral_packets;
    collateral_bytes = overload_total Aitf_filter.Overload.collateral_bytes;
    sampler;
    fluid = Option.map fst fluid_ctx;
    events_processed = Sim.events_processed sim;
  }

let time_to_suppress result ~threshold =
  let limit = threshold *. result.params.attack_rate in
  let after_start (t, _) = t >= result.params.attack_start in
  let points = List.filter after_start (Series.points result.victim_rate) in
  (* Find the first point below the limit that is followed by another
     below-limit sample (debounce a single lucky window). *)
  let rec scan = function
    | (t, v) :: ((_, v') :: _ as rest) ->
      if v < limit && v' < limit then Some t else scan rest
    | [ (t, v) ] -> if v < limit then Some t else None
    | [] -> None
  in
  (* Only meaningful once the attack has had a chance to be seen. *)
  let rec drop_until_seen = function
    | (_, v) :: rest when v <= 0. -> drop_until_seen rest
    | l -> l
  in
  scan (drop_until_seen points)

(* --- Distributed flood on the provider hierarchy -------------------------- *)

type flood_params = {
  hierarchy : Hierarchy.spec;
  flood_config : Config.t;
  flood_seed : int;
  flood_duration : float;
  zombies : int;
  zombie_rate : float;
  zombie_strategy : Policy.attacker_response;
  legit_clients : int;
  legit_rate : float;
  attack_start : float;
  with_aitf : bool;
  flood_sample_period : float;
}

let default_flood =
  {
    hierarchy =
      {
        Hierarchy.default_spec with
        Hierarchy.isps = 3;
        nets_per_isp = 3;
        hosts_per_net = 3;
      };
    flood_config = Config.with_timescale Config.default 0.1;
    flood_seed = 42;
    flood_duration = 20.;
    zombies = 12;
    zombie_rate = 1e6;
    zombie_strategy = Policy.Ignores;
    legit_clients = 2;
    legit_rate = 2e5;
    attack_start = 1.;
    with_aitf = true;
    flood_sample_period = 0.25;
  }

type flood_result = {
  flood_params : flood_params;
  hierarchy_deployed : Hierarchy.deployed option;
  victim : Host_agent.Victim.t option;
  zombies_placed : int;
  legit_received_bytes : float;
  legit_offered_bytes : float;
  flood_attack_received_bytes : float;
  leaf_filters : int;
  isp_filters : int;
  flood_sampler : Aitf_obs.Sampler.t option;
  flood_fluid : Fluid.t option;
  flood_events : int;
}

let run_flood ?sched p =
  let sim = sim_of_sched sched in
  let rng = Rng.create ~seed:p.flood_seed in
  let t = Hierarchy.build sim p.hierarchy in
  let config = p.flood_config in
  let deployed =
    if p.with_aitf then Some (Hierarchy.deploy ~config ~rng t) else None
  in
  let victim_node = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
  let victim =
    Option.map
      (fun d -> Hierarchy.attach_victim ~td:0.1 d ~config ~isp:0 ~net:0 ~host:0)
      deployed
  in
  (* Count at the node so the no-AITF baseline measures too; the victim
     agent (when present) re-dispatches data it does not own to this
     handler's predecessor, so install ours first... order matters: this
     wrapper was installed before any agent, so the agent runs first and
     swallows Data; count here only without AITF, through the agent
     otherwise. *)
  (* Hybrid: the whole data plane is fluid; the control plane (when AITF is
     deployed) is driven by per-zombie probe samplers. *)
  let fluid_ctx =
    if config.Config.engine = Config.Hybrid then begin
      let eng = Fluid.create ~epoch:config.Config.hybrid_epoch t.Hierarchy.net in
      (match deployed with
      | Some d ->
        let attach gw =
          Fluid.attach_table eng ~node:(Gateway.node gw) (Gateway.filters gw)
        in
        Array.iter (fun row -> Array.iter attach row) d.Hierarchy.net_gateways;
        Array.iter attach d.Hierarchy.isp_gateways
      | None -> ());
      Some (eng, Rng.split rng)
    end
    else None
  in
  let probe_rate =
    let r = config.Config.hybrid_probe_rate in
    if r > 0. then Some r else None
  in
  let legit = ref 0. and attack = ref 0. in
  (if (not p.with_aitf) && Option.is_none fluid_ctx then
     let prev = victim_node.Node.local_deliver in
     victim_node.Node.local_deliver <-
       (fun node (pkt : Packet.t) ->
         (match pkt.Packet.payload with
         | Packet.Data { attack = true; _ } ->
           attack := !attack +. float_of_int pkt.Packet.size
         | Packet.Data _ -> legit := !legit +. float_of_int pkt.Packet.size
         | _ -> ());
         prev node pkt));
  (* Legit clients inside the victim's ISP (excluding the victim's own
     host slot). *)
  let placed_clients = ref 0 in
  (try
     for net = 0 to p.hierarchy.Hierarchy.nets_per_isp - 1 do
       for host = 0 to p.hierarchy.Hierarchy.hosts_per_net - 1 do
         if
           !placed_clients < p.legit_clients && not (net = 0 && host = 0)
         then begin
           incr placed_clients;
           let src = Hierarchy.host t ~isp:0 ~net ~host in
           match fluid_ctx with
           | None ->
             ignore
               (Traffic.cbr ~start:0. ~flow_id:(2000 + !placed_clients)
                  ~rate:p.legit_rate ~dst:victim_node.Node.addr t.Hierarchy.net
                  src)
           | Some (eng, _) ->
             ignore
               (Fluid.add_aggregate eng ~flow_id:(2000 + !placed_clients)
                  ~origin:src ~src_base:src.Node.addr ~n:1 ~rate:p.legit_rate
                  ~dst:victim_node.Node.addr ~attack:false ~start:0.)
         end
       done
     done
   with Invalid_argument _ -> ());
  (* Zombies round-robin over the other ISPs. *)
  let placed = ref 0 in
  (try
     for isp = 1 to p.hierarchy.Hierarchy.isps - 1 do
       for net = 0 to p.hierarchy.Hierarchy.nets_per_isp - 1 do
         for host = 0 to p.hierarchy.Hierarchy.hosts_per_net - 1 do
           if !placed < p.zombies then begin
             incr placed;
             let agent =
               Option.map
                 (fun d ->
                   Hierarchy.attach_attacker ~strategy:p.zombie_strategy d
                     ~config ~isp ~net ~host)
                 deployed
             in
             let src = Hierarchy.host t ~isp ~net ~host in
             match fluid_ctx with
             | None ->
               let gate =
                 match agent with
                 | Some a -> Host_agent.Attacker.gate a
                 | None -> fun _ -> true
               in
               ignore
                 (Traffic.cbr ~gate ~start:p.attack_start ~attack:true
                    ~flow_id:(1000 + !placed) ~rate:p.zombie_rate
                    ~dst:victim_node.Node.addr t.Hierarchy.net src)
             | Some (eng, frng) ->
               let agg =
                 Fluid.add_aggregate eng ~flow_id:(1000 + !placed)
                   ~origin:src ~src_base:src.Node.addr ~n:1
                   ~rate:p.zombie_rate ~dst:victim_node.Node.addr
                   ~attack:true ~start:p.attack_start
               in
               Option.iter
                 (fun a -> Fluid_bridge.attach_attacker_strategy eng agg a)
                 agent;
               ignore
                 (Sampler.attach ?rate:probe_rate ~rng:(Rng.split frng) eng
                    agg)
           end
         done
       done
     done
   with Invalid_argument _ -> ());
  let flood_sampler =
    Option.map
      (fun reg ->
        Aitf_obs.Sampler.start ~interval:p.flood_sample_period sim reg)
      (Aitf_obs.Metrics.attached ())
  in
  run_sched ?sched ~until:p.flood_duration sim;
  let filters_at gws =
    Array.fold_left
      (fun acc gw -> acc + Counter.get (Gateway.counters gw) "filter-long")
      0 gws
  in
  let leaf_filters, isp_filters =
    match deployed with
    | None -> (0, 0)
    | Some d ->
      ( Array.fold_left
          (fun acc row -> acc + filters_at row)
          0 d.Hierarchy.net_gateways,
        filters_at d.Hierarchy.isp_gateways )
  in
  let legit_received, attack_received =
    match fluid_ctx with
    | Some (eng, _) ->
      ( Fluid.delivered_bits eng ~attack:false /. 8.,
        Fluid.delivered_bits eng ~attack:true /. 8. )
    | None -> (
      match victim with
      | Some v ->
        (Host_agent.Victim.good_bytes v, Host_agent.Victim.attack_bytes v)
      | None -> (!legit, !attack))
  in
  {
    flood_params = p;
    hierarchy_deployed = deployed;
    victim;
    zombies_placed = !placed;
    legit_received_bytes = legit_received;
    legit_offered_bytes =
      float_of_int !placed_clients *. p.legit_rate *. p.flood_duration /. 8.;
    flood_attack_received_bytes = attack_received;
    leaf_filters;
    isp_filters;
    flood_sampler;
    flood_fluid = Option.map fst fluid_ctx;
    flood_events = Sim.events_processed sim;
  }

(* --- Massive-swarm scenario (hybrid engine only) ------------------------ *)

type swarm_params = {
  swarm_spec : Chain.spec;
  swarm_config : Config.t;
  swarm_seed : int;
  swarm_duration : float;
  swarm_sources : int;
  swarm_pools : int;
  swarm_attack_rate : float;
  swarm_legit_rate : float;
  swarm_attack_start : float;
  swarm_td : float;
  swarm_sample_period : float;
}

let default_swarm =
  {
    swarm_spec = Chain.default_spec;
    swarm_config = Config.default;
    swarm_seed = 42;
    swarm_duration = 30.;
    swarm_sources = 1000;
    swarm_pools = 4;
    swarm_attack_rate = 20e6;
    swarm_legit_rate = 1e6;
    swarm_attack_start = 1.;
    swarm_td = 0.1;
    swarm_sample_period = 0.1;
  }

type swarm_result = {
  swarm_params : swarm_params;
  swarm_deployed : Chain.deployed;
  swarm_fluid : Fluid.t;
  swarm_good_offered_bytes : float;
  swarm_good_received_bytes : float;
  swarm_attack_received_bytes : float;
  swarm_victim_rate : Series.t;
  swarm_requests_sent : int;
  swarm_filters : int;
  swarm_absorbed : int;
  swarm_events : int;
  swarm_sampler : Aitf_obs.Sampler.t option;
}

(* Each pool advertises a /12 (room for 2^20 sources) from 32.0.0.0 up, so
   pool j's aggregate can spread its sources over a contiguous range that
   routes back to the pool node for the reverse control path. *)
let pool_prefix j = Addr.prefix (Addr.of_octets 32 (16 * j) 0 0) 12

let run_swarm ?sched p =
  if p.swarm_pools < 1 || p.swarm_pools > 16 then
    invalid_arg "run_swarm: swarm_pools must be in 1..16";
  if p.swarm_sources < p.swarm_pools then
    invalid_arg "run_swarm: need at least one source per pool";
  if (p.swarm_sources / p.swarm_pools) + 1 > 1 lsl 20 then
    invalid_arg "run_swarm: more than 2^20 sources per pool";
  let sim = sim_of_sched sched in
  let rng = Rng.create ~seed:p.swarm_seed in
  let topo = Chain.build sim p.swarm_spec in
  let net = topo.Chain.net in
  let spec = p.swarm_spec in
  (* Pool nodes: one origin host per aggregate, hanging off the attacker-side
     gateways round-robin. The pool uplinks are provisioned well above the
     offered load so the victim's tail circuit stays the only bottleneck. *)
  let attacker_gws = Array.of_list topo.Chain.attacker_gws in
  let pool_bw = Float.max spec.Chain.core_bw (2. *. p.swarm_attack_rate) in
  let pools =
    Array.init p.swarm_pools (fun j ->
        let n =
          Network.add_node net
            ~name:(Printf.sprintf "pool%d" j)
            ~addr:(Addr.of_octets 31 0 0 (j + 1))
            ~as_id:(5000 + j) Node.Host
        in
        n.Node.advertised <-
          [ (Addr.host_prefix n.Node.addr, Node.Global);
            (pool_prefix j, Node.Global);
          ];
        ignore
          (Network.connect net
             attacker_gws.(j mod Array.length attacker_gws)
             n ~bandwidth:pool_bw ~delay:spec.Chain.access_delay
             ~queue_capacity:spec.Chain.queue_capacity);
        n)
  in
  Network.compute_routes net;
  let config = p.swarm_config in
  let deployed = Chain.deploy ~victim_td:p.swarm_td ~config ~rng topo in
  let eng = Fluid.create ~epoch:config.Config.hybrid_epoch net in
  List.iter
    (fun gw ->
      Fluid.attach_table eng ~node:(Gateway.node gw) (Gateway.filters gw))
    (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways);
  let frng = Rng.split rng in
  let probe_rate =
    let r = config.Config.hybrid_probe_rate in
    if r > 0. then Some r else None
  in
  let victim_addr = topo.Chain.victim.Node.addr in
  let base = p.swarm_sources / p.swarm_pools in
  let rem = p.swarm_sources mod p.swarm_pools in
  let absorbed = ref [] in
  Array.iteri
    (fun j pool ->
      let n = base + if j < rem then 1 else 0 in
      let rate =
        p.swarm_attack_rate *. float_of_int n /. float_of_int p.swarm_sources
      in
      let agg =
        Fluid.add_aggregate eng ~flow_id:(1000 + j) ~origin:pool
          ~src_base:(Addr.of_octets 32 (16 * j) 0 0)
          ~n ~rate ~dst:victim_addr ~attack:true ~start:p.swarm_attack_start
      in
      absorbed := Fluid_bridge.absorb_pool_requests pool :: !absorbed;
      ignore (Sampler.attach ?rate:probe_rate ~rng:(Rng.split frng) eng agg))
    pools;
  if p.swarm_legit_rate > 0. then
    ignore
      (Fluid.add_aggregate eng ~flow_id:2 ~origin:topo.Chain.bystander
         ~src_base:topo.Chain.bystander.Node.addr ~n:1 ~rate:p.swarm_legit_rate
         ~dst:victim_addr ~attack:false ~start:0.);
  let swarm_victim_rate = Series.create ~name:"victim-attack-rate" () in
  let vmeter = Fluid_bridge.victim_meter eng in
  let rec sample t =
    if t <= p.swarm_duration then
      ignore
        (Sim.at sim t (fun () ->
             Series.add swarm_victim_rate ~time:t
               (Fluid_bridge.victim_attack_rate vmeter ~now:t);
             sample (t +. p.swarm_sample_period)))
  in
  sample p.swarm_sample_period;
  let swarm_sampler =
    Option.map
      (fun reg ->
        Aitf_obs.Sampler.start ~interval:p.swarm_sample_period sim reg)
      (Aitf_obs.Metrics.attached ())
  in
  Sim.run ~until:p.swarm_duration sim;
  let all_gws =
    deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways
  in
  {
    swarm_params = p;
    swarm_deployed = deployed;
    swarm_fluid = eng;
    swarm_good_offered_bytes =
      (if p.swarm_legit_rate > 0. then
         p.swarm_legit_rate *. p.swarm_duration /. 8.
       else 0.);
    swarm_good_received_bytes = Fluid.delivered_bits eng ~attack:false /. 8.;
    swarm_attack_received_bytes = Fluid.delivered_bits eng ~attack:true /. 8.;
    swarm_victim_rate;
    swarm_requests_sent =
      Host_agent.Victim.requests_sent deployed.Chain.victim_agent;
    swarm_filters =
      counter_total all_gws "filter-temp" + counter_total all_gws "filter-long";
    swarm_absorbed = List.fold_left (fun acc r -> acc + !r) 0 !absorbed;
    swarm_events = Sim.events_processed sim;
    swarm_sampler;
  }
