module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Series = Aitf_stats.Series
module Rate_meter = Aitf_stats.Rate_meter
module Counter = Aitf_stats.Counter
open Aitf_net
open Aitf_core
open Aitf_topo

type chain_params = {
  spec : Chain.spec;
  config : Config.t;
  seed : int;
  duration : float;
  attack_rate : float;
  attack_start : float;
  legit_rate : float;
  n_non_coop_gws : int;
  attacker_strategy : Policy.attacker_response;
  td : float;
  path_source : Host_agent.path_source;
  traceback : [ `Path_in_request | `Spie | `Ppm ];
  sample_period : float;
  ctrl_faults : Aitf_fault.Fault.model list;
  tail_flap : (float * float) option;
  adversaries : Aitf_adversary.Adversary.playbook list;
  adversary_start : float;
  in_pool_legit_rate : float;
}

let default_chain =
  {
    spec = Chain.default_spec;
    config = Config.default;
    seed = 42;
    duration = 300.;
    attack_rate = 1e6;
    attack_start = 1.;
    legit_rate = 0.;
    n_non_coop_gws = 0;
    attacker_strategy = Policy.Ignores;
    td = 0.1;
    path_source = Host_agent.From_route_record;
    traceback = `Path_in_request;
    sample_period = 0.1;
    ctrl_faults = [];
    tail_flap = None;
    adversaries = [];
    adversary_start = 1.;
    in_pool_legit_rate = 0.;
  }

type chain_result = {
  params : chain_params;
  deployed : Chain.deployed;
  attack_offered_bytes : float;
  attack_received_bytes : float;
  r_measured : float;
  good_offered_bytes : float;
  good_received_bytes : float;
  victim_rate : Series.t;
  escalations : int;
  requests_sent : int;
  requests_retransmitted : int;
  ctrl_retransmits : int;
  ctrl_gave_up : int;
  faults_injected : int;
  adversary_handles : Aitf_adversary.Adversary.t list;
  overload_aggregations : int;
  overload_evictions : int;
  collateral_packets : int;
  collateral_bytes : int;
  sampler : Aitf_obs.Sampler.t option;
}

let counter_total gws name =
  List.fold_left (fun acc gw -> acc + Counter.get (Gateway.counters gw) name) 0
    gws

let run_chain params =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:params.seed in
  let topo = Chain.build sim params.spec in
  let config, path_source =
    match params.traceback with
    | `Path_in_request -> (params.config, params.path_source)
    | `Spie ->
      let spie = Aitf_traceback.Spie.deploy topo.Chain.net in
      ( { params.config with Config.traceback = Config.Spie_query spie },
        Host_agent.Gateway_traceback )
    | `Ppm ->
      let mark_rng = Rng.split rng in
      List.iter
        (fun gw -> Aitf_traceback.Ppm.install ~p:0.2 ~rng:mark_rng gw)
        (topo.Chain.victim_gws @ topo.Chain.attacker_gws);
      ( params.config,
        Host_agent.From_ppm (Aitf_traceback.Ppm.Collector.create ()) )
  in
  let deployed =
    Chain.deploy ~attacker_strategy:params.attacker_strategy
      ~attacker_gw_policies:(Chain.non_cooperating params.n_non_coop_gws)
      ~victim_td:params.td ~path_source ~config ~rng topo
  in
  (* Fault injection on the victim's tail circuit, the congested link every
     control message must cross: [ctrl_faults] hits control packets in both
     directions; [tail_flap] takes the whole circuit down on schedule. Only
     touch the RNG when faults are requested, so fault-free runs replay the
     exact pre-fault event sequence. *)
  let injectors =
    if params.ctrl_faults = [] then []
    else
      let fault_rng = Rng.split rng in
      List.map
        (fun link ->
          Aitf_fault.Fault.inject ~only:Aitf_fault.Fault.ctrl_only
            ~rng:fault_rng sim link params.ctrl_faults)
        [ topo.Chain.victim_tail_up; topo.Chain.victim_tail ]
  in
  (match params.tail_flap with
  | Some (period, down_for) ->
    ignore
      (Aitf_fault.Fault.flap sim
         [ topo.Chain.victim_tail; topo.Chain.victim_tail_up ]
         ~period ~down_for)
  | None -> ());
  (* Protocol-level adversaries. Everything here — the extra nodes, the
     RNG split, the playbooks themselves — happens only when playbooks were
     requested, so adversary-free runs replay the exact pre-adversary event
     sequence. *)
  let spoof_base = Addr.of_octets 20 66 0 0 in
  let adversary_handles, in_pool_client =
    if params.adversaries = [] then ([], None)
    else begin
      let adv_rng = Rng.split rng in
      let net = topo.Chain.net in
      let spec = params.spec in
      let attach gw name addr as_id =
        let n = Network.add_node net ~name ~addr ~as_id Node.Host in
        ignore
          (Network.connect net gw n ~bandwidth:spec.Chain.attacker_tail_bw
             ~delay:spec.Chain.access_delay
             ~queue_capacity:spec.Chain.queue_capacity);
        n
      in
      let g_gw1 = List.hd topo.Chain.victim_gws in
      let b_gw1 = List.hd topo.Chain.attacker_gws in
      (* A compromised client inside the victim's /24 cone, for the
         request-flood playbooks. *)
      let insider = attach g_gw1 "G_insider" (Addr.of_octets 10 0 0 99) 1 in
      (* A legitimate host whose address falls inside the spoofed-source
         pool: the bystander that prefix aggregation can hit — its lost
         traffic is what the collateral-damage estimate measures. *)
      let in_pool =
        if params.in_pool_legit_rate > 0. then
          Some (attach b_gw1 "B_inpool" (Addr.add spoof_base 77) 101)
        else None
      in
      Network.compute_routes net;
      let tap =
        List.nth topo.Chain.attacker_gws
          (min 1 (List.length topo.Chain.attacker_gws - 1))
      in
      let env =
        {
          Aitf_adversary.Adversary.net;
          attacker = topo.Chain.attacker;
          insider;
          tap;
          victim = topo.Chain.victim.Node.addr;
          victim_gw = g_gw1.Node.addr;
          spoof_base;
        }
      in
      ( List.map
          (fun pb ->
            Aitf_adversary.Adversary.launch ~start:params.adversary_start
              ~rng:(Rng.split adv_rng) env pb)
          params.adversaries,
        in_pool )
    end
  in
  let (_in_pool_source : Traffic.t option) =
    Option.map
      (fun node ->
        Traffic.cbr ~start:0. ~flow_id:3 ~rate:params.in_pool_legit_rate
          ~dst:topo.Chain.victim.Node.addr topo.Chain.net node)
      in_pool_client
  in
  let attacker_agent = deployed.Chain.attacker_agent in
  let (_attack_source : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate attacker_agent)
      ~start:params.attack_start ~attack:true ~flow_id:1
      ~rate:params.attack_rate ~dst:topo.Chain.victim.Node.addr topo.Chain.net
      topo.Chain.attacker
  in
  let legit_source =
    if params.legit_rate > 0. then
      Some
        (Traffic.cbr ~start:0. ~flow_id:2 ~rate:params.legit_rate
           ~dst:topo.Chain.victim.Node.addr topo.Chain.net
           topo.Chain.bystander)
    else None
  in
  (* Sample the attack bandwidth the victim experiences. *)
  let victim_rate = Series.create ~name:"victim-attack-rate" () in
  let meter = Host_agent.Victim.attack_meter deployed.Chain.victim_agent in
  let rec sample t =
    if t <= params.duration then
      ignore
        (Sim.at sim t (fun () ->
             Series.add victim_rate ~time:t
               (8. *. Rate_meter.rate meter ~now:t);
             sample (t +. params.sample_period)))
  in
  sample params.sample_period;
  (* When a metrics registry is attached, every component above has already
     self-registered; the sampler adds the sim-level metrics and the
     time-series half of the run report. *)
  let sampler =
    Option.map
      (fun reg -> Aitf_obs.Sampler.start ~interval:params.sample_period sim reg)
      (Aitf_obs.Metrics.attached ())
  in
  Sim.run ~until:params.duration sim;
  let attack_offered_bytes =
    params.attack_rate *. (params.duration -. params.attack_start) /. 8.
  in
  let attack_received_bytes =
    Host_agent.Victim.attack_bytes deployed.Chain.victim_agent
  in
  let good_offered_bytes =
    (match legit_source with
    | Some _ -> params.legit_rate *. params.duration /. 8.
    | None -> 0.)
    +.
    match in_pool_client with
    | Some _ -> params.in_pool_legit_rate *. params.duration /. 8.
    | None -> 0.
  in
  let all_gateways =
    deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways
  in
  let overload_total f =
    List.fold_left
      (fun acc gw ->
        match Gateway.overload gw with
        | Some mgr -> acc + f mgr
        | None -> acc)
      0 all_gateways
  in
  {
    params;
    deployed;
    attack_offered_bytes;
    attack_received_bytes;
    r_measured =
      (if attack_offered_bytes > 0. then
         attack_received_bytes /. attack_offered_bytes
       else 0.);
    good_offered_bytes;
    good_received_bytes =
      Host_agent.Victim.good_bytes deployed.Chain.victim_agent;
    victim_rate;
    escalations = counter_total deployed.Chain.victim_gateways "escalated";
    requests_sent =
      Host_agent.Victim.requests_sent deployed.Chain.victim_agent;
    requests_retransmitted =
      Host_agent.Victim.requests_retransmitted deployed.Chain.victim_agent;
    ctrl_retransmits =
      counter_total
        (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways)
        "ctrl-retransmit";
    ctrl_gave_up =
      counter_total
        (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways)
        "ctrl-gave-up";
    faults_injected =
      List.fold_left
        (fun acc i -> acc + Aitf_fault.Fault.drops_injected i)
        0 injectors;
    adversary_handles;
    overload_aggregations = overload_total Aitf_filter.Overload.aggregations;
    overload_evictions = overload_total Aitf_filter.Overload.evictions;
    collateral_packets = overload_total Aitf_filter.Overload.collateral_packets;
    collateral_bytes = overload_total Aitf_filter.Overload.collateral_bytes;
    sampler;
  }

let time_to_suppress result ~threshold =
  let limit = threshold *. result.params.attack_rate in
  let after_start (t, _) = t >= result.params.attack_start in
  let points = List.filter after_start (Series.points result.victim_rate) in
  (* Find the first point below the limit that is followed by another
     below-limit sample (debounce a single lucky window). *)
  let rec scan = function
    | (t, v) :: ((_, v') :: _ as rest) ->
      if v < limit && v' < limit then Some t else scan rest
    | [ (t, v) ] -> if v < limit then Some t else None
    | [] -> None
  in
  (* Only meaningful once the attack has had a chance to be seen. *)
  let rec drop_until_seen = function
    | (_, v) :: rest when v <= 0. -> drop_until_seen rest
    | l -> l
  in
  scan (drop_until_seen points)

(* --- Distributed flood on the provider hierarchy -------------------------- *)

type flood_params = {
  hierarchy : Hierarchy.spec;
  flood_config : Config.t;
  flood_seed : int;
  flood_duration : float;
  zombies : int;
  zombie_rate : float;
  zombie_strategy : Policy.attacker_response;
  legit_clients : int;
  legit_rate : float;
  attack_start : float;
  with_aitf : bool;
  flood_sample_period : float;
}

let default_flood =
  {
    hierarchy =
      {
        Hierarchy.default_spec with
        Hierarchy.isps = 3;
        nets_per_isp = 3;
        hosts_per_net = 3;
      };
    flood_config = Config.with_timescale Config.default 0.1;
    flood_seed = 42;
    flood_duration = 20.;
    zombies = 12;
    zombie_rate = 1e6;
    zombie_strategy = Policy.Ignores;
    legit_clients = 2;
    legit_rate = 2e5;
    attack_start = 1.;
    with_aitf = true;
    flood_sample_period = 0.25;
  }

type flood_result = {
  flood_params : flood_params;
  hierarchy_deployed : Hierarchy.deployed option;
  victim : Host_agent.Victim.t option;
  zombies_placed : int;
  legit_received_bytes : float;
  legit_offered_bytes : float;
  flood_attack_received_bytes : float;
  leaf_filters : int;
  isp_filters : int;
  flood_sampler : Aitf_obs.Sampler.t option;
}

let run_flood p =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:p.flood_seed in
  let t = Hierarchy.build sim p.hierarchy in
  let config = p.flood_config in
  let deployed =
    if p.with_aitf then Some (Hierarchy.deploy ~config ~rng t) else None
  in
  let victim_node = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
  let victim =
    Option.map
      (fun d -> Hierarchy.attach_victim ~td:0.1 d ~config ~isp:0 ~net:0 ~host:0)
      deployed
  in
  (* Count at the node so the no-AITF baseline measures too; the victim
     agent (when present) re-dispatches data it does not own to this
     handler's predecessor, so install ours first... order matters: this
     wrapper was installed before any agent, so the agent runs first and
     swallows Data; count here only without AITF, through the agent
     otherwise. *)
  let legit = ref 0. and attack = ref 0. in
  (if not p.with_aitf then
     let prev = victim_node.Node.local_deliver in
     victim_node.Node.local_deliver <-
       (fun node (pkt : Packet.t) ->
         (match pkt.Packet.payload with
         | Packet.Data { attack = true; _ } ->
           attack := !attack +. float_of_int pkt.Packet.size
         | Packet.Data _ -> legit := !legit +. float_of_int pkt.Packet.size
         | _ -> ());
         prev node pkt));
  (* Legit clients inside the victim's ISP (excluding the victim's own
     host slot). *)
  let placed_clients = ref 0 in
  (try
     for net = 0 to p.hierarchy.Hierarchy.nets_per_isp - 1 do
       for host = 0 to p.hierarchy.Hierarchy.hosts_per_net - 1 do
         if
           !placed_clients < p.legit_clients && not (net = 0 && host = 0)
         then begin
           incr placed_clients;
           ignore
             (Traffic.cbr ~start:0. ~flow_id:(2000 + !placed_clients)
                ~rate:p.legit_rate ~dst:victim_node.Node.addr t.Hierarchy.net
                (Hierarchy.host t ~isp:0 ~net ~host))
         end
       done
     done
   with Invalid_argument _ -> ());
  (* Zombies round-robin over the other ISPs. *)
  let placed = ref 0 in
  (try
     for isp = 1 to p.hierarchy.Hierarchy.isps - 1 do
       for net = 0 to p.hierarchy.Hierarchy.nets_per_isp - 1 do
         for host = 0 to p.hierarchy.Hierarchy.hosts_per_net - 1 do
           if !placed < p.zombies then begin
             incr placed;
             let gate =
               match deployed with
               | Some d ->
                 let agent =
                   Hierarchy.attach_attacker ~strategy:p.zombie_strategy d
                     ~config ~isp ~net ~host
                 in
                 Host_agent.Attacker.gate agent
               | None -> fun _ -> true
             in
             ignore
               (Traffic.cbr ~gate ~start:p.attack_start ~attack:true
                  ~flow_id:(1000 + !placed) ~rate:p.zombie_rate
                  ~dst:victim_node.Node.addr t.Hierarchy.net
                  (Hierarchy.host t ~isp ~net ~host))
           end
         done
       done
     done
   with Invalid_argument _ -> ());
  let flood_sampler =
    Option.map
      (fun reg ->
        Aitf_obs.Sampler.start ~interval:p.flood_sample_period sim reg)
      (Aitf_obs.Metrics.attached ())
  in
  Sim.run ~until:p.flood_duration sim;
  let filters_at gws =
    Array.fold_left
      (fun acc gw -> acc + Counter.get (Gateway.counters gw) "filter-long")
      0 gws
  in
  let leaf_filters, isp_filters =
    match deployed with
    | None -> (0, 0)
    | Some d ->
      ( Array.fold_left
          (fun acc row -> acc + filters_at row)
          0 d.Hierarchy.net_gateways,
        filters_at d.Hierarchy.isp_gateways )
  in
  let legit_received, attack_received =
    match victim with
    | Some v -> (Host_agent.Victim.good_bytes v, Host_agent.Victim.attack_bytes v)
    | None -> (!legit, !attack)
  in
  {
    flood_params = p;
    hierarchy_deployed = deployed;
    victim;
    zombies_placed = !placed;
    legit_received_bytes = legit_received;
    legit_offered_bytes =
      float_of_int !placed_clients *. p.legit_rate *. p.flood_duration /. 8.;
    flood_attack_received_bytes = attack_received;
    leaf_filters;
    isp_filters;
    flood_sampler;
  }
