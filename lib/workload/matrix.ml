module Json = Aitf_obs.Json
module Span = Aitf_obs.Span
module Profile = Aitf_obs.Profile
module Series = Aitf_stats.Series
module Fault = Aitf_fault.Fault
module Adversary = Aitf_adversary.Adversary
module Auditor = Aitf_contract.Auditor
open Aitf_core

type cell = {
  id : string;
  topo : string;
  engine : string;
  fault : string;
  adversary : string;
  placement : string;
  shards : int;
  smoke : bool;
}

let agreement_threshold = 0.10

let mk ?(fault = "pristine") ?(adversary = "calm") ?(placement = "vanilla")
    ?(shards = 1) ?(smoke = false) topo engine =
  {
    id =
      String.concat "-" [ topo; engine; fault; adversary; placement ]
      ^ (if shards > 1 then Printf.sprintf "-shard%d" shards else "");
    topo;
    engine;
    fault;
    adversary;
    placement;
    shards;
    smoke;
  }

(* The matrix. Chain cells sweep faults and adversaries under both
   engines; flood covers the hierarchy topology; swarm and internet are
   hybrid-only (their populations are out of the packet engine's reach);
   the replay cells drive each synthesized attack shape through both
   engines from the same trace. The two contract cells pin the verifiable
   filtering-contract path (docs/CONTRACTS.md): one all-honest, one with a
   quarter of the attack-side gateways forging receipts. The two shard4
   cells pin the parallel engine's observability seams: the same internet
   run on 4 event-queue shards with span tracing merged canonically, and
   the contract regime with the auditor replaying through the defer
   seam. *)
let cells =
  [
    mk ~smoke:true "chain" "packet";
    mk ~smoke:true "chain" "hybrid";
    mk ~fault:"loss" "chain" "packet";
    mk ~fault:"loss" "chain" "hybrid";
    mk ~fault:"burst" "chain" "packet";
    mk ~fault:"burst" "chain" "hybrid";
    mk ~adversary:"slotx" "chain" "packet";
    mk ~adversary:"slotx" "chain" "hybrid";
    mk "flood" "packet";
    mk "flood" "hybrid";
    mk ~smoke:true "swarm" "hybrid";
    mk "internet" "hybrid";
    mk ~placement:"optimal" "internet" "hybrid";
    mk ~placement:"adaptive" "internet" "hybrid";
    mk ~adversary:"contract" "internet" "hybrid";
    mk ~adversary:"lying" "internet" "hybrid";
    mk ~shards:4 "internet" "hybrid";
    mk ~shards:4 ~adversary:"contract" "internet" "hybrid";
    mk ~smoke:true "replay-pulse" "packet";
    mk ~smoke:true "replay-pulse" "hybrid";
    mk "replay-churn" "packet";
    mk "replay-churn" "hybrid";
    mk "replay-booter" "packet";
    mk "replay-booter" "hybrid";
    mk "replay-carpet" "packet";
    mk "replay-carpet" "hybrid";
  ]

(* --- per-cell scenarios ---------------------------------------------------- *)

let config_engine = function
  | "packet" -> Config.Packet
  | "hybrid" -> Config.Hybrid
  | e -> invalid_arg ("Matrix: unknown engine " ^ e)

let cell_faults = function
  | "pristine" -> []
  | "loss" -> [ Fault.Loss 0.25 ]
  | "burst" -> [ Fault.burst ~p_enter:0.1 ~p_exit:0.4 () ]
  | f -> invalid_arg ("Matrix: unknown fault " ^ f)

let cell_adversaries = function
  | "calm" -> []
  | "slotx" -> [ Adversary.Slot_exhaustion { sources = 32; rate = 4e6 } ]
  | a -> invalid_arg ("Matrix: unknown adversary " ^ a)

let cell_placement = function
  | "vanilla" -> Placement.Vanilla
  | "optimal" -> Placement.Optimal
  | "adaptive" -> Placement.Adaptive
  | p -> invalid_arg ("Matrix: unknown placement " ^ p)

(* A cell's scenario body returns the outcome fields (canonical order —
   they are serialized as given) and the victim-rate series. Outcome keys
   are shared across topologies where the quantity is the same thing
   (attack/good received bytes), so engine pairing can compare them. *)

let fl x = Json.Float x
let it n = Json.Int n

let run_chain_cell cell () =
  let open Scenarios in
  let p =
    {
      default_chain with
      config = { Config.default with Config.engine = config_engine cell.engine };
      seed = 11;
      duration = 12.;
      attack_rate = 20e6;
      legit_rate = 1e6;
      td = 0.1;
      sample_period = 0.5;
      ctrl_faults = cell_faults cell.fault;
      adversaries = cell_adversaries cell.adversary;
      adversary_start = 1.;
      in_pool_legit_rate = (if cell.adversary = "calm" then 0. else 5e5);
    }
  in
  let r = run_chain p in
  let gws =
    r.deployed.Aitf_topo.Chain.victim_gateways
    @ r.deployed.Aitf_topo.Chain.attacker_gateways
  in
  ( [
      ("attack_offered_bytes", fl r.attack_offered_bytes);
      ("attack_received_bytes", fl r.attack_received_bytes);
      ("good_offered_bytes", fl r.good_offered_bytes);
      ("good_received_bytes", fl r.good_received_bytes);
      ("r_measured", fl r.r_measured);
      ("escalations", it r.escalations);
      ("requests_sent", it r.requests_sent);
      ("filters", it (counter_total gws "filter-temp"
                      + counter_total gws "filter-long"));
      ("faults_injected", it r.faults_injected);
      ("collateral_packets", it r.collateral_packets);
      ("events", it r.events_processed);
    ],
    r.victim_rate )

let run_flood_cell cell () =
  let open Scenarios in
  let p =
    {
      default_flood with
      flood_config =
        {
          (Config.with_timescale Config.default 0.1) with
          Config.engine = config_engine cell.engine;
        };
      flood_duration = 10.;
      zombies = 6;
      flood_sample_period = 0.5;
    }
  in
  let r = run_flood p in
  ( [
      ("attack_received_bytes", fl r.flood_attack_received_bytes);
      ("good_offered_bytes", fl r.legit_offered_bytes);
      ("good_received_bytes", fl r.legit_received_bytes);
      ("zombies_placed", it r.zombies_placed);
      ("leaf_filters", it r.leaf_filters);
      ("isp_filters", it r.isp_filters);
      ("events", it r.flood_events);
    ],
    Series.create ~name:"victim-attack-rate" () )

let run_swarm_cell _cell () =
  let open Scenarios in
  let p =
    {
      default_swarm with
      swarm_duration = 10.;
      swarm_sources = 512;
      swarm_pools = 2;
      swarm_sample_period = 0.5;
    }
  in
  let r = run_swarm p in
  ( [
      ("attack_received_bytes", fl r.swarm_attack_received_bytes);
      ("good_offered_bytes", fl r.swarm_good_offered_bytes);
      ("good_received_bytes", fl r.swarm_good_received_bytes);
      ("requests_sent", it r.swarm_requests_sent);
      ("filters", it r.swarm_filters);
      ("absorbed", it r.swarm_absorbed);
      ("events", it r.swarm_events);
    ],
    r.swarm_victim_rate )

let run_internet_cell ?(shards = 1) cell () =
  let open As_scenario in
  let contracts = cell.adversary = "contract" || cell.adversary = "lying" in
  let p =
    if not contracts then
      {
        default with
        as_spec =
          {
            Aitf_topo.As_graph.default_spec with
            Aitf_topo.As_graph.domains = 150;
            tier1 = 3;
          };
        as_config =
          {
            Config.default with
            Config.engine = Config.Hybrid;
            placement = cell_placement cell.placement;
          };
        as_seed = 9;
        as_duration = 10.;
        as_sources = 20_000;
        as_attack_domains = 8;
        as_legit_domains = 4;
        as_legit_sources = 2_000;
        as_sample_period = 0.5;
      }
    else
      (* The contract cells run docs/CONTRACTS.md's verification regime:
         a small graph whose victim gateway is capacity-constrained (so
         misbehaviour is visible at the victim) and the fast audit
         clock. The lying cell corrupts a quarter of the attack-side
         gateways to forge receipts — the affirmative-evidence mode the
         auditor must catch with zero false positives. *)
      {
        default with
        as_spec =
          {
            Aitf_topo.As_graph.default_spec with
            Aitf_topo.As_graph.domains = 60;
          };
        as_config =
          {
            Config.default with
            Config.engine = Config.Hybrid;
            placement = cell_placement cell.placement;
            filter_capacity = 150;
          };
        as_seed = 42;
        as_duration = 15.;
        as_sources = 400;
        as_attack_domains = 8;
        as_legit_domains = 4;
        as_sample_period = 0.5;
        as_contracts = true;
        as_byzantine_fraction = (if cell.adversary = "lying" then 0.25 else 0.);
        as_lying_mode = Adversary.Forge;
        as_audit = { Auditor.default_config with deadline = 0.75; grace = 0.35 };
      }
  in
  let r = run { p with as_shards = shards } in
  let base =
    [
      ("attack_received_bytes", fl r.r_attack_received_bytes);
      ("good_offered_bytes", fl r.r_good_offered_bytes);
      ("good_received_bytes", fl r.r_good_received_bytes);
      ("collateral_fraction", fl r.r_collateral_fraction);
      ( "time_to_filter",
        match r.r_time_to_filter with Some t -> fl t | None -> Json.Null );
      ("slots_peak", it r.r_slots_peak);
      ("filters_installed", it r.r_filters_installed);
      ("requests_sent", it r.r_requests_sent);
      ("reports", it r.r_reports);
      ("absorbed", it r.r_absorbed);
      ("events", it r.r_events);
    ]
  in
  let outcome =
    match r.r_auditor with
    | None -> base
    | Some a ->
      let byz = List.map snd r.r_byzantine in
      let flagged = Auditor.flagged a in
      let missed = List.filter (fun b -> not (List.mem b flagged)) byz in
      let false_pos = List.filter (fun g -> not (List.mem g byz)) flagged in
      base
      @ [
          ("byzantine", it (List.length byz));
          ("flagged", it (List.length flagged));
          ("missed", it (List.length missed));
          ("false_positives", it (List.length false_pos));
          ("receipts_verified", it (Auditor.receipts_verified a));
          ("receipts_rejected", it (Auditor.receipts_rejected a));
          ("failovers", it r.r_failovers);
        ]
  in
  (outcome, r.r_victim_rate)

(* Synthesized traces carry only attack pools; splice in a constant
   1 Mbit/s legit pool so the engine-agreement gate below has the same
   goodput observable E17 uses. *)
let with_legit trace =
  let legit =
    {
      Replay.p_id = "legit";
      p_base = Aitf_net.Addr.of_octets 200 0 0 0;
      p_n = 4;
      p_rate = 250e3;
      p_attack = false;
    }
  in
  {
    trace with
    Replay.tr_pools = trace.Replay.tr_pools @ [ legit ];
    tr_events =
      { Replay.ev_time = 0.; ev_pool = "legit"; ev_action = Replay.On }
      :: trace.Replay.tr_events;
  }

let replay_trace shape =
  with_legit
    (match shape with
    | "replay-pulse" ->
      Replay.synth_pulse ~pools:2 ~seed:5 ~duration:12. ~rate:20e6 ~n:32 ()
    | "replay-churn" ->
      Replay.synth_churn ~seed:5 ~duration:12. ~rate:20e6 ~n:64 ()
    | "replay-booter" ->
      Replay.synth_booter ~seed:5 ~duration:12. ~rate:25e6 ~n:48 ()
    | "replay-carpet" ->
      Replay.synth_carpet ~seed:5 ~duration:12. ~rate:20e6 ~n:16 ()
    | t -> invalid_arg ("Matrix: unknown replay shape " ^ t))

let run_replay_cell cell () =
  let trace = replay_trace cell.topo in
  let engine =
    match cell.engine with "packet" -> `Packet | _ -> `Hybrid
  in
  let r = Replay.run ~engine trace in
  ( [
      ("trace", Json.String (Replay.to_string trace));
      ("attack_offered_bytes", fl r.Replay.rr_attack_offered_bytes);
      ("attack_received_bytes", fl r.Replay.rr_attack_received_bytes);
      ("good_offered_bytes", fl r.Replay.rr_good_offered_bytes);
      ("good_received_bytes", fl r.Replay.rr_good_received_bytes);
      ("requests_sent", it r.Replay.rr_requests_sent);
      ("filters", it r.Replay.rr_filters);
      ("absorbed", it r.Replay.rr_absorbed);
      ("events", it r.Replay.rr_events);
    ],
    r.Replay.rr_victim_rate )

let cell_body ?shards cell =
  match cell.topo with
  | "chain" -> run_chain_cell cell
  | "flood" -> run_flood_cell cell
  | "swarm" -> run_swarm_cell cell
  | "internet" -> run_internet_cell ?shards cell
  | t when String.length t > 7 && String.sub t 0 7 = "replay-" ->
    run_replay_cell cell
  | t -> invalid_arg ("Matrix: unknown topology " ^ t)

(* --- documents ------------------------------------------------------------- *)

let span_digest sp =
  let roots = Span.roots sp in
  let completed = Span.completed_roots sp in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let detail (r : Span.root) =
    Json.Obj
      [
        ("corr", it r.Span.corr);
        ("flow", Json.String r.Span.flow);
        ("opened_at", fl r.Span.opened_at);
        ( "completed_at",
          match r.Span.completed_at with Some t -> fl t | None -> Json.Null );
        ("spans", it (List.length (Span.spans_of r)));
      ]
  in
  Json.Obj
    [
      ("roots", it (List.length roots));
      ("completed", it (List.length completed));
      ("detail", Json.List (List.map detail (take 20 roots)));
    ]

let doc_of cell outcome series sp =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "aitf.matrix-cell/1");
        ("id", Json.String cell.id);
        ( "dims",
          Json.Obj
            ([
               ("topo", Json.String cell.topo);
               ("engine", Json.String cell.engine);
               ("fault", Json.String cell.fault);
               ("adversary", Json.String cell.adversary);
               ("placement", Json.String cell.placement);
             ]
            (* Only sharded cells carry the dimension, so every 1-shard
               golden stays byte-identical to its pre-sharding form. *)
            @ if cell.shards > 1 then [ ("shards", it cell.shards) ] else []) );
        ("outcome", Json.Obj outcome);
        ( "victim_rate",
          Json.List
            (List.map
               (fun (t, v) -> Json.List [ fl t; fl v ])
               (Series.points series)) );
        ("spans", span_digest sp);
      ]
  in
  Json.to_string doc ^ "\n"

(* --- execution ------------------------------------------------------------- *)

type perf = {
  wall : float;
  alloc_bytes : float;
  peak_queue : int;
  engine_events : int;
}

type status = Match | Drift | Missing | Blessed

type cell_result = {
  cr_cell : cell;
  cr_doc : string;
  cr_outcome : (string * Json.t) list;
  cr_perf : perf;
  cr_digest : string;
  cr_status : status;
}

type pair = {
  pr_base : string;
  pr_metric : string;
  pr_packet : float;
  pr_hybrid : float;
  pr_diff : float;
  pr_gated : bool;
  pr_ok : bool;
}

type summary = {
  s_results : cell_result list;
  s_pairs : pair list;
  s_drifted : int;
  s_disagreements : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* One cell, instrumented: fresh span collector (corr ids rewound so the
   digest is order-independent), the engine profiler for queue depth and
   event count, GC delta and the caller's clock for the perf trajectory.
   Spans are always collected — sharded internet cells record into
   per-shard collectors (workers mint on per-shard id strides) that
   As_scenario merges canonically back into [sp], so the document's span
   section and [cr_digest] are real fingerprints at any shard count. *)
let run_cell ?(shards = 1) ~clock cell =
  (* A cell pinned to a shard count keeps it; the caller's --shards
     overrides only the unpinned (1-shard) cells. *)
  let shards = if shards > 1 then shards else cell.shards in
  Span.reset_mint ();
  let sp = Span.create () in
  Span.attach sp;
  let prof = Profile.create () in
  Profile.attach prof;
  let a0 = Gc.allocated_bytes () in
  let t0 = clock () in
  let outcome, series =
    Fun.protect
      ~finally:(fun () ->
        Profile.detach ();
        Span.detach ())
      (cell_body ~shards cell)
  in
  let wall = clock () -. t0 in
  let alloc_bytes = Gc.allocated_bytes () -. a0 in
  let doc = doc_of cell outcome series sp in
  {
    cr_cell = cell;
    cr_doc = doc;
    cr_outcome = outcome;
    cr_perf =
      {
        wall;
        alloc_bytes;
        peak_queue = Profile.peak_pending prof;
        engine_events = Profile.events prof;
      };
    cr_digest = Span.digest sp;
    cr_status = Match (* provisional; the golden compare overwrites it *);
  }

let outcome_float result key =
  match List.assoc_opt key result.cr_outcome with
  | Some j -> Json.get_float j
  | None -> None

(* Engine pairs: cells identical in every dimension but the engine. As
   in E17, the gate counts goodput — the attack transient before filters
   install is a few packets wide and intrinsically engine-sensitive, so
   attack bytes are reported but informational. The gate also only
   counts pristine, adversary-free pairs: fault draws ride
   engine-specific packet streams, so faulted pairs are informational
   too. *)
let pair_up results =
  let find id = List.find_opt (fun r -> r.cr_cell.id = id) results in
  List.concat_map
    (fun r ->
      let c = r.cr_cell in
      if c.engine <> "packet" then []
      else
        let sibling =
          String.concat "-"
            [ c.topo; "hybrid"; c.fault; c.adversary; c.placement ]
        in
        match find sibling with
        | None -> []
        | Some h ->
          let pristine = c.fault = "pristine" && c.adversary = "calm" in
          List.filter_map
            (fun metric ->
              match (outcome_float r metric, outcome_float h metric) with
              | Some p, Some hv ->
                let denom = Float.max (Float.abs p) (Float.abs hv) in
                let diff =
                  if denom <= 0. then 0. else Float.abs (p -. hv) /. denom
                in
                let gated = pristine && metric = "good_received_bytes" in
                Some
                  {
                    pr_base =
                      String.concat "-" [ c.topo; c.fault; c.adversary;
                                          c.placement ];
                    pr_metric = metric;
                    pr_packet = p;
                    pr_hybrid = hv;
                    pr_diff = diff;
                    pr_gated = gated;
                    pr_ok = (not gated) || diff <= agreement_threshold;
                  }
              | _ -> None)
            [ "good_received_bytes"; "attack_received_bytes" ])
    results

let run ?(clock = Sys.time) ?(only = []) ?(smoke = false) ?(bless = false)
    ?(shards = 1) ~goldens_dir () =
  if shards < 1 then invalid_arg "Matrix.run: shards must be >= 1";
  let selected =
    List.filter
      (fun c ->
        (only = [] || List.mem c.id only) && ((not smoke) || c.smoke))
      cells
  in
  if bless && not (Sys.file_exists goldens_dir) then Sys.mkdir goldens_dir 0o755;
  let results =
    List.map
      (fun c ->
        let r = run_cell ~shards ~clock c in
        let path = Filename.concat goldens_dir (c.id ^ ".json") in
        let status =
          if bless then begin
            write_file path r.cr_doc;
            Blessed
          end
          else if not (Sys.file_exists path) then Missing
          else if read_file path = r.cr_doc then Match
          else Drift
        in
        { r with cr_status = status })
      selected
  in
  let pairs = pair_up results in
  {
    s_results = results;
    s_pairs = pairs;
    s_drifted =
      List.length
        (List.filter
           (fun r -> r.cr_status = Drift || r.cr_status = Missing)
           results);
    s_disagreements =
      List.length (List.filter (fun p -> p.pr_gated && not p.pr_ok) pairs);
  }

(* --- reporting ------------------------------------------------------------- *)

let status_name = function
  | Match -> "match"
  | Drift -> "DRIFT"
  | Missing -> "MISSING"
  | Blessed -> "blessed"

let print_summary s =
  Printf.printf "%-42s %-8s %9s %9s %7s %9s\n" "cell" "golden" "wall (s)"
    "alloc MB" "peak q" "events";
  List.iter
    (fun r ->
      Printf.printf "%-42s %-8s %9.2f %9.1f %7d %9d\n" r.cr_cell.id
        (status_name r.cr_status) r.cr_perf.wall
        (r.cr_perf.alloc_bytes /. 1e6)
        r.cr_perf.peak_queue r.cr_perf.engine_events)
    s.s_results;
  if s.s_pairs <> [] then begin
    Printf.printf "\n%-34s %-22s %12s %12s %7s %s\n" "engine pair" "metric"
      "packet" "hybrid" "diff %" "verdict";
    List.iter
      (fun p ->
        Printf.printf "%-34s %-22s %12.0f %12.0f %7.1f %s\n" p.pr_base
          p.pr_metric p.pr_packet p.pr_hybrid (100. *. p.pr_diff)
          (if not p.pr_gated then "info"
           else if p.pr_ok then "AGREE"
           else "DISAGREE"))
      s.s_pairs
  end;
  Printf.printf "\n%d cells, %d drifted, %d disagreements\n"
    (List.length s.s_results) s.s_drifted s.s_disagreements

let bench_json s =
  Json.Obj
    [
      ("schema", Json.String "aitf.matrix-bench/1");
      ( "cells",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("id", Json.String r.cr_cell.id);
                   ("wall_seconds", fl r.cr_perf.wall);
                   ("alloc_bytes", fl r.cr_perf.alloc_bytes);
                   ("peak_queue_depth", it r.cr_perf.peak_queue);
                   ("engine_events", it r.cr_perf.engine_events);
                   ("span_digest", Json.String r.cr_digest);
                   ("golden", Json.String (status_name r.cr_status));
                 ])
             s.s_results) );
      ( "total_wall_seconds",
        fl
          (List.fold_left
             (fun acc r -> acc +. r.cr_perf.wall)
             0. s.s_results) );
      ("drifted", it s.s_drifted);
      ("disagreements", it s.s_disagreements);
    ]
