(** Traffic generation.

    Sources inject packets from a node towards a destination. Every source
    consults an optional {e gate} before each packet — the hook through
    which a compliant attacker host's own filters (see
    {!Aitf_core.Host_agent.Attacker.gate}) or an on-off strategy throttle
    it. Sources can spoof their header source address per packet and mark
    their packets as attack traffic (scenario ground truth for the victim's
    detector).

    Two arrival processes are provided: constant bit rate and Poisson. *)

open Aitf_net
open Aitf_filter

type t

val cbr :
  ?gate:(Packet.t -> bool) ->
  ?spoof:(unit -> Addr.t option) ->
  ?start:float ->
  ?stop:float ->
  ?pkt_size:int ->
  ?attack:bool ->
  flow_id:int ->
  rate:float ->
  dst:Addr.t ->
  Network.t ->
  Node.t ->
  t
(** Constant bit rate: [rate] bits/s in [pkt_size]-byte packets (default
    1000 B), from [start] (default 0) until [stop] (default: forever).
    [attack] (default false) marks packets as undesired. *)

val poisson :
  ?gate:(Packet.t -> bool) ->
  ?spoof:(unit -> Addr.t option) ->
  ?start:float ->
  ?stop:float ->
  ?pkt_size:int ->
  ?attack:bool ->
  rng:Aitf_engine.Rng.t ->
  flow_id:int ->
  rate:float ->
  dst:Addr.t ->
  Network.t ->
  Node.t ->
  t
(** Poisson arrivals with mean rate [rate] bits/s. *)

val halt : t -> unit
(** Stop generating permanently, cancelling the pending emission event. *)

val flow_id : t -> int
val sent_packets : t -> int
val sent_bytes : t -> int

val gated_packets : t -> int
(** Packets the gate suppressed. *)

val label : t -> src:Addr.t -> Flow_label.t
(** The flow label this source's packets carry, given the header source it
    uses ([src] is the node address unless spoofing). *)
