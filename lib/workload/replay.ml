module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Series = Aitf_stats.Series
module Rate_meter = Aitf_stats.Rate_meter
module Fluid = Aitf_flowsim.Fluid
module Sampler = Aitf_flowsim.Sampler
module Json = Aitf_obs.Json
open Aitf_net
open Aitf_core
open Aitf_topo

(* --- traces ---------------------------------------------------------------- *)

type pool = {
  p_id : string;
  p_base : Addr.t;
  p_n : int;
  p_rate : float;  (* bits/s per source *)
  p_attack : bool;
}

type action = On | Off | Join of int | Leave of int
type event = { ev_time : float; ev_pool : string; ev_action : action }

type trace = {
  tr_seed : int;
  tr_duration : float;
  tr_pools : pool list;
  tr_events : event list;
}

let equal (a : trace) (b : trace) = a = b

(* --- codec ----------------------------------------------------------------- *)

let magic = "aitf-replay/1"

(* Canonical text: fixed field order, floats through the report codec's
   shortest-roundtrip printer, one line per declaration/event — so
   serializing is a bijection on parsed traces and goldens containing a
   trace are byte-stable. *)
let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s seed=%d duration=%s\n" magic t.tr_seed
       (Json.float_repr t.tr_duration));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "pool %s base=%s n=%d rate=%s attack=%b\n" p.p_id
           (Addr.to_string p.p_base) p.p_n (Json.float_repr p.p_rate)
           p.p_attack))
    t.tr_pools;
  List.iter
    (fun e ->
      let act =
        match e.ev_action with
        | On -> "on"
        | Off -> "off"
        | Join k -> Printf.sprintf "join %d" k
        | Leave k -> Printf.sprintf "leave %d" k
      in
      Buffer.add_string buf
        (Printf.sprintf "at %s %s %s\n" (Json.float_repr e.ev_time) e.ev_pool
           act))
    t.tr_events;
  Buffer.contents buf

exception Bad of string

let parse text =
  let fail ln msg = raise (Bad (Printf.sprintf "line %d: %s" ln msg)) in
  let kv ln key tok =
    match String.index_opt tok '=' with
    | Some i when String.sub tok 0 i = key ->
      String.sub tok (i + 1) (String.length tok - i - 1)
    | _ -> fail ln (Printf.sprintf "expected %s=..., got %S" key tok)
  in
  let int_of ln what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail ln (Printf.sprintf "bad %s %S" what s)
  in
  let float_of ln what s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> v
    | _ -> fail ln (Printf.sprintf "bad %s %S" what s)
  in
  let bool_of ln what s =
    match bool_of_string_opt s with
    | Some v -> v
    | None -> fail ln (Printf.sprintf "bad %s %S" what s)
  in
  let header = ref None in
  let pools = ref [] in
  let events = ref [] in
  let last_t = ref 0. in
  let parse_line ln line =
    match
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    with
    | [] -> ()
    | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> ()
    | m :: rest when m = magic ->
      if !header <> None then fail ln "duplicate header";
      (match rest with
      | [ s; d ] ->
        let seed = int_of ln "seed" (kv ln "seed" s) in
        let duration = float_of ln "duration" (kv ln "duration" d) in
        if duration <= 0. then fail ln "duration must be positive";
        header := Some (seed, duration)
      | _ -> fail ln "header wants: seed=<int> duration=<float>")
    | "pool" :: id :: rest ->
      if !header = None then fail ln "pool before header";
      if List.exists (fun p -> p.p_id = id) !pools then
        fail ln (Printf.sprintf "duplicate pool %S" id);
      (match rest with
      | [ b; n; r; a ] ->
        let base =
          let s = kv ln "base" b in
          try Addr.of_string s
          with _ -> fail ln (Printf.sprintf "bad base %S" s)
        in
        let n = int_of ln "n" (kv ln "n" n) in
        if n < 1 then fail ln "n must be >= 1";
        let rate = float_of ln "rate" (kv ln "rate" r) in
        if rate < 0. then fail ln "rate must be >= 0";
        let attack = bool_of ln "attack" (kv ln "attack" a) in
        pools :=
          { p_id = id; p_base = base; p_n = n; p_rate = rate;
            p_attack = attack }
          :: !pools
      | _ -> fail ln "pool wants: base=<addr> n=<int> rate=<float> attack=<bool>")
    | "at" :: t :: id :: rest ->
      if !header = None then fail ln "event before header";
      if not (List.exists (fun p -> p.p_id = id) !pools) then
        fail ln (Printf.sprintf "event names undeclared pool %S" id);
      let t = float_of ln "time" t in
      if t < 0. then fail ln "time must be >= 0";
      if t < !last_t then fail ln "timestamps must be non-decreasing";
      last_t := t;
      let action =
        match rest with
        | [ "on" ] -> On
        | [ "off" ] -> Off
        | [ "join"; k ] ->
          let k = int_of ln "join count" k in
          if k < 1 then fail ln "join count must be >= 1";
          Join k
        | [ "leave"; k ] ->
          let k = int_of ln "leave count" k in
          if k < 1 then fail ln "leave count must be >= 1";
          Leave k
        | _ -> fail ln "action wants: on | off | join <k> | leave <k>"
      in
      events := { ev_time = t; ev_pool = id; ev_action = action } :: !events
    | tok :: _ -> fail ln (Printf.sprintf "unknown directive %S" tok)
  in
  try
    List.iteri
      (fun i line -> parse_line (i + 1) line)
      (String.split_on_char '\n' text);
    match !header with
    | None -> Error "missing header line"
    | Some (tr_seed, tr_duration) ->
      Ok
        {
          tr_seed;
          tr_duration;
          tr_pools = List.rev !pools;
          tr_events = List.rev !events;
        }
  with Bad msg -> Error msg

(* --- synthesizers ---------------------------------------------------------- *)

(* Pool j's sources live in their own /12 (32.0.0.0, 32.16.0.0, ...) so
   multi-pool traces walk disjoint prefix ranges — the same address plan
   as the swarm scenario. *)
let synth_base j = Addr.of_octets 32 (16 * j) 0 0

let synth_pool ?(attack = true) ~rate ~n j id =
  {
    p_id = Printf.sprintf "%s%d" id j;
    p_base = synth_base j;
    p_n = n;
    p_rate = rate /. float_of_int n;
    p_attack = attack;
  }

(* Events are generated per pool then merged; the stable sort keeps the
   pool order on simultaneous timestamps, so the trace (and everything
   downstream) is a pure function of the arguments. *)
let merge_events evs =
  List.stable_sort (fun a b -> Float.compare a.ev_time b.ev_time) evs

let synth_pulse ?(pools = 1) ?(period = 4.) ?(duty = 0.5) ~seed ~duration
    ~rate ~n () =
  let rng = Rng.create ~seed in
  let evs = ref [] in
  let ps =
    List.init pools (fun j ->
        let p = synth_pool ~rate ~n j "pulse" in
        let phase = Rng.float (Rng.split rng) period in
        let t = ref phase in
        while !t < duration do
          evs := { ev_time = !t; ev_pool = p.p_id; ev_action = On } :: !evs;
          let off = !t +. (duty *. period) in
          if off < duration then
            evs :=
              { ev_time = off; ev_pool = p.p_id; ev_action = Off } :: !evs;
          t := !t +. period
        done;
        p)
  in
  {
    tr_seed = seed;
    tr_duration = duration;
    tr_pools = ps;
    tr_events = merge_events (List.rev !evs);
  }

let synth_churn ?(mean_gap = 0.5) ~seed ~duration ~rate ~n () =
  let rng = Rng.create ~seed in
  let p = synth_pool ~rate ~n 0 "churn" in
  let evs = ref [ { ev_time = 1.0; ev_pool = p.p_id; ev_action = On } ] in
  let t = ref 1.0 in
  let cohort = Int.max 1 (n / 4) in
  let continue = ref true in
  while !continue do
    t := !t +. Rng.exponential rng ~rate:(1. /. mean_gap);
    if !t >= duration then continue := false
    else begin
      let k = 1 + Rng.int rng cohort in
      let action = if Rng.bool rng then Join k else Leave k in
      evs := { ev_time = !t; ev_pool = p.p_id; ev_action = action } :: !evs
    end
  done;
  {
    tr_seed = seed;
    tr_duration = duration;
    tr_pools = [ p ];
    tr_events = List.rev !evs;
  }

let synth_booter ?(bursts = 4) ?(burst_len = 2.) ~seed ~duration ~rate ~n ()
    =
  let rng = Rng.create ~seed in
  let p = synth_pool ~rate ~n 0 "boot" in
  let horizon = Float.max burst_len (duration -. burst_len) in
  let starts =
    List.init bursts (fun _ -> 1. +. Rng.float rng (horizon -. 1.))
    |> List.sort Float.compare
  in
  (* Coalesce overlapping salvos so on/off pairs nest cleanly. *)
  let rec intervals = function
    | [] -> []
    | s :: rest ->
      let e = s +. burst_len in
      let rec absorb e = function
        | s' :: rest when s' <= e -> absorb (Float.max e (s' +. burst_len)) rest
        | rest -> (e, rest)
      in
      let e, rest = absorb e rest in
      (s, e) :: intervals rest
  in
  let evs =
    List.concat_map
      (fun (s, e) ->
        { ev_time = s; ev_pool = p.p_id; ev_action = On }
        ::
        (if e < duration then
           [ { ev_time = e; ev_pool = p.p_id; ev_action = Off } ]
         else []))
      (intervals starts)
  in
  { tr_seed = seed; tr_duration = duration; tr_pools = [ p ]; tr_events = evs }

let synth_carpet ?(pools = 4) ?(slot = 3.) ~seed ~duration ~rate ~n () =
  let rng = Rng.create ~seed in
  let ps = List.init pools (fun j -> synth_pool ~rate ~n j "car") in
  let order = Array.init pools (fun j -> j) in
  Rng.shuffle rng order;
  let ids = Array.of_list (List.map (fun p -> p.p_id) ps) in
  let evs = ref [] in
  let t = ref 1.0 in
  let s = ref 0 in
  while !t < duration do
    let cur = ids.(order.(!s mod pools)) in
    if !s > 0 then begin
      let prev = ids.(order.((!s - 1) mod pools)) in
      evs := { ev_time = !t; ev_pool = prev; ev_action = Off } :: !evs
    end;
    evs := { ev_time = !t; ev_pool = cur; ev_action = On } :: !evs;
    incr s;
    t := !t +. slot
  done;
  {
    tr_seed = seed;
    tr_duration = duration;
    tr_pools = ps;
    tr_events = List.rev !evs;
  }

(* --- analytic offered load ------------------------------------------------- *)

let offered_bytes trace ~attack =
  List.fold_left
    (fun acc p ->
      if p.p_attack <> attack then acc
      else begin
        let bits = ref 0. in
        let sending = ref false in
        let active = ref p.p_n in
        let last = ref 0. in
        let step t =
          if !sending then
            bits :=
              !bits
              +. (float_of_int !active *. p.p_rate *. (t -. !last));
          last := t
        in
        List.iter
          (fun e ->
            if e.ev_pool = p.p_id && e.ev_time < trace.tr_duration then begin
              step e.ev_time;
              match e.ev_action with
              | On -> sending := true
              | Off -> sending := false
              | Join k -> active := Int.min p.p_n (!active + k)
              | Leave k -> active := Int.max 0 (!active - k)
            end)
          trace.tr_events;
        step trace.tr_duration;
        acc +. (!bits /. 8.)
      end)
    0. trace.tr_pools

(* --- running --------------------------------------------------------------- *)

type engine = [ `Packet | `Hybrid ]

type result = {
  rr_trace : trace;
  rr_engine : engine;
  rr_attack_offered_bytes : float;
  rr_attack_received_bytes : float;
  rr_good_offered_bytes : float;
  rr_good_received_bytes : float;
  rr_requests_sent : int;
  rr_filters : int;
  rr_absorbed : int;
  rr_events : int;
  rr_victim_rate : Series.t;
}

(* Smallest prefix covering the pool's contiguous source range — what the
   pool node advertises so reverse control traffic routes back to it. *)
let cover p =
  let last = Addr.add p.p_base (p.p_n - 1) in
  let len = ref 32 in
  while !len > 0 && not (Addr.prefix_mem (Addr.prefix p.p_base !len) last) do
    decr len
  done;
  Addr.prefix p.p_base !len

(* Live membership of one pool as the run unfolds. Sources 0..live-1 are
   the ones on the wire, under both engines: the packet gate admits
   spoofed indices below [live], the fluid plane unblocks exactly those
   stage-0 gates. *)
type pstate = { mutable sending : bool; mutable active : int; mutable live : int }

let effective st = if st.sending then st.active else 0

let run ?(spec = Chain.default_spec) ?(config = Config.default) ?(td = 0.1)
    ?(sample_period = 0.5) ~engine trace =
  List.iter
    (fun p ->
      if p.p_n > 1 lsl 20 then
        invalid_arg "Replay.run: pool larger than 2^20 sources")
    trace.tr_pools;
  let sim = Sim.create () in
  let rng = Rng.create ~seed:trace.tr_seed in
  let topo = Chain.build sim spec in
  let net = topo.Chain.net in
  let pools = Array.of_list trace.tr_pools in
  let attacker_gws = Array.of_list topo.Chain.attacker_gws in
  let total_rate =
    Array.fold_left
      (fun acc p -> acc +. (p.p_rate *. float_of_int p.p_n))
      0. pools
  in
  let pool_bw = Float.max spec.Chain.core_bw (2. *. total_rate) in
  let nodes =
    Array.mapi
      (fun j p ->
        let nd =
          Network.add_node net
            ~name:(Printf.sprintf "replay-%s" p.p_id)
            ~addr:(Addr.of_octets 31 0 0 (j + 1))
            ~as_id:(5000 + j) Node.Host
        in
        nd.Node.advertised <-
          [
            (Addr.host_prefix nd.Node.addr, Node.Global);
            (cover p, Node.Global);
          ];
        ignore
          (Network.connect net
             attacker_gws.(j mod Array.length attacker_gws)
             nd ~bandwidth:pool_bw ~delay:spec.Chain.access_delay
             ~queue_capacity:spec.Chain.queue_capacity);
        nd)
      pools
  in
  Network.compute_routes net;
  let config =
    {
      config with
      Config.engine =
        (match engine with `Packet -> Config.Packet | `Hybrid -> Config.Hybrid);
    }
  in
  let deployed = Chain.deploy ~victim_td:td ~config ~rng topo in
  let victim_addr = topo.Chain.victim.Node.addr in
  let absorbed = Array.map Fluid_bridge.absorb_pool_requests nodes in
  let states =
    Array.map (fun p -> { sending = false; active = p.p_n; live = 0 }) pools
  in
  (* Engine-specific data plane; [apply j] re-syncs pool j's wire state
     after a membership event. *)
  let fluid_ctx, apply =
    match engine with
    | `Hybrid ->
      let eng = Fluid.create ~epoch:config.Config.hybrid_epoch net in
      List.iter
        (fun gw ->
          Fluid.attach_table eng ~node:(Gateway.node gw) (Gateway.filters gw))
        (deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways);
      let frng = Rng.split rng in
      let probe_rate =
        let r = config.Config.hybrid_probe_rate in
        if r > 0. then Some r else None
      in
      let aggs =
        Array.mapi
          (fun j p ->
            let agg =
              Fluid.add_aggregate eng ~flow_id:(1000 + j) ~origin:nodes.(j)
                ~src_base:p.p_base ~n:p.p_n
                ~rate:(p.p_rate *. float_of_int p.p_n)
                ~dst:victim_addr ~attack:p.p_attack ~start:0.
            in
            (* Everyone starts off the wire; events open the gates. *)
            for i = 0 to p.p_n - 1 do
              Fluid.set_block eng agg ~idx:i ~stage:0 true
            done;
            if p.p_attack then
              ignore
                (Sampler.attach ?rate:probe_rate ~rng:(Rng.split frng) eng agg);
            agg)
          pools
      in
      let apply j =
        let st = states.(j) in
        let e = Int.min pools.(j).p_n (effective st) in
        if e > st.live then
          for i = st.live to e - 1 do
            Fluid.set_block eng aggs.(j) ~idx:i ~stage:0 false
          done
        else if e < st.live then
          for i = e to st.live - 1 do
            Fluid.set_block eng aggs.(j) ~idx:i ~stage:0 true
          done;
        st.live <- e
      in
      (Some eng, apply)
    | `Packet ->
      let counters = Array.make (Array.length pools) 0 in
      Array.iteri
        (fun j p ->
          let st = states.(j) in
          let spoof () =
            let i = counters.(j) mod p.p_n in
            counters.(j) <- counters.(j) + 1;
            Some (Addr.add p.p_base i)
          in
          (* The spoofed header index decides membership: round-robin
             spoofing makes the admitted rate exactly proportional to the
             live count over every n-packet cycle. *)
          let gate pkt =
            st.live > 0
            && Int32.to_int (Int32.sub pkt.Packet.src p.p_base) < st.live
          in
          ignore
            (Traffic.cbr ~gate ~spoof ~start:0. ~attack:p.p_attack
               ~flow_id:(1000 + j)
               ~rate:(p.p_rate *. float_of_int p.p_n)
               ~dst:victim_addr net nodes.(j)))
        pools;
      let apply j =
        let st = states.(j) in
        st.live <- Int.min pools.(j).p_n (effective st)
      in
      (None, apply)
  in
  let index_of id =
    let found = ref (-1) in
    Array.iteri (fun j p -> if p.p_id = id then found := j) pools;
    !found
  in
  List.iter
    (fun e ->
      if e.ev_time < trace.tr_duration then
        let j = index_of e.ev_pool in
        ignore
          (Sim.at sim e.ev_time (fun () ->
               let st = states.(j) in
               (match e.ev_action with
               | On -> st.sending <- true
               | Off -> st.sending <- false
               | Join k -> st.active <- Int.min pools.(j).p_n (st.active + k)
               | Leave k -> st.active <- Int.max 0 (st.active - k));
               apply j)))
    trace.tr_events;
  let rr_victim_rate = Series.create ~name:"victim-attack-rate" () in
  let meter = Host_agent.Victim.attack_meter deployed.Chain.victim_agent in
  let vmeter = Option.map Fluid_bridge.victim_meter fluid_ctx in
  let rec sample t =
    if t <= trace.tr_duration then
      ignore
        (Sim.at sim t (fun () ->
             let v =
               match vmeter with
               | Some m -> Fluid_bridge.victim_attack_rate m ~now:t
               | None -> 8. *. Rate_meter.rate meter ~now:t
             in
             Series.add rr_victim_rate ~time:t v;
             sample (t +. sample_period)))
  in
  sample sample_period;
  Sim.run ~until:trace.tr_duration sim;
  let all_gws =
    deployed.Chain.victim_gateways @ deployed.Chain.attacker_gateways
  in
  let received ~attack =
    match fluid_ctx with
    | Some eng -> Fluid.delivered_bits eng ~attack /. 8.
    | None ->
      if attack then Host_agent.Victim.attack_bytes deployed.Chain.victim_agent
      else Host_agent.Victim.good_bytes deployed.Chain.victim_agent
  in
  {
    rr_trace = trace;
    rr_engine = engine;
    rr_attack_offered_bytes = offered_bytes trace ~attack:true;
    rr_attack_received_bytes = received ~attack:true;
    rr_good_offered_bytes = offered_bytes trace ~attack:false;
    rr_good_received_bytes = received ~attack:false;
    rr_requests_sent =
      Host_agent.Victim.requests_sent deployed.Chain.victim_agent;
    rr_filters =
      Scenarios.counter_total all_gws "filter-temp"
      + Scenarios.counter_total all_gws "filter-long";
    rr_absorbed = Array.fold_left (fun acc r -> acc + !r) 0 absorbed;
    rr_events = Sim.events_processed sim;
    rr_victim_rate;
  }
