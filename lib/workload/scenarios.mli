(** Packaged experiment scenarios.

    The single-attacker chain scenario (Figure 1) parameterised along every
    axis the evaluation sweeps: attack rate, number of non-cooperating
    attacker-side gateways, attacker strategy, protocol config, traceback
    source. Running it returns the measurements the paper's formulas
    predict — above all the effective-bandwidth ratio r — plus the raw
    series and deployment handles for deeper inspection. *)

open Aitf_core
open Aitf_topo
module Series = Aitf_stats.Series
module Fluid = Aitf_flowsim.Fluid

type chain_params = {
  spec : Chain.spec;
  config : Config.t;
  seed : int;
  duration : float;  (** simulated seconds *)
  attack_rate : float;  (** bits/s *)
  attack_start : float;
  legit_rate : float;  (** bystander -> victim rate; 0 disables *)
  n_non_coop_gws : int;  (** unresponsive attacker-side gateways *)
  attacker_strategy : Policy.attacker_response;
  td : float;  (** victim detection delay Td *)
  path_source : Host_agent.path_source;
  traceback : [ `Path_in_request | `Spie | `Ppm ];
      (** [`Path_in_request] uses [path_source] as given (route record by
          default); [`Spie] and [`Ppm] deploy and instrument that mechanism
          on the topology and override [path_source] and the config's
          traceback mode accordingly. *)
  sample_period : float;  (** victim-rate sampling period *)
  ctrl_faults : Aitf_fault.Fault.model list;
      (** fault models injected on {e control} packets crossing the
          victim's tail circuit, both directions (empty = pristine links;
          the RNG is untouched then, so runs replay bit-identically) *)
  tail_flap : (float * float) option;
      (** [(period, down_for)]: flap the whole victim tail circuit on a
          fixed schedule *)
  adversaries : Aitf_adversary.Adversary.playbook list;
      (** protocol-level adversary playbooks to launch (empty = none; the
          RNG and the topology are untouched then, so runs replay
          bit-identically) *)
  adversary_start : float;  (** when the playbooks open fire *)
  in_pool_legit_rate : float;
      (** bits/s from a legitimate host whose address sits inside the
          spoofed-source pool — the collateral-damage witness; 0 disables
          (the node is only added when adversaries are present) *)
}

val default_chain : chain_params
(** Figure-1 defaults: 3-deep chain, T = 60 s, 1 Mbit/s attack starting at
    t = 1 s, ignoring attacker, all gateways cooperative, Td = 100 ms,
    route-record traceback, 300 s horizon. *)

type chain_result = {
  params : chain_params;
  deployed : Chain.deployed;
  attack_offered_bytes : float;
      (** what the flow would have delivered unimpeded *)
  attack_received_bytes : float;  (** what actually reached the victim *)
  r_measured : float;  (** received / offered — the measured r *)
  good_offered_bytes : float;
  good_received_bytes : float;
  victim_rate : Series.t;
      (** windowed attack bandwidth (bits/s) at the victim over time *)
  escalations : int;  (** total across victim-side gateways *)
  requests_sent : int;  (** by the victim host *)
  requests_retransmitted : int;  (** by the victim host, on silence *)
  ctrl_retransmits : int;
      (** filtering requests resent by gateways whose counterpart stayed
          silent, summed over every gateway *)
  ctrl_gave_up : int;
      (** flows whose gateway exhausted its retry budget and escalated (or
          filtered terminally) on silence *)
  faults_injected : int;
      (** control packets deliberately dropped by the [ctrl_faults] models *)
  adversary_handles : Aitf_adversary.Adversary.t list;
      (** one per launched playbook, in [adversaries] order *)
  overload_aggregations : int;
      (** exact-filter groups folded into prefix wildcards, summed over
          every gateway's overload manager (0 without the manager) *)
  overload_evictions : int;
  collateral_packets : int;
      (** legitimate packets dropped by manager-installed aggregates *)
  collateral_bytes : int;
  sampler : Aitf_obs.Sampler.t option;
      (** started (at [sample_period]) iff a metrics registry was attached
          via {!Aitf_obs.Metrics.attach} before the run *)
  fluid : Fluid.t option;
      (** the fluid engine, iff the config selected {!Config.Hybrid} *)
  events_processed : int;
      (** discrete events executed — the engine-comparison cost metric *)
}

val run_chain : ?sched:Aitf_parallel.Sched.t -> chain_params -> chain_result
(** [?sched] runs the scenario on that scheduler's global sim (the fixed
    chain topology is never sharded); a 1-shard scheduler replays the
    default sequential engine bit for bit. *)

val time_to_suppress : chain_result -> threshold:float -> float option
(** First time after the attack started at which the victim-observed attack
    bandwidth fell (and stayed, for one sample) below [threshold] × the
    offered rate. *)

val counter_total : Gateway.t list -> string -> int
(** Sum one counter over several gateways. *)

(** {1 Distributed flood on the provider hierarchy}

    The multi-zombie scenario shared by the DDoS example, the scaling
    bench and the CLI: a victim server in ISP 0 / net 0, legitimate
    clients probing it, and a zombie army spread round-robin over the
    other ISPs. *)

type flood_params = {
  hierarchy : Hierarchy.spec;
  flood_config : Config.t;
  flood_seed : int;
  flood_duration : float;
  zombies : int;
  zombie_rate : float;  (** bits/s each *)
  zombie_strategy : Policy.attacker_response;
  legit_clients : int;  (** spread over the victim's ISP *)
  legit_rate : float;  (** bits/s each *)
  attack_start : float;
  with_aitf : bool;
  flood_sample_period : float;  (** metric sampling period when attached *)
}

val default_flood : flood_params
(** 3×3×3 hierarchy, 12 ignoring zombies at 1 Mbit/s, 2 legit clients,
    T = 6 s config, AITF on. *)

type flood_result = {
  flood_params : flood_params;
  hierarchy_deployed : Hierarchy.deployed option;
  victim : Host_agent.Victim.t option;
  zombies_placed : int;
  legit_received_bytes : float;
  legit_offered_bytes : float;
  flood_attack_received_bytes : float;
  leaf_filters : int;
      (** long-filter installs at enterprise gateways — one per zombie per
          T cycle while the attack lasts *)
  isp_filters : int;
  flood_sampler : Aitf_obs.Sampler.t option;
      (** started iff a metrics registry was attached before the run *)
  flood_fluid : Fluid.t option;
      (** the fluid engine, iff the config selected {!Config.Hybrid} *)
  flood_events : int;
}

val run_flood : ?sched:Aitf_parallel.Sched.t -> flood_params -> flood_result

(** {1 Massive swarm (hybrid engine only)}

    The scaling scenario: the Figure-1 chain augmented with spoofed-source
    pool nodes, each advertising a /12 so one fluid aggregate can stand in
    for up to 2^20 attacking sources. Runs the fluid data plane
    unconditionally (the packet engine cannot represent these populations),
    with the packet-level AITF control plane — detection, handshakes,
    filters — driven by sampled probes exactly as in hybrid chain runs. *)

type swarm_params = {
  swarm_spec : Chain.spec;
  swarm_config : Config.t;
      (** [hybrid_epoch] and [hybrid_probe_rate] are honoured; the [engine]
          field is ignored — this scenario is always hybrid *)
  swarm_seed : int;
  swarm_duration : float;
  swarm_sources : int;  (** total attacking sources, split over the pools *)
  swarm_pools : int;  (** aggregates / origin pool nodes (1..16) *)
  swarm_attack_rate : float;  (** total bits/s across all sources *)
  swarm_legit_rate : float;  (** bystander -> victim rate; 0 disables *)
  swarm_attack_start : float;
  swarm_td : float;
  swarm_sample_period : float;
}

val default_swarm : swarm_params
(** 1000 sources over 4 pools, 20 Mbit/s total against the 10 Mbit/s tail,
    30 s horizon. *)

type swarm_result = {
  swarm_params : swarm_params;
  swarm_deployed : Chain.deployed;
  swarm_fluid : Fluid.t;
  swarm_good_offered_bytes : float;
  swarm_good_received_bytes : float;
  swarm_attack_received_bytes : float;
  swarm_victim_rate : Series.t;
  swarm_requests_sent : int;  (** by the victim host *)
  swarm_filters : int;
      (** temp + long filter installs over every gateway *)
  swarm_absorbed : int;
      (** To_attacker requests absorbed at pool nodes (no hosts behind a
          spoofed pool to deliver them to) *)
  swarm_events : int;
  swarm_sampler : Aitf_obs.Sampler.t option;
}

val run_swarm : ?sched:Aitf_parallel.Sched.t -> swarm_params -> swarm_result
(** @raise Invalid_argument when the pool/source counts are out of range
    (pools in 1..16, at most 2^20 sources per pool). *)
