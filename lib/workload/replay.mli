(** Trace-driven attack replay.

    A replay trace is a compact, human-writable description of how an
    attack's source population behaves over time: named pools of
    contiguous spoofed sources, plus timestamped membership events —
    whole-pool on/off pulses, per-source join/leave churn. The same trace
    drives {e both} engines: under [`Packet] each pool is a spoofing CBR
    source gated by the pool's live membership; under [`Hybrid] each pool
    is one fluid aggregate whose per-source stage-0 gates track the
    membership. Everything downstream — detection, filtering requests,
    filters, escalation — is the unchanged AITF machinery, so a trace is
    a differential test vector between the engines.

    Traces capture the attack shapes the companion "Protecting
    Public-Access Sites" work studies and a parametric flood cannot
    express: pulsing on-off attacks, booter-style bursts, carpet bombing
    walking a prefix range, and source churn. {!synth_pulse} and friends
    generate those canonically from a seed.

    See docs/GOLDENS.md for the trace grammar. *)

open Aitf_net
open Aitf_core
module Series = Aitf_stats.Series

(** {1 Traces} *)

type pool = {
  p_id : string;  (** token naming the pool in events (no whitespace) *)
  p_base : Addr.t;  (** first source address of the contiguous range *)
  p_n : int;  (** pool population (>= 1) *)
  p_rate : float;  (** bits/s {e per source} while a member is active *)
  p_attack : bool;
}

type action =
  | On  (** the pool starts sending (membership unchanged) *)
  | Off  (** the pool stops sending *)
  | Join of int  (** [k] sources join (clamped to the population) *)
  | Leave of int  (** [k] sources leave (clamped to 0) *)

type event = { ev_time : float; ev_pool : string; ev_action : action }

type trace = {
  tr_seed : int;  (** baked into the header: the synthesizer's seed *)
  tr_duration : float;  (** simulated horizon (s) *)
  tr_pools : pool list;
  tr_events : event list;  (** non-decreasing [ev_time], file order kept *)
}

val equal : trace -> trace -> bool

(** {1 Codec}

    Line-oriented text; [to_string] is canonical (fixed field order,
    floats via {!Aitf_obs.Json.float_repr}) so
    [parse (to_string t) = Ok t] and serializing again is byte-identical
    — the round-trip property the tier-1 suite checks. *)

val to_string : trace -> string

val parse : string -> (trace, string) result
(** Errors carry the 1-based line number and the offending token.
    Rejected: unknown directives, missing/duplicate header fields,
    malformed numbers (anything [int_of_string]/[float_of_string] won't
    take, plus non-finite or negative rates/times), events naming an
    undeclared pool, and decreasing timestamps. *)

(** {1 Synthesizers}

    Deterministic in [seed]; all rates in bits/s. *)

val synth_pulse :
  ?pools:int -> ?period:float -> ?duty:float -> seed:int -> duration:float ->
  rate:float -> n:int -> unit -> trace
(** Pulsing on-off attack: [pools] pools (default 1) of [n] sources each
    square-wave between full rate and silence with the given [period]
    (default 4 s) and [duty] cycle (default 0.5), phases staggered by the
    seed — the shrew-style shape that defeats a detector averaging over
    windows longer than the pulse. *)

val synth_churn :
  ?mean_gap:float -> seed:int -> duration:float -> rate:float -> n:int ->
  unit -> trace
(** Source arrival/departure churn: one always-on pool whose membership
    random-walks — every [mean_gap] seconds (exponential, default 0.5 s)
    a random cohort joins or leaves. *)

val synth_booter :
  ?bursts:int -> ?burst_len:float -> seed:int -> duration:float ->
  rate:float -> n:int -> unit -> trace
(** Booter-service bursts: [bursts] (default 4) short all-on salvos of
    [burst_len] seconds (default 2 s) at seeded start times, silence in
    between — the stresser-for-hire shape. *)

val synth_carpet :
  ?pools:int -> ?slot:float -> seed:int -> duration:float -> rate:float ->
  n:int -> unit -> trace
(** Carpet bombing: [pools] pools (default 4) covering adjacent prefix
    ranges; the attack walks across them, each on for [slot] seconds
    (default 3 s) then handing over to the next, in a seeded starting
    order — filters chase a moving source prefix. *)

(** {1 Running} *)

type engine = [ `Packet | `Hybrid ]

type result = {
  rr_trace : trace;
  rr_engine : engine;
  rr_attack_offered_bytes : float;
      (** analytic integral of the trace's active attack rate *)
  rr_attack_received_bytes : float;
  rr_good_offered_bytes : float;
  rr_good_received_bytes : float;
  rr_requests_sent : int;  (** by the victim host *)
  rr_filters : int;  (** temp + long installs over every gateway *)
  rr_absorbed : int;  (** To_attacker requests absorbed at pool nodes *)
  rr_events : int;  (** discrete events executed *)
  rr_victim_rate : Series.t;
      (** windowed attack bandwidth (bits/s) at the victim, identical
          smoothing under both engines *)
}

val offered_bytes : trace -> attack:bool -> float
(** The analytic integral: sum over pools (matching [attack]) of
    per-source rate x live membership, integrated over the horizon. *)

val run :
  ?spec:Aitf_topo.Chain.spec ->
  ?config:Config.t ->
  ?td:float ->
  ?sample_period:float ->
  engine:engine ->
  trace ->
  result
(** Replay [trace] on the Figure-1 chain augmented with one origin node
    per pool (each advertising the smallest prefix covering its source
    range, requests into it absorbed). [config]'s [engine] field is
    overridden by [engine]. Deterministic: same trace, same engine, same
    result — bit-identical serialized reports.

    @raise Invalid_argument when a pool population exceeds 2^20. *)
