module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_core
module Fluid = Aitf_flowsim.Fluid
module Flow_label = Aitf_filter.Flow_label

(* Glue between the fluid plane and the packet-level AITF agents — it lives
   in the workload layer because [Aitf_flowsim] cannot depend on the
   protocol messages in [Aitf_core]. *)

(* Mirror a packet-level attacker host's response strategy onto the
   aggregate's stage-0 (the source's own gate):
   - [Complies] acts through the agent's own filter table, so subscribing
     the fluid engine to it is enough;
   - [On_off] never touches a table — intercept the To_attacker requests
     the agent receives and mirror the off window onto the fluid mask;
   - [Ignores] does nothing, at either level. *)
let attach_attacker_strategy fluid agg agent =
  let node = Host_agent.Attacker.node agent in
  match Host_agent.Attacker.strategy agent with
  | Policy.Ignores -> ()
  | Policy.Complies ->
    Fluid.attach_table fluid ~node (Host_agent.Attacker.filters agent)
  | Policy.On_off { off_time } ->
    let sim = Network.sim (Fluid.network fluid) in
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <-
      (fun n (pkt : Packet.t) ->
        (match pkt.Packet.payload with
        | Message.Filtering_request
            { Message.target = Message.To_attacker; flow; _ } -> (
          match flow.Flow_label.src with
          | Flow_label.Host a -> (
            match Fluid.source_index agg a with
            | Some idx ->
              Fluid.set_block fluid agg ~idx ~stage:0 true;
              ignore
                (Sim.after sim off_time (fun () ->
                     Fluid.set_block fluid agg ~idx ~stage:0 false))
            | None -> ())
          | _ -> ())
        | _ -> ());
        prev n pkt)

(* Spoofed source pools have no hosts behind them: To_attacker requests
   routed into the pool's advertised range are absorbed (and counted) at
   the pool node instead of dying on a missing route. *)
let absorb_pool_requests node =
  let absorbed = ref 0 in
  Node.add_hook node (fun _ (pkt : Packet.t) ->
      match pkt.Packet.payload with
      | Message.Filtering_request { Message.target = Message.To_attacker; _ }
        ->
        incr absorbed;
        Node.Drop "fluid-pool-absorb"
      | _ -> Node.Continue);
  absorbed

(* The victim-side rate series in hybrid runs: fluid delivery integrated
   through the same 1-second window the packet engine's victim meter uses,
   so time-to-suppress sees identical smoothing lag under both engines. *)
type victim_meter = {
  fluid : Fluid.t;
  meter : Aitf_stats.Rate_meter.t;
  mutable last_bits : float;
}

let victim_meter fluid =
  { fluid; meter = Aitf_stats.Rate_meter.create ~window:1.0; last_bits = 0. }

let victim_attack_rate m ~now =
  let bits = Fluid.delivered_bits m.fluid ~attack:true in
  Aitf_stats.Rate_meter.add m.meter ~now ((bits -. m.last_bits) /. 8.);
  m.last_bits <- bits;
  8. *. Aitf_stats.Rate_meter.rate m.meter ~now
