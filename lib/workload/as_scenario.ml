module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Sched = Aitf_parallel.Sched
module Series = Aitf_stats.Series
module Fluid = Aitf_flowsim.Fluid
module Sampler = Aitf_flowsim.Sampler
module Filter_table = Aitf_filter.Filter_table
module Signing = Aitf_contract.Signing
module Auditor = Aitf_contract.Auditor
module Adversary = Aitf_adversary.Adversary
module Span = Aitf_obs.Span
module Flight = Aitf_obs.Flight
module Metrics = Aitf_obs.Metrics
module Json = Aitf_obs.Json
open Aitf_net
open Aitf_core
open Aitf_topo

type params = {
  as_spec : As_graph.spec;
  as_config : Config.t;
  as_seed : int;
  as_duration : float;
  as_sources : int;
  as_attack_domains : int;
  as_legit_domains : int;
  as_legit_sources : int;
  as_attack_rate : float;
  as_legit_rate : float;
  as_attack_start : float;
  as_td : float;
  as_sample_period : float;
  as_contracts : bool;
  as_byzantine_fraction : float;
  as_lying_mode : Adversary.lying_mode;
  as_contract : Contract.t option;
  as_audit : Auditor.config;
  as_shards : int;
}

let default =
  {
    as_spec = As_graph.default_spec;
    as_config = Config.default;
    as_seed = 42;
    as_duration = 30.;
    as_sources = 100_000;
    as_attack_domains = 40;
    as_legit_domains = 10;
    as_legit_sources = 10_000;
    as_attack_rate = 200e6;
    as_legit_rate = 5e6;
    as_attack_start = 1.;
    as_td = 0.1;
    as_sample_period = 0.1;
    as_contracts = false;
    as_byzantine_fraction = 0.;
    as_lying_mode = Adversary.Accept_ignore;
    as_contract = None;
    as_audit = Auditor.default_config;
    as_shards = 1;
  }

type result = {
  r_params : params;
  r_graph : As_graph.t;
  r_gateways : Gateway.t array;
  r_fluid : Fluid.t;
  r_ctl : Placement_ctl.t option;
  r_victim_domain : int;
  r_good_offered_bytes : float;
  r_good_received_bytes : float;
  r_attack_received_bytes : float;
  r_collateral_fraction : float;
  r_victim_rate : Series.t;
  r_time_to_filter : float option;
  r_slots_peak : int;
  r_filters_installed : int;
  r_requests_sent : int;
  r_reports : int;
  r_absorbed : int;
  r_events : int;
  r_auditor : Auditor.t option;
  r_byzantine : (int * Addr.t) list;
  r_failovers : int;
  r_shards : int;
  r_sched_stats : Sched.stats;
  r_shard_profiles : Aitf_obs.Profile.t list;
  r_parallel : Json.t option;
}

(* Per-domain pool sub-ranges inside the /16: the attack pool owns the top
   half (/17 at +0x8000), the legitimate pool a quarter (/18 at +0x4000) —
   both clear of the infrastructure addresses at the bottom. *)
let attack_off = 0x8000
let legit_off = 0x4000

let run p =
  let spec = p.as_spec in
  let n = spec.As_graph.domains in
  if p.as_attack_domains < 1 || p.as_legit_domains < 1 then
    invalid_arg "As_scenario.run: need at least one pool domain of each kind";
  if (p.as_sources + p.as_attack_domains - 1) / p.as_attack_domains > 1 lsl 15
  then
    invalid_arg
      "As_scenario.run: more than 2^15 attack sources per domain (raise \
       as_attack_domains)";
  if
    (p.as_legit_sources + p.as_legit_domains - 1) / p.as_legit_domains
    > 1 lsl 14
  then
    invalid_arg
      "As_scenario.run: more than 2^14 legitimate sources per domain (raise \
       as_legit_domains)";
  if p.as_attack_domains + p.as_legit_domains > n - 1 - spec.As_graph.tier1
  then invalid_arg "As_scenario.run: not enough non-tier-1 domains for pools";
  let shards = p.as_shards in
  if shards < 1 then
    invalid_arg
      (Printf.sprintf "As_scenario.run: as_shards must be >= 1 (got %d)"
         shards);
  let sched = Sched.create ~shards () in
  let sim = Sched.global sched in
  (* Shard-clean tracing: each worker domain gets its own span collector
     (orphan mode on — roots for ids minted in other shards materialise as
     placeholders) plus a disjoint correlation-id stride; [Span.merge_into]
     reunites everything after the run. The master collector also runs in
     orphan mode while sharded: coordinator-context recording (the fluid
     mirror) sees shard-minted ids too. Workers mint from their stride
     whether or not tracing is on — minting is unconditional protocol
     work and must stay race-free. *)
  let master_span = Span.attached () in
  let shard_spans =
    if shards <= 1 then [||]
    else
      match master_span with
      | None -> [||]
      | Some m ->
        Span.set_allow_orphans m true;
        Array.init shards (fun _ ->
            let c = Span.create () in
            Span.set_allow_orphans c true;
            c)
  in
  if shards > 1 then
    Sched.set_worker_init sched (fun ~shard ->
        Span.bind_domain
          ?collector:
            (if shard_spans = [||] then None else Some shard_spans.(shard))
          ~mint_base:((shard + 1) lsl 24)
          ());
  (* Per-shard flight-recorder rings, merged into the attached master in
     (time, shard, seq) order after the run. Shard-suffixed auto-dump
     paths keep SLO dumps from different shards out of each other's
     files. *)
  let master_flight = Flight.attached () in
  let shard_flights =
    if shards <= 1 then [||]
    else
      match master_flight with
      | None -> [||]
      | Some m ->
        Array.init shards (fun i ->
            let f = Flight.create ~capacity:(Flight.capacity m) in
            Flight.set_shard f i;
            Flight.set_dump_path f (Flight.dump_path m);
            Flight.attach_to f (Sched.shard_sim sched i);
            f)
  in
  Metrics.if_attached (fun reg ->
      if not (Metrics.registered reg "sched.windows") then
        Sched.register_metrics sched reg ~prefix:"sched");
  if shards > 1 && Metrics.attached () <> None then
    Sched.set_window_log sched ~max:20_000;
  (* Concurrent shards must not share the default profiler probe their sims
     inherited at create: give each shard its own buckets ([Profile.merge]
     recombines them for reporting). The global sim keeps the inherited
     probe — it only ever runs on the coordinator. *)
  let shard_profiles =
    if shards <= 1 || not (Aitf_obs.Profile.enabled ()) then []
    else
      Array.to_list
        (Array.map
           (fun s ->
             let pr = Aitf_obs.Profile.create () in
             Aitf_obs.Profile.attach_to pr s;
             pr)
           (Sched.shard_sims sched))
  in
  let rng = Rng.create ~seed:p.as_seed in
  (* Generation is plan -> (picks) -> partition -> materialise: the picks
     draw from the same stream position as they did when [As_graph.build]
     ran first, and partitioning consumes no randomness, so 1-shard runs
     replay the historical sequence bit for bit. *)
  let plan = As_graph.plan rng spec in
  (* The last domain never acquired customers (providers are always chosen
     among earlier domains), so it is guaranteed to be a stub — the victim
     lives there, behind its bottleneck access link. *)
  let vdom = n - 1 in
  (* Distinct uniform domain picks among non-tier-1, non-victim domains. *)
  let pick k avoid =
    let lo = spec.As_graph.tier1 and hi = n - 2 in
    let seen = Hashtbl.create (4 * k) in
    List.iter (fun d -> Hashtbl.replace seen d ()) avoid;
    let out = ref [] and got = ref 0 in
    while !got < k do
      let d = lo + Rng.int rng (hi - lo + 1) in
      if not (Hashtbl.mem seen d) then begin
        Hashtbl.replace seen d ();
        out := d :: !out;
        incr got
      end
    done;
    List.rev !out
  in
  let attack_domains = pick p.as_attack_domains [] in
  let legit_domains = pick p.as_legit_domains attack_domains in
  (* Domain -> shard map, weighted by expected event load: the victim
     domain is the funnel every probe converges on (heaviest), attack-pool
     domains emit the probe streams, legitimate pools a trickle, transit
     domains mostly forward. *)
  let part =
    if shards = 1 then Array.make n 0
    else begin
      let attack_set = Hashtbl.create 64 and legit_set = Hashtbl.create 16 in
      List.iter (fun d -> Hashtbl.replace attack_set d ()) attack_domains;
      List.iter (fun d -> Hashtbl.replace legit_set d ()) legit_domains;
      As_graph.partition plan ~shards ~weight:(fun d ->
          if d = vdom then 16.
          else if Hashtbl.mem attack_set d then 8.
          else if Hashtbl.mem legit_set d then 2.
          else 1.)
    end
  in
  let sim_of_as d = Sched.shard_sim sched part.(d) in
  let graph =
    As_graph.materialise
      ?sim_of_as:(if shards > 1 then Some sim_of_as else None)
      sim plan
  in
  let net = As_graph.net graph in
  (* Cross-shard inter-domain links become remote: the transmit side stays
     local, delivery is posted into the destination shard's inbox, and the
     link's propagation delay is registered as that channel's lookahead.
     Host/pool access links attach later, always intra-domain, so routers'
     ports here are the complete cross-shard set. *)
  if shards > 1 then
    List.iter
      (fun node ->
        List.iter
          (fun (port : Node.port) ->
            let peer = Network.node net port.Node.peer_id in
            let s_src = part.(node.Node.as_id)
            and s_dst = part.(peer.Node.as_id) in
            if s_src <> s_dst then begin
              Sched.register_channel sched ~src:s_src ~dst:s_dst
                ~lookahead:(Link.delay port.Node.link);
              Link.set_remote port.Node.link (fun ~time fn ->
                  Sched.post sched ~dst:s_dst ~time fn)
            end)
          node.Node.ports)
      (Network.nodes net);
  let victim_node = As_graph.attach_host graph ~domain:vdom in
  let base_of d = (As_graph.domain_prefix d).Addr.base in
  let attach off len d =
    let range = Addr.prefix (Addr.add (base_of d) off) len in
    (d, As_graph.attach_pool graph ~domain:d ~range)
  in
  let attack_pools = List.map (attach attack_off 17) attack_domains in
  let legit_pools = List.map (attach legit_off 18) legit_domains in
  let config = p.as_config in
  let eng = Fluid.create ~epoch:config.Config.hybrid_epoch net in
  let ctl =
    match config.Config.placement with
    | Placement.Vanilla -> None
    | (Placement.Optimal | Placement.Adaptive) as policy ->
      (* Threshold between the per-domain attack rate and any plausible
         legitimate pool rate, with a floor for tiny runs. *)
      let suspect_rate =
        Float.max 1e6
          (0.5 *. p.as_attack_rate /. float_of_int p.as_attack_domains)
      in
      Some
        (Placement_ctl.create ~defer:(Sched.defer sched) ~suspect_rate ~policy
           ~fluid:eng config)
  in
  let deployed =
    As_graph.deploy
      ?placement:(Option.map Placement_ctl.handle ctl)
      ?contract:p.as_contract ~config ~rng graph
  in
  let gws = deployed.As_graph.gateways in
  Option.iter
    (fun c -> Placement_ctl.register_gateways ~defer:(Sched.defer sched) c gws)
    ctl;
  Array.iter
    (fun gw ->
      Fluid.attach_table ~defer:(Sched.defer sched) eng
        ~node:(Gateway.node gw) (Gateway.filters gw))
    gws;
  let victim =
    Host_agent.Victim.create ~td:p.as_td
      ~gateway:(As_graph.router graph vdom).Node.addr
      ~config net victim_node
  in
  let victim_addr = victim_node.Node.addr in
  (* Verifiable-contract wiring (docs/CONTRACTS.md). Strictly inside the
     [as_contracts] branch — including the [Rng.split] — so contracts-off
     runs consume the identical rng stream and stay bit-identical. *)
  let contracts =
    if not p.as_contracts then None
    else begin
      let crng = Rng.split rng in
      let signing = Signing.create ~seed:p.as_seed in
      Array.iter
        (fun gw ->
          Gateway.enable_contracts gw
            ~sign:(Signing.signer signing (Gateway.addr gw))
            ~verify:(Signing.verify signing))
        gws;
      Host_agent.Victim.set_signer victim (Signing.signer signing victim_addr);
      (* Byzantine pick: the candidate set is the attack-side first-hop
         gateways — the on-path domains that actually receive the victim's
         round-0 filtering work (a corrupted transit AS that never sees a
         request has nothing to lie about). A seeded partial Fisher–Yates
         corrupts round(fraction * |candidates|) of them; failover then
         escalates past each convicted liar to the next (honest, transit)
         AS on the route. *)
      let arr = Array.of_list attack_domains in
      Array.sort compare arr;
      let n_byz =
        Int.min (Array.length arr)
          (int_of_float
             (Float.round
                (p.as_byzantine_fraction *. float_of_int (Array.length arr))))
      in
      for i = 0 to n_byz - 1 do
        let j = i + Rng.int crng (Array.length arr - i) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp
      done;
      let byz = List.sort compare (Array.to_list (Array.sub arr 0 n_byz)) in
      ignore
        (Adversary.corrupt ~mode:p.as_lying_mode
           (List.map (fun d -> gws.(d)) byz));
      let failovers = ref 0 in
      (* Conviction: every gateway learns the liar's address (escalation
         skips it from now on), the placement controller treats it as
         zero-capacity, and the victim's gateway re-engages every contract
         that was parked at it. *)
      let on_flag peer =
        Array.iter (fun g -> Gateway.flag_peer g peer) gws;
        Option.iter (fun c -> Placement_ctl.flag_gateway c peer) ctl;
        failovers := !failovers + Gateway.fail_over gws.(vdom) ~peer
      in
      let auditor =
        Auditor.create ~config:p.as_audit
          ~verify:(Signing.verify signing)
          ~gateway:(As_graph.router graph vdom).Node.addr
          ~on_flag sim
      in
      (* Victim-side observations reach the auditor through the defer
         seam: the victim executes inside its shard's window, while the
         auditor's state belongs to the coordinator (its tick runs on the
         global sim). Each observation captures the victim shard's clock
         at the moment it happened, then replays at the barrier in
         deterministic (time, shard, seq) order. With one shard, [defer]
         runs the thunk immediately — bit-identical to the direct calls
         this replaces. *)
      let vsim = sim_of_as vdom in
      Host_agent.Victim.set_receipt_sink victim (fun r ->
          let now = Sim.now vsim in
          Sched.defer sched (fun () -> Auditor.on_receipt ~now auditor r));
      Host_agent.Victim.set_request_observer victim (fun req ->
          let now = Sim.now vsim in
          Sched.defer sched (fun () -> Auditor.note_request ~now auditor req));
      Host_agent.Victim.set_arrival_observer victim (fun flow at ->
          Sched.defer sched (fun () -> Auditor.note_arrival auditor flow at));
      Some
        (auditor, List.map (fun d -> (d, Gateway.addr gws.(d))) byz, failovers)
    end
  in
  let frng = Rng.split rng in
  let probe_rate =
    let r = config.Config.hybrid_probe_rate in
    if r > 0. then Some r else None
  in
  let absorbed = ref [] in
  let add_pools pools ~off ~total_sources ~total_rate ~attack ~start ~fid0 =
    let k = List.length pools in
    let base_n = total_sources / k and rem = total_sources mod k in
    List.iteri
      (fun j (d, pool) ->
        let cnt = base_n + if j < rem then 1 else 0 in
        if cnt > 0 then begin
          let rate =
            total_rate *. float_of_int cnt /. float_of_int total_sources
          in
          let agg =
            Fluid.add_aggregate eng ~flow_id:(fid0 + j) ~origin:pool
              ~src_base:(Addr.add (base_of d) off)
              ~n:cnt ~rate ~dst:victim_addr ~attack ~start
          in
          if attack then begin
            absorbed := Fluid_bridge.absorb_pool_requests pool :: !absorbed;
            ignore
              (Sampler.attach ?rate:probe_rate ~sim:(sim_of_as d)
                 ~rng:(Rng.split frng) eng agg)
          end
        end)
      pools
  in
  add_pools attack_pools ~off:attack_off ~total_sources:p.as_sources
    ~total_rate:p.as_attack_rate ~attack:true ~start:p.as_attack_start
    ~fid0:1000;
  add_pools legit_pools ~off:legit_off ~total_sources:p.as_legit_sources
    ~total_rate:p.as_legit_rate ~attack:false ~start:0. ~fid0:2000;
  let series = Series.create ~name:"victim-attack-rate" () in
  let vmeter = Fluid_bridge.victim_meter eng in
  let rec sample t =
    if t <= p.as_duration then
      ignore
        (Sim.at sim t (fun () ->
             Series.add series ~time:t
               (Fluid_bridge.victim_attack_rate vmeter ~now:t);
             sample (t +. p.as_sample_period)))
  in
  sample p.as_sample_period;
  Sched.run ~until:p.as_duration sched;
  (* Reunite the per-shard observability state: spans re-keyed into
     canonical order, flight records interleaved by (time, shard, seq).
     Shard rings detach so the next run in this process starts clean. *)
  (match master_span with
  | Some m when shard_spans <> [||] ->
    Span.merge_into m (Array.to_list shard_spans)
  | Some _ | None -> ());
  (match master_flight with
  | Some m when shard_flights <> [||] ->
    Flight.merge_into m (Array.to_list shard_flights);
    Array.iteri
      (fun i _ -> Flight.detach_from (Sched.shard_sim sched i))
      shard_flights
  | Some _ | None -> ());
  let slots_peak =
    Array.fold_left
      (fun acc gw -> acc + Filter_table.peak_occupancy (Gateway.filters gw))
      0 gws
  in
  let installed =
    Array.fold_left
      (fun acc gw -> acc + Filter_table.installs (Gateway.filters gw))
      0 gws
  in
  let good_offered = p.as_legit_rate *. p.as_duration /. 8. in
  let good_received = Fluid.delivered_bits eng ~attack:false /. 8. in
  let time_to_filter =
    (* Seconds from attack start until the victim's attack rate falls below
       5% of the offered rate and stays there; [None] if it is still above
       at the end of the run. *)
    let thresh = 0.05 *. p.as_attack_rate in
    let pts =
      List.filter (fun (t, _) -> t >= p.as_attack_start) (Series.points series)
    in
    let last_high =
      List.fold_left
        (fun acc (t, v) -> if v > thresh then Some t else acc)
        None pts
    in
    match last_high with
    | None -> Some 0.  (* suppressed within the first sample *)
    | Some th -> (
      match List.find_opt (fun (t, _) -> t > th) pts with
      | Some (t, _) -> Some (t -. p.as_attack_start)
      | None -> None (* still above threshold when the run ended *))
  in
  (* The run report's "parallel" section: final synchronization counters,
     a per-shard event breakdown, and (when the window log was armed) the
     per-window timeline of horizon / barrier stall / event counts. *)
  let r_parallel =
    if shards <= 1 then None
    else begin
      let st = Sched.stats sched in
      let finite_or_inf x =
        if Float.is_finite x then Json.Float x else Json.String "inf"
      in
      let per_shard =
        Array.to_list
          (Array.mapi
             (fun i e ->
               Json.Obj [ ("shard", Json.Int i); ("events", Json.Int e) ])
             (Sched.shard_events sched))
      in
      let timeline =
        match Sched.window_log sched with
        | [] -> []
        | wl ->
          [
            ( "window_timeline",
              Json.Obj
                [
                  ("dropped", Json.Int (Sched.window_log_dropped sched));
                  ( "points",
                    Json.List
                      (List.map
                         (fun (w : Sched.window_record) ->
                           Json.Obj
                             [
                               ("horizon", Json.Float w.Sched.w_horizon);
                               ("stall_seconds", Json.Float w.Sched.w_stall);
                               ( "events",
                                 Json.List
                                   (Array.to_list
                                      (Array.map
                                         (fun e -> Json.Int e)
                                         w.Sched.w_events)) );
                               ("messages", Json.Int w.Sched.w_messages);
                               ("deferred", Json.Int w.Sched.w_deferred);
                             ])
                         wl) );
                ] );
          ]
      in
      Some
        (Json.Obj
           ([
              ("shards", Json.Int shards);
              ("lookahead", finite_or_inf (Sched.lookahead sched));
              ("windows", Json.Int st.Sched.windows);
              ("global_batches", Json.Int st.Sched.global_batches);
              ("messages", Json.Int st.Sched.messages);
              ("deferred", Json.Int st.Sched.deferred);
              ("stall_seconds", Json.Float st.Sched.stall_seconds);
              ("global_events", Json.Int (Sim.events_processed sim));
              ("per_shard", Json.List per_shard);
            ]
           @ timeline))
    end
  in
  {
    r_params = p;
    r_graph = graph;
    r_gateways = gws;
    r_fluid = eng;
    r_ctl = ctl;
    r_victim_domain = vdom;
    r_good_offered_bytes = good_offered;
    r_good_received_bytes = good_received;
    r_attack_received_bytes = Fluid.delivered_bits eng ~attack:true /. 8.;
    r_collateral_fraction =
      (if good_offered > 0. then
         Float.max 0. (1. -. (good_received /. good_offered))
       else 0.);
    r_victim_rate = series;
    r_time_to_filter = time_to_filter;
    r_slots_peak = slots_peak;
    r_filters_installed = installed;
    r_requests_sent = Host_agent.Victim.requests_sent victim;
    r_reports = (match ctl with Some c -> Placement_ctl.evidence c | None -> 0);
    r_absorbed = List.fold_left (fun acc r -> acc + !r) 0 !absorbed;
    r_events = Sched.events_processed sched;
    r_auditor = Option.map (fun (a, _, _) -> a) contracts;
    r_byzantine = (match contracts with Some (_, b, _) -> b | None -> []);
    r_failovers = (match contracts with Some (_, _, f) -> !f | None -> 0);
    r_shards = shards;
    r_sched_stats = Sched.stats sched;
    r_shard_profiles = shard_profiles;
    r_parallel;
  }
