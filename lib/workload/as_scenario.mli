(** Internet-scale scenario: a generated AS topology under DDoS, with
    pluggable filter placement.

    Builds an {!Aitf_topo.As_graph} Internet (hundreds to thousands of
    gateway domains), puts the victim in a stub domain and spreads
    10^5–10^6 attack sources over fluid source pools in randomly chosen
    domains, then runs the hybrid engine with one of the three placement
    policies from [config.placement]:

    - {!Aitf_core.Placement.Vanilla} — classic AITF escalate-upstream;
    - {!Aitf_core.Placement.Optimal} — oracle per-epoch filter selection
      ([Placement_ctl]);
    - {!Aitf_core.Placement.Adaptive} — feedback-driven frontier walking
      ([Placement_ctl]).

    Scoring covers the three axes docs/PLACEMENT.md compares policies on:
    collateral damage (legitimate traffic lost), filter-slot usage (peak
    occupancy summed over gateways) and time-to-filter (victim relief).
    Fully deterministic for a given seed, policy included. *)

open Aitf_net
open Aitf_core
open Aitf_topo
module Fluid = Aitf_flowsim.Fluid
module Series = Aitf_stats.Series
module Auditor = Aitf_contract.Auditor
module Adversary = Aitf_adversary.Adversary

type params = {
  as_spec : As_graph.spec;
  as_config : Config.t;  (** [placement] selects the policy *)
  as_seed : int;
  as_duration : float;
  as_sources : int;  (** total attack sources, spread over attack domains *)
  as_attack_domains : int;  (** domains hosting an attack pool (>= 1) *)
  as_legit_domains : int;  (** domains hosting a legitimate pool (>= 1) *)
  as_legit_sources : int;  (** total legitimate sources *)
  as_attack_rate : float;  (** total attack bits/s across all sources *)
  as_legit_rate : float;  (** total legitimate bits/s across all sources *)
  as_attack_start : float;
  as_td : float;  (** victim detection delay *)
  as_sample_period : float;  (** victim-rate series sampling period *)
  as_contracts : bool;
      (** enable verifiable filtering contracts: signed requests, install
          receipts, a victim-side auditor and Byzantine-gateway failover
          (docs/CONTRACTS.md). [false] reproduces pre-contract runs bit
          for bit. *)
  as_byzantine_fraction : float;
      (** fraction (in [0,1]) of on-path gateways corrupted to the lying
          mode at setup; ignored unless [as_contracts] *)
  as_lying_mode : Adversary.lying_mode;  (** how corrupted gateways cheat *)
  as_contract : Contract.t option;
      (** provider-side R1/R2 contract applied on every provider->customer
          edge at deploy (independent of [as_contracts]; [None] keeps the
          config defaults) *)
  as_audit : Auditor.config;  (** auditor tuning (deadline, k, backoff) *)
  as_shards : int;
      (** simulation shards (>= 1). [1] runs the sequential engine and is
          bit-identical to the pre-sharding scenario; [> 1] partitions the
          domains over that many event-queue shards synchronized by
          conservative lookahead windows (docs/PARALLEL.md). Deterministic
          for fixed (seed, shards); outcome scalars vary slightly across
          shard counts. *)
}

val default : params
(** 1000 domains, 10^5 attack sources over 40 domains, 10^4 legitimate
    sources over 10 domains, 200 Mb/s of attack against a 100 Mb/s victim
    access link, vanilla placement, 30 simulated seconds. *)

type result = {
  r_params : params;
  r_graph : As_graph.t;
  r_gateways : Gateway.t array;
  r_fluid : Fluid.t;
  r_ctl : Placement_ctl.t option;  (** present for managed policies *)
  r_victim_domain : int;
  r_good_offered_bytes : float;
  r_good_received_bytes : float;
  r_attack_received_bytes : float;
  r_collateral_fraction : float;
      (** legitimate traffic lost / offered — 0 is perfect *)
  r_victim_rate : Series.t;  (** attack bits/s reaching destinations *)
  r_time_to_filter : float option;
      (** seconds from attack start until the victim's attack rate falls
          below 5% of the offered rate and stays there; [None] = still
          above when the run ended *)
  r_slots_peak : int;  (** sum of per-gateway peak filter occupancy *)
  r_filters_installed : int;  (** successful installs over all tables *)
  r_requests_sent : int;  (** victim filtering requests *)
  r_reports : int;  (** placement-evidence reports (managed policies) *)
  r_absorbed : int;  (** To_attacker requests absorbed by source pools *)
  r_events : int;
  r_auditor : Auditor.t option;  (** present when [as_contracts] *)
  r_byzantine : (int * Addr.t) list;
      (** corrupted gateways as (domain, address), sorted by domain *)
  r_failovers : int;
      (** contract entries the victim's gateway re-engaged past flagged
          peers *)
  r_shards : int;  (** echo of [as_shards] *)
  r_sched_stats : Aitf_parallel.Sched.stats;
      (** synchronization-window counters; all zeros when [as_shards = 1] *)
  r_shard_profiles : Aitf_obs.Profile.t list;
      (** per-shard profiler instances, in shard order — non-empty only
          when [as_shards > 1] and a profiler was attached (merge with
          {!Aitf_obs.Profile.merge} for one table) *)
  r_parallel : Aitf_obs.Json.t option;
      (** the run report's ["parallel"] telemetry section — shard count,
          lookahead, synchronization counters, per-shard event breakdown
          and (when a metrics registry was attached) the per-window
          timeline; [None] when [as_shards = 1] *)
}

val run : params -> result
(** Observability composes with sharding: an attached span collector,
    flight recorder, metrics registry or contract auditor all work at any
    [as_shards] — workers record into per-shard collectors/rings that are
    merged deterministically after the run (spans re-keyed canonically,
    flight records interleaved by (time, shard, seq)), and victim-side
    auditor observations replay through [Sched.defer] at barriers. See
    docs/PARALLEL.md and docs/OBSERVABILITY.md.

    @raise Invalid_argument when the population does not fit the address
    plan (at most 2^15 attack sources and 2^14 legitimate sources per
    domain) or the domain counts exceed the non-tier-1 domains, or when
    [as_shards < 1]. *)
