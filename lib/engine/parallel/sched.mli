(** Conservative parallel discrete-event scheduler: domain-sharded event
    queues with lookahead synchronization.

    A [Sched.t] owns [shards] independent {!Aitf_engine.Sim.t} worlds plus
    one {e global} world for run-wide machinery (the fluid fixed point,
    placement controllers, series sampling). Each shard is executed by its
    own OCaml 5 [Domain]; the global world always runs on the coordinator
    thread, alone.

    {2 Synchronization protocol}

    Execution alternates between {e shard windows} and {e global batches},
    chosen by a bounded-lag rule. Let [t_min] be the earliest pending event
    across all shards, [g] the earliest pending global event and [L] the
    {e lookahead} — the minimum latency over all registered cross-shard
    channels ({!register_channel}):

    - if [g <= t_min], the coordinator executes the global events at
      [<= g] by itself (shards are parked, so global code may freely read
      and mutate any shard's state — this is where the fluid engine and
      the placement controllers run);
    - otherwise every shard executes, in parallel, its local events with
      time strictly below [min (t_min +. L) g]. Any cross-shard message
      sent during the window carries timestamp [>= sender's clock + L >=
      horizon], so it can never land in a receiver's past — the classic
      conservative-lookahead argument, which is why channels with zero
      latency are rejected outright rather than allowed to deadlock the
      window computation.

    At the barrier closing each window the coordinator drains every
    shard's inbox in deterministic [(time, sender shard, sender sequence)]
    order and replays the thunks deferred with {!defer} in
    [(time, shard, sequence)] order. Runs are therefore reproducible for a
    fixed (seed, shard count), regardless of OS scheduling.

    With [~shards:1] the global world {e is} the single shard and {!run}
    degenerates to [Sim.run] on it — bit-identical to the sequential
    engine by construction. *)

module Sim = Aitf_engine.Sim

type t

val create : shards:int -> unit -> t
(** A scheduler with [shards] shard worlds (plus the global world when
    [shards > 1]).
    @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int

val shard_sim : t -> int -> Sim.t
(** The world owned by shard [i] (0-based). *)

val shard_sims : t -> Sim.t array
(** All shard worlds, index = shard id. With one shard this is also the
    global world. *)

val global : t -> Sim.t
(** The coordinator's world: events here run with every shard parked and
    may touch any shard's state. Equal to [shard_sim t 0] when
    [shards t = 1]. *)

val register_channel : t -> src:int -> dst:int -> lookahead:float -> unit
(** Declare a cross-shard channel (e.g. an inter-domain link whose
    endpoints partition into different shards) with its minimum latency in
    seconds. The scheduler's lookahead is the minimum over all registered
    channels; posting on unregistered pairs is not checked, so wiring code
    must register every channel it creates.
    @raise Invalid_argument if [lookahead] is zero, negative or not
    finite (a zero-latency cross-shard link would force zero-width
    windows, i.e. deadlock, so it is rejected with a clear error), or if
    [src = dst] or either index is out of range. *)

val lookahead : t -> float
(** Current lookahead ([infinity] until a channel is registered). *)

val post : t -> dst:int -> time:float -> (unit -> unit) -> unit
(** Send a timestamped message: [fn] will execute in shard [dst]'s world
    at virtual [time]. Called from a shard worker (e.g. a remote link's
    delivery seam) it enqueues into [dst]'s inbox, drained at the next
    barrier; called from the coordinator it schedules directly. *)

val defer : t -> (unit -> unit) -> unit
(** Run [fn] at the next barrier if called from a shard worker (stamped
    with the worker's current virtual time for deterministic replay
    order); run it immediately otherwise. This is the escape hatch for
    shard-phase code that must mutate global state — e.g. filter-table
    change notifications feeding the fluid mirror or a placement
    controller. *)

val run : ?until:float -> t -> unit
(** Drain every world using the protocol above. With [?until], stops once
    no event at [<= until] remains anywhere and advances all clocks to
    [until]. Worker domains are spawned on entry and joined before
    returning (also on exceptions, which are re-raised on the caller's
    thread). *)

val events_processed : t -> int
(** Total events executed across all worlds. *)

val shard_events : t -> int array
(** Events executed per shard world (index = shard id), excluding the
    global world. *)

val set_worker_init : t -> (shard:int -> unit) -> unit
(** Hook run once by each worker domain at spawn, after it has marked
    itself as executing [shard] — the seam for per-domain setup that
    must happen on the worker itself (e.g. [Span.bind_domain]: installing
    the shard's span collector and correlation-id stride in the worker's
    domain-local storage). Exceptions raised by the hook are re-raised on
    the coordinator at the first window.
    @raise Invalid_argument if called while {!run} is active. *)

type window_record = {
  w_horizon : float;  (** virtual-time horizon the window ran to *)
  w_stall : float;  (** coordinator barrier wait for this window (s) *)
  w_events : int array;  (** events executed per shard in this window *)
  w_messages : int;  (** cross-shard messages drained at its barrier *)
  w_deferred : int;  (** deferred thunks replayed at its barrier *)
}

val set_window_log : t -> max:int -> unit
(** Record a {!window_record} for each of the first [max] shard windows
    (off by default; [max = 0] turns it back off). The cap bounds memory
    on long runs — {!window_log_dropped} counts windows past it. *)

val window_log : t -> window_record list
(** Logged windows, in execution order. *)

val window_log_dropped : t -> int

type stats = {
  windows : int;  (** parallel shard windows executed *)
  global_batches : int;  (** global-phase coordinator batches *)
  messages : int;  (** cross-shard messages drained at barriers *)
  deferred : int;  (** deferred thunks replayed at barriers *)
  stall_seconds : float;
      (** coordinator time spent blocked waiting for the slowest shard of
          each window (wall-clock via [clock], nondeterministic) *)
}

val stats : t -> stats
(** Snapshot of the synchronization counters — the null-message/barrier
    accounting surfaced in run reports and BENCH_E21.json. *)

val set_clock : t -> (unit -> float) -> unit
(** Clock used for {!stats}.stall_seconds only (default
    {!set_default_clock}'s clock, initially [Sys.time] — process CPU
    time; callers with access to [Unix.gettimeofday] should install it
    for meaningful stall fractions). Never read on the simulation
    path. *)

val set_default_clock : (unit -> float) -> unit
(** Clock inherited by every scheduler created afterwards — how the CLI
    reaches schedulers that scenarios create internally (this library
    cannot depend on [unix] itself). *)

val register_metrics : t -> Aitf_obs.Metrics.t -> prefix:string -> unit
(** Register pull gauges over the live scheduler in [reg]:
    [<prefix>.shards], [.lookahead], [.windows], [.global_batches],
    [.messages], [.deferred] and [.stall_seconds]. Snapshotting after
    {!run} returns reads the final synchronization counters.
    @raise Invalid_argument on duplicate names (one registration per
    registry). *)
