module Sim = Aitf_engine.Sim

(* A cross-shard message: a closure to execute in the destination shard's
   world at [m_time]. [m_src]/[m_seq] identify the sender and its send
   order, giving barriers a deterministic drain order independent of OS
   scheduling. *)
type msg = { m_time : float; m_src : int; m_seq : int; m_fn : unit -> unit }

type inbox = { im : Mutex.t; mutable msgs : msg list }

(* A thunk deferred by shard-phase code until the barrier (global-state
   mutation that must not race other shards). Replayed in
   [(d_time, d_shard, d_seq)] order. *)
type dthunk = { d_time : float; d_shard : int; d_seq : int; d_fn : unit -> unit }

type sync = {
  m : Mutex.t;
  work : Condition.t;  (* coordinator -> workers: new window published *)
  done_ : Condition.t;  (* workers -> coordinator: window complete *)
  mutable gen : int;
  mutable horizon : float;
  mutable inclusive : bool;
  mutable remaining : int;
  mutable shutdown : bool;
  mutable failure : exn option;
}

type stats = {
  windows : int;
  global_batches : int;
  messages : int;
  deferred : int;
  stall_seconds : float;
}

(* One shard window's telemetry, recorded when the window log is enabled
   ([set_window_log]): the horizon it ran to, the coordinator's barrier
   stall, how many events each shard executed inside it, and how many
   messages/deferred thunks its closing barrier drained. *)
type window_record = {
  w_horizon : float;
  w_stall : float;
  w_events : int array;
  w_messages : int;
  w_deferred : int;
}

type t = {
  n : int;
  sims : Sim.t array;
  global_sim : Sim.t;
  mutable min_lookahead : float;
  mutable channels : int;
  inboxes : inbox array;
  out_seq : int array;  (* per-sender message counter, owner-written *)
  mutable coord_seq : int;  (* sender counter for coordinator-context posts *)
  defer_bufs : dthunk list array;  (* per-shard, owner-written *)
  defer_seq : int array;
  sync : sync;
  mutable running : bool;
  mutable clock : unit -> float;
  mutable worker_init : shard:int -> unit;
  (* stats *)
  mutable s_windows : int;
  mutable s_global : int;
  mutable s_messages : int;
  mutable s_deferred : int;
  mutable s_stall : float;
  (* window log (off unless set_window_log) *)
  mutable wlog_max : int;
  mutable wlog : window_record list;  (* newest first *)
  mutable wlog_len : int;
  mutable wlog_dropped : int;
}

(* Which shard (if any) the current domain is executing, set by workers at
   spawn. [post]/[defer] use it to stamp deterministic (shard, seq) order
   and to decide inbox-vs-direct handling, so shard-phase code needs no
   explicit context threading. *)
let ctx_key : (int * Sim.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let default_clock = ref Sys.time
let set_default_clock f = default_clock := f

let create ~shards () =
  if shards < 1 then
    invalid_arg
      (Printf.sprintf "Sched.create: shards must be >= 1 (got %d)" shards);
  let sims = Array.init shards (fun _ -> Sim.create ()) in
  let global_sim = if shards = 1 then sims.(0) else Sim.create () in
  {
    n = shards;
    sims;
    global_sim;
    min_lookahead = infinity;
    channels = 0;
    inboxes =
      Array.init shards (fun _ -> { im = Mutex.create (); msgs = [] });
    out_seq = Array.make shards 0;
    coord_seq = 0;
    defer_bufs = Array.make shards [];
    defer_seq = Array.make shards 0;
    sync =
      {
        m = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        gen = 0;
        horizon = 0.;
        inclusive = false;
        remaining = 0;
        shutdown = false;
        failure = None;
      };
    running = false;
    clock = !default_clock;
    worker_init = (fun ~shard:_ -> ());
    s_windows = 0;
    s_global = 0;
    s_messages = 0;
    s_deferred = 0;
    s_stall = 0.;
    wlog_max = 0;
    wlog = [];
    wlog_len = 0;
    wlog_dropped = 0;
  }

let shards t = t.n
let shard_sim t i = t.sims.(i)
let shard_sims t = t.sims
let global t = t.global_sim
let lookahead t = t.min_lookahead
let set_clock t clock = t.clock <- clock

let set_worker_init t f =
  if t.running then invalid_arg "Sched.set_worker_init: already running";
  t.worker_init <- f

let set_window_log t ~max =
  if max < 0 then invalid_arg "Sched.set_window_log: max must be >= 0";
  t.wlog_max <- max

let window_log t = List.rev t.wlog
let window_log_dropped t = t.wlog_dropped

let shard_events t =
  Array.map Sim.events_processed t.sims

let register_channel t ~src ~dst ~lookahead =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg
      (Printf.sprintf "Sched.register_channel: shard out of range (%d->%d, %d shards)"
         src dst t.n);
  if src = dst then
    invalid_arg
      (Printf.sprintf "Sched.register_channel: %d->%d is not cross-shard" src
         dst);
  if not (Float.is_finite lookahead) || lookahead <= 0. then
    invalid_arg
      (Printf.sprintf
         "Sched.register_channel: channel %d->%d has lookahead %g; \
          cross-shard links need strictly positive latency (a zero-latency \
          channel forces zero-width windows, i.e. deadlock)"
         src dst lookahead);
  t.channels <- t.channels + 1;
  if lookahead < t.min_lookahead then t.min_lookahead <- lookahead

let post t ~dst ~time fn =
  match Domain.DLS.get ctx_key with
  | Some (src, _) ->
    let seq = t.out_seq.(src) in
    t.out_seq.(src) <- seq + 1;
    let ib = t.inboxes.(dst) in
    Mutex.lock ib.im;
    ib.msgs <- { m_time = time; m_src = src; m_seq = seq; m_fn = fn } :: ib.msgs;
    Mutex.unlock ib.im
  | None ->
    (* Coordinator context: every shard is parked, schedule directly. *)
    t.coord_seq <- t.coord_seq + 1;
    ignore (Sim.at ~label:"xshard-delivery" t.sims.(dst) time fn)

let defer t fn =
  match Domain.DLS.get ctx_key with
  | Some (shard, sim) ->
    let seq = t.defer_seq.(shard) in
    t.defer_seq.(shard) <- seq + 1;
    t.defer_bufs.(shard) <-
      { d_time = Sim.now sim; d_shard = shard; d_seq = seq; d_fn = fn }
      :: t.defer_bufs.(shard)
  | None -> fn ()

(* ------------------------------------------------------------------ *)
(* Barrier bookkeeping                                                 *)

let drain_inboxes t =
  for i = 0 to t.n - 1 do
    let ib = t.inboxes.(i) in
    Mutex.lock ib.im;
    let msgs = ib.msgs in
    ib.msgs <- [];
    Mutex.unlock ib.im;
    match msgs with
    | [] -> ()
    | msgs ->
      let msgs =
        List.sort
          (fun a b ->
            let c = Float.compare a.m_time b.m_time in
            if c <> 0 then c
            else
              let c = compare a.m_src b.m_src in
              if c <> 0 then c else compare a.m_seq b.m_seq)
          msgs
      in
      List.iter
        (fun m ->
          t.s_messages <- t.s_messages + 1;
          ignore (Sim.at ~label:"xshard-delivery" t.sims.(i) m.m_time m.m_fn))
        msgs
  done

let drain_deferred t =
  let any = ref false in
  for i = 0 to t.n - 1 do
    if t.defer_bufs.(i) <> [] then any := true
  done;
  if !any then begin
    let all = ref [] in
    for i = 0 to t.n - 1 do
      all := List.rev_append t.defer_bufs.(i) !all;
      t.defer_bufs.(i) <- []
    done;
    let all =
      List.sort
        (fun a b ->
          let c = Float.compare a.d_time b.d_time in
          if c <> 0 then c
          else
            let c = compare a.d_shard b.d_shard in
            if c <> 0 then c else compare a.d_seq b.d_seq)
        !all
    in
    List.iter
      (fun d ->
        t.s_deferred <- t.s_deferred + 1;
        d.d_fn ())
      all
  end

(* ------------------------------------------------------------------ *)
(* Worker protocol                                                     *)

let worker t i () =
  Domain.DLS.set ctx_key (Some (i, t.sims.(i)));
  let sync = t.sync in
  (* Per-domain setup installed by the scenario (span collector binding,
     mint stride, ...). A failure here must not kill the worker — the
     barrier protocol needs every worker looping — so it is parked in
     [sync.failure] and re-raised on the coordinator at the first
     window. *)
  (try t.worker_init ~shard:i
   with e ->
     Mutex.lock sync.m;
     if sync.failure = None then sync.failure <- Some e;
     Mutex.unlock sync.m);
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock sync.m;
    while sync.gen = !my_gen && not sync.shutdown do
      Condition.wait sync.work sync.m
    done;
    if sync.shutdown then Mutex.unlock sync.m
    else begin
      my_gen := sync.gen;
      let horizon = sync.horizon and inclusive = sync.inclusive in
      Mutex.unlock sync.m;
      (try Sim.run_window ~inclusive t.sims.(i) ~horizon
       with e ->
         Mutex.lock sync.m;
         if sync.failure = None then sync.failure <- Some e;
         Mutex.unlock sync.m);
      Mutex.lock sync.m;
      sync.remaining <- sync.remaining - 1;
      if sync.remaining = 0 then Condition.signal sync.done_;
      Mutex.unlock sync.m;
      loop ()
    end
  in
  loop ()

let run_shard_window t ~horizon ~inclusive =
  let sync = t.sync in
  Mutex.lock sync.m;
  sync.horizon <- horizon;
  sync.inclusive <- inclusive;
  sync.remaining <- t.n;
  sync.gen <- sync.gen + 1;
  Condition.broadcast sync.work;
  let t0 = t.clock () in
  while sync.remaining > 0 do
    Condition.wait sync.done_ sync.m
  done;
  let stall = t.clock () -. t0 in
  t.s_stall <- t.s_stall +. stall;
  let failure = sync.failure in
  sync.failure <- None;
  Mutex.unlock sync.m;
  t.s_windows <- t.s_windows + 1;
  match failure with Some e -> raise e | None -> stall

let min_next_shard t =
  let best = ref infinity in
  Array.iter
    (fun sim ->
      match Sim.next_time sim with
      | Some time when time < !best -> best := time
      | _ -> ())
    t.sims;
  !best

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)

let run_parallel ?until t =
  let upto = match until with None -> infinity | Some u -> u in
  let sync = t.sync in
  sync.gen <- 0;
  sync.shutdown <- false;
  sync.failure <- None;
  let workers = Array.init t.n (fun i -> Domain.spawn (worker t i)) in
  let join () =
    Mutex.lock sync.m;
    sync.shutdown <- true;
    Condition.broadcast sync.work;
    Mutex.unlock sync.m;
    Array.iter Domain.join workers
  in
  Fun.protect ~finally:join @@ fun () ->
  let rec loop () =
    let s_min = min_next_shard t in
    let g = match Sim.next_time t.global_sim with None -> infinity | Some x -> x in
    let tmin = Float.min s_min g in
    if tmin = infinity || tmin > upto then ()
    else if g <= s_min then begin
      (* Global batch: shards are parked and have no event below [g], so
         the coordinator may execute global events at [<= g] alone —
         reading or mutating any shard's state (fluid recompute, placement
         epochs, series sampling) without races. *)
      Sim.run_window ~inclusive:true t.global_sim ~horizon:g;
      t.s_global <- t.s_global + 1;
      loop ()
    end
    else begin
      (* Shard window: every shard executes local events strictly below
         the horizon in parallel. Any message sent during the window
         carries time >= t_min + lookahead >= horizon, so it cannot land
         in a receiver's past; capping at [g] keeps shard state frozen at
         or before the next global event. *)
      let h = Float.min (s_min +. t.min_lookahead) g in
      let horizon, inclusive = if upto < h then (upto, true) else (h, false) in
      if t.wlog_max = 0 then begin
        let (_ : float) = run_shard_window t ~horizon ~inclusive in
        drain_inboxes t;
        drain_deferred t
      end
      else begin
        let ev0 = Array.map Sim.events_processed t.sims in
        let msg0 = t.s_messages and def0 = t.s_deferred in
        let stall = run_shard_window t ~horizon ~inclusive in
        drain_inboxes t;
        drain_deferred t;
        if t.wlog_len < t.wlog_max then begin
          let ev =
            Array.mapi (fun i sim -> Sim.events_processed sim - ev0.(i)) t.sims
          in
          t.wlog <-
            {
              w_horizon = horizon;
              w_stall = stall;
              w_events = ev;
              w_messages = t.s_messages - msg0;
              w_deferred = t.s_deferred - def0;
            }
            :: t.wlog;
          t.wlog_len <- t.wlog_len + 1
        end
        else t.wlog_dropped <- t.wlog_dropped + 1
      end;
      loop ()
    end
  in
  loop ();
  match until with
  | None -> ()
  | Some u ->
    Array.iter (fun sim -> Sim.advance_to sim u) t.sims;
    Sim.advance_to t.global_sim u

let run ?until t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      if t.n = 1 then Sim.run ?until t.global_sim else run_parallel ?until t)

let events_processed t =
  if t.n = 1 then Sim.events_processed t.global_sim
  else
    Array.fold_left (fun acc sim -> acc + Sim.events_processed sim) 0 t.sims
    + Sim.events_processed t.global_sim

let stats t =
  {
    windows = t.s_windows;
    global_batches = t.s_global;
    messages = t.s_messages;
    deferred = t.s_deferred;
    stall_seconds = t.s_stall;
  }

module Metrics = Aitf_obs.Metrics

(* Pull gauges over the live scheduler: snapshotting the registry after
   [run] returns reads the final synchronization counters. Names match
   the historical CLI report keys ([sched.windows], ...). *)
let register_metrics t reg ~prefix =
  let gauge name help read =
    Metrics.register_gauge reg ~help (prefix ^ "." ^ name) read
  in
  gauge "shards" "configured shard count" (fun () -> float_of_int t.n);
  gauge "lookahead" "minimum cross-shard channel latency (s)" (fun () ->
      t.min_lookahead);
  gauge "windows" "parallel shard windows executed" (fun () ->
      float_of_int t.s_windows);
  gauge "global_batches" "global-phase coordinator batches" (fun () ->
      float_of_int t.s_global);
  gauge "messages" "cross-shard messages drained at barriers" (fun () ->
      float_of_int t.s_messages);
  gauge "deferred" "deferred thunks replayed at barriers" (fun () ->
      float_of_int t.s_deferred);
  gauge "stall_seconds" "coordinator barrier-wait wall-clock (s)" (fun () ->
      t.s_stall)
