type entry = {
  time : float;
  seq : int;
  action : unit -> unit;
  label : string option;
  mutable cancelled : bool;
  owner : t;
}

and t = {
  heap : entry Heap.t;
  mutable next_seq : int;
  mutable cancelled_pending : int;
      (* cancelled entries still sitting in the heap, so that [length] can
         report live entries without scanning *)
  mutable total_cancelled : int;
      (* monotone count of every [cancel] that took effect *)
  mutable max_length : int;
      (* peak live (non-cancelled) length ever observed *)
}

type handle = entry

let cmp_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~cmp:cmp_entry;
    next_seq = 0;
    cancelled_pending = 0;
    total_cancelled = 0;
    max_length = 0;
  }

let schedule ?label q ~time action =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.schedule: non-finite time";
  let entry =
    { time; seq = q.next_seq; action; label; cancelled = false; owner = q }
  in
  q.next_seq <- q.next_seq + 1;
  Heap.push q.heap entry;
  let live = Heap.length q.heap - q.cancelled_pending in
  if live > q.max_length then q.max_length <- live;
  entry

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    h.owner.cancelled_pending <- h.owner.cancelled_pending + 1;
    h.owner.total_cancelled <- h.owner.total_cancelled + 1
  end

let is_cancelled h = h.cancelled

let rec drop_cancelled q =
  match Heap.peek q.heap with
  | Some e when e.cancelled ->
    ignore (Heap.pop q.heap);
    q.cancelled_pending <- q.cancelled_pending - 1;
    drop_cancelled q
  | _ -> ()

let next_time q =
  drop_cancelled q;
  match Heap.peek q.heap with None -> None | Some e -> Some e.time

let pop q =
  drop_cancelled q;
  match Heap.pop q.heap with
  | None -> None
  | Some e -> Some (e.time, e.label, e.action)

let length q = Heap.length q.heap - q.cancelled_pending

let is_empty q =
  drop_cancelled q;
  Heap.is_empty q.heap

let total_scheduled q = q.next_seq
let total_cancelled q = q.total_cancelled
let max_length q = q.max_length
