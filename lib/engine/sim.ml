type handle = Event_queue.handle

type t = {
  queue : Event_queue.t;
  mutable now : float;
  mutable running : bool;
  mutable stop_requested : bool;
  mutable events_processed : int;
  mutable profile_hook : (string option -> float -> int -> unit) option;
}

(* Opt-in profiler hook (installed by [Aitf_obs.Profile], which sits above
   this library in the dependency graph). The hook is per-instance so that
   several worlds in one process — matrix cells, the shards of a parallel
   run — can't interleave their buckets; the default slot seeds every world
   created while it is set, which is how [Profile.attach] keeps hooking
   scenario-created sims it never sees. Receives the event's category
   label, its wall-clock CPU cost in seconds, and the queue depth after it
   ran. One branch per event when unset. *)
let default_profile_hook : (string option -> float -> int -> unit) option ref
    =
  ref None

let set_default_profile_hook f = default_profile_hook := Some f
let clear_default_profile_hook () = default_profile_hook := None
let set_profile_hook sim f = sim.profile_hook <- Some f
let clear_profile_hook sim = sim.profile_hook <- None

let create () =
  {
    queue = Event_queue.create ();
    now = 0.0;
    running = false;
    stop_requested = false;
    events_processed = 0;
    profile_hook = !default_profile_hook;
  }

let now sim = sim.now

let at ?label sim time f =
  if time < sim.now then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" time sim.now);
  Event_queue.schedule ?label sim.queue ~time f

let after ?label sim delay f =
  let delay = if delay < 0. then 0. else delay in
  Event_queue.schedule ?label sim.queue ~time:(sim.now +. delay) f

let cancel = Event_queue.cancel

let step sim =
  match Event_queue.pop sim.queue with
  | None -> false
  | Some (time, label, action) ->
    sim.now <- time;
    sim.events_processed <- sim.events_processed + 1;
    (match sim.profile_hook with
    | None -> action ()
    | Some probe ->
      let t0 = Sys.time () in
      action ();
      probe label (Sys.time () -. t0) (Event_queue.length sim.queue));
    true

let run ?until ?max_events sim =
  if sim.running then invalid_arg "Sim.run: already running";
  sim.running <- true;
  sim.stop_requested <- false;
  let horizon = match until with None -> infinity | Some t -> t in
  let budget = ref (match max_events with None -> -1 | Some n -> n) in
  let rec loop () =
    if sim.stop_requested || !budget = 0 then ()
    else
      match Event_queue.next_time sim.queue with
      | None -> ()
      | Some t when t > horizon -> ()
      | Some _ ->
        ignore (step sim);
        if !budget > 0 then decr budget;
        loop ()
  in
  Fun.protect ~finally:(fun () -> sim.running <- false) loop;
  (* Only advance the clock to the horizon when the run actually drained
     that far (not when stopped or event-budget-exhausted mid-way). *)
  match until with
  | Some t when t > sim.now && (not sim.stop_requested) && !budget <> 0 ->
    sim.now <- t
  | _ -> ()

let next_time sim = Event_queue.next_time sim.queue

let run_window ?(inclusive = false) sim ~horizon =
  if sim.running then invalid_arg "Sim.run_window: already running";
  sim.running <- true;
  sim.stop_requested <- false;
  let executable t = if inclusive then t <= horizon else t < horizon in
  let rec loop () =
    if sim.stop_requested then ()
    else
      match Event_queue.next_time sim.queue with
      | Some t when executable t ->
        ignore (step sim);
        loop ()
      | _ -> ()
  in
  Fun.protect ~finally:(fun () -> sim.running <- false) loop

let advance_to sim time =
  (match Event_queue.next_time sim.queue with
  | Some t when t < time ->
    invalid_arg
      (Printf.sprintf
         "Sim.advance_to: event pending at %g before target %g" t time)
  | _ -> ());
  if time > sim.now then sim.now <- time

let stop sim = sim.stop_requested <- true
let events_processed sim = sim.events_processed
let pending sim = Event_queue.length sim.queue
let peak_pending sim = Event_queue.max_length sim.queue
let total_scheduled sim = Event_queue.total_scheduled sim.queue
let total_cancelled sim = Event_queue.total_cancelled sim.queue
