type event = { time : float; category : string; message : string }
type sink = event -> unit

let sinks : sink list ref = ref []

let add_sink s = sinks := s :: !sinks
let clear_sinks () = sinks := []
let enabled () = !sinks <> []

let emit ~time ~category message =
  match !sinks with
  | [] -> ()
  | l ->
    let e = { time; category; message } in
    List.iter (fun s -> s e) l

let emitf ~time ~category fmt =
  (* The mli promises the message is only built when a sink is registered;
     [kasprintf] would format eagerly, so bail to [ikfprintf] when idle. *)
  if enabled () then
    Format.kasprintf (fun message -> emit ~time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let printing_sink ?(out = Format.std_formatter) () e =
  Format.fprintf out "%10.4f  [%-12s] %s@." e.time e.category e.message

let collecting_sink () =
  let acc = ref [] in
  let sink e = acc := e :: !acc in
  (sink, fun () -> List.rev !acc)
