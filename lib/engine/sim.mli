(** Simulation world: a virtual clock driving an event queue.

    A [Sim.t] owns the current virtual time and the pending events. All
    simulation components (links, timers, protocol state machines) schedule
    closures against it. Execution is strictly single-threaded and
    deterministic: events fire in (time, insertion-order) order.

    Times are absolute, in seconds. Use {!after} for relative scheduling. *)

type t

type handle = Event_queue.handle
(** Cancellation token for a scheduled event. *)

val create : unit -> t
(** A fresh world at time [0.0] with no pending events. *)

val now : t -> float
(** Current virtual time in seconds. *)

val at : ?label:string -> t -> float -> (unit -> unit) -> handle
(** [at sim time f] schedules [f] at absolute [time]. [?label] names the
    event's category for the opt-in profiler (see {!set_profile_hook}); it
    never affects ordering or execution.
    @raise Invalid_argument if [time] is in the past or not finite. *)

val after : ?label:string -> t -> float -> (unit -> unit) -> handle
(** [after sim delay f] schedules [f] at [now sim +. delay]. A negative
    [delay] is clamped to [0.] (fires "immediately", after already-queued
    events at the current instant). *)

val cancel : handle -> unit
(** Cancel a pending event; idempotent, harmless after firing. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue. With [?until], stops once the next event would
    fire strictly after [until] and advances the clock to [until]. Without
    it, runs until no events remain. [?max_events] bounds the number of
    events executed by this call — a guard against runaway self-scheduling
    loops in scenario code. Re-entrant calls are rejected. *)

val step : t -> bool
(** Execute the single earliest event, if any. Returns [false] when the
    queue is empty. *)

val next_time : t -> float option
(** Timestamp of the earliest pending event, if any. The parallel
    scheduler uses this to compute the conservative execution horizon. *)

val run_window : ?inclusive:bool -> t -> horizon:float -> unit
(** Drain events with time strictly below [horizon] ([<= horizon] when
    [inclusive]), leaving the clock at the last executed event rather than
    advancing it to the horizon. This is the shard-phase primitive of the
    conservative parallel scheduler: each shard may safely execute every
    local event below the global horizon, because no in-flight cross-shard
    message can carry an earlier timestamp. Re-entrant calls are
    rejected. *)

val advance_to : t -> float -> unit
(** Force the clock forward to [time] (no-op if already past it), used to
    align shard clocks with the end of a parallel run.
    @raise Invalid_argument if an event earlier than [time] is pending. *)

val stop : t -> unit
(** Request that the current [run] stop after the event being processed. *)

val events_processed : t -> int
(** Total number of events executed so far (for tests and reporting). *)

val pending : t -> int
(** Number of events still queued (including cancelled, uncollected ones). *)

val peak_pending : t -> int
(** Peak live (non-cancelled) event-queue length observed so far. *)

val total_scheduled : t -> int
(** Monotone count of every event ever scheduled. *)

val total_cancelled : t -> int
(** Monotone count of cancellations that took effect; with
    {!total_scheduled} this yields the cancelled fraction. *)

val set_profile_hook : t -> (string option -> float -> int -> unit) -> unit
(** Install this world's per-event profiler probe: after each event
    executes, the probe receives its category label, its wall-clock CPU
    cost in seconds and the live queue depth. The hook is per-instance so
    that two engines in one process (matrix cells, parallel shards) cannot
    interleave buckets. One branch per event when no probe is installed.
    Timing uses the process clock, so anything derived from it is
    nondeterministic — the probe must never feed back into simulation
    state. *)

val clear_profile_hook : t -> unit
(** Remove this world's profiler probe (used between runs and tests). *)

val set_default_profile_hook : (string option -> float -> int -> unit) -> unit
(** Install the probe inherited by every world subsequently created
    ({!create} copies the default into the instance slot). This is how
    [Profile.attach] hooks sims that scenarios create internally. Worlds
    that already exist are unaffected. *)

val clear_default_profile_hook : unit -> unit
(** Stop seeding new worlds with a probe. Existing instances keep theirs
    until {!clear_profile_hook}. *)
