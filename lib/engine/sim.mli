(** Simulation world: a virtual clock driving an event queue.

    A [Sim.t] owns the current virtual time and the pending events. All
    simulation components (links, timers, protocol state machines) schedule
    closures against it. Execution is strictly single-threaded and
    deterministic: events fire in (time, insertion-order) order.

    Times are absolute, in seconds. Use {!after} for relative scheduling. *)

type t

type handle = Event_queue.handle
(** Cancellation token for a scheduled event. *)

val create : unit -> t
(** A fresh world at time [0.0] with no pending events. *)

val now : t -> float
(** Current virtual time in seconds. *)

val at : ?label:string -> t -> float -> (unit -> unit) -> handle
(** [at sim time f] schedules [f] at absolute [time]. [?label] names the
    event's category for the opt-in profiler (see {!set_profile_hook}); it
    never affects ordering or execution.
    @raise Invalid_argument if [time] is in the past or not finite. *)

val after : ?label:string -> t -> float -> (unit -> unit) -> handle
(** [after sim delay f] schedules [f] at [now sim +. delay]. A negative
    [delay] is clamped to [0.] (fires "immediately", after already-queued
    events at the current instant). *)

val cancel : handle -> unit
(** Cancel a pending event; idempotent, harmless after firing. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue. With [?until], stops once the next event would
    fire strictly after [until] and advances the clock to [until]. Without
    it, runs until no events remain. [?max_events] bounds the number of
    events executed by this call — a guard against runaway self-scheduling
    loops in scenario code. Re-entrant calls are rejected. *)

val step : t -> bool
(** Execute the single earliest event, if any. Returns [false] when the
    queue is empty. *)

val stop : t -> unit
(** Request that the current [run] stop after the event being processed. *)

val events_processed : t -> int
(** Total number of events executed so far (for tests and reporting). *)

val pending : t -> int
(** Number of events still queued (including cancelled, uncollected ones). *)

val peak_pending : t -> int
(** Peak live (non-cancelled) event-queue length observed so far. *)

val total_scheduled : t -> int
(** Monotone count of every event ever scheduled. *)

val total_cancelled : t -> int
(** Monotone count of cancellations that took effect; with
    {!total_scheduled} this yields the cancelled fraction. *)

val set_profile_hook : (string option -> float -> int -> unit) -> unit
(** Install the global per-event profiler probe: after each event executes,
    the probe receives its category label, its wall-clock CPU cost in
    seconds and the live queue depth. One branch per event when no probe is
    installed. Timing uses the process clock, so anything derived from it
    is nondeterministic — the probe must never feed back into simulation
    state. *)

val clear_profile_hook : unit -> unit
(** Remove the profiler probe (used between runs and test cases). *)
