(** Time-ordered event queue with cancellation.

    Events are closures scheduled at an absolute timestamp. Ties are broken
    by insertion order (FIFO among events with equal timestamps), which keeps
    simulations deterministic. Cancellation is O(1): the event is flagged and
    skipped when it reaches the head of the queue. *)

type t

type handle
(** Token identifying a scheduled event; used to cancel it. *)

val create : unit -> t

val schedule : ?label:string -> t -> time:float -> (unit -> unit) -> handle
(** [schedule q ~time f] arranges for [f ()] to run when the queue is drained
    past [time]. [time] must be finite. [?label] names the event's category
    for the opt-in profiler; it never affects ordering or execution. *)

val cancel : handle -> unit
(** Cancel the event if it has not fired yet; idempotent. *)

val is_cancelled : handle -> bool

val next_time : t -> float option
(** Timestamp of the earliest pending (non-cancelled) event. *)

val pop : t -> (float * string option * (unit -> unit)) option
(** Remove and return the earliest pending event with its timestamp and
    category label. Cancelled events are discarded silently. *)

val length : t -> int
(** Number of pending (non-cancelled) events — consistent with {!is_empty}:
    [length q = 0] iff [is_empty q]. *)

val is_empty : t -> bool
(** [true] iff no pending (non-cancelled) events remain. *)

val total_scheduled : t -> int
(** Monotone count of every event ever scheduled on this queue. *)

val total_cancelled : t -> int
(** Monotone count of every cancellation that took effect (at most once per
    handle). With {!total_scheduled} this yields the cancelled fraction. *)

val max_length : t -> int
(** Peak live (non-cancelled) queue length observed so far. *)
