type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array; (* slots >= size are garbage *)
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    (* [x] is only used to seed the fresh slots; it is a live value so no
       unsafe tricks are needed. *)
    let data = Array.make new_cap x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

(* Halve the backing array once three quarters of it sit unused. Besides
   keeping memory proportional to the live heap, reallocation discards every
   stale alias beyond [size] — [grow]'s seed copies and [pop]'s vacated-slot
   aliases — so a shrinking heap cannot pin long-popped elements. *)
let shrink h =
  let cap = Array.length h.data in
  if h.size > 0 && h.size <= cap / 4 then begin
    let data = Array.make (max 16 (cap / 2)) h.data.(0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Overwrite the vacated slot with an alias of a live element, so the
         array does not retain the value that just moved out of it (nor,
         transitively, the popped one) past its heap lifetime. *)
      h.data.(h.size) <- h.data.(0);
      sift_down h 0;
      shrink h
    end
    else
      (* Popped the last element: the array holds nothing but stale
         references (including [grow]'s seed copies) — drop it wholesale. *)
      h.data <- [||];
    Some top
  end

let clear h =
  h.data <- [||];
  h.size <- 0

let to_list h = Array.to_list (Array.sub h.data 0 h.size)
