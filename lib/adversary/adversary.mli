(** Adversary playbooks: seeded attacks on the AITF protocol itself.

    The paper's Section III argues AITF stays useful when the protocol —
    not just the victim's link — is the target. These playbooks reproduce
    that adversary: each one aims at a different piece of protocol state,
    draws randomness only from the seeded [Aitf_engine.Rng] it is launched
    with (identical seeds replay bit-identically), and exports what it did
    through the metrics registry under ["adversary.<kind>.*"].

    - {b slot-exhaustion}: a botnet rotating [sources] spoofed header
      sources at [rate] bits/s towards the victim, forcing one temporary
      filter per pool member — pressure on the nv = R1·Ttmp slot budget.
      The {!Aitf_filter.Overload} manager is the countermeasure.
    - {b shadow-exhaustion}: a compromised client in the victim's cone
      requesting filters for [flows] distinct nonexistent flows, filling
      the gateway's DRAM shadow (mv = R1·T entries, TTL = T each).
    - {b request-flood}: the same client at full blast with
      ever-fresh flows — burns its own R1 contract; the policer holds the
      damage to R1 admitted requests per second.
    - {b reply-replay}: a compromised on-path router replaying snooped
      verification replies after [delay] and firing guessed nonces at
      [guess_rate]; the handshake's nonce table classifies them as
      duplicates and bogus respectively.
    - {b route-forgery}: a compromised legacy router rewriting the route
      record on attack packets to an [innocent] address; round 0 is wasted
      on it, escalation recovers along the honest stamps.
    - {b lying-filter-node}: a Byzantine contracted gateway that accepts
      filtering requests and then cheats — silently ([Accept_ignore]),
      by rate-limiting instead of blocking ([Partial leak]), by
      fabricating receipts without key material ([Forge]), or by replaying
      its first genuine receipt forever ([Replay]). Unlike the other
      playbooks it has no traffic loop of its own: {!corrupt} flips the
      {!Aitf_core.Gateway.contract_behavior} of a [fraction] of on-path
      gateways at scenario setup, and the victim-side
      [Aitf_contract.Auditor] is the countermeasure (docs/CONTRACTS.md). *)

open Aitf_net
open Aitf_core

(** How a lying filter node cheats on its contract. *)
type lying_mode =
  | Accept_ignore
  | Partial of float  (** residual leak, bytes/s *)
  | Forge
  | Replay

type playbook =
  | Slot_exhaustion of { sources : int; rate : float }  (** rate in bits/s *)
  | Shadow_exhaustion of { flows : int; rate : float }
      (** rate in requests/s *)
  | Request_flood of { rate : float }  (** requests/s *)
  | Reply_replay of { delay : float; guess_rate : float }
  | Route_forgery of { innocent : Addr.t }
  | Lying_filter_node of { mode : lying_mode; fraction : float }
      (** [fraction] of on-path gateways corrupted, in [0,1] *)

type env = {
  net : Network.t;
  attacker : Node.t;  (** data-plane bot (slot exhaustion) *)
  insider : Node.t;  (** compromised client inside the victim's cone *)
  tap : Node.t;  (** compromised on-path router (replay/forgery) *)
  victim : Addr.t;
  victim_gw : Addr.t;  (** the gateway the insider's requests go to *)
  spoof_base : Addr.t;  (** base of the spoofed-source pool *)
}

type t

val launch : ?start:float -> rng:Aitf_engine.Rng.t -> env -> playbook -> t
(** Start the playbook at virtual time [start] (default 1.0 s). All
    randomness comes from [rng]; callers should pass a dedicated
    [Rng.split] so launching an adversary does not perturb other streams.
    Raises [Invalid_argument] for {!Lying_filter_node}, which corrupts
    gateways at scenario setup via {!corrupt} instead. *)

val corrupt : mode:lying_mode -> Gateway.t list -> int
(** Flip the contract behaviour of each gateway to the lying [mode]
    (they must have contracts enabled). Returns how many were corrupted.
    The caller decides {e which} gateways — e.g. a seeded
    [byzantine-fraction] pick of the on-path ASes. *)

val behavior_of_mode : lying_mode -> Gateway.contract_behavior

val halt : t -> unit
val playbook : t -> playbook

val packets_sent : t -> int
val requests_sent : t -> int
val replies_snooped : t -> int
val replays_sent : t -> int
val guesses_sent : t -> int
val stamps_forged : t -> int

val kind : playbook -> string

val playbook_of_string : string -> (playbook, string) result
(** Parse a CLI spec: ["<name>[:key=val,...]"], e.g.
    ["slot-exhaustion:sources=128,rate=2e6"] or ["route-forgery"]. Unknown
    names or keys are reported, not ignored. *)

val playbook_to_string : playbook -> string
(** Inverse of {!playbook_of_string} (canonical form). *)
