module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_filter
open Aitf_core

type lying_mode = Accept_ignore | Partial of float | Forge | Replay

type playbook =
  | Slot_exhaustion of { sources : int; rate : float }
  | Shadow_exhaustion of { flows : int; rate : float }
  | Request_flood of { rate : float }
  | Reply_replay of { delay : float; guess_rate : float }
  | Route_forgery of { innocent : Addr.t }
  | Lying_filter_node of { mode : lying_mode; fraction : float }

type env = {
  net : Network.t;
  attacker : Node.t;
  insider : Node.t;
  tap : Node.t;
  victim : Addr.t;
  victim_gw : Addr.t;
  spoof_base : Addr.t;
}

type t = {
  sim : Sim.t;
  playbook : playbook;
  mutable halted : bool;
  mutable packets_sent : int;
  mutable requests_sent : int;
  mutable replies_snooped : int;
  mutable replays_sent : int;
  mutable guesses_sent : int;
  mutable stamps_forged : int;
}

let kind = function
  | Slot_exhaustion _ -> "slot-exhaustion"
  | Shadow_exhaustion _ -> "shadow-exhaustion"
  | Request_flood _ -> "request-flood"
  | Reply_replay _ -> "reply-replay"
  | Route_forgery _ -> "route-forgery"
  | Lying_filter_node _ -> "lying-filter-node"

let behavior_of_mode = function
  | Accept_ignore -> Gateway.Accept_ignore
  | Partial leak -> Gateway.Partial_policing leak
  | Forge -> Gateway.Forge_receipts
  | Replay -> Gateway.Replay_receipts

(* The Byzantine filter node is not an injector with its own traffic loop:
   it corrupts the compliance behaviour of already-contracted gateways, so
   it plugs in at scenario setup rather than through {!launch}. *)
let corrupt ~mode gateways =
  List.iter
    (fun gw -> Gateway.set_contract_behavior gw (behavior_of_mode mode))
    gateways;
  List.length gateways

let attack_pkt_size = 1000

(* Periodic emission driven purely off the virtual clock; randomness, where
   a playbook needs any, comes only from the seeded [rng] passed to
   {!launch}, so identical seeds replay bit-identically. *)
let every t ~start ~gap f =
  let rec arm at =
    ignore
      (Sim.at t.sim at (fun () ->
           if not t.halted then begin
             f ();
             arm (at +. gap)
           end))
  in
  arm start

(* Botnet rotating spoofed sources towards the victim: every packet is real
   attack traffic, but the header source walks a pool of [sources]
   addresses, so the victim's gateway needs one temporary filter per pool
   member — pressure aimed at the nv = R1·Ttmp slot budget. *)
let launch_slot_exhaustion t ~rng ~start env ~sources ~rate =
  if sources < 1 then invalid_arg "Adversary: sources must be >= 1";
  let gap = float_of_int (attack_pkt_size * 8) /. rate in
  every t ~start ~gap (fun () ->
      let spoofed = Addr.add env.spoof_base (Rng.int rng sources) in
      t.packets_sent <- t.packets_sent + 1;
      Network.originate env.net env.attacker
        (Packet.make ~spoofed_src:spoofed ~src:env.attacker.Node.addr
           ~dst:env.victim ~size:attack_pkt_size
           (Packet.Data { flow_id = 900; attack = true })))

(* A compromised client flooding its own gateway with filtering requests
   for flows that do not exist. Each request names the insider itself as
   requestor and destination, so it passes the cone check and burns the
   insider's own R1 contract; the admitted residue costs the gateway one
   shadow entry (TTL = T) and one temporary filter per distinct flow. *)
let launch_request_flood t ~rng ~start env ~pool ~rate =
  let gap = 1. /. rate in
  every t ~start ~gap (fun () ->
      let src = Addr.add env.spoof_base (Rng.int rng pool) in
      let flow =
        Flow_label.host_pair src env.insider.Node.addr
      in
      t.requests_sent <- t.requests_sent + 1;
      Network.originate env.net env.insider
        (Message.packet ~src:env.insider.Node.addr ~dst:env.victim_gw
           (Message.Filtering_request
              {
                Message.flow;
                target = Message.To_victim_gateway;
                duration = 60.;
                path = [];
                hops = 0;
                requestor = env.insider.Node.addr;
                (* forged: carries no correlation id, so span tracing sees
                   nothing — exactly like a pre-AITF sender *)
                corr = 0;
                auth = 0L;
              })))

(* A compromised on-path router attacking the 3-way handshake: snoop
   verification replies it forwards, replay each one [delay] seconds later
   (spoofing the original source), and fire off replies with guessed nonces
   at [guess_rate] for the flows it has seen queried. The handshake's nonce
   table classifies the replays as duplicates and the guesses as bogus —
   the defended-against cases; an on-path adversary who also injects the
   requests remains outside AITF's threat model (see docs/ADVERSARY.md). *)
let launch_reply_replay t ~rng ~start env ~delay ~guess_rate =
  let seen_queries : (Flow_label.t * Addr.t) list ref = ref [] in
  Node.add_hook env.tap (fun _node (pkt : Packet.t) ->
      (match pkt.Packet.payload with
      | Message.Verification_reply { flow; nonce } ->
        t.replies_snooped <- t.replies_snooped + 1;
        let src = pkt.Packet.src and dst = pkt.Packet.dst in
        ignore
          (Sim.after t.sim delay (fun () ->
               if not t.halted then begin
                 t.replays_sent <- t.replays_sent + 1;
                 Network.originate env.net env.tap
                   (Packet.make ~spoofed_src:src
                      ~src:env.tap.Node.addr ~dst ~proto:Message.protocol_number
                      ~size:Message.message_size
                      (Message.Verification_reply { flow; nonce }))
               end))
      | Message.Verification_query { flow; _ } ->
        if
          not
            (List.exists
               (fun (f, _) -> Flow_label.equal f flow)
               !seen_queries)
        then seen_queries := (flow, pkt.Packet.src) :: !seen_queries
      | _ -> ());
      Node.Continue);
  if guess_rate > 0. then
    every t ~start ~gap:(1. /. guess_rate) (fun () ->
        match !seen_queries with
        | [] -> ()
        | l ->
          let flow, querier = List.nth l (Rng.int rng (List.length l)) in
          t.guesses_sent <- t.guesses_sent + 1;
          Network.originate env.net env.tap
            (Packet.make ~spoofed_src:env.victim ~src:env.tap.Node.addr
               ~dst:querier ~proto:Message.protocol_number
               ~size:Message.message_size
               (Message.Verification_reply { flow; nonce = Rng.nonce rng })))

(* A compromised legacy router whose forwarding plane rewrites the route
   record on attack packets, pointing the traceback at an innocent address.
   Round 0 of the victim's response is then wasted on a gateway that never
   answers; escalation climbs the honest remainder of the stamps and
   protection lands victim-side instead of attacker-side. *)
let launch_route_forgery t env ~innocent =
  Node.add_hook env.tap (fun _node (pkt : Packet.t) ->
      (match pkt.Packet.payload with
      | Packet.Data { attack = true; _ } ->
        t.stamps_forged <- t.stamps_forged + 1;
        pkt.Packet.route_record <- [ innocent ]
      | _ -> ());
      Node.Continue)

let register_metrics t =
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric =
        Printf.sprintf "adversary.%s.%s" (kind t.playbook) metric
      in
      register_counter reg (p "packets_sent") ~unit_:"packets"
        ~help:"Attack data packets emitted by this playbook" (fun () ->
          float_of_int t.packets_sent);
      register_counter reg (p "requests_sent") ~unit_:"requests"
        ~help:"Forged/abusive filtering requests emitted" (fun () ->
          float_of_int t.requests_sent);
      register_counter reg (p "replays_sent") ~unit_:"messages"
        ~help:"Snooped verification replies replayed" (fun () ->
          float_of_int t.replays_sent);
      register_counter reg (p "guesses_sent") ~unit_:"messages"
        ~help:"Verification replies sent with guessed nonces" (fun () ->
          float_of_int t.guesses_sent);
      register_counter reg (p "stamps_forged") ~unit_:"packets"
        ~help:"Attack packets whose route record was rewritten" (fun () ->
          float_of_int t.stamps_forged))

let launch ?(start = 1.) ~rng env playbook =
  let t =
    {
      sim = Network.sim env.net;
      playbook;
      halted = false;
      packets_sent = 0;
      requests_sent = 0;
      replies_snooped = 0;
      replays_sent = 0;
      guesses_sent = 0;
      stamps_forged = 0;
    }
  in
  (match playbook with
  | Slot_exhaustion { sources; rate } ->
    launch_slot_exhaustion t ~rng ~start env ~sources ~rate
  | Shadow_exhaustion { flows; rate } ->
    launch_request_flood t ~rng ~start env ~pool:flows ~rate
  | Request_flood { rate } ->
    (* Fresh-looking flow per request with overwhelming probability: the
       point is the R1 burn, not the shadow fill. *)
    launch_request_flood t ~rng ~start env ~pool:1_000_000 ~rate
  | Reply_replay { delay; guess_rate } ->
    launch_reply_replay t ~rng ~start env ~delay ~guess_rate
  | Route_forgery { innocent } -> launch_route_forgery t env ~innocent
  | Lying_filter_node _ ->
    invalid_arg
      "Adversary.launch: lying-filter-node corrupts contracted gateways at \
       scenario setup (aitf_sim internet --contracts --byzantine-fraction); \
       use Adversary.corrupt");
  register_metrics t;
  t

let halt t = t.halted <- true
let playbook t = t.playbook
let packets_sent t = t.packets_sent
let requests_sent t = t.requests_sent
let replies_snooped t = t.replies_snooped
let replays_sent t = t.replays_sent
let guesses_sent t = t.guesses_sent
let stamps_forged t = t.stamps_forged

(* --- CLI spec parsing ----------------------------------------------------- *)

let default_innocent = Addr.of_string "192.0.2.1"

let playbook_of_string s =
  let name, kvs =
    match String.index_opt s ':' with
    | None -> (s, [])
    | Some i ->
      ( String.sub s 0 i,
        String.sub s (i + 1) (String.length s - i - 1)
        |> String.split_on_char ','
        |> List.filter (fun w -> w <> "")
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | None -> (kv, "")
               | Some j ->
                 ( String.sub kv 0 j,
                   String.sub kv (j + 1) (String.length kv - j - 1) )) )
  in
  let num key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad %s=%S" key v))
  in
  let ( let* ) = Result.bind in
  let known allowed =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
    | Some (k, _) ->
      Error (Printf.sprintf "unknown key %S for playbook %s" k name)
    | None -> Ok ()
  in
  match name with
  | "slot-exhaustion" ->
    let* () = known [ "sources"; "rate" ] in
    let* sources = num "sources" 128. in
    let* rate = num "rate" 2e6 in
    Ok (Slot_exhaustion { sources = int_of_float sources; rate })
  | "shadow-exhaustion" ->
    let* () = known [ "flows"; "rate" ] in
    let* flows = num "flows" 4096. in
    let* rate = num "rate" 200. in
    Ok (Shadow_exhaustion { flows = int_of_float flows; rate })
  | "request-flood" ->
    let* () = known [ "rate" ] in
    let* rate = num "rate" 1000. in
    Ok (Request_flood { rate })
  | "reply-replay" ->
    let* () = known [ "delay"; "guess-rate" ] in
    let* delay = num "delay" 0.5 in
    let* guess_rate = num "guess-rate" 50. in
    Ok (Reply_replay { delay; guess_rate })
  | "route-forgery" -> (
    let* () = known [ "innocent" ] in
    match List.assoc_opt "innocent" kvs with
    | None -> Ok (Route_forgery { innocent = default_innocent })
    | Some v -> (
      try Ok (Route_forgery { innocent = Addr.of_string v })
      with Invalid_argument _ -> Error (Printf.sprintf "bad innocent=%S" v)))
  | "lying-filter-node" ->
    let* () = known [ "mode"; "fraction"; "leak" ] in
    let* fraction = num "fraction" 0.2 in
    let* () =
      if fraction >= 0. && fraction <= 1. then Ok ()
      else Error (Printf.sprintf "fraction=%g not in [0,1]" fraction)
    in
    (* leak: residual bytes/s a partial policer lets through (default one
       megabit). Ignored by the other modes. *)
    let* leak = num "leak" 125_000. in
    let* mode =
      match
        Option.value ~default:"accept-ignore" (List.assoc_opt "mode" kvs)
      with
      | "accept-ignore" -> Ok Accept_ignore
      | "partial" -> Ok (Partial leak)
      | "forge" -> Ok Forge
      | "replay" -> Ok Replay
      | m ->
        Error
          (Printf.sprintf
             "unknown mode %S (expected accept-ignore, partial, forge or \
              replay)"
             m)
    in
    Ok (Lying_filter_node { mode; fraction })
  | _ ->
    Error
      (Printf.sprintf
         "unknown playbook %S (expected slot-exhaustion, shadow-exhaustion, \
          request-flood, reply-replay, route-forgery or lying-filter-node)"
         name)

let playbook_to_string = function
  | Slot_exhaustion { sources; rate } ->
    Printf.sprintf "slot-exhaustion:sources=%d,rate=%g" sources rate
  | Shadow_exhaustion { flows; rate } ->
    Printf.sprintf "shadow-exhaustion:flows=%d,rate=%g" flows rate
  | Request_flood { rate } -> Printf.sprintf "request-flood:rate=%g" rate
  | Reply_replay { delay; guess_rate } ->
    Printf.sprintf "reply-replay:delay=%g,guess-rate=%g" delay guess_rate
  | Route_forgery { innocent } ->
    Printf.sprintf "route-forgery:innocent=%s" (Addr.to_string innocent)
  | Lying_filter_node { mode = Partial leak; fraction } ->
    Printf.sprintf "lying-filter-node:mode=partial,fraction=%g,leak=%g"
      fraction leak
  | Lying_filter_node { mode; fraction } ->
    Printf.sprintf "lying-filter-node:mode=%s,fraction=%g"
      (match mode with
      | Accept_ignore -> "accept-ignore"
      | Forge -> "forge"
      | Replay -> "replay"
      | Partial _ -> assert false)
      fraction
