module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net

(* The bridge from the rate domain back to the packet domain: materialise
   representative zero-byte packets from an aggregate so the unchanged AITF
   control plane still sees real traffic — gateways append route records and
   match flows against filters and shadow caches, the victim's detector
   fires, handshakes verify. Zero size keeps byte accounting entirely in the
   fluid plane while the probes still compete for (and are dropped by) the
   same saturated links via the fluid coupling in [Link]. *)

type t = {
  fluid : Fluid.t;
  agg : Fluid.agg;
  rng : Rng.t;
  gap : float;  (* seconds between probes *)
  mutable sent : int;
  mutable skipped : int;  (* ticks with no sending source *)
}

let default_max_rate = 200.

(* A probe per packet-time of the aggregate, capped so probe cost never
   scales with population: representative sampling, not replay. *)
let auto_rate agg =
  let pkt_rate =
    Fluid.total_rate agg /. float_of_int (Fluid.pkt_size agg * 8)
  in
  Float.min default_max_rate (Float.max 1. pkt_rate)

let pick_source t =
  let n = Fluid.n_sources t.agg in
  let rec go tries =
    if tries = 0 then None
    else
      let idx = if n = 1 then 0 else Rng.int t.rng n in
      if Fluid.source_sending t.agg idx then Some idx
      else if n = 1 then None
      else go (tries - 1)
  in
  go 16

let probe t =
  match pick_source t with
  | None -> t.skipped <- t.skipped + 1
  | Some idx ->
    let origin = Fluid.origin t.agg in
    let src = Fluid.source_addr t.agg idx in
    let spoofed =
      if Addr.equal src origin.Node.addr then None else Some src
    in
    let pkt =
      Packet.make ?spoofed_src:spoofed ~src:origin.Node.addr
        ~dst:(Fluid.dst t.agg) ~size:0
        (Packet.Data
           { flow_id = Fluid.flow_id t.agg; attack = Fluid.attack t.agg })
    in
    t.sent <- t.sent + 1;
    Network.originate (Fluid.network t.fluid) origin pkt

let attach ?rate ?sim ~rng fluid agg =
  let r =
    match rate with Some r when r > 0. -> r | _ -> auto_rate agg
  in
  let t = { fluid; agg; rng; gap = 1. /. r; sent = 0; skipped = 0 } in
  (* Sharded runs tick on the origin pool's shard so probe emission is a
     shard-local event; the default is the network-wide sim, as before. *)
  let sim =
    match sim with
    | Some sim -> sim
    | None -> Network.sim (Fluid.network fluid)
  in
  let rec tick () =
    if Fluid.active t.agg then probe t;
    ignore (Sim.after ~label:"fluid-sampler" sim t.gap tick)
  in
  (* Desynchronise aggregates deterministically: the first tick lands at a
     seeded random fraction of the gap. *)
  ignore (Sim.after ~label:"fluid-sampler" sim (Rng.float rng t.gap) tick);
  t

let sent t = t.sent
let skipped t = t.skipped
let probe_gap t = t.gap
