(** Fluid traffic plane — the hybrid engine's rate-domain data path.

    Each aggregate is a set of sources behind one origin node (a contiguous
    address range, so a million sources cost one record plus one int of
    filter state each) sending a uniform byte rate to one destination.
    Links are rate servers: whenever filter state or an aggregate's rate
    changes — and at every epoch boundary — the engine recomputes the
    proportional drop-tail share of every link a fixed point over the
    aggregates' paths, then publishes per-link offered/admitted load back
    to {!Aitf_net.Link} so discrete control packets compete with the fluid.

    Filter state reaches the rate domain through
    {!Aitf_filter.Filter_table.subscribe}: attach each gateway's (or a
    compliant source's) table with {!attach_table} and installs, expiries
    and evictions are mirrored onto the per-source block masks — blocking
    filters zero a source's rate at that hop, rate-limit filters cap it.

    The engine never creates packets; the {!Sampler} materialises
    representative probe packets from aggregates so the unchanged AITF
    control plane (route records, flow matching, detection, handshakes)
    keeps working. *)

open Aitf_net
open Aitf_filter

type t
type agg

val create : ?epoch:float -> Network.t -> t
(** A fluid engine over the network's topology. [epoch] (default 0.1 s) is
    the periodic share-recompute interval; changes additionally trigger an
    immediate (coalesced) recompute. Routes must already be computed. *)

val add_aggregate :
  ?pkt_size:int ->
  ?flow_id:int ->
  ?stop:float ->
  t ->
  origin:Node.t ->
  src_base:Addr.t ->
  n:int ->
  rate:float ->
  dst:Addr.t ->
  attack:bool ->
  start:float ->
  agg
(** [n] sources with contiguous addresses [src_base .. src_base+n-1] behind
    [origin], together offering [rate] bits/s to [dst] from [start] until
    [stop] (default: forever). The path is derived by walking FIBs, so
    routes must be computed first. [pkt_size] (default 1000 B) is the
    notional packet size used for probe-rate derivation and flow-label
    matching. *)

val attach_table :
  ?defer:((unit -> unit) -> unit) -> t -> node:Node.t -> Filter_table.t -> unit
(** Mirror [table]'s state onto every aggregate stage sitting at [node].
    Attach tables before they hold any entries (scenario setup time): only
    changes after attachment are observed. [?defer] wraps the change
    callback (default: run immediately); the parallel engine passes
    [Sched.defer] so shard-phase filter changes mutate the shared fluid
    state only at barriers — safe because the mirror re-derives ground
    truth from the table on every change. *)

val set_block : t -> agg -> idx:int -> stage:int -> bool -> unit
(** Manually block/unblock one source at one stage — the bridge used by
    source-strategy code (e.g. on-off attackers) that does not act through
    a filter table. Stage 0 is the source's own gate. *)

val recompute : t -> unit
(** Force an immediate share recompute (normally automatic). *)

(** {2 Reporting} *)

val delivered_bits : t -> attack:bool -> float
(** Cumulative bits delivered to destinations by attack (resp. legitimate)
    aggregates, integrated up to the current simulation time. *)

val agg_delivered_bits : t -> agg -> float
val delivered_rate : agg -> float
(** Current delivery rate (bits/s) as of the last recompute. *)

val aggregates : t -> int
val total_sources : t -> int
val recomputes : t -> int

val link_visits : t -> int
(** Cumulative per-link updates across all recomputes — the epoch cost. *)

val blocked_sources : agg -> int
(** Sources with at least one blocking stage. *)

(** {2 Aggregate accessors (for the sampler and bridges)} *)

val network : t -> Network.t
val epoch : t -> float

val iter_aggregates : t -> (agg -> unit) -> unit
(** Visit every aggregate in insertion (aid) order — the deterministic
    enumeration placement controllers plan from. *)

val stage_nodes : agg -> Node.t list
(** The aggregate's filter-stage nodes in path order: element 0 is the
    origin (the source's own gate), the last element is the destination's
    last-hop router. Placement controllers use this to know which gateways
    an aggregate's traffic crosses. *)

val n_sources : agg -> int
val origin : agg -> Node.t

val src_base : agg -> Addr.t
(** First address of the aggregate's contiguous source range
    (= [source_addr agg 0]). *)

val dst : agg -> Addr.t
val attack : agg -> bool
val flow_id : agg -> int
val pkt_size : agg -> int
val total_rate : agg -> float
val active : agg -> bool
val source_addr : agg -> int -> Addr.t

val source_index : agg -> Addr.t -> int option
(** Inverse of {!source_addr}: the index of an address inside the
    aggregate's range, if any. *)

val source_sending : agg -> int -> bool
(** The aggregate is active and the source is not blocked at its own gate
    (stage 0) — i.e. its traffic is on the wire. *)
