(** Deterministic probe sampler — the fluid-to-packet bridge.

    Materialises representative zero-byte {!Aitf_net.Packet.Data} packets
    from a fluid aggregate at a bounded rate, choosing the header source
    uniformly (seeded RNG) among the aggregate's currently-sending sources.
    Probes traverse the real packet plane: border routers append route
    records, filters and shadow caches match them, the victim's detector
    observes them, and saturated links drop them with the fluid loss
    fraction — so every AITF control-plane mechanism runs unmodified while
    the bytes stay in the rate domain. *)

type t

val attach :
  ?rate:float ->
  ?sim:Aitf_engine.Sim.t ->
  rng:Aitf_engine.Rng.t ->
  Fluid.t ->
  Fluid.agg ->
  t
(** Start probing the aggregate. [rate] (packets/s) defaults to the
    aggregate's own packet rate capped at 200/s — sampling cost never
    scales with source population. The first probe lands at a seeded
    random fraction of the inter-probe gap so aggregates desynchronise.
    [?sim] overrides the world the probe ticks are scheduled on (the
    parallel engine passes the origin pool's shard; default is the
    network-wide sim). *)

val sent : t -> int
val skipped : t -> int
(** Ticks where no sending source could be found (all blocked at source). *)

val probe_gap : t -> float
