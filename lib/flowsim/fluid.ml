module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_filter

(* Per-source filter state is a bit mask over the aggregate's filter stages:
   bit [s] set means a blocking filter at stage [s] matches the source. The
   first set bit decides where the source's traffic dies; [cuts.(s)] counts
   the sources whose first block is stage [s], so the shared-path walk needs
   only the per-stage counts, never the mask array. *)

type agg = {
  aid : int;
  origin : Node.t;
  src_base : Addr.t;
  n : int;
  per_src_rate : float;  (* bits/s each source offers *)
  dst : Addr.t;
  attack : bool;
  flow_id : int;
  pkt_size : int;  (* bytes, for probe-rate derivation and label matching *)
  link_idx : int array;  (* hop s crosses this link (index into t.links) *)
  fnodes : Node.t array;  (* filter stage before hop s; fnodes.(0) = origin *)
  mask : int array;  (* per source: bit s = blocked at stage s *)
  cuts : int array;  (* cuts.(s) = #sources first-blocked at stage s *)
  limited : (int, float array) Hashtbl.t;
      (* source idx -> per-stage rate caps (bits/s, [infinity] = uncapped);
         only sources under at least one live rate-limit filter appear *)
  lim_pass : int array;
      (* recompute scratch: #limited sources unblocked through stages <= s *)
  mutable lims : (int * float array) list;  (* recompute scratch *)
  mutable active : bool;
  mutable delivered_rate : float;  (* bits/s reaching dst, last recompute *)
  mutable new_delivered : float;  (* walk scratch *)
  mutable delivered_bits : float;  (* integral of delivered_rate *)
}

type t = {
  sim : Sim.t;
  net : Network.t;
  epoch : float;
  mutable aggs : agg list;  (* insertion order — keeps float sums stable *)
  mutable links : Link.t array;  (* distinct links any aggregate crosses *)
  mutable offered : float array;  (* bits/s offered to links.(i) *)
  mutable factor : float array;  (* fraction links.(i) admits *)
  tables : (int, Filter_table.t) Hashtbl.t;  (* node id -> its filter table *)
  mutable subs : (int, (agg * int) list) Hashtbl.t;  (* node id -> stages *)
  mutable dirty : bool;
  mutable next_id : int;
  mutable total_sources : int;
  mutable recomputes : int;
  mutable last_iters : int;
  mutable link_visits : int;  (* cumulative link updates: epoch cost proxy *)
  mutable last_integrate : float;
}

let max_stages = 62  (* mask bits; far above any realistic AS path *)

(* --- integration ---------------------------------------------------------- *)

let integrate t =
  let now = Sim.now t.sim in
  if now > t.last_integrate then begin
    let dt = now -. t.last_integrate in
    List.iter
      (fun a ->
        if a.active then
          a.delivered_bits <- a.delivered_bits +. (a.delivered_rate *. dt))
      t.aggs;
    t.last_integrate <- now
  end

(* --- the fixed point ------------------------------------------------------ *)

let refresh_scratch agg =
  agg.new_delivered <- 0.;
  (* Sorted by source index: Hashtbl.fold order depends on hash-bucket
     layout, and [lims] order decides the float-accumulation order of the
     per-source offered rates in [walk_agg] — unsorted, the fixed point's
     rounding (and so every golden) would vary across OCaml hash seeds. *)
  agg.lims <-
    Hashtbl.fold (fun i caps acc -> (i, caps) :: acc) agg.limited []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b);
  let k = Array.length agg.link_idx in
  Array.fill agg.lim_pass 0 k 0;
  List.iter
    (fun (idx, _) ->
      let m = agg.mask.(idx) in
      let s = ref 0 in
      while !s < k && m land (1 lsl !s) = 0 do
        agg.lim_pass.(!s) <- agg.lim_pass.(!s) + 1;
        incr s
      done)
    agg.lims

(* One pass of one aggregate down its path: uniform sources in bulk via the
   per-stage counts, rate-limited sources individually (they are bounded by
   live filters, not by population). *)
let walk_agg t agg =
  if agg.active then begin
    let k = Array.length agg.link_idx in
    let blocked = ref 0 in
    let atten = ref 1.0 in
    let uni_delivered = ref 0. in
    for s = 0 to k - 1 do
      blocked := !blocked + agg.cuts.(s);
      let uni = agg.n - !blocked - agg.lim_pass.(s) in
      let r = float_of_int uni *. agg.per_src_rate *. !atten in
      let li = agg.link_idx.(s) in
      t.offered.(li) <- t.offered.(li) +. r;
      atten := !atten *. t.factor.(li);
      if s = k - 1 then uni_delivered := r *. t.factor.(li)
    done;
    let lim_delivered = ref 0. in
    List.iter
      (fun (idx, caps) ->
        let r = ref agg.per_src_rate in
        let alive = ref true in
        let s = ref 0 in
        while !alive && !s < k do
          if agg.mask.(idx) land (1 lsl !s) <> 0 then alive := false
          else begin
            if caps.(!s) < !r then r := caps.(!s);
            let li = agg.link_idx.(!s) in
            t.offered.(li) <- t.offered.(li) +. !r;
            r := !r *. t.factor.(li);
            incr s
          end
        done;
        if !alive then lim_delivered := !lim_delivered +. !r)
      agg.lims;
    agg.new_delivered <- !uni_delivered +. !lim_delivered
  end

let recompute t =
  integrate t;
  t.recomputes <- t.recomputes + 1;
  let nl = Array.length t.links in
  Array.fill t.factor 0 nl 1.0;
  List.iter refresh_scratch t.aggs;
  (* Fixed-point iteration of the proportional drop-tail share: each round
     re-offers every aggregate under the current admit factors, then updates
     the factors. Feed-forward paths converge in at most the longest path
     length; the cap is a safety net. *)
  let iters = ref 0 in
  let stable = ref false in
  while (not !stable) && !iters < 50 do
    Array.fill t.offered 0 nl 0.;
    List.iter (walk_agg t) t.aggs;
    stable := true;
    for i = 0 to nl - 1 do
      t.link_visits <- t.link_visits + 1;
      let bw = Link.bandwidth t.links.(i) in
      let f = if t.offered.(i) <= bw then 1.0 else bw /. t.offered.(i) in
      if Float.abs (f -. t.factor.(i)) > 1e-9 then stable := false;
      t.factor.(i) <- f
    done;
    incr iters
  done;
  t.last_iters <- !iters;
  List.iter (fun a -> a.delivered_rate <- a.new_delivered) t.aggs;
  for i = 0 to nl - 1 do
    let bw = Link.bandwidth t.links.(i) in
    Link.set_fluid t.links.(i) ~offered:t.offered.(i)
      ~admitted:(Float.min t.offered.(i) bw)
  done

let mark_dirty t =
  if not t.dirty then begin
    t.dirty <- true;
    (* after 0.: runs once the current event cascade settles, coalescing a
       burst of filter changes into one recompute *)
    ignore
      (Sim.after ~label:"fluid-recompute" t.sim 0. (fun () ->
           t.dirty <- false;
           recompute t))
  end

(* --- filter mirroring ----------------------------------------------------- *)

let first_block m =
  if m = 0 then -1
  else begin
    let i = ref 0 in
    while m land (1 lsl !i) = 0 do
      incr i
    done;
    !i
  end

let set_mask agg idx nw =
  let old = agg.mask.(idx) in
  if nw = old then false
  else begin
    let ob = first_block old and nb = first_block nw in
    if ob >= 0 then agg.cuts.(ob) <- agg.cuts.(ob) - 1;
    if nb >= 0 then agg.cuts.(nb) <- agg.cuts.(nb) + 1;
    agg.mask.(idx) <- nw;
    true
  end

let set_cap agg idx stage c =
  match Hashtbl.find_opt agg.limited idx with
  | Some caps ->
    if caps.(stage) = c then false
    else begin
      caps.(stage) <- c;
      if Array.for_all (fun x -> x = infinity) caps then
        Hashtbl.remove agg.limited idx;
      true
    end
  | None ->
    if c = infinity then false
    else begin
      let caps = Array.make (Array.length agg.fnodes) infinity in
      caps.(stage) <- c;
      Hashtbl.replace agg.limited idx caps;
      true
    end

(* Re-derive one source's fate at one stage from the stage's table itself —
   ground truth, so overlapping filters and refreshes that change the action
   need no bookkeeping of their own. *)
let reeval t agg stage idx =
  match Hashtbl.find_opt t.tables agg.fnodes.(stage).Node.id with
  | None -> false
  | Some table ->
    let src = Addr.add agg.src_base idx in
    let pkt =
      Packet.make ~src ~dst:agg.dst ~size:agg.pkt_size
        (Packet.Data { flow_id = agg.flow_id; attack = agg.attack })
    in
    let bit = 1 lsl stage in
    let block, cap =
      match Filter_table.matching_entry table pkt with
      | None -> (false, infinity)
      | Some h -> (
        match Filter_table.rate_limit h with
        | None -> (true, infinity)
        | Some bytes_rate -> (false, bytes_rate *. 8.))
    in
    let nw =
      if block then agg.mask.(idx) lor bit else agg.mask.(idx) land lnot bit
    in
    let a = set_mask agg idx nw in
    let b = set_cap agg idx stage cap in
    a || b

let addr_int (a : Addr.t) = Int32.to_int a land 0xFFFFFFFF

let dst_matches sel dst =
  match sel with
  | Flow_label.Any -> true
  | Flow_label.Host a -> Addr.equal a dst
  | Flow_label.Net p -> Addr.prefix_mem p dst

(* The source-index range a label's source selector can possibly touch —
   just a bound; [reeval] decides per source. *)
let src_range agg sel =
  let base = addr_int agg.src_base in
  match sel with
  | Flow_label.Any -> Some (0, agg.n - 1)
  | Flow_label.Host a ->
    let off = addr_int a - base in
    if off >= 0 && off < agg.n then Some (off, off) else None
  | Flow_label.Net p ->
    let pb = addr_int p.Addr.base in
    let span = 1 lsl (32 - p.Addr.len) in
    let lo = max base pb in
    let hi = min (base + agg.n - 1) (pb + span - 1) in
    if lo > hi then None else Some (lo - base, hi - base)

(* The rate domain reacted to this filter: annotate the owning request's
   span tree so hybrid traces show the mirror kept pace. The spans
   themselves are closed by the gateway's own table subscription — the
   same seam — so both engines close identical span sets. Timestamped on
   the table's own clock (the shard clock in sharded runs) and recorded
   from the subscribing context, never from a deferred replay — the span
   is open and the instant exact right where the change fires. *)
let annotate_change ~now change =
  let h =
    match change with
    | Filter_table.Installed h | Filter_table.Removed h -> h
  in
  if Aitf_obs.Span.enabled () then
    match Filter_table.corr h with
    | Some corr ->
      Aitf_obs.Span.root_event ~corr ~now
        (match change with
        | Filter_table.Installed _ -> "fluid-mirror-install"
        | Filter_table.Removed _ -> "fluid-mirror-remove")
    | None -> ()

let on_change t node_id change =
  let h =
    match change with
    | Filter_table.Installed h | Filter_table.Removed h -> h
  in
  let label = Filter_table.label h in
  match Hashtbl.find_opt t.subs node_id with
  | None -> ()
  | Some stages ->
    List.iter
      (fun (agg, stage) ->
        if dst_matches label.Flow_label.dst agg.dst then
          match src_range agg label.Flow_label.src with
          | None -> ()
          | Some (lo, hi) ->
            let changed = ref false in
            for idx = lo to hi do
              if reeval t agg stage idx then changed := true
            done;
            if !changed then mark_dirty t)
      stages

let attach_table ?defer t ~node table =
  Hashtbl.replace t.tables node.Node.id table;
  let mirror ev = on_change t node.Node.id ev in
  (* In sharded runs filter changes happen during shard windows while the
     fluid state is shared: the mirror update is deferred to the barrier
     (where [on_change]'s reeval re-derives ground truth from the table,
     so late application is safe and idempotent). The span annotation is
     NOT deferred — it must record in the subscriber's context at the
     table clock's exact instant, or traces would depend on the shard
     layout. *)
  let mirror =
    match defer with
    | None -> mirror
    | Some d -> fun ev -> d (fun () -> mirror ev)
  in
  Filter_table.subscribe table (fun ev ->
      annotate_change ~now:(Sim.now (Filter_table.sim table)) ev;
      mirror ev)

(* --- construction --------------------------------------------------------- *)

let create ?(epoch = 0.1) net =
  if epoch <= 0. then invalid_arg "Fluid.create: epoch must be positive";
  let sim = Network.sim net in
  let t =
    {
      sim;
      net;
      epoch;
      aggs = [];
      links = [||];
      offered = [||];
      factor = [||];
      tables = Hashtbl.create 16;
      subs = Hashtbl.create 16;
      dirty = false;
      next_id = 0;
      total_sources = 0;
      recomputes = 0;
      last_iters = 0;
      link_visits = 0;
      last_integrate = Sim.now sim;
    }
  in
  let rec tick () =
    recompute t;
    ignore (Sim.after ~label:"fluid-epoch" t.sim t.epoch tick)
  in
  ignore (Sim.after ~label:"fluid-epoch" t.sim t.epoch tick);
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let rate_of ~attack () =
        List.fold_left
          (fun acc a ->
            if a.attack = attack && a.active then acc +. a.delivered_rate
            else acc)
          0. t.aggs
      in
      register_gauge reg "flowsim.aggregates" ~unit_:"aggregates"
        ~help:"Fluid aggregates in the engine" (fun () ->
          float_of_int (List.length t.aggs));
      register_gauge reg "flowsim.sources" ~unit_:"sources"
        ~help:"Total sources across all aggregates" (fun () ->
          float_of_int t.total_sources);
      register_counter reg "flowsim.recomputes" ~unit_:"recomputes"
        ~help:"Share recomputations (epochs and rate/filter changes)"
        (fun () -> float_of_int t.recomputes);
      register_counter reg "flowsim.recompute_link_visits" ~unit_:"visits"
        ~help:"Cumulative link updates across recomputes — the epoch cost"
        (fun () -> float_of_int t.link_visits);
      register_gauge reg "flowsim.last_iterations" ~unit_:"iterations"
        ~help:"Fixed-point iterations of the most recent recompute"
        (fun () -> float_of_int t.last_iters);
      register_gauge reg "flowsim.attack_delivered_bps" ~unit_:"bits/s"
        ~help:"Attack-aggregate rate currently reaching destinations"
        (rate_of ~attack:true);
      register_gauge reg "flowsim.good_delivered_bps" ~unit_:"bits/s"
        ~help:"Legitimate-aggregate rate currently reaching destinations"
        (rate_of ~attack:false));
  t

let register_link t link =
  let nl = Array.length t.links in
  let rec find i = if i >= nl then -1 else if t.links.(i) == link then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    t.links <- Array.append t.links [| link |];
    t.offered <- Array.append t.offered [| 0. |];
    t.factor <- Array.append t.factor [| 1. |];
    nl
  end

let derive_path t ~origin ~dst =
  let links = ref [] in
  let fnodes = ref [] in
  let cur = ref origin in
  let steps = ref 0 in
  while not (Addr.equal !cur.Node.addr dst) do
    incr steps;
    if !steps > max_stages then
      invalid_arg "Fluid.add_aggregate: path too long (routing loop?)";
    match Lpm.lookup !cur.Node.fib dst with
    | None -> invalid_arg "Fluid.add_aggregate: no route to destination"
    | Some port ->
      fnodes := !cur :: !fnodes;
      links := port.Node.link :: !links;
      cur := Network.node t.net port.Node.peer_id
  done;
  (Array.of_list (List.rev !links), Array.of_list (List.rev !fnodes))

let add_aggregate ?(pkt_size = 1000) ?(flow_id = 0) ?(stop = infinity) t
    ~origin ~src_base ~n ~rate ~dst ~attack ~start =
  if n <= 0 then invalid_arg "Fluid.add_aggregate: n must be positive";
  if rate <= 0. then invalid_arg "Fluid.add_aggregate: rate must be positive";
  let links, fnodes = derive_path t ~origin ~dst in
  let k = Array.length links in
  if k = 0 then invalid_arg "Fluid.add_aggregate: origin is the destination";
  let link_idx = Array.map (register_link t) links in
  let agg =
    {
      aid = t.next_id;
      origin;
      src_base;
      n;
      per_src_rate = rate /. float_of_int n;
      dst;
      attack;
      flow_id;
      pkt_size;
      link_idx;
      fnodes;
      mask = Array.make n 0;
      cuts = Array.make k 0;
      limited = Hashtbl.create 8;
      lim_pass = Array.make k 0;
      lims = [];
      active = false;
      delivered_rate = 0.;
      new_delivered = 0.;
      delivered_bits = 0.;
    }
  in
  t.next_id <- t.next_id + 1;
  t.total_sources <- t.total_sources + n;
  t.aggs <- t.aggs @ [ agg ];
  Array.iteri
    (fun s nd ->
      let id = nd.Node.id in
      let prev =
        match Hashtbl.find_opt t.subs id with Some l -> l | None -> []
      in
      Hashtbl.replace t.subs id ((agg, s) :: prev))
    fnodes;
  let now = Sim.now t.sim in
  ignore
    (Sim.after t.sim
       (Float.max 0. (start -. now))
       (fun () ->
         integrate t;
         agg.active <- true;
         mark_dirty t));
  if stop < infinity then
    ignore
      (Sim.after t.sim
         (Float.max 0. (stop -. now))
         (fun () ->
           integrate t;
           agg.active <- false;
           agg.delivered_rate <- 0.;
           mark_dirty t));
  agg

(* --- bridge / reporting accessors ---------------------------------------- *)

let network t = t.net
let epoch t = t.epoch
let aggregates t = List.length t.aggs
let total_sources t = t.total_sources
let recomputes t = t.recomputes
let link_visits t = t.link_visits

let set_block t agg ~idx ~stage blocked =
  if idx < 0 || idx >= agg.n then invalid_arg "Fluid.set_block: index";
  if stage < 0 || stage >= Array.length agg.fnodes then
    invalid_arg "Fluid.set_block: stage";
  let bit = 1 lsl stage in
  let nw =
    if blocked then agg.mask.(idx) lor bit else agg.mask.(idx) land lnot bit
  in
  if set_mask agg idx nw then mark_dirty t

let delivered_bits t ~attack =
  integrate t;
  List.fold_left
    (fun acc a -> if a.attack = attack then acc +. a.delivered_bits else acc)
    0. t.aggs

let delivered_rate agg = agg.delivered_rate
let agg_delivered_bits t agg =
  integrate t;
  agg.delivered_bits

let iter_aggregates t f = List.iter f t.aggs
let stage_nodes agg = Array.to_list agg.fnodes
let n_sources agg = agg.n
let origin agg = agg.origin
let src_base agg = agg.src_base
let dst agg = agg.dst
let attack agg = agg.attack
let flow_id agg = agg.flow_id
let pkt_size agg = agg.pkt_size
let total_rate agg = agg.per_src_rate *. float_of_int agg.n
let active agg = agg.active
let source_addr agg idx = Addr.add agg.src_base idx

let source_index agg addr =
  let off = addr_int addr - addr_int agg.src_base in
  if off >= 0 && off < agg.n then Some off else None

let source_sending agg idx =
  agg.active && agg.mask.(idx) land 1 = 0

let blocked_sources agg = Array.fold_left ( + ) 0 agg.cuts
