open Aitf_net

type sel = Any | Host of Addr.t | Net of Addr.prefix

type t = {
  src : sel;
  dst : sel;
  proto : int option;
  sport : int option;
  dport : int option;
}

let v ?proto ?sport ?dport src dst = { src; dst; proto; sport; dport }

let host_pair src dst =
  { src = Host src; dst = Host dst; proto = None; sport = None; dport = None }

let from_net p dst =
  { src = Net p; dst = Host dst; proto = None; sport = None; dport = None }

let from_host src =
  { src = Host src; dst = Any; proto = None; sport = None; dport = None }

let sel_matches sel addr =
  match sel with
  | Any -> true
  | Host a -> Addr.equal a addr
  | Net p -> Addr.prefix_mem p addr

let qual_matches q v = match q with None -> true | Some x -> x = v

let matches t (pkt : Packet.t) =
  sel_matches t.src pkt.src
  && sel_matches t.dst pkt.dst
  && qual_matches t.proto pkt.proto
  && qual_matches t.sport pkt.sport
  && qual_matches t.dport pkt.dport

let sel_subsumes a b =
  match (a, b) with
  | Any, _ -> true
  | _, Any -> false
  | Host x, Host y -> Addr.equal x y
  | Host _, Net _ -> false
  | Net p, Host y -> Addr.prefix_mem p y
  | Net p, Net q ->
    (* p covers q iff p is no longer than q and q's base lies in p. *)
    let pl = (p : Addr.prefix).len and ql = (q : Addr.prefix).len in
    pl <= ql && Addr.prefix_mem p (q : Addr.prefix).base

let qual_subsumes a b =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some x, Some y -> x = y

let subsumes a b =
  sel_subsumes a.src b.src
  && sel_subsumes a.dst b.dst
  && qual_subsumes a.proto b.proto
  && qual_subsumes a.sport b.sport
  && qual_subsumes a.dport b.dport

let sel_specificity = function
  | Any -> 0
  | Net p -> (p : Addr.prefix).len
  | Host _ -> 32

let specificity t =
  let qual = function None -> 0 | Some _ -> 1 in
  sel_specificity t.src + sel_specificity t.dst + qual t.proto + qual t.sport
  + qual t.dport

let is_exact t =
  match (t.src, t.dst) with
  | Host _, Host _ -> t.sport = None && t.dport = None
  | _ -> false

let sel_compare a b =
  match (a, b) with
  | Any, Any -> 0
  | Any, _ -> -1
  | _, Any -> 1
  | Host x, Host y -> Addr.compare x y
  | Host _, Net _ -> -1
  | Net _, Host _ -> 1
  | Net p, Net q -> Addr.prefix_compare p q

let compare a b =
  let c = sel_compare a.src b.src in
  if c <> 0 then c
  else
    let c = sel_compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Option.compare Int.compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = Option.compare Int.compare a.sport b.sport in
        if c <> 0 then c else Option.compare Int.compare a.dport b.dport

let equal a b = compare a b = 0
let hash t = Hashtbl.hash t

let sel_to_string = function
  | Any -> "*"
  | Host a -> Addr.to_string a
  | Net p -> Addr.prefix_to_string p

let to_string t =
  let qual name = function
    | None -> ""
    | Some v -> Printf.sprintf " %s=%d" name v
  in
  Printf.sprintf "%s -> %s%s%s%s" (sel_to_string t.src) (sel_to_string t.dst)
    (qual "proto" t.proto) (qual "sport" t.sport) (qual "dport" t.dport)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let sel_of_string s =
  if s = "*" then Any
  else if String.contains s '/' then Net (Addr.prefix_of_string s)
  else Host (Addr.of_string s)

let of_string s =
  let fail () = invalid_arg ("Flow_label.of_string: " ^ s) in
  let words =
    String.split_on_char ' ' s |> List.filter (fun w -> w <> "")
  in
  match words with
  | src :: "->" :: dst :: quals ->
    let base = v (sel_of_string src) (sel_of_string dst) in
    List.fold_left
      (fun acc qual ->
        match String.index_opt qual '=' with
        | None -> fail ()
        | Some i -> (
          let key = String.sub qual 0 i in
          let value =
            match
              int_of_string_opt
                (String.sub qual (i + 1) (String.length qual - i - 1))
            with
            | Some value when value >= 0 -> value
            | Some _ | None -> fail ()
          in
          match key with
          | "proto" -> { acc with proto = Some value }
          | "sport" -> { acc with sport = Some value }
          | "dport" -> { acc with dport = Some value }
          | _ -> fail ()))
      base quals
  | _ -> fail ()
