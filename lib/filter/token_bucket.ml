type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last_update : float;
  mutable admitted : int;
  mutable denied : int;
}

let create ~rate ~burst =
  if rate <= 0. || burst <= 0. then
    invalid_arg "Token_bucket.create: rate and burst must be positive";
  { rate; burst; tokens = burst; last_update = 0.; admitted = 0; denied = 0 }

let refill t ~now =
  if now > t.last_update then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last_update) *. t.rate));
    t.last_update <- now
  end

let allow ?(cost = 1.0) t ~now =
  refill t ~now;
  if t.tokens >= cost then begin
    t.tokens <- t.tokens -. cost;
    t.admitted <- t.admitted + 1;
    true
  end
  else begin
    t.denied <- t.denied + 1;
    false
  end

let peek_tokens t ~now =
  refill t ~now;
  t.tokens

let rate t = t.rate
let burst t = t.burst
let admitted t = t.admitted
let denied t = t.denied

let register_metrics t reg ~prefix =
  let open Aitf_obs.Metrics in
  let p metric = prefix ^ "." ^ metric in
  register_counter reg (p "admitted") ~unit_:"events"
    ~help:"Events the policer admitted" (fun () -> float_of_int t.admitted);
  register_counter reg (p "denied") ~unit_:"events"
    ~help:"Events the policer dropped" (fun () -> float_of_int t.denied)
