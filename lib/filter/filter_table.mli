(** Bounded wire-speed filter table.

    Models the scarce resource at the centre of the paper: a router's
    hardware filters. Capacity is fixed at creation; installs beyond it fail
    (and are counted), entries expire automatically after their duration, and
    the table keeps the statistics the evaluation needs — peak occupancy
    (compare with nv = R1·Ttmp and na = R2·T), capacity rejections, and how
    much traffic each filter actually blocked.

    Matching is O(1) for exact host-pair labels (hash probes) plus a linear
    scan of the few wildcard entries. *)

open Aitf_net

type t

type handle
(** Identifies one installed filter. *)

val create : Aitf_engine.Sim.t -> capacity:int -> t
(** [capacity] must be positive. *)

val install :
  ?rate_limit:float ->
  ?corr:int ->
  t ->
  Flow_label.t ->
  duration:float ->
  (handle, [ `Table_full ]) result
(** Add a filter that expires after [duration] seconds. Installing a label
    equal to an existing live one refreshes that entry's expiry (to the later
    of the two) instead of consuming a new slot, and returns its handle.

    By default the filter {e blocks} matching traffic. With [?rate_limit]
    (bytes/s) it rate-limits instead: conforming packets pass, the excess is
    dropped — the alternative the paper's footnote 10 argues against for
    DoS traffic (and ablation A5 measures). A refresh without [?rate_limit]
    keeps the original action; a refresh naming a rate honors it (the
    limiter is replaced only when the rate actually changed, so token state
    survives a same-rate refresh).

    A full table first evicts live entries the new label subsumes — a
    wildcard aggregate covering existing exact filters makes its own room —
    and only then reports [`Table_full].

    [?corr] stamps the entry with the correlation id of the filtering
    request that installed it (see {!Aitf_obs.Span}); a refresh naming one
    updates the stamp, a refresh without one keeps it. Purely
    observational. *)

val remove : t -> handle -> unit
(** Uninstall now; idempotent, harmless after expiry. *)

type change = Installed of handle | Removed of handle

val subscribe : t -> (change -> unit) -> unit
(** Observe the table: [Installed] fires on every successful {!install}
    (refreshes included — a refresh can change the action), [Removed] fires
    exactly once per entry however it leaves (explicit removal, expiry, or
    subsumption eviction). The fluid engine uses this seam to mirror filter
    state into the rate domain; with no subscribers the table's behaviour
    and cost are unchanged. *)

val find : t -> Flow_label.t -> handle option
(** Live entry with exactly this label. *)

val sim : t -> Aitf_engine.Sim.t
(** The clock this table was created on — in sharded runs, the owning
    shard's simulator. Subscription callbacks that must timestamp the
    change with the exact install/removal instant read this clock, not
    a global one. *)

val evict_subsumed : t -> Flow_label.t -> int
(** Remove every live entry whose label is subsumed by the given label and
    return how many were evicted — the compaction step used when a
    wildcard aggregate replaces the exact filters it covers. *)

val live_entries : t -> handle list
(** Every live entry, sorted by label — a deterministic snapshot for
    occupancy-pressure policies (the overload manager's eviction scan). *)

val label : handle -> Flow_label.t

val corr : handle -> int option
(** Correlation id of the installing request, when it carried one. *)

val rate_limit : handle -> float option
(** [Some rate] (bytes/s) when the filter rate-limits instead of blocking. *)

val installed_at : handle -> float
val expires_at : handle -> float
val live : handle -> bool

val hits : handle -> int
val hit_bytes : handle -> int
val last_hit : handle -> float option
(** Time of the most recent packet this filter blocked. *)

val blocks : t -> Packet.t -> bool
(** [true] iff some live filter matches the packet. Updates hit counters —
    call it once per packet from the forwarding hook. Wildcards are scanned
    most-specific-first (ties broken by {!Flow_label.compare}), so a narrow
    rate-limited filter is consulted before a broad aggregate. *)

val blocking_entry : t -> Packet.t -> handle option
(** Like {!blocks} but returns the filter that dropped the packet, so the
    caller can attribute the drop (e.g. collateral-damage accounting for
    aggregates). [None] means the packet passes. Updates hit counters. *)

val would_block : t -> Packet.t -> bool
(** Like {!blocks} but without touching counters (for tests/queries). *)

val matching_entry : t -> Packet.t -> handle option
(** The live entry that would act on the packet (most-specific-first, like
    {!blocks}), without touching hit counters or limiter token state — the
    query the fluid engine uses to mirror a source's fate into the rate
    domain. *)

val occupancy : t -> int
val capacity : t -> int
val peak_occupancy : t -> int
val installs : t -> int
(** Successful installs (refreshes of a live entry count too). *)

val rejected : t -> int
(** Installs refused because the table was full. *)

val blocked_packets : t -> int
val blocked_bytes : t -> int

val register_metrics : t -> Aitf_obs.Metrics.t -> prefix:string -> unit
(** Register occupancy/peak gauges and install/rejection/blocked counters
    under [prefix] (e.g. ["gateway.B_gw1.filters"]). Pull-based: the table
    itself pays nothing on the data path. *)
