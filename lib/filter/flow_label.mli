(** Flow labels: the wildcardable traffic descriptions filters act on.

    The paper defines a flow label as "a set of values that captures the
    common characteristics of a traffic flow — e.g. all packets with IP
    source address S and IP destination address D", with wildcarding. A
    label selects on source, destination (each an exact host, a prefix, or
    anything) and optionally the protocol. *)

open Aitf_net

type sel =
  | Any
  | Host of Addr.t
  | Net of Addr.prefix

type t = {
  src : sel;
  dst : sel;
  proto : int option;
  sport : int option;
  dport : int option;
}

val v : ?proto:int -> ?sport:int -> ?dport:int -> sel -> sel -> t
(** [v src dst] builds a label; omitted qualifiers mean "any". *)

val host_pair : Addr.t -> Addr.t -> t
(** The most common AITF label: exact source to exact destination, any
    protocol. *)

val from_net : Addr.prefix -> Addr.t -> t
(** All traffic from a prefix to one destination host. *)

val from_host : Addr.t -> t
(** All traffic from one source, any destination — used for disconnection
    blocklists. *)

val matches : t -> Packet.t -> bool
(** Does the packet fall under the label? Compares against the {e header}
    source, so spoofed packets match labels naming the spoofed address. *)

val subsumes : t -> t -> bool
(** [subsumes a b] is [true] when every packet matching [b] also matches
    [a]. *)

val specificity : t -> int
(** How narrow the label is: the sum of the mask lengths of both selectors
    ([Any] = 0, a prefix its length, a host 32) plus one per qualifier
    present. If [subsumes a b] and [not (equal a b)] then
    [specificity a <= specificity b]; higher = narrower. Used to order
    wildcard scans most-specific-first. *)

val is_exact : t -> bool
(** Both endpoints are exact hosts and no port qualifiers — the cheap,
    hashable case (a protocol qualifier is still allowed: the fast path
    probes it explicitly). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parse the {!to_string} syntax:
    ["<sel> -> <sel> [proto=N] [sport=N] [dport=N]"] where a selector is
    ["*"], a dotted address, or ["a.b.c.d/len"].
    @raise Invalid_argument on malformed input. *)
