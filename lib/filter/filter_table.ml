module Sim = Aitf_engine.Sim
open Aitf_net

type handle = {
  label : Flow_label.t;
  installed_at : float;
  mutable expires_at : float;
  mutable alive : bool;
  mutable hits : int;
  mutable hit_bytes : int;
  mutable last_hit : float option;
  mutable expiry_event : Sim.handle option;
  mutable limiter : Token_bucket.t option;  (* None = block outright *)
  mutable corr : int option;
      (* correlation id of the filtering request that installed this entry;
         carried so table observers (span tracing, fluid mirroring) can
         attribute install/removal to the right request *)
}

type change = Installed of handle | Removed of handle

type t = {
  sim : Sim.t;
  capacity : int;
  exact : (Flow_label.t, handle) Hashtbl.t;
  mutable wildcards : handle list;
  by_label : (Flow_label.t, handle) Hashtbl.t;
  mutable occupancy : int;
  mutable peak : int;
  mutable installs : int;
  mutable rejected : int;
  mutable blocked_packets : int;
  mutable blocked_bytes : int;
  mutable observers : (change -> unit) list;
}

let create sim ~capacity =
  if capacity <= 0 then invalid_arg "Filter_table.create: capacity";
  {
    sim;
    capacity;
    exact = Hashtbl.create 64;
    wildcards = [];
    by_label = Hashtbl.create 64;
    occupancy = 0;
    peak = 0;
    installs = 0;
    rejected = 0;
    blocked_packets = 0;
    blocked_bytes = 0;
    observers = [];
  }

let subscribe t f = t.observers <- f :: t.observers
let notify t ev = List.iter (fun f -> f ev) t.observers

let detach t h =
  if h.alive then begin
    h.alive <- false;
    (match h.expiry_event with Some e -> Sim.cancel e | None -> ());
    h.expiry_event <- None;
    Hashtbl.remove t.by_label h.label;
    if Flow_label.is_exact h.label then Hashtbl.remove t.exact h.label
    else t.wildcards <- List.filter (fun w -> w != h) t.wildcards;
    t.occupancy <- t.occupancy - 1;
    notify t (Removed h)
  end

(* Hoisted: one [Some] shared by every armed expiry. *)
let expiry_label = Some "filter-expiry"

let arm_expiry t h =
  (match h.expiry_event with Some e -> Sim.cancel e | None -> ());
  h.expiry_event <-
    Some (Sim.at ?label:expiry_label t.sim h.expires_at (fun () -> detach t h))

let evict_subsumed t label =
  let victims =
    Hashtbl.fold
      (fun _ h acc ->
        if h.alive && Flow_label.subsumes label h.label then h :: acc else acc)
      t.by_label []
    (* detach fires the removal handlers, so evict in label order, not
       hash-bucket order *)
    |> List.sort (fun a b -> Flow_label.compare a.label b.label)
  in
  List.iter (detach t) victims;
  List.length victims

(* One second of burst, floored at a packet. *)
let make_limiter rate = Token_bucket.create ~rate ~burst:(Float.max rate 1500.)

(* The wildcard scan goes most-specific-first, ties broken by the label's
   total order — so a broad aggregate never shadows a narrower filter, and
   the match is independent of install order. *)
let wildcard_before a b =
  let c =
    Int.compare (Flow_label.specificity b.label) (Flow_label.specificity a.label)
  in
  (if c <> 0 then c else Flow_label.compare a.label b.label) <= 0

let rec insert_wildcard h = function
  | [] -> [ h ]
  | x :: _ as l when wildcard_before h x -> h :: l
  | x :: rest -> x :: insert_wildcard h rest

let install ?rate_limit ?corr t label ~duration =
  let now = Sim.now t.sim in
  match Hashtbl.find_opt t.by_label label with
  | Some h ->
    h.expires_at <- Float.max h.expires_at (now +. duration);
    (match corr with Some _ -> h.corr <- corr | None -> ());
    (* A refresh that names a rate honors it (replacing a limiter only when
       the rate changed, so conforming state survives a same-rate refresh);
       a refresh without one keeps the original action. *)
    (match (rate_limit, h.limiter) with
    | None, _ -> ()
    | Some rate, Some old when Token_bucket.rate old = rate -> ()
    | Some rate, _ -> h.limiter <- Some (make_limiter rate));
    arm_expiry t h;
    t.installs <- t.installs + 1;
    (* A refresh can change the action (block <-> rate-limit), so observers
       hear about it too. *)
    notify t (Installed h);
    Ok h
  | None ->
    (* A full table is not final: a label subsuming live entries can make
       its own room — the compaction move aggregation relies on. *)
    if t.occupancy >= t.capacity then ignore (evict_subsumed t label);
    if t.occupancy >= t.capacity then begin
      t.rejected <- t.rejected + 1;
      Error `Table_full
    end
    else begin
      let limiter = Option.map make_limiter rate_limit in
      let h =
        {
          label;
          installed_at = now;
          expires_at = now +. duration;
          alive = true;
          hits = 0;
          hit_bytes = 0;
          last_hit = None;
          expiry_event = None;
          limiter;
          corr;
        }
      in
      Hashtbl.replace t.by_label label h;
      if Flow_label.is_exact label then Hashtbl.replace t.exact label h
      else t.wildcards <- insert_wildcard h t.wildcards;
      t.occupancy <- t.occupancy + 1;
      if t.occupancy > t.peak then t.peak <- t.occupancy;
      t.installs <- t.installs + 1;
      arm_expiry t h;
      notify t (Installed h);
      Ok h
    end

let remove t h = detach t h

let find t label =
  match Hashtbl.find_opt t.by_label label with
  | Some h when h.alive -> Some h
  | _ -> None

let live_entries t =
  Hashtbl.fold (fun _ h acc -> if h.alive then h :: acc else acc) t.by_label []
  |> List.sort (fun a b -> Flow_label.compare a.label b.label)

let sim t = t.sim
let label h = h.label
let corr h = h.corr
let rate_limit h = Option.map Token_bucket.rate h.limiter
let installed_at h = h.installed_at
let expires_at h = h.expires_at
let live h = h.alive
let hits h = h.hits
let hit_bytes h = h.hit_bytes
let last_hit h = h.last_hit

(* The labels an exact-match probe must try for a packet: host-pair with and
   without the protocol qualifier. *)
let probe_exact t (pkt : Packet.t) =
  let pair = Flow_label.host_pair pkt.src pkt.dst in
  match Hashtbl.find_opt t.exact pair with
  | Some h when h.alive -> Some h
  | _ -> (
    let with_proto = { pair with Flow_label.proto = Some pkt.proto } in
    match Hashtbl.find_opt t.exact with_proto with
    | Some h when h.alive -> Some h
    | _ -> None)

let matching_entry t pkt =
  match probe_exact t pkt with
  | Some h -> Some h
  | None ->
    List.find_opt
      (fun h -> h.alive && Flow_label.matches h.label pkt)
      t.wildcards

let blocking_entry t pkt =
  match matching_entry t pkt with
  | None -> None
  | Some h -> (
    let record_hit () =
      h.hits <- h.hits + 1;
      h.hit_bytes <- h.hit_bytes + pkt.Packet.size;
      h.last_hit <- Some (Sim.now t.sim);
      t.blocked_packets <- t.blocked_packets + 1;
      t.blocked_bytes <- t.blocked_bytes + pkt.Packet.size
    in
    match h.limiter with
    | None ->
      record_hit ();
      Some h
    | Some bucket ->
      if
        Token_bucket.allow bucket ~now:(Sim.now t.sim)
          ~cost:(float_of_int pkt.Packet.size)
      then None
      else begin
        record_hit ();
        Some h
      end)

let blocks t pkt = Option.is_some (blocking_entry t pkt)

let would_block t pkt = Option.is_some (matching_entry t pkt)

let occupancy t = t.occupancy
let capacity t = t.capacity
let peak_occupancy t = t.peak
let installs t = t.installs
let rejected t = t.rejected
let blocked_packets t = t.blocked_packets
let blocked_bytes t = t.blocked_bytes

let register_metrics t reg ~prefix =
  let open Aitf_obs.Metrics in
  let p metric = prefix ^ "." ^ metric in
  register_gauge reg (p "occupancy") ~unit_:"filters"
    ~help:"Live hardware filters" (fun () -> float_of_int t.occupancy);
  register_gauge reg (p "peak_occupancy") ~unit_:"filters"
    ~help:"High-water mark of live filters (compare with nv/na)" (fun () ->
      float_of_int t.peak);
  register_counter reg (p "installs") ~unit_:"filters"
    ~help:"Successful installs, refreshes included" (fun () ->
      float_of_int t.installs);
  register_counter reg (p "rejected") ~unit_:"filters"
    ~help:"Installs refused because the table was full" (fun () ->
      float_of_int t.rejected);
  register_counter reg (p "blocked_packets") ~unit_:"packets"
    ~help:"Packets dropped by a matching filter" (fun () ->
      float_of_int t.blocked_packets);
  register_counter reg (p "blocked_bytes") ~unit_:"bytes"
    ~help:"Bytes dropped by a matching filter" (fun () ->
      float_of_int t.blocked_bytes)
