(** DRAM shadow cache of filtering requests.

    The paper's key resource trade: a gateway keeps a hardware filter only
    for Ttmp ≪ T, but remembers the request in cheap DRAM for the full T so
    that "on-off" flows are recognised the instant they reappear. The cache
    is bounded (mv = R1·T entries suffice per contract), entries expire after
    their TTL, and each entry carries caller data — the AITF gateway stores
    its per-flow protocol state here.

    Lookup mirrors {!Filter_table}: hash probes for exact host-pair labels
    plus a scan of wildcard entries. *)

open Aitf_net

type 'a t

type 'a entry

val create : Aitf_engine.Sim.t -> capacity:int -> 'a t

val insert :
  'a t -> Flow_label.t -> ttl:float -> 'a -> ('a entry, [ `Full ]) result
(** Remember a flow for [ttl] seconds. Re-inserting a live label replaces
    its data and extends its expiry (to the later deadline). *)

val find : 'a t -> Flow_label.t -> 'a entry option
(** Live entry with exactly this label. *)

val match_packet : 'a t -> Packet.t -> 'a entry option
(** Live entry whose label matches the packet, if any. *)

val remove : 'a t -> 'a entry -> unit

val refresh : 'a t -> 'a entry -> ttl:float -> unit
(** Push the expiry out to [now + ttl] (never shortens). *)

val data : 'a entry -> 'a
val set_data : 'a entry -> 'a -> unit
val label : 'a entry -> Flow_label.t
val inserted_at : 'a entry -> float
val expires_at : 'a entry -> float
val live : 'a entry -> bool

val occupancy : 'a t -> int
val capacity : 'a t -> int
val peak_occupancy : 'a t -> int
val inserts : 'a t -> int
val rejected : 'a t -> int

val hits : 'a t -> int
(** {!match_packet} calls that found a live entry. *)

val misses : 'a t -> int
(** {!match_packet} calls that found nothing. *)

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val register_metrics : 'a t -> Aitf_obs.Metrics.t -> prefix:string -> unit
(** Register occupancy/peak/hit-rate gauges and insert/rejection/hit/miss
    counters under [prefix] (e.g. ["gateway.G_gw1.shadow"]). *)

val iter : 'a t -> ('a entry -> unit) -> unit
(** Visit all live entries. *)
