module Sim = Aitf_engine.Sim
open Aitf_net

type policy = {
  high_watermark : float;
  low_watermark : float;
  max_per_requestor : int;
  min_aggregate : int;
}

let default_policy =
  {
    high_watermark = 0.9;
    low_watermark = 0.6;
    max_per_requestor = max_int;
    min_aggregate = 2;
  }

type t = {
  sim : Sim.t;
  table : Filter_table.t;
  policy : policy;
  mutable degraded : bool;
  mutable degraded_entries : int;
  mutable aggregations : int;
  mutable evictions : int;
  mutable collateral_packets : int;
  mutable collateral_bytes : int;
  aggregates : (Flow_label.t, unit) Hashtbl.t;
      (* labels of the wildcard aggregates this manager installed — the
         entries whose drops count as (potential) collateral damage *)
  owners : (Addr.t, Filter_table.handle list ref) Hashtbl.t;
}

let create ?(policy = default_policy) sim table =
  if
    not
      (policy.low_watermark <= policy.high_watermark
      && policy.low_watermark >= 0.)
  then invalid_arg "Overload.create: watermarks";
  if policy.max_per_requestor < 1 then
    invalid_arg "Overload.create: max_per_requestor";
  if policy.min_aggregate < 2 then invalid_arg "Overload.create: min_aggregate";
  {
    sim;
    table;
    policy;
    degraded = false;
    degraded_entries = 0;
    aggregations = 0;
    evictions = 0;
    collateral_packets = 0;
    collateral_bytes = 0;
    aggregates = Hashtbl.create 8;
    owners = Hashtbl.create 16;
  }

let occupancy_frac t =
  float_of_int (Filter_table.occupancy t.table)
  /. float_of_int (Filter_table.capacity t.table)

(* Eviction priority: lowest observed hit rate first (a filter that blocks
   nothing protects nobody), nearest expiry breaking ties, then the label's
   total order so the choice is deterministic. *)
let score h ~now =
  let age = Float.max (now -. Filter_table.installed_at h) 1e-9 in
  float_of_int (Filter_table.hits h) /. age

let eviction_candidate ?sparing t =
  let now = Sim.now t.sim in
  let keep h =
    match sparing with
    | Some l -> not (Flow_label.equal (Filter_table.label h) l)
    | None -> true
  in
  List.filter keep (Filter_table.live_entries t.table)
  |> List.fold_left
       (fun best h ->
         match best with
         | None -> Some h
         | Some b ->
           let c = Float.compare (score h ~now) (score b ~now) in
           let c =
             if c <> 0 then c
             else
               Float.compare (Filter_table.expires_at h)
                 (Filter_table.expires_at b)
           in
           if c < 0 then Some h else best)
       None

(* Span-trace the eviction against the request that installed the filter,
   so the victim's trace shows who paid for the table pressure. Recorded
   on the root, not an open span: the eviction happens at the table's
   gateway while the request's open spans may live on other nodes (and,
   sharded, in other collectors), so root attachment is the only placement
   independent of the shard layout. *)
let note_eviction t reason h =
  match Filter_table.corr h with
  | Some corr ->
    Aitf_obs.Span.root_event ~corr ~now:(Sim.now t.sim) reason
  | None -> ()

let priority_evict ?sparing t =
  match eviction_candidate ?sparing t with
  | None -> false
  | Some h ->
    note_eviction t "overload-evict" h;
    Filter_table.remove t.table h;
    t.evictions <- t.evictions + 1;
    true

(* Length of the common prefix of two addresses, MSB first. *)
let lcp_len a b =
  let rec go i = if i >= 32 || Addr.bit a i <> Addr.bit b i then i else go (i + 1) in
  go 0

(* The aggregation move: take the destination with the most live exact
   filters, replace them all with one prefix wildcard — the longest common
   prefix of their sources, towards that destination — and evict what it
   subsumes. Returns the aggregate's handle, or [None] when no destination
   has [min_aggregate] exact entries to fold. *)
let try_aggregate t =
  let exacts =
    List.filter
      (fun h -> Flow_label.is_exact (Filter_table.label h))
      (Filter_table.live_entries t.table)
  in
  let groups : (Addr.t, (Addr.t list * float) ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun h ->
      let l = Filter_table.label h in
      match (l.Flow_label.src, l.Flow_label.dst) with
      | Flow_label.Host s, Flow_label.Host d ->
        let cell =
          match Hashtbl.find_opt groups d with
          | Some c -> c
          | None ->
            let c = ref ([], 0.) in
            Hashtbl.replace groups d c;
            c
        in
        let srcs, horizon = !cell in
        cell := (s :: srcs, Float.max horizon (Filter_table.expires_at h))
      | _ -> ())
    exacts;
  (* live_entries is label-sorted, so fold order — and the tie-break on
     equal group sizes (lowest destination wins) — is deterministic. *)
  let best =
    Hashtbl.fold
      (fun d cell best ->
        let srcs, horizon = !cell in
        let n = List.length srcs in
        match best with
        | Some (_, _, _, bn) when bn > n -> best
        | Some (bd, _, _, bn) when bn = n && Addr.compare bd d <= 0 -> best
        | _ -> Some (d, srcs, horizon, n))
      groups None
  in
  match best with
  | Some (dst, (s0 :: _ as srcs), horizon, n) when n >= t.policy.min_aggregate
    ->
    let len = List.fold_left (fun acc s -> min acc (lcp_len s0 s)) 32 srcs in
    let agg = Flow_label.v (Flow_label.Net (Addr.prefix s0 len)) (Flow_label.Host dst) in
    let duration = Float.max (horizon -. Sim.now t.sim) 0. in
    let evicted = Filter_table.evict_subsumed t.table agg in
    (match Filter_table.install t.table agg ~duration with
    | Ok h ->
      t.aggregations <- t.aggregations + 1;
      t.evictions <- t.evictions + evicted;
      Hashtbl.replace t.aggregates agg ();
      Some h
    | Error `Table_full -> None)
  | _ -> None

(* Watermark hysteresis. Entering degraded mode immediately compacts the
   table (aggregation passes) until occupancy falls back under the low
   watermark or nothing is left to fold. *)
let rec refresh_mode t =
  if (not t.degraded) && occupancy_frac t >= t.policy.high_watermark then begin
    t.degraded <- true;
    t.degraded_entries <- t.degraded_entries + 1;
    compact t
  end
  else if t.degraded && occupancy_frac t <= t.policy.low_watermark then
    t.degraded <- false

and compact t =
  if occupancy_frac t > t.policy.low_watermark then
    match try_aggregate t with
    | Some _ -> compact t
    | None -> ()

let live_aggregate_covering t label =
  Hashtbl.fold
    (fun agg () best ->
      if Flow_label.subsumes agg label then
        match Filter_table.find t.table agg with
        | Some h -> (
          match best with
          | Some b
            when Flow_label.compare (Filter_table.label b) agg <= 0 ->
            best
          | _ -> Some h)
        | None -> best
      else best)
    t.aggregates None

let owned t requestor =
  match Hashtbl.find_opt t.owners requestor with
  | Some cell ->
    cell := List.filter Filter_table.live !cell;
    cell
  | None ->
    let cell = ref [] in
    Hashtbl.replace t.owners requestor cell;
    cell

(* A requestor at its cap pays for its next filter with its own least
   valuable one, instead of squeezing everyone else out of the table. *)
let enforce_requestor_cap t requestor =
  let cell = owned t requestor in
  if List.length !cell >= t.policy.max_per_requestor then begin
    let now = Sim.now t.sim in
    let victim =
      List.fold_left
        (fun best h ->
          match best with
          | None -> Some h
          | Some b ->
            let c = Float.compare (score h ~now) (score b ~now) in
            let c =
              if c <> 0 then c
              else
                Float.compare (Filter_table.expires_at h)
                  (Filter_table.expires_at b)
            in
            let c =
              if c <> 0 then c
              else
                Flow_label.compare (Filter_table.label h)
                  (Filter_table.label b)
            in
            if c < 0 then Some h else best)
        None !cell
    in
    match victim with
    | Some h ->
      note_eviction t "overload-evict-requestor-cap" h;
      Filter_table.remove t.table h;
      t.evictions <- t.evictions + 1;
      cell := List.filter Filter_table.live !cell
    | None -> ()
  end

let install ?rate_limit ?corr ?requestor t label ~duration =
  refresh_mode t;
  if not t.degraded then
    Filter_table.install ?rate_limit ?corr t.table label ~duration
  else begin
    Option.iter (enforce_requestor_cap t) requestor;
    let record h =
      (match requestor with
      | Some r ->
        let cell = owned t r in
        if not (List.memq h !cell) then cell := h :: !cell
      | None -> ());
      refresh_mode t;
      Ok h
    in
    (* Already covered by one of our aggregates? Refresh the aggregate
       instead of re-growing the exact population it replaced. *)
    match live_aggregate_covering t label with
    | Some agg ->
      ignore
        (Filter_table.install t.table (Filter_table.label agg) ~duration);
      record agg
    | None -> (
      let plain () =
        Filter_table.install ?rate_limit ?corr t.table label ~duration
      in
      match plain () with
      | Ok h -> record h
      | Error `Table_full -> (
        let after_aggregate =
          match try_aggregate t with
          | Some agg when Flow_label.subsumes (Filter_table.label agg) label ->
            `Use agg
          | Some _ -> (
            match plain () with Ok h -> `Use h | Error `Table_full -> `Full)
          | None -> `Full
        in
        match after_aggregate with
        | `Use h -> record h
        | `Full ->
          if priority_evict ~sparing:label t then
            match plain () with
            | Ok h -> record h
            | Error `Table_full -> Error `Table_full
          else Error `Table_full))
  end

let note_blocked t h (pkt : Packet.t) =
  if Hashtbl.mem t.aggregates (Filter_table.label h) then
    match pkt.Packet.payload with
    | Packet.Data { attack = false; _ } ->
      t.collateral_packets <- t.collateral_packets + 1;
      t.collateral_bytes <- t.collateral_bytes + pkt.Packet.size
    | _ -> ()

(* A pure read: mode transitions happen on install events only, never on a
   metrics pull — sampling a run must not change it. *)
let degraded t = t.degraded

let degraded_entries t = t.degraded_entries
let aggregations t = t.aggregations
let evictions t = t.evictions
let collateral_packets t = t.collateral_packets
let collateral_bytes t = t.collateral_bytes

let register_metrics t reg ~prefix =
  let open Aitf_obs.Metrics in
  let p metric = prefix ^ "." ^ metric in
  register_gauge reg (p "degraded") ~unit_:"bool"
    ~help:"1 while the table sits between its watermarks in degraded mode"
    (fun () -> if degraded t then 1. else 0.);
  register_counter reg (p "degraded_entries") ~unit_:"times"
    ~help:"Times the high watermark was crossed" (fun () ->
      float_of_int t.degraded_entries);
  register_counter reg (p "aggregations") ~unit_:"filters"
    ~help:"Exact-filter groups folded into one prefix wildcard" (fun () ->
      float_of_int t.aggregations);
  register_counter reg (p "evictions") ~unit_:"filters"
    ~help:
      "Live filters evicted under pressure (subsumed by an aggregate, \
       priority-evicted, or over a requestor's cap)" (fun () ->
      float_of_int t.evictions);
  register_counter reg (p "collateral_packets") ~unit_:"packets"
    ~help:
      "Estimated legitimate packets dropped by manager-installed aggregates"
    (fun () -> float_of_int t.collateral_packets);
  register_counter reg (p "collateral_bytes") ~unit_:"bytes"
    ~help:"Estimated legitimate bytes dropped by manager-installed aggregates"
    (fun () -> float_of_int t.collateral_bytes)
