module Sim = Aitf_engine.Sim
open Aitf_net

type 'a entry = {
  label : Flow_label.t;
  inserted_at : float;
  mutable expires_at : float;
  mutable alive : bool;
  mutable data : 'a;
  mutable expiry_event : Sim.handle option;
}

type 'a t = {
  sim : Sim.t;
  capacity : int;
  exact : (Flow_label.t, 'a entry) Hashtbl.t;
  mutable wildcards : 'a entry list;
  by_label : (Flow_label.t, 'a entry) Hashtbl.t;
  mutable occupancy : int;
  mutable peak : int;
  mutable inserts : int;
  mutable rejected : int;
  mutable hits : int;
  mutable misses : int;
}

let create sim ~capacity =
  if capacity <= 0 then invalid_arg "Shadow_cache.create: capacity";
  {
    sim;
    capacity;
    exact = Hashtbl.create 256;
    wildcards = [];
    by_label = Hashtbl.create 256;
    occupancy = 0;
    peak = 0;
    inserts = 0;
    rejected = 0;
    hits = 0;
    misses = 0;
  }

let detach t e =
  if e.alive then begin
    e.alive <- false;
    (match e.expiry_event with Some ev -> Sim.cancel ev | None -> ());
    e.expiry_event <- None;
    Hashtbl.remove t.by_label e.label;
    if Flow_label.is_exact e.label then Hashtbl.remove t.exact e.label
    else t.wildcards <- List.filter (fun w -> w != e) t.wildcards;
    t.occupancy <- t.occupancy - 1
  end

let arm t e =
  (match e.expiry_event with Some ev -> Sim.cancel ev | None -> ());
  e.expiry_event <-
    Some
      (Sim.at ~label:"shadow-expiry" t.sim e.expires_at (fun () ->
           detach t e))

let insert t label ~ttl data =
  let now = Sim.now t.sim in
  match Hashtbl.find_opt t.by_label label with
  | Some e ->
    e.data <- data;
    e.expires_at <- Float.max e.expires_at (now +. ttl);
    arm t e;
    t.inserts <- t.inserts + 1;
    Ok e
  | None ->
    if t.occupancy >= t.capacity then begin
      t.rejected <- t.rejected + 1;
      Error `Full
    end
    else begin
      let e =
        {
          label;
          inserted_at = now;
          expires_at = now +. ttl;
          alive = true;
          data;
          expiry_event = None;
        }
      in
      Hashtbl.replace t.by_label label e;
      if Flow_label.is_exact label then Hashtbl.replace t.exact label e
      else t.wildcards <- e :: t.wildcards;
      t.occupancy <- t.occupancy + 1;
      if t.occupancy > t.peak then t.peak <- t.occupancy;
      t.inserts <- t.inserts + 1;
      arm t e;
      Ok e
    end

let find t label =
  match Hashtbl.find_opt t.by_label label with
  | Some e when e.alive -> Some e
  | _ -> None

let match_packet t (pkt : Packet.t) =
  let pair = Flow_label.host_pair pkt.src pkt.dst in
  let result =
    match Hashtbl.find_opt t.exact pair with
    | Some e when e.alive -> Some e
    | _ -> (
      let with_proto = { pair with Flow_label.proto = Some pkt.proto } in
      match Hashtbl.find_opt t.exact with_proto with
      | Some e when e.alive -> Some e
      | _ ->
        List.find_opt
          (fun e -> e.alive && Flow_label.matches e.label pkt)
          t.wildcards)
  in
  (match result with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  result

let remove t e = detach t e

let refresh t e ~ttl =
  if e.alive then begin
    let deadline = Sim.now t.sim +. ttl in
    if deadline > e.expires_at then begin
      e.expires_at <- deadline;
      arm t e
    end
  end

let data e = e.data
let set_data e d = e.data <- d
let label e = e.label
let inserted_at e = e.inserted_at
let expires_at e = e.expires_at
let live e = e.alive

let occupancy t = t.occupancy
let capacity t = t.capacity
let peak_occupancy t = t.peak
let inserts t = t.inserts
let rejected t = t.rejected
let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let register_metrics t reg ~prefix =
  let open Aitf_obs.Metrics in
  let p metric = prefix ^ "." ^ metric in
  register_gauge reg (p "occupancy") ~unit_:"entries"
    ~help:"Live shadow-cache entries" (fun () -> float_of_int t.occupancy);
  register_gauge reg (p "peak_occupancy") ~unit_:"entries"
    ~help:"High-water mark of live entries (compare with mv = R1*T)"
    (fun () -> float_of_int t.peak);
  register_counter reg (p "inserts") ~unit_:"entries"
    ~help:"Inserts, refreshes included" (fun () -> float_of_int t.inserts);
  register_counter reg (p "rejected") ~unit_:"entries"
    ~help:"Inserts refused because the cache was full" (fun () ->
      float_of_int t.rejected);
  register_counter reg (p "hits") ~unit_:"lookups"
    ~help:"Data-path lookups that matched a live entry" (fun () ->
      float_of_int t.hits);
  register_counter reg (p "misses") ~unit_:"lookups"
    ~help:"Data-path lookups that matched nothing" (fun () ->
      float_of_int t.misses);
  register_gauge reg (p "hit_rate") ~unit_:"ratio"
    ~help:"hits / (hits + misses); 0 before any lookup" (fun () -> hit_rate t)

let iter t f =
  Hashtbl.iter (fun _ e -> if e.alive then f e) t.by_label
