(** Filter-table overload manager: graceful degradation under slot pressure.

    The wire-speed table is the scarce resource an adversary aims at
    (Section III: rotate spoofed sources until the victim's gateway runs out
    of its nv = R1·Ttmp temporary slots). Left alone, the table answers with
    [`Table_full] and the flood leaks. This manager wraps a
    {!Filter_table.t} with watermark hysteresis and three degradation moves,
    trading precision for protection the way El Defrawy et al. frame the
    fixed-budget filtering problem:

    - {b aggregation}: fold the destination with the most exact filters into
      one prefix wildcard (the longest common prefix of the attacking
      sources), evicting everything it subsumes;
    - {b per-requestor caps}: a requestor at its cap pays for its next
      filter with its own least valuable entry instead of everyone else's;
    - {b priority eviction}: when the table is still full, evict the live
      entry with the lowest hit rate (nearest expiry, then label order,
      breaking ties) rather than refuse the install.

    Every decision is counted and exported through {!register_metrics},
    including a collateral-damage estimate: legitimate packets dropped by
    manager-installed aggregates. All choices are deterministic — no
    randomness, total-order tie-breaks — so seeded runs replay exactly. *)

open Aitf_net

type policy = {
  high_watermark : float;
      (** occupancy fraction at which degraded mode engages *)
  low_watermark : float;  (** fraction at which it disengages (hysteresis) *)
  max_per_requestor : int;
      (** outstanding filters one requestor may hold in degraded mode;
          [max_int] disables the cap *)
  min_aggregate : int;
      (** minimum exact entries an aggregate must replace (>= 2) *)
}

val default_policy : policy
(** 0.9 / 0.6 watermarks, no per-requestor cap, aggregates of >= 2. *)

type t

val create : ?policy:policy -> Aitf_engine.Sim.t -> Filter_table.t -> t
(** Wrap a table. The table may still be used directly; the manager only
    acts through {!install}. *)

val install :
  ?rate_limit:float ->
  ?corr:int ->
  ?requestor:Addr.t ->
  t ->
  Flow_label.t ->
  duration:float ->
  (Filter_table.handle, [ `Table_full ]) result
(** Like {!Filter_table.install}, but in degraded mode the manager may
    return the handle of a covering aggregate instead of an exact entry,
    and works through its degradation moves before ever reporting
    [`Table_full]. [?requestor] attributes the entry for the per-requestor
    cap; [?corr] stamps it for span tracing (evictions under pressure emit
    an [overload-evict] span event against the installing request). Below
    the high watermark this is exactly a plain table install. *)

val note_blocked : t -> Filter_table.handle -> Packet.t -> unit
(** Tell the manager a filter dropped a packet (call from the forwarding
    hook with {!Filter_table.blocking_entry}'s result). Non-attack data
    dropped by a manager-installed aggregate counts as collateral damage. *)

val degraded : t -> bool
(** Pure read; transitions happen on {!install} events only, never on a
    metrics pull. *)

val degraded_entries : t -> int
val aggregations : t -> int
val evictions : t -> int
val collateral_packets : t -> int
val collateral_bytes : t -> int

val register_metrics : t -> Aitf_obs.Metrics.t -> prefix:string -> unit
(** Degraded-mode gauge plus aggregation/eviction/collateral counters under
    [prefix] (e.g. ["gateway.G_gw1.overload"]). *)
