(** AITF protocol messages.

    The protocol has one main message — the filtering request — plus the
    verification query/reply pair of the 3-way handshake (Section II-E).
    Messages ride as packet payloads via the extensible payload variant, so
    the network layer needs no knowledge of AITF. *)

open Aitf_net
open Aitf_filter

type target =
  | To_victim_gateway
  | To_attacker_gateway
  | To_attacker
      (** The type field of the paper: whom the request is addressed to. *)

type request = {
  flow : Flow_label.t;  (** the undesired flow to block *)
  target : target;
  duration : float;  (** T — how long to block, seconds *)
  path : Addr.t list;
      (** attack path (AITF border routers), attacker-side first; empty when
          the receiving gateway must run traceback itself *)
  hops : int;  (** escalation round: which path entry to contact *)
  requestor : Addr.t;  (** who originated this round's request *)
  corr : int;
      (** correlation id minted at the victim ({!Aitf_obs.Span.mint}) and
          carried through every round of the exchange, so causal tracing
          can stitch the distributed stages into one span tree; [0] means
          untraceable (legacy or forged requests). Never consulted by
          protocol logic. *)
  auth : int64;
      (** keyed digest of the request's canonical wire bytes under the
          requestor's key ([Aitf_contract.Signing]); [0L] means unsigned
          (legacy). Only consulted when the receiving gateway has the
          verifiable-contract layer enabled. *)
}

type receipt = {
  rc_flow : Flow_label.t;  (** the flow the gateway claims to police *)
  rc_gateway : Addr.t;  (** the contracted gateway issuing the receipt *)
  rc_victim : Addr.t;  (** whom the receipt is owed to (the flow's dst) *)
  rc_seq : int;
      (** per-gateway monotonically increasing sequence number; a replayed
          receipt re-uses an old value and is caught by the auditor exactly
          like a replayed handshake reply *)
  rc_installed_at : float;  (** when the filter was installed (claim) *)
  rc_expires_at : float;  (** when the filter will lapse (claim) *)
  rc_hits : int;  (** packets the filter has blocked so far (claim) *)
  rc_auth : int64;  (** keyed digest under the issuing gateway's key *)
}
(** Install receipt (docs/CONTRACTS.md): proof-of-policing a contracted
    gateway returns when it installs a filter, then refreshes periodically
    while the filter is resident. The victim-side auditor cross-checks the
    claims against observed arrivals. *)

type Packet.payload +=
  | Filtering_request of request
  | Verification_query of { flow : Flow_label.t; nonce : int64 }
  | Verification_reply of { flow : Flow_label.t; nonce : int64 }
  | Install_receipt of receipt

val message_size : int
(** Wire size (bytes) charged for every AITF message. *)

val protocol_number : int
(** The protocol field value of AITF packets. *)

val packet : src:Addr.t -> dst:Addr.t -> Packet.payload -> Packet.t
(** Wrap a payload in a correctly-sized AITF packet. *)

val pp_target : Format.formatter -> target -> unit
val pp_request : Format.formatter -> request -> unit
val pp_receipt : Format.formatter -> receipt -> unit
