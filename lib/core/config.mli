(** Protocol parameters.

    All of AITF's constants live here, named after the paper:
    - [t_filter] is T, the duration every filtering request asks for;
    - [t_tmp] is Ttmp ≪ T, how long the victim's gateway keeps its
      temporary filter while the attacker's gateway takes over — it must
      cover traceback plus the 3-way handshake;
    - [grace] is the grace period an attacker (or its gateway) gets to stop
      a flow before disconnection is considered;
    - [r1]/[r2] are the default filtering-contract rates: R1 is the rate at
      which a provider accepts requests from a client, R2 the rate at which
      a provider may send requests to a client.

    A config also selects the traceback mode and the verification and
    disconnection behaviours, so experiments can toggle each mechanism. *)

type filter_action =
  | Block
  | Rate_limit of float
      (** bytes/s granted to the undesired flow instead of zero — the
          pushback-style alternative footnote 10 argues against for DoS
          traffic; ablation A5 quantifies the difference *)

type traceback_mode =
  | Path_in_request
      (** the requestor supplies the attack path (route record or a
          PPM reconstruction) *)
  | Spie_query of Aitf_traceback.Spie.t
      (** the victim's gateway reconstructs the path itself by capturing a
          filtered packet and querying SPIE digests *)

type engine =
  | Packet  (** every data packet is a discrete event (the default) *)
  | Hybrid
      (** fluid data plane ([Aitf_flowsim]): aggregates carry byte rates,
          links recompute drop-tail shares at epoch boundaries and on rate
          changes; the AITF control plane stays packet-level, bridged by a
          deterministic probe sampler *)

type t = {
  t_filter : float;  (** T (s) *)
  t_tmp : float;  (** Ttmp (s) *)
  grace : float;  (** compliance grace period (s) *)
  handshake : bool;  (** verify requests with the 3-way handshake *)
  handshake_timeout : float;  (** (s) *)
  disconnect : bool;  (** enforce disconnection on non-compliance *)
  disconnect_duration : float;  (** how long a blocklist entry lasts (s) *)
  max_rounds : int;  (** escalation bound *)
  r1 : float;  (** default client->provider request rate (1/s) *)
  r1_burst : float;
  r2 : float;  (** default provider->client request rate (1/s) *)
  r2_burst : float;
  remote_rate : float;
      (** policing rate for requests from remote (non-contract) gateways *)
  remote_burst : float;
  filter_capacity : int;  (** hardware filter slots per gateway *)
  shadow_capacity : int;  (** DRAM shadow entries per gateway *)
  traceback : traceback_mode;
  min_report_gap : float;
      (** victim-side damper between repeated requests for one flow (s) *)
  aggregate_on_pressure : bool;
      (** when the hardware filter table is full, fall back to one
          wildcarded filter per victim (all sources -> victim) instead of
          failing — protection at the price of collateral damage *)
  filter_action : filter_action;
      (** what the attacker-side full-T filters do (default {!Block}) *)
  ctrl_retries : int;
      (** control-plane retransmissions per message beyond the first
          transmission; [0] (the default) disables retransmission entirely
          and reproduces single-shot behaviour bit-for-bit *)
  ctrl_rto : float;
      (** initial control-plane retransmission timeout (s); doubles (times
          [ctrl_backoff]) on every retry *)
  ctrl_backoff : float;  (** multiplicative backoff factor (default 2) *)
  overload_manager : bool;
      (** wrap every gateway's filter table in the
          {!Aitf_filter.Overload} manager: watermark-driven degraded mode
          with prefix aggregation, per-requestor caps and priority eviction
          instead of bare [`Table_full] refusals. Off (the default) keeps
          installs byte-identical to the unmanaged table. *)
  overload_high : float;
      (** occupancy fraction that engages degraded mode (default 0.9) *)
  overload_low : float;
      (** occupancy fraction that disengages it (default 0.6) *)
  overload_max_per_requestor : int;
      (** outstanding filters one requestor may hold while degraded;
          [max_int] (the default) disables the cap *)
  engine : engine;
      (** which data-plane substrate scenario runners build (default
          {!Packet}; the choice never alters packet-engine behaviour) *)
  hybrid_epoch : float;
      (** fluid-share recompute period (s, default 0.1); recomputes also
          happen immediately on any filter or rate change *)
  hybrid_probe_rate : float;
      (** representative packets materialised per aggregate (packets/s);
          [0.] (the default) derives a rate from the aggregate's own packet
          rate, capped so probe cost stays bounded *)
  placement : Placement.policy;
      (** which filter-placement policy scenario runners wire up (default
          {!Placement.Vanilla}, today's escalate-upstream propagation;
          the choice never alters vanilla gateway behaviour) *)
  placement_epoch : float;
      (** managed-placement controller decision period (s, default 0.5) *)
}

val default : t
(** The paper's running example where it gives numbers: T = 60 s,
    Ttmp = 1 s (600 ms handshake budget plus margin), grace = 0.5 s,
    handshake on, disconnection off (scenarios enable it), R1 = 100/s,
    R2 = 1/s, 1000 filters, 100k shadow entries, path-in-request
    traceback. *)

val with_timescale : t -> float -> t
(** Scale the protocol horizons (T, Ttmp, disconnection, report damping) by
    a factor — used to shrink T in long sweeps so simulations stay fast
    while preserving the ratios the formulas depend on. The handshake
    timeout, control-plane RTO and grace period are left alone, and Ttmp
    and the report gap
    are floored, because those are bounded below by network round trips,
    which a timescale change does not shrink. *)
