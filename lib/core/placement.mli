(** The filter-placement seam: {e where} should a filter sit?

    Vanilla AITF answers implicitly — the victim's gateway asks the
    attack path's round-appropriate gateway and escalates upstream on
    non-cooperation. That answer is wired through {!Gateway.engage}. This
    module turns it into a first-class decision: a gateway created with a
    {e managed} placement handle keeps its local roles (policing, shadow
    logging, temporary Ttmp protection) but, instead of propagating the
    request along the path, {e reports} the attack evidence to a placement
    controller, which decides where long filters go and installs them
    directly into the chosen gateways' tables.

    Three policies ship (see docs/PLACEMENT.md):
    - {!Vanilla} — unmanaged; gateways behave exactly as without a handle
      (same code paths, bit-identical runs);
    - {!Optimal} — per-epoch knapsack-style optimal filter selection from
      the attack-source set (El Defrawy/Markopoulou/Argyraki, PAPERS.md);
    - {!Adaptive} — feedback-driven re-placement using filter hit counters,
      the {!Aitf_filter.Filter_table.subscribe} change feed and the
      overload manager's collateral accounting (Li et al., PAPERS.md).

    The controllers themselves live in the workload layer
    ([Aitf_workload.Placement_ctl]); this module only defines the policy
    names, the evidence record crossing the seam, and the handle gateways
    hold. *)

open Aitf_net
open Aitf_filter

type policy = Vanilla | Optimal | Adaptive

val all_policies : policy list

val policy_to_string : policy -> string

val policy_of_string : string -> (policy, string) result
(** Case-insensitive; [Error] carries a usage message listing the valid
    names. *)

type evidence = {
  flow : Flow_label.t;  (** the undesired flow, as requested by the victim *)
  path : Addr.t list;
      (** gateway path from the request, attacker side first *)
  duration : float;  (** requested filter lifetime T *)
  reporter : Addr.t;  (** the gateway that reported instead of propagating *)
  at : float;  (** simulation time of the report *)
}

type t

val create : policy:policy -> report:(evidence -> unit) -> t
(** A placement handle delivering evidence to [report]. A [Vanilla] handle
    is inert: {!managed} is [false] and gateways holding it behave exactly
    like gateways created without one. *)

val vanilla : t
(** The inert handle — convenience for CLI plumbing. *)

val policy : t -> policy

val managed : t -> bool
(** [true] for [Optimal] and [Adaptive]: the controller owns long-filter
    placement and gateways suppress request propagation/escalation. *)

val report : t -> evidence -> unit

val reports : t -> int
(** Evidence reports delivered so far. *)
