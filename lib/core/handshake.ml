module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_filter

type pending = {
  flow : Flow_label.t;
  on_result : bool -> unit;
  send : int64 -> unit;
  mutable attempts : int;  (* transmissions so far, including the first *)
  mutable timeout_event : Sim.handle option;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  timeout : float;
  retries : int;
  backoff : float;
  table : (int64, pending) Hashtbl.t;
  completed : (int64, Flow_label.t) Hashtbl.t;
      (* verified nonces, kept so a replayed reply is recognised as a
         duplicate (a no-op) rather than a forgery *)
  mutable started : int;
  mutable verified : int;
  mutable timed_out : int;
  mutable bogus : int;
  mutable retransmits : int;
  mutable duplicates : int;
}

let create ?(retries = 0) ?(backoff = 2.0) sim rng ~timeout =
  if retries < 0 then invalid_arg "Handshake.create: negative retries";
  if backoff < 1.0 then invalid_arg "Handshake.create: backoff must be >= 1";
  {
    sim;
    rng;
    timeout;
    retries;
    backoff;
    table = Hashtbl.create 32;
    completed = Hashtbl.create 32;
    started = 0;
    verified = 0;
    timed_out = 0;
    bogus = 0;
    retransmits = 0;
    duplicates = 0;
  }

let rec fresh_nonce t =
  let n = Rng.nonce t.rng in
  if Hashtbl.mem t.table n || Hashtbl.mem t.completed n then fresh_nonce t
  else n

(* Arm the timeout for the current attempt. On expiry: retransmit with the
   backed-off timeout while the retry budget lasts, then fail exactly once. *)
let rec arm t nonce (p : pending) rto =
  p.timeout_event <-
    Some
      (Sim.after ~label:"handshake-rto" t.sim rto (fun () ->
           if Hashtbl.mem t.table nonce then begin
             if p.attempts - 1 < t.retries then begin
               t.retransmits <- t.retransmits + 1;
               p.attempts <- p.attempts + 1;
               p.send nonce;
               arm t nonce p (rto *. t.backoff)
             end
             else begin
               Hashtbl.remove t.table nonce;
               t.timed_out <- t.timed_out + 1;
               p.on_result false
             end
           end))

let start t ~flow ~send ~on_result =
  let nonce = fresh_nonce t in
  let p = { flow; on_result; send; attempts = 1; timeout_event = None } in
  Hashtbl.replace t.table nonce p;
  t.started <- t.started + 1;
  send nonce;
  arm t nonce p t.timeout;
  nonce

let handle_reply t ~flow ~nonce =
  match Hashtbl.find_opt t.table nonce with
  | Some p when Flow_label.equal p.flow flow ->
    Hashtbl.remove t.table nonce;
    Option.iter Sim.cancel p.timeout_event;
    Hashtbl.replace t.completed nonce p.flow;
    t.verified <- t.verified + 1;
    p.on_result true
  | Some _ -> t.bogus <- t.bogus + 1
  | None -> (
    match Hashtbl.find_opt t.completed nonce with
    | Some f when Flow_label.equal f flow ->
      (* Replay of an already-verified reply (retransmitted query answered
         twice, or a duplicated packet): a no-op by design. *)
      t.duplicates <- t.duplicates + 1
    | Some _ | None -> t.bogus <- t.bogus + 1)

let pending t = Hashtbl.length t.table
let started t = t.started
let verified t = t.verified
let timed_out t = t.timed_out
let bogus_replies t = t.bogus
let retransmits t = t.retransmits
let duplicate_replies t = t.duplicates
