module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_filter

type flow_state =
  | Pending  (* Td timer running *)
  | Reported of float  (* time of last report *)

type t = {
  sim : Sim.t;
  td : float;
  min_report_gap : float;
  on_detect : Flow_label.t -> Packet.t -> unit;
  flows : (Flow_label.t, flow_state ref) Hashtbl.t;
  mutable detections : int;
}

let create sim ~td ~min_report_gap ~on_detect =
  {
    sim;
    td;
    min_report_gap;
    on_detect;
    flows = Hashtbl.create 64;
    detections = 0;
  }

let report t label pkt state =
  state := Reported (Sim.now t.sim);
  t.detections <- t.detections + 1;
  t.on_detect label pkt

let observe t (pkt : Packet.t) =
  let label = Flow_label.host_pair pkt.src pkt.dst in
  match Hashtbl.find_opt t.flows label with
  | None ->
    let state = ref Pending in
    Hashtbl.replace t.flows label state;
    ignore
      (Sim.after ~label:"detection-td" t.sim t.td (fun () ->
           report t label pkt state))
  | Some ({ contents = Pending } as _state) -> ()
  | Some ({ contents = Reported last } as state) ->
    (* Reappearance: instant re-detection, damped. *)
    if Sim.now t.sim -. last >= t.min_report_gap then report t label pkt state

let known t label =
  match Hashtbl.find_opt t.flows label with
  | Some { contents = Reported _ } -> true
  | _ -> false

let flows_seen t = Hashtbl.length t.flows
let detections t = t.detections
