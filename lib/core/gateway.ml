module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Trace = Aitf_engine.Trace
module Counter = Aitf_stats.Counter
module Spie = Aitf_traceback.Spie
module Span = Aitf_obs.Span
open Aitf_net
open Aitf_filter

(* Per-flow protocol state at a gateway acting as (possibly escalated)
   victim's gateway. Lives as shadow-cache data so it expires with the
   logged request. *)
type flow_phase =
  | Filtering  (* temporary filter installed, waiting for handover *)
  | Monitoring  (* shadow only: a hit means the attacker side failed us *)
  | Delegated  (* escalated upstream; no longer our responsibility *)
  | Awaiting_path  (* SPIE mode: need to capture a packet to trace *)

type flow_entry = {
  flow : Flow_label.t;
  mutable path : Addr.t list;
  mutable round : int;
  mutable phase : flow_phase;
  mutable gen : int;  (* invalidates stale Ttmp-expiry and retry events *)
  mutable duration : float;
  mutable engaged_at : float;  (* when the current round was engaged *)
  mutable temp_handle : Filter_table.handle option;
      (* this round's temporary filter; its hit counter is the evidence the
         control-plane retransmitter reads *)
  mutable sent_hits : int;  (* temp-filter hits at the last transmission *)
  requestor : Addr.t;
  corr : int;  (* correlation id of the originating request (span tracing) *)
}

(* Verifiable-contract layer (docs/CONTRACTS.md). [Honest] is the only
   behaviour protocol code assumes; the lying variants model the
   Byzantine filter node of the Lying_filter_node playbook. *)
type contract_behavior =
  | Honest
  | Accept_ignore  (* accept the request, install nothing, stay silent *)
  | Partial_policing of float  (* rate-limit to this leak (bytes/s) *)
  | Forge_receipts  (* no filter; receipts fabricated without the key *)
  | Replay_receipts  (* brief install; replay the first receipt forever *)

type contract_state = {
  cs_sign : Bytes.t -> int64;  (* keyed digest under this gateway's key *)
  cs_verify : Addr.t -> Bytes.t -> int64 -> bool;
  cs_refresh : float;  (* receipt refresh period (s) *)
  mutable cs_behavior : contract_behavior;
  mutable cs_seq : int;  (* per-gateway receipt sequence number *)
  cs_streams : (Flow_label.t, unit) Hashtbl.t;
      (* labels with a live receipt-refresh loop, so an epoch-refreshed
         install does not stack a second stream on the first *)
}

type t = {
  net : Network.t;
  sim : Sim.t;
  node : Node.t;
  config : Config.t;
  policy : Policy.gateway_policy;
  upstream : Addr.t option;
  placement : Placement.t option;
      (* managed handle: report evidence to a placement controller instead
         of propagating/escalating; None (or a Vanilla handle) keeps the
         propagation paths bit-identical *)
  client_cone : unit Lpm.t;
  filters : Filter_table.t;
  overload : Overload.t option;
      (* graceful-degradation manager wrapped around [filters]; None keeps
         raw-table behaviour bit-identical *)
  shadow : flow_entry Shadow_cache.t;
  handshakes : Handshake.t;
  rng : Rng.t;
  policers : (Addr.t, Token_bucket.t) Hashtbl.t;
  overflow_policer : Token_bucket.t;
      (* shared bucket for requestors beyond the tracking bound *)
  client_policers : (Addr.t, Token_bucket.t) Hashtbl.t;
  overrides : (Addr.t, float * float) Hashtbl.t;
  client_overrides : (Addr.t, float * float) Hashtbl.t;
  verifying : (Flow_label.t, unit) Hashtbl.t;
      (* flows with an in-flight 3-way handshake, to coalesce repeats *)
  mutable contracts : contract_state option;
      (* None (the default) keeps every path bit-identical to the
         pre-contract protocol: no signing, no receipts, no verification *)
  flagged : (Addr.t, unit) Hashtbl.t;
      (* peers the auditor convicted of lying; engage skips them *)
  blocklist : (Addr.t, float) Hashtbl.t;
  counters : Counter.t;
  mutable requests_received : int;
  ttf : Aitf_obs.Metrics.timer option;
      (* time-to-filter histogram; None when no registry was attached *)
}

let node t = t.node
let addr t = t.node.Node.addr
let config t = t.config
let policy t = t.policy
let filters t = t.filters
let overload t = t.overload

(* Every protocol-driven filter install goes through here so the overload
   manager (when configured) can apply its degradation moves; without one
   this is exactly a plain table install. *)
let filter_install ?rate_limit ?corr ?requestor t label ~duration =
  match t.overload with
  | Some mgr ->
    Overload.install ?rate_limit ?corr ?requestor mgr label ~duration
  | None -> Filter_table.install ?rate_limit ?corr t.filters label ~duration
let shadow_occupancy t = Shadow_cache.occupancy t.shadow
let shadow_peak t = Shadow_cache.peak_occupancy t.shadow
let counters t = t.counters
let requests_received t = t.requests_received
let tracked_requestors t = Hashtbl.length t.policers

let phase_name = function
  | Filtering -> "filtering"
  | Monitoring -> "monitoring"
  | Delegated -> "delegated"
  | Awaiting_path -> "awaiting-path"

let active_flows t =
  let acc = ref [] in
  Shadow_cache.iter t.shadow (fun entry ->
      let e = Shadow_cache.data entry in
      acc := (e.flow, phase_name e.phase) :: !acc);
  List.sort (fun (a, _) (b, _) -> Flow_label.compare a b) !acc

let trace t fmt =
  Trace.emitf ~time:(Sim.now t.sim) ~category:t.node.Node.name fmt

let in_cone t a = Option.is_some (Lpm.lookup t.client_cone a)

let set_contract t ~peer ~rate ~burst =
  Hashtbl.replace t.overrides peer (rate, burst);
  Hashtbl.remove t.policers peer

let set_client_contract t ~client ~rate ~burst =
  Hashtbl.replace t.client_overrides client (rate, burst);
  Hashtbl.remove t.client_policers client

(* Requestor policing: clients get the R1 contract, remote gateways the
   remote default, unless an explicit contract override exists.

   The table itself must not become a resource-exhaustion target: a forger
   rotating the requestor field could otherwise allocate one bucket per
   forgery. Beyond a bound, unknown requestors share a single overflow
   bucket — collectively policed, which is exactly what an address-spraying
   forger deserves. *)
let max_tracked_requestors = 4096

let policer_for t requestor =
  match Hashtbl.find_opt t.policers requestor with
  | Some b -> b
  | None ->
    let rate, burst =
      match Hashtbl.find_opt t.overrides requestor with
      | Some rb -> rb
      | None ->
        if in_cone t requestor then (t.config.Config.r1, t.config.Config.r1_burst)
        else (t.config.Config.remote_rate, t.config.Config.remote_burst)
    in
    if
      Hashtbl.length t.policers >= max_tracked_requestors
      && not (Hashtbl.mem t.overrides requestor)
      && not (in_cone t requestor)
    then begin
      Counter.incr t.counters "policer-overflow";
      t.overflow_policer
    end
    else begin
      let b = Token_bucket.create ~rate ~burst in
      Hashtbl.replace t.policers requestor b;
      b
    end

(* R2 policing towards one of our clients. *)
let client_policer_for t client =
  match Hashtbl.find_opt t.client_policers client with
  | Some b -> b
  | None ->
    let rate, burst =
      match Hashtbl.find_opt t.client_overrides client with
      | Some rb -> rb
      | None -> (t.config.Config.r2, t.config.Config.r2_burst)
    in
    let b = Token_bucket.create ~rate ~burst in
    Hashtbl.replace t.client_policers client b;
    b

let send t ~dst payload =
  Network.originate t.net t.node (Message.packet ~src:(addr t) ~dst payload)

let blocklisted t a =
  match Hashtbl.find_opt t.blocklist a with
  | None -> false
  | Some expiry ->
    if Sim.now t.sim >= expiry then begin
      Hashtbl.remove t.blocklist a;
      false
    end
    else true

let disconnect_host t a =
  Hashtbl.replace t.blocklist a
    (Sim.now t.sim +. t.config.Config.disconnect_duration);
  Counter.incr t.counters "disconnect-host";
  trace t "disconnecting non-compliant host %a" Addr.pp a

(* --- verifiable-contract layer (docs/CONTRACTS.md) ----------------------- *)

let enable_contracts ?(refresh = 5.0) t ~sign ~verify =
  if Option.is_some t.contracts then
    invalid_arg "Gateway.enable_contracts: already enabled";
  t.contracts <-
    Some
      {
        cs_sign = sign;
        cs_verify = verify;
        cs_refresh = refresh;
        cs_behavior = Honest;
        cs_seq = 0;
        cs_streams = Hashtbl.create 8;
      };
  (* Registered here, not in [create], so pre-contract runs expose exactly
     the pre-contract metric set. *)
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric = "gateway." ^ t.node.Node.name ^ "." ^ metric in
      register_counter reg (p "receipts_issued") ~unit_:"receipts"
        ~help:"Genuine install receipts issued (first send and refreshes)"
        (fun () -> float_of_int (Counter.get t.counters "receipt-issued"));
      register_counter reg (p "receipts_forged") ~unit_:"receipts"
        ~help:"Fabricated receipts sent by a Forge_receipts gateway"
        (fun () -> float_of_int (Counter.get t.counters "receipt-forged"));
      register_counter reg (p "receipts_replayed") ~unit_:"receipts"
        ~help:"Stale receipts re-sent by a Replay_receipts gateway"
        (fun () -> float_of_int (Counter.get t.counters "receipt-replayed"));
      register_counter reg (p "contracts_ignored") ~unit_:"requests"
        ~help:"Requests accepted then ignored by a Byzantine behaviour"
        (fun () -> float_of_int (Counter.get t.counters "contract-ignored"));
      register_counter reg (p "requests_bad_auth") ~unit_:"requests"
        ~help:"Requests dropped because their keyed digest did not verify"
        (fun () -> float_of_int (Counter.get t.counters "req-bad-auth"));
      register_gauge reg (p "peers_flagged") ~unit_:"gateways"
        ~help:"Peers the auditor convicted of lying (skipped by engage)"
        (fun () -> float_of_int (Hashtbl.length t.flagged));
      register_counter reg (p "contract_failovers") ~unit_:"flows"
        ~help:"Flows re-engaged past a flagged Byzantine gateway" (fun () ->
          float_of_int (Counter.get t.counters "contract-failover")))

let contracts_enabled t = Option.is_some t.contracts

let set_contract_behavior t behavior =
  match t.contracts with
  | None -> invalid_arg "Gateway.set_contract_behavior: contracts not enabled"
  | Some cs -> cs.cs_behavior <- behavior

let contract_behavior t =
  match t.contracts with None -> None | Some cs -> Some cs.cs_behavior

let flag_peer t peer =
  if not (Hashtbl.mem t.flagged peer) then begin
    Hashtbl.replace t.flagged peer ();
    Counter.incr t.counters "peer-flagged";
    trace t "peer %a flagged as Byzantine" Addr.pp peer
  end

let flagged_peers t =
  Hashtbl.fold (fun a () acc -> a :: acc) t.flagged []
  |> List.sort Addr.compare

(* Sign an outgoing request under this gateway's key; [0L] (unsigned) when
   the contract layer is off, which is every pre-contract configuration. *)
let sign_request t (req : Message.request) =
  match t.contracts with
  | None -> req
  | Some cs -> (
    match Wire.signing_bytes (Message.Filtering_request req) with
    | Ok b -> { req with Message.auth = cs.cs_sign b }
    | Error _ -> req)

let request_authentic t (req : Message.request) =
  match t.contracts with
  | None -> true
  | Some cs -> (
    match Wire.signing_bytes (Message.Filtering_request req) with
    | Ok b -> cs.cs_verify req.Message.requestor b req.Message.auth
    | Error _ -> false)

let receipt_signed cs (r : Message.receipt) =
  match Wire.signing_bytes (Message.Install_receipt r) with
  | Ok b -> { r with Message.rc_auth = cs.cs_sign b }
  | Error _ -> r

(* The receipt stream for one contracted flow: one receipt now, a refresh
   every [cs_refresh] while [live ()] holds. [mk] builds each receipt (and
   names the counter to bump), so the lying behaviours can fabricate or
   replay through the same loop. At most one stream per label
   ([cs_streams]), so a refreshed install does not stack a second one. *)
let start_receipt_stream t cs ~flow ~victim ~corr ~mk ~live =
  if not (Hashtbl.mem cs.cs_streams flow) then begin
    Hashtbl.replace cs.cs_streams flow ();
    let send_one () =
      let r, counter = mk () in
      Counter.incr t.counters counter;
      Span.event ~node:t.node.Node.name ~corr ~now:(Sim.now t.sim)
        "receipt-issued";
      send t ~dst:victim (Message.Install_receipt r)
    in
    send_one ();
    let rec arm () =
      ignore
        (Sim.after ~label:"gw-receipt" t.sim cs.cs_refresh (fun () ->
             if live () then begin
               send_one ();
               arm ()
             end
             else Hashtbl.remove cs.cs_streams flow))
    in
    arm ()
  end

(* --- victim's-gateway role ---------------------------------------------- *)

let install_temp t (e : flow_entry) =
  let now = Sim.now t.sim in
  (* A re-engage supersedes the previous round's temp-filter span. *)
  Span.finish ~node:t.node.Node.name ~corr:e.corr ~stage:Span.Temp_filter ~now
    ();
  (match
     filter_install ~requestor:e.requestor ~corr:e.corr t e.flow
       ~duration:t.config.Config.t_tmp
   with
  | Ok h ->
    Counter.incr t.counters "filter-temp";
    e.temp_handle <- Some h
  | Error `Table_full ->
    e.temp_handle <- None;
    if t.config.Config.aggregate_on_pressure then begin
      (* Last-ditch protection: one wildcard filter covering every source
         towards this victim, evicting the exact filters it subsumes to
         make room. Collateral damage, but the tail circuit survives. *)
      let aggregate = Flow_label.v Flow_label.Any e.flow.Flow_label.dst in
      ignore (Filter_table.evict_subsumed t.filters aggregate);
      match
        Filter_table.install t.filters aggregate
          ~duration:t.config.Config.t_tmp
      with
      | Ok h ->
        Counter.incr t.counters "filter-aggregated";
        (* The aggregate's hits over-approximate this flow's leakage — good
           enough for the silence detector, which only asks "still leaking?". *)
        e.temp_handle <- Some h
      | Error `Table_full -> Counter.incr t.counters "filter-full"
    end
    else Counter.incr t.counters "filter-full");
  (match e.temp_handle with
  | Some _ ->
    Span.start ~corr:e.corr ~stage:Span.Temp_filter ~node:t.node.Node.name
      ~now
  | None ->
    Span.event ~node:t.node.Node.name ~corr:e.corr ~now "filter-full");
  e.gen <- e.gen + 1;
  e.phase <- Filtering;
  let gen = e.gen in
  ignore
    (Sim.after ~label:"gw-ttmp-expiry" t.sim t.config.Config.t_tmp (fun () ->
         if e.gen = gen then begin
           Span.finish ~node:t.node.Node.name ~corr:e.corr
             ~stage:Span.Temp_filter ~now:(Sim.now t.sim) ();
           if e.phase = Filtering then e.phase <- Monitoring
         end))

let long_rate_limit t =
  match t.config.Config.filter_action with
  | Config.Block -> None
  | Config.Rate_limit r -> Some r

let install_long t (e : flow_entry) =
  match
    filter_install ?rate_limit:(long_rate_limit t) ~requestor:e.requestor
      ~corr:e.corr t e.flow ~duration:e.duration
  with
  | Ok _ ->
    Counter.incr t.counters "filter-long";
    let now = Sim.now t.sim in
    Span.start ~corr:e.corr ~stage:Span.Permanent_filter
      ~node:t.node.Node.name ~now;
    (* A victim-side long filter ends the request's story even when nobody
       closer to the attacker cooperated. No-op if comply already fired. *)
    Span.complete ~corr:e.corr ~now
  | Error `Table_full ->
    Counter.incr t.counters "filter-full";
    Span.event ~node:t.node.Node.name ~corr:e.corr ~now:(Sim.now t.sim)
      "filter-full"

(* Last resort: nobody closer to the attacker will filter. Keep a full-T
   filter ourselves and, when enforcement is on, disconnect the peering
   that delivers the flow. *)
let terminal t (e : flow_entry) =
  Counter.incr t.counters "terminal-filter";
  install_long t e;
  e.phase <- Delegated;
  if t.config.Config.disconnect then begin
    match e.flow.Flow_label.src with
    | Flow_label.Host a -> (
      match Lpm.lookup t.node.Node.fib a with
      | Some port when port.Node.inter_as ->
        if Network.disconnect_port t.net t.node ~peer_id:port.Node.peer_id
        then begin
          Counter.incr t.counters "disconnect-peer";
          trace t "disconnected peering towards %a" Addr.pp a
        end
      | Some _ | None -> ())
    | Flow_label.Any | Flow_label.Net _ -> ()
  end

let entry_hits (e : flow_entry) =
  match e.temp_handle with Some h -> Filter_table.hits h | None -> 0

(* The placement handle, iff it actually takes over long-filter placement
   (Optimal/Adaptive). A Vanilla handle is inert by construction. *)
let managed_placement t =
  match t.placement with
  | Some p when Placement.managed p -> Some p
  | Some _ | None -> None

(* Hand the flow to the placement controller: the gateway keeps only its
   temporary local protection; the controller owns the long filters. *)
let delegate_to_placement t (e : flow_entry) p =
  Counter.incr t.counters "placement-report";
  e.phase <- Delegated;
  trace t "reporting %a to the placement controller" Flow_label.pp e.flow;
  Placement.report p
    {
      Placement.flow = e.flow;
      path = e.path;
      duration = e.duration;
      reporter = addr t;
      at = Sim.now t.sim;
    }

(* Engage round [e.round]: protect the victim with a temporary filter and
   hand the request to this round's attacker-side gateway. *)
let rec engage t (e : flow_entry) =
  (* Byzantine failover: a path entry the auditor has flagged is skipped
     outright, so the request goes straight to the next AS on the recorded
     route. The guard keeps the un-flagged (and contract-less) path
     bit-identical. *)
  if Hashtbl.length t.flagged > 0 then begin
    let rec skip () =
      match List.nth_opt e.path e.round with
      | Some gw when Hashtbl.mem t.flagged gw && not (Addr.equal gw (addr t))
        ->
        Counter.incr t.counters "flagged-skipped";
        e.round <- e.round + 1;
        skip ()
      | Some _ | None -> ()
    in
    skip ()
  end;
  e.engaged_at <- Sim.now t.sim;
  install_temp t e;
  if e.round >= t.config.Config.max_rounds then terminal t e
  else
    match List.nth_opt e.path e.round with
    | None -> terminal t e
    | Some gw when Addr.equal gw (addr t) ->
      (* The path has climbed up to us: filter here for the full T. *)
      Counter.incr t.counters "filter-long-self";
      install_long t e;
      e.phase <- Delegated
    | Some gw -> (
      match managed_placement t with
      | Some p -> delegate_to_placement t e p
      | None ->
      Counter.incr t.counters "req-propagated";
      trace t "round %d: asking %a to block %a" e.round Addr.pp gw
        Flow_label.pp e.flow;
      let req =
        sign_request t
          {
            Message.flow = e.flow;
            target = Message.To_attacker_gateway;
            duration = e.duration;
            path = e.path;
            hops = e.round;
            requestor = addr t;
            corr = e.corr;
            auth = 0L;
          }
      in
      send t ~dst:gw (Message.Filtering_request req);
      arm_ctrl_retry t e
        ~resend:(fun () -> send t ~dst:gw (Message.Filtering_request req))
        ~gave_up:(fun () ->
          trace t "no response from %a for %a; escalating on silence"
            Addr.pp gw Flow_label.pp e.flow;
          escalate t e))

(* A shadow hit while monitoring: the attacker's side did not take over
   (non-cooperation or an on-off game). Re-protect and escalate. *)
and escalate t (e : flow_entry) =
  e.round <- e.round + 1;
  Counter.incr t.counters "escalated";
  Span.event ~node:t.node.Node.name ~corr:e.corr ~now:(Sim.now t.sim)
    "escalate";
  if e.round >= t.config.Config.max_rounds then terminal t e
  else
    match managed_placement t with
    | Some p ->
      (* The flow reappeared while the controller owned it: re-protect
         locally and re-report — fresh evidence for the next epoch. *)
      install_temp t e;
      delegate_to_placement t e p
    | None -> (
    match t.upstream with
    | Some up ->
      install_temp t e;
      e.phase <- Delegated;
      trace t "escalating %a to upstream %a (round %d)" Flow_label.pp e.flow
        Addr.pp up e.round;
      let req =
        sign_request t
          {
            Message.flow = e.flow;
            target = Message.To_victim_gateway;
            duration = e.duration;
            path = e.path;
            hops = e.round;
            requestor = addr t;
            corr = e.corr;
            auth = 0L;
          }
      in
      send t ~dst:up (Message.Filtering_request req);
      arm_ctrl_retry t e
        ~resend:(fun () -> send t ~dst:up (Message.Filtering_request req))
        ~gave_up:(fun () ->
          (* The whole upstream direction is silent: nobody above us will
             help, so keep a terminal filter ourselves. *)
          trace t "upstream %a silent for %a; terminal filtering" Addr.pp up
            Flow_label.pp e.flow;
          terminal t e)
    | None ->
      (* Top-level gateway: play the next round ourselves. *)
      engage t e)

(* Control-plane loss tolerance (Section III under loss): after handing a
   request to a counterpart, watch this round's temporary filter. New hits
   after the transmission mean the flow is still arriving, i.e. the
   counterpart has not taken over — the request (or its effect) was lost,
   or the peer is unreachable. Resend with exponential backoff; when the
   retry budget is exhausted and the flow still leaks, treat silence like
   non-cooperation ([gave_up] escalates or goes terminal). A quiet filter
   ends the schedule: either the counterpart complied or the attack
   stopped, and in both cases there is nothing left to chase. [e.gen]
   invalidates the schedule when a newer round re-engages the flow. *)
and arm_ctrl_retry t (e : flow_entry) ~resend ~gave_up =
  if t.config.Config.ctrl_retries > 0 then begin
    let gen = e.gen in
    e.sent_hits <- entry_hits e;
    let rec arm rto attempt =
      ignore
        (Sim.after ~label:"gw-ctrl-retry" t.sim rto (fun () ->
             if e.gen = gen then begin
               let hits = entry_hits e in
               if hits > e.sent_hits then
                 if attempt <= t.config.Config.ctrl_retries then begin
                   Counter.incr t.counters "ctrl-retransmit";
                   Span.event ~node:t.node.Node.name ~corr:e.corr
                     ~now:(Sim.now t.sim) "ctrl-retransmit";
                   e.sent_hits <- hits;
                   resend ();
                   arm (rto *. t.config.Config.ctrl_backoff) (attempt + 1)
                 end
                 else begin
                   Counter.incr t.counters "ctrl-gave-up";
                   Span.event ~node:t.node.Node.name ~corr:e.corr
                     ~now:(Sim.now t.sim) "ctrl-gave-up";
                   gave_up ()
                 end
             end))
    in
    arm t.config.Config.ctrl_rto 1
  end

(* Byzantine failover: re-engage every flow whose current round points at
   [peer]. Called (after {!flag_peer}) at the victim's gateway once the
   auditor convicts [peer]; engage's skip-over-flagged then routes each
   request to the next AS on its recorded path. Entries already delegated
   upstream are the upstream's responsibility — its own [fail_over] covers
   them. Deterministic order by flow label. Returns the flows re-engaged. *)
let fail_over t ~peer =
  let stuck = ref [] in
  Shadow_cache.iter t.shadow (fun entry ->
      let e = Shadow_cache.data entry in
      match e.phase with
      | Filtering | Monitoring -> (
        match List.nth_opt e.path e.round with
        | Some gw when Addr.equal gw peer -> stuck := e :: !stuck
        | Some _ | None -> ())
      | Delegated | Awaiting_path -> ());
  let stuck = List.sort (fun a b -> Flow_label.compare a.flow b.flow) !stuck in
  List.iter
    (fun e ->
      Counter.incr t.counters "contract-failover";
      trace t "failing %a over past flagged %a" Flow_label.pp e.flow Addr.pp
        peer;
      engage t e)
    stuck;
  List.length stuck

let victim_role t (req : Message.request) =
  Counter.incr t.counters "req-victim-role";
  (* The request reached a victim's gateway: the Request leg is over,
     whatever we decide to do with it. No-op on duplicates. *)
  Span.finish ~corr:req.Message.corr ~stage:Span.Request ~now:(Sim.now t.sim)
    ();
  let duplicate_of =
    (* A request for a flow we are already actively filtering is a
       retransmission or a duplicated packet. Recognise it before touching
       the requestor's contract: the reliability layer's retries must be
       idempotent, and an acknowledged no-op must not double-bill R1. *)
    match Shadow_cache.find t.shadow req.Message.flow with
    | Some entry as found -> (
      match (Shadow_cache.data entry).phase with
      | Filtering | Awaiting_path -> found
      | Monitoring | Delegated -> None)
    | None -> None
  in
  match duplicate_of with
  | Some entry ->
    Shadow_cache.refresh t.shadow entry ~ttl:t.config.Config.t_filter;
    Counter.incr t.counters "req-duplicate"
  | None -> (
  let bucket = policer_for t req.Message.requestor in
  if not (Token_bucket.allow bucket ~now:(Sim.now t.sim)) then begin
    Counter.incr t.counters "req-policed";
    Span.event ~node:t.node.Node.name ~corr:req.Message.corr
      ~now:(Sim.now t.sim) "req-policed"
  end
  else if
    (* Trivial verification via ingress filtering: the requestor and the
       flow's target must both be our customers. *)
    not
      (in_cone t req.Message.requestor
      &&
      match req.Message.flow.Flow_label.dst with
      | Flow_label.Host d -> in_cone t d
      | Flow_label.Any | Flow_label.Net _ -> false)
  then Counter.incr t.counters "req-invalid"
  else
    match Shadow_cache.find t.shadow req.Message.flow with
    | Some entry ->
      let e = Shadow_cache.data entry in
      Shadow_cache.refresh t.shadow entry ~ttl:t.config.Config.t_filter;
      e.round <- Int.max e.round req.Message.hops;
      if req.Message.path <> [] && List.length req.Message.path > List.length e.path
      then e.path <- req.Message.path;
      engage t e
    | None -> (
      let e =
        {
          flow = req.Message.flow;
          path = req.Message.path;
          round = req.Message.hops;
          phase = Filtering;
          gen = 0;
          duration = req.Message.duration;
          engaged_at = Sim.now t.sim;
          temp_handle = None;
          sent_hits = 0;
          requestor = req.Message.requestor;
          corr = req.Message.corr;
        }
      in
      match
        Shadow_cache.insert t.shadow req.Message.flow
          ~ttl:t.config.Config.t_filter e
      with
      | Error `Full -> Counter.incr t.counters "shadow-full"
      | Ok _ -> (
        match (req.Message.path, t.config.Config.traceback) with
        | [], Config.Spie_query _ ->
          Counter.incr t.counters "traceback-pending";
          install_temp t e;
          e.phase <- Awaiting_path
        | [], Config.Path_in_request ->
          (* Nothing to propagate to; protect locally only. *)
          Counter.incr t.counters "req-no-path";
          install_temp t e
        | _ :: _, _ -> engage t e)))

(* --- attacker's-gateway role -------------------------------------------- *)

(* The genuine compliance path. [leak] overrides the configured filter
   action with a Partial_policing rate limit; [receipts] starts the install-
   receipt stream owed under a verifiable contract. *)
let comply_install ?leak ?receipts t ~received_at (req : Message.request) =
  let rate_limit =
    match leak with Some l -> Some l | None -> long_rate_limit t
  in
  match
    filter_install ?rate_limit ~corr:req.Message.corr
      ~requestor:req.Message.requestor t req.Message.flow
      ~duration:req.Message.duration
  with
  | Error `Table_full ->
    (* Out of filters: we cannot honor the request; escalation will route
       around us. *)
    Counter.incr t.counters "filter-full";
    let now = Sim.now t.sim in
    Span.event ~node:t.node.Node.name ~corr:req.Message.corr ~now
      "filter-full";
    Span.finish ~node:t.node.Node.name ~corr:req.Message.corr
      ~stage:Span.Verification ~now ()
  | Ok handle ->
    Counter.incr t.counters "filter-long";
    let now = Sim.now t.sim in
    (match t.ttf with
    | Some tm -> Aitf_obs.Metrics.observe tm (now -. received_at)
    | None -> ());
    (* The Verification span runs receipt -> install, so its duration is
       by construction the time-to-filter observation above. *)
    Span.finish ~node:t.node.Node.name ~corr:req.Message.corr
      ~stage:Span.Verification ~now ();
    Span.start ~corr:req.Message.corr ~stage:Span.Permanent_filter
      ~node:t.node.Node.name ~now;
    Span.complete ~corr:req.Message.corr ~now;
    trace t "blocking %a for %gs" Flow_label.pp req.Message.flow
      req.Message.duration;
    (match (receipts, req.Message.flow.Flow_label.dst) with
    | Some cs, Flow_label.Host victim ->
      let flow = req.Message.flow in
      start_receipt_stream t cs ~flow ~victim ~corr:req.Message.corr
        ~live:(fun () -> Filter_table.live handle)
        ~mk:(fun () ->
          cs.cs_seq <- cs.cs_seq + 1;
          ( receipt_signed cs
              {
                Message.rc_flow = flow;
                rc_gateway = addr t;
                rc_victim = victim;
                rc_seq = cs.cs_seq;
                rc_installed_at = Filter_table.installed_at handle;
                rc_expires_at = Filter_table.expires_at handle;
                rc_hits = Filter_table.hits handle;
                rc_auth = 0L;
              },
            "receipt-issued" ))
    | _ -> ());
    (match req.Message.flow.Flow_label.src with
    | Flow_label.Host client when in_cone t client ->
      let bucket = client_policer_for t client in
      if Token_bucket.allow bucket ~now:(Sim.now t.sim) then begin
        Counter.incr t.counters "req-to-attacker";
        Span.start ~corr:req.Message.corr ~stage:Span.Counter_request
          ~node:t.node.Node.name ~now:(Sim.now t.sim);
        send t ~dst:client
          (Message.Filtering_request
             (sign_request t
                {
                  req with
                  Message.target = Message.To_attacker;
                  requestor = addr t;
                  auth = 0L;
                }))
      end
      else begin
        Counter.incr t.counters "req-policed-client";
        Span.event ~node:t.node.Node.name ~corr:req.Message.corr
          ~now:(Sim.now t.sim) "req-policed-client"
      end;
      (* Compliance monitoring: a client still hitting the filter after the
         grace period gets disconnected. *)
      if t.config.Config.disconnect then begin
        let grace = t.config.Config.grace in
        ignore
          (Sim.after ~label:"gw-grace" t.sim grace (fun () ->
               let hits_at_grace = Filter_table.hits handle in
               ignore
                 (Sim.after ~label:"gw-grace" t.sim grace (fun () ->
                      if
                        Filter_table.live handle
                        && Filter_table.hits handle > hits_at_grace
                        && not (blocklisted t client)
                      then disconnect_host t client))))
      end
    | Flow_label.Host _ | Flow_label.Any | Flow_label.Net _ -> ())

(* The Lying_filter_node behaviours: the handshake has already succeeded,
   so from here the gateway controls what (if anything) really happens. *)
let comply_byzantine t cs ~received_at (req : Message.request) =
  let finish_span () =
    Span.finish ~node:t.node.Node.name ~corr:req.Message.corr
      ~stage:Span.Verification ~now:(Sim.now t.sim) ()
  in
  match cs.cs_behavior with
  | Honest | Partial_policing _ -> assert false (* dispatched in [comply] *)
  | Accept_ignore ->
    (* Accept-then-ignore: the requestor moved on believing we took over,
       nothing was installed, and no receipt will ever arrive. Silence is
       the tell the auditor keys on. *)
    Counter.incr t.counters "contract-ignored";
    finish_span ()
  | Forge_receipts -> (
    Counter.incr t.counters "contract-ignored";
    finish_span ();
    match req.Message.flow.Flow_label.dst with
    | Flow_label.Any | Flow_label.Net _ -> ()
    | Flow_label.Host victim ->
      (* Fabricated receipts: correct shape and schedule, but the digest is
         produced without this gateway's key material, so signature
         verification fails at the auditor. *)
      let flow = req.Message.flow in
      let now = Sim.now t.sim in
      let until = now +. req.Message.duration in
      start_receipt_stream t cs ~flow ~victim ~corr:req.Message.corr
        ~live:(fun () -> Sim.now t.sim < until)
        ~mk:(fun () ->
          cs.cs_seq <- cs.cs_seq + 1;
          let r =
            receipt_signed cs
              {
                Message.rc_flow = flow;
                rc_gateway = addr t;
                rc_victim = victim;
                rc_seq = cs.cs_seq;
                rc_installed_at = now;
                rc_expires_at = until;
                rc_hits = 0;
                rc_auth = 0L;
              }
          in
          ( { r with Message.rc_auth = Int64.lognot r.Message.rc_auth },
            "receipt-forged" )))
  | Replay_receipts -> (
    (* Install just long enough for the first receipt to be genuine, then
       replay that exact receipt — stale sequence number and all — at every
       refresh while the filter itself has long lapsed. *)
    match req.Message.flow.Flow_label.dst with
    | Flow_label.Any | Flow_label.Net _ ->
      Counter.incr t.counters "contract-ignored";
      finish_span ()
    | Flow_label.Host victim -> (
      let flow = req.Message.flow in
      let short = Float.min cs.cs_refresh req.Message.duration in
      match
        filter_install ~corr:req.Message.corr
          ~requestor:req.Message.requestor t flow ~duration:short
      with
      | Error `Table_full ->
        Counter.incr t.counters "filter-full";
        finish_span ()
      | Ok handle ->
        Counter.incr t.counters "filter-long";
        (match t.ttf with
        | Some tm ->
          Aitf_obs.Metrics.observe tm (Sim.now t.sim -. received_at)
        | None -> ());
        finish_span ();
        let until = Sim.now t.sim +. req.Message.duration in
        cs.cs_seq <- cs.cs_seq + 1;
        let first =
          receipt_signed cs
            {
              Message.rc_flow = flow;
              rc_gateway = addr t;
              rc_victim = victim;
              rc_seq = cs.cs_seq;
              rc_installed_at = Filter_table.installed_at handle;
              (* the lie: claims the full T *)
              rc_expires_at = until;
              rc_hits = 0;
              rc_auth = 0L;
            }
        in
        let sent = ref false in
        start_receipt_stream t cs ~flow ~victim ~corr:req.Message.corr
          ~live:(fun () -> Sim.now t.sim < until)
          ~mk:(fun () ->
            let counter =
              if !sent then "receipt-replayed" else "receipt-issued"
            in
            sent := true;
            (first, counter))))

let comply t ~received_at (req : Message.request) =
  match t.contracts with
  | None -> comply_install t ~received_at req
  | Some cs -> (
    match cs.cs_behavior with
    | Honest -> comply_install ~receipts:cs t ~received_at req
    | Partial_policing leak ->
      (* Installs a rate-limited filter but issues receipts claiming full
         policing; caught by the auditor's arrival evidence. *)
      Counter.incr t.counters "contract-partial";
      comply_install ~leak ~receipts:cs t ~received_at req
    | Accept_ignore | Forge_receipts | Replay_receipts ->
      comply_byzantine t cs ~received_at req)

let attacker_role t (req : Message.request) =
  Counter.incr t.counters "req-attacker-role";
  let received_at = Sim.now t.sim in
  if Option.is_some (Filter_table.find t.filters req.Message.flow) then begin
    (* Already blocking this flow; just refresh. Classified before the
       policer so that a retransmitted request is a free no-op — the
       reliability layer must not double-bill the requestor's contract. The
       refresh re-states the configured action so a rate-limited filter
       keeps its limit across cycles. *)
    ignore
      (Filter_table.install ?rate_limit:(long_rate_limit t) t.filters
         req.Message.flow ~duration:req.Message.duration);
    Counter.incr t.counters "req-duplicate"
  end
  else if Hashtbl.mem t.verifying req.Message.flow then
    (* A handshake for this flow is already in flight; the duplicate
       neither starts a second one nor costs the requestor anything. *)
    Counter.incr t.counters "req-duplicate"
  else
    let bucket = policer_for t req.Message.requestor in
  if not (Token_bucket.allow bucket ~now:(Sim.now t.sim)) then begin
    Counter.incr t.counters "req-policed";
    Span.event ~node:t.node.Node.name ~corr:req.Message.corr
      ~now:(Sim.now t.sim) "req-policed"
  end
  else if t.policy = Policy.Unresponsive then
    Counter.incr t.counters "ignored-unresponsive"
  else if
    not
      (List.exists (Addr.equal (addr t)) req.Message.path
      ||
      match req.Message.flow.Flow_label.src with
      | Flow_label.Host a -> in_cone t a
      | Flow_label.Any | Flow_label.Net _ -> false)
  then Counter.incr t.counters "req-not-on-path"
  else if not t.config.Config.handshake then begin
    Span.start ~corr:req.Message.corr ~stage:Span.Verification
      ~node:t.node.Node.name ~now:received_at;
    comply t ~received_at req
  end
  else
    match req.Message.flow.Flow_label.dst with
    | Flow_label.Host victim ->
      Hashtbl.replace t.verifying req.Message.flow ();
      trace t "verifying %a with %a" Flow_label.pp req.Message.flow Addr.pp
        victim;
      Span.start ~corr:req.Message.corr ~stage:Span.Verification
        ~node:t.node.Node.name ~now:received_at;
      let first_tx = ref true in
      ignore
        (Handshake.start t.handshakes ~flow:req.Message.flow
           ~send:(fun nonce ->
             if !first_tx then begin
               first_tx := false;
               Span.bind_nonce ~corr:req.Message.corr ~nonce
             end
             else
               Span.event ~node:t.node.Node.name ~corr:req.Message.corr
                 ~now:(Sim.now t.sim) "handshake-retransmit";
             send t ~dst:victim
               (Message.Verification_query { flow = req.Message.flow; nonce }))
           ~on_result:(fun ok ->
             Hashtbl.remove t.verifying req.Message.flow;
             if ok then begin
               Counter.incr t.counters "handshake-ok";
               comply t ~received_at req
             end
             else begin
               Counter.incr t.counters "handshake-fail";
               let now = Sim.now t.sim in
               Span.event ~node:t.node.Node.name ~corr:req.Message.corr ~now
                 "handshake-fail";
               Span.finish ~node:t.node.Node.name ~corr:req.Message.corr
                 ~stage:Span.Verification ~now ()
             end))
    | Flow_label.Any | Flow_label.Net _ ->
      (* No single victim to query; treat as unverifiable. *)
      Counter.incr t.counters "handshake-unverifiable"

(* --- message dispatch & forwarding hook --------------------------------- *)

let on_request t (req : Message.request) =
  t.requests_received <- t.requests_received + 1;
  if not (request_authentic t req) then begin
    (* With contracts on, an unsigned or tampered request is dropped before
       it can spend anyone's R1 budget or install anything. *)
    Counter.incr t.counters "req-bad-auth";
    Span.event ~node:t.node.Node.name ~corr:req.Message.corr
      ~now:(Sim.now t.sim) "req-bad-auth"
  end
  else
    match req.Message.target with
  | Message.To_victim_gateway -> victim_role t req
  | Message.To_attacker_gateway -> attacker_role t req
  | Message.To_attacker ->
    (* Gateways are not traffic sources; nothing to stop. *)
    Counter.incr t.counters "req-to-attacker-ignored"

(* SPIE capture: the first packet blocked (or shadow-matched) for a flow
   whose path we still owe is the traceback specimen. *)
let capture_for_traceback t (pkt : Packet.t) =
  match t.config.Config.traceback with
  | Config.Path_in_request -> ()
  | Config.Spie_query spie -> (
    match Shadow_cache.match_packet t.shadow pkt with
    | Some entry when (Shadow_cache.data entry).phase = Awaiting_path ->
      let e = Shadow_cache.data entry in
      e.phase <- Filtering;
      let path, latency = Spie.reconstruct spie ~from:t.node pkt in
      ignore
        (Sim.after ~label:"gw-traceback" t.sim latency (fun () ->
             if path = [] then Counter.incr t.counters "traceback-failed"
             else begin
               Counter.incr t.counters "traceback-done";
               e.path <- path;
               engage t e
             end))
    | Some _ | None -> ())

let hook t (_node : Node.t) (pkt : Packet.t) =
  if blocklisted t pkt.src then Node.Drop "aitf-disconnected"
  else
    match Filter_table.blocking_entry t.filters pkt with
    | Some h ->
      (match t.overload with
      | Some mgr -> Overload.note_blocked mgr h pkt
      | None -> ());
      capture_for_traceback t pkt;
      Node.Drop "aitf-filter"
    | None -> begin
    (match Shadow_cache.match_packet t.shadow pkt with
    | Some entry -> (
      let e = Shadow_cache.data entry in
      match e.phase with
      | Monitoring ->
        if Sim.now t.sim >= e.engaged_at +. e.duration then
          (* The blocking interval T has legitimately elapsed; this is a new
             attack cycle. It must cost the victim a fresh request (that is
             the R1·T accounting), not be mistaken for non-cooperation. *)
          Shadow_cache.remove t.shadow entry
        else begin
          Shadow_cache.refresh t.shadow entry ~ttl:t.config.Config.t_filter;
          trace t "flow %a reappeared; escalating" Flow_label.pp e.flow;
          escalate t e
        end
      | Awaiting_path -> capture_for_traceback t pkt
      | Filtering | Delegated -> ())
    | None -> ());
    Packet.record_route pkt t.node.Node.addr;
    Node.Continue
  end

let deliver t prev (node : Node.t) (pkt : Packet.t) =
  match pkt.payload with
  | Message.Filtering_request req -> on_request t req
  | Message.Verification_reply { flow; nonce } ->
    Handshake.handle_reply t.handshakes ~flow ~nonce
  | Message.Verification_query { flow; nonce } ->
    (* Only meaningful if the "victim" of an escalated round is this
       gateway itself; confirm iff we logged the request. *)
    if Option.is_some (Shadow_cache.find t.shadow flow) then
      send t ~dst:pkt.src (Message.Verification_reply { flow; nonce })
  | _ -> prev node pkt

let create ?(policy = Policy.Cooperative) ?upstream ?placement ~clients
    ~config ~rng net node =
  let sim = Network.sim_for net node in
  let cone = Lpm.create () in
  List.iter (fun p -> Lpm.insert cone p ()) clients;
  let prefix = "gateway." ^ node.Node.name in
  let ttf =
    Aitf_obs.Metrics.timer_if_attached
      (prefix ^ ".time_to_filter")
      ~unit_:"s"
      ~help:
        "Request receipt at this (attacker-side) gateway to long-filter \
         install; includes the handshake round-trip"
  in
  let filters =
    Filter_table.create sim ~capacity:config.Config.filter_capacity
  in
  let overload =
    if config.Config.overload_manager then
      Some
        (Overload.create
           ~policy:
             {
               Overload.high_watermark = config.Config.overload_high;
               low_watermark = config.Config.overload_low;
               max_per_requestor = config.Config.overload_max_per_requestor;
               min_aggregate = 2;
             }
           sim filters)
    else None
  in
  let t =
    {
      net;
      sim;
      node;
      config;
      policy;
      upstream;
      placement;
      client_cone = cone;
      filters;
      overload;
      shadow = Shadow_cache.create sim ~capacity:config.Config.shadow_capacity;
      handshakes =
        Handshake.create ~retries:config.Config.ctrl_retries
          ~backoff:config.Config.ctrl_backoff sim rng
          ~timeout:config.Config.handshake_timeout;
      rng;
      policers = Hashtbl.create 16;
      overflow_policer =
        Token_bucket.create ~rate:config.Config.remote_rate
          ~burst:config.Config.remote_burst;
      client_policers = Hashtbl.create 16;
      overrides = Hashtbl.create 8;
      client_overrides = Hashtbl.create 8;
      verifying = Hashtbl.create 8;
      contracts = None;
      flagged = Hashtbl.create 4;
      blocklist = Hashtbl.create 8;
      counters = Counter.create ();
      requests_received = 0;
      ttf;
    }
  in
  (* Close Permanent_filter spans when the filter actually leaves the table
     (explicit removal, expiry, or eviction). Subscribing to the table keeps
     this engine-agnostic: the hybrid engine's fluid mirror watches the same
     seam, so both engines close the same spans. Only when a collector is
     attached at build time, so untraced runs pay nothing. *)
  if Span.enabled () then
    Filter_table.subscribe filters (fun change ->
        match change with
        | Filter_table.Removed h -> (
          match Filter_table.corr h with
          | Some corr ->
            Span.finish ~node:node.Node.name ~corr
              ~stage:Span.Permanent_filter ~now:(Sim.now sim) ()
          | None -> ())
        | Filter_table.Installed _ -> ());
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric = prefix ^ "." ^ metric in
      Filter_table.register_metrics t.filters reg ~prefix:(p "filters");
      (match t.overload with
      | Some mgr -> Overload.register_metrics mgr reg ~prefix:(p "overload")
      | None -> ());
      Shadow_cache.register_metrics t.shadow reg ~prefix:(p "shadow");
      register_counter reg (p "requests_received") ~unit_:"requests"
        ~help:"AITF filtering requests delivered to this gateway" (fun () ->
          float_of_int t.requests_received);
      register_counter reg (p "policer_drops") ~unit_:"requests"
        ~help:"Requests dropped by the R1/R2 token-bucket policers" (fun () ->
          float_of_int
            (Counter.get t.counters "req-policed"
            + Counter.get t.counters "req-policed-client"));
      register_counter reg (p "escalations") ~unit_:"requests"
        ~help:"Rounds escalated after a flow reappeared" (fun () ->
          float_of_int (Counter.get t.counters "escalated"));
      register_counter reg (p "handshakes_ok") ~unit_:"handshakes"
        ~help:"Three-way handshakes that verified the victim" (fun () ->
          float_of_int (Counter.get t.counters "handshake-ok"));
      register_counter reg (p "handshakes_failed") ~unit_:"handshakes"
        ~help:"Three-way handshakes that timed out or failed" (fun () ->
          float_of_int (Counter.get t.counters "handshake-fail"));
      register_counter reg (p "filters_temp_installed") ~unit_:"filters"
        ~help:"Temporary (Ttmp) filter installs" (fun () ->
          float_of_int (Counter.get t.counters "filter-temp"));
      register_counter reg (p "filters_long_installed") ~unit_:"filters"
        ~help:"Long (T) filter installs, local self-installs included"
        (fun () ->
          float_of_int
            (Counter.get t.counters "filter-long"
            + Counter.get t.counters "filter-long-self"));
      register_gauge reg (p "tracked_requestors") ~unit_:"requestors"
        ~help:"Requestors with a dedicated policer bucket" (fun () ->
          float_of_int (Hashtbl.length t.policers));
      register_counter reg (p "ctrl_retransmits") ~unit_:"messages"
        ~help:
          "Filtering requests retransmitted because the temporary filter \
           kept taking hits after the previous transmission" (fun () ->
          float_of_int (Counter.get t.counters "ctrl-retransmit"));
      register_counter reg (p "ctrl_gave_up") ~unit_:"flows"
        ~help:
          "Flows whose counterpart stayed silent through the whole retry \
           budget (escalated or filtered terminally on silence)" (fun () ->
          float_of_int (Counter.get t.counters "ctrl-gave-up"));
      register_counter reg (p "handshake_retransmits") ~unit_:"messages"
        ~help:"Verification queries retransmitted after a timeout" (fun () ->
          float_of_int (Handshake.retransmits t.handshakes));
      register_counter reg (p "handshake_duplicate_replies")
        ~unit_:"messages"
        ~help:
          "Replayed verification replies recognised as duplicates and \
           ignored" (fun () ->
          float_of_int (Handshake.duplicate_replies t.handshakes)));
  Node.add_hook node (hook t);
  let prev = node.Node.local_deliver in
  node.Node.local_deliver <- deliver t prev;
  t
