(** The AITF gateway: a border router speaking the protocol.

    One [Gateway.t] attaches to a border-router node and implements both
    protocol roles of Section II-C:

    {b Victim's gateway} — on a [To_victim_gateway] request from a client
    (or a downstream gateway escalating): police against the client's R1
    contract, validate that the requestor and the flow's destination are
    inside the customer cone, install a {e temporary} filter for Ttmp, log
    the request in the DRAM shadow cache for T, and forward the request to
    the attack path's round-appropriate gateway. When the temporary filter
    lapses, the shadow entry keeps watching: a matching packet seen while
    monitoring means the attacker's side did not take over (or is playing
    on-off), so the gateway re-protects and {e escalates} — it plays victim
    towards its own upstream gateway with [hops + 1]. A gateway with no
    upstream handles the next round itself; a path that runs out triggers
    terminal filtering (and peer disconnection when enabled).

    {b Attacker's gateway} — on a [To_attacker_gateway] request: police the
    remote requestor and the R2 contract of the implicated client, verify
    the request with the 3-way handshake, install a filter for the full T,
    propagate [To_attacker] to the client, and monitor compliance via the
    filter's hit counters — a client still sending after the grace period is
    disconnected (blocklisted) when disconnection is enabled.

    Statistics for every decision are exposed through {!counters}. *)

open Aitf_net
open Aitf_filter

type t

val create :
  ?policy:Policy.gateway_policy ->
  ?upstream:Addr.t ->
  ?placement:Placement.t ->
  clients:Addr.prefix list ->
  config:Config.t ->
  rng:Aitf_engine.Rng.t ->
  Network.t ->
  Node.t ->
  t
(** Attach a gateway to [node]: installs the forwarding hook (blocklist →
    filter check → shadow watch → route-record stamp) and takes over
    AITF-message delivery. [clients] is the customer cone — every prefix
    this gateway is responsible for. [upstream] is the provider gateway
    used for escalation (absent for a top-level/core gateway).

    [placement] is the filter-placement seam: with a {e managed} handle
    ({!Placement.Optimal} or {!Placement.Adaptive}) the gateway keeps its
    local roles — policing, shadow logging, temporary Ttmp protection —
    but reports attack evidence through {!Placement.report} instead of
    propagating requests along the path or escalating upstream; the
    placement controller then owns long-filter installation. Absent, or
    with a {!Placement.Vanilla} handle, behaviour is exactly the classic
    escalate-upstream propagation, bit for bit. *)

val node : t -> Node.t
val addr : t -> Addr.t
val config : t -> Config.t
val policy : t -> Policy.gateway_policy

val set_contract : t -> peer:Addr.t -> rate:float -> burst:float -> unit
(** Override the policing rate for one requestor (client or peer); absent
    an override, clients get R1 and remote requestors the remote default. *)

val set_client_contract : t -> client:Addr.t -> rate:float -> burst:float -> unit
(** Override the R2 rate at which this gateway may send requests to one of
    its clients; absent an override, the config's R2 applies. *)

val filters : t -> Filter_table.t

val overload : t -> Overload.t option
(** The filter-table overload manager, present iff
    [config.overload_manager] was set at creation. *)

val shadow_occupancy : t -> int
val shadow_peak : t -> int

val blocklisted : t -> Addr.t -> bool
(** Is this host currently disconnected? *)

val counters : t -> Aitf_stats.Counter.t
(** Decision counters, e.g. ["req-victim-role"], ["req-attacker-role"],
    ["req-policed"], ["req-policed-client"], ["req-duplicate"],
    ["handshake-ok"], ["handshake-fail"], ["filter-temp"],
    ["filter-long"], ["filter-full"], ["escalated"], ["terminal-filter"],
    ["disconnect-host"], ["disconnect-peer"], ["ignored-unresponsive"],
    ["req-invalid"]. *)

val requests_received : t -> int
(** Filtering requests that reached this gateway (before policing). *)

val active_flows : t -> (Flow_label.t * string) list
(** The flows this gateway currently remembers as victim's gateway, with
    their phase (["filtering"], ["monitoring"], ["delegated"],
    ["awaiting-path"]) — the live protocol state an operator would list. *)

val tracked_requestors : t -> int
(** Distinct requestors currently holding their own policing bucket —
    bounded; past the bound, unknown requestors share one overflow
    bucket. *)

(** {1 Verifiable filtering contracts}

    The optional contract layer of docs/CONTRACTS.md. Off by default, and
    when off every code path is bit-identical to the pre-contract
    protocol. When enabled ({!enable_contracts}):

    - outgoing filtering requests carry a keyed digest of their canonical
      wire bytes ({!Wire.signing_bytes}) under this gateway's key, and
      incoming requests are verified against the requestor's key
      (failures counted as ["req-bad-auth"] and dropped);
    - honoring a request also issues an {e install receipt} to the flow's
      victim, refreshed every [refresh] seconds while the filter stays
      resident, so a victim-side auditor ([Aitf_contract.Auditor]) can
      cross-check the claim against observed arrivals;
    - peers convicted of lying by the auditor can be {!flag_peer}ed:
      {e engage} then skips them on the recorded path and {!fail_over}
      re-engages the flows stuck behind them (graceful Byzantine
      failover). *)

(** How this gateway honours contracts — [Honest] unless a
    Lying_filter_node playbook corrupted it. *)
type contract_behavior =
  | Honest
  | Accept_ignore
      (** accept the request (handshake and all), install nothing, send
          no receipts *)
  | Partial_policing of float
      (** install a filter that merely rate-limits to this many bytes/s
          while the receipts claim full policing *)
  | Forge_receipts
      (** install nothing; fabricate receipts without the gateway's key
          material, so their digests fail verification *)
  | Replay_receipts
      (** install only briefly, then replay the first (genuine) receipt —
          stale sequence number and all — at every refresh *)

val enable_contracts :
  ?refresh:float ->
  t ->
  sign:(Bytes.t -> int64) ->
  verify:(Addr.t -> Bytes.t -> int64 -> bool) ->
  unit
(** Turn the contract layer on. [sign] digests canonical bytes under this
    gateway's key; [verify addr bytes digest] checks a digest under
    [addr]'s key (both typically from [Aitf_contract.Signing]).
    [refresh] is the receipt refresh period (default 5 s). Raises
    [Invalid_argument] if already enabled. *)

val contracts_enabled : t -> bool

val set_contract_behavior : t -> contract_behavior -> unit
(** Corrupt (or heal) this gateway's compliance behaviour. Raises
    [Invalid_argument] when contracts are not enabled. *)

val contract_behavior : t -> contract_behavior option
(** [None] when the contract layer is off. *)

val flag_peer : t -> Addr.t -> unit
(** Record a Byzantine verdict against [peer]: engage will skip it on any
    recorded path from now on. Idempotent. *)

val flagged_peers : t -> Addr.t list
(** Peers flagged so far, sorted. *)

val fail_over : t -> peer:Addr.t -> int
(** Re-engage every live flow whose current round points at [peer]
    (deterministically, in flow-label order); with [peer] flagged, each
    request now goes to the next AS on its path. Returns how many flows
    were re-engaged. *)
