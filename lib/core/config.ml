type filter_action = Block | Rate_limit of float

type traceback_mode = Path_in_request | Spie_query of Aitf_traceback.Spie.t

type engine = Packet | Hybrid

type t = {
  t_filter : float;
  t_tmp : float;
  grace : float;
  handshake : bool;
  handshake_timeout : float;
  disconnect : bool;
  disconnect_duration : float;
  max_rounds : int;
  r1 : float;
  r1_burst : float;
  r2 : float;
  r2_burst : float;
  remote_rate : float;
  remote_burst : float;
  filter_capacity : int;
  shadow_capacity : int;
  traceback : traceback_mode;
  min_report_gap : float;
  aggregate_on_pressure : bool;
  filter_action : filter_action;
  ctrl_retries : int;
  ctrl_rto : float;
  ctrl_backoff : float;
  overload_manager : bool;
  overload_high : float;
  overload_low : float;
  overload_max_per_requestor : int;
  engine : engine;
  hybrid_epoch : float;
  hybrid_probe_rate : float;
  placement : Placement.policy;
  placement_epoch : float;
}

let default =
  {
    t_filter = 60.0;
    t_tmp = 1.0;
    grace = 0.5;
    handshake = true;
    handshake_timeout = 1.0;
    disconnect = false;
    disconnect_duration = 300.0;
    max_rounds = 8;
    r1 = 100.0;
    r1_burst = 100.0;
    r2 = 1.0;
    r2_burst = 10.0;
    remote_rate = 1000.0;
    remote_burst = 1000.0;
    filter_capacity = 1000;
    shadow_capacity = 100_000;
    traceback = Path_in_request;
    min_report_gap = 1.0;
    aggregate_on_pressure = false;
    filter_action = Block;
    ctrl_retries = 0;
    ctrl_rto = 0.5;
    ctrl_backoff = 2.0;
    overload_manager = false;
    overload_high = 0.9;
    overload_low = 0.6;
    overload_max_per_requestor = max_int;
    engine = Packet;
    hybrid_epoch = 0.1;
    hybrid_probe_rate = 0.0;
    placement = Placement.Vanilla;
    placement_epoch = 0.5;
  }

let with_timescale c k =
  (* The handshake timeout and grace period are lower-bounded by network
     round trips, which a timescale change does not shrink — scaling them
     below the RTT would break every verification. *)
  {
    c with
    t_filter = c.t_filter *. k;
    t_tmp = Float.max (c.t_tmp *. k) 0.5;
    disconnect_duration = c.disconnect_duration *. k;
    min_report_gap = Float.max (c.min_report_gap *. k) 0.2;
  }
