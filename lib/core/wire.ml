open Aitf_net
open Aitf_filter

type error = Truncated | Bad_version of int | Bad_tag of string * int

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated message"
  | Bad_version v -> Format.fprintf fmt "unsupported version %d" v
  | Bad_tag (field, v) -> Format.fprintf fmt "bad %s tag %d" field v

let version = 1

(* --- size computation ----------------------------------------------------- *)

let sel_size = function
  | Flow_label.Any -> 1
  | Flow_label.Host _ -> 5
  | Flow_label.Net _ -> 6

let quals_size (l : Flow_label.t) =
  1
  + (match l.proto with Some _ -> 1 | None -> 0)
  + (match l.sport with Some _ -> 2 | None -> 0)
  + (match l.dport with Some _ -> 2 | None -> 0)

let label_size l = sel_size l.Flow_label.src + sel_size l.Flow_label.dst + quals_size l

let encoded_size = function
  | Message.Filtering_request r ->
    Some
      (2 + label_size r.Message.flow + 1 + 8 + 1 + 4 + 4 + 1
      + (4 * List.length r.Message.path)
      + 8)
  | Message.Verification_query { flow; _ } | Message.Verification_reply { flow; _ }
    ->
    Some (2 + label_size flow + 8)
  | Message.Install_receipt r ->
    Some (2 + label_size r.Message.rc_flow + 4 + 4 + 4 + 8 + 8 + 8 + 8)
  | _ -> None

(* --- encoding -------------------------------------------------------------- *)

let put_u8 b pos v =
  Bytes.set_uint8 b pos v;
  pos + 1

let put_u16 b pos v =
  Bytes.set_uint16_be b pos v;
  pos + 2

let put_addr b pos (a : Addr.t) =
  Bytes.set_int32_be b pos a;
  pos + 4

let put_sel b pos = function
  | Flow_label.Any -> put_u8 b pos 0
  | Flow_label.Host a -> put_addr b (put_u8 b pos 1) a
  | Flow_label.Net p ->
    let pos = put_addr b (put_u8 b pos 2) (p : Addr.prefix).base in
    put_u8 b pos (p : Addr.prefix).len

let put_label b pos (l : Flow_label.t) =
  let pos = put_sel b pos l.src in
  let pos = put_sel b pos l.dst in
  let bitmap =
    (if l.proto <> None then 1 else 0)
    lor (if l.sport <> None then 2 else 0)
    lor if l.dport <> None then 4 else 0
  in
  let pos = put_u8 b pos bitmap in
  let pos = match l.proto with Some p -> put_u8 b pos p | None -> pos in
  let pos = match l.sport with Some p -> put_u16 b pos p | None -> pos in
  match l.dport with Some p -> put_u16 b pos p | None -> pos

let target_tag = function
  | Message.To_victim_gateway -> 1
  | Message.To_attacker_gateway -> 2
  | Message.To_attacker -> 3

let encode payload =
  match encoded_size payload with
  | None -> Error "Wire.encode: not an AITF payload"
  | Some size -> (
    let b = Bytes.create size in
    let pos = put_u8 b 0 version in
    match payload with
    | Message.Filtering_request r ->
      let pos = put_u8 b pos 1 in
      let pos = put_label b pos r.Message.flow in
      let pos = put_u8 b pos (target_tag r.Message.target) in
      Bytes.set_int64_be b pos (Int64.bits_of_float r.Message.duration);
      let pos = pos + 8 in
      let pos = put_u8 b pos r.Message.hops in
      let pos = put_addr b pos r.Message.requestor in
      Bytes.set_int32_be b pos (Int32.of_int r.Message.corr);
      let pos = pos + 4 in
      let pos = put_u8 b pos (List.length r.Message.path) in
      let pos =
        List.fold_left (fun pos a -> put_addr b pos a) pos r.Message.path
      in
      Bytes.set_int64_be b pos r.Message.auth;
      assert (pos + 8 = size);
      Ok b
    | Message.Verification_query { flow; nonce } ->
      let pos = put_u8 b pos 2 in
      let pos = put_label b pos flow in
      Bytes.set_int64_be b pos nonce;
      assert (pos + 8 = size);
      Ok b
    | Message.Verification_reply { flow; nonce } ->
      let pos = put_u8 b pos 3 in
      let pos = put_label b pos flow in
      Bytes.set_int64_be b pos nonce;
      assert (pos + 8 = size);
      Ok b
    | Message.Install_receipt r ->
      let pos = put_u8 b pos 4 in
      let pos = put_label b pos r.Message.rc_flow in
      let pos = put_addr b pos r.Message.rc_gateway in
      let pos = put_addr b pos r.Message.rc_victim in
      Bytes.set_int32_be b pos (Int32.of_int r.Message.rc_seq);
      let pos = pos + 4 in
      Bytes.set_int64_be b pos (Int64.bits_of_float r.Message.rc_installed_at);
      let pos = pos + 8 in
      Bytes.set_int64_be b pos (Int64.bits_of_float r.Message.rc_expires_at);
      let pos = pos + 8 in
      Bytes.set_int64_be b pos (Int64.of_int r.Message.rc_hits);
      let pos = pos + 8 in
      Bytes.set_int64_be b pos r.Message.rc_auth;
      assert (pos + 8 = size);
      Ok b
    | _ -> Error "Wire.encode: not an AITF payload")

(* The canonical bytes a keyed digest covers: the full encoding with the
   trailing auth octets zeroed (requests and receipts both put auth last,
   precisely so signing needs no second layout). *)
let signing_bytes payload =
  match payload with
  | Message.Filtering_request _ | Message.Install_receipt _ -> (
    match encode payload with
    | Error _ as e -> e
    | Ok b ->
      Bytes.fill b (Bytes.length b - 8) 8 '\000';
      Ok b)
  | _ -> Error "Wire.signing_bytes: payload carries no auth field"

(* --- decoding -------------------------------------------------------------- *)

(* A tiny cursor over the buffer; every read checks bounds. *)
type cursor = { buf : Bytes.t; mutable pos : int }

exception Decode of error

let need c n = if c.pos + n > Bytes.length c.buf then raise (Decode Truncated)

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = Bytes.get_uint16_be c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let get_addr c =
  need c 4;
  let v = Bytes.get_int32_be c.buf c.pos in
  c.pos <- c.pos + 4;
  v

let get_u64 c =
  need c 8;
  let v = Bytes.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_sel c =
  match get_u8 c with
  | 0 -> Flow_label.Any
  | 1 -> Flow_label.Host (get_addr c)
  | 2 ->
    let base = get_addr c in
    let len = get_u8 c in
    if len > 32 then raise (Decode (Bad_tag ("prefix-length", len)));
    Flow_label.Net (Addr.prefix base len)
  | v -> raise (Decode (Bad_tag ("selector", v)))

let get_label c =
  let src = get_sel c in
  let dst = get_sel c in
  let bitmap = get_u8 c in
  if bitmap land lnot 7 <> 0 then raise (Decode (Bad_tag ("qualifier-bitmap", bitmap)));
  let proto = if bitmap land 1 <> 0 then Some (get_u8 c) else None in
  let sport = if bitmap land 2 <> 0 then Some (get_u16 c) else None in
  let dport = if bitmap land 4 <> 0 then Some (get_u16 c) else None in
  Flow_label.v ?proto ?sport ?dport src dst

let get_target c =
  match get_u8 c with
  | 1 -> Message.To_victim_gateway
  | 2 -> Message.To_attacker_gateway
  | 3 -> Message.To_attacker
  | v -> raise (Decode (Bad_tag ("target", v)))

let decode buf =
  let c = { buf; pos = 0 } in
  try
    let v = get_u8 c in
    if v <> version then Error (Bad_version v)
    else
      match get_u8 c with
      | 1 ->
        let flow = get_label c in
        let target = get_target c in
        let duration = Int64.float_of_bits (get_u64 c) in
        let hops = get_u8 c in
        let requestor = get_addr c in
        (* u32; ids are minted from a small counter, so to_int is exact *)
        let corr = Int32.to_int (get_addr c) land 0xFFFFFFFF in
        let n = get_u8 c in
        let path = List.init n (fun _ -> get_addr c) in
        let auth = get_u64 c in
        Ok
          (Message.Filtering_request
             { Message.flow; target; duration; path; hops; requestor; corr; auth })
      | 2 ->
        let flow = get_label c in
        let nonce = get_u64 c in
        Ok (Message.Verification_query { flow; nonce })
      | 3 ->
        let flow = get_label c in
        let nonce = get_u64 c in
        Ok (Message.Verification_reply { flow; nonce })
      | 4 ->
        let rc_flow = get_label c in
        let rc_gateway = get_addr c in
        let rc_victim = get_addr c in
        let rc_seq = Int32.to_int (get_addr c) land 0xFFFFFFFF in
        let rc_installed_at = Int64.float_of_bits (get_u64 c) in
        let rc_expires_at = Int64.float_of_bits (get_u64 c) in
        let rc_hits = Int64.to_int (get_u64 c) in
        let rc_auth = get_u64 c in
        Ok
          (Message.Install_receipt
             {
               Message.rc_flow;
               rc_gateway;
               rc_victim;
               rc_seq;
               rc_installed_at;
               rc_expires_at;
               rc_hits;
               rc_auth;
             })
      | t -> Error (Bad_tag ("message-type", t))
  with Decode e -> Error e
