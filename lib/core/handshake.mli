(** Nonce bookkeeping for the 3-way handshake (Section II-E), with
    loss-tolerant retransmission.

    The attacker's gateway, before acting on a filtering request for a flow
    A → V, sends V a {!Message.Verification_query} carrying a fresh random
    nonce; only a {!Message.Verification_reply} echoing both the flow label
    and the nonce within the timeout counts as verification. An off-path
    forger never observes the nonce, so it cannot fabricate the reply.

    The query and its reply cross the congested links the protocol is
    trying to relieve, so a single transmission can silently vanish. This
    module therefore owns the (re)transmission schedule: {!start} takes a
    [send] callback, fires it immediately, and — when created with
    [retries > 0] — again on every timeout with exponential backoff, before
    declaring failure exactly once. Receipt is idempotent: a replayed reply
    to an already-verified nonce is counted as a duplicate and changes
    nothing. *)

open Aitf_filter

type t

val create :
  ?retries:int ->
  ?backoff:float ->
  Aitf_engine.Sim.t ->
  Aitf_engine.Rng.t ->
  timeout:float ->
  t
(** [timeout] is the per-attempt wait; [retries] (default 0: single-shot)
    bounds retransmissions beyond the first send; each retry multiplies the
    wait by [backoff] (default 2).
    @raise Invalid_argument if [retries < 0] or [backoff < 1]. *)

val start :
  t ->
  flow:Flow_label.t ->
  send:(int64 -> unit) ->
  on_result:(bool -> unit) ->
  int64
(** Begin a verification; calls [send nonce] for the initial query and for
    every retransmission, and returns the nonce. [on_result true] fires
    when a matching reply arrives in time, [on_result false] when the last
    attempt times out — exactly one of the two, exactly once. Concurrent
    verifications of the same flow are independent (distinct nonces). *)

val handle_reply : t -> flow:Flow_label.t -> nonce:int64 -> unit
(** Feed a received reply; completes the matching pending verification, if
    any. A replay for a nonce that already verified (same flow) is counted
    as a duplicate and otherwise ignored; replies with unknown nonces or
    mismatched flow labels are counted as bogus, without consuming any
    pending entry. *)

val pending : t -> int
val started : t -> int
val verified : t -> int
val timed_out : t -> int
(** Verifications that exhausted every attempt — one per {!start}, however
    many retransmissions it took. *)

val bogus_replies : t -> int
val retransmits : t -> int
val duplicate_replies : t -> int
