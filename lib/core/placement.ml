open Aitf_net
open Aitf_filter

type policy = Vanilla | Optimal | Adaptive

let all_policies = [ Vanilla; Optimal; Adaptive ]

let policy_to_string = function
  | Vanilla -> "vanilla"
  | Optimal -> "optimal"
  | Adaptive -> "adaptive"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "vanilla" -> Ok Vanilla
  | "optimal" -> Ok Optimal
  | "adaptive" -> Ok Adaptive
  | other ->
    Error
      (Printf.sprintf "unknown placement policy %S (expected %s)" other
         (String.concat "|" (List.map policy_to_string all_policies)))

type evidence = {
  flow : Flow_label.t;
  path : Addr.t list;
  duration : float;
  reporter : Addr.t;
  at : float;
}

type t = {
  policy : policy;
  report_fn : evidence -> unit;
  mutable reports : int;
}

let create ~policy ~report = { policy; report_fn = report; reports = 0 }
let vanilla = { policy = Vanilla; report_fn = ignore; reports = 0 }
let policy t = t.policy
let managed t = match t.policy with Vanilla -> false | Optimal | Adaptive -> true

let report t ev =
  t.reports <- t.reports + 1;
  t.report_fn ev

let reports t = t.reports
