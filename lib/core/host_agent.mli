(** End-host AITF agents.

    {!Victim} turns a host into an AITF client: it meters the traffic it
    receives, detects undesired flows (via {!Detection}), sends filtering
    requests to its gateway — self-policed against its R1 contract — and
    answers the 3-way-handshake queries attacker-side gateways send it.

    {!Attacker} models the source side: it receives [To_attacker] requests
    and reacts per its {!Policy.attacker_response} — a compliant host
    installs its own outbound filter (the na = R2·T filters of Section
    IV-D), an ignoring host keeps sending, an on-off host pauses just long
    enough to fool a temporary filter. Traffic generators consult the
    agent's {!Attacker.gate} before each packet. *)

open Aitf_net
open Aitf_filter

(** How the victim learns the attack path to put into its requests. *)
type path_source =
  | From_route_record  (** read it from the triggering packet *)
  | From_ppm of Aitf_traceback.Ppm.Collector.t
      (** reconstruct from collected marks; requests wait for convergence *)
  | Gateway_traceback
      (** send an empty path; the gateway runs SPIE itself *)

module Victim : sig
  type t

  val create :
    ?td:float ->
    ?path_source:path_source ->
    gateway:Addr.t ->
    config:Config.t ->
    Network.t ->
    Node.t ->
    t
  (** Attach a victim agent: takes over local delivery (chaining to the
      previous handler for non-AITF, non-data payloads). [td] is the
      first-detection delay Td (default 0.1 s). Default path source is the
      route record. *)

  val node : t -> Node.t

  (* Measurement *)

  val attack_bytes : t -> float
  val attack_packets : t -> int
  val good_bytes : t -> float
  val good_packets : t -> int
  val attack_meter : t -> Aitf_stats.Rate_meter.t
  val good_meter : t -> Aitf_stats.Rate_meter.t
  val flow_bytes : t -> Flow_label.t -> float
  (** Bytes received so far from one (undesired) flow. *)

  val attack_flows_seen : t -> int

  val requests_sent : t -> int
  val requests_suppressed : t -> int
  (** Requests the agent wanted to send but withheld (R1 self-policing). *)

  val requests_retransmitted : t -> int
  (** Requests resent (with exponential backoff, up to the config's
      [ctrl_retries]) because the flow kept arriving after a transmission —
      evidence the request, or its effect, was lost. Retransmissions
      consume the same R1 bucket as fresh requests. *)

  val requests_gave_up : t -> int
  (** Flows whose retry budget ran out with the attack still arriving. *)

  val queries_answered : t -> int

  (* Verifiable-contract hooks (docs/CONTRACTS.md). All unset by default,
     leaving behaviour bit-identical to the pre-contract agent. *)

  val set_signer : t -> (Bytes.t -> int64) -> unit
  (** Sign every outgoing filtering request: the function receives the
      request's canonical wire bytes ({!Wire.signing_bytes}) and returns
      the keyed digest to carry in its [auth] field. *)

  val set_receipt_sink : t -> (Message.receipt -> unit) -> unit
  (** Deliver install receipts (typically to an [Aitf_contract.Auditor]). *)

  val set_request_observer : t -> (Message.request -> unit) -> unit
  (** Observe each fresh (non-retransmitted) filtering request as sent,
      after signing — the auditor uses the path to know which gateway owes
      a receipt. *)

  val set_arrival_observer : t -> (Flow_label.t -> float -> unit) -> unit
  (** Observe every undesired-flow arrival (label, time) — the auditor's
      evidence that a contracted gateway is not actually policing. *)
end

module Attacker : sig
  type t

  val create :
    ?strategy:Policy.attacker_response ->
    ?filter_capacity:int ->
    config:Config.t ->
    Network.t ->
    Node.t ->
    t
  (** Default strategy is {!Policy.Complies}; default filter capacity is
      the config's [filter_capacity]. *)

  val node : t -> Node.t
  val strategy : t -> Policy.attacker_response

  val gate : t -> Packet.t -> bool
  (** [true] when the host's own state permits sending this packet. *)

  val filters : t -> Filter_table.t
  (** The compliant host's outbound filters (peak = measured na). *)

  val requests_received : t -> int
  val flows_stopped : t -> int
end
