module Sim = Aitf_engine.Sim
module Trace = Aitf_engine.Trace
open Aitf_net
open Aitf_filter

type t = {
  net : Network.t;
  sim : Sim.t;
  gateway : Gateway.t;
  protected_prefixes : unit Lpm.t;
  detection : Detection.t option ref;
  bucket : Token_bucket.t;
  requested : (Flow_label.t, float) Hashtbl.t;  (* flow -> expiry *)
  corrs : (Flow_label.t, int) Hashtbl.t;
      (* per-flow correlation id for span tracing, minted on first request
         since the proxy fills the victim's role for a legacy host *)
  mutable requests_sent : int;
  mutable queries_answered : int;
}

let protects t a = Option.is_some (Lpm.lookup t.protected_prefixes a)

let node t = Gateway.node t.gateway

let send t ~dst payload =
  Network.originate t.net (node t)
    (Message.packet ~src:(node t).Node.addr ~dst payload)

let requested_live t flow =
  match Hashtbl.find_opt t.requested flow with
  | Some expiry when Sim.now t.sim < expiry -> true
  | Some _ ->
    Hashtbl.remove t.requested flow;
    false
  | None -> false

let watching = requested_live

(* Originate a request exactly as the victim would have; the gateway node
   delivers it to its own AITF agent locally. *)
let on_detect t flow (pkt : Packet.t) =
  if Token_bucket.allow t.bucket ~now:(Sim.now t.sim) then begin
    let config = Gateway.config t.gateway in
    t.requests_sent <- t.requests_sent + 1;
    Hashtbl.replace t.requested flow (Sim.now t.sim +. config.Config.t_filter);
    let corr =
      match Hashtbl.find_opt t.corrs flow with
      | Some c -> c
      | None ->
        let c = Aitf_obs.Span.mint () in
        Hashtbl.replace t.corrs flow c;
        if Aitf_obs.Span.enabled () then
          Aitf_obs.Span.root ~corr:c
            ~flow:(Format.asprintf "%a" Flow_label.pp flow)
            ~victim:(node t).Node.name ~now:(Sim.now t.sim);
        c
    in
    Trace.emitf ~time:(Sim.now t.sim) ~category:(node t).Node.name
      "requesting block of %a on behalf of a legacy host" Flow_label.pp flow;
    Aitf_obs.Span.start ~corr ~stage:Aitf_obs.Span.Request
      ~node:(node t).Node.name ~now:(Sim.now t.sim);
    send t ~dst:(node t).Node.addr
      (Message.Filtering_request
         {
           Message.flow;
           target = Message.To_victim_gateway;
           duration = config.Config.t_filter;
           path = pkt.route_record;
           hops = 0;
           requestor = (node t).Node.addr;
           corr;
           auth = 0L;
         })
  end

let hook t (_node : Node.t) (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Data { attack = true; _ } when protects t pkt.dst ->
    (match !(t.detection) with
    | Some d -> Detection.observe d pkt
    | None -> ());
    Node.Continue
  | Message.Verification_query { flow; nonce } when protects t pkt.dst ->
    (* Answer on the legacy victim's behalf — the gateway is on the path,
       which is all the handshake verifies — and consume the query so the
       AITF-oblivious host never sees it. *)
    if requested_live t flow then begin
      t.queries_answered <- t.queries_answered + 1;
      send t ~dst:pkt.src (Message.Verification_reply { flow; nonce })
    end;
    Node.Drop "legacy-proxy-query"
  | _ -> Node.Continue

let attach ?(td = 0.1) ~protect ~gateway net =
  let sim = Network.sim net in
  let prefixes = Lpm.create () in
  List.iter (fun p -> Lpm.insert prefixes p ()) protect;
  let config = Gateway.config gateway in
  let t =
    {
      net;
      sim;
      gateway;
      protected_prefixes = prefixes;
      detection = ref None;
      bucket =
        Token_bucket.create ~rate:config.Config.r1 ~burst:config.Config.r1_burst;
      requested = Hashtbl.create 32;
      corrs = Hashtbl.create 32;
      requests_sent = 0;
      queries_answered = 0;
    }
  in
  t.detection :=
    Some
      (Detection.create sim ~td ~min_report_gap:config.Config.min_report_gap
         ~on_detect:(fun flow pkt -> on_detect t flow pkt));
  Node.add_hook (node t) (hook t);
  t

let requests_sent t = t.requests_sent
let queries_answered t = t.queries_answered

let flows_detected t =
  match !(t.detection) with Some d -> Detection.flows_seen d | None -> 0
