(** Binary wire format for AITF messages.

    The simulator moves OCaml values, but a deployable implementation needs
    a concrete octet format; this module defines one and the test suite
    round-trips it (including adversarial truncation/corruption cases, since
    gateways parse these messages from untrusted peers).

    Layout (all integers big-endian):

    {v
    octet 0      version (currently 1)
    octet 1      message type: 1 request / 2 query / 3 reply / 4 receipt
    flow label:
      sel        1 tag octet (0 any | 1 host | 2 net) then 4 addr octets
                 (host) or 4 + 1 prefix-length octets (net), for src then dst
      quals      1 bitmap octet (bit0 proto, bit1 sport, bit2 dport)
                 followed by the present values (1, 2, 2 octets)
    request body:
      target     1 octet (1 victim-gw | 2 attacker-gw | 3 attacker)
      duration   8 octets (IEEE double bits)
      hops       1 octet
      requestor  4 octets
      corr       4 octets
      path       1 length octet + 4 octets per entry
      auth       8 octets (keyed digest; 0 = unsigned)
    query/reply body:
      nonce      8 octets
    receipt body:
      gateway    4 octets
      victim     4 octets
      seq        4 octets
      installed  8 octets (IEEE double bits)
      expires    8 octets (IEEE double bits)
      hits       8 octets
      auth       8 octets (keyed digest; 0 = unsigned)
    v}

    The auth field always sits in the final 8 octets, so the canonical
    signing input ({!signing_bytes}) is simply the encoding with its tail
    zeroed. *)

open Aitf_net

type error =
  | Truncated  (** buffer too short for the advertised structure *)
  | Bad_version of int
  | Bad_tag of string * int  (** (field, value) *)

val pp_error : Format.formatter -> error -> unit

val encode : Packet.payload -> (Bytes.t, string) result
(** Serialise an AITF payload. [Error] for non-AITF payloads. *)

val decode : Bytes.t -> (Packet.payload, error) result
(** Parse a buffer produced by {!encode} (or by an adversary). Never
    raises. *)

val encoded_size : Packet.payload -> int option
(** Size {!encode} would produce, without allocating. [None] for non-AITF
    payloads. *)

val signing_bytes : Packet.payload -> (Bytes.t, string) result
(** The canonical octets a keyed digest covers: the full encoding with the
    trailing auth field zeroed. Only requests and receipts carry an auth
    field; other payloads are an [Error]. Signer and verifier both call
    this, so a digest matches iff every other octet of the message does. *)
