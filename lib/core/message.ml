open Aitf_net
open Aitf_filter

type target = To_victim_gateway | To_attacker_gateway | To_attacker

type request = {
  flow : Flow_label.t;
  target : target;
  duration : float;
  path : Addr.t list;
  hops : int;
  requestor : Addr.t;
  corr : int;
  auth : int64;
}

type receipt = {
  rc_flow : Flow_label.t;
  rc_gateway : Addr.t;
  rc_victim : Addr.t;
  rc_seq : int;
  rc_installed_at : float;
  rc_expires_at : float;
  rc_hits : int;
  rc_auth : int64;
}

type Packet.payload +=
  | Filtering_request of request
  | Verification_query of { flow : Flow_label.t; nonce : int64 }
  | Verification_reply of { flow : Flow_label.t; nonce : int64 }
  | Install_receipt of receipt

let message_size = 64
let protocol_number = 253

let packet ~src ~dst payload =
  Packet.make ~proto:protocol_number ~src ~dst ~size:message_size payload

let pp_target fmt = function
  | To_victim_gateway -> Format.pp_print_string fmt "to-victim-gw"
  | To_attacker_gateway -> Format.pp_print_string fmt "to-attacker-gw"
  | To_attacker -> Format.pp_print_string fmt "to-attacker"

let pp_request fmt r =
  Format.fprintf fmt "request{%a %a T=%g hops=%d path=[%a] from %a}"
    Flow_label.pp r.flow pp_target r.target r.duration r.hops
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Addr.pp)
    r.path Addr.pp r.requestor

let pp_receipt fmt r =
  Format.fprintf fmt "receipt{%a gw=%a seq=%d [%g,%g] hits=%d}" Flow_label.pp
    r.rc_flow Addr.pp r.rc_gateway r.rc_seq r.rc_installed_at r.rc_expires_at
    r.rc_hits
