open Aitf_net
open Aitf_filter

type target = To_victim_gateway | To_attacker_gateway | To_attacker

type request = {
  flow : Flow_label.t;
  target : target;
  duration : float;
  path : Addr.t list;
  hops : int;
  requestor : Addr.t;
  corr : int;
}

type Packet.payload +=
  | Filtering_request of request
  | Verification_query of { flow : Flow_label.t; nonce : int64 }
  | Verification_reply of { flow : Flow_label.t; nonce : int64 }

let message_size = 64
let protocol_number = 253

let packet ~src ~dst payload =
  Packet.make ~proto:protocol_number ~src ~dst ~size:message_size payload

let pp_target fmt = function
  | To_victim_gateway -> Format.pp_print_string fmt "to-victim-gw"
  | To_attacker_gateway -> Format.pp_print_string fmt "to-attacker-gw"
  | To_attacker -> Format.pp_print_string fmt "to-attacker"

let pp_request fmt r =
  Format.fprintf fmt "request{%a %a T=%g hops=%d path=[%a] from %a}"
    Flow_label.pp r.flow pp_target r.target r.duration r.hops
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Addr.pp)
    r.path Addr.pp r.requestor
