module Sim = Aitf_engine.Sim
module Trace = Aitf_engine.Trace
module Rate_meter = Aitf_stats.Rate_meter
module Ppm = Aitf_traceback.Ppm
module Span = Aitf_obs.Span
open Aitf_net
open Aitf_filter

type path_source =
  | From_route_record
  | From_ppm of Ppm.Collector.t
  | Gateway_traceback

module Victim = struct
  type t = {
    net : Network.t;
    sim : Sim.t;
    node : Node.t;
    gateway : Addr.t;
    config : Config.t;
    path_source : path_source;
    detection : Detection.t option ref;
        (* ref to tie the knot: detection's callback needs [t] *)
    bucket : Token_bucket.t;
    requested : (Flow_label.t, float) Hashtbl.t;  (* flow -> expiry *)
    awaiting_path : (Flow_label.t, unit) Hashtbl.t;
    last_seen : (Flow_label.t, float) Hashtbl.t;
        (* when an attack packet of this flow last arrived — the evidence
           the retransmitter reads: still arriving => request had no effect *)
    retrying : (Flow_label.t, unit) Hashtbl.t;
        (* flows with an armed retransmission schedule, to avoid overlap *)
    attack_meter : Rate_meter.t;
    good_meter : Rate_meter.t;
    per_flow : (Flow_label.t, float ref) Hashtbl.t;
    corrs : (Flow_label.t, int) Hashtbl.t;
        (* correlation id minted per attack flow — the key every span of the
           flow's filtering request hangs from. Minted unconditionally (a
           plain counter, no randomness) so traced and untraced runs make
           identical random/scheduling decisions. *)
    mutable signer : (Bytes.t -> int64) option;
        (* contract layer: keyed digest over canonical request bytes *)
    mutable receipt_sink : (Message.receipt -> unit) option;
    mutable request_observer : (Message.request -> unit) option;
    mutable arrival_observer : (Flow_label.t -> float -> unit) option;
        (* the auditor's evidence feed: every attack arrival, with time *)
    mutable last_ppm_path : Addr.t list option;
    mutable ppm_stable : int;
    mutable attack_packets : int;
    mutable good_packets : int;
    mutable requests_sent : int;
    mutable requests_suppressed : int;
    mutable requests_retransmitted : int;
    mutable requests_gave_up : int;
    mutable queries_answered : int;
  }

  let node t = t.node

  let trace t fmt =
    Trace.emitf ~time:(Sim.now t.sim) ~category:t.node.Node.name fmt

  let send t ~dst payload =
    Network.originate t.net t.node
      (Message.packet ~src:t.node.Node.addr ~dst payload)

  let requested_live t flow =
    match Hashtbl.find_opt t.requested flow with
    | Some expiry when Sim.now t.sim < expiry -> true
    | Some _ ->
      Hashtbl.remove t.requested flow;
      false
    | None -> false

  let corr_of t flow =
    match Hashtbl.find_opt t.corrs flow with Some c -> c | None -> 0

  let request_message t flow path =
    let req =
      {
        Message.flow;
        target = Message.To_victim_gateway;
        duration = t.config.Config.t_filter;
        path;
        hops = 0;
        requestor = t.node.Node.addr;
        corr = corr_of t flow;
        auth = 0L;
      }
    in
    let req =
      match t.signer with
      | None -> req
      | Some sign -> (
        match Wire.signing_bytes (Message.Filtering_request req) with
        | Ok b -> { req with Message.auth = sign b }
        | Error _ -> req)
    in
    Message.Filtering_request req

  (* The request to the gateway crosses the very tail circuit the attack is
     flooding, so it is the likeliest control message to drown. While the
     flow keeps arriving after a request (evidence the request, or its
     effect, was lost), resend with exponential backoff up to the retry
     cap. Retransmissions consume the same R1 bucket as fresh requests —
     reliability must not become a way around the contract. *)
  let arm_retry t flow path =
    if t.config.Config.ctrl_retries > 0 && not (Hashtbl.mem t.retrying flow)
    then begin
      Hashtbl.replace t.retrying flow ();
      let sent_at = ref (Sim.now t.sim) in
      let rec arm rto attempt =
        ignore
          (Sim.after ~label:"victim-retry" t.sim rto (fun () ->
               let still_arriving =
                 match Hashtbl.find_opt t.last_seen flow with
                 | Some ts -> ts > !sent_at
                 | None -> false
               in
               if requested_live t flow && still_arriving then
                 if attempt <= t.config.Config.ctrl_retries then begin
                   if Token_bucket.allow t.bucket ~now:(Sim.now t.sim) then begin
                     t.requests_retransmitted <- t.requests_retransmitted + 1;
                     Span.event ~node:t.node.Node.name ~corr:(corr_of t flow) ~now:(Sim.now t.sim)
                       "victim-retransmit";
                     trace t "re-requesting block of %a (attempt %d)"
                       Flow_label.pp flow (attempt + 1);
                     send t ~dst:t.gateway (request_message t flow path)
                   end
                   else begin
                     t.requests_suppressed <- t.requests_suppressed + 1;
                     Span.event ~node:t.node.Node.name ~corr:(corr_of t flow) ~now:(Sim.now t.sim)
                       "request-suppressed"
                   end;
                   sent_at := Sim.now t.sim;
                   arm (rto *. t.config.Config.ctrl_backoff) (attempt + 1)
                 end
                 else begin
                   t.requests_gave_up <- t.requests_gave_up + 1;
                   Span.event ~node:t.node.Node.name ~corr:(corr_of t flow) ~now:(Sim.now t.sim)
                     "victim-gave-up";
                   Hashtbl.remove t.retrying flow
                 end
               else Hashtbl.remove t.retrying flow))
      in
      arm t.config.Config.ctrl_rto 1
    end

  let send_request t flow path =
    if Token_bucket.allow t.bucket ~now:(Sim.now t.sim) then begin
      t.requests_sent <- t.requests_sent + 1;
      Hashtbl.replace t.requested flow
        (Sim.now t.sim +. t.config.Config.t_filter);
      trace t "requesting block of %a" Flow_label.pp flow;
      Span.start ~corr:(corr_of t flow) ~stage:Span.Request
        ~node:t.node.Node.name ~now:(Sim.now t.sim);
      let payload = request_message t flow path in
      (match (t.request_observer, payload) with
      | Some f, Message.Filtering_request req -> f req
      | _, _ -> ());
      send t ~dst:t.gateway payload;
      arm_retry t flow path
    end
    else begin
      t.requests_suppressed <- t.requests_suppressed + 1;
      Span.event ~node:t.node.Node.name ~corr:(corr_of t flow) ~now:(Sim.now t.sim)
        "request-suppressed"
    end

  (* PPM reconstructions start as prefixes of the true path (the victim-
     nearest edges converge first), so a path is only trusted once it has
     been identical across several consecutive observations. *)
  let ppm_stability_threshold = 5

  let ppm_path_ready t collector =
    let p = Ppm.Collector.reconstruct collector in
    if p <> None && p = t.last_ppm_path then
      t.ppm_stable <- t.ppm_stable + 1
    else begin
      t.last_ppm_path <- p;
      t.ppm_stable <- 0
    end;
    if t.ppm_stable >= ppm_stability_threshold then p else None

  (* Detection fired (first time after Td, or instantly on reappearance):
     assemble the attack path per the configured traceback source. *)
  let on_detect t flow (pkt : Packet.t) =
    Span.finish ~node:t.node.Node.name ~corr:(corr_of t flow)
      ~stage:Span.Detect ~now:(Sim.now t.sim) ();
    match t.path_source with
    | From_route_record -> send_request t flow pkt.route_record
    | Gateway_traceback -> send_request t flow []
    | From_ppm collector -> (
      match ppm_path_ready t collector with
      | Some path -> send_request t flow path
      | None -> Hashtbl.replace t.awaiting_path flow ())

  (* PPM convergence: retry pending reconstructions as marks accumulate. *)
  let retry_awaiting t collector =
    if Hashtbl.length t.awaiting_path > 0 then begin
      match ppm_path_ready t collector with
      | None -> ()
      | Some path ->
        let flows =
          Hashtbl.fold (fun f () acc -> f :: acc) t.awaiting_path []
          |> List.sort Flow_label.compare
          (* requests fire in label order, not hash-bucket order *)
        in
        List.iter
          (fun flow ->
            Hashtbl.remove t.awaiting_path flow;
            send_request t flow path)
          flows
    end

  let on_attack_packet t (pkt : Packet.t) =
    let now = Sim.now t.sim in
    t.attack_packets <- t.attack_packets + 1;
    Rate_meter.add t.attack_meter ~now (float_of_int pkt.size);
    let label = Flow_label.host_pair pkt.src pkt.dst in
    let cell =
      match Hashtbl.find_opt t.per_flow label with
      | Some c -> c
      | None ->
        let c = ref 0. in
        Hashtbl.replace t.per_flow label c;
        (* First attack packet of this flow: mint the flow's correlation id
           and open its request tree. Detection starts counting here. *)
        let corr = Span.mint () in
        Hashtbl.replace t.corrs label corr;
        if Span.enabled () then begin
          Span.root ~corr
            ~flow:(Format.asprintf "%a" Flow_label.pp label)
            ~victim:t.node.Node.name ~now;
          Span.start ~corr ~stage:Span.Detect ~node:t.node.Node.name ~now
        end;
        c
    in
    cell := !cell +. float_of_int pkt.size;
    Hashtbl.replace t.last_seen label now;
    (match t.arrival_observer with Some f -> f label now | None -> ());
    (match t.path_source with
    | From_ppm collector ->
      Ppm.Collector.observe collector pkt;
      retry_awaiting t collector
    | From_route_record | Gateway_traceback -> ());
    match !(t.detection) with
    | Some d -> Detection.observe d pkt
    | None -> ()

  let deliver t prev (node : Node.t) (pkt : Packet.t) =
    match pkt.payload with
    | Packet.Data { attack = true; _ } -> on_attack_packet t pkt
    | Packet.Data _ ->
      t.good_packets <- t.good_packets + 1;
      Rate_meter.add t.good_meter ~now:(Sim.now t.sim) (float_of_int pkt.size)
    | Message.Verification_query { flow; nonce } ->
      (* "Do you really not want this flow?" — confirm iff we asked. *)
      if requested_live t flow then begin
        t.queries_answered <- t.queries_answered + 1;
        Span.event ~node:t.node.Node.name ~corr:(corr_of t flow) ~now:(Sim.now t.sim)
          "victim-confirmed";
        send t ~dst:pkt.src (Message.Verification_reply { flow; nonce })
      end
    | Message.Install_receipt r -> (
      match t.receipt_sink with Some f -> f r | None -> ())
    | _ -> prev node pkt

  let create ?(td = 0.1) ?(path_source = From_route_record) ~gateway ~config
      net node =
    let sim = Network.sim_for net node in
    let t =
      {
        net;
        sim;
        node;
        gateway;
        config;
        path_source;
        detection = ref None;
        bucket =
          Token_bucket.create ~rate:config.Config.r1
            ~burst:config.Config.r1_burst;
        requested = Hashtbl.create 32;
        awaiting_path = Hashtbl.create 8;
        last_seen = Hashtbl.create 32;
        retrying = Hashtbl.create 8;
        attack_meter = Rate_meter.create ~window:1.0;
        good_meter = Rate_meter.create ~window:1.0;
        per_flow = Hashtbl.create 32;
        corrs = Hashtbl.create 32;
        signer = None;
        receipt_sink = None;
        request_observer = None;
        arrival_observer = None;
        last_ppm_path = None;
        ppm_stable = 0;
        attack_packets = 0;
        good_packets = 0;
        requests_sent = 0;
        requests_suppressed = 0;
        requests_retransmitted = 0;
        requests_gave_up = 0;
        queries_answered = 0;
      }
    in
    t.detection :=
      Some
        (Detection.create sim ~td ~min_report_gap:config.Config.min_report_gap
           ~on_detect:(fun flow pkt -> on_detect t flow pkt));
    Aitf_obs.Metrics.if_attached (fun reg ->
        let open Aitf_obs.Metrics in
        let p metric =
          Printf.sprintf "victim.%s.%s" node.Node.name metric
        in
        register_counter reg (p "requests_sent") ~unit_:"requests"
          ~help:"Filtering requests sent to the gateway" (fun () ->
            float_of_int t.requests_sent);
        register_counter reg (p "requests_suppressed") ~unit_:"requests"
          ~help:"Requests withheld by the local R1 bucket" (fun () ->
            float_of_int t.requests_suppressed);
        register_counter reg (p "requests_retransmitted") ~unit_:"requests"
          ~help:
            "Requests resent because the flow kept arriving after a \
             transmission" (fun () ->
            float_of_int t.requests_retransmitted);
        register_counter reg (p "requests_gave_up") ~unit_:"flows"
          ~help:
            "Flows whose retry budget ran out with the attack still \
             arriving" (fun () -> float_of_int t.requests_gave_up);
        register_counter reg (p "queries_answered") ~unit_:"queries"
          ~help:"Handshake verification queries confirmed" (fun () ->
            float_of_int t.queries_answered);
        register_counter reg (p "attack_bytes") ~unit_:"bytes"
          ~help:"Attack bytes delivered to this host" (fun () ->
            Rate_meter.total t.attack_meter);
        register_counter reg (p "good_bytes") ~unit_:"bytes"
          ~help:"Legitimate bytes delivered to this host" (fun () ->
            Rate_meter.total t.good_meter);
        register_gauge reg (p "attack_rate_bps") ~unit_:"bit/s"
          ~help:"Attack traffic rate over the meter window" (fun () ->
            8. *. Rate_meter.rate t.attack_meter ~now:(Sim.now t.sim)));
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <- deliver t prev;
    t

  let attack_bytes t = Rate_meter.total t.attack_meter
  let attack_packets t = t.attack_packets
  let good_bytes t = Rate_meter.total t.good_meter
  let good_packets t = t.good_packets
  let attack_meter t = t.attack_meter
  let good_meter t = t.good_meter

  let flow_bytes t flow =
    match Hashtbl.find_opt t.per_flow flow with
    | Some c -> !c
    | None -> 0.

  let attack_flows_seen t = Hashtbl.length t.per_flow
  let set_signer t f = t.signer <- Some f
  let set_receipt_sink t f = t.receipt_sink <- Some f
  let set_request_observer t f = t.request_observer <- Some f
  let set_arrival_observer t f = t.arrival_observer <- Some f
  let requests_sent t = t.requests_sent
  let requests_suppressed t = t.requests_suppressed
  let requests_retransmitted t = t.requests_retransmitted
  let requests_gave_up t = t.requests_gave_up
  let queries_answered t = t.queries_answered
end

module Attacker = struct
  type t = {
    sim : Sim.t;
    node : Node.t;
    strategy : Policy.attacker_response;
    filters : Filter_table.t;
    off_until : (Flow_label.t, float) Hashtbl.t;
    mutable requests_received : int;
    mutable flows_stopped : int;
  }

  let node t = t.node
  let strategy t = t.strategy
  let filters t = t.filters
  let requests_received t = t.requests_received
  let flows_stopped t = t.flows_stopped

  let gate t (pkt : Packet.t) =
    match t.strategy with
    | Policy.Ignores -> true
    | Policy.Complies -> not (Filter_table.blocks t.filters pkt)
    | Policy.On_off _ -> (
      let label = Flow_label.host_pair pkt.src pkt.dst in
      match Hashtbl.find_opt t.off_until label with
      | Some until when Sim.now t.sim < until -> false
      | Some _ ->
        Hashtbl.remove t.off_until label;
        true
      | None -> true)

  let on_request t (req : Message.request) =
    t.requests_received <- t.requests_received + 1;
    (* The counter-request reached the attacking host — however it responds,
       the Counter_request leg (gateway -> attacker) is over. *)
    Span.finish ~corr:req.Message.corr ~stage:Span.Counter_request
      ~now:(Sim.now t.sim) ();
    match t.strategy with
    | Policy.Ignores -> ()
    | Policy.Complies -> (
      match
        Filter_table.install t.filters req.Message.flow
          ~duration:req.Message.duration
      with
      | Ok _ -> t.flows_stopped <- t.flows_stopped + 1
      | Error `Table_full -> ())
    | Policy.On_off { off_time } ->
      t.flows_stopped <- t.flows_stopped + 1;
      Hashtbl.replace t.off_until req.Message.flow
        (Sim.now t.sim +. off_time)

  let deliver t prev (node : Node.t) (pkt : Packet.t) =
    match pkt.payload with
    | Message.Filtering_request ({ Message.target = Message.To_attacker; _ } as req)
      ->
      on_request t req
    | _ -> prev node pkt

  let create ?(strategy = Policy.Complies) ?filter_capacity ~config net node =
    let sim = Network.sim_for net node in
    let capacity =
      Option.value ~default:config.Config.filter_capacity filter_capacity
    in
    let t =
      {
        sim;
        node;
        strategy;
        filters = Filter_table.create sim ~capacity;
        off_until = Hashtbl.create 8;
        requests_received = 0;
        flows_stopped = 0;
      }
    in
    Aitf_obs.Metrics.if_attached (fun reg ->
        let open Aitf_obs.Metrics in
        let p metric =
          Printf.sprintf "attacker.%s.%s" node.Node.name metric
        in
        register_counter reg (p "requests_received") ~unit_:"requests"
          ~help:"To-attacker filtering requests delivered" (fun () ->
            float_of_int t.requests_received);
        register_counter reg (p "flows_stopped") ~unit_:"flows"
          ~help:"Flows this host stopped (honestly or on-off)" (fun () ->
            float_of_int t.flows_stopped));
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <- deliver t prev;
    t
end
