open Aitf_net

type t = { seed : int64; keys : (Addr.t, int64) Hashtbl.t }

let create ~seed = { seed = Int64.of_int seed; keys = Hashtbl.create 64 }

(* splitmix64 finaliser: a cheap bijective scrambler with full avalanche,
   good enough to make per-principal keys unrelated to each other and to
   the run seed. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let key t addr =
  match Hashtbl.find_opt t.keys addr with
  | Some k -> k
  | None ->
    let k =
      mix
        (Int64.add t.seed
           (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int32 addr)))
    in
    (* 0L doubles as "unsigned" on the wire; keep real keys away from it. *)
    let k = if Int64.equal k 0L then 1L else k in
    Hashtbl.replace t.keys addr k;
    k

let mac t addr bytes =
  let k = key t addr in
  (* FNV-1a over the canonical bytes, keyed fore and aft, then scrambled:
     flipping any message bit or using any other key flips ~half the digest
     bits. Deterministic per (seed, addr, bytes) across runs. *)
  let h = ref (Int64.logxor k 0xCBF29CE484222325L) in
  Bytes.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001B3L)
    bytes;
  let d = mix (Int64.logxor !h k) in
  if Int64.equal d 0L then 1L else d

let signer t addr = fun bytes -> mac t addr bytes
let verify t addr bytes digest = Int64.equal (mac t addr bytes) digest
