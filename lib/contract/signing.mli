(** Deterministic keyed digests for the verifiable-contract layer.

    {b Not cryptography.} A deployable AITF would give each AS a real key
    and HMAC its messages; the simulator stands that machinery in with a
    seeded splitmix keychain and an FNV-style keyed hash. The properties
    the protocol relies on hold within a run: a digest verifies only under
    the signer's key and only over the exact canonical bytes
    ({!Aitf_core.Wire.signing_bytes}), and a node without the key material
    cannot produce a verifying digest except by 1-in-2^64 luck. The whole
    keychain derives from one integer seed, so runs stay reproducible. *)

open Aitf_net

type t
(** A keychain: one derived key per principal (gateway or host) address. *)

val create : seed:int -> t
(** All keys derive deterministically from [seed]. Distinct seeds give
    unrelated keychains, so cross-run replay is meaningless. *)

val key : t -> Addr.t -> int64
(** The (lazily derived, cached) key of one principal. Never [0L] — that
    value is reserved to mean "unsigned" on the wire. *)

val mac : t -> Addr.t -> Bytes.t -> int64
(** Keyed digest of [bytes] under [addr]'s key. Never [0L]. *)

val signer : t -> Addr.t -> Bytes.t -> int64
(** [signer t addr] is [mac t addr] partially applied — the closure handed
    to {!Aitf_core.Gateway.enable_contracts} and
    {!Aitf_core.Host_agent.Victim.set_signer}. *)

val verify : t -> Addr.t -> Bytes.t -> int64 -> bool
(** Does [digest] verify as [addr]'s mac over [bytes]? *)
