(** The victim-side contract auditor (docs/CONTRACTS.md).

    Cross-checks what contracted gateways {e claim} (signed install
    receipts) against what the victim {e observes} (undesired-flow
    arrivals), and convicts gateways that lie. One auditor serves one
    victim host; wire it to the agent's contract hooks:

    - {!note_request} from
      {!Aitf_core.Host_agent.Victim.set_request_observer} — tells the
      auditor which path gateway owes a receipt;
    - {!on_receipt} from
      {!Aitf_core.Host_agent.Victim.set_receipt_sink};
    - {!note_arrival} from
      {!Aitf_core.Host_agent.Victim.set_arrival_observer} — the evidence
      feed.

    Four violation kinds are recognised: {e silent} (deadline passed, no
    receipt, flow still arriving — the accept-then-ignore liar), {e bad
    signature} (a receipt that fails under its named issuer's key — the
    forger), {e replayed} (a re-used sequence number, caught exactly like
    a replayed handshake reply), and {e not policing} (a valid receipt
    whose flow keeps arriving past the grace window — the partial
    policer). Between violations the auditor probes with exponential
    backoff; [k] violations convict, fire [on_flag] once, and shift the
    audit to the next AS on the path — mirroring the failover skip the
    victim's gateway performs.

    A violation always requires arrivals {e after} the evidence watermark,
    so a flow that went quiet (honest install, attack ended) can never
    convict anyone — the zero-false-positive property the acceptance bench
    asserts. *)

open Aitf_net
open Aitf_filter

type t

type violation_kind = Silent | Bad_signature | Replayed | Not_policing

type config = {
  k : int;  (** violations that convict a gateway *)
  deadline : float;
      (** how long a gateway has to produce its first receipt before
          silence becomes a violation *)
  grace : float;
      (** arrivals tolerated after a valid receipt (in-flight packets,
          fluid recompute) before the claim counts as a lie *)
  backoff : float;  (** probing backoff multiplier between violations *)
  period : float;  (** audit tick period, seconds *)
}

val default_config : config
(** [k = 3], [deadline = 2 s], [grace = 1 s], [backoff = 2×],
    [period = 0.5 s]. *)

val create :
  ?config:config ->
  verify:(Addr.t -> Bytes.t -> int64 -> bool) ->
  gateway:Addr.t ->
  on_flag:(Addr.t -> unit) ->
  Aitf_engine.Sim.t ->
  t
(** Start auditing: arms the periodic audit tick immediately. [verify] is
    typically {!Signing.verify} partially applied. [gateway] is the
    victim's own gateway — it closes every path and answers with terminal
    filters, not receipts, so it is excluded from auditing. [on_flag]
    fires exactly once per convicted gateway. *)

val note_request : ?now:float -> t -> Aitf_core.Message.request -> unit
(** A filtering request went out: the first un-flagged gateway on its
    path now owes a receipt within [deadline]. Re-requesting a known flow
    re-arms its deadline without forgetting accumulated violations.
    [?now] overrides the observation timestamp (default [Sim.now] on the
    auditor's own sim) — sharded runs capture the observing shard's
    clock and replay the call through [Sched.defer] at the barrier,
    where the global clock lags the shard's. *)

val note_arrival : t -> Flow_label.t -> float -> unit
(** An undesired packet of [flow] arrived at [time]. *)

val on_receipt : ?now:float -> t -> Aitf_core.Message.receipt -> unit
(** An install receipt arrived: verify its digest and sequence number,
    then either accept it as the flow's coverage claim or record the
    violation it proves. A receipt whose label subsumes an audited flow
    covers it (controller-placed prefix filters). [?now] as in
    {!note_request}. *)

val flagged : t -> Addr.t list
(** Gateways convicted so far, sorted. *)

val flagged_gateway : t -> Addr.t -> bool

val violations : t -> (Addr.t * int) list
(** Per-gateway violation counts, sorted by address. *)

val receipts_verified : t -> int
val receipts_rejected : t -> int

val counters : t -> Aitf_stats.Counter.t
(** ["receipt-verified"], ["receipt-bad-sig"], ["receipt-replayed"],
    ["violation-silent"], ["violation-bad-signature"],
    ["violation-replayed"], ["violation-not-policing"],
    ["gateway-flagged"]. *)
