module Sim = Aitf_engine.Sim
module Trace = Aitf_engine.Trace
module Counter = Aitf_stats.Counter
module Message = Aitf_core.Message
module Wire = Aitf_core.Wire
open Aitf_net
open Aitf_filter

type violation_kind = Silent | Bad_signature | Replayed | Not_policing

let violation_name = function
  | Silent -> "silent"
  | Bad_signature -> "bad-signature"
  | Replayed -> "replayed"
  | Not_policing -> "not-policing"

type config = {
  k : int;  (* violations that convict a gateway *)
  deadline : float;  (* how long a gateway has to produce its first receipt *)
  grace : float;  (* arrivals tolerated after a valid receipt *)
  backoff : float;  (* probing backoff multiplier between violations *)
  period : float;  (* audit tick period *)
}

let default_config =
  { k = 3; deadline = 2.0; grace = 1.0; backoff = 2.0; period = 0.5 }

(* Per-flow audit state: which gateway currently owes us policing, and what
   evidence we hold. [x_mark] is the evidence watermark — only arrivals
   after it count towards the next violation, so one sustained burst cannot
   be double-counted and a flow that went quiet can never convict anyone. *)
type expectation = {
  x_flow : Flow_label.t;
  mutable x_path : Addr.t list;  (* auditable path, attacker-side first *)
  mutable x_idx : int;  (* accountable entry while no receipt covers us *)
  mutable x_deadline : float;
  mutable x_backoff : float;
  mutable x_mark : float;
  mutable x_last_arrival : float;
  mutable x_receipt_gw : Addr.t option;  (* issuer of the last valid receipt *)
  mutable x_receipt_at : float;
  mutable x_receipt_expires : float;
  x_strikes : (Addr.t, int) Hashtbl.t;
      (* per-accused violations on THIS flow. Conviction needs [k] strikes
         from a single flow: a liar's flow keeps arriving through every
         backoff probe, while an honest install that was merely slow (or
         whose receipt drowned on the congested victim link) strikes at
         most once and then goes quiet. Summing strikes across flows
         would instead convict any busy honest gateway on the latency
         tail of its install path. *)
}

type t = {
  sim : Sim.t;
  config : config;
  verify : Addr.t -> Bytes.t -> int64 -> bool;
  gateway : Addr.t;  (* the victim's own gateway — never audited *)
  on_flag : Addr.t -> unit;
  expectations : (Flow_label.t, expectation) Hashtbl.t;
  violation_counts : (Addr.t, int) Hashtbl.t;
  flagged_tbl : (Addr.t, unit) Hashtbl.t;
  seen_seq : (Addr.t * int, unit) Hashtbl.t;  (* replay detection per issuer *)
  counters : Counter.t;
  mutable receipts_verified : int;
  mutable receipts_rejected : int;
}

let counters t = t.counters
let receipts_verified t = t.receipts_verified
let receipts_rejected t = t.receipts_rejected
let flagged_gateway t a = Hashtbl.mem t.flagged_tbl a

let flagged t =
  Hashtbl.fold (fun a () acc -> a :: acc) t.flagged_tbl []
  |> List.sort Addr.compare

let violations t =
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) t.violation_counts []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let trace _t ~now fmt = Trace.emitf ~time:now ~category:"auditor" fmt

let violate t ~now (x : expectation) gw kind =
  Counter.incr t.counters ("violation-" ^ violation_name kind);
  let total =
    1 + Option.value ~default:0 (Hashtbl.find_opt t.violation_counts gw)
  in
  Hashtbl.replace t.violation_counts gw total;
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt x.x_strikes gw) in
  Hashtbl.replace x.x_strikes gw n;
  trace t ~now "violation (%s) strike #%d (total %d) against %a on %a"
    (violation_name kind) n total Addr.pp gw Flow_label.pp x.x_flow;
  (* Probing backs off exponentially: the next violation on this flow needs
     fresh evidence and a widening quiet window, so a single sustained
     leak converts into distinct probes, not an instant conviction. *)
  x.x_mark <- now;
  x.x_deadline <- now +. x.x_backoff;
  x.x_backoff <- x.x_backoff *. t.config.backoff;
  (* Arrival-based violations are circumstantial (a slow install looks
     momentarily like a lie), so they need the full [k] probes. A forged
     or replayed receipt is affirmative evidence in the issuer's own name
     — two of those suffice (two, not one, so a single duplicated
     delivery can never convict). *)
  let needed =
    match kind with
    | Silent | Not_policing -> t.config.k
    | Bad_signature | Replayed -> Int.min t.config.k 2
  in
  if n >= needed && not (Hashtbl.mem t.flagged_tbl gw) then begin
    Hashtbl.replace t.flagged_tbl gw ();
    Counter.incr t.counters "gateway-flagged";
    trace t ~now "flagging %a after %d violations" Addr.pp gw n;
    t.on_flag gw
  end

(* The accountable entry skips flagged gateways — exactly mirroring the
   failover skip the victim's gateway performs on the same path. *)
let advance_past_flagged t ~now (x : expectation) =
  let rec go () =
    match List.nth_opt x.x_path x.x_idx with
    | Some gw when Hashtbl.mem t.flagged_tbl gw ->
      x.x_idx <- x.x_idx + 1;
      x.x_mark <- now;
      x.x_deadline <- now +. t.config.deadline;
      x.x_backoff <- t.config.deadline;
      go ()
    | Some _ | None -> ()
  in
  go ()

let audit_one t now (x : expectation) =
  advance_past_flagged t ~now x;
  (* Drop a stale receipt from a since-flagged issuer: it pacifies nothing.
     The audit re-arms from scratch — the newly accountable gateway gets a
     full deadline to produce its post-failover receipt; without the reset
     it would inherit an expired deadline and be convicted on the next
     tick, before its receipt could possibly arrive. *)
  (match x.x_receipt_gw with
  | Some g when Hashtbl.mem t.flagged_tbl g ->
    x.x_receipt_gw <- None;
    x.x_mark <- now;
    x.x_deadline <- now +. t.config.deadline;
    x.x_backoff <- t.config.deadline
  | Some _ | None -> ());
  match x.x_receipt_gw with
  | Some g ->
    (* A valid receipt claims this flow is policed until [x_receipt_expires].
       Arrivals persisting past the grace window give the lie to the claim:
       partial policing, an accept-then-lapse replayer, or a forgotten
       filter all land here. *)
    if
      now < x.x_receipt_expires
      && now >= x.x_deadline
      && x.x_last_arrival > x.x_receipt_at +. t.config.grace
      && x.x_last_arrival > x.x_mark
      && x.x_last_arrival >= now -. t.config.grace
    then violate t ~now x g Not_policing
  | None -> (
    (* No receipt covers the flow: past the deadline, persisting arrivals
       convict the accountable path entry — including the silent
       accept-then-ignore liar, who never writes anything down. The flow
       must still be arriving {e now} (within the grace window): a flow
       that went quiet is being policed whether or not its receipt
       survived the congested victim link, and in-flight packets from the
       request->install window are not evidence of lying. *)
    match List.nth_opt x.x_path x.x_idx with
    | None -> ()  (* path exhausted; terminal filtering is local *)
    | Some gw ->
      if
        now >= x.x_deadline
        && x.x_last_arrival > x.x_mark
        && x.x_last_arrival >= now -. t.config.grace
      then violate t ~now x gw Silent)

let tick t =
  let now = Sim.now t.sim in
  (* Deterministic audit order regardless of hash-table internals. *)
  Hashtbl.fold (fun _ x acc -> x :: acc) t.expectations []
  |> List.sort (fun a b -> Flow_label.compare a.x_flow b.x_flow)
  |> List.iter (audit_one t now)

(* [?now] lets sharded runs stamp observations with the observing shard's
   clock at capture time ([As_scenario] routes these calls through
   [Sched.defer], which replays them at the barrier — the global sim's
   clock there lags the shard that saw the event). Sequential callers
   omit it and get the historical [Sim.now t.sim]. *)
let note_request ?now t (req : Message.request) =
  let now = match now with Some n -> n | None -> Sim.now t.sim in
  (* The victim's own gateway closes the path; it answers to us directly
     (terminal filtering), not through receipts, so it is never audited. *)
  let path =
    List.filter (fun a -> not (Addr.equal a t.gateway)) req.Message.path
  in
  match Hashtbl.find_opt t.expectations req.Message.flow with
  | Some x ->
    (* A fresh request (e.g. after filter expiry) re-arms the audit;
       accumulated strikes are not forgotten, and a probe deadline already
       pending is never pushed out — a liar must not buy time by letting
       the victim re-request. *)
    if path <> [] then x.x_path <- path;
    x.x_mark <- now;
    x.x_deadline <-
      (if x.x_deadline <= now then now +. t.config.deadline
       else Float.min x.x_deadline (now +. t.config.deadline));
    advance_past_flagged t ~now x
  | None ->
    let x =
      {
        x_flow = req.Message.flow;
        x_path = path;
        x_idx = 0;
        x_deadline = now +. t.config.deadline;
        x_backoff = t.config.deadline;
        x_mark = now;
        x_last_arrival = now;
        x_receipt_gw = None;
        x_receipt_at = 0.;
        x_receipt_expires = 0.;
        x_strikes = Hashtbl.create 4;
      }
    in
    advance_past_flagged t ~now x;
    Hashtbl.replace t.expectations req.Message.flow x

let note_arrival t flow at =
  match Hashtbl.find_opt t.expectations flow with
  | Some x -> x.x_last_arrival <- at
  | None -> ()

let on_receipt ?now t (r : Message.receipt) =
  let now = match now with Some n -> n | None -> Sim.now t.sim in
  let authentic =
    (* [signing_bytes] zeroes the auth tail itself, so the receipt passes
       through unmodified. *)
    match Wire.signing_bytes (Message.Install_receipt r) with
    | Ok bytes -> t.verify r.Message.rc_gateway bytes r.Message.rc_auth
    | Error _ -> false
  in
  if not authentic then begin
    t.receipts_rejected <- t.receipts_rejected + 1;
    Counter.incr t.counters "receipt-bad-sig";
    (* A receipt in a gateway's name that fails under that gateway's key:
       either a forger without key material or tampering in flight. The
       named issuer claimed to police and provably is not. *)
    match Hashtbl.find_opt t.expectations r.Message.rc_flow with
    | Some x -> violate t ~now x r.Message.rc_gateway Bad_signature
    | None -> ()
  end
  else begin
    let stale =
      Hashtbl.mem t.seen_seq (r.Message.rc_gateway, r.Message.rc_seq)
    in
    if stale then begin
      t.receipts_rejected <- t.receipts_rejected + 1;
      Counter.incr t.counters "receipt-replayed";
      (* Same discipline as the handshake's nonce cache: a re-used sequence
         number is a replay, never fresh evidence of policing. Membership,
         not a high-water mark — receipts for different flows from one
         issuer interleave on the wire, and reordering must not convict. *)
      match Hashtbl.find_opt t.expectations r.Message.rc_flow with
      | Some x -> violate t ~now x r.Message.rc_gateway Replayed
      | None -> ()
    end
    else begin
      Hashtbl.replace t.seen_seq (r.Message.rc_gateway, r.Message.rc_seq) ();
      t.receipts_verified <- t.receipts_verified + 1;
      Counter.incr t.counters "receipt-verified";
      if not (Hashtbl.mem t.flagged_tbl r.Message.rc_gateway) then begin
        match Hashtbl.find_opt t.expectations r.Message.rc_flow with
        | None -> ()
        | Some x ->
          (* Prefix receipts count too: a controller-placed wildcard filter
             covers every flow it subsumes. *)
          if Flow_label.subsumes r.Message.rc_flow x.x_flow then begin
            x.x_receipt_gw <- Some r.Message.rc_gateway;
            x.x_receipt_at <- now;
            x.x_receipt_expires <- r.Message.rc_expires_at;
            x.x_deadline <- Float.max x.x_deadline (now +. t.config.grace)
          end
      end
    end
  end

let create ?(config = default_config) ~verify ~gateway ~on_flag sim =
  let t =
    {
      sim;
      config;
      verify;
      gateway;
      on_flag;
      expectations = Hashtbl.create 64;
      violation_counts = Hashtbl.create 8;
      flagged_tbl = Hashtbl.create 4;
      seen_seq = Hashtbl.create 64;
      counters = Counter.create ();
      receipts_verified = 0;
      receipts_rejected = 0;
    }
  in
  let rec arm () =
    ignore
      (Sim.after ~label:"auditor-tick" t.sim config.period (fun () ->
           tick t;
           arm ()))
  in
  arm ();
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric = "auditor." ^ metric in
      register_counter reg (p "receipts_verified") ~unit_:"receipts"
        ~help:"Receipts whose keyed digest and sequence number checked out"
        (fun () -> float_of_int t.receipts_verified);
      register_counter reg (p "receipts_rejected") ~unit_:"receipts"
        ~help:"Receipts rejected (bad digest or replayed sequence number)"
        (fun () -> float_of_int t.receipts_rejected);
      register_counter reg (p "violations") ~unit_:"violations"
        ~help:"Contract violations recorded across all gateways" (fun () ->
          float_of_int
            (Hashtbl.fold (fun _ n acc -> acc + n) t.violation_counts 0));
      register_gauge reg (p "gateways_flagged") ~unit_:"gateways"
        ~help:"Gateways convicted of lying so far" (fun () ->
          float_of_int (Hashtbl.length t.flagged_tbl)));
  t
