(** The Figure-1 topology: a linear attack path.

    [G_host — G_gw1 — G_gw2 — … — G_gwd  ===  B_gwd — … — B_gw1 — B_host]

    with the victim's tail circuit (G_gw1 → G_host) as the thin link the
    attack congests. [depth] gateways per side generalise the paper's
    three-level example (enterprise, regional ISP, WAN). All gateways are
    border routers; {!deploy} attaches the AITF machinery with per-gateway
    cooperation policies so experiments can make any suffix of the
    attacker's side unresponsive. *)

open Aitf_net
open Aitf_core

type spec = {
  depth : int;  (** gateways per side (>= 1); Figure 1 has 3 *)
  tail_bw : float;  (** victim-side access-link bandwidth (bits/s) *)
  attacker_tail_bw : float;
      (** attacker-side access links; kept separate so a congestion
          experiment can squeeze the victim's tail without also throttling
          the attack at its source *)
  core_bw : float;  (** inter-gateway bandwidth *)
  access_delay : float;  (** host <-> first gateway one-way delay (s) —
                             the Tr of the analysis *)
  hop_delay : float;  (** gateway <-> gateway delay (s) *)
  queue_capacity : int;  (** bytes per link queue *)
  tail_discipline : Link.discipline;
      (** queueing discipline of the victim's tail circuit (default
          drop-tail; the A4 ablation compares RED) *)
}

val default_spec : spec
(** depth 3, 10 Mbit/s tails (the paper's enterprise uplink), 1 Gbit/s
    core, 50 ms access delay (the paper's Tr example), 10 ms hops, 64 KiB
    queues. *)

type t = {
  net : Network.t;
  victim : Node.t;
  attacker : Node.t;
  bystander : Node.t;
      (** an innocent host in the attacker's enterprise — the collateral
          victim of peer disconnection *)
  victim_gws : Node.t list;  (** closest to the victim first: G_gw1, … *)
  attacker_gws : Node.t list;  (** closest to the attacker first: B_gw1, … *)
  victim_tail : Link.t;  (** the G_gw1 → G_host link the attack congests *)
  victim_tail_up : Link.t;
      (** the reverse G_host → G_gw1 direction — the link the victim's
          filtering requests must cross, and so the natural place to
          inject control-plane faults *)
}

val build : Aitf_engine.Sim.t -> spec -> t
(** Construct nodes and links and compute routes. *)

type deployed = {
  topo : t;
  victim_agent : Host_agent.Victim.t;
  attacker_agent : Host_agent.Attacker.t;
  victim_gateways : Gateway.t list;  (** same order as [victim_gws] *)
  attacker_gateways : Gateway.t list;  (** same order as [attacker_gws] *)
}

val deploy :
  ?attacker_strategy:Policy.attacker_response ->
  ?attacker_gw_policies:Policy.gateway_policy list ->
  ?victim_td:float ->
  ?path_source:Host_agent.path_source ->
  ?victim_filter_capacity:int ->
  config:Config.t ->
  rng:Aitf_engine.Rng.t ->
  t ->
  deployed
(** Attach AITF agents everywhere. [attacker_gw_policies] gives the policy
    of each attacker-side gateway, closest-to-the-attacker first (missing
    entries default to cooperative) — setting the first [k] to
    [Unresponsive] reproduces "n non-cooperating nodes" scenarios.
    [victim_filter_capacity] optionally overrides the filter-table size of
    the victim's first gateway (for resource experiments). *)

val non_cooperating : int -> Policy.gateway_policy list
(** [non_cooperating k] is [k] unresponsive entries — a convenience for the
    sweep in E1/E6. *)
