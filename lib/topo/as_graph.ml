module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_core

type spec = {
  domains : int;
  tier1 : int;
  multihome : int;
  peer_p : float;
  core_bw : float;
  uplink_bw : float;
  access_bw : float;
  hop_delay : float;
  access_delay : float;
  queue_capacity : int;
}

let default_spec =
  {
    domains = 1000;
    tier1 = 4;
    multihome = 2;
    peer_p = 0.15;
    core_bw = 10e9;
    uplink_bw = 1e9;
    access_bw = 100e6;
    hop_delay = 0.010;
    access_delay = 0.002;
    queue_capacity = 65536;
  }

type t = {
  net : Network.t;
  spec : spec;
  routers : Node.t array;
  providers : int list array;  (* sorted ascending *)
  customers : int list array;
  peers : int list array;
  host_count : int array;  (* infra addresses handed out per domain *)
}

let net t = t.net
let spec t = t.spec
let n_domains t = Array.length t.routers

(* Domain d owns 4.0.0.0 + d*2^16 /16 — clear of the 10/172 hierarchy
   plans and the 31/32 swarm pools. *)
let domain_base d = Addr.of_octets (4 + (d lsr 8)) (d land 0xff) 0 0
let domain_prefix d = Addr.prefix (domain_base d) 16

let router t d = t.routers.(d)
let providers t d = t.providers.(d)
let customers t d = t.customers.(d)
let peers t d = t.peers.(d)

let degree t d =
  List.length t.providers.(d)
  + List.length t.customers.(d)
  + List.length t.peers.(d)

let is_stub t d = t.customers.(d) = []

(* --- generation ---------------------------------------------------------- *)

(* Generation is split from materialisation so sharded runs can partition
   the graph before any network object exists: [plan] performs every RNG
   draw (preferential attachment, peering) and records the edge list in
   creation order; [materialise] replays it against a network without
   touching the RNG. [build] composes the two, so the draw sequence — and
   therefore every downstream consumer of the stream — is unchanged from
   the pre-split code. *)

type plan = {
  p_spec : spec;
  p_providers : int list array;
  p_customers : int list array;
  p_peers : int list array;
  p_edges : (int * int * float) list;  (* (a, b, bandwidth), creation order *)
}

let plan rng spec =
  if spec.tier1 < 2 then invalid_arg "As_graph.build: tier1 >= 2";
  if spec.domains <= spec.tier1 then
    invalid_arg "As_graph.build: domains > tier1";
  if spec.domains > 16384 then invalid_arg "As_graph.build: domains <= 16384";
  if spec.multihome < 1 then invalid_arg "As_graph.build: multihome >= 1";
  let n = spec.domains in
  let providers = Array.make n [] in
  let customers = Array.make n [] in
  let peers = Array.make n [] in
  let deg = Array.make n 0 in
  let edges = ref [] in
  let connect ?(bw = spec.uplink_bw) a b =
    edges := (a, b, bw) :: !edges;
    deg.(a) <- deg.(a) + 1;
    deg.(b) <- deg.(b) + 1
  in
  (* Tier-1 clique: mutual peers, the only domains without providers. *)
  for i = 0 to spec.tier1 - 1 do
    for j = i + 1 to spec.tier1 - 1 do
      peers.(i) <- j :: peers.(i);
      peers.(j) <- i :: peers.(j);
      connect ~bw:spec.core_bw i j
    done
  done;
  (* Preferential attachment: each new domain buys transit from [multihome]
     distinct existing domains chosen with probability proportional to
     degree + 1 — the rich get richer, yielding a power-law degree tail. *)
  for d = spec.tier1 to n - 1 do
    let m = Int.min spec.multihome d in
    let chosen = ref [] in
    while List.length !chosen < m do
      let total = ref 0 in
      for c = 0 to d - 1 do
        if not (List.mem c !chosen) then total := !total + deg.(c) + 1
      done;
      let r = ref (Rng.int rng !total) in
      let pick = ref (-1) in
      (try
         for c = 0 to d - 1 do
           if not (List.mem c !chosen) then begin
             r := !r - (deg.(c) + 1);
             if !r < 0 then begin
               pick := c;
               raise Exit
             end
           end
         done
       with Exit -> ());
      chosen := !pick :: !chosen
    done;
    let provs = List.sort compare !chosen in
    providers.(d) <- provs;
    List.iter
      (fun p ->
        customers.(p) <- d :: customers.(p);
        connect d p)
      provs;
    (* Lateral peering: with probability peer_p, one peer link to a
       uniformly chosen earlier non-tier-1, non-provider domain. The
       bernoulli draw happens for every domain so the stream position —
       hence the rest of the topology — does not depend on the outcome. *)
    if Rng.bernoulli rng ~p:spec.peer_p then begin
      let cands =
        List.filter
          (fun c -> not (List.mem c provs))
          (List.init (Int.max 0 (d - spec.tier1)) (fun i -> spec.tier1 + i))
      in
      match cands with
      | [] -> ()
      | _ ->
        let p = List.nth cands (Rng.int rng (List.length cands)) in
        peers.(d) <- p :: peers.(d);
        peers.(p) <- d :: peers.(p);
        connect d p
    end
  done;
  for d = 0 to n - 1 do
    customers.(d) <- List.sort compare customers.(d);
    peers.(d) <- List.sort compare peers.(d)
  done;
  {
    p_spec = spec;
    p_providers = providers;
    p_customers = customers;
    p_peers = peers;
    p_edges = List.rev !edges;
  }

let materialise ?sim_of_as sim plan =
  let spec = plan.p_spec in
  let n = spec.domains in
  let net = Network.create ?sim_of_as sim in
  let routers =
    Array.init n (fun d ->
        let r =
          Network.add_node net
            ~name:(Printf.sprintf "as%d" d)
            ~addr:(Addr.add (domain_base d) 1)
            ~as_id:d Node.Border_router
        in
        r.Node.advertised <- [ (domain_prefix d, Node.Global) ];
        r)
  in
  List.iter
    (fun (a, b, bw) ->
      ignore
        (Network.connect net routers.(a) routers.(b) ~bandwidth:bw
           ~delay:spec.hop_delay ~queue_capacity:spec.queue_capacity))
    plan.p_edges;
  let providers = plan.p_providers in
  let t =
    {
      net;
      spec;
      routers;
      providers;
      customers = plan.p_customers;
      peers = plan.p_peers;
      host_count = Array.make n 0;
    }
  in
  (* --- valley-free FIB installation (Gao–Rexford export rules) ---------
     Per destination d, BFS up the provider DAG from d: every ancestor v
     learns a customer route to d through the child it was first reached
     from (shortest, lowest-id tie-break). That pass also yields v's
     customer cone. Peer routes: v reaches the cone of each peer p in one
     lateral hop (p only exports customer routes to peers). Everything
     else defaults to the primary provider, which is always a valid
     provider route because every domain sits in some tier-1's cone and
     the tier-1 clique is fully meshed. *)
  let port_between a b =
    match Node.port_to routers.(a) ~peer_id:routers.(b).Node.id with
    | Some p -> p
    | None -> assert false
  in
  let in_cone = Array.init n (fun _ -> Bytes.make n '\000') in
  let cone = Array.make n [] in
  for d = 0 to n - 1 do
    let via = Array.make n (-1) in
    let q = Queue.create () in
    via.(d) <- d;
    Queue.push d q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun p ->
          if via.(p) < 0 then begin
            via.(p) <- u;
            Queue.push p q
          end)
        providers.(u)
    done;
    for v = 0 to n - 1 do
      if v <> d && via.(v) >= 0 then begin
        Bytes.set in_cone.(v) d '\001';
        cone.(v) <- d :: cone.(v);
        Lpm.insert routers.(v).Node.fib (domain_prefix d)
          (port_between v via.(v))
      end
    done
  done;
  for v = 0 to n - 1 do
    (* Customer beats peer: only cone gaps get lateral entries, and the
       lowest-id peer wins ties (peers are sorted). *)
    List.iter
      (fun p ->
        let port = port_between v p in
        List.iter
          (fun d ->
            if
              Bytes.get in_cone.(v) d = '\000'
              && Lpm.exact routers.(v).Node.fib (domain_prefix d) = None
            then Lpm.insert routers.(v).Node.fib (domain_prefix d) port)
          (p :: cone.(p)))
      t.peers.(v);
    match t.providers.(v) with
    | [] -> ()  (* tier-1: explicit routes cover the whole Internet *)
    | primary :: _ ->
      Lpm.insert routers.(v).Node.fib
        (Addr.prefix (Addr.of_octets 0 0 0 0) 0)
        (port_between v primary)
  done;
  t

let build sim rng spec = materialise sim (plan rng spec)

(* --- domain -> shard partitioner ------------------------------------------ *)

(* Weight-balanced region growing over the relationship graph, followed by
   a boundary-refinement pass — a deterministic min-cut-aware heuristic in
   the spirit of multi-seed BFS partitioning. Seeds are the heaviest
   domains (ties to the lowest id), regions grow by always extending the
   lightest shard from its BFS frontier (keeping each shard a connected,
   low-cut blob), and refinement then moves boundary domains to the shard
   owning most of their neighbors when that strictly reduces the edge cut
   without unbalancing the loads. Pure function of (plan, weights). *)
let partition plan ~shards ~weight =
  if shards < 1 then
    invalid_arg
      (Printf.sprintf "As_graph.partition: shards must be >= 1 (got %d)"
         shards);
  let n = plan.p_spec.domains in
  let assign = Array.make n 0 in
  if shards = 1 then assign
  else begin
    let k = Int.min shards n in
    let w =
      Array.init n (fun d ->
          let x = weight d in
          if Float.is_nan x || x < 0. then
            invalid_arg "As_graph.partition: weights must be >= 0";
          x)
    in
    let nbrs d =
      plan.p_providers.(d) @ plan.p_peers.(d) @ plan.p_customers.(d)
    in
    Array.fill assign 0 n (-1);
    (* Seeds: the k heaviest domains, lowest id on ties. *)
    let order = Array.init n (fun d -> d) in
    Array.sort
      (fun a b ->
        let c = Float.compare w.(b) w.(a) in
        if c <> 0 then c else compare a b)
      order;
    let load = Array.make k 0. in
    let counts = Array.make k 0 in
    let frontiers = Array.init k (fun _ -> Queue.create ()) in
    let assigned = ref 0 in
    let take s d =
      assign.(d) <- s;
      load.(s) <- load.(s) +. w.(d);
      counts.(s) <- counts.(s) + 1;
      incr assigned;
      List.iter
        (fun p -> if assign.(p) < 0 then Queue.push p frontiers.(s))
        (nbrs d)
    in
    for s = 0 to k - 1 do
      take s order.(s)
    done;
    (* Always grow the lightest shard; frontier entries may have been
       claimed meanwhile, so pop until a free domain appears. A shard with
       an exhausted frontier jumps to the lowest-id unassigned domain
       (disconnected leftovers). *)
    let next_free = ref 0 in
    while !assigned < n do
      let s = ref 0 in
      for c = 1 to k - 1 do
        if load.(c) < load.(!s) then s := c
      done;
      let s = !s in
      let rec pop () =
        match Queue.take_opt frontiers.(s) with
        | Some d when assign.(d) >= 0 -> pop ()
        | other -> other
      in
      match pop () with
      | Some d -> take s d
      | None ->
        while !next_free < n && assign.(!next_free) >= 0 do
          incr next_free
        done;
        if !next_free < n then take s !next_free
    done;
    (* Refinement: 2 sweeps in id order. *)
    let target = Array.fold_left ( +. ) 0. w /. float_of_int k in
    let cap = Float.max (target *. 1.15) (target +. 1e-9) in
    for _pass = 1 to 2 do
      for d = 0 to n - 1 do
        let cur = assign.(d) in
        let links = Array.make k 0 in
        List.iter (fun p -> links.(assign.(p)) <- links.(assign.(p)) + 1)
          (nbrs d);
        let best = ref cur in
        for c = 0 to k - 1 do
          if links.(c) > links.(!best) then best := c
        done;
        let best = !best in
        if
          best <> cur
          && links.(best) > links.(cur)
          && counts.(cur) > 1
          && load.(best) +. w.(d) <= cap
        then begin
          assign.(d) <- best;
          load.(cur) <- load.(cur) -. w.(d);
          load.(best) <- load.(best) +. w.(d);
          counts.(cur) <- counts.(cur) - 1;
          counts.(best) <- counts.(best) + 1
        end
      done
    done;
    assign
  end

let plan_spec plan = plan.p_spec

(* --- path inspection ------------------------------------------------------ *)

let route t ~src ~dst =
  let dst_addr = t.routers.(dst).Node.addr in
  let rec walk node acc steps =
    if steps > 64 then None
    else if node == t.routers.(dst) then Some (List.rev (dst :: acc))
    else
      match Lpm.lookup node.Node.fib dst_addr with
      | None -> None
      | Some port ->
        let next = Network.node t.net port.Node.peer_id in
        walk next (node.Node.as_id :: acc) (steps + 1)
  in
  if src = dst then Some [ src ] else walk t.routers.(src) [] 0

let relationship t a b =
  if List.mem b t.providers.(a) then `Up
  else if List.mem b t.customers.(a) then `Down
  else if List.mem b t.peers.(a) then `Peer
  else `None

let valley_free t path =
  let rec check phase = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> (
      match (relationship t a b, phase) with
      | `Up, `Climbing -> check `Climbing rest
      | `Peer, `Climbing -> check `Descending rest
      | `Down, (`Climbing | `Descending) -> check `Descending rest
      | (`Up | `Peer), `Descending | `None, _ -> false)
  in
  check `Climbing path

(* --- hosts and pools ------------------------------------------------------ *)

let next_infra_addr t ~domain =
  let k = t.host_count.(domain) in
  t.host_count.(domain) <- k + 1;
  Addr.add (domain_base domain) (10 + k)

let attach_behind t ~domain ~name node_kind addr =
  let r = t.routers.(domain) in
  let h = Network.add_node t.net ~name ~addr ~as_id:domain node_kind in
  h.Node.advertised <- [ (Addr.host_prefix addr, Node.As_local) ];
  ignore
    (Network.connect t.net r h ~bandwidth:t.spec.access_bw
       ~delay:t.spec.access_delay ~queue_capacity:t.spec.queue_capacity);
  (match Node.port_to h ~peer_id:r.Node.id with
  | Some port ->
    Lpm.insert h.Node.fib (Addr.prefix (Addr.of_octets 0 0 0 0) 0) port
  | None -> assert false);
  h

let attach_host t ~domain =
  let addr = next_infra_addr t ~domain in
  let h =
    attach_behind t ~domain
      ~name:(Printf.sprintf "h%d_%d" domain (t.host_count.(domain) - 1))
      Node.Host addr
  in
  (match Node.port_to t.routers.(domain) ~peer_id:h.Node.id with
  | Some port -> Lpm.insert t.routers.(domain).Node.fib (Addr.host_prefix addr) port
  | None -> assert false);
  h

let attach_pool t ~domain ~range =
  if not (Addr.prefix_mem (domain_prefix domain) range.Addr.base) then
    invalid_arg "As_graph.attach_pool: range outside the domain prefix";
  let addr = next_infra_addr t ~domain in
  let p =
    attach_behind t ~domain
      ~name:(Printf.sprintf "pool%d_%d" domain (t.host_count.(domain) - 1))
      Node.Host addr
  in
  (match Node.port_to t.routers.(domain) ~peer_id:p.Node.id with
  | Some port -> Lpm.insert t.routers.(domain).Node.fib range port
  | None -> assert false);
  p

(* --- AITF deployment ------------------------------------------------------ *)

type deployed = { graph : t; gateways : Gateway.t array }

let deploy ?placement ?contract
    ?(policies = fun (_ : int) -> Policy.Cooperative) ~config ~rng t =
  let gateways =
    Array.mapi
      (fun d r ->
        let upstream =
          match t.providers.(d) with
          | [] -> None
          | primary :: _ -> Some t.routers.(primary).Node.addr
        in
        Gateway.create ~policy:(policies d) ?upstream ?placement
          ~clients:[ domain_prefix d ]
          ~config ~rng:(Rng.split rng) t.net r)
      t.routers
  in
  (* Provider-side R1/R2 contracts on every provider->customer edge: each
     customer AS gets the contracted request and counter-request rates at
     its providers instead of the config defaults. *)
  (match contract with
  | None -> ()
  | Some c ->
    Array.iteri
      (fun d gw ->
        List.iter
          (fun cust ->
            Contract.apply_provider_side gw
              ~client:t.routers.(cust).Node.addr c)
          t.customers.(d))
      gateways);
  { graph = t; gateways }
