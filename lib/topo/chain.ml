module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_core

type spec = {
  depth : int;
  tail_bw : float;
  attacker_tail_bw : float;
  core_bw : float;
  access_delay : float;
  hop_delay : float;
  queue_capacity : int;
  tail_discipline : Link.discipline;
}

let default_spec =
  {
    depth = 3;
    tail_bw = 10e6;
    attacker_tail_bw = 10e6;
    core_bw = 1e9;
    access_delay = 0.050;
    hop_delay = 0.010;
    queue_capacity = 65536;
    tail_discipline = Link.Drop_tail;
  }

type t = {
  net : Network.t;
  victim : Node.t;
  attacker : Node.t;
  bystander : Node.t;
  victim_gws : Node.t list;
  attacker_gws : Node.t list;
  victim_tail : Link.t;
  victim_tail_up : Link.t;
}

(* One side of the chain: a host behind [depth] gateways. [base] is the
   first address octet (10 for the victim side, 20 for the attacker side);
   AS numbering starts at [as_base] + 1. *)
let build_side net spec ~base ~as_base ~host_octet ~prefix =
  let host_addr = Addr.of_octets base 0 0 host_octet in
  let host =
    Network.add_node net
      ~name:(Printf.sprintf "%s_host" prefix)
      ~addr:host_addr ~as_id:(as_base + 1) Node.Host
  in
  let gws =
    List.init spec.depth (fun i ->
        Network.add_node net
          ~name:(Printf.sprintf "%s_gw%d" prefix (i + 1))
          ~addr:(Addr.of_octets base i 0 1)
          ~as_id:(as_base + 1 + i) Node.Border_router)
  in
  (host, gws)

let build sim spec =
  if spec.depth < 1 then invalid_arg "Chain.build: depth must be >= 1";
  let net = Network.create sim in
  let victim, victim_gws = build_side net spec ~base:10 ~as_base:0 ~host_octet:10 ~prefix:"G" in
  let attacker, attacker_gws =
    build_side net spec ~base:20 ~as_base:100 ~host_octet:66 ~prefix:"B"
  in
  let connect_chain ~tail_bw ~discipline host gws =
    let first = List.hd gws in
    let tail_pair =
      Network.connect ~discipline net first host ~bandwidth:tail_bw
        ~delay:spec.access_delay ~queue_capacity:spec.queue_capacity
    in
    let rec link = function
      | a :: (b :: _ as rest) ->
        ignore
          (Network.connect net a b ~bandwidth:spec.core_bw
             ~delay:spec.hop_delay ~queue_capacity:spec.queue_capacity);
        link rest
      | [ _ ] | [] -> ()
    in
    link gws;
    tail_pair
  in
  let victim_tail, victim_tail_up =
    connect_chain ~tail_bw:spec.tail_bw ~discipline:spec.tail_discipline
      victim victim_gws
  in
  let (_ : Link.t * Link.t) =
    connect_chain ~tail_bw:spec.attacker_tail_bw ~discipline:Link.Drop_tail
      attacker attacker_gws
  in
  let bystander =
    Network.add_node net ~name:"B_bystander" ~addr:(Addr.of_octets 20 0 0 77)
      ~as_id:101 Node.Host
  in
  ignore
    (Network.connect net (List.hd attacker_gws) bystander
       ~bandwidth:spec.attacker_tail_bw ~delay:spec.access_delay
       ~queue_capacity:spec.queue_capacity);
  (* Peering between the two top-level gateways. *)
  let top l = List.nth l (spec.depth - 1) in
  ignore
    (Network.connect net (top victim_gws) (top attacker_gws)
       ~bandwidth:spec.core_bw ~delay:spec.hop_delay
       ~queue_capacity:spec.queue_capacity);
  Network.compute_routes net;
  {
    net;
    victim;
    attacker;
    bystander;
    victim_gws;
    attacker_gws;
    victim_tail;
    victim_tail_up;
  }

type deployed = {
  topo : t;
  victim_agent : Host_agent.Victim.t;
  attacker_agent : Host_agent.Attacker.t;
  victim_gateways : Gateway.t list;
  attacker_gateways : Gateway.t list;
}

let cone ~base ~index =
  (* First gateway speaks only for the enterprise /24; higher ones for the
     whole /8 customer cone. *)
  if index = 0 then [ Addr.prefix (Addr.of_octets base 0 0 0) 24 ]
  else [ Addr.prefix (Addr.of_octets base 0 0 0) 8 ]

let deploy_side ~config ~rng ~policies ~base net gws =
  let n = List.length gws in
  List.mapi
    (fun i (gw : Node.t) ->
      let upstream =
        if i + 1 < n then Some (List.nth gws (i + 1)).Node.addr else None
      in
      let policy =
        match List.nth_opt policies i with Some p -> p | None -> Policy.Cooperative
      in
      Gateway.create ~policy ?upstream ~clients:(cone ~base ~index:i) ~config
        ~rng:(Rng.split rng) net gw)
    gws

let non_cooperating k = List.init k (fun _ -> Policy.Unresponsive)

let deploy ?(attacker_strategy = Policy.Complies) ?(attacker_gw_policies = [])
    ?(victim_td = 0.1) ?(path_source = Host_agent.From_route_record)
    ?victim_filter_capacity ~config ~rng t =
  let victim_config =
    match victim_filter_capacity with
    | None -> config
    | Some c -> { config with Config.filter_capacity = c }
  in
  let victim_gateways =
    List.mapi
      (fun i gw ->
        let cfg = if i = 0 then victim_config else config in
        let upstream =
          match List.nth_opt t.victim_gws (i + 1) with
          | Some up -> Some up.Node.addr
          | None -> None
        in
        Gateway.create ~policy:Policy.Cooperative ?upstream
          ~clients:(cone ~base:10 ~index:i) ~config:cfg ~rng:(Rng.split rng)
          t.net gw)
      t.victim_gws
  in
  let attacker_gateways =
    deploy_side ~config ~rng ~policies:attacker_gw_policies ~base:20 t.net
      t.attacker_gws
  in
  let victim_agent =
    Host_agent.Victim.create ~td:victim_td ~path_source
      ~gateway:(List.hd t.victim_gws).Node.addr ~config t.net t.victim
  in
  let attacker_agent =
    Host_agent.Attacker.create ~strategy:attacker_strategy ~config t.net
      t.attacker
  in
  { topo = t; victim_agent; attacker_agent; victim_gateways; attacker_gateways }
