(** Generated AS-level Internet: power-law domains, Gao–Rexford routing.

    The third topology family, beyond the Figure-1 chain and the regular
    provider hierarchy: a generated graph of thousands of gateway domains
    whose degree sequence follows a power law (preferential attachment
    onto a fully-meshed tier-1 clique) and whose edges carry business
    relationships — {e provider/customer} uplinks and {e peer} links.

    Routing is {e valley-free} (Gao–Rexford): a path climbs customer →
    provider edges, crosses at most one peer link, then descends provider
    → customer edges. FIBs are installed directly by {!build} — one
    explicit entry per customer-cone destination, explicit entries for
    peer cones, and a default route to the primary provider — so tables
    stay small (BGP-style aggregation) and {!Aitf_net.Network.compute_routes}
    must {b not} be called on this topology (it would overwrite the
    policy routes with shortest paths).

    Each domain is one border-router node that doubles as the domain's
    AITF gateway; hosts and fluid source pools attach behind it inside the
    domain's /16. Every structural decision is drawn from the caller's
    {!Aitf_engine.Rng.t}, so the same seed regenerates the same Internet
    bit for bit. See docs/TOPOLOGY.md. *)

open Aitf_net
open Aitf_core

type spec = {
  domains : int;  (** total domains (>= tier1 + 1, <= 16384) *)
  tier1 : int;  (** fully-meshed top-level clique (>= 2) *)
  multihome : int;  (** provider uplinks per non-tier-1 domain (>= 1) *)
  peer_p : float;  (** probability a new domain adds one lateral peer link *)
  core_bw : float;  (** tier-1 mesh bandwidth (bits/s) *)
  uplink_bw : float;  (** provider and peer link bandwidth (bits/s) *)
  access_bw : float;  (** host/pool access bandwidth (bits/s) *)
  hop_delay : float;  (** inter-domain link propagation delay (s) *)
  access_delay : float;  (** host/pool access delay (s) *)
  queue_capacity : int;  (** per-link queue (bytes) *)
}

val default_spec : spec
(** 1000 domains, 4 tier-1s, 2 uplinks each, peer probability 0.15. *)

type t

val build : Aitf_engine.Sim.t -> Aitf_engine.Rng.t -> spec -> t
(** Generate the graph, create one border-router node per domain, connect
    the edges and install the valley-free FIBs. All randomness comes from
    the given rng; equal to [materialise sim (plan rng spec)], draw for
    draw. @raise Invalid_argument on an out-of-range spec. *)

(** {2 Two-phase construction (parallel engine)}

    Sharded runs must know the domain->shard map {e before} links exist
    (each link lives on its transmitter's shard), so generation is split:
    {!plan} makes every RNG draw and records the structure, {!partition}
    maps domains to shards, {!materialise} then builds the network —
    optionally sharded via [?sim_of_as] — without consuming randomness. *)

type plan
(** The generated structure before any network object exists: provider /
    customer / peer relations plus the edge list in creation order. *)

val plan : Aitf_engine.Rng.t -> spec -> plan
(** All of {!build}'s randomness, none of its side effects.
    @raise Invalid_argument on an out-of-range spec. *)

val plan_spec : plan -> spec

val materialise :
  ?sim_of_as:(int -> Aitf_engine.Sim.t) -> Aitf_engine.Sim.t -> plan -> t
(** Build nodes, links and FIBs from a plan. RNG-free, so
    [materialise sim (plan rng spec)] leaves the stream exactly where
    {!build} would. [?sim_of_as] is passed to {!Aitf_net.Network.create}:
    domain [d]'s links and timers land on [sim_of_as d]. *)

val partition : plan -> shards:int -> weight:(int -> float) -> int array
(** A deterministic min-cut-aware domain->shard map: multi-seed BFS
    region growing balanced by [weight] (heaviest domains seed the
    regions; the lightest shard always grows next), then two boundary
    refinement sweeps that move a domain to the shard holding the
    majority of its provider/customer/peer edges when that strictly
    shrinks the cut without exceeding 115% of the balanced load. Returns
    shard ids in [\[0, min shards domains)]. Pure in (plan, weight).
    @raise Invalid_argument if [shards < 1] or a weight is negative or
    NaN. *)

val net : t -> Network.t
val spec : t -> spec
val n_domains : t -> int

val domain_prefix : int -> Addr.prefix
(** The /16 assigned to a domain: domain [d] owns [4.0.0.0 + d·2^16]/16,
    so prefixes never collide with the chain/hierarchy/swarm address
    plans. *)

val router : t -> int -> Node.t
(** The domain's border router (= its AITF gateway node); its address is
    the domain prefix's base + 1. *)

val providers : t -> int -> int list
(** Sorted ascending; empty exactly for tier-1 domains. *)

val customers : t -> int -> int list
val peers : t -> int -> int list
val degree : t -> int -> int
val is_stub : t -> int -> bool
(** No customers — a leaf domain. *)

val route : t -> src:int -> dst:int -> int list option
(** The domain-level path actually taken by a packet from [src]'s router
    to [dst]'s router, endpoints included — a FIB walk, not a recompute.
    [None] when the walk fails (no route, or more than 64 hops). *)

val valley_free : t -> int list -> bool
(** Does this domain path match customer-up* (peer)? provider-down*? *)

val attach_host : t -> domain:int -> Node.t
(** Attach one host behind the domain router (access link, /32 route in
    the router, default route in the host). Addresses are sequential from
    the domain base + 10. *)

val attach_pool : t -> domain:int -> range:Addr.prefix -> Node.t
(** Attach a fluid source-pool node behind the domain router and route
    [range] (which must sit inside the domain prefix) to it, so reverse
    control traffic towards the pool's spoofed sources reaches the pool
    node instead of looping on the default route. *)

type deployed = { graph : t; gateways : Gateway.t array }

val deploy :
  ?placement:Placement.t ->
  ?contract:Contract.t ->
  ?policies:(int -> Policy.gateway_policy) ->
  config:Config.t ->
  rng:Aitf_engine.Rng.t ->
  t ->
  deployed
(** One AITF gateway per domain router. Escalation upstream follows the
    primary (lowest-id) provider; tier-1 gateways have no upstream. The
    customer cone handed to each gateway is its own domain prefix.
    [placement] is passed through to every gateway (the placement seam);
    [contract] applies {!Contract.apply_provider_side} on every
    provider->customer edge, replacing the config's default R1/R2 rates
    with the contracted ones; [policies] assigns per-domain gateway
    policies (default: all cooperative). *)
