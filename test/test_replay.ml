(* Tier-1 coverage for the trace-driven replay workload: the codec
   round-trip property (parse after to_string is the identity, and
   serializing again is byte-identical — the foundation of goldens that
   embed a trace), the synthesizers' seed determinism, the parser's
   rejection surface, and dual-engine run determinism on a tiny trace. *)

module Replay = Aitf_workload.Replay
module Series = Aitf_stats.Series
open Aitf_net

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

(* --- random traces ---------------------------------------------------------- *)

(* Structured generator obeying the grammar's validity rules: unique
   pool ids, n >= 1, finite rates >= 0, non-decreasing event times >= 0,
   join/leave counts >= 1. Floats exercise the shortest-roundtrip
   printer with awkward values (fractions that are exact in binary plus
   arbitrary multiples of irrational-ish steps). *)
let trace_gen =
  let open QCheck.Gen in
  let rate =
    oneof
      [
        map (fun i -> float_of_int i /. 8.) (int_range 0 2_000_000);
        map (fun i -> float_of_int i *. 0.3) (int_range 0 1_000_000);
      ]
  in
  let time = map (fun i -> float_of_int i /. 64.) (int_range 0 4096) in
  let pool j =
    map3
      (fun n r attack ->
        {
          Replay.p_id = Printf.sprintf "p%d" j;
          p_base = Addr.of_octets (32 + (8 * j)) 0 0 0;
          p_n = n;
          p_rate = r;
          p_attack = attack;
        })
      (int_range 1 4096) rate bool
  in
  let action =
    oneof
      [
        return Replay.On;
        return Replay.Off;
        map (fun k -> Replay.Join k) (int_range 1 99);
        map (fun k -> Replay.Leave k) (int_range 1 99);
      ]
  in
  int_range 1 4 >>= fun npools ->
  flatten_l (List.init npools pool) >>= fun pools ->
  int_range 0 12 >>= fun nevents ->
  list_repeat nevents (pair time (pair (int_range 0 (npools - 1)) action))
  >>= fun raw ->
  let times = List.sort Float.compare (List.map fst raw) in
  let events =
    List.map2
      (fun t (_, (j, a)) ->
        { Replay.ev_time = t; ev_pool = Printf.sprintf "p%d" j;
          ev_action = a })
      times raw
  in
  map2
    (fun seed dur ->
      {
        Replay.tr_seed = seed;
        tr_duration = dur +. (1. /. 16.);
        tr_pools = pools;
        tr_events = events;
      })
    (int_range (-5) 10_000) time

let trace_arb = QCheck.make ~print:Replay.to_string trace_gen

let roundtrip_property =
  QCheck.Test.make ~name:"parse after to_string is the identity" ~count:300
    trace_arb (fun t ->
      match Replay.parse (Replay.to_string t) with
      | Ok t' ->
        Replay.equal t t'
        && String.equal (Replay.to_string t) (Replay.to_string t')
      | Error e -> QCheck.Test.fail_reportf "canonical form rejected: %s" e)

(* --- synthesizers ----------------------------------------------------------- *)

let shapes =
  [
    ("pulse", fun seed -> Replay.synth_pulse ~pools:2 ~seed ~duration:12.
                            ~rate:10e6 ~n:16 ());
    ("churn", fun seed -> Replay.synth_churn ~seed ~duration:12. ~rate:10e6
                            ~n:16 ());
    ("booter", fun seed -> Replay.synth_booter ~seed ~duration:12.
                             ~rate:10e6 ~n:16 ());
    ("carpet", fun seed -> Replay.synth_carpet ~seed ~duration:12.
                             ~rate:10e6 ~n:16 ());
  ]

let test_synth_deterministic () =
  List.iter
    (fun (name, synth) ->
      checkb (name ^ ": same seed, same trace") true
        (Replay.equal (synth 3) (synth 3));
      checkb (name ^ ": seed changes the trace") true
        (not (Replay.equal (synth 3) (synth 4)));
      match Replay.parse (Replay.to_string (synth 3)) with
      | Ok t -> checkb (name ^ ": self-describing") true
                  (Replay.equal t (synth 3))
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    shapes

(* --- parser rejections ------------------------------------------------------ *)

let rejects what text =
  match Replay.parse text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("accepted " ^ what)

let test_parse_rejections () =
  rejects "empty input" "";
  rejects "missing header" "pool a base=1.2.3.4 n=1 rate=0.0 attack=true\n";
  rejects "bad duration"
    "aitf-replay/1 seed=1 duration=nan\n";
  rejects "zero duration" "aitf-replay/1 seed=1 duration=0.0\n";
  rejects "bad rate"
    "aitf-replay/1 seed=1 duration=5.0\npool a base=1.2.3.4 n=1 rate=wat attack=true\n";
  rejects "negative n"
    "aitf-replay/1 seed=1 duration=5.0\npool a base=1.2.3.4 n=-2 rate=1.0 attack=true\n";
  rejects "undeclared pool"
    "aitf-replay/1 seed=1 duration=5.0\nat 1.0 ghost on\n";
  rejects "decreasing timestamps"
    "aitf-replay/1 seed=1 duration=5.0\n\
     pool a base=1.2.3.4 n=1 rate=1.0 attack=true\n\
     at 2.0 a on\nat 1.0 a off\n";
  rejects "unknown directive"
    "aitf-replay/1 seed=1 duration=5.0\nfrobnicate 12\n";
  rejects "duplicate pool"
    "aitf-replay/1 seed=1 duration=5.0\n\
     pool a base=1.2.3.4 n=1 rate=1.0 attack=true\n\
     pool a base=1.2.3.8 n=1 rate=1.0 attack=true\n";
  (* comments and blank lines are fine *)
  match
    Replay.parse
      "# a comment\n\naitf-replay/1 seed=1 duration=5.0\n\
       pool a base=1.2.3.4 n=2 rate=1000.0 attack=true\nat 1.0 a on\n"
  with
  | Ok t ->
    checki "pools parsed" 1 (List.length t.Replay.tr_pools);
    checki "events parsed" 1 (List.length t.Replay.tr_events)
  | Error e -> Alcotest.fail e

(* --- running ---------------------------------------------------------------- *)

let tiny =
  match
    Replay.parse
      "aitf-replay/1 seed=2 duration=4.0\n\
       pool a base=32.0.0.0 n=4 rate=2000000.0 attack=true\n\
       at 0.5 a on\nat 3.0 a off\n"
  with
  | Ok t -> t
  | Error e -> failwith e

let run_fingerprint engine =
  let r = Replay.run ~engine tiny in
  ( r.Replay.rr_attack_received_bytes,
    r.Replay.rr_good_received_bytes,
    r.Replay.rr_requests_sent,
    r.Replay.rr_filters,
    r.Replay.rr_events,
    Series.points r.Replay.rr_victim_rate )

let test_run_deterministic () =
  List.iter
    (fun (name, engine) ->
      checkb (name ^ ": same trace, same result") true
        (run_fingerprint engine = run_fingerprint engine))
    [ ("packet", `Packet); ("hybrid", `Hybrid) ]

let test_run_suppresses () =
  (* 8 Mbit/s for 2.5 s on, against the default chain: some bytes get
     through before the filter, far less than offered, and at least one
     filter lands under both engines. *)
  let offered = Replay.offered_bytes tiny ~attack:true in
  checkb "offered positive" true (offered > 0.);
  List.iter
    (fun (name, engine) ->
      let r = Replay.run ~engine tiny in
      checkb (name ^ ": something arrived") true
        (r.Replay.rr_attack_received_bytes > 0.);
      checkb (name ^ ": most of the attack was filtered") true
        (r.Replay.rr_attack_received_bytes < 0.5 *. offered);
      checkb (name ^ ": a filter landed") true (r.Replay.rr_filters > 0))
    [ ("packet", `Packet); ("hybrid", `Hybrid) ]

let test_offered_bytes () =
  (* One pool, 4 sources x 2 Mbit/s each (the trace's rate field is per
     source), on from 0.5 to 3.0: exactly 8 Mbit/s x 2.5 s / 8 bytes. *)
  check (Alcotest.float 1e-6) "analytic integral" 2_500_000.
    (Replay.offered_bytes tiny ~attack:true);
  check (Alcotest.float 1e-6) "no legit pool" 0.
    (Replay.offered_bytes tiny ~attack:false)

let () =
  Alcotest.run "aitf_replay"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest roundtrip_property;
          Alcotest.test_case "parser rejections" `Quick
            test_parse_rejections;
        ] );
      ( "synthesizers",
        [
          Alcotest.test_case "seed determinism" `Quick
            test_synth_deterministic;
        ] );
      ( "running",
        [
          Alcotest.test_case "engine determinism" `Quick
            test_run_deterministic;
          Alcotest.test_case "suppression" `Quick test_run_suppresses;
          Alcotest.test_case "offered bytes" `Quick test_offered_bytes;
        ] );
    ]
