(* Tests for aitf_core: messages, handshake, detection, gateway roles,
   escalation, policing, security and host agents. Protocol-level tests run
   on the Figure-1 chain topology. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Counter = Aitf_stats.Counter
open Aitf_net
open Aitf_filter
open Aitf_core
open Aitf_topo

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

(* --- Message -------------------------------------------------------------- *)

let test_message_packet () =
  let p =
    Message.packet ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2")
      (Message.Verification_query
         { flow = Flow_label.host_pair (addr "3.0.0.3") (addr "2.0.0.2");
           nonce = 42L;
         })
  in
  checki "size" Message.message_size p.Packet.size;
  checki "proto" Message.protocol_number p.Packet.proto;
  checkb "is control" true (Packet.is_control p)

(* --- Config --------------------------------------------------------------- *)

let test_config_defaults () =
  let c = Config.default in
  checkb "Ttmp << T" true (c.Config.t_tmp < c.Config.t_filter /. 10.);
  checkb "paper example rates" true (c.Config.r1 = 100. && c.Config.r2 = 1.);
  checkb "handshake on" true c.Config.handshake

let test_config_timescale () =
  let c = Config.with_timescale Config.default 0.1 in
  checkb "T scaled" true (abs_float (c.Config.t_filter -. 6.0) < 1e-9);
  checkb "Ttmp floored at the RTT bound" true
    (abs_float (c.Config.t_tmp -. 0.5) < 1e-9);
  checkb "handshake timeout untouched" true
    (c.Config.handshake_timeout = Config.default.Config.handshake_timeout);
  checkb "rates unscaled" true (c.Config.r1 = 100.)

(* --- Handshake ------------------------------------------------------------ *)

let flow_av = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2")

let mk_handshake ?(timeout = 1.0) () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  (sim, Handshake.create sim rng ~timeout)

let test_handshake_success () =
  let sim, h = mk_handshake () in
  let result = ref None in
  let nonce = Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> result := Some r) in
  ignore (Sim.at sim 0.5 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  Sim.run sim;
  checkb "verified" true (!result = Some true);
  checki "verified count" 1 (Handshake.verified h);
  checki "no timeouts" 0 (Handshake.timed_out h)

let test_handshake_timeout () =
  let sim, h = mk_handshake ~timeout:1.0 () in
  let result = ref None in
  ignore (Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> result := Some r));
  Sim.run sim;
  checkb "failed" true (!result = Some false);
  checki "timed out" 1 (Handshake.timed_out h)

let test_handshake_wrong_nonce () =
  let sim, h = mk_handshake () in
  let result = ref None in
  let nonce = Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> result := Some r) in
  ignore
    (Sim.at sim 0.5 (fun () ->
         Handshake.handle_reply h ~flow:flow_av ~nonce:(Int64.add nonce 1L)));
  Sim.run sim;
  checkb "timeout wins" true (!result = Some false);
  checki "bogus counted" 1 (Handshake.bogus_replies h)

let test_handshake_wrong_flow () =
  let sim, h = mk_handshake () in
  let result = ref None in
  let nonce = Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> result := Some r) in
  let other = Flow_label.host_pair (addr "9.0.0.9") (addr "2.0.0.2") in
  ignore (Sim.at sim 0.5 (fun () -> Handshake.handle_reply h ~flow:other ~nonce));
  Sim.run sim;
  checkb "rejected" true (!result = Some false);
  checki "bogus counted" 1 (Handshake.bogus_replies h)

let test_handshake_reply_after_timeout_ignored () =
  let sim, h = mk_handshake ~timeout:0.5 () in
  let results = ref [] in
  let nonce =
    Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> results := r :: !results)
  in
  ignore (Sim.at sim 1.0 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  Sim.run sim;
  check (Alcotest.list Alcotest.bool) "only the timeout fired" [ false ] !results

let test_handshake_concurrent_independent () =
  let sim, h = mk_handshake () in
  let r1 = ref None and r2 = ref None in
  let n1 = Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> r1 := Some r) in
  let n2 = Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun r -> r2 := Some r) in
  checkb "nonces differ" true (n1 <> n2);
  checki "both pending" 2 (Handshake.pending h);
  ignore (Sim.at sim 0.2 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce:n2));
  Sim.run sim;
  checkb "second verified" true (!r2 = Some true);
  checkb "first timed out" true (!r1 = Some false)

(* --- Detection ------------------------------------------------------------ *)

let attack_packet ?(src = "1.0.0.1") () =
  Packet.make ~src:(addr src) ~dst:(addr "2.0.0.2") ~size:1000
    (Packet.Data { flow_id = 0; attack = true })

let test_detection_td_delay () =
  let sim = Sim.create () in
  let detections = ref [] in
  let d =
    Detection.create sim ~td:0.5 ~min_report_gap:1.0
      ~on_detect:(fun _ _ -> detections := Sim.now sim :: !detections)
  in
  ignore (Sim.at sim 1.0 (fun () -> Detection.observe d (attack_packet ())));
  Sim.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "fired at t+Td" [ 1.5 ] !detections

let test_detection_no_duplicate_while_pending () =
  let sim = Sim.create () in
  let count = ref 0 in
  let d =
    Detection.create sim ~td:0.5 ~min_report_gap:1.0 ~on_detect:(fun _ _ -> incr count)
  in
  for i = 0 to 4 do
    ignore
      (Sim.at sim (1.0 +. (0.05 *. float_of_int i)) (fun () ->
           Detection.observe d (attack_packet ())))
  done;
  Sim.run sim;
  checki "single detection" 1 !count

let test_detection_instant_redetection () =
  let sim = Sim.create () in
  let times = ref [] in
  let d =
    Detection.create sim ~td:0.5 ~min_report_gap:1.0
      ~on_detect:(fun _ _ -> times := Sim.now sim :: !times)
  in
  ignore (Sim.at sim 1.0 (fun () -> Detection.observe d (attack_packet ())));
  (* reappears at t=10: should fire immediately, not after Td *)
  ignore (Sim.at sim 10.0 (fun () -> Detection.observe d (attack_packet ())));
  Sim.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "instant redetect" [ 1.5; 10.0 ]
    (List.rev !times);
  checki "two detections" 2 (Detection.detections d)

let test_detection_gap_damping () =
  let sim = Sim.create () in
  let count = ref 0 in
  let d =
    Detection.create sim ~td:0.0 ~min_report_gap:2.0 ~on_detect:(fun _ _ -> incr count)
  in
  (* Td = 0: first report fires at once; then reports every >= 2 s. *)
  for i = 0 to 39 do
    ignore
      (Sim.at sim (0.1 *. float_of_int (i + 1)) (fun () ->
           Detection.observe d (attack_packet ())))
  done;
  Sim.run sim;
  (* 4 s of packets with a 2 s damper: roughly 2 reports, certainly < 5. *)
  checkb "damped" true (!count >= 1 && !count < 5)

let test_detection_per_flow_state () =
  let sim = Sim.create () in
  let flows = ref [] in
  let d =
    Detection.create sim ~td:0.1 ~min_report_gap:1.0
      ~on_detect:(fun l _ -> flows := l :: !flows)
  in
  ignore (Sim.at sim 1.0 (fun () -> Detection.observe d (attack_packet ~src:"1.0.0.1" ())));
  ignore (Sim.at sim 1.0 (fun () -> Detection.observe d (attack_packet ~src:"1.0.0.2" ())));
  Sim.run sim;
  checki "two flows detected" 2 (List.length !flows);
  checki "flows seen" 2 (Detection.flows_seen d);
  checkb "known" true
    (Detection.known d (Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2")))

(* --- Protocol on the chain -------------------------------------------------- *)

(* Shrunk timescale so tests run fast: T = 6 s. Ttmp and grace are kept
   above the handshake round trip (~0.2 s on the default chain) because the
   paper requires Ttmp to cover traceback + handshake. *)
let fast_config =
  {
    (Config.with_timescale Config.default 0.1) with
    Config.t_tmp = 0.5;
    grace = 0.3;
    handshake_timeout = 0.5;
    min_report_gap = 0.2;
  }

type rig = {
  sim : Sim.t;
  topo : Chain.t;
  d : Chain.deployed;
  attack : Aitf_workload.Traffic.t;
}

let make_rig ?(config = fast_config) ?(attacker_strategy = Policy.Ignores)
    ?(n_non_coop = 0) ?(path_source = Host_agent.From_route_record)
    ?(victim_td = 0.05) ?(depth = 3) ?(attack_rate = 4e5) ?extra_setup () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let topo = Chain.build sim { Chain.default_spec with depth } in
  (match extra_setup with Some f -> f topo | None -> ());
  let d =
    Chain.deploy ~attacker_strategy
      ~attacker_gw_policies:(Chain.non_cooperating n_non_coop) ~victim_td
      ~path_source ~config ~rng topo
  in
  let attack =
    Aitf_workload.Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:0.5 ~attack:true ~flow_id:1 ~rate:attack_rate
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  { sim; topo; d; attack }

let victim_gw r = List.hd r.d.Chain.victim_gateways
let attacker_gw r i = List.nth r.d.Chain.attacker_gateways i
let gw_counter gw name = Counter.get (Gateway.counters gw) name

let test_protocol_basic_block () =
  let r = make_rig () in
  Sim.run ~until:3.0 r.sim;
  (* Victim detected, requested; victim gw temp-filtered and propagated;
     attacker gw installed the long filter. *)
  checkb "victim sent request" true
    (Host_agent.Victim.requests_sent r.d.Chain.victim_agent >= 1);
  checkb "victim gw handled request" true
    (gw_counter (victim_gw r) "req-victim-role" >= 1);
  checki "propagated exactly once" 1 (gw_counter (victim_gw r) "req-propagated");
  checki "attacker gw long filter" 1 (gw_counter (attacker_gw r 0) "filter-long");
  checki "handshake ok" 1 (gw_counter (attacker_gw r 0) "handshake-ok");
  (* The flow is actually dead at the victim: no packets in the last second. *)
  let meter = Host_agent.Victim.attack_meter r.d.Chain.victim_agent in
  checkb "flow suppressed" true
    (Aitf_stats.Rate_meter.rate meter ~now:(Sim.now r.sim) = 0.)

let test_protocol_temp_filter_expires () =
  let r = make_rig () in
  Sim.run ~until:3.0 r.sim;
  (* Ttmp long past: the victim gateway's hardware table must be empty while
     the attacker gateway still holds its T filter. *)
  checki "victim gw empty" 0 (Filter_table.occupancy (Gateway.filters (victim_gw r)));
  checki "victim gw peak was 1" 1
    (Filter_table.peak_occupancy (Gateway.filters (victim_gw r)));
  checki "attacker gw holds" 1
    (Filter_table.occupancy (Gateway.filters (attacker_gw r 0)))

let test_protocol_attacker_complies () =
  let r = make_rig ~attacker_strategy:Policy.Complies () in
  Sim.run ~until:3.0 r.sim;
  checkb "attacker got request" true
    (Host_agent.Attacker.requests_received r.d.Chain.attacker_agent >= 1);
  checkb "flow stopped at source" true
    (Host_agent.Attacker.flows_stopped r.d.Chain.attacker_agent >= 1);
  checkb "host filter installed" true
    (Filter_table.occupancy (Host_agent.Attacker.filters r.d.Chain.attacker_agent)
    = 1);
  checkb "gated at source" true
    (Aitf_workload.Traffic.gated_packets r.attack > 0)

let test_protocol_escalation_unresponsive_gw () =
  let r =
    make_rig ~n_non_coop:1
      ~attacker_strategy:(Policy.On_off { off_time = 0.15 }) ()
  in
  Sim.run ~until:3.0 r.sim;
  checkb "B_gw1 ignored" true (gw_counter (attacker_gw r 0) "ignored-unresponsive" >= 1);
  checkb "victim gw escalated" true (gw_counter (victim_gw r) "escalated" >= 1);
  (* Round 2: the second gateway ends up filtering. *)
  checkb "B_gw2 filters" true (gw_counter (attacker_gw r 1) "filter-long" >= 1);
  let g_gw2 = List.nth r.d.Chain.victim_gateways 1 in
  checkb "G_gw2 played victim gw" true (gw_counter g_gw2 "req-victim-role" >= 1)

let test_protocol_terminal_when_all_unresponsive () =
  let r = make_rig ~n_non_coop:3 ~attacker_strategy:Policy.Ignores () in
  Sim.run ~until:6.0 r.sim;
  let top = List.nth r.d.Chain.victim_gateways 2 in
  (* The top victim-side gateway ends up holding a long filter itself. *)
  checkb "terminal filtering at G_gw3" true
    (gw_counter top "filter-long-self" >= 1 || gw_counter top "terminal-filter" >= 1);
  let meter = Host_agent.Victim.attack_meter r.d.Chain.victim_agent in
  checkb "flow still suppressed" true
    (Aitf_stats.Rate_meter.rate meter ~now:(Sim.now r.sim) = 0.)

let test_protocol_disconnection () =
  let config = { fast_config with Config.disconnect = true } in
  let r = make_rig ~config ~attacker_strategy:Policy.Ignores () in
  Sim.run ~until:4.0 r.sim;
  (* The ignoring attacker keeps hitting B_gw1's filter past the grace
     period and gets blocklisted. *)
  checki "disconnected" 1 (gw_counter (attacker_gw r 0) "disconnect-host");
  checkb "blocklisted" true
    (Gateway.blocklisted (attacker_gw r 0) r.topo.Chain.attacker.Node.addr)

let test_protocol_bystander_survives_disconnection () =
  let config = { fast_config with Config.disconnect = true } in
  let got_bystander = ref 0 in
  let r = make_rig ~config ~attacker_strategy:Policy.Ignores () in
  r.topo.Chain.victim.Node.local_deliver <-
    (let prev = r.topo.Chain.victim.Node.local_deliver in
     fun n (pkt : Packet.t) ->
       (match pkt.Packet.payload with
       | Packet.Data { flow_id = 9; _ } -> incr got_bystander
       | _ -> ());
       prev n pkt);
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0. ~flow_id:9 ~rate:1e5
      ~dst:r.topo.Chain.victim.Node.addr r.topo.Chain.net
      r.topo.Chain.bystander
  in
  Sim.run ~until:4.0 r.sim;
  checkb "bystander traffic still flows" true (!got_bystander > 20)

let test_protocol_handshake_blocks_forgery () =
  (* Forged request from an off-path node M asking B_gw1 to block the
     legitimate B_host -> G_host flow. With the handshake on, G_host never
     confirms, so the filter must NOT be installed. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let topo = Chain.build sim Chain.default_spec in
  (* M: another host inside B_net, so its request even passes cone checks. *)
  let m =
    Network.add_node topo.Chain.net ~name:"M" ~addr:(addr "20.0.0.99") ~as_id:101
      Node.Host
  in
  ignore
    (Network.connect topo.Chain.net (List.hd topo.Chain.attacker_gws) m
       ~bandwidth:1e7 ~delay:0.01);
  Network.compute_routes topo.Chain.net;
  let d =
    Chain.deploy ~attacker_strategy:Policy.Complies ~config:fast_config ~rng
      topo
  in
  (* Legitimate (non-attack) flow B_host -> G_host. *)
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0. ~flow_id:3 ~rate:1e5
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  let flow =
    Flow_label.host_pair topo.Chain.attacker.Node.addr
      topo.Chain.victim.Node.addr
  in
  let forged =
    {
      Message.flow;
      target = Message.To_attacker_gateway;
      duration = 6.0;
      path = [ (List.hd topo.Chain.attacker_gws).Node.addr ];
      hops = 0;
      requestor = m.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  ignore
    (Sim.at sim 1.0 (fun () ->
         Network.originate topo.Chain.net m
           (Message.packet ~src:m.Node.addr
              ~dst:(List.hd topo.Chain.attacker_gws).Node.addr
              (Message.Filtering_request forged))));
  Sim.run ~until:4.0 sim;
  let bgw1 = List.hd d.Chain.attacker_gateways in
  checki "verification failed" 1 (Counter.get (Gateway.counters bgw1) "handshake-fail");
  checki "no filter installed" 0 (Filter_table.occupancy (Gateway.filters bgw1));
  checkb "legit flow unharmed" true
    (Host_agent.Victim.good_bytes d.Chain.victim_agent > 30_000.)

let test_protocol_forgery_succeeds_without_handshake () =
  (* Same forgery with the handshake disabled: the filter IS installed and
     the legitimate flow dies — demonstrating why the handshake exists. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let topo = Chain.build sim Chain.default_spec in
  let m =
    Network.add_node topo.Chain.net ~name:"M" ~addr:(addr "20.0.0.99") ~as_id:101
      Node.Host
  in
  ignore
    (Network.connect topo.Chain.net (List.hd topo.Chain.attacker_gws) m
       ~bandwidth:1e7 ~delay:0.01);
  Network.compute_routes topo.Chain.net;
  let config = { fast_config with Config.handshake = false } in
  let d = Chain.deploy ~attacker_strategy:Policy.Complies ~config ~rng topo in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0. ~flow_id:3 ~rate:1e5
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  let flow =
    Flow_label.host_pair topo.Chain.attacker.Node.addr
      topo.Chain.victim.Node.addr
  in
  ignore
    (Sim.at sim 1.0 (fun () ->
         Network.originate topo.Chain.net m
           (Message.packet ~src:m.Node.addr
              ~dst:(List.hd topo.Chain.attacker_gws).Node.addr
              (Message.Filtering_request
                 {
                   Message.flow;
                   target = Message.To_attacker_gateway;
                   duration = 6.0;
                   path = [ (List.hd topo.Chain.attacker_gws).Node.addr ];
                   hops = 0;
                   requestor = m.Node.addr;
                   corr = 0;
                   auth = 0L;
                 }))));
  Sim.run ~until:4.0 sim;
  let bgw1 = List.hd d.Chain.attacker_gateways in
  checki "filter installed" 1 (Filter_table.occupancy (Gateway.filters bgw1));
  (* ~1 s of traffic got through before the forgery landed; then silence. *)
  let received = Host_agent.Victim.good_bytes d.Chain.victim_agent in
  checkb "legit flow mostly killed" true (received < 20_000.)

let test_protocol_policing_r1 () =
  (* A victim self-polices at R1; the gateway also polices. Set R1 = 2/s
     with burst 2 and let the victim detect 10 distinct flows at once. *)
  let config = { fast_config with Config.r1 = 2.0; r1_burst = 2.0 } in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:9 in
  let topo = Chain.build sim Chain.default_spec in
  let d = Chain.deploy ~victim_td:0.01 ~config ~rng topo in
  (* 10 attack flows with distinct spoofed sources from the attacker. *)
  for i = 0 to 9 do
    ignore
      (Aitf_workload.Traffic.cbr
         ~spoof:(fun () -> Some (Addr.add (addr "20.0.0.100") i))
         ~start:0.5 ~attack:true ~flow_id:(100 + i) ~rate:2e5
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker)
  done;
  Sim.run ~until:1.2 sim;
  let v = d.Chain.victim_agent in
  let sent = Host_agent.Victim.requests_sent v in
  let suppressed = Host_agent.Victim.requests_suppressed v in
  checkb "self-policed" true (suppressed > 0);
  (* burst 2 + ~0.7 s at 2/s -> at most 4 sends *)
  checkb "rate respected" true (sent <= 4);
  checki "all ten flows detected eventually" 10
    (Host_agent.Victim.attack_flows_seen v)

let test_protocol_gateway_polices_remote_requests () =
  (* Requests from a remote gateway above the configured remote rate are
     dropped indiscriminately. *)
  let config =
    { fast_config with Config.remote_rate = 2.0; remote_burst = 2.0 }
  in
  let r = make_rig ~config () in
  let bgw1 = attacker_gw r 0 in
  (* Fire 10 distinct forged-looking requests from G_gw1's address via the
     driver below; easier: call the driver from the victim gateway node. *)
  let vgw_node = List.hd r.topo.Chain.victim_gws in
  let mk i =
    {
      Message.flow =
        Flow_label.host_pair (Addr.add (addr "20.0.0.200") i)
          r.topo.Chain.victim.Node.addr;
      target = Message.To_attacker_gateway;
      duration = 6.0;
      path = [ (List.hd r.topo.Chain.attacker_gws).Node.addr ];
      hops = 0;
      requestor = vgw_node.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  ignore
    (Sim.at r.sim 0.1 (fun () ->
         for i = 0 to 9 do
           Network.originate r.topo.Chain.net vgw_node
             (Message.packet ~src:vgw_node.Node.addr
                ~dst:(List.hd r.topo.Chain.attacker_gws).Node.addr
                (Message.Filtering_request (mk i)))
         done));
  Sim.run ~until:0.4 r.sim;
  checkb "policed" true (gw_counter bgw1 "req-policed" >= 8)

let test_protocol_invalid_requestor_rejected () =
  (* A request whose requestor is outside the gateway's customer cone must
     be dropped in the victim-gateway role. *)
  let r = make_rig () in
  let outsider = r.topo.Chain.attacker in
  let vgw_node = List.hd r.topo.Chain.victim_gws in
  ignore
    (Sim.at r.sim 0.1 (fun () ->
         Network.originate r.topo.Chain.net outsider
           (Message.packet ~src:outsider.Node.addr ~dst:vgw_node.Node.addr
              (Message.Filtering_request
                 {
                   Message.flow =
                     Flow_label.host_pair (addr "9.9.9.9")
                       r.topo.Chain.victim.Node.addr;
                   target = Message.To_victim_gateway;
                   duration = 6.0;
                   path = [];
                   hops = 0;
                   requestor = outsider.Node.addr;
                   corr = 0;
                   auth = 0L;
                 }))));
  Sim.run ~until:0.4 r.sim;
  checki "rejected as invalid" 1 (gw_counter (victim_gw r) "req-invalid")

let test_protocol_not_on_path_rejected () =
  (* An attacker-gateway request whose path does not include the gateway
     and whose flow source is foreign must be refused. *)
  let r = make_rig () in
  let bgw1 = attacker_gw r 0 in
  let vgw_node = List.hd r.topo.Chain.victim_gws in
  ignore
    (Sim.at r.sim 0.1 (fun () ->
         Network.originate r.topo.Chain.net vgw_node
           (Message.packet ~src:vgw_node.Node.addr
              ~dst:(List.hd r.topo.Chain.attacker_gws).Node.addr
              (Message.Filtering_request
                 {
                   Message.flow =
                     Flow_label.host_pair (addr "99.0.0.1")
                       r.topo.Chain.victim.Node.addr;
                   target = Message.To_attacker_gateway;
                   duration = 6.0;
                   path = [ addr "88.0.0.1" ];
                   hops = 0;
                   requestor = vgw_node.Node.addr;
                   corr = 0;
                   auth = 0L;
                 }))));
  Sim.run ~until:0.4 r.sim;
  checki "refused" 1 (gw_counter bgw1 "req-not-on-path")

let test_protocol_duplicate_requests_coalesce () =
  let r = make_rig () in
  Sim.run ~until:3.0 r.sim;
  (* The victim keeps leaking packets during the first Td+Tr window and
     min_report_gap is small, so several requests go out; the gateway must
     treat the repeats as duplicates, not open new rounds. *)
  let dup = gw_counter (victim_gw r) "req-duplicate" in
  let prop = gw_counter (victim_gw r) "req-propagated" in
  checkb "at most one propagation per round" true (prop <= 2);
  checkb "repeats counted as duplicates" true
    (dup >= Host_agent.Victim.requests_sent r.d.Chain.victim_agent - prop)

let test_protocol_client_policer_r2 () =
  (* The attacker's gateway may only bother its client at R2: with R2 tiny
     and repeated fresh requests for distinct flows from the same client,
     propagations to the client are capped. *)
  let config = { fast_config with Config.r2 = 1.0; r2_burst = 1.0 } in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let topo = Chain.build sim Chain.default_spec in
  let d = Chain.deploy ~victim_td:0.01 ~config ~rng topo in
  (* 5 distinct attack flows, all genuinely from B_host (distinct dst
     protos make distinct labels? different dst only possible toward other
     victims; use spoofed distinct sources from B_host instead -> the
     client policer keys on the label's src, so spoofs dodge it. Instead:
     same src, distinct protocols are not modelled by Traffic; so approximate
     with 5 spoofed sources inside B_net sharing one "client" is not
     possible. Use 5 real flows from B_host to 5 victim-side targets is not
     available either (one victim host). Drive the gateway directly. *)
  let bgw1 = List.hd d.Chain.attacker_gateways in
  let vgw_node = List.hd topo.Chain.victim_gws in
  Gateway.set_contract bgw1 ~peer:vgw_node.Node.addr ~rate:1000. ~burst:1000.;
  let mk i =
    {
      Message.flow =
        {
          (Flow_label.host_pair topo.Chain.attacker.Node.addr
             topo.Chain.victim.Node.addr)
          with
          Flow_label.proto = Some i;
        };
      target = Message.To_attacker_gateway;
      duration = 6.0;
      path = [ (List.hd topo.Chain.attacker_gws).Node.addr ];
      hops = 0;
      requestor = vgw_node.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  let (_ : Aitf_workload.Request_driver.t) =
    Aitf_workload.Request_driver.create ~start:0.1 ~stop:0.7 ~rate:10.
      ~dst:(List.hd topo.Chain.attacker_gws).Node.addr ~make_request:mk
      topo.Chain.net vgw_node
  in
  (* The victim must confirm handshakes for these synthetic flows. *)
  let victim_node = topo.Chain.victim in
  let prev = victim_node.Node.local_deliver in
  victim_node.Node.local_deliver <-
    (fun n (pkt : Packet.t) ->
      match pkt.Packet.payload with
      | Message.Verification_query { flow; nonce } ->
        Network.originate topo.Chain.net victim_node
          (Message.packet ~src:victim_node.Node.addr ~dst:pkt.Packet.src
             (Message.Verification_reply { flow; nonce }))
      | _ -> prev n pkt);
  Sim.run ~until:3.0 sim;
  let c = Gateway.counters bgw1 in
  checkb "filters installed for all" true (Counter.get c "filter-long" >= 5);
  checkb "client spared" true (Counter.get c "req-policed-client" >= 3);
  checkb "client contacted at most burst+rate*time" true
    (Counter.get c "req-to-attacker" <= 2)

let test_protocol_filter_capacity_exhaustion () =
  (* Victim gateway with a single filter slot: the second simultaneous flow
     cannot get a temporary filter; the counter must record it and the
     propagation still happen. *)
  let r =
    make_rig
      ~extra_setup:(fun _ -> ())
      ()
  in
  ignore r;
  let sim = Sim.create () in
  let rng = Rng.create ~seed:11 in
  let topo = Chain.build sim Chain.default_spec in
  let d =
    Chain.deploy ~victim_td:0.01 ~victim_filter_capacity:1 ~config:fast_config
      ~rng topo
  in
  for i = 0 to 2 do
    ignore
      (Aitf_workload.Traffic.cbr
         ~spoof:(fun () -> Some (Addr.add (addr "20.0.0.150") i))
         ~start:0.2 ~attack:true ~flow_id:(200 + i) ~rate:2e5
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker)
  done;
  Sim.run ~until:1.0 sim;
  let vgw = List.hd d.Chain.victim_gateways in
  checkb "capacity hit recorded" true
    (Counter.get (Gateway.counters vgw) "filter-full" >= 1);
  checkb "still propagated all" true
    (Counter.get (Gateway.counters vgw) "req-propagated" >= 3)

let test_protocol_spie_traceback_mode () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:13 in
  let topo = Chain.build sim Chain.default_spec in
  let spie = Aitf_traceback.Spie.deploy topo.Chain.net in
  let config = { fast_config with Config.traceback = Config.Spie_query spie } in
  let d =
    Chain.deploy ~victim_td:0.05 ~path_source:Host_agent.Gateway_traceback
      ~config ~rng topo
  in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0.5 ~attack:true ~flow_id:1 ~rate:4e5
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  Sim.run ~until:3.0 sim;
  let vgw = List.hd d.Chain.victim_gateways in
  let bgw1 = List.hd d.Chain.attacker_gateways in
  checkb "traceback ran" true
    (Counter.get (Gateway.counters vgw) "traceback-done" >= 1);
  checkb "attacker gw filtered" true
    (Counter.get (Gateway.counters bgw1) "filter-long" >= 1)

let test_protocol_ppm_path_source () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:17 in
  (* Depth 1: two border routers total, so PPM converges in a handful of
     marked packets. *)
  let topo = Chain.build sim { Chain.default_spec with depth = 1 } in
  let mark_rng = Rng.create ~seed:23 in
  List.iter
    (fun gw -> Aitf_traceback.Ppm.install ~p:0.3 ~rng:mark_rng gw)
    (topo.Chain.victim_gws @ topo.Chain.attacker_gws);
  let collector = Aitf_traceback.Ppm.Collector.create () in
  let d =
    Chain.deploy ~victim_td:0.05 ~path_source:(Host_agent.From_ppm collector)
      ~config:fast_config ~rng topo
  in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0.5 ~attack:true ~flow_id:1 ~rate:8e5
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  Sim.run ~until:4.0 sim;
  let bgw1 = List.hd d.Chain.attacker_gateways in
  checkb "request eventually sent with ppm path" true
    (Host_agent.Victim.requests_sent d.Chain.victim_agent >= 1);
  checkb "attacker gw filtered" true
    (Counter.get (Gateway.counters bgw1) "filter-long" >= 1)

let test_protocol_victim_answers_queries () =
  let r = make_rig () in
  Sim.run ~until:3.0 r.sim;
  checkb "victim answered handshake" true
    (Host_agent.Victim.queries_answered r.d.Chain.victim_agent >= 1)

let test_protocol_onoff_detected_by_shadow () =
  (* Attacker complies briefly then resumes: the shadow cache must catch the
     reappearance without a fresh victim request being required. *)
  let r =
    make_rig ~n_non_coop:1
      ~attacker_strategy:(Policy.On_off { off_time = 0.15 }) ()
  in
  Sim.run ~until:3.0 r.sim;
  checkb "escalated via shadow" true (gw_counter (victim_gw r) "escalated" >= 1)

(* --- Wire codec ------------------------------------------------------------- *)

let sample_request =
  {
    Message.flow =
      Flow_label.v ~proto:6 ~dport:80
        (Flow_label.Net (Addr.prefix_of_string "20.0.0.0/24"))
        (Flow_label.Host (addr "10.0.0.10"));
    target = Message.To_attacker_gateway;
    duration = 60.0;
    path = [ addr "20.0.0.1"; addr "20.1.0.1" ];
    hops = 1;
    requestor = addr "10.0.0.1";
    corr = 7;
    auth = 0L;
  }

let roundtrip payload =
  match Wire.encode payload with
  | Error e -> Alcotest.fail e
  | Ok bytes -> (
    match Wire.decode bytes with
    | Ok p -> (bytes, p)
    | Error e -> Alcotest.failf "decode: %a" Wire.pp_error e)

let test_wire_roundtrip_request () =
  let bytes, p = roundtrip (Message.Filtering_request sample_request) in
  (match p with
  | Message.Filtering_request r ->
    checkb "flow" true (Flow_label.equal r.Message.flow sample_request.Message.flow);
    checkb "target" true (r.Message.target = Message.To_attacker_gateway);
    checkb "duration" true (r.Message.duration = 60.0);
    checki "hops" 1 r.Message.hops;
    checkb "path" true
      (List.for_all2 Addr.equal r.Message.path sample_request.Message.path);
    checkb "requestor" true (Addr.equal r.Message.requestor (addr "10.0.0.1"))
  | _ -> Alcotest.fail "wrong constructor");
  checkb "size prediction" true
    (Wire.encoded_size (Message.Filtering_request sample_request)
    = Some (Bytes.length bytes))

let test_wire_roundtrip_handshake () =
  let flow = Flow_label.host_pair (addr "1.2.3.4") (addr "5.6.7.8") in
  let _, q = roundtrip (Message.Verification_query { flow; nonce = 0x1122334455667788L }) in
  (match q with
  | Message.Verification_query { flow = f; nonce } ->
    checkb "flow" true (Flow_label.equal f flow);
    checkb "nonce" true (nonce = 0x1122334455667788L)
  | _ -> Alcotest.fail "wrong constructor");
  let _, r = roundtrip (Message.Verification_reply { flow; nonce = Int64.minus_one }) in
  match r with
  | Message.Verification_reply { nonce; _ } ->
    checkb "negative nonce survives" true (nonce = Int64.minus_one)
  | _ -> Alcotest.fail "wrong constructor"

let test_wire_rejects_garbage () =
  let ok_bytes =
    match Wire.encode (Message.Filtering_request sample_request) with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  (* Truncations at every length must error, never raise. *)
  for len = 0 to Bytes.length ok_bytes - 1 do
    match Wire.decode (Bytes.sub ok_bytes 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d decoded" len
  done;
  (* Bad version / type / selector tags. *)
  let flip pos v =
    let b = Bytes.copy ok_bytes in
    Bytes.set_uint8 b pos v;
    Wire.decode b
  in
  (match flip 0 9 with
  | Error (Wire.Bad_version 9) -> ()
  | _ -> Alcotest.fail "expected bad version");
  (match flip 1 7 with
  | Error (Wire.Bad_tag ("message-type", 7)) -> ()
  | _ -> Alcotest.fail "expected bad type");
  match flip 2 5 with
  | Error (Wire.Bad_tag ("selector", 5)) -> ()
  | _ -> Alcotest.fail "expected bad selector"

let test_wire_rejects_non_aitf () =
  checkb "data payload refused" true
    (match Wire.encode (Packet.Data { flow_id = 0; attack = false }) with
    | Error _ -> true
    | Ok _ -> false)

let wire_label_gen =
  let open QCheck.Gen in
  let sel =
    frequency
      [
        (1, return Flow_label.Any);
        (3, map (fun i -> Flow_label.Host (Int32.of_int i)) (int_bound 0xFFFF));
        ( 2,
          map2
            (fun i len -> Flow_label.Net (Addr.prefix (Int32.of_int i) len))
            (int_bound 0xFFFF) (int_bound 32) );
      ]
  in
  let qual hi = opt (int_bound hi) in
  map2
    (fun (s, d) (p, (sp, dp)) ->
      { Flow_label.src = s; dst = d; proto = p; sport = sp; dport = dp })
    (pair sel sel)
    (pair (qual 255) (pair (qual 65535) (qual 65535)))

let wire_roundtrip_property =
  let gen =
    QCheck.Gen.(
      map3
        (fun flow (target, hops) (path, (requestor, duration)) ->
          {
            Message.flow;
            target =
              (match target mod 3 with
              | 0 -> Message.To_victim_gateway
              | 1 -> Message.To_attacker_gateway
              | _ -> Message.To_attacker);
            duration = float_of_int duration;
            path = List.map Int32.of_int path;
            hops = hops mod 256;
            requestor = Int32.of_int requestor;
            corr = requestor;
            auth = Int64.of_int requestor;
          })
        wire_label_gen
        (pair small_nat small_nat)
        (pair (list_size (int_bound 10) (int_bound 0xFFFFF))
           (pair (int_bound 0xFFFFF) (int_bound 10_000))))
  in
  QCheck.Test.make ~name:"wire roundtrip for random requests" ~count:300
    (QCheck.make gen)
    (fun req ->
      match Wire.encode (Message.Filtering_request req) with
      | Error _ -> false
      | Ok bytes -> (
        match Wire.decode bytes with
        | Ok (Message.Filtering_request r) ->
          Flow_label.equal r.Message.flow req.Message.flow
          && r.Message.target = req.Message.target
          && r.Message.duration = req.Message.duration
          && r.Message.hops = req.Message.hops
          && Addr.equal r.Message.requestor req.Message.requestor
          && List.length r.Message.path = List.length req.Message.path
          && List.for_all2 Addr.equal r.Message.path req.Message.path
        | _ -> false))

let wire_decode_never_raises =
  QCheck.Test.make ~name:"decode is total on arbitrary bytes" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_bound 80))
    (fun s ->
      match Wire.decode (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

(* --- Ingress/egress filtering ---------------------------------------------- *)

let ingress_rig () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let inside =
    Network.add_node net ~name:"inside" ~addr:(addr "20.0.0.5") ~as_id:1
      Node.Host
  in
  let gw =
    Network.add_node net ~name:"gw" ~addr:(addr "20.0.0.1") ~as_id:1
      Node.Border_router
  in
  let outside =
    Network.add_node net ~name:"outside" ~addr:(addr "30.0.0.5") ~as_id:2
      Node.Host
  in
  ignore (Network.connect net inside gw ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net gw outside ~bandwidth:1e9 ~delay:0.001);
  Network.compute_routes net;
  let guard =
    Ingress.install net gw ~cone:[ Addr.prefix_of_string "20.0.0.0/24" ]
  in
  (sim, net, inside, gw, outside, guard)

let send_via net src ?spoof dst =
  Network.originate net src
    (Packet.make ?spoofed_src:spoof ~src:src.Node.addr ~dst:dst.Node.addr
       ~size:100
       (Packet.Data { flow_id = 0; attack = false }))

let test_ingress_egress_spoof_dropped () =
  let sim, net, inside, gw, outside, guard = ingress_rig () in
  let got = ref 0 in
  outside.Node.local_deliver <- (fun _ _ -> incr got);
  send_via net inside ~spoof:(addr "99.0.0.1") outside;
  Sim.run sim;
  checki "spoofed exit blocked" 0 !got;
  checki "egress drop counted" 1 (Ingress.egress_drops guard);
  checki "node accounting" 1 (Node.drop_count gw "egress-spoof")

let test_ingress_genuine_egress_passes () =
  let sim, net, inside, _, outside, guard = ingress_rig () in
  let got = ref 0 in
  outside.Node.local_deliver <- (fun _ _ -> incr got);
  send_via net inside outside;
  Sim.run sim;
  checki "genuine passes" 1 !got;
  checki "no drops" 0 (Ingress.egress_drops guard)

let test_ingress_outside_claiming_inside_dropped () =
  let sim, net, inside, _, outside, guard = ingress_rig () in
  let got = ref 0 in
  inside.Node.local_deliver <- (fun _ _ -> incr got);
  send_via net outside ~spoof:(addr "20.0.0.9") inside;
  Sim.run sim;
  checki "impersonation blocked" 0 !got;
  checki "ingress drop counted" 1 (Ingress.ingress_drops guard)

let test_ingress_normal_transit_passes () =
  let sim, net, inside, _, outside, guard = ingress_rig () in
  let got = ref 0 in
  inside.Node.local_deliver <- (fun _ _ -> incr got);
  send_via net outside inside;
  Sim.run sim;
  checki "outside-to-inside passes" 1 !got;
  checki "no false positives" 0
    (Ingress.ingress_drops guard + Ingress.egress_drops guard)

let test_ingress_direction_toggles () =
  (* egress-only install must not perform ingress checks. *)
  let sim = Sim.create () in
  let net = Network.create sim in
  let inside = Network.add_node net ~name:"i" ~addr:(addr "20.0.0.5") ~as_id:1 Node.Host in
  let gw = Network.add_node net ~name:"g" ~addr:(addr "20.0.0.1") ~as_id:1 Node.Border_router in
  let outside = Network.add_node net ~name:"o" ~addr:(addr "30.0.0.5") ~as_id:2 Node.Host in
  ignore (Network.connect net inside gw ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net gw outside ~bandwidth:1e9 ~delay:0.001);
  Network.compute_routes net;
  let guard =
    Ingress.install ~ingress:false net gw
      ~cone:[ Addr.prefix_of_string "20.0.0.0/24" ]
  in
  let got = ref 0 in
  inside.Node.local_deliver <- (fun _ _ -> incr got);
  send_via net outside ~spoof:(addr "20.0.0.9") inside;
  Sim.run sim;
  checki "ingress check disabled" 1 !got;
  checki "alias works" 0 (Ingress.spoofed_exits_prevented guard)

(* --- Wildcard aggregation under pressure ------------------------------------- *)

let test_protocol_aggregation_protects_under_pressure () =
  let config =
    {
      fast_config with
      Config.aggregate_on_pressure = true;
      r1 = 1000.;
      r1_burst = 1000.;
    }
  in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:19 in
  let topo = Chain.build sim Chain.default_spec in
  let d =
    Chain.deploy ~victim_td:0.01 ~victim_filter_capacity:2 ~config ~rng topo
  in
  for i = 0 to 7 do
    ignore
      (Aitf_workload.Traffic.cbr
         ~spoof:(fun () -> Some (Addr.add (addr "20.0.3.0") i))
         ~start:0.2 ~attack:true ~flow_id:(400 + i) ~rate:2e5
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker)
  done;
  Sim.run ~until:0.8 sim;
  let vgw = List.hd d.Chain.victim_gateways in
  checkb "aggregate installed" true
    (Counter.get (Gateway.counters vgw) "filter-aggregated" >= 1);
  (* The wildcard must be live and blocking everything to the victim. *)
  let probe =
    Packet.make ~src:(addr "20.0.3.200") ~dst:topo.Chain.victim.Node.addr
      ~size:100
      (Packet.Data { flow_id = 0; attack = true })
  in
  checkb "wildcard blocks unseen sources too" true
    (Filter_table.would_block (Gateway.filters vgw) probe);
  checkb "capacity respected" true
    (Filter_table.occupancy (Gateway.filters vgw) <= 2)

(* --- Contract ----------------------------------------------------------------- *)

let test_contract_provisioning_matches_formulas () =
  let c = Contract.paper_default in
  let p = Contract.provision c ~t_filter:60. ~t_tmp:0.6 in
  checki "Nv" 6000 p.Contract.protected_flows;
  checki "nv" 60 p.Contract.provider_filters;
  checki "mv" 6000 p.Contract.provider_shadow;
  checki "na" 60 p.Contract.client_side_filters

let test_contract_sufficiency () =
  let c = Contract.paper_default in
  checkb "default config suffices for the paper contract" true
    (Contract.sufficient c ~config:Config.default);
  let tiny = { Config.default with Config.filter_capacity = 10 } in
  checkb "10 filters cannot honor R1=100" false
    (Contract.sufficient c ~config:tiny)

let test_contract_validation_and_bursts () =
  checkb "zero rate rejected" true
    (try ignore (Contract.v ~r1:0. ~r2:1. ()); false
     with Invalid_argument _ -> true);
  let c = Contract.v ~r1:0.5 ~r2:0.5 () in
  checkb "burst floored at 1" true
    (c.Contract.r1_burst >= 1. && c.Contract.r2_burst >= 1.)

let test_contract_apply_polices_both_directions () =
  (* Apply a tight contract to one client of a gateway and check both
     policers take effect: R1 on the client's own requests, R2 on requests
     propagated to it. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:9 in
  let topo = Chain.build sim Chain.default_spec in
  let config = { fast_config with Config.r1 = 1000.; r1_burst = 1000. } in
  let d = Chain.deploy ~victim_td:0.01 ~config ~rng topo in
  let vgw = List.hd d.Chain.victim_gateways in
  let tight = Contract.v ~r1:2. ~r1_burst:2. ~r2:1. () in
  Contract.apply_provider_side vgw ~client:topo.Chain.victim.Node.addr tight;
  (* Ten flows detected at once: only ~2 requests admitted under R1=2. *)
  for i = 0 to 9 do
    ignore
      (Aitf_workload.Traffic.cbr
         ~spoof:(fun () -> Some (Addr.add (addr "20.0.4.0") i))
         ~start:0.2 ~attack:true ~flow_id:(500 + i) ~rate:2e5
         ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker)
  done;
  Sim.run ~until:0.8 sim;
  checkb "R1 enforced" true (gw_counter vgw "req-policed" >= 6)

let test_protocol_active_flows_observability () =
  let r = make_rig () in
  (* End the attack at t = 2 so the state can fully drain. *)
  ignore (Sim.at r.sim 2.0 (fun () -> Aitf_workload.Traffic.halt r.attack));
  Sim.run ~until:1.5 r.sim;
  (* Within Ttmp of the request the flow is in the Filtering phase... by
     1.5 s (request ~0.6, Ttmp 0.5) it has moved to monitoring. *)
  (match Gateway.active_flows (victim_gw r) with
  | [ (flow, phase) ] ->
    checkb "right flow" true
      (Flow_label.equal flow
         (Flow_label.host_pair r.topo.Chain.attacker.Node.addr
            r.topo.Chain.victim.Node.addr));
    checkb "monitoring phase" true (phase = "monitoring")
  | l -> Alcotest.failf "expected one flow, got %d" (List.length l));
  Sim.run ~until:10.0 r.sim;
  checki "expired after T" 0 (List.length (Gateway.active_flows (victim_gw r)))

let test_protocol_policer_table_bounded () =
  (* 5000 forged requests with 5000 distinct requestor addresses must not
     allocate 5000 policers; past the bound the forgers share one bucket
     and get collectively policed. *)
  let config =
    { fast_config with Config.remote_rate = 50.; remote_burst = 50. }
  in
  let r = make_rig ~config () in
  let bgw1_node = List.hd r.topo.Chain.attacker_gws in
  let m = r.topo.Chain.attacker in
  for i = 0 to 4999 do
    ignore
      (Sim.at r.sim
         (0.05 +. (1e-4 *. float_of_int i))
         (fun () ->
           Network.originate r.topo.Chain.net m
             (Message.packet ~src:m.Node.addr ~dst:bgw1_node.Node.addr
                (Message.Filtering_request
                   {
                     Message.flow =
                       Flow_label.host_pair (Addr.add (addr "30.0.0.0") i)
                         r.topo.Chain.victim.Node.addr;
                     target = Message.To_attacker_gateway;
                     duration = 6.0;
                     path = [ bgw1_node.Node.addr ];
                     hops = 0;
                     requestor = Addr.add (addr "40.0.0.0") i;
                     corr = 0;
                     auth = 0L;
                   }))))
  done;
  Sim.run ~until:1.5 r.sim;
  let gw = attacker_gw r 0 in
  let c = Gateway.counters gw in
  checkb "tracking bounded" true (Gateway.tracked_requestors gw <= 4096);
  checkb "overflow bucket engaged" true
    (Counter.get c "policer-overflow" > 0);
  checkb "overflow collectively policed" true
    (Counter.get c "req-policed" > 500);
  (* The rig's genuine attack flow is legitimately filtered; none of the
     5000 forged flows may be. *)
  checkb "only the genuine flow filtered" true
    (Filter_table.occupancy (Gateway.filters gw) <= 1);
  checkb "no forged filter" false
    (Filter_table.would_block (Gateway.filters gw)
       (Packet.make ~src:(addr "30.0.0.5") ~dst:r.topo.Chain.victim.Node.addr
          ~size:100
          (Packet.Data { flow_id = 0; attack = true })))

(* --- Legacy host protection ------------------------------------------------------ *)

let legacy_rig () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:15 in
  let net = Network.create sim in
  let legacy =
    Network.add_node net ~name:"legacy" ~addr:(addr "10.0.0.10") ~as_id:1
      Node.Host
  in
  let g_gw =
    Network.add_node net ~name:"g_gw" ~addr:(addr "10.0.0.1") ~as_id:1
      Node.Border_router
  in
  let b_gw =
    Network.add_node net ~name:"b_gw" ~addr:(addr "20.0.0.1") ~as_id:2
      Node.Border_router
  in
  let attacker =
    Network.add_node net ~name:"atk" ~addr:(addr "20.0.0.66") ~as_id:2
      Node.Host
  in
  ignore (Network.connect net legacy g_gw ~bandwidth:1e7 ~delay:0.01);
  ignore (Network.connect net g_gw b_gw ~bandwidth:1e9 ~delay:0.01);
  ignore (Network.connect net b_gw attacker ~bandwidth:1e7 ~delay:0.01);
  Network.compute_routes net;
  let g =
    Gateway.create ~clients:[ Addr.prefix_of_string "10.0.0.0/24" ]
      ~config:fast_config ~rng:(Rng.split rng) net g_gw
  in
  let b =
    Gateway.create ~clients:[ Addr.prefix_of_string "20.0.0.0/24" ]
      ~config:fast_config ~rng:(Rng.split rng) net b_gw
  in
  let protector =
    Legacy.attach ~td:0.05 ~protect:[ Addr.prefix_of_string "10.0.0.0/28" ]
      ~gateway:g net
  in
  (sim, net, legacy, attacker, g, b, protector)

let test_legacy_protection_end_to_end () =
  let sim, net, legacy, attacker, g, b, protector = legacy_rig () in
  (* The legacy host understands nothing: record what it receives. *)
  let data = ref 0 and control = ref 0 in
  legacy.Node.local_deliver <-
    (fun _ (pkt : Packet.t) ->
      match pkt.Packet.payload with
      | Packet.Data _ -> incr data
      | _ -> incr control);
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0.5 ~attack:true ~flow_id:1 ~rate:8e5
      ~dst:legacy.Node.addr net attacker
  in
  Sim.run ~until:4.0 sim;
  checkb "protector detected and requested" true
    (Legacy.requests_sent protector >= 1);
  checki "flow detected once" 1 (Legacy.flows_detected protector);
  checkb "protector answered the handshake" true
    (Legacy.queries_answered protector >= 1);
  checki "attacker-side filter installed" 1
    (Counter.get (Gateway.counters b) "handshake-ok");
  checkb "flow suppressed (leak under 15% of offered)" true
    (float_of_int !data < 0.15 *. (8e5 *. 3.5 /. 8. /. 1000.));
  checki "legacy host saw no protocol messages" 0 !control;
  checkb "victim-side gateway served the request" true
    (Counter.get (Gateway.counters g) "req-victim-role" >= 1)

let test_legacy_ignores_unprotected () =
  let sim, net, _, attacker, _, _, protector = legacy_rig () in
  (* Attack a destination outside the protected /28: the protector must not
     react. *)
  let outside =
    Network.add_node net ~name:"other" ~addr:(addr "10.0.0.200") ~as_id:1
      Node.Host
  in
  ignore
    (Network.connect net
       (Option.get (Network.node_by_name net "g_gw"))
       outside ~bandwidth:1e7 ~delay:0.01);
  Network.compute_routes net;
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr ~start:0.2 ~attack:true ~flow_id:1 ~rate:8e5
      ~dst:outside.Node.addr net attacker
  in
  Sim.run ~until:2.0 sim;
  checki "no requests" 0 (Legacy.requests_sent protector);
  checkb "covers only the /28" true
    (Legacy.protects protector (addr "10.0.0.10")
    && not (Legacy.protects protector (addr "10.0.0.200")))

(* --- Strategy x cooperation matrix ---------------------------------------------- *)

(* Whatever the attacker does and however many gateways defect, the flow
   must end up suppressed, with the long filter exactly at the (k+1)-th
   attacker-side node. One sub-assertion per grid cell. *)
let test_protocol_matrix () =
  let strategies =
    [
      ("complies", Policy.Complies);
      ("ignores", Policy.Ignores);
      ("onoff", Policy.On_off { off_time = fast_config.Config.t_tmp +. 0.2 });
    ]
  in
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun k ->
          let r =
            make_rig ~attacker_strategy:strategy ~n_non_coop:k ()
          in
          Sim.run ~until:5.0 r.sim;
          let label = Printf.sprintf "%s/k=%d" sname k in
          let meter =
            Host_agent.Victim.attack_meter r.d.Chain.victim_agent
          in
          checkb (label ^ ": suppressed") true
            (Aitf_stats.Rate_meter.rate meter ~now:(Sim.now r.sim) = 0.);
          let holder = attacker_gw r k in
          checkb (label ^ ": filter at k-th gateway") true
            (gw_counter holder "filter-long" >= 1);
          (* No attacker-side gateway closer to the attacker holds one. *)
          for j = 0 to k - 1 do
            checkb
              (Printf.sprintf "%s: B_gw%d holds nothing" label (j + 1))
              true
              (gw_counter (attacker_gw r j) "filter-long" = 0)
          done)
        [ 0; 1; 2 ])
    strategies

(* --- Replay attack ------------------------------------------------------------ *)

let test_protocol_replay_after_t_rejected () =
  (* M records a genuine filtering request and replays it after the victim's
     interest (and its outstanding-request entry) has expired: the handshake
     must fail and no filter may appear. *)
  let r = make_rig ~attacker_strategy:Policy.Complies () in
  (* The attack ends for good at t = 2; past T the victim wants nothing
     blocked any more, so a replayed request is pure forgery. *)
  ignore (Sim.at r.sim 2.0 (fun () -> Aitf_workload.Traffic.halt r.attack));
  Sim.run ~until:3.0 r.sim;
  (* the genuine round happened *)
  checki "genuine filter installed" 1
    (gw_counter (attacker_gw r 0) "filter-long");
  let replayed =
    {
      Message.flow =
        Flow_label.host_pair r.topo.Chain.attacker.Node.addr
          r.topo.Chain.victim.Node.addr;
      target = Message.To_attacker_gateway;
      duration = fast_config.Config.t_filter;
      path = [ (List.hd r.topo.Chain.attacker_gws).Node.addr ];
      hops = 0;
      requestor = (List.hd r.topo.Chain.victim_gws).Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  (* Well past T (6 s) + the victim's memory of the request. The attacker
     complied, so nothing is flowing and the victim wants nothing blocked. *)
  ignore
    (Sim.at r.sim 14.0 (fun () ->
         Network.originate r.topo.Chain.net r.topo.Chain.attacker
           (Message.packet ~src:r.topo.Chain.attacker.Node.addr
              ~dst:(List.hd r.topo.Chain.attacker_gws).Node.addr
              (Message.Filtering_request replayed))));
  Sim.run ~until:17.0 r.sim;
  let c = Gateway.counters (attacker_gw r 0) in
  checkb "replay failed verification" true
    (Counter.get c "handshake-fail" >= 1);
  checki "no filter from the replay" 0
    (Filter_table.occupancy (Gateway.filters (attacker_gw r 0)))

let () =
  Alcotest.run "aitf_core"
    [
      ( "message",
        [ Alcotest.test_case "packet" `Quick test_message_packet ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "timescale" `Quick test_config_timescale;
        ] );
      ( "legacy",
        [
          Alcotest.test_case "end to end" `Quick
            test_legacy_protection_end_to_end;
          Alcotest.test_case "ignores unprotected" `Quick
            test_legacy_ignores_unprotected;
        ] );
      ( "contract",
        [
          Alcotest.test_case "provisioning" `Quick
            test_contract_provisioning_matches_formulas;
          Alcotest.test_case "sufficiency" `Quick test_contract_sufficiency;
          Alcotest.test_case "validation" `Quick
            test_contract_validation_and_bursts;
          Alcotest.test_case "apply polices" `Quick
            test_contract_apply_polices_both_directions;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "success" `Quick test_handshake_success;
          Alcotest.test_case "timeout" `Quick test_handshake_timeout;
          Alcotest.test_case "wrong nonce" `Quick test_handshake_wrong_nonce;
          Alcotest.test_case "wrong flow" `Quick test_handshake_wrong_flow;
          Alcotest.test_case "late reply" `Quick
            test_handshake_reply_after_timeout_ignored;
          Alcotest.test_case "concurrent" `Quick
            test_handshake_concurrent_independent;
        ] );
      ( "detection",
        [
          Alcotest.test_case "td delay" `Quick test_detection_td_delay;
          Alcotest.test_case "no duplicate pending" `Quick
            test_detection_no_duplicate_while_pending;
          Alcotest.test_case "instant redetect" `Quick
            test_detection_instant_redetection;
          Alcotest.test_case "gap damping" `Quick test_detection_gap_damping;
          Alcotest.test_case "per-flow state" `Quick
            test_detection_per_flow_state;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip request" `Quick
            test_wire_roundtrip_request;
          Alcotest.test_case "roundtrip handshake" `Quick
            test_wire_roundtrip_handshake;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "rejects non-aitf" `Quick test_wire_rejects_non_aitf;
          QCheck_alcotest.to_alcotest wire_roundtrip_property;
          QCheck_alcotest.to_alcotest wire_decode_never_raises;
        ] );
      ( "ingress",
        [
          Alcotest.test_case "egress spoof dropped" `Quick
            test_ingress_egress_spoof_dropped;
          Alcotest.test_case "genuine egress passes" `Quick
            test_ingress_genuine_egress_passes;
          Alcotest.test_case "impersonation dropped" `Quick
            test_ingress_outside_claiming_inside_dropped;
          Alcotest.test_case "normal transit passes" `Quick
            test_ingress_normal_transit_passes;
          Alcotest.test_case "direction toggles" `Quick
            test_ingress_direction_toggles;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "basic block" `Quick test_protocol_basic_block;
          Alcotest.test_case "temp filter expiry" `Quick
            test_protocol_temp_filter_expires;
          Alcotest.test_case "attacker complies" `Quick
            test_protocol_attacker_complies;
          Alcotest.test_case "escalation" `Quick
            test_protocol_escalation_unresponsive_gw;
          Alcotest.test_case "terminal filtering" `Quick
            test_protocol_terminal_when_all_unresponsive;
          Alcotest.test_case "disconnection" `Quick test_protocol_disconnection;
          Alcotest.test_case "bystander survives" `Quick
            test_protocol_bystander_survives_disconnection;
          Alcotest.test_case "handshake blocks forgery" `Quick
            test_protocol_handshake_blocks_forgery;
          Alcotest.test_case "forgery without handshake" `Quick
            test_protocol_forgery_succeeds_without_handshake;
          Alcotest.test_case "policing r1" `Quick test_protocol_policing_r1;
          Alcotest.test_case "polices remote" `Quick
            test_protocol_gateway_polices_remote_requests;
          Alcotest.test_case "invalid requestor" `Quick
            test_protocol_invalid_requestor_rejected;
          Alcotest.test_case "not on path" `Quick
            test_protocol_not_on_path_rejected;
          Alcotest.test_case "duplicates coalesce" `Quick
            test_protocol_duplicate_requests_coalesce;
          Alcotest.test_case "client policer r2" `Quick
            test_protocol_client_policer_r2;
          Alcotest.test_case "filter capacity" `Quick
            test_protocol_filter_capacity_exhaustion;
          Alcotest.test_case "spie mode" `Quick
            test_protocol_spie_traceback_mode;
          Alcotest.test_case "ppm path source" `Quick
            test_protocol_ppm_path_source;
          Alcotest.test_case "victim answers queries" `Quick
            test_protocol_victim_answers_queries;
          Alcotest.test_case "on-off via shadow" `Quick
            test_protocol_onoff_detected_by_shadow;
          Alcotest.test_case "aggregation under pressure" `Quick
            test_protocol_aggregation_protects_under_pressure;
          Alcotest.test_case "replay after T rejected" `Quick
            test_protocol_replay_after_t_rejected;
          Alcotest.test_case "strategy x cooperation matrix" `Slow
            test_protocol_matrix;
          Alcotest.test_case "policer table bounded" `Quick
            test_protocol_policer_table_bounded;
          Alcotest.test_case "active flows observability" `Quick
            test_protocol_active_flows_observability;
        ] );
    ]
