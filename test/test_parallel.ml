(* Parallel engine: 1-shard bit-identity against the sequential engine,
   conservative message ordering under random shard topologies,
   multi-shard determinism and 1-vs-N agreement, zero-lookahead
   rejection, and per-instance profiler-hook isolation. *)

module Sim = Aitf_engine.Sim
module Sched = Aitf_parallel.Sched
module Series = Aitf_stats.Series
module Scenarios = Aitf_workload.Scenarios
module As_scenario = Aitf_workload.As_scenario
module As_graph = Aitf_topo.As_graph
module Config = Aitf_core.Config

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- 1-shard bit-identity on the classic scenarios -------------------------- *)

(* A 1-shard scheduler must replay the plain-Sim run exactly: same event
   count, same byte counters, same victim-rate series point for point. *)

let chain_fingerprint (r : Scenarios.chain_result) =
  ( r.Scenarios.attack_received_bytes,
    r.Scenarios.good_received_bytes,
    r.Scenarios.escalations,
    r.Scenarios.requests_sent,
    r.Scenarios.events_processed,
    Series.points r.Scenarios.victim_rate )

let test_chain_one_shard_identity () =
  let p = { Scenarios.default_chain with Scenarios.duration = 5. } in
  let seq = Scenarios.run_chain p in
  let par = Scenarios.run_chain ~sched:(Sched.create ~shards:1 ()) p in
  checkb "chain: 1-shard sched is bit-identical" true
    (chain_fingerprint seq = chain_fingerprint par)

let test_flood_one_shard_identity () =
  let p = { Scenarios.default_flood with Scenarios.flood_duration = 10. } in
  let seq = Scenarios.run_flood p in
  let par = Scenarios.run_flood ~sched:(Sched.create ~shards:1 ()) p in
  let fp (r : Scenarios.flood_result) =
    ( r.Scenarios.legit_received_bytes,
      r.Scenarios.flood_attack_received_bytes,
      r.Scenarios.leaf_filters,
      r.Scenarios.isp_filters,
      r.Scenarios.flood_events )
  in
  checkb "flood: 1-shard sched is bit-identical" true (fp seq = fp par)

let test_swarm_one_shard_identity () =
  let p = { Scenarios.default_swarm with Scenarios.swarm_duration = 5. } in
  let seq = Scenarios.run_swarm p in
  let par = Scenarios.run_swarm ~sched:(Sched.create ~shards:1 ()) p in
  let fp (r : Scenarios.swarm_result) =
    ( r.Scenarios.swarm_good_received_bytes,
      r.Scenarios.swarm_attack_received_bytes,
      r.Scenarios.swarm_requests_sent,
      r.Scenarios.swarm_filters,
      r.Scenarios.swarm_events,
      Series.points r.Scenarios.swarm_victim_rate )
  in
  checkb "swarm: 1-shard sched is bit-identical" true (fp seq = fp par)

(* --- internet scenario: determinism and shard-count agreement --------------- *)

let small_internet shards =
  {
    As_scenario.default with
    As_scenario.as_spec =
      { As_graph.default_spec with As_graph.domains = 80; tier1 = 3 };
    as_config = { Config.default with Config.engine = Config.Hybrid };
    as_seed = 11;
    as_duration = 6.;
    as_sources = 2_000;
    as_attack_domains = 6;
    as_legit_domains = 3;
    as_legit_sources = 600;
    as_sample_period = 0.5;
    as_shards = shards;
  }

let internet_fingerprint (r : As_scenario.result) =
  ( r.As_scenario.r_good_offered_bytes,
    r.As_scenario.r_good_received_bytes,
    r.As_scenario.r_attack_received_bytes,
    r.As_scenario.r_requests_sent,
    r.As_scenario.r_filters_installed,
    r.As_scenario.r_slots_peak,
    r.As_scenario.r_events,
    Series.points r.As_scenario.r_victim_rate )

let test_internet_multishard_deterministic () =
  (* Same (seed, shards) must give the identical fingerprint on every
     run, whatever the OS does to the worker domains. *)
  let a = As_scenario.run (small_internet 3) in
  let b = As_scenario.run (small_internet 3) in
  checkb "3-shard runs are reproducible" true
    (internet_fingerprint a = internet_fingerprint b);
  checki "r_shards echoes the request" 3 a.As_scenario.r_shards;
  let st = a.As_scenario.r_sched_stats in
  checkb "shard windows executed" true (st.Sched.windows > 0);
  checkb "cross-shard messages flowed" true (st.Sched.messages > 0)

let test_internet_shard_agreement () =
  (* Across shard counts the event interleaving differs (global-first tie
     rule, window boundaries), so outcomes are only statistically equal:
     hold the E17-style 10% agreement tolerance on the goodput scalar. *)
  let seq = As_scenario.run (small_internet 1) in
  let par = As_scenario.run (small_internet 4) in
  let rel a b = if a = 0. then Float.abs b else Float.abs ((b -. a) /. a) in
  checkb "good received within 10%" true
    (rel seq.As_scenario.r_good_received_bytes
       par.As_scenario.r_good_received_bytes
    <= 0.10);
  checkb "1-shard stats are all zero" true
    (seq.As_scenario.r_sched_stats
    = {
        Sched.windows = 0;
        global_batches = 0;
        messages = 0;
        deferred = 0;
        stall_seconds = 0.;
      })

(* --- conservative ordering property ------------------------------------------ *)

(* Random shard topologies driven directly through the Sched API: every
   shard runs a self-rescheduling local ticker and posts cross-shard
   messages at [now + lookahead]. The conservative invariants: each
   world's execution times are non-decreasing (no event runs in its
   world's past), every message executes at exactly its timestamp, and
   nothing is lost. Failures would surface either as a broken log order
   or as [Sim.at] refusing a past timestamp. *)

type exec = { x_shard : int; x_time : float; x_kind : [ `Local | `Msg ] }

let run_random_topology ~shards ~lookaheads ~ticks ~until =
  let sched = Sched.create ~shards () in
  for src = 0 to shards - 1 do
    for dst = 0 to shards - 1 do
      if src <> dst then
        Sched.register_channel sched ~src ~dst ~lookahead:lookaheads.(src).(dst)
    done
  done;
  let log = Array.make shards [] in
  let expected = ref 0 and executed = ref 0 in
  let record shard kind sim =
    log.(shard) <-
      { x_shard = shard; x_time = Sim.now sim; x_kind = kind } :: log.(shard);
    incr executed
  in
  for s = 0 to shards - 1 do
    let sim = Sched.shard_sim sched s in
    let period = 0.01 +. (0.003 *. float_of_int (s + 1)) in
    let rec tick i =
      if Sim.now sim +. period <= until then begin
        incr expected;
        ignore
          (Sim.after sim period (fun () ->
               record s `Local sim;
               (* Round-robin target; the message leaves with exactly the
                  channel's latency, the tightest legal timestamp. *)
               let dst = (s + 1 + (i mod (shards - 1))) mod shards in
               let t = Sim.now sim +. lookaheads.(s).(dst) in
               if t <= until then begin
                 incr expected;
                 Sched.post sched ~dst ~time:t (fun () ->
                     record dst `Msg (Sched.shard_sim sched dst))
               end;
               tick (i + 1)))
      end
    in
    ignore (tick 0);
    for k = 1 to ticks do
      incr expected;
      ignore
        (Sim.at sim
           (0.005 *. float_of_int (k * (s + 1)))
           (fun () -> record s `Local sim))
    done
  done;
  Sched.run ~until sched;
  (Array.map List.rev log, !expected, !executed)

let ordering_property (shards, las) =
  let lookaheads = Array.of_list (List.map Array.of_list las) in
  let logs, expected, executed =
    run_random_topology ~shards ~lookaheads ~ticks:5 ~until:1.0
  in
  let monotone l =
    let rec go = function
      | a :: (b :: _ as rest) -> a.x_time <= b.x_time && go rest
      | _ -> true
    in
    go l
  in
  Array.for_all monotone logs && expected = executed

let gen_topology =
  QCheck.Gen.(
    int_range 2 4 >>= fun shards ->
    let cell = map (fun v -> 0.005 +. (float_of_int v /. 1000.)) (int_range 1 80) in
    list_size (return shards) (list_size (return shards) cell)
    >>= fun las -> return (shards, las))

let ordering_qcheck =
  QCheck.Test.make ~name:"cross-shard messages never run early" ~count:30
    (QCheck.make
       ~print:(fun (n, las) ->
         Printf.sprintf "%d shards, lookaheads %s" n
           (String.concat ";"
              (List.map
                 (fun row ->
                   "[" ^ String.concat "," (List.map string_of_float row) ^ "]")
                 las)))
       gen_topology)
    ordering_property

let test_random_topology_deterministic () =
  let lookaheads = [| [| 0.; 0.013 |]; [| 0.021; 0. |] |] in
  let run () = run_random_topology ~shards:2 ~lookaheads ~ticks:4 ~until:2.0 in
  let l1, e1, x1 = run () in
  let l2, e2, x2 = run () in
  checkb "same logs across runs" true (l1 = l2);
  checki "same expected count" e1 e2;
  checki "all executed" x1 e1;
  checki "all executed (2nd run)" x2 e2

(* --- zero lookahead is an error, not a deadlock ------------------------------ *)

let test_zero_lookahead_rejected () =
  let sched = Sched.create ~shards:2 () in
  let rejects la =
    match Sched.register_channel sched ~src:0 ~dst:1 ~lookahead:la with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  checkb "zero lookahead rejected" true (rejects 0.);
  checkb "negative lookahead rejected" true (rejects (-0.5));
  checkb "nan lookahead rejected" true (rejects Float.nan);
  checkb "infinite lookahead rejected" true (rejects Float.infinity);
  checkb "self-channel rejected" true
    (match Sched.register_channel sched ~src:1 ~dst:1 ~lookahead:0.1 with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "out-of-range shard rejected" true
    (match Sched.register_channel sched ~src:0 ~dst:2 ~lookahead:0.1 with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "shards < 1 rejected" true
    (match Sched.create ~shards:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- per-instance profiler hooks --------------------------------------------- *)

let test_profile_hook_per_instance () =
  let module Profile = Aitf_obs.Profile in
  let sim_a = Sim.create () and sim_b = Sim.create () in
  let pa = Profile.create () in
  Profile.attach_to pa sim_a;
  let burn sim n =
    for i = 1 to n do
      ignore (Sim.after sim (float_of_int i) (fun () -> ()))
    done;
    Sim.run sim
  in
  burn sim_a 5;
  burn sim_b 7;
  checki "instance probe saw only its own sim" 5 (Profile.events pa);
  Profile.detach_from sim_a;
  burn sim_a 3;
  checki "detached probe sees nothing further" 5 (Profile.events pa);
  (* The default probe is inherited at [Sim.create] only, so worlds that
     existed beforehand — and worlds with their own probe — are
     unaffected by it. *)
  let pd = Profile.create () in
  Profile.attach pd;
  let sim_c = Sim.create () in
  let pc = Profile.create () in
  Profile.attach_to pc sim_c;
  burn sim_c 4;
  burn sim_b 2;
  Profile.detach ();
  checki "attach_to overrides the inherited default" 4 (Profile.events pc);
  checki "default probe untouched by overridden sims" 0 (Profile.events pd);
  let merged = Profile.merge [ pa; pc ] in
  checki "merge sums events" 9 (Profile.events merged)

(* --- guard rails -------------------------------------------------------------- *)

let test_bad_shards_rejected () =
  checkb "as_shards = 0 rejected" true
    (match As_scenario.run { (small_internet 1) with As_scenario.as_shards = 0 }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- observability composes with sharding ------------------------------------- *)

module Span = Aitf_obs.Span
module Flight = Aitf_obs.Flight

let traced_run p =
  Span.reset_mint ();
  let sp = Span.create () in
  Span.attach sp;
  Fun.protect ~finally:Span.detach (fun () -> (As_scenario.run p, sp))

let test_traced_equals_untraced () =
  (* Recording never schedules events and never consumes randomness, and
     workers mint from their stride whether or not a collector is
     attached — so tracing must not move a single byte at any shard
     count. *)
  List.iter
    (fun shards ->
      Span.reset_mint ();
      let plain = As_scenario.run (small_internet shards) in
      let traced, sp = traced_run (small_internet shards) in
      checkb
        (Printf.sprintf "traced = untraced at %d shard(s)" shards)
        true
        (internet_fingerprint plain = internet_fingerprint traced);
      checkb
        (Printf.sprintf "spans were actually collected at %d shard(s)" shards)
        true
        (Span.roots sp <> []))
    [ 1; 4 ]

let test_span_digest_shard_invariant () =
  (* The canonical digest must not depend on how the domains were
     sharded: same seed, same trace. *)
  let digest shards =
    let _, sp = traced_run (small_internet shards) in
    Span.digest sp
  in
  let d1 = digest 1 and d2 = digest 2 and d4 = digest 4 in
  Alcotest.(check string) "digest: 1 shard = 2 shards" d1 d2;
  Alcotest.(check string) "digest: 1 shard = 4 shards" d1 d4

let test_contracts_compose_with_shards () =
  let p shards =
    { (small_internet shards) with As_scenario.as_contracts = true }
  in
  let a = As_scenario.run (p 4) in
  let b = As_scenario.run (p 4) in
  checkb "sharded contract runs are reproducible" true
    (internet_fingerprint a = internet_fingerprint b);
  match a.As_scenario.r_auditor with
  | None -> Alcotest.fail "auditor missing from sharded contract run"
  | Some aud ->
    let bud =
      match b.As_scenario.r_auditor with
      | Some x -> x
      | None -> Alcotest.fail "auditor missing from repeat run"
    in
    checkb "receipts flowed through the defer seam" true
      (Aitf_contract.Auditor.receipts_verified aud > 0);
    checki "auditor outcomes reproduce"
      (Aitf_contract.Auditor.receipts_verified aud)
      (Aitf_contract.Auditor.receipts_verified bud)

let test_flight_recorder_composes_with_shards () =
  let fl = Flight.create ~capacity:4096 in
  Flight.attach fl;
  let r =
    Fun.protect ~finally:Flight.detach (fun () ->
        As_scenario.run (small_internet 4))
  in
  checki "ran sharded" 4 r.As_scenario.r_shards;
  let rs = Flight.records fl in
  checkb "records were captured" true (rs <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Flight.time <= b.Flight.time && sorted rest
    | _ -> true
  in
  checkb "merged records are time-sorted" true (sorted rs)

let test_parallel_report_section () =
  let r = As_scenario.run (small_internet 3) in
  match r.As_scenario.r_parallel with
  | None -> Alcotest.fail "r_parallel missing at 3 shards"
  | Some j ->
    let module Json = Aitf_obs.Json in
    let int_field name =
      match Option.bind (Json.member name j) Json.get_float with
      | Some v -> int_of_float v
      | None -> Alcotest.fail ("parallel section missing " ^ name)
    in
    checki "shards echoed" 3 (int_field "shards");
    checkb "windows counted" true (int_field "windows" > 0);
    checkb "messages counted" true (int_field "messages" > 0);
    let seq = As_scenario.run (small_internet 1) in
    checkb "no parallel section at 1 shard" true
      (seq.As_scenario.r_parallel = None)

let () =
  Alcotest.run "aitf_parallel"
    [
      ( "identity",
        [
          Alcotest.test_case "chain 1-shard bit-identity" `Quick
            test_chain_one_shard_identity;
          Alcotest.test_case "flood 1-shard bit-identity" `Quick
            test_flood_one_shard_identity;
          Alcotest.test_case "swarm 1-shard bit-identity" `Quick
            test_swarm_one_shard_identity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "multi-shard runs reproduce" `Slow
            test_internet_multishard_deterministic;
          Alcotest.test_case "1 vs 4 shards agree within 10%" `Slow
            test_internet_shard_agreement;
          Alcotest.test_case "random topology reproduces" `Quick
            test_random_topology_deterministic;
        ] );
      ( "ordering",
        [
          QCheck_alcotest.to_alcotest ordering_qcheck;
          Alcotest.test_case "zero lookahead is an error" `Quick
            test_zero_lookahead_rejected;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "profiler hooks are per-instance" `Quick
            test_profile_hook_per_instance;
          Alcotest.test_case "bad shard counts rejected" `Quick
            test_bad_shards_rejected;
        ] );
      ( "observability",
        [
          Alcotest.test_case "traced runs are bit-identical to untraced" `Slow
            test_traced_equals_untraced;
          Alcotest.test_case "span digest is shard-invariant" `Slow
            test_span_digest_shard_invariant;
          Alcotest.test_case "contracts compose with shards" `Slow
            test_contracts_compose_with_shards;
          Alcotest.test_case "flight recorder composes with shards" `Quick
            test_flight_recorder_composes_with_shards;
          Alcotest.test_case "parallel report section" `Quick
            test_parallel_report_section;
        ] );
    ]
