(* Tests for aitf_engine: heap, event queue, simulation clock, timers, RNG
   and tracing. *)

module Heap = Aitf_engine.Heap
module Event_queue = Aitf_engine.Event_queue
module Sim = Aitf_engine.Sim
module Timer = Aitf_engine.Timer
module Rng = Aitf_engine.Rng
module Trace = Aitf_engine.Trace

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

(* --- Heap ---------------------------------------------------------------- *)

let int_heap () = Heap.create ~cmp:Int.compare

let test_heap_empty () =
  let h = int_heap () in
  checki "length" 0 (Heap.length h);
  checkb "is_empty" true (Heap.is_empty h);
  checkb "peek" true (Heap.peek h = None);
  checkb "pop" true (Heap.pop h = None)

let test_heap_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let out = List.init 10 (fun _ -> Option.get (Heap.pop h)) in
  check (Alcotest.list Alcotest.int) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] out

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 2; 1; 2; 1; 2 ];
  let out = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  check (Alcotest.list Alcotest.int) "dups" [ 1; 1; 2; 2; 2 ] out

let test_heap_peek_stable () =
  let h = int_heap () in
  Heap.push h 4;
  Heap.push h 2;
  checkb "peek is min" true (Heap.peek h = Some 2);
  checki "peek does not remove" 2 (Heap.length h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  checkb "empty after clear" true (Heap.is_empty h);
  Heap.push h 7;
  checkb "usable after clear" true (Heap.pop h = Some 7)

let test_heap_interleaved () =
  let h = int_heap () in
  Heap.push h 5;
  Heap.push h 1;
  checkb "pop1" true (Heap.pop h = Some 1);
  Heap.push h 0;
  Heap.push h 3;
  checkb "pop2" true (Heap.pop h = Some 0);
  checkb "pop3" true (Heap.pop h = Some 3);
  checkb "pop4" true (Heap.pop h = Some 5);
  checkb "pop5" true (Heap.pop h = None)

let test_heap_to_list () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  let l = List.sort Int.compare (Heap.to_list h) in
  check (Alcotest.list Alcotest.int) "contents" [ 1; 2; 3 ] l

let heap_qcheck =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* --- Event queue --------------------------------------------------------- *)

let drain_queue q =
  let rec go () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, _, f) ->
      f ();
      go ()
  in
  go ()

let test_eq_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  let ev name () = log := name :: !log in
  ignore (Event_queue.schedule q ~time:2.0 (ev "b"));
  ignore (Event_queue.schedule q ~time:1.0 (ev "a"));
  ignore (Event_queue.schedule q ~time:3.0 (ev "c"));
  drain_queue q;
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  let log = ref [] in
  List.iter
    (fun name ->
      ignore
        (Event_queue.schedule q ~time:1.0 (fun () -> log := name :: !log)))
    [ "first"; "second"; "third" ];
  drain_queue q;
  check
    (Alcotest.list Alcotest.string)
    "fifo among equal timestamps"
    [ "first"; "second"; "third" ]
    (List.rev !log)

let test_eq_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.schedule q ~time:1.0 (fun () -> fired := true) in
  Event_queue.cancel h;
  checkb "cancelled flag" true (Event_queue.is_cancelled h);
  checkb "empty after cancel" true (Event_queue.is_empty q);
  checkb "pop skips cancelled" true (Event_queue.pop q = None);
  checkb "never fired" false !fired

let test_eq_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.schedule q ~time:1.0 (fun () -> ()) in
  Event_queue.cancel h;
  Event_queue.cancel h;
  checkb "still empty" true (Event_queue.is_empty q)

let test_eq_next_time () =
  let q = Event_queue.create () in
  checkb "no next" true (Event_queue.next_time q = None);
  let h = Event_queue.schedule q ~time:5.0 (fun () -> ()) in
  ignore (Event_queue.schedule q ~time:7.0 (fun () -> ()));
  checkb "next is 5" true (Event_queue.next_time q = Some 5.0);
  Event_queue.cancel h;
  checkb "next skips cancelled" true (Event_queue.next_time q = Some 7.0)

let test_eq_rejects_nonfinite () =
  let q = Event_queue.create () in
  checkb "rejects nan" true
    (try
       ignore (Event_queue.schedule q ~time:Float.nan (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* --- Sim ----------------------------------------------------------------- *)

let test_sim_runs_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim 2.0 (fun () -> log := ("b", Sim.now sim) :: !log));
  ignore (Sim.at sim 1.0 (fun () -> log := ("a", Sim.now sim) :: !log));
  Sim.run sim;
  match List.rev !log with
  | [ ("a", t1); ("b", t2) ] ->
    checkf "t1" 1.0 t1;
    checkf "t2" 2.0 t2
  | _ -> Alcotest.fail "wrong event sequence"

let test_sim_after () =
  let sim = Sim.create () in
  let seen = ref 0. in
  ignore
    (Sim.at sim 1.0 (fun () ->
         ignore (Sim.after sim 0.5 (fun () -> seen := Sim.now sim))));
  Sim.run sim;
  checkf "after is relative" 1.5 !seen

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let seen = ref (-1.) in
  ignore (Sim.after sim (-5.) (fun () -> seen := Sim.now sim));
  Sim.run sim;
  checkf "clamped to now" 0.0 !seen

let test_sim_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.at sim 1.0 (fun () -> ()));
  Sim.run sim;
  checkb "raises on past" true
    (try
       ignore (Sim.at sim 0.5 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Sim.at sim t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0 ];
  Sim.run ~until:2.5 sim;
  check (Alcotest.list (Alcotest.float 0.)) "only first two" [ 1.0; 2.0 ]
    (List.rev !fired);
  checkf "clock advanced to horizon" 2.5 (Sim.now sim);
  Sim.run sim;
  checkf "remaining event runs later" 3.0 (Sim.now sim)

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Sim.at sim (float_of_int i) (fun () ->
           incr count;
           if !count = 3 then Sim.stop sim))
  done;
  Sim.run sim;
  checki "stopped after 3" 3 !count

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.at sim 1.0 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  checkb "cancelled event did not fire" false !fired

let test_sim_events_processed () =
  let sim = Sim.create () in
  for i = 1 to 5 do
    ignore (Sim.at sim (float_of_int i) (fun () -> ()))
  done;
  Sim.run sim;
  checki "count" 5 (Sim.events_processed sim)

let test_sim_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  (* A self-perpetuating loop: without the budget this never ends. *)
  let rec forever () =
    ignore (Sim.after sim 0.1 (fun () -> incr count; forever ()))
  in
  forever ();
  Sim.run ~max_events:25 sim;
  checki "stopped at the budget" 25 !count;
  (* The clock must not jump to a horizon it never reached. *)
  let sim2 = Sim.create () in
  let rec forever2 () =
    ignore (Sim.after sim2 0.1 (fun () -> forever2 ()))
  in
  forever2 ();
  Sim.run ~until:100.0 ~max_events:5 sim2;
  checkb "clock reflects actual progress" true (Sim.now sim2 < 1.0)

let test_sim_scheduling_inside_event () =
  let sim = Sim.create () in
  let depth = ref 0 in
  let rec go n =
    if n > 0 then
      ignore
        (Sim.after sim 1.0 (fun () ->
             incr depth;
             go (n - 1)))
  in
  go 4;
  Sim.run sim;
  checki "chained events" 4 !depth;
  checkf "time" 4.0 (Sim.now sim)

(* --- Timer --------------------------------------------------------------- *)

let test_timer_one_shot () =
  let sim = Sim.create () in
  let at = ref 0. in
  let (_ : Timer.t) =
    Timer.one_shot sim ~delay:2.5 (fun () -> at := Sim.now sim)
  in
  Sim.run sim;
  checkf "fired at delay" 2.5 !at

let test_timer_periodic () =
  let sim = Sim.create () in
  let times = ref [] in
  let t =
    Timer.periodic sim ~period:1.0 (fun () -> times := Sim.now sim :: !times)
  in
  ignore (Sim.at sim 3.5 (fun () -> Timer.cancel t));
  Sim.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "ticks" [ 1.0; 2.0; 3.0 ]
    (List.rev !times)

let test_timer_periodic_start () =
  let sim = Sim.create () in
  let times = ref [] in
  let t =
    Timer.periodic ~start:0.2 sim ~period:1.0 (fun () ->
        times := Sim.now sim :: !times)
  in
  ignore (Sim.at sim 2.5 (fun () -> Timer.cancel t));
  Sim.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "ticks" [ 0.2; 1.2; 2.2 ]
    (List.rev !times)

let test_timer_cancel_before_fire () =
  let sim = Sim.create () in
  let fired = ref false in
  let t = Timer.one_shot sim ~delay:1.0 (fun () -> fired := true) in
  Timer.cancel t;
  Sim.run sim;
  checkb "never fired" false !fired;
  checkb "not active" false (Timer.active t)

let test_timer_reschedule () =
  let sim = Sim.create () in
  let at = ref 0. in
  let t = Timer.one_shot sim ~delay:1.0 (fun () -> at := Sim.now sim) in
  ignore (Sim.at sim 0.5 (fun () -> Timer.reschedule t ~delay:2.0));
  Sim.run sim;
  checkf "pushed back" 2.5 !at

let test_timer_periodic_invalid () =
  let sim = Sim.create () in
  checkb "rejects non-positive period" true
    (try
       ignore (Timer.periodic sim ~period:0. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  check (Alcotest.list Alcotest.int) "same seed same stream" (seq a) (seq b)

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1_000_000) in
  checkb "different" false (seq a = seq b)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:3 in
  let child = Rng.split parent in
  let s1 = List.init 10 (fun _ -> Rng.int child 100) in
  let parent' = Rng.create ~seed:3 in
  let child' = Rng.split parent' in
  let s2 = List.init 10 (fun _ -> Rng.int child' 100) in
  check (Alcotest.list Alcotest.int) "reproducible" s1 s2

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~rate:4.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 1/rate" true (Float.abs (mean -. 0.25) < 0.01)

let test_rng_uniform_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.uniform r ~lo:2.0 ~hi:3.0 in
    if v < 2.0 || v >= 3.0 then Alcotest.fail "uniform out of bounds"
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create ~seed:5 in
  checkb "p=0" false (Rng.bernoulli r ~p:0.);
  checkb "p=1" true (Rng.bernoulli r ~p:1.)

let test_rng_bernoulli_frequency () =
  let r = Rng.create ~seed:13 in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  checkb "frequency near p" true (Float.abs (f -. 0.3) < 0.02)

let test_rng_pareto_minimum () =
  let r = Rng.create ~seed:17 in
  for _ = 1 to 1000 do
    if Rng.pareto r ~shape:1.5 ~scale:2.0 < 2.0 then
      Alcotest.fail "pareto below scale"
  done

let test_rng_zipf_bounds_and_skew () =
  let r = Rng.create ~seed:19 in
  let counts = Array.make 11 0 in
  for _ = 1 to 10_000 do
    let k = Rng.zipf r ~n:10 ~s:1.2 in
    if k < 1 || k > 10 then Alcotest.fail "zipf out of range";
    counts.(k) <- counts.(k) + 1
  done;
  checkb "rank 1 most frequent" true (counts.(1) > counts.(2));
  checkb "rank 2 beats rank 10" true (counts.(2) > counts.(10))

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:23 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  check (Alcotest.list Alcotest.int) "same elements" (List.init 50 Fun.id)
    (Array.to_list sorted)

let test_rng_pick () =
  let r = Rng.create ~seed:29 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let v = Rng.pick r a in
    if v < 1 || v > 3 then Alcotest.fail "pick out of range"
  done;
  checkb "empty raises" true
    (try
       ignore (Rng.pick r [||]);
       false
     with Invalid_argument _ -> true)

let exponential_positive =
  QCheck.Test.make ~name:"exponential always positive" ~count:500
    QCheck.(pair small_int (float_range 0.01 100.))
    (fun (seed, rate) ->
      let r = Rng.create ~seed in
      Rng.exponential r ~rate >= 0.)

(* Random schedules (with cancellations) execute in exactly the order a
   reference sort predicts. *)
let sim_order_matches_reference =
  QCheck.Test.make ~name:"sim executes random schedules in sorted order"
    ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_bound 30)
        (pair (float_range 0. 100.) bool))
    (fun jobs ->
      let sim = Sim.create () in
      let fired = ref [] in
      let handles =
        List.mapi
          (fun i (t, _) ->
            Sim.at sim t (fun () -> fired := (t, i) :: !fired))
          jobs
      in
      List.iteri
        (fun i (_, cancel) -> if cancel then Sim.cancel (List.nth handles i))
        jobs;
      Sim.run sim;
      let expected =
        jobs
        |> List.mapi (fun i (t, cancel) -> (t, i, cancel))
        |> List.filter (fun (_, _, cancel) -> not cancel)
        |> List.map (fun (t, i, _) -> (t, i))
        |> List.stable_sort (fun (t1, i1) (t2, i2) ->
               match Float.compare t1 t2 with 0 -> Int.compare i1 i2 | c -> c)
      in
      List.rev !fired = expected)

(* --- Trace --------------------------------------------------------------- *)

let test_trace_disabled_by_default () =
  Trace.clear_sinks ();
  checkb "disabled" false (Trace.enabled ());
  Trace.emit ~time:1.0 ~category:"x" "hello"

let test_trace_collecting () =
  Trace.clear_sinks ();
  let sink, events = Trace.collecting_sink () in
  Trace.add_sink sink;
  Trace.emit ~time:1.0 ~category:"cat" "one";
  Trace.emitf ~time:2.0 ~category:"cat" "two %d" 2;
  let evs = events () in
  Trace.clear_sinks ();
  checki "two events" 2 (List.length evs);
  let e = List.nth evs 1 in
  check Alcotest.string "formatted" "two 2" e.Trace.message;
  checkf "time" 2.0 e.Trace.time

let test_trace_multiple_sinks () =
  Trace.clear_sinks ();
  let s1, e1 = Trace.collecting_sink () in
  let s2, e2 = Trace.collecting_sink () in
  Trace.add_sink s1;
  Trace.add_sink s2;
  Trace.emit ~time:0.5 ~category:"c" "msg";
  Trace.clear_sinks ();
  checki "sink1" 1 (List.length (e1 ()));
  checki "sink2" 1 (List.length (e2 ()))

let () =
  Alcotest.run "aitf_engine"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "peek stable" `Quick test_heap_peek_stable;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "to_list" `Quick test_heap_to_list;
          QCheck_alcotest.to_alcotest heap_qcheck;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "order" `Quick test_eq_order;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_eq_cancel;
          Alcotest.test_case "cancel idempotent" `Quick
            test_eq_cancel_idempotent;
          Alcotest.test_case "next_time" `Quick test_eq_next_time;
          Alcotest.test_case "rejects nan" `Quick test_eq_rejects_nonfinite;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "after" `Quick test_sim_after;
          Alcotest.test_case "negative delay" `Quick
            test_sim_negative_delay_clamped;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "until" `Quick test_sim_until;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "events processed" `Quick
            test_sim_events_processed;
          Alcotest.test_case "chained scheduling" `Quick
            test_sim_scheduling_inside_event;
          Alcotest.test_case "max events" `Quick test_sim_max_events;
        ] );
      ( "timer",
        [
          Alcotest.test_case "one shot" `Quick test_timer_one_shot;
          Alcotest.test_case "periodic" `Quick test_timer_periodic;
          Alcotest.test_case "periodic start" `Quick test_timer_periodic_start;
          Alcotest.test_case "cancel" `Quick test_timer_cancel_before_fire;
          Alcotest.test_case "reschedule" `Quick test_timer_reschedule;
          Alcotest.test_case "invalid period" `Quick
            test_timer_periodic_invalid;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick
            test_rng_exponential_mean;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick
            test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli frequency" `Quick
            test_rng_bernoulli_frequency;
          Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_minimum;
          Alcotest.test_case "zipf" `Quick test_rng_zipf_bounds_and_skew;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          QCheck_alcotest.to_alcotest exponential_positive;
          QCheck_alcotest.to_alcotest sim_order_matches_reference;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "collecting" `Quick test_trace_collecting;
          Alcotest.test_case "multiple sinks" `Quick test_trace_multiple_sinks;
        ] );
    ]
