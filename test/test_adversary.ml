(* Tests for aitf_adversary: the playbooks that attack AITF itself, and the
   overload manager's end-to-end effect under the flagship slot-exhaustion
   scenario (ISSUE 3 acceptance criteria). *)

open Aitf_net
open Aitf_core
module Adversary = Aitf_adversary.Adversary
module Scenarios = Aitf_workload.Scenarios
module Chain = Aitf_topo.Chain
module Metrics = Aitf_obs.Metrics
module Report = Aitf_obs.Report
module Json = Aitf_obs.Json

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int
let checks = check Alcotest.string

let cfg =
  {
    (Config.with_timescale Config.default 0.1) with
    Config.t_tmp = 0.5;
    grace = 0.3;
  }

(* The acceptance scenario: a 32-slot table per gateway, one gateway per
   side, and a botnet rotating 128 spoofed sources (4x capacity) at twice
   the victim's tail bandwidth. With only 64 exact slots in the whole
   network the baseline leaks; the manager must not. *)
let slot_params ~manager =
  {
    Scenarios.default_chain with
    Scenarios.spec = { Chain.default_spec with Chain.depth = 1 };
    config =
      {
        cfg with
        Config.filter_capacity = 32;
        overload_manager = manager;
        overload_low = 0.5;
      };
    duration = 30.;
    td = 0.1;
    attack_rate = 2e7;
    legit_rate = 6e6;
    in_pool_legit_rate = 5e5;
    adversaries = [ Adversary.Slot_exhaustion { sources = 128; rate = 2e7 } ];
  }

(* --- The flagship acceptance criterion ------------------------------------ *)

let test_manager_beats_baseline () =
  let off = Scenarios.run_chain (slot_params ~manager:false) in
  let on = Scenarios.run_chain (slot_params ~manager:true) in
  checkb "baseline leaks the attack" true
    (off.Scenarios.attack_received_bytes
    > 2. *. on.Scenarios.attack_received_bytes);
  checkb "manager strictly improves victim goodput" true
    (on.Scenarios.good_received_bytes > off.Scenarios.good_received_bytes);
  checkb "manager aggregated" true (on.Scenarios.overload_aggregations > 0);
  checkb "manager evicted" true (on.Scenarios.overload_evictions > 0);
  checkb "collateral damage is measured, not hidden" true
    (on.Scenarios.collateral_packets > 0
    && on.Scenarios.collateral_bytes >= on.Scenarios.collateral_packets);
  (* The baseline path never exercises the manager. *)
  checki "no aggregations without the manager" 0
    off.Scenarios.overload_aggregations;
  checki "no collateral without the manager" 0 off.Scenarios.collateral_packets

let test_json_report_surfaces_overload () =
  let reg = Metrics.create () in
  Metrics.attach reg;
  let r = Scenarios.run_chain (slot_params ~manager:true) in
  Metrics.detach ();
  let report = Report.make ~now:30. reg in
  let values =
    match Report.values_of_json report with
    | Ok vs -> vs
    | Error e -> Alcotest.fail ("report did not round-trip: " ^ e)
  in
  let value name =
    match List.assoc_opt name values with
    | Some (Metrics.Counter v) | Some (Metrics.Gauge v) -> v
    | Some (Metrics.Histogram _) -> Alcotest.fail (name ^ " is a histogram")
    | None -> Alcotest.fail ("missing metric " ^ name)
  in
  (* Degraded-mode gauge is present (0 or 1 at end of run). *)
  let g = value "gateway.G_gw1.overload.degraded" in
  checkb "degraded gauge is boolean" true (g = 0. || g = 1.);
  checkb "aggregations exported" true
    (value "gateway.G_gw1.overload.aggregations" > 0.);
  checkb "evictions exported" true
    (value "gateway.G_gw1.overload.evictions" > 0.);
  checkb "collateral exported and matches the run" true
    (value "gateway.G_gw1.overload.collateral_packets"
     +. value "gateway.B_gw1.overload.collateral_packets"
    = float_of_int r.Scenarios.collateral_packets);
  checkb "adversary instrumented" true
    (value "adversary.slot-exhaustion.packets_sent" > 0.)

(* --- Determinism ----------------------------------------------------------- *)

let fingerprint (r : Scenarios.chain_result) =
  ( r.Scenarios.attack_received_bytes,
    r.Scenarios.good_received_bytes,
    r.Scenarios.requests_sent,
    r.Scenarios.escalations,
    r.Scenarios.overload_aggregations,
    r.Scenarios.overload_evictions,
    r.Scenarios.collateral_packets,
    List.map
      (fun h ->
        ( Adversary.packets_sent h,
          Adversary.requests_sent h,
          Adversary.replays_sent h,
          Adversary.guesses_sent h,
          Adversary.stamps_forged h ))
      r.Scenarios.adversary_handles )

let test_seeded_replay_bit_identical () =
  (* Every playbook in one run, twice, same seed: all randomness flows from
     the seeded Rng, so the replay must agree on every observable. *)
  let params =
    {
      (slot_params ~manager:true) with
      Scenarios.duration = 15.;
      adversaries =
        [
          Adversary.Slot_exhaustion { sources = 128; rate = 1e7 };
          Adversary.Shadow_exhaustion { flows = 512; rate = 100. };
          Adversary.Request_flood { rate = 200. };
          Adversary.Reply_replay { delay = 0.3; guess_rate = 20. };
          Adversary.Route_forgery { innocent = Addr.of_string "192.0.2.1" };
        ];
    }
  in
  let a = fingerprint (Scenarios.run_chain params) in
  let b = fingerprint (Scenarios.run_chain params) in
  checkb "bit-identical replay" true (a = b)

let test_default_run_untouched () =
  (* No adversaries + an unfilled table: the manager must be invisible, so
     a default run behaves identically whether it is configured or not. *)
  let base manager =
    {
      Scenarios.default_chain with
      Scenarios.config = { cfg with Config.overload_manager = manager };
      duration = 30.;
      td = 0.1;
      legit_rate = 1e6;
    }
  in
  let off = fingerprint (Scenarios.run_chain (base false)) in
  let on = fingerprint (Scenarios.run_chain (base true)) in
  checkb "manager transparent below its watermark" true (off = on)

(* --- The other playbooks --------------------------------------------------- *)

let run_with ?(duration = 20.) playbook =
  Scenarios.run_chain
    {
      Scenarios.default_chain with
      Scenarios.config = cfg;
      duration;
      td = 0.1;
      attack_rate = 1e6;
      adversaries = [ playbook ];
    }

let test_shadow_exhaustion_burns_r1 () =
  (* The insider's request flood is clamped by its own R1 contract: the
     gateway admits at most ~R1 requests/s of the flood and the protocol
     still suppresses the real attack. *)
  let r =
    run_with (Adversary.Shadow_exhaustion { flows = 4096; rate = 500. })
  in
  let adv = List.hd r.Scenarios.adversary_handles in
  checkb "flood emitted" true (Adversary.requests_sent adv > 1000);
  let policer_drops =
    Scenarios.counter_total r.Scenarios.deployed.Chain.victim_gateways
      "req-policed"
  in
  checkb "policer sheds most of the flood" true
    (policer_drops > Adversary.requests_sent adv / 2);
  checkb "real attack still suppressed" true (r.Scenarios.r_measured < 0.1)

let test_reply_replay_defeated () =
  let r = run_with (Adversary.Reply_replay { delay = 0.3; guess_rate = 50. }) in
  let adv = List.hd r.Scenarios.adversary_handles in
  checkb "replays fired" true
    (Adversary.replays_sent adv + Adversary.guesses_sent adv > 0);
  (* The nonce table eats replays and guesses; filtering still converges. *)
  checkb "attack still suppressed" true (r.Scenarios.r_measured < 0.1)

let test_route_forgery_recovered () =
  let r =
    run_with (Adversary.Route_forgery { innocent = Addr.of_string "192.0.2.1" })
  in
  let adv = List.hd r.Scenarios.adversary_handles in
  checkb "stamps rewritten" true (Adversary.stamps_forged adv > 0);
  (* Traceback is poisoned, so attacker-side cooperation is lost — but the
     victim's own gateways still bound the damage. *)
  checkb "protection still lands victim-side" true
    (r.Scenarios.r_measured < 0.2)

(* --- CLI spec parsing ------------------------------------------------------ *)

let test_playbook_spec_roundtrip () =
  List.iter
    (fun s ->
      match Adversary.playbook_of_string s with
      | Ok p -> checks s s (Adversary.playbook_to_string p)
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [
      "slot-exhaustion:sources=128,rate=2e+06";
      "shadow-exhaustion:flows=4096,rate=200";
      "request-flood:rate=1000";
      "reply-replay:delay=0.5,guess-rate=50";
      "route-forgery:innocent=192.0.2.1";
    ]

let test_playbook_spec_defaults_and_errors () =
  (match Adversary.playbook_of_string "slot-exhaustion" with
  | Ok (Adversary.Slot_exhaustion { sources = 128; _ }) -> ()
  | _ -> Alcotest.fail "defaults expected");
  List.iter
    (fun s ->
      checkb s true (Result.is_error (Adversary.playbook_of_string s)))
    [
      "unknown-playbook";
      "slot-exhaustion:bogus=1";
      "slot-exhaustion:sources=abc";
      "route-forgery:innocent=not-an-addr";
    ]

let () =
  Alcotest.run "aitf_adversary"
    [
      ( "overload_acceptance",
        [
          Alcotest.test_case "manager beats baseline at 4x capacity" `Slow
            test_manager_beats_baseline;
          Alcotest.test_case "JSON report surfaces overload metrics" `Slow
            test_json_report_surfaces_overload;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded replay is bit-identical" `Slow
            test_seeded_replay_bit_identical;
          Alcotest.test_case "default runs untouched" `Slow
            test_default_run_untouched;
        ] );
      ( "playbooks",
        [
          Alcotest.test_case "shadow exhaustion burns R1" `Slow
            test_shadow_exhaustion_burns_r1;
          Alcotest.test_case "reply replay defeated" `Slow
            test_reply_replay_defeated;
          Alcotest.test_case "route forgery recovered" `Slow
            test_route_forgery_recovered;
        ] );
      ( "spec_parsing",
        [
          Alcotest.test_case "roundtrip" `Quick test_playbook_spec_roundtrip;
          Alcotest.test_case "defaults and errors" `Quick
            test_playbook_spec_defaults_and_errors;
        ] );
    ]
