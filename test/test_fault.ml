(* Tests for the fault-injection library and the reliable control plane:
   fault models on a live link, handshake retransmission/backoff, duplicate
   idempotence at the gateways, and regression tests for the satellite
   fixes (heap retention, event-queue length, link double-counting, RED
   idle decay). *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Heap = Aitf_engine.Heap
module Event_queue = Aitf_engine.Event_queue
module Counter = Aitf_stats.Counter
module Fault = Aitf_fault.Fault
open Aitf_net
open Aitf_filter
open Aitf_core
module Scenarios = Aitf_workload.Scenarios

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

(* --- Fault models on a live link ------------------------------------------ *)

(* A 1 Mbit/s link with its deliver seam installed, collecting arrivals. *)
let test_link sim =
  let link =
    Link.create sim ~name:"faulty" ~bandwidth:1e6 ~delay:0.01
      ~queue_capacity:1_000_000
  in
  let arrivals = ref [] in
  Link.set_deliver link (fun pkt -> arrivals := (Sim.now sim, pkt) :: !arrivals);
  (link, arrivals)

let data_packet ?(size = 1000) () =
  Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size
    (Packet.Data { flow_id = 0; attack = false })

let ctrl_packet () =
  Message.packet ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2")
    (Message.Verification_query
       { flow = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2");
         nonce = 42L })

let test_loss_all () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  let inj = Fault.inject ~rng:(Rng.create ~seed:1) sim link [ Fault.Loss 1.0 ] in
  for _ = 1 to 10 do Link.send link (data_packet ()) done;
  Sim.run sim;
  checki "nothing delivered" 0 (List.length !arrivals);
  checki "all drops injected" 10 (Fault.drops_injected inj);
  (* The wire was genuinely occupied: the link still accounts the packets
     as transmitted; only the injector records the sabotage. *)
  checki "link tx unaffected" 10 (Link.tx_packets link)

let test_loss_none () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  let inj = Fault.inject ~rng:(Rng.create ~seed:1) sim link [ Fault.Loss 0.0 ] in
  for _ = 1 to 10 do Link.send link (data_packet ()) done;
  Sim.run sim;
  checki "all delivered" 10 (List.length !arrivals);
  checki "no drops injected" 0 (Fault.drops_injected inj)

let test_loss_seeded () =
  let run seed =
    let sim = Sim.create () in
    let link, arrivals = test_link sim in
    ignore (Fault.inject ~rng:(Rng.create ~seed) sim link [ Fault.Loss 0.5 ]);
    for _ = 1 to 200 do Link.send link (data_packet ()) done;
    Sim.run sim;
    List.length !arrivals
  in
  checki "same seed, same outcome" (run 7) (run 7);
  let n = run 7 in
  checkb "roughly half delivered" true (n > 60 && n < 140)

let test_burst_loss () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  (* p_enter = 1: the channel falls into the all-loss bad state on the
     first packet and, with p_exit = 0, never recovers. *)
  let inj =
    Fault.inject ~rng:(Rng.create ~seed:3) sim link
      [ Fault.burst ~p_enter:1.0 ~p_exit:0.0 () ]
  in
  for _ = 1 to 20 do Link.send link (data_packet ()) done;
  Sim.run sim;
  checkb "at most the first packet escaped" true (List.length !arrivals <= 1);
  checkb "stuck in the bad state" true (Fault.in_bad_state inj)

let test_jitter_bounds () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  let inj =
    Fault.inject ~rng:(Rng.create ~seed:5) sim link
      [ Fault.Jitter { max_jitter = 0.5 } ]
  in
  for _ = 1 to 20 do Link.send link (data_packet ()) done;
  Sim.run sim;
  checki "all delivered" 20 (List.length !arrivals);
  checkb "some were delayed" true (Fault.delayed inj > 0);
  (* Serialization of the 20th packet ends at 0.16 s; nominal arrival is
     0.01 s later, jitter adds at most 0.5 s. *)
  List.iter
    (fun (t, _) -> checkb "within jitter bound" true (t <= 0.16 +. 0.01 +. 0.5))
    !arrivals

let test_duplicate_all () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  let inj =
    Fault.inject ~rng:(Rng.create ~seed:9) sim link [ Fault.Duplicate 1.0 ]
  in
  for _ = 1 to 5 do Link.send link (data_packet ()) done;
  Sim.run sim;
  checki "every packet arrives twice" 10 (List.length !arrivals);
  checki "dups counted" 5 (Fault.dups_injected inj)

let test_ctrl_only () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  let inj =
    Fault.inject ~only:Fault.ctrl_only ~rng:(Rng.create ~seed:2) sim link
      [ Fault.Loss 1.0 ]
  in
  for _ = 1 to 5 do Link.send link (data_packet ()) done;
  for _ = 1 to 5 do Link.send link (ctrl_packet ()) done;
  Sim.run sim;
  checki "data bypasses the models" 5 (List.length !arrivals);
  checkb "only data arrived" true
    (List.for_all (fun (_, p) -> not (Packet.is_control p)) !arrivals);
  checki "control dropped" 5 (Fault.drops_injected inj)

let test_flap_schedule () =
  let sim = Sim.create () in
  let link, arrivals = test_link sim in
  (* Down for 1 s out of every 3, starting at t = 1. Probe with one packet
     every 0.5 s: those entering the wire inside a down window are lost. *)
  let f = Fault.flap ~start:1.0 sim [ link ] ~period:3.0 ~down_for:1.0 in
  for i = 0 to 19 do
    ignore
      (Sim.at sim (0.25 +. (0.5 *. float_of_int i)) (fun () ->
           Link.send link (data_packet ())))
  done;
  Sim.run ~until:10.5 sim;
  (* Down windows [1,2) [4,5) [7,8) [10,11): four episodes begun. *)
  checki "down episodes" 4 (Fault.flaps f);
  (* Probes at 1.25, 1.75, 4.25, 4.75, 7.25, 7.75 fall inside down
     windows and are lost. *)
  checkb "packets lost during down windows" true
    (List.length !arrivals <= 20 - 6);
  Fault.stop_flapping f;
  checkb "links restored by stop" true (Link.up link)

let test_flap_validation () =
  let sim = Sim.create () in
  let link, _ = test_link sim in
  Alcotest.check_raises "period must exceed down_for"
    (Invalid_argument "Fault.flap: period must exceed down_for") (fun () ->
      ignore (Fault.flap sim [ link ] ~period:1.0 ~down_for:1.0))

(* --- Handshake retransmission --------------------------------------------- *)

let flow_av = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2")

let test_handshake_retransmit_backoff () =
  let sim = Sim.create () in
  let h =
    Handshake.create ~retries:3 ~backoff:2.0 sim (Rng.create ~seed:1)
      ~timeout:1.0
  in
  let sends = ref [] in
  let results = ref [] in
  ignore
    (Handshake.start h ~flow:flow_av
       ~send:(fun _ -> sends := Sim.now sim :: !sends)
       ~on_result:(fun r -> results := r :: !results));
  Sim.run sim;
  (* Initial send at 0, then timeouts at 1, 1+2, 1+2+4; giving up 8 s after
     the last retransmission. *)
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "send times with exponential backoff" [ 0.; 1.; 3.; 7. ]
    (List.rev !sends);
  check (Alcotest.list Alcotest.bool) "failed exactly once" [ false ] !results;
  checki "retransmits counted" 3 (Handshake.retransmits h);
  checki "one timeout however many attempts" 1 (Handshake.timed_out h)

let test_handshake_reply_after_retransmit () =
  let sim = Sim.create () in
  let h =
    Handshake.create ~retries:3 ~backoff:2.0 sim (Rng.create ~seed:1)
      ~timeout:1.0
  in
  let results = ref [] in
  let nonce =
    Handshake.start h ~flow:flow_av
      ~send:(fun _ -> ())
      ~on_result:(fun r -> results := r :: !results)
  in
  (* Reply lands between the 2nd and 3rd retransmission. *)
  ignore (Sim.at sim 4.0 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  Sim.run sim;
  check (Alcotest.list Alcotest.bool) "verified exactly once" [ true ] !results;
  checki "verified" 1 (Handshake.verified h);
  checki "two retransmits before the reply" 2 (Handshake.retransmits h)

let test_handshake_duplicate_reply_noop () =
  let sim = Sim.create () in
  let h =
    Handshake.create ~retries:1 sim (Rng.create ~seed:1) ~timeout:1.0
  in
  let results = ref [] in
  let nonce =
    Handshake.start h ~flow:flow_av
      ~send:(fun _ -> ())
      ~on_result:(fun r -> results := r :: !results)
  in
  ignore (Sim.at sim 0.2 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  ignore (Sim.at sim 0.3 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  ignore (Sim.at sim 0.4 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  Sim.run sim;
  check (Alcotest.list Alcotest.bool) "on_result fired once" [ true ] !results;
  checki "verified once" 1 (Handshake.verified h);
  checki "replays counted as duplicates" 2 (Handshake.duplicate_replies h);
  checki "not as forgeries" 0 (Handshake.bogus_replies h)

let test_handshake_replayed_nonce_wrong_flow_is_bogus () =
  let sim = Sim.create () in
  let h = Handshake.create sim (Rng.create ~seed:1) ~timeout:1.0 in
  let nonce =
    Handshake.start h ~flow:flow_av ~send:(fun _ -> ()) ~on_result:(fun _ -> ())
  in
  let other = Flow_label.host_pair (addr "9.0.0.9") (addr "2.0.0.2") in
  ignore (Sim.at sim 0.2 (fun () -> Handshake.handle_reply h ~flow:flow_av ~nonce));
  ignore (Sim.at sim 0.3 (fun () -> Handshake.handle_reply h ~flow:other ~nonce));
  Sim.run sim;
  checki "cross-flow replay is a forgery" 1 (Handshake.bogus_replies h);
  checki "not a duplicate" 0 (Handshake.duplicate_replies h)

(* --- Duplicate requests at the gateways are free no-ops ------------------- *)

(* A gateway with a one-token contract: the first request spends the token;
   its duplicate must be recognised — and acknowledged — without touching
   the bucket or the filter table a second time. *)

let request ~flow ~target ~path ~requestor =
  {
    Message.flow;
    target;
    duration = 60.;
    path;
    hops = 0;
    requestor;
    corr = 0;
    auth = 0L;
  }

let test_victim_gateway_duplicate_free () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let gw_node =
    Network.add_node net ~name:"gw" ~addr:(addr "10.0.0.1") ~as_id:1
      Node.Border_router
  in
  let victim =
    Network.add_node net ~name:"v" ~addr:(addr "10.0.0.10") ~as_id:1 Node.Host
  in
  ignore
    (Network.connect net gw_node victim ~bandwidth:1e6 ~delay:0.01
       ~queue_capacity:65536);
  Network.compute_routes net;
  let config = { Config.default with Config.r1 = 1.0; r1_burst = 1.0 } in
  let gw =
    Gateway.create ~clients:[ Addr.prefix (addr "10.0.0.0") 8 ] ~config
      ~rng:(Rng.create ~seed:1) net gw_node
  in
  let flow = Flow_label.host_pair (addr "20.0.0.66") (addr "10.0.0.10") in
  let req =
    Message.Filtering_request
      (request ~flow ~target:Message.To_victim_gateway ~path:[]
         ~requestor:(addr "10.0.0.10"))
  in
  let pkt () = Message.packet ~src:(addr "10.0.0.10") ~dst:(addr "10.0.0.1") req in
  gw_node.Node.local_deliver gw_node (pkt ());
  let occupancy_after_first = Filter_table.occupancy (Gateway.filters gw) in
  gw_node.Node.local_deliver gw_node (pkt ());
  gw_node.Node.local_deliver gw_node (pkt ());
  let c = Gateway.counters gw in
  checki "duplicates recognised" 2 (Counter.get c "req-duplicate");
  (* Pre-fix, the duplicate hit the empty one-token bucket first and was
     misclassified as a contract violation. *)
  checki "bucket untouched by duplicates" 0 (Counter.get c "req-policed");
  checki "filter not double-installed" occupancy_after_first
    (Filter_table.occupancy (Gateway.filters gw))

let test_attacker_gateway_duplicate_free () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let gw_node =
    Network.add_node net ~name:"bgw" ~addr:(addr "20.0.0.1") ~as_id:1
      Node.Border_router
  in
  let attacker =
    Network.add_node net ~name:"b" ~addr:(addr "20.0.0.66") ~as_id:1 Node.Host
  in
  ignore
    (Network.connect net gw_node attacker ~bandwidth:1e6 ~delay:0.01
       ~queue_capacity:65536);
  Network.compute_routes net;
  (* Handshake off so the request installs synchronously; remote contract of
     one token so a double-billed duplicate would be policed. *)
  let config =
    { Config.default with Config.handshake = false; remote_rate = 1.0;
      remote_burst = 1.0 }
  in
  let gw =
    Gateway.create ~clients:[ Addr.prefix (addr "20.0.0.0") 8 ] ~config
      ~rng:(Rng.create ~seed:1) net gw_node
  in
  let flow = Flow_label.host_pair (addr "20.0.0.66") (addr "10.0.0.10") in
  let req =
    Message.Filtering_request
      (request ~flow ~target:Message.To_attacker_gateway
         ~path:[ addr "20.0.0.1" ] ~requestor:(addr "10.0.0.1"))
  in
  let pkt () = Message.packet ~src:(addr "10.0.0.1") ~dst:(addr "20.0.0.1") req in
  gw_node.Node.local_deliver gw_node (pkt ());
  let c = Gateway.counters gw in
  checki "long filter installed once" 1 (Counter.get c "filter-long");
  gw_node.Node.local_deliver gw_node (pkt ());
  gw_node.Node.local_deliver gw_node (pkt ());
  checki "duplicates recognised" 2 (Counter.get c "req-duplicate");
  checki "bucket untouched by duplicates" 0 (Counter.get c "req-policed");
  checki "still exactly one install" 1 (Counter.get c "filter-long");
  checki "occupancy is one filter" 1 (Filter_table.occupancy (Gateway.filters gw))

(* --- End-to-end: the protocol under control-plane faults ------------------ *)

let fault_chain_params =
  {
    Scenarios.default_chain with
    Scenarios.config =
      { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 };
    duration = 30.;
    seed = 11;
  }

let test_converges_under_loss () =
  let r =
    Scenarios.run_chain
      {
        fault_chain_params with
        Scenarios.config =
          { fault_chain_params.Scenarios.config with
            Config.ctrl_retries = 3; ctrl_rto = 0.3 };
        ctrl_faults = [ Fault.Loss 0.2 ];
      }
  in
  checkb "faults actually injected" true (r.Scenarios.faults_injected > 0);
  (match Scenarios.time_to_suppress r ~threshold:0.05 with
  | Some t -> checkb "suppressed in finite time" true (t < 30.)
  | None -> Alcotest.fail "attack never suppressed under 20% control loss");
  checkb "attack mostly blocked" true (r.Scenarios.r_measured < 0.2)

let test_duplicated_control_plane_is_noop () =
  (* Deliver every control message twice and compare against the clean run:
     duplication must change neither verification nor install counts. *)
  let run ctrl_faults =
    let r = Scenarios.run_chain { fault_chain_params with ctrl_faults } in
    let d = r.Scenarios.deployed in
    (* The faults ride the victim's tail circuit, so the duplicated
       filtering requests land on G_gw1; the attacker's gateway shows
       whether the protocol outcome changed. *)
    let g_gw1 = List.hd d.Aitf_topo.Chain.victim_gateways in
    let b_gw1 = List.hd d.Aitf_topo.Chain.attacker_gateways in
    let cb = Gateway.counters b_gw1 in
    ( Counter.get cb "handshake-ok",
      Counter.get cb "filter-long",
      Counter.get (Gateway.counters g_gw1) "req-duplicate",
      r )
  in
  let ok_clean, long_clean, _, r_clean = run [] in
  let ok_dup, long_dup, dups, r_dup = run [ Fault.Duplicate 1.0 ] in
  checkb "duplicates were seen" true (dups > 0);
  checki "handshakes verified unchanged" ok_clean ok_dup;
  checki "long filters installed unchanged" long_clean long_dup;
  checkb "both runs suppress the attack" true
    (r_clean.Scenarios.r_measured < 0.2 && r_dup.Scenarios.r_measured < 0.2)

(* --- Satellite regressions ------------------------------------------------ *)

(* Heap.pop used to leave the popped element's box reachable through the
   backing array (slot data.(size)), pinning it for the heap's lifetime. *)
let test_heap_releases_popped () =
  let h = Heap.create ~cmp:(fun (a : int ref) b -> Int.compare !a !b) in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref i in
    Weak.set w i (Some v);
    Heap.push h v
  done;
  (* Partial drain: the vacated slots must not pin the popped elements. *)
  for _ = 0 to 3 do ignore (Heap.pop h) done;
  Gc.full_major ();
  for i = 0 to 3 do
    checkb
      (Printf.sprintf "popped element %d collectable after partial drain" i)
      true
      (Weak.get w i = None)
  done;
  (* Full drain: the backing array (including grow's seed copies) must go. *)
  for _ = 4 to 7 do ignore (Heap.pop h) done;
  Gc.full_major ();
  for i = 4 to 7 do
    checkb (Printf.sprintf "element %d collectable after full drain" i) true
      (Weak.get w i = None)
  done

(* Event_queue.length used to count cancelled-but-unpopped entries,
   disagreeing with is_empty. *)
let test_event_queue_length_ignores_cancelled () =
  let q = Event_queue.create () in
  let h1 = Event_queue.schedule q ~time:1.0 (fun () -> ()) in
  let h2 = Event_queue.schedule q ~time:2.0 (fun () -> ()) in
  let _h3 = Event_queue.schedule q ~time:3.0 (fun () -> ()) in
  Event_queue.cancel h1;
  Event_queue.cancel h2;
  Event_queue.cancel h2;
  (* double-cancel is idempotent *)
  checki "length counts live entries only" 1 (Event_queue.length q);
  checkb "not empty while one lives" false (Event_queue.is_empty q);
  checkb "pop skips the cancelled" true
    (match Event_queue.pop q with Some (t, _, _) -> t = 3.0 | None -> false);
  checki "drained" 0 (Event_queue.length q);
  checkb "empty and length agree" true (Event_queue.is_empty q)

(* A packet en route when the link goes down used to be counted both as
   transmitted (at send time) and dropped (at delivery time). *)
let test_link_counts_each_packet_once () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~name:"cut" ~bandwidth:1e6 ~delay:0.1 ~queue_capacity:65536
  in
  Link.set_deliver link (fun _ -> ());
  Link.send link (data_packet ());
  (* Serialization ends at 8 ms; cut the link while the packet is in
     flight, before its delivery at 108 ms. *)
  ignore (Sim.at sim 0.05 (fun () -> Link.set_up link false));
  Sim.run sim;
  checki "not transmitted" 0 (Link.tx_packets link);
  checki "dropped once" 1 (Link.dropped_packets link);
  checki "exactly one outcome" 1
    (Link.tx_packets link + Link.dropped_packets link)

(* The RED average queue used to freeze across idle periods: a stale high
   average early-dropped the first packets after the queue had long
   drained. *)
let test_red_average_decays_when_idle () =
  let sim = Sim.create () in
  let link =
    Link.create
      ~discipline:(Link.Red { min_th = 2000; max_th = 4000; max_p = 1.0 })
      sim ~name:"red" ~bandwidth:1e6 ~delay:0.01 ~queue_capacity:1_000_000
  in
  let delivered = ref 0 in
  Link.set_deliver link (fun _ -> incr delivered);
  (* Phase 1: a 100-packet burst drives the average over the thresholds. *)
  for _ = 1 to 100 do Link.send link (data_packet ()) done;
  let drops_after_burst = ref 0 in
  ignore (Sim.at sim 5.0 (fun () -> drops_after_burst := Link.early_drops link));
  (* Phase 2: after ~95 s of idle the average must have decayed — the
     back-to-back pair must not see a RED early drop. *)
  ignore
    (Sim.at sim 100.0 (fun () ->
         Link.send link (data_packet ());
         Link.send link (data_packet ())));
  Sim.run sim;
  checkb "the burst did trip RED" true (!drops_after_burst > 0);
  checki "no early drop after the idle period" !drops_after_burst
    (Link.early_drops link);
  checkb "post-idle packets delivered" true (!delivered >= 2)

let () =
  Alcotest.run "aitf_fault"
    [
      ( "models",
        [
          Alcotest.test_case "loss 1.0 drops all" `Quick test_loss_all;
          Alcotest.test_case "loss 0.0 drops none" `Quick test_loss_none;
          Alcotest.test_case "seeded loss deterministic" `Quick test_loss_seeded;
          Alcotest.test_case "gilbert-elliott burst" `Quick test_burst_loss;
          Alcotest.test_case "jitter bounded" `Quick test_jitter_bounds;
          Alcotest.test_case "duplication" `Quick test_duplicate_all;
          Alcotest.test_case "ctrl_only filter" `Quick test_ctrl_only;
          Alcotest.test_case "scheduled flaps" `Quick test_flap_schedule;
          Alcotest.test_case "flap validation" `Quick test_flap_validation;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "retransmit with backoff" `Quick
            test_handshake_retransmit_backoff;
          Alcotest.test_case "reply after retransmit" `Quick
            test_handshake_reply_after_retransmit;
          Alcotest.test_case "duplicate reply is a no-op" `Quick
            test_handshake_duplicate_reply_noop;
          Alcotest.test_case "replayed nonce, wrong flow" `Quick
            test_handshake_replayed_nonce_wrong_flow_is_bogus;
        ] );
      ( "idempotence",
        [
          Alcotest.test_case "victim gateway duplicate free" `Quick
            test_victim_gateway_duplicate_free;
          Alcotest.test_case "attacker gateway duplicate free" `Quick
            test_attacker_gateway_duplicate_free;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "converges under 20% ctrl loss" `Quick
            test_converges_under_loss;
          Alcotest.test_case "duplicated control plane is a no-op" `Quick
            test_duplicated_control_plane_is_noop;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "heap releases popped elements" `Quick
            test_heap_releases_popped;
          Alcotest.test_case "event queue length vs cancel" `Quick
            test_event_queue_length_ignores_cancelled;
          Alcotest.test_case "link counts each packet once" `Quick
            test_link_counts_each_packet_once;
          Alcotest.test_case "RED average decays when idle" `Quick
            test_red_average_decays_when_idle;
        ] );
    ]
