(* Tests for aitf_net: addresses, packets, LPM, links, nodes, network
   forwarding and routing. *)

module Sim = Aitf_engine.Sim
open Aitf_net

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf = check (Alcotest.float 1e-9)

(* --- Addr ---------------------------------------------------------------- *)

let test_addr_roundtrip () =
  let cases = [ "0.0.0.0"; "10.0.0.1"; "192.168.1.254"; "255.255.255.255" ] in
  List.iter (fun s -> checks s s (Addr.to_string (Addr.of_string s))) cases

let test_addr_of_octets () =
  checks "octets" "10.1.2.3" (Addr.to_string (Addr.of_octets 10 1 2 3));
  checkb "bad octet" true
    (try
       ignore (Addr.of_octets 256 0 0 0);
       false
     with Invalid_argument _ -> true)

let test_addr_bad_strings () =
  List.iter
    (fun s ->
      checkb s true
        (try
           ignore (Addr.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "10.0.0"; "a.b.c.d"; ""; "1.2.3.4.5" ]

let test_addr_bits () =
  let a = Addr.of_string "128.0.0.1" in
  checkb "msb set" true (Addr.bit a 0);
  checkb "bit 1 clear" false (Addr.bit a 1);
  checkb "lsb set" true (Addr.bit a 31)

let test_addr_succ_add () =
  let a = Addr.of_string "10.0.0.255" in
  checks "succ crosses octet" "10.0.1.0" (Addr.to_string (Addr.succ a));
  checks "add" "10.0.1.9" (Addr.to_string (Addr.add a 10))

let test_prefix_normalisation () =
  let p = Addr.prefix (Addr.of_string "10.1.2.3") 8 in
  checks "host bits cleared" "10.0.0.0/8" (Addr.prefix_to_string p);
  let q = Addr.prefix_of_string "10.5.6.7/8" in
  checki "equal prefixes compare 0" 0 (Addr.prefix_compare p q)

let test_prefix_membership () =
  let p = Addr.prefix_of_string "10.1.0.0/16" in
  checkb "inside" true (Addr.prefix_mem p (Addr.of_string "10.1.200.3"));
  checkb "outside" false (Addr.prefix_mem p (Addr.of_string "10.2.0.1"));
  let zero = Addr.prefix_of_string "0.0.0.0/0" in
  checkb "default route matches all" true
    (Addr.prefix_mem zero (Addr.of_string "250.1.2.3"))

let test_prefix_len_bounds () =
  checkb "len 33 rejected" true
    (try
       ignore (Addr.prefix (Addr.of_string "1.2.3.4") 33);
       false
     with Invalid_argument _ -> true);
  let host = Addr.host_prefix (Addr.of_string "1.2.3.4") in
  checkb "host prefix only self" true
    (Addr.prefix_mem host (Addr.of_string "1.2.3.4")
    && not (Addr.prefix_mem host (Addr.of_string "1.2.3.5")))

(* --- Packet -------------------------------------------------------------- *)

let addr = Addr.of_string

let test_packet_make () =
  Packet.reset_ids ();
  let p =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:500
      (Packet.Data { flow_id = 1; attack = false })
  in
  checki "id starts at 0" 0 p.Packet.id;
  checkb "src = true_src" true (Addr.equal p.Packet.src p.Packet.true_src);
  checki "default ttl" 64 p.Packet.ttl;
  let q =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:500
      (Packet.Data { flow_id = 1; attack = false })
  in
  checki "ids increment" 1 q.Packet.id

let test_packet_spoofing () =
  let p =
    Packet.make ~spoofed_src:(addr "9.9.9.9") ~src:(addr "1.0.0.1")
      ~dst:(addr "2.0.0.2") ~size:100
      (Packet.Data { flow_id = 1; attack = true })
  in
  checks "header src spoofed" "9.9.9.9" (Addr.to_string p.Packet.src);
  checks "true src kept" "1.0.0.1" (Addr.to_string p.Packet.true_src)

let test_packet_route_record () =
  let p =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:100
      (Packet.Data { flow_id = 1; attack = false })
  in
  Packet.record_route p (addr "3.0.0.1");
  Packet.record_route p (addr "4.0.0.1");
  check (Alcotest.list Alcotest.string) "traversal order"
    [ "3.0.0.1"; "4.0.0.1" ]
    (List.map Addr.to_string p.Packet.route_record)

let test_packet_route_record_bounded () =
  let p =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:100
      (Packet.Data { flow_id = 1; attack = false })
  in
  for i = 0 to Packet.route_record_limit + 5 do
    Packet.record_route p (Addr.add (addr "5.0.0.0") i)
  done;
  checki "bounded" Packet.route_record_limit (List.length p.Packet.route_record)

let test_packet_is_control () =
  let data =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:100
      (Packet.Data { flow_id = 1; attack = false })
  in
  checkb "data is not control" false (Packet.is_control data)

(* --- LPM ----------------------------------------------------------------- *)

let test_lpm_empty () =
  let t : int Lpm.t = Lpm.create () in
  checkb "lookup misses" true (Lpm.lookup t (addr "1.2.3.4") = None);
  checki "size" 0 (Lpm.size t)

let test_lpm_longest_match () =
  let t = Lpm.create () in
  Lpm.insert t (Addr.prefix_of_string "10.0.0.0/8") "eight";
  Lpm.insert t (Addr.prefix_of_string "10.1.0.0/16") "sixteen";
  Lpm.insert t (Addr.prefix_of_string "10.1.2.0/24") "twentyfour";
  checkb "/24 wins" true (Lpm.lookup t (addr "10.1.2.3") = Some "twentyfour");
  checkb "/16 wins" true (Lpm.lookup t (addr "10.1.9.1") = Some "sixteen");
  checkb "/8 wins" true (Lpm.lookup t (addr "10.200.0.1") = Some "eight");
  checkb "no match" true (Lpm.lookup t (addr "11.0.0.1") = None)

let test_lpm_default_route () =
  let t = Lpm.create () in
  Lpm.insert t (Addr.prefix_of_string "0.0.0.0/0") "default";
  Lpm.insert t (Addr.prefix_of_string "10.0.0.0/8") "ten";
  checkb "default" true (Lpm.lookup t (addr "200.0.0.1") = Some "default");
  checkb "specific" true (Lpm.lookup t (addr "10.0.0.1") = Some "ten")

let test_lpm_replace_and_remove () =
  let t = Lpm.create () in
  let p = Addr.prefix_of_string "10.0.0.0/8" in
  Lpm.insert t p 1;
  Lpm.insert t p 2;
  checki "size after replace" 1 (Lpm.size t);
  checkb "replaced" true (Lpm.exact t p = Some 2);
  Lpm.remove t p;
  checki "size after remove" 0 (Lpm.size t);
  checkb "gone" true (Lpm.lookup t (addr "10.0.0.1") = None);
  Lpm.remove t p (* idempotent *)

let test_lpm_host_route () =
  let t = Lpm.create () in
  Lpm.insert t (Addr.host_prefix (addr "10.0.0.5")) "host";
  Lpm.insert t (Addr.prefix_of_string "10.0.0.0/24") "net";
  checkb "host wins" true (Lpm.lookup t (addr "10.0.0.5") = Some "host");
  checkb "sibling uses net" true (Lpm.lookup t (addr "10.0.0.6") = Some "net")

let test_lpm_lookup_prefix () =
  let t = Lpm.create () in
  Lpm.insert t (Addr.prefix_of_string "10.1.0.0/16") "p";
  match Lpm.lookup_prefix t (addr "10.1.2.3") with
  | Some (p, "p") -> checks "prefix" "10.1.0.0/16" (Addr.prefix_to_string p)
  | _ -> Alcotest.fail "expected match"

let test_lpm_iter_and_clear () =
  let t = Lpm.create () in
  List.iter
    (fun s -> Lpm.insert t (Addr.prefix_of_string s) s)
    [ "10.0.0.0/8"; "10.1.0.0/16"; "192.168.0.0/24"; "0.0.0.0/0" ];
  let seen = ref [] in
  Lpm.iter t (fun p v ->
      checks "prefix matches value" v (Addr.prefix_to_string p);
      seen := v :: !seen);
  checki "visited all" 4 (List.length !seen);
  Lpm.clear t;
  checki "cleared" 0 (Lpm.size t);
  checkb "lookup after clear" true (Lpm.lookup t (addr "10.0.0.1") = None)

(* Reference model: LPM as a linear scan over a list of (prefix, value). *)
let lpm_vs_reference =
  let gen_prefix =
    QCheck.Gen.(
      map2
        (fun base len -> Addr.prefix (Int32.of_int base) len)
        (int_bound 0xFFFFFF) (int_bound 24))
  in
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair (list_size (int_bound 30) gen_prefix) (int_bound 0xFFFFFF))
  in
  QCheck.Test.make ~name:"lpm agrees with linear reference" ~count:300 arb
    (fun (prefixes, addr_int) ->
      let a = Int32.of_int addr_int in
      let t = Lpm.create () in
      List.iteri (fun i p -> Lpm.insert t p i) prefixes;
      (* Reference: longest covering prefix wins; among duplicates the
         later insert replaces the earlier. *)
      let best = ref None in
      List.iteri
        (fun i p ->
          if Addr.prefix_mem p a then
            match !best with
            | Some (len, _) when len > (p : Addr.prefix).len -> ()
            | Some (len, _) when len = (p : Addr.prefix).len ->
              best := Some (len, i)
            | _ -> best := Some ((p : Addr.prefix).len, i))
        prefixes;
      Lpm.lookup t a = Option.map snd !best)

(* Structural check of remove's chain pruning: dead interior nodes must be
   detached, so the trie shrinks back to exactly what the live prefixes
   need. *)
let test_lpm_prune () =
  let t = Lpm.create () in
  Lpm.insert t (Addr.prefix_of_string "10.0.0.0/8") 1;
  checki "root + 8 bits" 9 (Lpm.node_count t);
  Lpm.insert t (Addr.prefix_of_string "10.1.0.0/16") 2;
  checki "extended to 16" 17 (Lpm.node_count t);
  Lpm.remove t (Addr.prefix_of_string "10.1.0.0/16");
  checki "chain pruned back" 9 (Lpm.node_count t);
  checkb "invariant" true (Lpm.invariant t);
  Lpm.remove t (Addr.prefix_of_string "10.0.0.0/8");
  checki "root only" 1 (Lpm.node_count t);
  checkb "invariant after full removal" true (Lpm.invariant t)

(* Differential churn test: a seeded random mix of insert/remove/lookup
   against an assoc-list oracle, checking size, lookups, iter contents and
   the structural invariant after every batch, and full pruning at the
   end. *)
let lpm_churn_differential =
  let module Rng = Aitf_engine.Rng in
  let arb = QCheck.make QCheck.Gen.(int_bound 0xFFFF) in
  QCheck.Test.make ~name:"lpm churn agrees with assoc-list oracle" ~count:40
    arb (fun seed ->
      let rng = Rng.create ~seed in
      let t = Lpm.create () in
      let oracle = ref [] in
      let mem p = List.exists (fun (q, _) -> Addr.prefix_compare p q = 0) in
      let random_prefix () =
        (* A small universe so removes hit live prefixes often. *)
        Addr.prefix
          (Int32.of_int (Rng.int rng 0x40 * 0x40000))
          (Rng.int rng 33)
      in
      let reference_lookup a =
        List.fold_left
          (fun best (p, v) ->
            if Addr.prefix_mem p a then
              match best with
              | Some (len, _) when len >= (p : Addr.prefix).Addr.len -> best
              | _ -> Some ((p : Addr.prefix).Addr.len, v)
            else best)
          None !oracle
        |> Option.map snd
      in
      let agree_on a = Lpm.lookup t a = reference_lookup a in
      let check_batch () =
        if Lpm.size t <> List.length !oracle then failwith "size mismatch";
        if not (Lpm.invariant t) then failwith "invariant broken";
        let dump acc = List.sort compare acc in
        let from_trie = ref [] in
        Lpm.iter t (fun p v ->
            from_trie := (Addr.prefix_to_string p, v) :: !from_trie);
        let from_oracle =
          List.map (fun (p, v) -> (Addr.prefix_to_string p, v)) !oracle
        in
        if dump !from_trie <> dump from_oracle then failwith "iter mismatch";
        for _ = 1 to 20 do
          if not (agree_on (Int32.of_int (Rng.int rng 0x1000000))) then
            failwith "lookup mismatch"
        done
      in
      for step = 1 to 400 do
        let p = random_prefix () in
        (if Rng.int rng 3 = 0 then begin
           Lpm.remove t p;
           oracle :=
             List.filter (fun (q, _) -> Addr.prefix_compare p q <> 0) !oracle
         end
         else begin
           Lpm.insert t p step;
           oracle :=
             (p, step)
             :: List.filter
                  (fun (q, _) -> Addr.prefix_compare p q <> 0)
                  !oracle
         end);
        ignore (mem p []);
        if step mod 50 = 0 then check_batch ()
      done;
      check_batch ();
      (* Remove everything: the trie must prune back to the bare root. *)
      List.iter (fun (p, _) -> Lpm.remove t p) !oracle;
      oracle := [];
      Lpm.size t = 0 && Lpm.node_count t = 1 && Lpm.invariant t)

(* --- Link ---------------------------------------------------------------- *)

let mk_packet ?(size = 1000) () =
  Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size
    (Packet.Data { flow_id = 0; attack = false })

let test_link_delivery_timing () =
  let sim = Sim.create () in
  (* 8 kbit packet over 8 kbit/s + 0.5 s propagation = 1.5 s. *)
  let l =
    Link.create sim ~name:"l" ~bandwidth:8000. ~delay:0.5 ~queue_capacity:10000
  in
  let arrival = ref 0. in
  Link.set_deliver l (fun _ -> arrival := Sim.now sim);
  Link.send l (mk_packet ~size:1000 ());
  Sim.run sim;
  checkf "serialization + propagation" 1.5 !arrival

let test_link_serialises_back_to_back () =
  let sim = Sim.create () in
  let l =
    Link.create sim ~name:"l" ~bandwidth:8000. ~delay:0. ~queue_capacity:10000
  in
  let times = ref [] in
  Link.set_deliver l (fun _ -> times := Sim.now sim :: !times);
  Link.send l (mk_packet ~size:1000 ());
  Link.send l (mk_packet ~size:1000 ());
  Sim.run sim;
  check (Alcotest.list (Alcotest.float 1e-9)) "one second apart" [ 1.0; 2.0 ]
    (List.rev !times)

let test_link_queue_overflow () =
  let sim = Sim.create () in
  (* Queue of 1500 B: holds one waiting 1000 B packet plus the one in
     service. *)
  let l =
    Link.create sim ~name:"l" ~bandwidth:8000. ~delay:0. ~queue_capacity:1500
  in
  let received = ref 0 in
  Link.set_deliver l (fun _ -> incr received);
  for _ = 1 to 5 do
    Link.send l (mk_packet ~size:1000 ())
  done;
  Sim.run sim;
  checki "two delivered" 2 !received;
  checki "three dropped" 3 (Link.dropped_packets l);
  checki "dropped bytes" 3000 (Link.dropped_bytes l)

let test_link_down () =
  let sim = Sim.create () in
  let l =
    Link.create sim ~name:"l" ~bandwidth:1e6 ~delay:0. ~queue_capacity:10000
  in
  let received = ref 0 in
  Link.set_deliver l (fun _ -> incr received);
  Link.set_up l false;
  Link.send l (mk_packet ());
  Sim.run sim;
  checki "nothing delivered" 0 !received;
  checki "counted as drop" 1 (Link.dropped_packets l)

let test_link_stats () =
  let sim = Sim.create () in
  let l =
    Link.create sim ~name:"l" ~bandwidth:1e6 ~delay:0.01 ~queue_capacity:10000
  in
  Link.set_deliver l (fun _ -> ());
  Link.send l (mk_packet ~size:500 ());
  Link.send l (mk_packet ~size:700 ());
  Sim.run sim;
  checki "tx packets" 2 (Link.tx_packets l);
  checki "tx bytes" 1200 (Link.tx_bytes l)

let test_link_validation () =
  let sim = Sim.create () in
  checkb "bad bandwidth" true
    (try
       ignore
         (Link.create sim ~name:"x" ~bandwidth:0. ~delay:0. ~queue_capacity:1);
       false
     with Invalid_argument _ -> true);
  checkb "bad delay" true
    (try
       ignore
         (Link.create sim ~name:"x" ~bandwidth:1. ~delay:(-1.)
            ~queue_capacity:1);
       false
     with Invalid_argument _ -> true)

let test_link_red_early_drops () =
  let sim = Sim.create () in
  let l =
    Link.create
      ~discipline:(Link.Red { min_th = 2000; max_th = 8000; max_p = 0.5 })
      sim ~name:"red" ~bandwidth:8e5 ~delay:0. ~queue_capacity:16000
  in
  let received = ref 0 in
  Link.set_deliver l (fun _ -> incr received);
  (* Offer 4x the link rate for 2 seconds. *)
  let n = ref 0 in
  let rec offer t =
    if t < 2.0 then
      ignore
        (Sim.at sim t (fun () ->
             incr n;
             Link.send l (mk_packet ~size:1000 ());
             offer (t +. 0.0025)))
  in
  offer 0.;
  Sim.run sim;
  checkb "early drops happened" true (Link.early_drops l > 0);
  (* RED keeps the standing queue short: backlog stays closer to max_th
     than to the hard capacity. *)
  checkb "queue never saturated" true
    (Link.dropped_packets l > Link.early_drops l - 1);
  checkb "still forwards" true (!received > 100)

let test_link_red_below_threshold_is_droptail () =
  let sim = Sim.create () in
  let l =
    Link.create
      ~discipline:(Link.Red { min_th = 4000; max_th = 8000; max_p = 0.5 })
      sim ~name:"red2" ~bandwidth:8e6 ~delay:0. ~queue_capacity:16000
  in
  let received = ref 0 in
  Link.set_deliver l (fun _ -> incr received);
  (* Light load: average queue never reaches min_th. *)
  for _ = 1 to 3 do
    Link.send l (mk_packet ~size:1000 ())
  done;
  Sim.run sim;
  checki "all delivered" 3 !received;
  checki "no early drops" 0 (Link.early_drops l)

let test_link_red_deterministic () =
  let run () =
    let sim = Sim.create () in
    let l =
      Link.create
        ~discipline:(Link.Red { min_th = 1000; max_th = 4000; max_p = 1.0 })
        sim ~name:"same-name" ~bandwidth:8e5 ~delay:0. ~queue_capacity:8000
    in
    Link.set_deliver l (fun _ -> ());
    let rec offer t =
      if t < 1.0 then
        ignore
          (Sim.at sim t (fun () ->
               Link.send l (mk_packet ~size:1000 ());
               offer (t +. 0.002)))
    in
    offer 0.;
    Sim.run sim;
    (Link.tx_packets l, Link.dropped_packets l, Link.early_drops l)
  in
  checkb "same name, same RED decisions" true (run () = run ())

(* --- Network ------------------------------------------------------------- *)

(* A -- B -- C line with a host on each end. *)
let line () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a =
    Network.add_node net ~name:"a" ~addr:(addr "10.0.0.1") ~as_id:1 Node.Host
  in
  let b =
    Network.add_node net ~name:"b" ~addr:(addr "10.0.1.1") ~as_id:2
      Node.Border_router
  in
  let c =
    Network.add_node net ~name:"c" ~addr:(addr "10.0.2.1") ~as_id:3 Node.Host
  in
  ignore (Network.connect net a b ~bandwidth:1e6 ~delay:0.01);
  ignore (Network.connect net b c ~bandwidth:1e6 ~delay:0.01);
  Network.compute_routes net;
  (sim, net, a, b, c)

let test_network_end_to_end () =
  let sim, net, a, b, c = line () in
  let got = ref None in
  c.Node.local_deliver <- (fun _ pkt -> got := Some pkt);
  let p =
    Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
      (Packet.Data { flow_id = 7; attack = false })
  in
  Network.originate net a p;
  Sim.run sim;
  (match !got with
  | Some pkt ->
    checki "flow id intact" 7
      (match pkt.Packet.payload with
      | Packet.Data { flow_id; _ } -> flow_id
      | _ -> -1);
    checkb "last hop is b" true (pkt.Packet.last_hop = Some b.Node.addr)
  | None -> Alcotest.fail "not delivered");
  checki "b forwarded once" 1 b.Node.forwarded_packets;
  checki "c delivered once" 1 c.Node.delivered_packets

let test_network_duplicate_addr_rejected () =
  let sim = Sim.create () in
  let net = Network.create sim in
  ignore
    (Network.add_node net ~name:"x" ~addr:(addr "1.1.1.1") ~as_id:1 Node.Host);
  checkb "duplicate rejected" true
    (try
       ignore
         (Network.add_node net ~name:"y" ~addr:(addr "1.1.1.1") ~as_id:1
            Node.Host);
       false
     with Invalid_argument _ -> true)

let test_network_hook_drop () =
  let sim, net, a, b, c = line () in
  Node.add_hook b (fun _ _ -> Node.Drop "test-drop");
  let delivered = ref false in
  c.Node.local_deliver <- (fun _ _ -> delivered := true);
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  checkb "dropped at hook" false !delivered;
  checki "drop counted" 1 (Node.drop_count b "test-drop");
  checki "network-wide count" 1 (Network.total_drops net ~reason:"test-drop")

let test_network_hook_order_first_drop_wins () =
  let sim, net, a, b, c = line () in
  let log = ref [] in
  Node.add_hook b (fun _ _ ->
      log := "first-added" :: !log;
      Node.Drop "x");
  Node.add_hook b (fun _ _ ->
      log := "second-added" :: !log;
      Node.Continue);
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  (* Later-added hooks run first. *)
  check
    (Alcotest.list Alcotest.string)
    "order"
    [ "second-added"; "first-added" ]
    (List.rev !log)

let test_network_ttl_expiry () =
  let sim, net, a, b, c = line () in
  let delivered = ref false in
  c.Node.local_deliver <- (fun _ _ -> delivered := true);
  let p =
    Packet.make ~ttl:1 ~src:a.Node.addr ~dst:c.Node.addr ~size:100
      (Packet.Data { flow_id = 0; attack = false })
  in
  Network.originate net a p;
  Sim.run sim;
  checkb "ttl killed it" false !delivered;
  checki "ttl drop at b" 1 (Node.drop_count b "ttl-expired")

let test_network_no_route () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a =
    Network.add_node net ~name:"a" ~addr:(addr "1.0.0.1") ~as_id:1 Node.Host
  in
  Network.compute_routes net;
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:(addr "2.0.0.2") ~size:10
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  checki "no-route counted" 1 (Node.drop_count a "no-route")

let test_network_disconnect_port () =
  let sim, net, a, b, c = line () in
  let delivered = ref 0 in
  c.Node.local_deliver <- (fun _ _ -> incr delivered);
  checkb "disconnect works" true
    (Network.disconnect_port net b ~peer_id:c.Node.id);
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  checki "nothing arrives" 0 !delivered;
  checkb "unknown peer" false (Network.disconnect_port net b ~peer_id:999)

let test_network_shortest_path () =
  (* a-b-d has higher total delay than a-c-d; routing must use the lower
     delay path. *)
  let sim = Sim.create () in
  let net = Network.create sim in
  let mk name ip =
    Network.add_node net ~name ~addr:(addr ip) ~as_id:1 Node.Router
  in
  let a = mk "a" "1.0.0.1" in
  let b = mk "b" "1.0.0.2" in
  let c = mk "c" "1.0.0.3" in
  let d = mk "d" "1.0.0.4" in
  ignore (Network.connect net a b ~bandwidth:1e6 ~delay:0.5);
  ignore (Network.connect net b d ~bandwidth:1e6 ~delay:0.5);
  ignore (Network.connect net a c ~bandwidth:1e6 ~delay:0.01);
  ignore (Network.connect net c d ~bandwidth:1e6 ~delay:0.01);
  Network.compute_routes net;
  let got_via = ref None in
  d.Node.local_deliver <- (fun _ pkt -> got_via := pkt.Packet.last_hop);
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:d.Node.addr ~size:10
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  checkb "went via c" true (!got_via = Some c.Node.addr)

let test_network_as_local_scope () =
  (* Host h advertises /32 AS-locally; a node in another AS must reach it
     via the gateway's aggregate instead. *)
  let sim = Sim.create () in
  let net = Network.create sim in
  let h =
    Network.add_node net ~name:"h" ~addr:(addr "10.0.0.10") ~as_id:5 Node.Host
  in
  let gw =
    Network.add_node net ~name:"gw" ~addr:(addr "10.0.0.1") ~as_id:5
      Node.Border_router
  in
  let remote =
    Network.add_node net ~name:"r" ~addr:(addr "20.0.0.1") ~as_id:6 Node.Host
  in
  h.Node.advertised <- [ (Addr.host_prefix h.Node.addr, Node.As_local) ];
  gw.Node.advertised <-
    [
      (Addr.prefix_of_string "10.0.0.0/16", Node.Global);
      (Addr.host_prefix gw.Node.addr, Node.Global);
    ];
  ignore (Network.connect net gw h ~bandwidth:1e6 ~delay:0.001);
  ignore (Network.connect net gw remote ~bandwidth:1e6 ~delay:0.001);
  Network.compute_routes net;
  let delivered = ref false in
  h.Node.local_deliver <- (fun _ _ -> delivered := true);
  Network.originate net remote
    (Packet.make ~src:remote.Node.addr ~dst:h.Node.addr ~size:10
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  checkb "reached via aggregate + AS-local host route" true !delivered;
  (* And the remote's FIB must not contain the AS-local /32. *)
  checkb "remote lacks host route" true
    (Lpm.exact remote.Node.fib (Addr.host_prefix h.Node.addr) = None)

(* --- Tap ------------------------------------------------------------------- *)

let test_tap_captures_transit () =
  let sim, net, a, b, c = line () in
  let tap = Tap.attach b in
  for _ = 1 to 3 do
    Network.originate net a
      (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
         (Packet.Data { flow_id = 1; attack = false }))
  done;
  Sim.run sim;
  checki "captured" 3 (Tap.count tap);
  checki "matched" 3 (Tap.matched tap);
  checkb "in order, right flow" true
    (List.for_all
       (fun (p : Packet.t) ->
         match p.Packet.payload with
         | Packet.Data { flow_id = 1; _ } -> true
         | _ -> false)
       (Tap.captured tap))

let test_tap_filter_and_limit () =
  let sim, net, a, b, c = line () in
  let tap =
    Tap.attach ~limit:2
      ~filter:(fun p ->
        match p.Packet.payload with
        | Packet.Data { attack; _ } -> attack
        | _ -> false)
      b
  in
  for i = 1 to 5 do
    Network.originate net a
      (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
         (Packet.Data { flow_id = i; attack = i mod 2 = 0 }))
  done;
  Sim.run sim;
  checki "only attack packets matched" 2 (Tap.matched tap);
  checki "recorded up to limit" 2 (Tap.count tap)

let test_tap_clear_and_stop () =
  let sim, net, a, b, c = line () in
  let tap = Tap.attach b in
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  Tap.clear tap;
  checki "cleared" 0 (Tap.count tap);
  checki "matched preserved" 1 (Tap.matched tap);
  Tap.stop tap;
  Network.originate net a
    (Packet.make ~src:a.Node.addr ~dst:c.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  checki "stopped" 1 (Tap.matched tap)

let () =
  Alcotest.run "aitf_net"
    [
      ( "addr",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "of_octets" `Quick test_addr_of_octets;
          Alcotest.test_case "bad strings" `Quick test_addr_bad_strings;
          Alcotest.test_case "bits" `Quick test_addr_bits;
          Alcotest.test_case "succ/add" `Quick test_addr_succ_add;
          Alcotest.test_case "prefix normalisation" `Quick
            test_prefix_normalisation;
          Alcotest.test_case "prefix membership" `Quick test_prefix_membership;
          Alcotest.test_case "prefix bounds" `Quick test_prefix_len_bounds;
        ] );
      ( "packet",
        [
          Alcotest.test_case "make" `Quick test_packet_make;
          Alcotest.test_case "spoofing" `Quick test_packet_spoofing;
          Alcotest.test_case "route record" `Quick test_packet_route_record;
          Alcotest.test_case "route record bounded" `Quick
            test_packet_route_record_bounded;
          Alcotest.test_case "is_control" `Quick test_packet_is_control;
        ] );
      ( "lpm",
        [
          Alcotest.test_case "empty" `Quick test_lpm_empty;
          Alcotest.test_case "longest match" `Quick test_lpm_longest_match;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          Alcotest.test_case "replace/remove" `Quick
            test_lpm_replace_and_remove;
          Alcotest.test_case "host route" `Quick test_lpm_host_route;
          Alcotest.test_case "lookup_prefix" `Quick test_lpm_lookup_prefix;
          Alcotest.test_case "iter/clear" `Quick test_lpm_iter_and_clear;
          Alcotest.test_case "prune on remove" `Quick test_lpm_prune;
          QCheck_alcotest.to_alcotest lpm_vs_reference;
          QCheck_alcotest.to_alcotest lpm_churn_differential;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
          Alcotest.test_case "serialisation" `Quick
            test_link_serialises_back_to_back;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "down" `Quick test_link_down;
          Alcotest.test_case "stats" `Quick test_link_stats;
          Alcotest.test_case "validation" `Quick test_link_validation;
          Alcotest.test_case "red early drops" `Quick test_link_red_early_drops;
          Alcotest.test_case "red light load" `Quick
            test_link_red_below_threshold_is_droptail;
          Alcotest.test_case "red deterministic" `Quick
            test_link_red_deterministic;
        ] );
      ( "network",
        [
          Alcotest.test_case "end to end" `Quick test_network_end_to_end;
          Alcotest.test_case "duplicate addr" `Quick
            test_network_duplicate_addr_rejected;
          Alcotest.test_case "hook drop" `Quick test_network_hook_drop;
          Alcotest.test_case "hook order" `Quick
            test_network_hook_order_first_drop_wins;
          Alcotest.test_case "ttl expiry" `Quick test_network_ttl_expiry;
          Alcotest.test_case "no route" `Quick test_network_no_route;
          Alcotest.test_case "disconnect port" `Quick
            test_network_disconnect_port;
          Alcotest.test_case "shortest path" `Quick test_network_shortest_path;
          Alcotest.test_case "as-local scope" `Quick test_network_as_local_scope;
        ] );
      ( "tap",
        [
          Alcotest.test_case "captures transit" `Quick test_tap_captures_transit;
          Alcotest.test_case "filter and limit" `Quick test_tap_filter_and_limit;
          Alcotest.test_case "clear and stop" `Quick test_tap_clear_and_stop;
        ] );
    ]
