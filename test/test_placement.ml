(* Tests for the filter-placement seam (Placement / Placement_ctl) and the
   Internet-scale AS scenario that exercises it. *)

module Series = Aitf_stats.Series
module Filter_table = Aitf_filter.Filter_table
open Aitf_core
open Aitf_topo
module As_scenario = Aitf_workload.As_scenario
module Placement_ctl = Aitf_workload.Placement_ctl

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- policy parsing --------------------------------------------------------- *)

let test_policy_parsing () =
  List.iter
    (fun p ->
      match Placement.policy_of_string (Placement.policy_to_string p) with
      | Ok p' -> checkb "roundtrip" true (p = p')
      | Error e -> Alcotest.fail e)
    Placement.all_policies;
  checkb "case-insensitive" true
    (Placement.policy_of_string "OPTIMAL" = Ok Placement.Optimal);
  checkb "unknown rejected" true
    (match Placement.policy_of_string "magic" with
    | Error _ -> true
    | Ok _ -> false)

let test_vanilla_handle_inert () =
  checkb "vanilla unmanaged" false (Placement.managed Placement.vanilla);
  let p =
    Placement.create ~policy:Placement.Optimal ~report:(fun (_ : Placement.evidence) -> ())
  in
  checkb "optimal managed" true (Placement.managed p)

(* --- the AS scenario, one run per policy ------------------------------------ *)

let small_spec = { As_graph.default_spec with As_graph.domains = 80 }

let small_params policy =
  {
    As_scenario.default with
    As_scenario.as_spec = small_spec;
    as_config =
      {
        Config.default with
        Config.engine = Config.Hybrid;
        placement = policy;
        placement_epoch = 0.25;
      };
    as_seed = 7;
    as_duration = 10.;
    as_sources = 4_000;
    as_attack_domains = 8;
    as_legit_domains = 4;
    as_legit_sources = 800;
    as_attack_rate = 160e6;
    as_legit_rate = 4e6;
  }

let test_vanilla_runs () =
  let r = As_scenario.run (small_params Placement.Vanilla) in
  checkb "no controller" true (r.As_scenario.r_ctl = None);
  checkb "victim requested filters" true (r.As_scenario.r_requests_sent > 0);
  checki "no placement reports" 0 r.As_scenario.r_reports;
  checkb "collateral in [0,1]" true
    (r.As_scenario.r_collateral_fraction >= 0.
    && r.As_scenario.r_collateral_fraction <= 1.);
  checkb "events processed" true (r.As_scenario.r_events > 0)

let test_optimal_suppresses () =
  let r = As_scenario.run (small_params Placement.Optimal) in
  let ctl =
    match r.As_scenario.r_ctl with
    | Some c -> c
    | None -> Alcotest.fail "optimal run has no controller"
  in
  checkb "evidence reported" true (Placement_ctl.evidence ctl > 0);
  checkb "controller installed filters" true (Placement_ctl.installs ctl > 0);
  checki "optimal never walks a frontier" 0 (Placement_ctl.pushes ctl);
  (match r.As_scenario.r_time_to_filter with
  | Some t -> checkb "suppressed quickly" true (t < 5.)
  | None -> Alcotest.fail "optimal never suppressed the attack");
  (* The oracle covers the attack /17s, which are disjoint from every
     legitimate range: collateral stays negligible. *)
  checkb "collateral negligible" true
    (r.As_scenario.r_collateral_fraction < 0.05)

let test_adaptive_walks_and_suppresses () =
  let r = As_scenario.run (small_params Placement.Adaptive) in
  let ctl =
    match r.As_scenario.r_ctl with
    | Some c -> c
    | None -> Alcotest.fail "adaptive run has no controller"
  in
  checkb "evidence reported" true (Placement_ctl.evidence ctl > 0);
  checkb "controller installed filters" true (Placement_ctl.installs ctl > 0);
  checkb "frontier moved towards the sources" true
    (Placement_ctl.pushes ctl > 0);
  match r.As_scenario.r_time_to_filter with
  | Some t -> checkb "suppressed" true (t < r.As_scenario.r_params.As_scenario.as_duration)
  | None -> Alcotest.fail "adaptive never suppressed the attack"

(* --- determinism ------------------------------------------------------------ *)

(* Everything placement decides, reduced to a comparable value: where
   filters went (per-gateway install/peak counts plus the resident
   filters with their install times — the realized placement order),
   what the victim saw (the full rate series) and the scenario
   totals. *)
let fingerprint (r : As_scenario.result) =
  let label_compare = Aitf_filter.Flow_label.compare in
  let per_gw =
    Array.to_list
      (Array.map
         (fun gw ->
           let t = Gateway.filters gw in
           let resident =
             List.map
               (fun h -> (Filter_table.label h, Filter_table.installed_at h))
               (Filter_table.live_entries t)
             |> List.sort (fun (l1, t1) (l2, t2) ->
                    let c = label_compare l1 l2 in
                    if c <> 0 then c else Float.compare t1 t2)
           in
           (Filter_table.installs t, Filter_table.peak_occupancy t, resident))
         r.As_scenario.r_gateways)
  in
  ( per_gw,
    Series.points r.As_scenario.r_victim_rate,
    ( r.As_scenario.r_collateral_fraction,
      r.As_scenario.r_time_to_filter,
      r.As_scenario.r_slots_peak,
      r.As_scenario.r_filters_installed,
      r.As_scenario.r_events ) )

(* The candidate-enumeration helper every decision path folds through:
   output must be sorted by [cmp] and independent of Hashtbl bucket
   layout (here varied via insertion order). *)
let test_sorted_bindings () =
  let cmp (a, _) (b, _) = compare (a : int) b in
  let enumerate order =
    let tbl = Hashtbl.create 7 in
    List.iter (fun k -> Hashtbl.replace tbl k (k * 2)) order;
    Placement_ctl.sorted_bindings ~cmp tbl
  in
  let keys = [ 9; 3; 27; 1; 14; 0; 255; 8; 7; 100 ] in
  let a = enumerate keys in
  let b = enumerate (List.rev keys) in
  checkb "insertion-order independent" true (a = b);
  let rec sorted = function
    | (k1, _) :: ((k2, _) :: _ as rest) -> k1 < k2 && sorted rest
    | _ -> true
  in
  checkb "sorted ascending" true (sorted a);
  checki "all bindings kept" (List.length keys) (List.length a)

let test_placement_deterministic () =
  List.iter
    (fun policy ->
      let a = fingerprint (As_scenario.run (small_params policy)) in
      let b = fingerprint (As_scenario.run (small_params policy)) in
      checkb
        (Printf.sprintf "%s: same seed, same placements"
           (Placement.policy_to_string policy))
        true (a = b))
    Placement.all_policies

let test_policies_differ () =
  let v = fingerprint (As_scenario.run (small_params Placement.Vanilla)) in
  let o = fingerprint (As_scenario.run (small_params Placement.Optimal)) in
  let a = fingerprint (As_scenario.run (small_params Placement.Adaptive)) in
  checkb "vanilla <> optimal" true (v <> o);
  checkb "optimal <> adaptive" true (o <> a)

let test_seed_changes_scenario () =
  let run seed =
    fingerprint
      (As_scenario.run
         { (small_params Placement.Optimal) with As_scenario.as_seed = seed })
  in
  checkb "different seeds differ" true (run 7 <> run 8)

let () =
  Alcotest.run "aitf_placement"
    [
      ( "seam",
        [
          Alcotest.test_case "policy parsing" `Quick test_policy_parsing;
          Alcotest.test_case "vanilla handle inert" `Quick
            test_vanilla_handle_inert;
        ] );
      ( "as_scenario",
        [
          Alcotest.test_case "vanilla" `Quick test_vanilla_runs;
          Alcotest.test_case "optimal" `Quick test_optimal_suppresses;
          Alcotest.test_case "adaptive" `Quick
            test_adaptive_walks_and_suppresses;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "candidate order sorted" `Quick
            test_sorted_bindings;
          Alcotest.test_case "same seed same placements" `Quick
            test_placement_deterministic;
          Alcotest.test_case "policies differ" `Quick test_policies_differ;
          Alcotest.test_case "seeds differ" `Quick test_seed_changes_scenario;
        ] );
    ]
