(* Tests for aitf_obs: metrics registry, JSON codec, sampler, run reports. *)

module Json = Aitf_obs.Json
module Metrics = Aitf_obs.Metrics
module Sampler = Aitf_obs.Sampler
module Report = Aitf_obs.Report
module Sim = Aitf_engine.Sim
module Series = Aitf_stats.Series
module Scenarios = Aitf_workload.Scenarios

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf = check (Alcotest.float 1e-9)

(* --- Metrics registry ------------------------------------------------------ *)

let test_register_and_sample () =
  let reg = Metrics.create () in
  let n = ref 0 in
  Metrics.register_counter reg "a.count" (fun () -> float_of_int !n);
  Metrics.register_gauge reg "a.level" ~unit_:"bytes" (fun () -> 7.5);
  checki "size" 2 (Metrics.size reg);
  checkb "registered" true (Metrics.registered reg "a.count");
  checkb "not registered" false (Metrics.registered reg "missing");
  n := 3;
  (match Metrics.value reg "a.count" with
  | Some (Metrics.Counter v) -> checkf "pull sees updates" 3. v
  | _ -> Alcotest.fail "expected counter");
  (match Metrics.value reg "a.level" with
  | Some (Metrics.Gauge v) -> checkf "gauge" 7.5 v
  | _ -> Alcotest.fail "expected gauge");
  checks "unit" "bytes" (Option.get (Metrics.unit_of reg "a.level"));
  check
    (Alcotest.list Alcotest.string)
    "names sorted" [ "a.count"; "a.level" ] (Metrics.names reg)

let test_double_registration_raises () =
  let reg = Metrics.create () in
  Metrics.register_counter reg "dup" (fun () -> 0.);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Metrics.register: duplicate metric \"dup\"") (fun () ->
      Metrics.register_gauge reg "dup" (fun () -> 0.));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Metrics.register: empty name") (fun () ->
      Metrics.register_counter reg "" (fun () -> 0.))

let test_timer_observe () =
  let reg = Metrics.create () in
  let tm = Metrics.timer reg "ttf" in
  Metrics.observe tm 0.2;
  Metrics.observe tm 0.3;
  match Metrics.value reg "ttf" with
  | Some (Metrics.Histogram { count; sum; buckets }) ->
    checki "count" 2 count;
    checkf "sum" 0.5 sum;
    checki "bucket total" 2 (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets)
  | _ -> Alcotest.fail "expected histogram"

let test_attach_detach () =
  Metrics.detach ();
  checkb "starts detached" true (Metrics.attached () = None);
  checkb "timer when detached" true (Metrics.timer_if_attached "t" = None);
  let hit = ref false in
  Metrics.if_attached (fun _ -> hit := true);
  checkb "if_attached no-op" false !hit;
  let reg = Metrics.create () in
  Metrics.attach reg;
  Fun.protect ~finally:Metrics.detach (fun () ->
      Metrics.if_attached (fun _ -> hit := true);
      checkb "if_attached runs" true !hit;
      checkb "timer registers" true (Metrics.timer_if_attached "t" <> None);
      checkb "timer named" true (Metrics.registered reg "t"));
  checkb "detached again" true (Metrics.attached () = None)

let test_with_attached_detaches_on_raise () =
  Metrics.detach ();
  let reg = Metrics.create () in
  let v = Metrics.with_attached reg (fun () -> Metrics.attached () <> None) in
  checkb "attached inside" true v;
  checkb "detached after return" true (Metrics.attached () = None);
  (* the reason with_attached exists: a raise mid-build must not leave the
     registry attached to poison the next run in the same process *)
  (try
     Metrics.with_attached reg (fun () -> failwith "mid-build explosion")
   with Failure _ -> ());
  checkb "detached after raise" true (Metrics.attached () = None)

let test_cross_domain_stress () =
  (* The parallel engine registers sched.* metrics and observes stall
     timers from whichever domain reaches the barrier first, while other
     shards' components may still be registering. The registry's internal
     table is mutex-protected; this hammers registration, timer
     observation and snapshotting from several domains at once and then
     checks nothing was lost or double-counted. *)
  let reg = Metrics.create () in
  let domains = 4 and gauges_per_domain = 50 and observations = 200 in
  let tm = Metrics.timer reg "stress.timer" in
  let go = Atomic.make false in
  let spawn d =
    Domain.spawn (fun () ->
        while not (Atomic.get go) do
          Domain.cpu_relax ()
        done;
        for i = 0 to gauges_per_domain - 1 do
          Metrics.register_gauge reg
            (Printf.sprintf "stress.d%d.g%03d" d i)
            (fun () -> float_of_int (d * 1000 + i));
          (* interleave reads with writes to chase lost updates *)
          ignore (Metrics.snapshot reg)
        done;
        for _ = 1 to observations do
          Metrics.observe tm 0.01
        done)
  in
  let workers = List.init domains spawn in
  Atomic.set go true;
  List.iter Domain.join workers;
  checki "all gauges + the timer survived" ((domains * gauges_per_domain) + 1)
    (Metrics.size reg);
  (match Metrics.value reg "stress.timer" with
  | Some (Metrics.Histogram { count; sum; _ }) ->
    checki "no observation lost" (domains * observations) count;
    checkf "sum exact" (float_of_int (domains * observations) *. 0.01) sum
  | _ -> Alcotest.fail "expected histogram");
  (* every registered gauge still reads its own closure *)
  List.iter
    (fun name ->
      if name <> "stress.timer" then
        match Metrics.value reg name with
        | Some (Metrics.Gauge v) ->
          Scanf.sscanf name "stress.d%d.g%d" (fun d i ->
              checkf name (float_of_int ((d * 1000) + i)) v)
        | _ -> Alcotest.fail (name ^ ": expected gauge"))
    (Metrics.names reg)

(* --- JSON codec ------------------------------------------------------------ *)

let test_json_print_and_escape () =
  checks "escapes" {|{"a\"b":"x\n\t\\"}|}
    (Json.to_string ~minify:true (Json.Obj [ ("a\"b", Json.String "x\n\t\\") ]));
  checks "scalars" {|[null,true,42,1.5]|}
    (Json.to_string ~minify:true
       (Json.List [ Json.Null; Json.Bool true; Json.Int 42; Json.Float 1.5 ]));
  checks "nan is null" "null" (Json.to_string ~minify:true (Json.Float Float.nan))

let test_json_parse () =
  (match Json.parse {| {"k": [1, 2.5, "s", false, null]} |} with
  | Ok (Json.Obj [ ("k", Json.List [ a; b; c; d; e ]) ]) ->
    checkb "int" true (Json.equal a (Json.Int 1));
    checkb "float" true (Json.equal b (Json.Float 2.5));
    checkb "string" true (Json.equal c (Json.String "s"));
    checkb "bool" true (Json.equal d (Json.Bool false));
    checkb "null" true (Json.equal e Json.Null)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  checkb "garbage rejected" true (Result.is_error (Json.parse "{broken"));
  checkb "trailing rejected" true (Result.is_error (Json.parse "1 2"))

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("f", Json.Float 0.1);
        ("tiny", Json.Float 1.2345678901234e-12);
        ("neg", Json.Int (-7));
        ("nested", Json.List [ Json.Obj [ ("u", Json.String "\xc3\xa9") ] ]);
      ]
  in
  (* both pretty and minified forms must parse back to an equal value *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v' -> checkb "round-trips" true (Json.equal v v')
      | Error e -> Alcotest.fail e)
    [ Json.to_string v; Json.to_string ~minify:true v ]

(* --- Sampler --------------------------------------------------------------- *)

let test_sampler_collects () =
  let sim = Sim.create () in
  let reg = Metrics.create () in
  let x = ref 0. in
  Metrics.register_gauge reg "x" (fun () -> !x);
  ignore (Sim.after sim 0.45 (fun () -> x := 5.));
  let sampler = Sampler.start ~interval:0.1 sim reg in
  Sim.run ~until:1.0 sim;
  checki "ticks" 10 (Sampler.ticks sampler);
  let s = Option.get (Sampler.find_series sampler "x") in
  checki "points" 10 (Series.length s);
  checkf "before change" 0. (List.assoc 0.4 (Series.points s));
  checkf "after change" 5. (List.assoc 0.5 (Series.points s));
  (* sim metrics were registered too *)
  checkb "sim metric" true (Metrics.registered reg "sim.events_processed");
  Sampler.stop sampler;
  Sampler.stop sampler (* idempotent *)

let run_sampled_chain () =
  let reg = Metrics.create () in
  Metrics.attach reg;
  Fun.protect ~finally:Metrics.detach (fun () ->
      let r =
        Scenarios.run_chain
          {
            Scenarios.default_chain with
            Scenarios.config =
              Aitf_core.Config.with_timescale Aitf_core.Config.default 0.1;
            duration = 10.;
          }
      in
      let sampler = Option.get r.Scenarios.sampler in
      (Metrics.snapshot reg, Sampler.series sampler))

let test_sampler_deterministic () =
  let snap1, series1 = run_sampled_chain () in
  let snap2, series2 = run_sampled_chain () in
  checkb "snapshots equal" true (snap1 = snap2);
  checki "same series count" (List.length series1) (List.length series2);
  List.iter2
    (fun (n1, s1) (n2, s2) ->
      checks "same name" n1 n2;
      checkb ("points equal: " ^ n1) true (Series.points s1 = Series.points s2))
    series1 series2

(* --- Run report ------------------------------------------------------------ *)

let test_report_round_trip () =
  let reg = Metrics.create () in
  let n = ref 2 in
  Metrics.register_counter reg "c" ~unit_:"packets" (fun () ->
      float_of_int !n);
  Metrics.register_gauge reg "g" (fun () -> 0.125);
  let tm = Metrics.timer reg "h" in
  Metrics.observe tm 0.01;
  let s = Series.create ~name:"c" () in
  Series.add s ~time:0.1 1.;
  Series.add s ~time:0.2 2.;
  let json =
    Report.make ~meta:[ ("seed", Json.Int 42) ] ~series:[ ("c", s) ] ~now:0.2
      reg
  in
  (* serialise, parse back, compare against a live snapshot *)
  match Json.parse (Json.to_string json) with
  | Error e -> Alcotest.fail e
  | Ok parsed -> (
    checkb "schema" true
      (Json.member "schema" parsed = Some (Json.String "aitf.run-report/1"));
    match Report.values_of_json parsed with
    | Error e -> Alcotest.fail e
    | Ok values -> checkb "values round-trip" true (values = Metrics.snapshot reg))

let test_report_csv () =
  let reg = Metrics.create () in
  Metrics.register_counter reg "c" ~unit_:"packets" (fun () -> 3.);
  let s = Series.create () in
  Series.add s ~time:0.5 1.5;
  checks "snapshot csv" "metric,kind,value,unit\nc,counter,3,packets\n"
    (Report.snapshot_csv reg);
  checks "series csv" "metric,time,value\nc,0.5,1.5\n"
    (Report.series_csv [ ("c", s) ])

let test_csv_escaping () =
  (* RFC 4180: fields with commas/quotes/newlines are quoted, embedded
     quotes doubled; plain fields stay byte-identical to the bare writer *)
  let s = Series.create () in
  Series.add s ~time:1. 2.;
  checks "comma quoted" "metric,time,value\n\"a,b\",1,2\n"
    (Report.series_csv [ ("a,b", s) ]);
  checks "quote doubled" "metric,time,value\n\"say \"\"hi\"\"\",1,2\n"
    (Report.series_csv [ ("say \"hi\"", s) ]);
  checks "newline quoted" "metric,time,value\n\"a\nb\",1,2\n"
    (Report.series_csv [ ("a\nb", s) ]);
  let reg = Metrics.create () in
  Metrics.register_gauge reg "g,auge" ~unit_:"m\"s" (fun () -> 1.);
  checks "snapshot csv escapes name and unit"
    "metric,kind,value,unit\n\"g,auge\",gauge,1,\"m\"\"s\"\n"
    (Report.snapshot_csv reg)

let test_report_deterministic () =
  (* the same registry state must serialise to byte-identical JSON and CSV:
     reports are diffed across runs by external tooling *)
  let build () =
    let reg = Metrics.create () in
    Metrics.register_counter reg "b.count" (fun () -> 3.);
    Metrics.register_gauge reg "a.level" (fun () -> 0.1);
    let tm = Metrics.timer reg "ttf" in
    Metrics.observe tm 0.25;
    Metrics.observe tm 0.5;
    let s = Series.create () in
    Series.add s ~time:0.1 1.;
    let json =
      Report.make ~meta:[ ("seed", Json.Int 1) ] ~series:[ ("a.level", s) ]
        ~now:1. reg
    in
    (Json.to_string json, Report.snapshot_csv reg, Report.series_csv [ ("a.level", s) ])
  in
  let j1, snap1, ser1 = build () in
  let j2, snap2, ser2 = build () in
  checks "json deterministic" j1 j2;
  checks "snapshot csv deterministic" snap1 snap2;
  checks "series csv deterministic" ser1 ser2;
  (* and the JSON side still round-trips through the parser *)
  match Json.parse j1 with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    checkb "parses back" true (Report.values_of_json parsed |> Result.is_ok)

let () =
  Alcotest.run "aitf_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "register and sample" `Quick
            test_register_and_sample;
          Alcotest.test_case "double registration raises" `Quick
            test_double_registration_raises;
          Alcotest.test_case "timer observe" `Quick test_timer_observe;
          Alcotest.test_case "attach/detach" `Quick test_attach_detach;
          Alcotest.test_case "with_attached detaches on raise" `Quick
            test_with_attached_detaches_on_raise;
          Alcotest.test_case "cross-domain stress" `Quick
            test_cross_domain_stress;
        ] );
      ( "json",
        [
          Alcotest.test_case "print and escape" `Quick
            test_json_print_and_escape;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "collects series" `Quick test_sampler_collects;
          Alcotest.test_case "deterministic under fixed seed" `Slow
            test_sampler_deterministic;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round trip" `Quick test_report_round_trip;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "csv escaping (rfc 4180)" `Quick test_csv_escaping;
          Alcotest.test_case "byte-identical serialisation" `Quick
            test_report_deterministic;
        ] );
    ]
