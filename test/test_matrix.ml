(* Tier-1 coverage for the golden-trace differential matrix: one small
   cell per engine is regenerated and byte-compared against the
   checked-in golden under test/goldens/ (the dune rule declares the
   directory as a dep), and regenerating a cell twice in one process
   must be byte-identical — the determinism the goldens rest on. *)

module Matrix = Aitf_workload.Matrix

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

let run_only ids = Matrix.run ~only:ids ~goldens_dir:"goldens" ()

(* The two chain cells: the smallest matrix cells that exercise both
   engines end to end. *)
let cell_ids =
  [
    "chain-packet-pristine-calm-vanilla"; "chain-hybrid-pristine-calm-vanilla";
  ]

let test_goldens_match () =
  let s = run_only cell_ids in
  checki "both cells ran" 2 (List.length s.Matrix.s_results);
  List.iter
    (fun r ->
      checkb
        (r.Matrix.cr_cell.Matrix.id ^ " matches its golden")
        true
        (r.Matrix.cr_status = Matrix.Match))
    s.Matrix.s_results;
  checki "no drift" 0 s.Matrix.s_drifted

let test_regeneration_deterministic () =
  let doc_of id =
    match (run_only [ id ]).Matrix.s_results with
    | [ r ] -> r.Matrix.cr_doc
    | _ -> Alcotest.fail ("cell did not run: " ^ id)
  in
  List.iter
    (fun id ->
      checkb (id ^ " regenerates byte-identically") true
        (String.equal (doc_of id) (doc_of id)))
    cell_ids

let test_engine_agreement () =
  let s = run_only cell_ids in
  let gated = List.filter (fun p -> p.Matrix.pr_gated) s.Matrix.s_pairs in
  checkb "chain pair is gated" true (gated <> []);
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "%s %s within %.0f%%" p.Matrix.pr_base
           p.Matrix.pr_metric
           (100. *. Matrix.agreement_threshold))
        true p.Matrix.pr_ok)
    gated;
  checki "no gated disagreement" 0 s.Matrix.s_disagreements

let test_cell_ids_well_formed () =
  (* Ids are the golden filenames; they must be unique and spell out the
     five dimensions, plus a -shard<N> suffix when the cell pins a
     parallel shard count. *)
  let ids = List.map (fun c -> c.Matrix.id) Matrix.cells in
  checki "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun c ->
      checkb (c.Matrix.id ^ " composed of its dims") true
        (c.Matrix.id
        = String.concat "-"
            [
              c.Matrix.topo; c.Matrix.engine; c.Matrix.fault;
              c.Matrix.adversary; c.Matrix.placement;
            ]
          ^
          if c.Matrix.shards > 1 then
            Printf.sprintf "-shard%d" c.Matrix.shards
          else ""))
    Matrix.cells;
  checkb "a smoke subset exists" true
    (List.exists (fun c -> c.Matrix.smoke) Matrix.cells)

let () =
  Alcotest.run "aitf_matrix"
    [
      ( "goldens",
        [
          Alcotest.test_case "cells match checked-in goldens" `Quick
            test_goldens_match;
          Alcotest.test_case "regeneration deterministic" `Quick
            test_regeneration_deterministic;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "packet vs hybrid goodput" `Quick
            test_engine_agreement;
        ] );
      ( "cells",
        [
          Alcotest.test_case "ids well-formed" `Quick
            test_cell_ids_well_formed;
        ] );
    ]
