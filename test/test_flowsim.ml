(* Tests for the hybrid fluid/packet engine: fluid share arithmetic, filter
   mirroring, probe sampling, and packet/hybrid agreement on the chain
   scenario. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
module Fluid = Aitf_flowsim.Fluid
module Sampler = Aitf_flowsim.Sampler
module Filter_table = Aitf_filter.Filter_table
module Flow_label = Aitf_filter.Flow_label
module Config = Aitf_core.Config
module Scenarios = Aitf_workload.Scenarios
module Traffic = Aitf_workload.Traffic

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let close ?(tol = 1e-6) msg expected got =
  if abs_float (expected -. got) > tol *. Float.max 1. (abs_float expected)
  then
    Alcotest.failf "%s: expected %g, got %g" msg expected got

(* A tiny line: src1, src2 -> router -> dst over a 10 Mbit/s bottleneck. *)
let line_topo sim =
  let net = Network.create sim in
  let node name addr =
    Network.add_node net ~name ~addr:(Addr.of_string addr) ~as_id:1
      Node.Host
  in
  let router =
    Network.add_node net ~name:"r" ~addr:(Addr.of_string "1.0.0.1") ~as_id:1
      Node.Router
  in
  let s1 = node "s1" "2.0.0.1" in
  let s2 = node "s2" "3.0.0.1" in
  let dst = node "d" "4.0.0.1" in
  let big = 1e9 and small = 10e6 in
  ignore (Network.connect net s1 router ~bandwidth:big ~delay:0.001);
  ignore (Network.connect net s2 router ~bandwidth:big ~delay:0.001);
  ignore (Network.connect net router dst ~bandwidth:small ~delay:0.001);
  Network.compute_routes net;
  (net, s1, s2, dst)

let test_proportional_share () =
  let sim = Sim.create () in
  let net, s1, s2, dst = line_topo sim in
  let eng = Fluid.create net in
  (* 15 + 5 Mbit/s into a 10 Mbit/s bottleneck: drop-tail shares are
     proportional, 7.5 and 2.5. *)
  let a =
    Fluid.add_aggregate eng ~origin:s1 ~src_base:s1.Node.addr ~n:1 ~rate:15e6
      ~dst:dst.Node.addr ~attack:true ~start:0.
  in
  let b =
    Fluid.add_aggregate eng ~origin:s2 ~src_base:s2.Node.addr ~n:1 ~rate:5e6
      ~dst:dst.Node.addr ~attack:false ~start:0.
  in
  Sim.run ~until:10. sim;
  close "attack share" 7.5e6 (Fluid.delivered_rate a);
  close "legit share" 2.5e6 (Fluid.delivered_rate b);
  (* Delivery integrates from t = 0 over 10 s. *)
  close ~tol:1e-3 "attack bits" 75e6 (Fluid.delivered_bits eng ~attack:true);
  close ~tol:1e-3 "legit bits" 25e6 (Fluid.delivered_bits eng ~attack:false)

let test_filter_mirroring () =
  let sim = Sim.create () in
  let net, s1, s2, dst = line_topo sim in
  let eng = Fluid.create net in
  let router = Option.get (Network.node_by_addr net (Addr.of_string "1.0.0.1")) in
  let table = Filter_table.create sim ~capacity:64 in
  Fluid.attach_table eng ~node:router table;
  let a =
    Fluid.add_aggregate eng ~origin:s1 ~src_base:s1.Node.addr ~n:1 ~rate:15e6
      ~dst:dst.Node.addr ~attack:true ~start:0.
  in
  let b =
    Fluid.add_aggregate eng ~origin:s2 ~src_base:s2.Node.addr ~n:1 ~rate:5e6
      ~dst:dst.Node.addr ~attack:false ~start:0.
  in
  (* At t = 2 block the attack flow at the router; the legit aggregate
     should recover the whole bottleneck. *)
  ignore
    (Sim.at sim 2. (fun () ->
         ignore
           (Filter_table.install table
              (Flow_label.host_pair s1.Node.addr dst.Node.addr)
              ~duration:1e6)));
  Sim.run ~until:10. sim;
  close "attack blocked" 0. (Fluid.delivered_rate a);
  close "legit unthrottled" 5e6 (Fluid.delivered_rate b);
  checki "one source blocked" 1 (Fluid.blocked_sources a);
  (* 2 s of 7.5 Mbit/s then 8 s of nothing. *)
  close ~tol:1e-3 "attack bits" 15e6 (Fluid.delivered_bits eng ~attack:true);
  close ~tol:1e-3 "legit bits" (2. *. 2.5e6 +. 8. *. 5e6)
    (Fluid.delivered_bits eng ~attack:false)

let test_filter_expiry_unblocks () =
  let sim = Sim.create () in
  let net, s1, _, dst = line_topo sim in
  let eng = Fluid.create net in
  let router = Option.get (Network.node_by_addr net (Addr.of_string "1.0.0.1")) in
  let table = Filter_table.create sim ~capacity:64 in
  Fluid.attach_table eng ~node:router table;
  let a =
    Fluid.add_aggregate eng ~origin:s1 ~src_base:s1.Node.addr ~n:1 ~rate:4e6
      ~dst:dst.Node.addr ~attack:true ~start:0.
  in
  ignore
    (Sim.at sim 1. (fun () ->
         ignore
           (Filter_table.install table
              (Flow_label.host_pair s1.Node.addr dst.Node.addr)
              ~duration:2.)));
  Sim.run ~until:10. sim;
  (* Blocked from 1 to 3, flowing otherwise: 8 s at 4 Mbit/s. *)
  close "flowing again" 4e6 (Fluid.delivered_rate a);
  checki "unblocked" 0 (Fluid.blocked_sources a);
  close ~tol:1e-3 "bits" 32e6 (Fluid.delivered_bits eng ~attack:true)

let test_multi_source_range () =
  let sim = Sim.create () in
  let net, s1, _, dst = line_topo sim in
  let eng = Fluid.create net in
  let router = Option.get (Network.node_by_addr net (Addr.of_string "1.0.0.1")) in
  let table = Filter_table.create sim ~capacity:64 in
  Fluid.attach_table eng ~node:router table;
  (* 100 sources sharing 8 Mbit/s; block one /32 -> 99% remains. *)
  let a =
    Fluid.add_aggregate eng ~origin:s1 ~src_base:s1.Node.addr ~n:100 ~rate:8e6
      ~dst:dst.Node.addr ~attack:true ~start:0.
  in
  ignore
    (Sim.at sim 1. (fun () ->
         ignore
           (Filter_table.install table
              (Flow_label.host_pair
                 (Fluid.source_addr a 7)
                 dst.Node.addr)
              ~duration:1e6)));
  Sim.run ~until:2. sim;
  checki "one of 100 blocked" 1 (Fluid.blocked_sources a);
  close "99 sources' worth" (0.99 *. 8e6) (Fluid.delivered_rate a);
  (* A prefix filter covering the whole range kills the rest. *)
  ignore
    (Filter_table.install table
       (Flow_label.v
          (Flow_label.Net (Addr.prefix s1.Node.addr 8))
          (Flow_label.Host dst.Node.addr))
       ~duration:1e6)
  |> ignore;
  Sim.run ~until:3. sim;
  close "prefix blocks all" 0. (Fluid.delivered_rate a);
  checki "all blocked" 100 (Fluid.blocked_sources a)

let test_sampler_probes () =
  let sim = Sim.create () in
  let net, s1, _, dst = line_topo sim in
  let eng = Fluid.create net in
  let a =
    Fluid.add_aggregate eng ~origin:s1 ~src_base:s1.Node.addr ~n:50 ~rate:8e6
      ~dst:dst.Node.addr ~attack:true ~start:0.
  in
  let received = ref 0 in
  dst.Node.local_deliver <- (fun _ _ -> incr received);
  let s = Sampler.attach ~rate:20. ~rng:(Rng.create ~seed:7) eng a in
  Sim.run ~until:5. sim;
  (* ~20 probes/s for 5 s, modulo the randomised first tick. *)
  checkb "probes sent" true (Sampler.sent s >= 90 && Sampler.sent s <= 101);
  checkb "probes delivered" true (!received >= 90);
  checkb "gap" true (abs_float (Sampler.probe_gap s -. 0.05) < 1e-9)

(* The packet and hybrid engines must agree on the chain scenario within
   the E17 tolerance (10%); here a fast smoke version of that bench. *)
let test_engine_agreement () =
  let cfg =
    { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 }
  in
  let base =
    {
      Scenarios.default_chain with
      Scenarios.config = cfg;
      duration = 15.;
      attack_rate = 20e6;
      legit_rate = 1e6;
    }
  in
  let packet = Scenarios.run_chain base in
  let hybrid =
    Scenarios.run_chain
      {
        base with
        Scenarios.config = { cfg with Config.engine = Config.Hybrid };
      }
  in
  checkb "hybrid ran fluid" true (hybrid.Scenarios.fluid <> None);
  checkb "packet ran without fluid" true (packet.Scenarios.fluid = None);
  let rel a b = abs_float (a -. b) /. Float.max 1. (abs_float a) in
  checkb "goodput within 10%" true
    (rel packet.Scenarios.good_received_bytes
       hybrid.Scenarios.good_received_bytes
    <= 0.10);
  let tts r =
    match Scenarios.time_to_suppress r ~threshold:0.05 with
    | Some t -> t
    | None -> base.Scenarios.duration
  in
  checkb "time-to-filter within 10%" true
    (rel (tts packet) (tts hybrid) <= 0.10);
  checkb "hybrid needs fewer events" true
    (hybrid.Scenarios.events_processed < packet.Scenarios.events_processed)

(* Same seed, same hybrid run: results must be bit-identical. *)
let test_hybrid_determinism () =
  let cfg =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.grace = 0.3;
      engine = Config.Hybrid;
    }
  in
  let params =
    {
      Scenarios.default_chain with
      Scenarios.config = cfg;
      duration = 12.;
      attack_rate = 20e6;
      legit_rate = 1e6;
      attacker_strategy = Aitf_core.Policy.On_off { off_time = 1.5 };
    }
  in
  let r1 = Scenarios.run_chain params in
  let r2 = Scenarios.run_chain params in
  checkb "byte counts identical" true
    (r1.Scenarios.attack_received_bytes = r2.Scenarios.attack_received_bytes
    && r1.Scenarios.good_received_bytes = r2.Scenarios.good_received_bytes);
  checkb "event counts identical" true
    (r1.Scenarios.events_processed = r2.Scenarios.events_processed);
  checkb "victim series identical" true
    (Aitf_stats.Series.points r1.Scenarios.victim_rate
    = Aitf_stats.Series.points r2.Scenarios.victim_rate)

(* The swarm scenario: spoofed pools, ground-truth suppression, absorbed
   requests. Small population so it stays fast under alcotest. *)
let test_swarm_runs () =
  let cfg =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.grace = 0.3;
      engine = Config.Hybrid;
      overload_manager = true;
      aggregate_on_pressure = true;
      filter_capacity = 128;
    }
  in
  let r =
    Scenarios.run_swarm
      {
        Scenarios.default_swarm with
        Scenarios.swarm_config = cfg;
        swarm_sources = 5000;
        swarm_pools = 4;
        swarm_duration = 15.;
      }
  in
  (* 5000 attacking sources plus the one-source legit aggregate. *)
  checki "all sources materialised" 5001
    (Fluid.total_sources r.Scenarios.swarm_fluid);
  checkb "victim asked for filters" true (r.Scenarios.swarm_requests_sent > 0);
  checkb "filters installed" true (r.Scenarios.swarm_filters > 0);
  checkb "attack partially suppressed" true
    (r.Scenarios.swarm_attack_received_bytes
    < 20e6 *. 14. /. 8. *. 0.9)

let test_traffic_halt_cancels () =
  let sim = Sim.create () in
  let net, s1, _, dst = line_topo sim in
  let t =
    Traffic.cbr ~flow_id:1 ~rate:8e5 ~dst:dst.Node.addr net s1
  in
  Sim.run ~until:1.0 sim;
  let sent = Traffic.sent_packets t in
  checkb "was sending" true (sent > 0);
  Traffic.halt t;
  (* No pending emission survives: the event queue drains without another
     packet. *)
  Sim.run sim;
  checki "nothing after halt" sent (Traffic.sent_packets t)

let () =
  Alcotest.run "aitf_flowsim"
    [
      ( "fluid",
        [
          Alcotest.test_case "proportional shares" `Quick
            test_proportional_share;
          Alcotest.test_case "filter mirroring" `Quick test_filter_mirroring;
          Alcotest.test_case "expiry unblocks" `Quick
            test_filter_expiry_unblocks;
          Alcotest.test_case "multi-source ranges" `Quick
            test_multi_source_range;
          Alcotest.test_case "sampler probes" `Quick test_sampler_probes;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "engine agreement" `Slow test_engine_agreement;
          Alcotest.test_case "determinism" `Slow test_hybrid_determinism;
          Alcotest.test_case "swarm scenario" `Slow test_swarm_runs;
        ] );
      ( "workload",
        [
          Alcotest.test_case "halt cancels pending" `Quick
            test_traffic_halt_cancels;
        ] );
    ]
