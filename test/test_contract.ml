(* Tests for the verifiable filtering-contract layer (lib/contract,
   docs/CONTRACTS.md): the receipt wire codec, the keyed-digest keychain,
   the victim-side auditor's conviction rules (per-flow strikes, arrival
   freshness, affirmative vs circumstantial evidence, failover re-arm),
   contracts-off bit-identity, and the 20%-Byzantine forge acceptance
   regime the bench (E20) gates on. *)

module Sim = Aitf_engine.Sim
module Counter = Aitf_stats.Counter
module Signing = Aitf_contract.Signing
module Auditor = Aitf_contract.Auditor
module Adversary = Aitf_adversary.Adversary
module As_scenario = Aitf_workload.As_scenario
module As_graph = Aitf_topo.As_graph
open Aitf_net
open Aitf_filter
open Aitf_core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

(* --- Wire codec: receipts --------------------------------------------------- *)

let sample_receipt =
  {
    Message.rc_flow =
      Flow_label.v ~proto:17
        (Flow_label.Net (Addr.prefix_of_string "20.0.0.0/24"))
        (Flow_label.Host (addr "10.0.0.10"));
    rc_gateway = addr "20.0.0.1";
    rc_victim = addr "10.0.0.10";
    rc_seq = 42;
    rc_installed_at = 3.25;
    rc_expires_at = 63.25;
    rc_hits = 1234;
    rc_auth = 0x1122334455667788L;
  }

let test_wire_roundtrip_receipt () =
  let bytes =
    match Wire.encode (Message.Install_receipt sample_receipt) with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  (match Wire.decode bytes with
  | Ok (Message.Install_receipt r) ->
    checkb "flow" true
      (Flow_label.equal r.Message.rc_flow sample_receipt.Message.rc_flow);
    checkb "gateway" true
      (Addr.equal r.Message.rc_gateway sample_receipt.Message.rc_gateway);
    checkb "victim" true
      (Addr.equal r.Message.rc_victim sample_receipt.Message.rc_victim);
    checki "seq" 42 r.Message.rc_seq;
    checkb "installed" true (r.Message.rc_installed_at = 3.25);
    checkb "expires" true (r.Message.rc_expires_at = 63.25);
    checki "hits" 1234 r.Message.rc_hits;
    checkb "auth" true (r.Message.rc_auth = 0x1122334455667788L)
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.failf "decode: %a" Wire.pp_error e);
  checkb "size prediction" true
    (Wire.encoded_size (Message.Install_receipt sample_receipt)
    = Some (Bytes.length bytes))

let test_signing_bytes_ignore_auth () =
  (* The canonical signing input zeroes the auth tail, so it must not
     depend on the auth value — signer and verifier see the same bytes. *)
  let with_auth a = Message.Install_receipt { sample_receipt with rc_auth = a } in
  match (Wire.signing_bytes (with_auth 0L), Wire.signing_bytes (with_auth 77L))
  with
  | Ok a, Ok b -> checkb "auth-independent" true (Bytes.equal a b)
  | _ -> Alcotest.fail "signing_bytes failed on a receipt"

let wire_label_gen =
  let open QCheck.Gen in
  let sel =
    frequency
      [
        (1, return Flow_label.Any);
        (3, map (fun i -> Flow_label.Host (Int32.of_int i)) (int_bound 0xFFFF));
        ( 2,
          map2
            (fun i len -> Flow_label.Net (Addr.prefix (Int32.of_int i) len))
            (int_bound 0xFFFF) (int_bound 32) );
      ]
  in
  let qual hi = opt (int_bound hi) in
  map2
    (fun (s, d) (p, (sp, dp)) ->
      { Flow_label.src = s; dst = d; proto = p; sport = sp; dport = dp })
    (pair sel sel)
    (pair (qual 255) (pair (qual 65535) (qual 65535)))

let receipt_roundtrip_property =
  let gen =
    QCheck.Gen.(
      map3
        (fun flow (gw, victim) (seq, (installed, hits)) ->
          {
            Message.rc_flow = flow;
            rc_gateway = Int32.of_int gw;
            rc_victim = Int32.of_int victim;
            rc_seq = seq;
            rc_installed_at = float_of_int installed /. 8.;
            rc_expires_at = (float_of_int installed /. 8.) +. 60.;
            rc_hits = hits;
            rc_auth = Int64.of_int (seq + hits);
          })
        wire_label_gen
        (pair (int_bound 0xFFFFF) (int_bound 0xFFFFF))
        (pair (int_bound 0xFFFFFF) (pair (int_bound 10_000) small_nat)))
  in
  QCheck.Test.make ~name:"wire roundtrip for random receipts" ~count:300
    (QCheck.make gen)
    (fun rc ->
      match Wire.encode (Message.Install_receipt rc) with
      | Error _ -> false
      | Ok bytes -> (
        match Wire.decode bytes with
        | Ok (Message.Install_receipt r) ->
          Flow_label.equal r.Message.rc_flow rc.Message.rc_flow
          && Addr.equal r.Message.rc_gateway rc.Message.rc_gateway
          && Addr.equal r.Message.rc_victim rc.Message.rc_victim
          && r.Message.rc_seq = rc.Message.rc_seq
          && r.Message.rc_installed_at = rc.Message.rc_installed_at
          && r.Message.rc_expires_at = rc.Message.rc_expires_at
          && r.Message.rc_hits = rc.Message.rc_hits
          && r.Message.rc_auth = rc.Message.rc_auth
        | _ -> false))

(* --- Signing ---------------------------------------------------------------- *)

let test_signing_keychain () =
  let kc = Signing.create ~seed:7 in
  let gw = addr "20.0.0.1" in
  let other = addr "20.0.0.2" in
  let bytes = Bytes.of_string "canonical message bytes" in
  let d = Signing.mac kc gw bytes in
  checkb "never the unsigned sentinel" true (d <> 0L);
  checkb "verifies under the signer" true (Signing.verify kc gw bytes d);
  checkb "fails under another principal" false (Signing.verify kc other bytes d);
  checkb "fails on altered bytes" false
    (Signing.verify kc gw (Bytes.of_string "canonical message bytez") d);
  let kc' = Signing.create ~seed:8 in
  checkb "fails under another keychain" false (Signing.verify kc' gw bytes d)

(* --- Auditor unit tests ------------------------------------------------------ *)

(* A small, fast audit clock: one-second deadline, 0.4 s freshness
   window, quarter-second ticks. k = 3 circumstantial strikes convict. *)
let unit_config =
  { Auditor.k = 3; deadline = 1.0; grace = 0.4; backoff = 2.0; period = 0.25 }

let victim_gw = addr "9.9.9.9"

let mk_auditor ?(config = unit_config) sim =
  let kc = Signing.create ~seed:11 in
  let flags = ref [] in
  let a =
    Auditor.create ~config ~verify:(Signing.verify kc) ~gateway:victim_gw
      ~on_flag:(fun g -> flags := g :: !flags)
      sim
  in
  (a, kc, flags)

let flow = Flow_label.host_pair (addr "20.0.0.7") (addr "10.0.0.10")

let request path =
  {
    Message.flow;
    target = Message.To_attacker_gateway;
    duration = 60.;
    path;
    hops = 0;
    requestor = addr "10.0.0.10";
    corr = 1;
    auth = 0L;
  }

let signed_receipt kc gw ~seq ~at =
  let r =
    {
      Message.rc_flow = flow;
      rc_gateway = gw;
      rc_victim = addr "10.0.0.10";
      rc_seq = seq;
      rc_installed_at = at;
      rc_expires_at = at +. 60.;
      rc_hits = 0;
      rc_auth = 0L;
    }
  in
  match Wire.signing_bytes (Message.Install_receipt r) with
  | Ok bytes -> { r with Message.rc_auth = Signing.mac kc gw bytes }
  | Error e -> Alcotest.fail e

(* Feed an arrival every [step] until [stop]. *)
let rec drip sim a ~stop ~step () =
  Auditor.note_arrival a flow (Sim.now sim);
  if Sim.now sim +. step <= stop then
    ignore (Sim.after sim step (drip sim a ~stop ~step))

let test_auditor_silent_liar_convicted () =
  let sim = Sim.create () in
  let a, _, flags = mk_auditor sim in
  let liar = addr "20.0.0.1" in
  Auditor.note_request a (request [ liar ]);
  drip sim a ~stop:4.6 ~step:0.1 ();
  Sim.run ~until:6.0 sim;
  (* Strikes accrue through the exponential backoff probes (deadline 1 s,
     then +1 s, then +2 s): three per-flow strikes convict at t = 4. *)
  checkb "liar flagged" true (Auditor.flagged_gateway a liar);
  checki "on_flag fired exactly once" 1 (List.length !flags);
  checkb "flag names the liar" true
    (match !flags with [ g ] -> Addr.equal g liar | _ -> false)

let test_auditor_quiet_flow_never_convicts () =
  (* The flow stops arriving before the deadline: an honest install whose
     receipt was lost. No harm observed, no conviction — ever. *)
  let sim = Sim.create () in
  let a, _, flags = mk_auditor sim in
  let gw = addr "20.0.0.1" in
  Auditor.note_request a (request [ gw ]);
  drip sim a ~stop:0.3 ~step:0.1 ();
  Sim.run ~until:10.0 sim;
  checkb "nobody flagged" true (Auditor.flagged a = []);
  checkb "no violations" true (Auditor.violations a = []);
  checki "no flag callback" 0 (List.length !flags)

let test_auditor_freshness_excuses_stale_arrivals () =
  (* Arrivals persist just past the first probe, then stop (the filter
     landed, slowly). One circumstantial strike, never a conviction. *)
  let sim = Sim.create () in
  let a, _, _ = mk_auditor sim in
  let gw = addr "20.0.0.1" in
  Auditor.note_request a (request [ gw ]);
  drip sim a ~stop:1.2 ~step:0.1 ();
  Sim.run ~until:10.0 sim;
  checkb "one strike recorded" true (Auditor.violations a = [ (gw, 1) ]);
  checkb "not flagged" false (Auditor.flagged_gateway a gw)

let test_auditor_forged_receipt_convicts_at_two () =
  (* Receipts in the gateway's name that fail under its key are
     affirmative evidence: two convict (two, not one, so one corrupted
     delivery can never convict). No arrivals are needed. *)
  let sim = Sim.create () in
  let a, kc, _ = mk_auditor sim in
  let forger = addr "20.0.0.1" in
  Auditor.note_request a (request [ forger ]);
  let forged seq =
    let r = signed_receipt kc forger ~seq ~at:0.1 in
    { r with Message.rc_auth = 0xDEADBEEFL }
  in
  ignore
    (Sim.after sim 0.3 (fun () ->
         Auditor.on_receipt a (forged 1);
         checkb "one forgery is not enough" false
           (Auditor.flagged_gateway a forger)));
  ignore (Sim.after sim 0.6 (fun () -> Auditor.on_receipt a (forged 2)));
  Sim.run ~until:2.0 sim;
  checkb "forger flagged" true (Auditor.flagged_gateway a forger);
  checki "both receipts rejected" 2 (Auditor.receipts_rejected a);
  checki "none verified" 0 (Auditor.receipts_verified a)

let test_auditor_replayed_receipt_convicts_at_two () =
  (* A genuine receipt re-sent under its old sequence number is caught by
     the seen-set exactly like a replayed handshake reply. The first
     duplicate is tolerated (it proves nothing by itself); the second
     convicts. *)
  let sim = Sim.create () in
  let a, kc, _ = mk_auditor sim in
  let gw = addr "20.0.0.1" in
  Auditor.note_request a (request [ gw ]);
  let rc = signed_receipt kc gw ~seq:5 ~at:0.2 in
  ignore (Sim.after sim 0.2 (fun () -> Auditor.on_receipt a rc));
  ignore
    (Sim.after sim 0.5 (fun () ->
         Auditor.on_receipt a rc;
         checkb "one replay is not enough" false (Auditor.flagged_gateway a gw)));
  ignore (Sim.after sim 0.8 (fun () -> Auditor.on_receipt a rc));
  Sim.run ~until:2.0 sim;
  checkb "replayer flagged" true (Auditor.flagged_gateway a gw);
  checki "original verified once" 1 (Auditor.receipts_verified a);
  checki "both replays rejected" 2 (Auditor.receipts_rejected a)

let test_auditor_fresh_seqs_never_rejected () =
  (* Distinct sequence numbers from one issuer — interleaved or not — are
     all fresh: the seen-set is membership, not a high-water mark, so
     reordered receipt streams cannot convict an honest gateway. *)
  let sim = Sim.create () in
  let a, kc, _ = mk_auditor sim in
  let gw = addr "20.0.0.1" in
  Auditor.note_request a (request [ gw ]);
  List.iteri
    (fun i seq ->
      ignore
        (Sim.after sim
           (0.1 +. (0.1 *. float_of_int i))
           (fun () -> Auditor.on_receipt a (signed_receipt kc gw ~seq ~at:0.1))))
    [ 3; 1; 2; 5; 4 ];
  Sim.run ~until:2.0 sim;
  checki "all verified" 5 (Auditor.receipts_verified a);
  checki "none rejected" 0 (Auditor.receipts_rejected a);
  checkb "not flagged" false (Auditor.flagged_gateway a gw)

let test_auditor_failover_rearms_after_flag () =
  (* Once the receipt issuer is convicted, its stale receipt is dropped
     and the next gateway on the path inherits a FULL deadline — without
     the re-arm it would be convicted before its post-failover receipt
     could arrive. *)
  let sim = Sim.create () in
  let a, kc, _ = mk_auditor sim in
  let liar = addr "20.0.0.1" in
  let honest = addr "20.0.0.2" in
  Auditor.note_request a (request [ liar; honest ]);
  let rc = signed_receipt kc liar ~seq:1 ~at:0.2 in
  ignore (Sim.after sim 0.2 (fun () -> Auditor.on_receipt a rc));
  ignore (Sim.after sim 0.5 (fun () -> Auditor.on_receipt a rc));
  ignore (Sim.after sim 0.8 (fun () -> Auditor.on_receipt a rc));
  (* The flow keeps arriving until the honest gateway's filter lands. *)
  drip sim a ~stop:1.7 ~step:0.1 ();
  ignore
    (Sim.after sim 1.5 (fun () ->
         Auditor.on_receipt a (signed_receipt kc honest ~seq:1 ~at:1.5)));
  Sim.run ~until:10.0 sim;
  checkb "liar flagged" true (Auditor.flagged_gateway a liar);
  checkb "honest successor never flagged" false
    (Auditor.flagged_gateway a honest);
  checkb "only the liar convicted" true (Auditor.flagged a = [ liar ])

let test_auditor_victim_gateway_never_audited () =
  (* The victim's own gateway closes every path with terminal filters,
     not receipts — it must be stripped from the auditable path. *)
  let sim = Sim.create () in
  let a, _, _ = mk_auditor sim in
  Auditor.note_request a (request [ victim_gw ]);
  drip sim a ~stop:9.5 ~step:0.1 ();
  Sim.run ~until:10.0 sim;
  checkb "nobody flagged" true (Auditor.flagged a = []);
  checkb "no violations" true (Auditor.violations a = [])

let test_auditor_rerequest_does_not_buy_time () =
  (* Re-requesting a known flow must not push out a pending probe
     deadline: with the min-deadline rule the conviction clock is
     unaffected by the 0.8 s re-request, so the third strike still lands
     at t = 4 and the flag fires by 4.25 (the tick after). *)
  let sim = Sim.create () in
  let a, _, _ = mk_auditor sim in
  let liar = addr "20.0.0.1" in
  let flag_time = ref infinity in
  let kc = Signing.create ~seed:11 in
  let a2 =
    Auditor.create ~config:unit_config ~verify:(Signing.verify kc)
      ~gateway:victim_gw
      ~on_flag:(fun _ -> flag_time := Float.min !flag_time (Sim.now sim))
      sim
  in
  ignore a;
  Auditor.note_request a2 (request [ liar ]);
  ignore
    (Sim.after sim 0.8 (fun () -> Auditor.note_request a2 (request [ liar ])));
  drip sim a2 ~stop:5.0 ~step:0.1 ();
  Sim.run ~until:6.0 sim;
  checkb "flag fired" true (!flag_time < infinity);
  checkb
    (Printf.sprintf "flag by t=4.25 (got %.2f)" !flag_time)
    true (!flag_time <= 4.30)

(* --- Contracts off: bit identity -------------------------------------------- *)

let small_params =
  {
    As_scenario.default with
    As_scenario.as_spec = { As_graph.default_spec with As_graph.domains = 30 };
    as_config = { Config.default with Config.engine = Config.Hybrid };
    as_seed = 5;
    as_duration = 8.;
    as_sources = 200;
    as_attack_domains = 4;
    as_legit_domains = 2;
    as_legit_sources = 400;
  }

let fingerprint (r : As_scenario.result) =
  ( r.As_scenario.r_good_offered_bytes,
    r.As_scenario.r_good_received_bytes,
    r.As_scenario.r_attack_received_bytes,
    r.As_scenario.r_requests_sent,
    r.As_scenario.r_filters_installed,
    r.As_scenario.r_events )

let test_contracts_off_bit_identity () =
  (* With contracts off, the Byzantine knobs must be completely inert:
     no extra RNG draws, no receipts, no auditor — the run is identical
     to the pre-contract scenario whatever the knobs say. *)
  let base = As_scenario.run small_params in
  let knobs =
    As_scenario.run
      {
        small_params with
        As_scenario.as_byzantine_fraction = 0.3;
        as_lying_mode = Adversary.Forge;
      }
  in
  checkb "identical fingerprints" true (fingerprint base = fingerprint knobs);
  checkb "no auditor" true (base.As_scenario.r_auditor = None);
  checkb "no byzantine picks" true (knobs.As_scenario.r_byzantine = []);
  checki "no failovers" 0 knobs.As_scenario.r_failovers

(* --- Acceptance: 20% Byzantine forge regime --------------------------------- *)

(* The validated verification regime (docs/CONTRACTS.md, bench E20): a
   60-domain Internet, capacity-constrained victim gateway, fast audit
   clock, forge-mode liars. *)
let contract_params fraction =
  {
    As_scenario.default with
    As_scenario.as_spec = { As_graph.default_spec with As_graph.domains = 60 };
    as_config =
      {
        Config.default with
        Config.engine = Config.Hybrid;
        filter_capacity = 150;
      };
    as_seed = 42;
    as_duration = 15.;
    as_sources = 400;
    as_attack_domains = 8;
    as_legit_domains = 4;
    as_contracts = true;
    as_byzantine_fraction = fraction;
    as_lying_mode = Adversary.Forge;
    as_audit =
      { Auditor.default_config with Auditor.deadline = 0.75; grace = 0.35 };
  }

let test_acceptance_twenty_percent_forge () =
  let honest = As_scenario.run (contract_params 0.) in
  let byz = As_scenario.run (contract_params 0.2) in
  (* Honest baseline: contracts on, nobody lies, nobody gets flagged. *)
  (match honest.As_scenario.r_auditor with
  | None -> Alcotest.fail "honest run has no auditor"
  | Some a ->
    checkb "honest: zero false positives" true (Auditor.flagged a = []);
    checkb "honest: receipts flowed" true (Auditor.receipts_verified a > 0);
    checki "honest: none rejected" 0 (Auditor.receipts_rejected a));
  (* Byzantine run: every corrupted gateway flagged, zero honest ones. *)
  let corrupted = List.map snd byz.As_scenario.r_byzantine in
  checkb "some gateways corrupted" true (corrupted <> []);
  (match byz.As_scenario.r_auditor with
  | None -> Alcotest.fail "byzantine run has no auditor"
  | Some a ->
    let flagged = Auditor.flagged a in
    List.iter
      (fun b ->
        checkb
          (Printf.sprintf "corrupted %s flagged" (Addr.to_string b))
          true (List.mem b flagged))
      corrupted;
    List.iter
      (fun g ->
        checkb
          (Printf.sprintf "flagged %s is corrupted" (Addr.to_string g))
          true (List.mem g corrupted))
      flagged;
    checkb "forged receipts rejected" true (Auditor.receipts_rejected a > 0));
  checkb "failover engaged" true (byz.As_scenario.r_failovers > 0);
  checkb "victim recovers" true (byz.As_scenario.r_time_to_filter <> None);
  (* Failover restores >= 90% of the honest goodput. *)
  let ratio =
    byz.As_scenario.r_good_received_bytes
    /. honest.As_scenario.r_good_received_bytes
  in
  checkb (Printf.sprintf "goodput ratio %.3f >= 0.9" ratio) true (ratio >= 0.9)

(* --- Runner ------------------------------------------------------------------ *)

let () =
  Alcotest.run "aitf_contract"
    [
      ( "wire",
        [
          Alcotest.test_case "receipt roundtrip" `Quick
            test_wire_roundtrip_receipt;
          Alcotest.test_case "signing bytes ignore auth" `Quick
            test_signing_bytes_ignore_auth;
          QCheck_alcotest.to_alcotest receipt_roundtrip_property;
        ] );
      ( "signing",
        [ Alcotest.test_case "keychain properties" `Quick test_signing_keychain ]
      );
      ( "auditor",
        [
          Alcotest.test_case "silent liar convicted" `Quick
            test_auditor_silent_liar_convicted;
          Alcotest.test_case "quiet flow never convicts" `Quick
            test_auditor_quiet_flow_never_convicts;
          Alcotest.test_case "stale arrivals excused" `Quick
            test_auditor_freshness_excuses_stale_arrivals;
          Alcotest.test_case "forged receipts convict at two" `Quick
            test_auditor_forged_receipt_convicts_at_two;
          Alcotest.test_case "replayed receipts convict at two" `Quick
            test_auditor_replayed_receipt_convicts_at_two;
          Alcotest.test_case "fresh seqs never rejected" `Quick
            test_auditor_fresh_seqs_never_rejected;
          Alcotest.test_case "failover re-arms the deadline" `Quick
            test_auditor_failover_rearms_after_flag;
          Alcotest.test_case "victim gateway never audited" `Quick
            test_auditor_victim_gateway_never_audited;
          Alcotest.test_case "re-request does not buy time" `Quick
            test_auditor_rerequest_does_not_buy_time;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "contracts off is bit-identical" `Quick
            test_contracts_off_bit_identity;
          Alcotest.test_case "20% forge: flag, fail over, recover" `Quick
            test_acceptance_twenty_percent_forge;
        ] );
    ]
