(* Tests for aitf_topo: the Figure-1 chain and the provider hierarchy. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_topo
open Aitf_core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let deliver_count sim net ~src ~dst =
  let n = ref 0 in
  let prev = dst.Node.local_deliver in
  dst.Node.local_deliver <-
    (fun node pkt ->
      incr n;
      prev node pkt);
  Network.originate net src
    (Packet.make ~src:src.Node.addr ~dst:dst.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  !n

(* --- Chain ------------------------------------------------------------------ *)

let test_chain_structure () =
  let sim = Sim.create () in
  let t = Chain.build sim Chain.default_spec in
  checki "three gateways each side" 3 (List.length t.Chain.victim_gws);
  checki "attacker side" 3 (List.length t.Chain.attacker_gws);
  (* 2 hosts + 6 gateways + bystander *)
  checki "node count" 9 (List.length (Network.nodes t.Chain.net));
  List.iter
    (fun gw -> checkb "gateways are border routers" true (Node.is_border gw))
    (t.Chain.victim_gws @ t.Chain.attacker_gws)

let test_chain_reachability () =
  let sim = Sim.create () in
  let t = Chain.build sim Chain.default_spec in
  checki "attacker -> victim" 1
    (deliver_count sim t.Chain.net ~src:t.Chain.attacker ~dst:t.Chain.victim)

let test_chain_reverse_reachability () =
  let sim = Sim.create () in
  let t = Chain.build sim Chain.default_spec in
  checki "victim -> attacker" 1
    (deliver_count sim t.Chain.net ~src:t.Chain.victim ~dst:t.Chain.attacker)

let test_chain_bystander_reachability () =
  let sim = Sim.create () in
  let t = Chain.build sim Chain.default_spec in
  checki "bystander -> victim" 1
    (deliver_count sim t.Chain.net ~src:t.Chain.bystander ~dst:t.Chain.victim)

let test_chain_depth_one () =
  let sim = Sim.create () in
  let t = Chain.build sim { Chain.default_spec with Chain.depth = 1 } in
  checki "one gateway" 1 (List.length t.Chain.victim_gws);
  checki "attacker -> victim" 1
    (deliver_count sim t.Chain.net ~src:t.Chain.attacker ~dst:t.Chain.victim)

let test_chain_depth_validation () =
  let sim = Sim.create () in
  checkb "depth 0 rejected" true
    (try
       ignore (Chain.build sim { Chain.default_spec with Chain.depth = 0 });
       false
     with Invalid_argument _ -> true)

let test_chain_route_record_path () =
  (* Attack packets arriving at the victim after deployment must carry the
     full gateway path, attacker side first. *)
  let sim = Sim.create () in
  let t = Chain.build sim Chain.default_spec in
  let rng = Rng.create ~seed:1 in
  let (_ : Chain.deployed) = Chain.deploy ~config:Config.default ~rng t in
  let path = ref [] in
  let prev = t.Chain.victim.Node.local_deliver in
  t.Chain.victim.Node.local_deliver <-
    (fun node pkt ->
      if !path = [] then path := pkt.Packet.route_record;
      prev node pkt);
  Network.originate t.Chain.net t.Chain.attacker
    (Packet.make ~src:t.Chain.attacker.Node.addr ~dst:t.Chain.victim.Node.addr
       ~size:100
       (Packet.Data { flow_id = 0; attack = false }));
  Sim.run sim;
  let names =
    List.filter_map
      (fun a ->
        Option.map (fun (n : Node.t) -> n.Node.name)
          (Network.node_by_addr t.Chain.net a))
      !path
  in
  check (Alcotest.list Alcotest.string) "attacker-first"
    [ "B_gw1"; "B_gw2"; "B_gw3"; "G_gw3"; "G_gw2"; "G_gw1" ]
    names

let test_chain_non_cooperating_helper () =
  checki "three" 3 (List.length (Chain.non_cooperating 3));
  checkb "all unresponsive" true
    (List.for_all (( = ) Policy.Unresponsive) (Chain.non_cooperating 3))

let test_chain_deploy_wiring () =
  let sim = Sim.create () in
  let t = Chain.build sim Chain.default_spec in
  let rng = Rng.create ~seed:1 in
  let d =
    Chain.deploy ~attacker_gw_policies:(Chain.non_cooperating 2)
      ~config:Config.default ~rng t
  in
  checki "gateways deployed" 3 (List.length d.Chain.victim_gateways);
  checkb "policy applied" true
    (Gateway.policy (List.hd d.Chain.attacker_gateways) = Policy.Unresponsive);
  checkb "third cooperative" true
    (Gateway.policy (List.nth d.Chain.attacker_gateways 2) = Policy.Cooperative)

(* --- Hierarchy ---------------------------------------------------------------- *)

let small_spec =
  { Hierarchy.default_spec with Hierarchy.isps = 2; nets_per_isp = 3; hosts_per_net = 2 }

let test_hierarchy_structure () =
  let sim = Sim.create () in
  let t = Hierarchy.build sim small_spec in
  checki "isps" 2 (Array.length t.Hierarchy.isp_gws);
  checki "nets" 3 (Array.length t.Hierarchy.net_gws.(0));
  checki "hosts" 2 (Array.length t.Hierarchy.hosts.(0).(0));
  (* 1 core + 2 isp + 6 net gws + 12 hosts = 21 *)
  checki "node count" 21 (List.length (Network.nodes t.Hierarchy.net))

let test_hierarchy_cross_isp_reachability () =
  let sim = Sim.create () in
  let t = Hierarchy.build sim small_spec in
  let a = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
  let b = Hierarchy.host t ~isp:1 ~net:2 ~host:1 in
  checki "a -> b across ISPs" 1 (deliver_count sim t.Hierarchy.net ~src:a ~dst:b)

let test_hierarchy_same_net_reachability () =
  let sim = Sim.create () in
  let t = Hierarchy.build sim small_spec in
  let a = Hierarchy.host t ~isp:0 ~net:1 ~host:0 in
  let b = Hierarchy.host t ~isp:0 ~net:1 ~host:1 in
  checki "same-net siblings" 1 (deliver_count sim t.Hierarchy.net ~src:a ~dst:b)

let test_hierarchy_fib_aggregation () =
  (* Host /32s are AS-local: a host in another ISP must carry no /32 route
     for them, only the /16 aggregates. *)
  let sim = Sim.create () in
  let t = Hierarchy.build sim small_spec in
  let a = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
  let b = Hierarchy.host t ~isp:1 ~net:0 ~host:0 in
  checkb "no remote host route" true
    (Lpm.exact a.Node.fib (Addr.host_prefix b.Node.addr) = None);
  (* FIB stays small: aggregates + local hosts, far below total node count. *)
  checkb "fib small" true (Lpm.size a.Node.fib < 20)

let test_hierarchy_prefixes () =
  let p = Hierarchy.net_prefix ~isp:1 ~net:2 in
  checkb "host inside" true
    (Addr.prefix_mem p (Addr.of_octets 11 2 0 10));
  checkb "other net outside" true
    (not (Addr.prefix_mem p (Addr.of_octets 11 3 0 10)));
  let ip = Hierarchy.isp_prefix ~isp:1 in
  checkb "net inside isp" true (Addr.prefix_mem ip (Addr.of_octets 11 2 0 10))

let test_hierarchy_validation () =
  let sim = Sim.create () in
  checkb "zero dims rejected" true
    (try
       ignore (Hierarchy.build sim { small_spec with Hierarchy.isps = 0 });
       false
     with Invalid_argument _ -> true)

let test_hierarchy_deploy_and_protocol () =
  (* One zombie in isp1/net0 attacks a victim in isp0/net0: the zombie's own
     enterprise gateway must end up holding the long filter. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let t = Hierarchy.build sim small_spec in
  let config =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.t_tmp = 0.5;
      grace = 0.3;
    }
  in
  let d = Hierarchy.deploy ~config ~rng t in
  let victim = Hierarchy.attach_victim ~td:0.05 d ~config ~isp:0 ~net:0 ~host:0 in
  let attacker =
    Hierarchy.attach_attacker ~strategy:Policy.Ignores d ~config ~isp:1 ~net:0
      ~host:0
  in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr
      ~gate:(Host_agent.Attacker.gate attacker)
      ~start:0.5 ~attack:true ~flow_id:1 ~rate:4e5
      ~dst:(Hierarchy.host t ~isp:0 ~net:0 ~host:0).Node.addr
      t.Hierarchy.net
      (Hierarchy.host t ~isp:1 ~net:0 ~host:0)
  in
  Sim.run ~until:3.0 sim;
  checkb "victim requested" true (Host_agent.Victim.requests_sent victim >= 1);
  let zombie_gw = d.Hierarchy.net_gateways.(1).(0) in
  checkb "zombie's gateway filters" true
    (Aitf_stats.Counter.get (Gateway.counters zombie_gw) "filter-long" >= 1);
  (* Other enterprise gateways hold nothing. *)
  let other_gw = d.Hierarchy.net_gateways.(1).(1) in
  checki "bystander gateway idle" 0
    (Aitf_filter.Filter_table.occupancy (Gateway.filters other_gw))

let test_hierarchy_escalation_to_isp () =
  (* The zombie's enterprise gateway is rogue; the mechanism must climb to
     its ISP gateway, which blocks the flow instead. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:13 in
  let t = Hierarchy.build sim small_spec in
  let config =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.t_tmp = 0.5;
      grace = 0.3;
    }
  in
  let d =
    Hierarchy.deploy
      ~policies:(fun ~isp ~net ->
        if isp = 1 && net = 0 then Policy.Unresponsive else Policy.Cooperative)
      ~config ~rng t
  in
  let victim = Hierarchy.attach_victim ~td:0.05 d ~config ~isp:0 ~net:0 ~host:0 in
  ignore victim;
  let attacker =
    Hierarchy.attach_attacker
      ~strategy:(Policy.On_off { off_time = config.Config.t_tmp +. 0.2 })
      d ~config ~isp:1 ~net:0 ~host:0
  in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr
      ~gate:(Host_agent.Attacker.gate attacker)
      ~start:0.5 ~attack:true ~flow_id:1 ~rate:4e5
      ~dst:(Hierarchy.host t ~isp:0 ~net:0 ~host:0).Node.addr t.Hierarchy.net
      (Hierarchy.host t ~isp:1 ~net:0 ~host:0)
  in
  Sim.run ~until:4.0 sim;
  let rogue_gw = d.Hierarchy.net_gateways.(1).(0) in
  let isp_gw = d.Hierarchy.isp_gateways.(1) in
  checkb "rogue gateway ignored the request" true
    (Aitf_stats.Counter.get (Gateway.counters rogue_gw) "ignored-unresponsive"
    >= 1);
  checkb "ISP gateway took over" true
    (Aitf_stats.Counter.get (Gateway.counters isp_gw) "filter-long" >= 1);
  checkb "victim-side escalated" true
    (Aitf_stats.Counter.get
       (Gateway.counters d.Hierarchy.net_gateways.(0).(0))
       "escalated"
    >= 1)

(* --- Random_net ---------------------------------------------------------------- *)

let random_spec =
  { Random_net.default_spec with Random_net.transits = 4; stubs = 10; hosts_per_stub = 2 }

let test_random_structure () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let t = Random_net.build sim rng random_spec in
  checki "transits" 4 (Array.length t.Random_net.transit_gws);
  checki "stubs" 10 (Array.length t.Random_net.stub_gws);
  Array.iter
    (fun p -> checkb "primary in range" true (p >= 0 && p < 4))
    t.Random_net.stub_primary

let test_random_deterministic () =
  let build seed =
    let sim = Sim.create () in
    let rng = Rng.create ~seed in
    let t = Random_net.build sim rng random_spec in
    ( Array.to_list t.Random_net.stub_primary,
      Array.to_list t.Random_net.stub_secondary,
      List.length (Network.links t.Random_net.net) )
  in
  checkb "same seed same topology" true (build 9 = build 9);
  checkb "different seeds differ" true (build 9 <> build 10)

let test_random_all_pairs_reachable () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:5 in
  let t = Random_net.build sim rng random_spec in
  (* Sample several cross-stub host pairs. *)
  let pairs = [ (0, 9); (3, 7); (5, 1); (9, 0); (2, 8) ] in
  List.iter
    (fun (a, b) ->
      let src = Random_net.host t ~stub:a ~host:0 in
      let dst = Random_net.host t ~stub:b ~host:1 in
      checki
        (Printf.sprintf "stub%d -> stub%d" a b)
        1
        (deliver_count sim t.Random_net.net ~src ~dst))
    pairs

let test_random_multihoming_survives_link_loss () =
  (* Find a multihomed stub, cut its primary uplink, recompute routes:
     still reachable via the secondary. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:12 in
  let t =
    Random_net.build sim rng
      { random_spec with Random_net.multihoming_p = 1.0 }
  in
  let stub = 0 in
  let gw = t.Random_net.stub_gws.(stub) in
  let primary = t.Random_net.transit_gws.(t.Random_net.stub_primary.(stub)) in
  checkb "cut primary" true
    (Network.disconnect_port t.Random_net.net gw ~peer_id:primary.Node.id);
  Network.compute_routes t.Random_net.net;
  let src = Random_net.host t ~stub:5 ~host:0 in
  let dst = Random_net.host t ~stub ~host:0 in
  checki "still reachable via secondary" 1
    (deliver_count sim t.Random_net.net ~src ~dst)

let test_random_deploy_protocol () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let t = Random_net.build sim rng random_spec in
  let config =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.t_tmp = 0.5;
      grace = 0.3;
    }
  in
  let d = Random_net.deploy ~config ~rng t in
  let victim = Random_net.host t ~stub:0 ~host:0 in
  let (_ : Host_agent.Victim.t) =
    Random_net.attach_victim ~td:0.05 d ~config ~stub:0 ~host:0
  in
  let attacker_stub = 6 in
  let agent =
    Random_net.attach_attacker ~strategy:Policy.Ignores d ~config
      ~stub:attacker_stub ~host:0
  in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr
      ~gate:(Host_agent.Attacker.gate agent)
      ~start:0.5 ~attack:true ~flow_id:1 ~rate:4e5 ~dst:victim.Node.addr
      t.Random_net.net
      (Random_net.host t ~stub:attacker_stub ~host:0)
  in
  Sim.run ~until:3.0 sim;
  checkb "blocked at the attacker's stub gateway" true
    (Aitf_stats.Counter.get
       (Gateway.counters d.Random_net.stub_gateways.(attacker_stub))
       "filter-long"
    >= 1)

(* --- As_graph ---------------------------------------------------------------- *)

let as_spec = { As_graph.default_spec with As_graph.domains = 200 }

let test_as_structure () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let t = As_graph.build sim rng as_spec in
  checki "domains" 200 (As_graph.n_domains t);
  (* Tier-1s: no providers, mutually peered. *)
  for i = 0 to as_spec.As_graph.tier1 - 1 do
    checki "tier-1 has no providers" 0 (List.length (As_graph.providers t i));
    checki "tier-1 clique" (as_spec.As_graph.tier1 - 1)
      (List.length
         (List.filter (fun p -> p < as_spec.As_graph.tier1) (As_graph.peers t i)))
  done;
  (* Everyone below tier-1 is multihomed as specified. *)
  for d = as_spec.As_graph.tier1 to 199 do
    checki
      (Printf.sprintf "as%d multihomed" d)
      (Int.min as_spec.As_graph.multihome d)
      (List.length (As_graph.providers t d))
  done

let test_as_deterministic () =
  let fingerprint seed =
    let sim = Sim.create () in
    let rng = Rng.create ~seed in
    let t = As_graph.build sim rng as_spec in
    List.init (As_graph.n_domains t) (fun d ->
        (As_graph.providers t d, As_graph.peers t d))
  in
  checkb "same seed same graph" true (fingerprint 11 = fingerprint 11);
  checkb "different seeds differ" true (fingerprint 11 <> fingerprint 12)

let test_as_degree_distribution () =
  (* Power-law shape, not a regular mesh: a heavy hub exists while most
     domains keep the minimum degree. Deterministic for the fixed seed. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let t = As_graph.build sim rng as_spec in
  let degrees = List.init 200 (fun d -> As_graph.degree t d) in
  let max_deg = List.fold_left Int.max 0 degrees in
  let small = List.length (List.filter (fun g -> g <= 4) degrees) in
  checkb "hub emerges" true (max_deg >= 15);
  checkb "most domains stay small" true (small >= 120);
  (* Handshake: the sum of degrees is twice the edge count. *)
  let sum = List.fold_left ( + ) 0 degrees in
  checki "degree sum even" 0 (sum mod 2)

let test_as_valley_free_routes () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let t = As_graph.build sim rng as_spec in
  let pairs =
    [ (5, 199); (199, 5); (42, 137); (137, 42); (0, 150); (150, 0);
      (17, 18); (99, 100); (196, 3); (77, 191) ]
  in
  List.iter
    (fun (src, dst) ->
      match As_graph.route t ~src ~dst with
      | None -> Alcotest.failf "no route as%d -> as%d" src dst
      | Some path ->
        checkb
          (Printf.sprintf "as%d -> as%d valley-free" src dst)
          true
          (As_graph.valley_free t path))
    pairs

let test_as_valley_free_rejects_valleys () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let t = As_graph.build sim rng as_spec in
  (* A provider->customer step followed by customer->provider is a valley. *)
  let d =
    (* first non-tier-1 domain with a customer of its own *)
    let rec find d =
      if As_graph.is_stub t d || d < as_spec.As_graph.tier1 then find (d + 1)
      else d
    in
    find as_spec.As_graph.tier1
  in
  let c = List.hd (As_graph.customers t d) in
  let p = List.hd (As_graph.providers t d) in
  checkb "down-then-up rejected" false (As_graph.valley_free t [ p; d; c; d; p ]);
  checkb "down-then-up rejected (short)" false (As_graph.valley_free t [ d; c; d ])

let test_as_fib_aggregation () =
  (* Stub routers route the whole 200-domain Internet with a handful of
     explicit entries plus one default — BGP-style aggregation. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let t = As_graph.build sim rng as_spec in
  let stub =
    let rec find d = if As_graph.is_stub t d then d else find (d + 1) in
    find as_spec.As_graph.tier1
  in
  checkb "stub fib small" true (Lpm.size (As_graph.router t stub).Node.fib < 20)

let test_as_host_reachability () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let t = As_graph.build sim rng as_spec in
  let a = As_graph.attach_host t ~domain:150 in
  let b = As_graph.attach_host t ~domain:42 in
  checki "cross-domain delivery" 1
    (deliver_count sim (As_graph.net t) ~src:a ~dst:b);
  checki "reverse delivery" 1
    (deliver_count sim (As_graph.net t) ~src:b ~dst:a)

let test_as_deploy_protocol () =
  (* One attacker host in a far domain floods a victim host; vanilla AITF
     on the generated graph must end with the attacker's own domain
     gateway holding the long filter. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let t = As_graph.build sim rng as_spec in
  let config =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.t_tmp = 0.5;
      grace = 0.3;
    }
  in
  let victim = As_graph.attach_host t ~domain:150 in
  let attacker = As_graph.attach_host t ~domain:42 in
  let d = As_graph.deploy ~config ~rng t in
  let vagent =
    Host_agent.Victim.create ~td:0.05
      ~gateway:(As_graph.router t 150).Node.addr ~config (As_graph.net t)
      victim
  in
  let agent =
    Host_agent.Attacker.create ~strategy:Policy.Ignores ~config
      (As_graph.net t) attacker
  in
  let (_ : Aitf_workload.Traffic.t) =
    Aitf_workload.Traffic.cbr
      ~gate:(Host_agent.Attacker.gate agent)
      ~start:0.5 ~attack:true ~flow_id:1 ~rate:4e5 ~dst:victim.Node.addr
      (As_graph.net t) attacker
  in
  Sim.run ~until:3.0 sim;
  checkb "victim requested" true (Host_agent.Victim.requests_sent vagent >= 1);
  checkb "attacker's domain gateway filters" true
    (Aitf_stats.Counter.get (Gateway.counters d.As_graph.gateways.(42))
       "filter-long"
    >= 1)

let () =
  Alcotest.run "aitf_topo"
    [
      ( "chain",
        [
          Alcotest.test_case "structure" `Quick test_chain_structure;
          Alcotest.test_case "reachability" `Quick test_chain_reachability;
          Alcotest.test_case "reverse reachability" `Quick
            test_chain_reverse_reachability;
          Alcotest.test_case "bystander" `Quick test_chain_bystander_reachability;
          Alcotest.test_case "depth 1" `Quick test_chain_depth_one;
          Alcotest.test_case "depth validation" `Quick
            test_chain_depth_validation;
          Alcotest.test_case "route record path" `Quick
            test_chain_route_record_path;
          Alcotest.test_case "non_cooperating" `Quick
            test_chain_non_cooperating_helper;
          Alcotest.test_case "deploy wiring" `Quick test_chain_deploy_wiring;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "structure" `Quick test_hierarchy_structure;
          Alcotest.test_case "cross-isp reachability" `Quick
            test_hierarchy_cross_isp_reachability;
          Alcotest.test_case "same-net reachability" `Quick
            test_hierarchy_same_net_reachability;
          Alcotest.test_case "fib aggregation" `Quick
            test_hierarchy_fib_aggregation;
          Alcotest.test_case "prefixes" `Quick test_hierarchy_prefixes;
          Alcotest.test_case "validation" `Quick test_hierarchy_validation;
          Alcotest.test_case "deploy + protocol" `Quick
            test_hierarchy_deploy_and_protocol;
          Alcotest.test_case "escalation to ISP" `Quick
            test_hierarchy_escalation_to_isp;
        ] );
      ( "random_net",
        [
          Alcotest.test_case "structure" `Quick test_random_structure;
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "all pairs reachable" `Quick
            test_random_all_pairs_reachable;
          Alcotest.test_case "multihoming failover" `Quick
            test_random_multihoming_survives_link_loss;
          Alcotest.test_case "deploy + protocol" `Quick
            test_random_deploy_protocol;
        ] );
      ( "as_graph",
        [
          Alcotest.test_case "structure" `Quick test_as_structure;
          Alcotest.test_case "deterministic" `Quick test_as_deterministic;
          Alcotest.test_case "degree distribution" `Quick
            test_as_degree_distribution;
          Alcotest.test_case "valley-free routes" `Quick
            test_as_valley_free_routes;
          Alcotest.test_case "valley detector" `Quick
            test_as_valley_free_rejects_valleys;
          Alcotest.test_case "fib aggregation" `Quick test_as_fib_aggregation;
          Alcotest.test_case "host reachability" `Quick
            test_as_host_reachability;
          Alcotest.test_case "deploy + protocol" `Quick
            test_as_deploy_protocol;
        ] );
    ]
