(* End-to-end integration tests: simulated dynamics vs the paper's model,
   cross-mechanism comparisons and determinism. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Counter = Aitf_stats.Counter
module Rate_meter = Aitf_stats.Rate_meter
open Aitf_net
open Aitf_core
open Aitf_topo
module Scenarios = Aitf_workload.Scenarios
module Traffic = Aitf_workload.Traffic
module Formulas = Aitf_model.Formulas

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

(* T = 6 s config used throughout, with Ttmp above protocol RTT. *)
let cfg =
  {
    (Config.with_timescale Config.default 0.1) with
    Config.t_tmp = 0.5;
    grace = 0.3;
  }

let params =
  {
    Scenarios.default_chain with
    Scenarios.config = cfg;
    duration = 60.;
    td = 0.1;
  }

(* --- r vs the analytic model ---------------------------------------------- *)

let test_r_matches_model_shape () =
  let r = Scenarios.run_chain params in
  let model =
    Formulas.effective_bandwidth_ratio ~n:1 ~td:0.1 ~tr:0.05
      ~t_filter:cfg.Config.t_filter
  in
  (* The paper's r is a (pessimistic) upper bound on the per-cycle leak; the
     simulation must land in the same decade and below ~2x the bound. *)
  checkb "measured r close to model" true
    (r.Scenarios.r_measured > 0.2 *. model
    && r.Scenarios.r_measured < 2.0 *. model)

let test_r_decreases_with_t () =
  let run t_filter =
    let config = { cfg with Config.t_filter } in
    (Scenarios.run_chain { params with Scenarios.config = config }).r_measured
  in
  let r_short = run 3.0 in
  let r_long = run 12.0 in
  checkb "longer T suppresses more" true (r_long < r_short);
  (* Model says 4x; accept 2x-8x. *)
  checkb "ratio in range" true
    (r_short /. r_long > 2.0 && r_short /. r_long < 8.0)

let test_leak_windows_grow_with_noncooperation () =
  (* With k unresponsive gateways and an on-off attacker, each T-cycle needs
     k escalations; total escalations grow linearly with k. *)
  let run k =
    let r =
      Scenarios.run_chain
        {
          params with
          Scenarios.n_non_coop_gws = k;
          attacker_strategy = Policy.On_off { off_time = cfg.Config.t_tmp +. 0.2 };
          duration = 40.;
        }
    in
    r.Scenarios.escalations
  in
  let e0 = run 0 and e1 = run 1 and e2 = run 2 in
  checkb "cooperative path needs no escalation" true (e0 = 0);
  checkb "one level" true (e1 >= 1);
  checkb "monotone" true (e2 > e1)

let test_flow_actually_suppressed () =
  let r = Scenarios.run_chain params in
  (* In steady state the duty cycle of the flow is r; the last window must
     be silent (filter held at the attacker's gateway most of the time). *)
  (* Per 6 s cycle the leak is one detection+request window (~0.2 s). *)
  checkb "r below 3%" true (r.Scenarios.r_measured < 0.03)

(* --- AITF protects the tail circuit ----------------------------------------- *)

let congestion_setup ~with_aitf =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:21 in
  (* Thin 1 Mb/s victim tail so a 5 Mb/s attack congests it. *)
  let spec = { Chain.default_spec with Chain.tail_bw = 1e6; attacker_tail_bw = 1e7 } in
  let topo = Chain.build sim spec in
  let d =
    if with_aitf then
      Some (Chain.deploy ~victim_td:0.1 ~config:cfg ~rng topo)
    else None
  in
  (* Legit flow from the bystander; attack from B_host. *)
  let (_ : Traffic.t) =
    Traffic.cbr ~start:0. ~flow_id:2 ~rate:3e5 ~dst:topo.Chain.victim.Node.addr
      topo.Chain.net topo.Chain.bystander
  in
  let gate =
    match d with
    | Some d -> Host_agent.Attacker.gate d.Chain.attacker_agent
    | None -> fun _ -> true
  in
  let (_ : Traffic.t) =
    Traffic.cbr ~gate ~start:1. ~attack:true ~flow_id:1 ~rate:5e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  (* Count legit bytes delivered between t=10 and t=30 (steady state). *)
  let legit = ref 0. in
  let prev = topo.Chain.victim.Node.local_deliver in
  topo.Chain.victim.Node.local_deliver <-
    (fun node (pkt : Packet.t) ->
      (match pkt.Packet.payload with
      | Packet.Data { flow_id = 2; _ } when Sim.now sim > 10. ->
        legit := !legit +. float_of_int pkt.Packet.size
      | _ -> ());
      prev node pkt);
  Sim.run ~until:30. sim;
  !legit

let test_aitf_restores_legit_goodput () =
  let without = congestion_setup ~with_aitf:false in
  let with_aitf = congestion_setup ~with_aitf:true in
  (* 20 s at 300 kb/s = 750 kB offered. Without AITF the tail is swamped by
     a 5x overload; with AITF the attack is filtered and goodput recovers. *)
  checkb "attack crushes goodput without AITF" true
    (without < 0.5 *. with_aitf);
  checkb "aitf delivers most legit traffic" true (with_aitf > 600_000.)

(* --- Filtering stays at the edge (scaling claim) ----------------------------- *)

let test_filters_at_the_leaves () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:31 in
  let spec =
    { Hierarchy.default_spec with Hierarchy.isps = 3; nets_per_isp = 2; hosts_per_net = 3 }
  in
  let t = Hierarchy.build sim spec in
  let d = Hierarchy.deploy ~config:cfg ~rng t in
  let victim_node = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
  let (_ : Host_agent.Victim.t) =
    Hierarchy.attach_victim ~td:0.05 d ~config:cfg ~isp:0 ~net:0 ~host:0
  in
  (* Six zombies spread over the other two ISPs. *)
  let zombies =
    List.concat_map
      (fun isp ->
        List.concat_map
          (fun net -> [ (isp, net, 0); (isp, net, 1) ])
          [ 0; 1 ])
      [ 1; 2 ]
  in
  List.iter
    (fun (isp, net, host) ->
      let agent =
        Hierarchy.attach_attacker ~strategy:Policy.Ignores d ~config:cfg ~isp
          ~net ~host
      in
      ignore
        (Traffic.cbr
           ~gate:(Host_agent.Attacker.gate agent)
           ~start:0.5 ~attack:true
           ~flow_id:(100 + (isp * 10) + net + host)
           ~rate:3e5 ~dst:victim_node.Node.addr t.Hierarchy.net
           (Hierarchy.host t ~isp ~net ~host)))
    zombies;
  Sim.run ~until:4.0 sim;
  (* Every zombie's enterprise gateway holds exactly its zombies' filters;
     ISP gateways hold none (they were never needed). *)
  let leaf_filters = ref 0 in
  Array.iteri
    (fun isp row ->
      Array.iter
        (fun gw ->
          let n = Counter.get (Gateway.counters gw) "filter-long" in
          leaf_filters := !leaf_filters + n;
          if isp = 0 then checki "victim-side net gw holds none" 0 n)
        row)
    d.Hierarchy.net_gateways;
  checki "all 8 zombie flows filtered at the leaves" 8 !leaf_filters;
  Array.iter
    (fun gw ->
      checki "isp gateways hold no long filters" 0
        (Counter.get (Gateway.counters gw) "filter-long"))
    d.Hierarchy.isp_gateways

(* --- Pushback baseline comparison ------------------------------------------- *)

let test_aitf_beats_pushback_on_nodes_involved () =
  (* Same single-attacker chain; AITF involves 4 nodes, pushback recruits
     every router along the congested path. *)
  let run_aitf () =
    let r = Scenarios.run_chain { params with Scenarios.duration = 20. } in
    let gws_with_filters =
      List.length
        (List.filter
           (fun gw ->
             Aitf_filter.Filter_table.installs (Gateway.filters gw) > 0)
           (r.Scenarios.deployed.Chain.victim_gateways
           @ r.Scenarios.deployed.Chain.attacker_gateways))
    in
    gws_with_filters
  in
  let run_pushback () =
    let sim = Sim.create () in
    let spec = { Chain.default_spec with Chain.tail_bw = 1e6; attacker_tail_bw = 1e7 } in
    let topo = Chain.build sim spec in
    let routers = topo.Chain.victim_gws @ topo.Chain.attacker_gws in
    let pb = Aitf_pushback.Pushback.deploy topo.Chain.net routers in
    let (_ : Traffic.t) =
      Traffic.cbr ~start:1. ~attack:true ~flow_id:1 ~rate:5e6
        ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
    in
    Sim.run ~until:20. sim;
    Aitf_pushback.Pushback.routers_limiting pb
  in
  let aitf_nodes = run_aitf () in
  let pushback_nodes = run_pushback () in
  checkb "aitf touches at most 2 gateways" true (aitf_nodes <= 2);
  checkb "pushback recruits more routers" true (pushback_nodes > aitf_nodes)

(* --- Determinism -------------------------------------------------------------- *)

let test_full_run_deterministic () =
  let run () =
    let r = Scenarios.run_chain { params with Scenarios.duration = 15. } in
    ( r.Scenarios.attack_received_bytes,
      r.Scenarios.requests_sent,
      Scenarios.counter_total r.Scenarios.deployed.Chain.attacker_gateways
        "filter-long" )
  in
  checkb "identical runs" true (run () = run ())

let test_seed_changes_nothing_structural () =
  (* Different seeds perturb nonces, not protocol outcomes on this
     deterministic workload. *)
  let run seed =
    let r = Scenarios.run_chain { params with Scenarios.seed; duration = 15. } in
    r.Scenarios.requests_sent
  in
  checki "same requests" (run 1) (run 2)

(* --- Resource bounds (spot checks of IV-B/IV-C in vivo) ----------------------- *)

let test_resource_bounds_in_vivo () =
  let r = Scenarios.run_chain { params with Scenarios.duration = 30. } in
  let vgw = List.hd r.Scenarios.deployed.Chain.victim_gateways in
  let agw = List.hd r.Scenarios.deployed.Chain.attacker_gateways in
  (* Single flow: one temp filter at a time at the victim's gateway, one
     long filter at the attacker's. *)
  checki "victim gw peak 1" 1
    (Aitf_filter.Filter_table.peak_occupancy (Gateway.filters vgw));
  checki "attacker gw peak 1" 1
    (Aitf_filter.Filter_table.peak_occupancy (Gateway.filters agw));
  checkb "shadow peak 1" true (Gateway.shadow_peak vgw = 1)

(* --- Robustness: lossy control channel ----------------------------------------- *)

let test_lossy_control_channel_converges () =
  (* Half of all AITF protocol messages crossing the middle victim-side
     gateway are dropped; re-requests, the shadow cache and escalation must
     still strangle the flow. *)
  let sim = Sim.create () in
  let rng = Rng.create ~seed:77 in
  let loss_rng = Rng.create ~seed:78 in
  let topo = Chain.build sim Chain.default_spec in
  let middle = List.nth topo.Chain.victim_gws 1 in
  Node.add_hook middle (fun _ (pkt : Packet.t) ->
      if
        pkt.Packet.proto = Message.protocol_number
        && Rng.bernoulli loss_rng ~p:0.5
      then Node.Drop "lossy-control"
      else Node.Continue);
  let d = Chain.deploy ~victim_td:0.05 ~config:cfg ~rng topo in
  let (_ : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:0.5 ~attack:true ~flow_id:1 ~rate:4e5
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  Sim.run ~until:30.0 sim;
  let received = Host_agent.Victim.attack_bytes d.Chain.victim_agent in
  let offered = 4e5 *. 29.5 /. 8. in
  checkb "messages were actually lost" true
    (Node.drop_count middle "lossy-control" > 0);
  checkb "flow still mostly suppressed" true (received /. offered < 0.25);
  checkb "protocol retried" true
    (Host_agent.Victim.requests_sent d.Chain.victim_agent >= 2)

(* --- Golden trace of the Figure-1 round --------------------------------------- *)

let test_figure1_golden_trace () =
  let sink, events = Aitf_engine.Trace.collecting_sink () in
  Aitf_engine.Trace.add_sink sink;
  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in
  let topo = Chain.build sim Chain.default_spec in
  let d =
    Chain.deploy ~attacker_strategy:Policy.Complies ~config:cfg ~rng topo
  in
  ignore d;
  let (_ : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:1.0 ~attack:true ~flow_id:1 ~rate:2e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  Sim.run ~until:5.0 sim;
  Aitf_engine.Trace.clear_sinks ();
  let who = List.map (fun (e : Aitf_engine.Trace.event) -> e.category) (events ()) in
  check (Alcotest.list Alcotest.string)
    "exact actor sequence of round 1"
    [ "G_host"; "G_gw1"; "B_gw1"; "B_gw1" ]
    who

(* The observability layer sees the same walk-through: with a registry
   attached, the F1 scenario must leave a populated time-to-filter
   histogram at the attacker's gateway — the handshake takes nonzero
   virtual time, so the samples are strictly positive. *)
let test_figure1_time_to_filter_observed () =
  let module Metrics = Aitf_obs.Metrics in
  let reg = Metrics.create () in
  Metrics.attach reg;
  Fun.protect ~finally:Metrics.detach (fun () ->
      let r = Scenarios.run_chain { params with Scenarios.duration = 20. } in
      ignore r;
      match Metrics.value reg "gateway.B_gw1.time_to_filter" with
      | Some (Metrics.Histogram { count; sum; _ }) ->
        checkb "installs observed" true (count > 0);
        checkb "handshake RTT is positive" true (sum > 0.)
      | _ -> Alcotest.fail "time_to_filter not registered")

(* --- Protocol-safety fuzz ------------------------------------------------------ *)

(* Property (Section III-B): with the handshake enabled, no volley of forged
   filtering requests — whatever flows, requestors and timing the forger
   picks — ever installs a filter at the attacker's gateway, because the
   victim never confirms. *)
let forgery_never_installs =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 15)
        (list_size (int_range 1 15) (pair (int_bound 3) (int_bound 2))))
  in
  QCheck.Test.make ~name:"forged requests never install filters" ~count:25
    (QCheck.make gen)
    (fun (seed, volleys) ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed in
      let topo = Chain.build sim Chain.default_spec in
      let m =
        Network.add_node topo.Chain.net ~name:"M"
          ~addr:(Addr.of_octets 20 0 0 99) ~as_id:101 Node.Host
      in
      ignore
        (Network.connect topo.Chain.net (List.hd topo.Chain.attacker_gws) m
           ~bandwidth:1e7 ~delay:0.01);
      Network.compute_routes topo.Chain.net;
      let d = Chain.deploy ~config:cfg ~rng topo in
      let b_gw1_node = List.hd topo.Chain.attacker_gws in
      (* A handful of legitimate flows exist; none is ever reported. *)
      ignore
        (Traffic.cbr ~start:0. ~flow_id:1 ~rate:2e5
           ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker);
      let srcs =
        [| topo.Chain.attacker.Node.addr; topo.Chain.bystander.Node.addr;
           m.Node.addr; Addr.of_octets 20 0 0 50 |]
      in
      let dsts =
        [| topo.Chain.victim.Node.addr;
           (List.hd topo.Chain.victim_gws).Node.addr;
           Addr.of_octets 10 0 0 200 |]
      in
      List.iteri
        (fun i (si, di) ->
          let req =
            {
              Message.flow =
                Aitf_filter.Flow_label.host_pair srcs.(si) dsts.(di);
              target = Message.To_attacker_gateway;
              duration = cfg.Config.t_filter;
              path = [ b_gw1_node.Node.addr ];
              hops = 0;
              (* the forger may even spoof the requestor field *)
              requestor =
                (if i mod 2 = 0 then m.Node.addr
                 else (List.hd topo.Chain.victim_gws).Node.addr);
              corr = 0;
              auth = 0L;
            }
          in
          ignore
            (Sim.at sim
               (0.5 +. (0.3 *. float_of_int i))
               (fun () ->
                 Network.originate topo.Chain.net m
                   (Message.packet ~src:m.Node.addr ~dst:b_gw1_node.Node.addr
                      (Message.Filtering_request req)))))
        volleys;
      Sim.run ~until:10.0 sim;
      let b_gw1 = List.hd d.Chain.attacker_gateways in
      Aitf_filter.Filter_table.occupancy (Gateway.filters b_gw1) = 0
      && Host_agent.Victim.good_bytes d.Chain.victim_agent > 100_000.)

let () =
  Alcotest.run "aitf_integration"
    [
      ( "model",
        [
          Alcotest.test_case "r matches model" `Slow test_r_matches_model_shape;
          Alcotest.test_case "r vs T" `Slow test_r_decreases_with_t;
          Alcotest.test_case "escalations vs n" `Slow
            test_leak_windows_grow_with_noncooperation;
          Alcotest.test_case "suppression" `Slow test_flow_actually_suppressed;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "goodput restored" `Slow
            test_aitf_restores_legit_goodput;
          Alcotest.test_case "filters at leaves" `Slow test_filters_at_the_leaves;
          Alcotest.test_case "vs pushback" `Slow
            test_aitf_beats_pushback_on_nodes_involved;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "bitwise" `Slow test_full_run_deterministic;
          Alcotest.test_case "seed independence" `Slow
            test_seed_changes_nothing_structural;
        ] );
      ( "resources",
        [ Alcotest.test_case "in vivo bounds" `Slow test_resource_bounds_in_vivo ] );
      ( "robustness",
        [
          Alcotest.test_case "lossy control channel" `Slow
            test_lossy_control_channel_converges;
          Alcotest.test_case "figure-1 golden trace" `Quick
            test_figure1_golden_trace;
          Alcotest.test_case "figure-1 time-to-filter observed" `Slow
            test_figure1_time_to_filter_observed;
        ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest forgery_never_installs ]);
    ]
